package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/sparql"
	"repro/internal/transform"
	"repro/internal/workload"
)

func pat(t *testing.T, s string) sparql.Pattern {
	t.Helper()
	p, err := parser.ParsePattern(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

func TestIsWellDesignedExamples(t *testing.T) {
	// Example 3.1 is well designed.
	p := pat(t, "(?X was_born_in Chile) OPT (?X email ?Y)")
	if ok, err := IsWellDesigned(p); err != nil || !ok {
		t.Fatalf("Example 3.1: ok=%v err=%v", ok, err)
	}
	// Example 3.3 is not: ?X of the OPT right side occurs outside.
	p = pat(t, "(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))")
	if ok, err := IsWellDesigned(p); err != nil || ok {
		t.Fatalf("Example 3.3: ok=%v err=%v", ok, err)
	}
	// The Theorem 3.5 witness is not well designed (?X, ?Y occur in the
	// filter outside their OPT sub-patterns).
	p = pat(t, "(((a b c) OPT (?X d e)) OPT (?Y f g)) FILTER (bound(?X) || bound(?Y))")
	if ok, err := IsWellDesigned(p); err != nil || ok {
		t.Fatalf("Theorem 3.5 witness: ok=%v err=%v", ok, err)
	}
}

func TestIsWellDesignedFilterScope(t *testing.T) {
	// Condition 1: var(R) ⊆ var(P1).
	p := pat(t, "(?X a b) FILTER (bound(?Y))")
	if ok, _ := IsWellDesigned(p); ok {
		t.Fatal("filter over foreign variable accepted")
	}
	p = pat(t, "(?X a b) FILTER (?X = c)")
	if ok, _ := IsWellDesigned(p); !ok {
		t.Fatal("well-scoped filter rejected")
	}
}

func TestIsWellDesignedFragmentErrors(t *testing.T) {
	if _, err := IsWellDesigned(pat(t, "(?X a b) UNION (?X c d)")); err == nil {
		t.Fatal("UNION pattern accepted by AOF well-designedness check")
	}
	if _, err := IsWellDesigned(pat(t, "NS((?X a b))")); err == nil {
		t.Fatal("NS pattern accepted")
	}
}

func TestIsWellDesignedUnion(t *testing.T) {
	p := pat(t, "((?X a b) OPT (?X c ?Y)) UNION ((?Z d e) OPT (?Z f ?W))")
	if ok, err := IsWellDesignedUnion(p); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// A non-well-designed disjunct fails.
	p = pat(t, "((?X a b) AND ((?Y a b) OPT (?Y c ?X))) UNION (?Z d e)")
	if ok, err := IsWellDesignedUnion(p); err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// UNION below top level fails the shape requirement.
	p = pat(t, "(?X a b) OPT ((?X c ?Y) UNION (?X d ?Z))")
	if ok, err := IsWellDesignedUnion(p); err != nil || ok {
		t.Fatalf("nested UNION: ok=%v err=%v", ok, err)
	}
	if _, err := IsWellDesignedUnion(pat(t, "NS((?X a b))")); err == nil {
		t.Fatal("NS accepted by union check")
	}
}

func TestCheckWeaklyMonotoneFindsExample33(t *testing.T) {
	// The non-weakly-monotone pattern of Example 3.3 must be caught.
	p := pat(t, "(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))")
	ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 500, Seed: 1})
	if ce == nil {
		t.Fatal("no counterexample found for Example 3.3")
	}
	// The counterexample must be genuine.
	r1, r2 := sparql.Eval(ce.G1, p), sparql.Eval(ce.G2, p)
	if !ce.G1.IsSubgraphOf(ce.G2) {
		t.Fatal("counterexample graphs not nested")
	}
	if !r1.Contains(ce.Mapping) {
		t.Fatal("counterexample mapping not an answer on G1")
	}
	for _, nu := range r2.Mappings() {
		if ce.Mapping.SubsumedBy(nu) {
			t.Fatal("counterexample mapping is subsumed on G2 after all")
		}
	}
	if ce.String() == "" {
		t.Fatal("empty counterexample description")
	}
}

func TestCheckWeaklyMonotoneExhaustive(t *testing.T) {
	p := pat(t, "(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))")
	ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 1, Exhaustive: true, ExhaustiveTriples: 6})
	if ce == nil {
		t.Fatal("exhaustive check missed the Example 3.3 violation")
	}
}

func TestCheckWeaklyMonotonePassesWellDesigned(t *testing.T) {
	// Well-designed patterns are weakly monotone (Section 3.3); the
	// tester must not report false counterexamples.
	p := pat(t, "(?X was_born_in Chile) OPT (?X email ?Y)")
	if ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 300, Exhaustive: true, Seed: 7}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
}

func TestCheckMonotone(t *testing.T) {
	// OPT patterns are not monotone (Example 3.1)...
	p := pat(t, "(?X was_born_in Chile) OPT (?X email ?Y)")
	if ce := CheckMonotone(p, CheckOpts{Trials: 500, Seed: 3}); ce == nil {
		t.Fatal("no monotonicity counterexample for the OPT pattern")
	}
	// ...but AUF patterns are monotone.
	q := pat(t, "(?X a b) UNION ((?X c ?Y) FILTER (?Y = d))")
	if ce := CheckMonotone(q, CheckOpts{Trials: 300, Exhaustive: true, Seed: 4}); ce != nil {
		t.Fatalf("false counterexample for monotone pattern:\n%s", ce)
	}
}

func TestCheckSubsumptionFree(t *testing.T) {
	// AOF patterns are subsumption-free (Section 5.2).
	p := pat(t, "(?X was_born_in Chile) OPT (?X email ?Y)")
	if ce := CheckSubsumptionFree(p, CheckOpts{Trials: 200, Exhaustive: true, Seed: 5}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
	// A bare union of a pattern and its extension is not.
	q := pat(t, "(?X was_born_in Chile) UNION ((?X was_born_in Chile) AND (?X email ?Y))")
	if ce := CheckSubsumptionFree(q, CheckOpts{Trials: 400, Seed: 6}); ce == nil {
		t.Fatal("subsumed answers not detected")
	}
}

func TestCheckConstructMonotone(t *testing.T) {
	// CONSTRUCT over a weakly-monotone pattern is monotone (Section 6.2).
	q := parser.MustParseConstruct("CONSTRUCT {(?X has_email ?Y)} WHERE (?X was_born_in Chile) OPT (?X email ?Y)")
	if ce := CheckConstructMonotone(q, CheckOpts{Trials: 300, Exhaustive: true, Seed: 8}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
	// CONSTRUCT over the Example 3.3 pattern is not monotone: the
	// produced triple mentions variables that disappear.
	q2 := parser.MustParseConstruct("CONSTRUCT {(?X knows ?Y)} WHERE (?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))")
	if ce := CheckConstructMonotone(q2, CheckOpts{Trials: 600, Exhaustive: true, Seed: 9}); ce == nil {
		t.Fatal("non-monotone CONSTRUCT not detected")
	}
}

// TestMonotoneFragmentQuick: every SPARQL[AUFS] pattern must pass the
// monotonicity tester (they are monotone, Section 4).
func TestMonotoneFragmentQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 2,
			Ops:   []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect},
		})
		if ce := CheckMonotone(p, CheckOpts{Trials: 60, Seed: seed}); ce != nil {
			t.Logf("false counterexample for %s:\n%s", p, ce)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSimplePatternsWeaklyMonotoneQuick: every simple pattern
// NS(AUFS) must pass the weak-monotonicity tester (Section 5.2).
func TestSimplePatternsWeaklyMonotoneQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := sparql.NS{P: workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 2,
			Ops:   []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect},
		})}
		if ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 60, Seed: seed}); ce != nil {
			t.Logf("false counterexample for %s:\n%s", p, ce)
			return false
		}
		// Simple patterns are subsumption-free by construction.
		if ce := CheckSubsumptionFree(p, CheckOpts{Trials: 40, Seed: seed}); ce != nil {
			t.Logf("simple pattern with subsumed answers %s:\n%s", p, ce)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOptToNSPreservesWeakMonotonicity: E19-style sanity — projection
// on top of a simple pattern stays weakly monotone (Section 8).
func TestSelectOverSimpleWeaklyMonotone(t *testing.T) {
	p := sparql.NewSelect([]sparql.Var{"X"},
		sparql.NS{P: pat(t, "(?X was_born_in Chile) UNION ((?X was_born_in Chile) AND (?X email ?Y))")})
	if ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 300, Exhaustive: true, Seed: 10}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
}

func TestCandidateTriplesRelevance(t *testing.T) {
	p := pat(t, "(?X works_at PUC) AND (?X email ?Y)")
	cands := candidateTriples(p, 1)
	if len(cands) == 0 {
		t.Fatal("no candidate triples")
	}
	for _, tr := range cands {
		if tr.P != "works_at" && tr.P != "email" {
			t.Fatalf("irrelevant candidate %v", tr)
		}
	}
}

func TestTheorem35WitnessWeaklyMonotone(t *testing.T) {
	// E4: the Theorem 3.5 witness is weakly monotone (per the appendix
	// proof) even though it is not well designed.
	p := pat(t, "(((a b c) OPT (?X d e)) OPT (?Y f g)) FILTER (bound(?X) || bound(?Y))")
	if ce := CheckWeaklyMonotone(p, CheckOpts{Trials: 400, Exhaustive: true, Seed: 11}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
}

func TestEliminateNSPreservesWeakMonotonicityCheck(t *testing.T) {
	// Cross-package sanity: NS elimination must not change the verdict
	// of the tester on the running simple pattern.
	p := sparql.NS{P: pat(t, "(?X was_born_in Chile) UNION ((?X was_born_in Chile) AND (?X email ?Y))")}
	q := transform.EliminateNS(p)
	if ce := CheckWeaklyMonotone(q, CheckOpts{Trials: 200, Exhaustive: true, Seed: 12}); ce != nil {
		t.Fatalf("false counterexample on eliminated form:\n%s", ce)
	}
}
