package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Counterexample is a witness that a semantic property fails: a pair of
// graphs G1 ⊆ G2 (G2 unused for single-graph properties) and, when
// applicable, the mapping that is lost.
type Counterexample struct {
	G1, G2  *rdf.Graph
	Mapping sparql.Mapping
	Detail  string
}

func (c *Counterexample) String() string {
	if c == nil {
		return "<none>"
	}
	s := c.Detail
	if c.G1 != nil {
		s += "\nG1:\n" + c.G1.String()
	}
	if c.G2 != nil {
		s += "G2:\n" + c.G2.String()
	}
	return s
}

// CheckOpts parameterizes the semantic testers.
type CheckOpts struct {
	// Trials is the number of random graph pairs to sample (default 200).
	Trials int
	// MaxTriples bounds the size of sampled graphs (default 8).
	MaxTriples int
	// FreshIRIs is the number of IRIs beyond I(P) in the pool
	// (default 2); unknown resources are what distinguish the open
	// world from the closed one.
	FreshIRIs int
	// Exhaustive additionally enumerates all pairs G1 ⊆ G2 over the
	// first ExhaustiveTriples candidate triples (default 6; 3^6 = 729
	// pairs).
	Exhaustive        bool
	ExhaustiveTriples int
	Seed              int64
}

func (o *CheckOpts) fill() {
	if o.Trials == 0 {
		o.Trials = 200
	}
	if o.MaxTriples == 0 {
		o.MaxTriples = 8
	}
	if o.FreshIRIs == 0 {
		o.FreshIRIs = 2
	}
	if o.ExhaustiveTriples == 0 {
		o.ExhaustiveTriples = 6
	}
}

// candidateTriples builds a pool of triples relevant to the pattern:
// every instantiation of each triple pattern of p over the IRI pool
// I(p) ∪ {fresh}.  Graphs sampled from this pool exercise exactly the
// joins, optional matches and filters of p.
func candidateTriples(p sparql.Pattern, fresh int) []rdf.Triple {
	pool := sparql.IRIs(p)
	for i := 0; i < fresh; i++ {
		pool = append(pool, rdf.IRI(fmt.Sprintf("fresh_%d", i)))
	}
	seen := make(map[rdf.Triple]struct{})
	var out []rdf.Triple
	var walk func(q sparql.Pattern)
	add := func(t rdf.Triple) {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	instantiate := func(tp sparql.TriplePattern) {
		vars := sparql.Vars(tp)
		assign := make(sparql.Mapping)
		var rec func(i int)
		rec = func(i int) {
			if i == len(vars) {
				if tr, ok := assign.Apply(tp); ok {
					add(tr)
				}
				return
			}
			for _, iri := range pool {
				assign[vars[i]] = iri
				rec(i + 1)
			}
			delete(assign, vars[i])
		}
		rec(0)
	}
	walk = func(q sparql.Pattern) {
		switch r := q.(type) {
		case sparql.TriplePattern:
			instantiate(r)
		case sparql.And:
			walk(r.L)
			walk(r.R)
		case sparql.Union:
			walk(r.L)
			walk(r.R)
		case sparql.Opt:
			walk(r.L)
			walk(r.R)
		case sparql.Filter:
			walk(r.P)
		case sparql.Select:
			walk(r.P)
		case sparql.NS:
			walk(r.P)
		}
	}
	walk(p)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// forEachGraphPair invokes fn on sampled (and optionally exhaustively
// enumerated) pairs G1 ⊆ G2 relevant to p, until fn returns false.
func forEachGraphPair(p sparql.Pattern, opts CheckOpts, fn func(g1, g2 *rdf.Graph) bool) {
	opts.fill()
	cands := candidateTriples(p, opts.FreshIRIs)
	if opts.Exhaustive {
		n := len(cands)
		if n > opts.ExhaustiveTriples {
			n = opts.ExhaustiveTriples
		}
		// Each candidate triple is independently absent / in G2 only /
		// in both, giving all subset pairs over the first n candidates.
		var rec func(i int, g1, g2 *rdf.Graph) bool
		rec = func(i int, g1, g2 *rdf.Graph) bool {
			if i == n {
				return fn(g1, g2)
			}
			if !rec(i+1, g1, g2) {
				return false
			}
			g2.AddTriple(cands[i])
			if !rec(i+1, g1, g2) {
				return false
			}
			g1.AddTriple(cands[i])
			ok := rec(i+1, g1, g2)
			g1.Remove(cands[i].S, cands[i].P, cands[i].O)
			g2.Remove(cands[i].S, cands[i].P, cands[i].O)
			return ok
		}
		if !rec(0, rdf.NewGraph(), rdf.NewGraph()) {
			return
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for trial := 0; trial < opts.Trials; trial++ {
		g1, g2 := rdf.NewGraph(), rdf.NewGraph()
		if len(cands) > 0 {
			n1 := rng.Intn(opts.MaxTriples)
			for i := 0; i < n1; i++ {
				t := cands[rng.Intn(len(cands))]
				g1.AddTriple(t)
				g2.AddTriple(t)
			}
			n2 := rng.Intn(opts.MaxTriples)
			for i := 0; i < n2; i++ {
				g2.AddTriple(cands[rng.Intn(len(cands))])
			}
		}
		if !fn(g1, g2) {
			return
		}
	}
}

// CheckWeaklyMonotone tests Definition 3.2: ⟦P⟧_G1 ⊑ ⟦P⟧_G2 for all
// sampled G1 ⊆ G2.  A non-nil counterexample disproves weak
// monotonicity; nil means no violation was found.
func CheckWeaklyMonotone(p sparql.Pattern, opts CheckOpts) *Counterexample {
	var ce *Counterexample
	forEachGraphPair(p, opts, func(g1, g2 *rdf.Graph) bool {
		r1, r2 := sparql.Eval(g1, p), sparql.Eval(g2, p)
		for _, mu := range r1.Mappings() {
			subsumed := false
			for _, nu := range r2.Mappings() {
				if mu.SubsumedBy(nu) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				ce = &Counterexample{
					G1: g1.Clone(), G2: g2.Clone(), Mapping: mu.Clone(),
					Detail: fmt.Sprintf("mapping %s ∈ ⟦P⟧_G1 is not subsumed in ⟦P⟧_G2", mu),
				}
				return false
			}
		}
		return true
	})
	return ce
}

// CheckMonotone tests plain monotonicity: ⟦P⟧_G1 ⊆ ⟦P⟧_G2 for all
// sampled G1 ⊆ G2.
func CheckMonotone(p sparql.Pattern, opts CheckOpts) *Counterexample {
	var ce *Counterexample
	forEachGraphPair(p, opts, func(g1, g2 *rdf.Graph) bool {
		r1, r2 := sparql.Eval(g1, p), sparql.Eval(g2, p)
		for _, mu := range r1.Mappings() {
			if !r2.Contains(mu) {
				ce = &Counterexample{
					G1: g1.Clone(), G2: g2.Clone(), Mapping: mu.Clone(),
					Detail: fmt.Sprintf("mapping %s ∈ ⟦P⟧_G1 is missing from ⟦P⟧_G2", mu),
				}
				return false
			}
		}
		return true
	})
	return ce
}

// CheckSubsumptionFree tests the Section 5.2 property ⟦P⟧_G = ⟦P⟧_G^max
// on sampled graphs.
func CheckSubsumptionFree(p sparql.Pattern, opts CheckOpts) *Counterexample {
	var ce *Counterexample
	forEachGraphPair(p, opts, func(_, g *rdf.Graph) bool {
		r := sparql.Eval(g, p)
		if !r.Equal(r.Maximal()) {
			for _, mu := range r.Mappings() {
				if !r.Maximal().Contains(mu) {
					ce = &Counterexample{
						G1: g.Clone(), Mapping: mu.Clone(),
						Detail: fmt.Sprintf("answer %s is properly subsumed in ⟦P⟧_G", mu),
					}
					return false
				}
			}
		}
		return true
	})
	return ce
}

// CheckConstructMonotone tests Definition 6.2: ans(Q, G1) ⊆ ans(Q, G2)
// for all sampled G1 ⊆ G2.
func CheckConstructMonotone(q sparql.ConstructQuery, opts CheckOpts) *Counterexample {
	var ce *Counterexample
	forEachGraphPair(q.Where, opts, func(g1, g2 *rdf.Graph) bool {
		a1, a2 := sparql.EvalConstruct(g1, q), sparql.EvalConstruct(g2, q)
		if !a1.IsSubgraphOf(a2) {
			var missing rdf.Triple
			a1.ForEach(func(t rdf.Triple) bool {
				if !a2.ContainsTriple(t) {
					missing = t
					return false
				}
				return true
			})
			ce = &Counterexample{
				G1: g1.Clone(), G2: g2.Clone(),
				Detail: fmt.Sprintf("triple %s ∈ ans(Q,G1) is missing from ans(Q,G2)", missing),
			}
			return false
		}
		return true
	})
	return ce
}
