package analysis

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// CheckEquivalent tests P1 ≡ P2 (identical answer sets on every graph)
// by sampling and exhaustively enumerating small graphs built from the
// candidate triples of *both* patterns.  A non-nil counterexample
// disproves equivalence; nil means no distinguishing graph was found.
func CheckEquivalent(p1, p2 sparql.Pattern, opts CheckOpts) *Counterexample {
	return checkOnGraphs(p1, p2, opts, func(a, b *sparql.MappingSet) bool {
		return a.Equal(b)
	}, "⟦P1⟧_G ≠ ⟦P2⟧_G")
}

// CheckSubsumptionEquivalent tests P1 ≡ₛ P2 (Section 4): the answer
// sets are mutually subsumed on every sampled graph.
func CheckSubsumptionEquivalent(p1, p2 sparql.Pattern, opts CheckOpts) *Counterexample {
	return checkOnGraphs(p1, p2, opts, func(a, b *sparql.MappingSet) bool {
		return a.SubsumptionEquivalent(b)
	}, "⟦P1⟧_G and ⟦P2⟧_G are not mutually subsumed")
}

func checkOnGraphs(p1, p2 sparql.Pattern, opts CheckOpts,
	same func(a, b *sparql.MappingSet) bool, detail string) *Counterexample {
	// Graphs are sampled from the candidate pool of both patterns, so
	// that each pattern's joins and filters are exercised.
	combined := sparql.Union{L: p1, R: p2}
	var ce *Counterexample
	test := func(g *rdf.Graph) bool {
		if !same(sparql.Eval(g, p1), sparql.Eval(g, p2)) {
			ce = &Counterexample{
				G1:     g.Clone(),
				Detail: fmt.Sprintf("%s on the graph below", detail),
			}
			return false
		}
		return true
	}
	forEachGraphPair(combined, opts, func(g1, g2 *rdf.Graph) bool {
		return test(g1) && test(g2)
	})
	return ce
}

// CheckContained tests P1 ⊑ P2 (⟦P1⟧_G ⊆ ⟦P2⟧_G on every graph) on
// sampled graphs; the containment notion behind the equivalence and
// optimization literature the paper builds on ([23, 32]).
func CheckContained(p1, p2 sparql.Pattern, opts CheckOpts) *Counterexample {
	return checkOnGraphs(p1, p2, opts, func(a, b *sparql.MappingSet) bool {
		for _, mu := range a.Mappings() {
			if !b.Contains(mu) {
				return false
			}
		}
		return true
	}, "⟦P1⟧_G ⊄ ⟦P2⟧_G")
}

// CheckSubsumed tests P1 ⊑ₛ P2 (⟦P1⟧_G ⊑ ⟦P2⟧_G, subsumption of answer
// sets, on every sampled graph) — one half of subsumption equivalence.
func CheckSubsumed(p1, p2 sparql.Pattern, opts CheckOpts) *Counterexample {
	return checkOnGraphs(p1, p2, opts, func(a, b *sparql.MappingSet) bool {
		return a.SubsumedBy(b)
	}, "⟦P1⟧_G ⋢ ⟦P2⟧_G")
}
