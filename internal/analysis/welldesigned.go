// Package analysis implements the static and semantic query analyses of
// the paper: well designedness (Definition 3.4 and its union extension
// of Section 3.3), and testers for the semantic notions — monotonicity,
// weak monotonicity (Definition 3.2), subsumption-freeness (Section
// 5.2) and CONSTRUCT monotonicity (Definition 6.2).
//
// The semantic notions are undecidable (the paper points this out for
// weak monotonicity and CONSTRUCT monotonicity), so this package
// provides *testers*: exhaustive checks over small graph universes and
// randomized checks over sampled graph pairs.  A returned
// counterexample is always sound; a pass is evidence, not proof.
package analysis

import (
	"fmt"

	"repro/internal/sparql"
)

// IsWellDesigned reports whether a SPARQL[AOF] pattern is well designed
// (Definition 3.4):
//
//  1. for every sub-pattern (P1 FILTER R), var(R) ⊆ var(P1); and
//  2. for every sub-pattern (P1 OPT P2) and variable ?X ∈ var(P2): if
//     ?X occurs in P outside the sub-pattern, then ?X ∈ var(P1).
//
// It returns an error if the pattern is outside SPARQL[AOF] (the notion
// is defined only there).
func IsWellDesigned(p sparql.Pattern) (bool, error) {
	if !sparql.InFragment(p, sparql.FragmentAOF) {
		return false, fmt.Errorf("analysis: well designedness is defined for SPARQL[AOF]; pattern uses %v", opsOutside(p, sparql.FragmentAOF))
	}
	return wdCheck(p, make(varSet)), nil
}

// IsWellDesignedUnion reports whether a SPARQL[AUOF] pattern is a
// well-designed union (Section 3.3): P1 UNION ⋯ UNION Pn where every
// disjunct is a well-designed SPARQL[AOF] pattern.
func IsWellDesignedUnion(p sparql.Pattern) (bool, error) {
	if !sparql.InFragment(p, sparql.FragmentAUOF) {
		return false, fmt.Errorf("analysis: well-designed unions are defined for SPARQL[AUOF]; pattern uses %v", opsOutside(p, sparql.FragmentAUOF))
	}
	for _, d := range sparql.UnionDisjuncts(p) {
		if sparql.Ops(d)[sparql.OpUnion] {
			return false, nil // UNION below the top level
		}
		ok, err := IsWellDesigned(d)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

type varSet map[sparql.Var]struct{}

func toSet(vs []sparql.Var) varSet {
	s := make(varSet, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

func (s varSet) union(t varSet) varSet {
	out := make(varSet, len(s)+len(t))
	for v := range s {
		out[v] = struct{}{}
	}
	for v := range t {
		out[v] = struct{}{}
	}
	return out
}

// wdCheck walks the pattern carrying the set of variables that occur in
// the full pattern *outside* the current sub-pattern.
func wdCheck(p sparql.Pattern, outside varSet) bool {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return true
	case sparql.And:
		lv, rv := toSet(sparql.Vars(q.L)), toSet(sparql.Vars(q.R))
		return wdCheck(q.L, outside.union(rv)) && wdCheck(q.R, outside.union(lv))
	case sparql.Opt:
		lv, rv := toSet(sparql.Vars(q.L)), toSet(sparql.Vars(q.R))
		for v := range rv {
			if _, out := outside[v]; out {
				if _, inL := lv[v]; !inL {
					return false
				}
			}
		}
		return wdCheck(q.L, outside.union(rv)) && wdCheck(q.R, outside.union(lv))
	case sparql.Filter:
		condVars := toSet(q.Cond.Vars(nil))
		pv := toSet(sparql.Vars(q.P))
		for v := range condVars {
			if _, ok := pv[v]; !ok {
				return false
			}
		}
		return wdCheck(q.P, outside.union(condVars))
	default:
		// Unreachable after the fragment check.
		panic(fmt.Sprintf("analysis: unexpected pattern type %T", p))
	}
}

func opsOutside(p sparql.Pattern, frag sparql.OpSet) []sparql.Op {
	var out []sparql.Op
	for op := range sparql.Ops(p) {
		if !frag[op] {
			out = append(out, op)
		}
	}
	return out
}
