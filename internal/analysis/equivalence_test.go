package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparql"
	"repro/internal/transform"
	"repro/internal/workload"
)

func TestCheckEquivalentPositive(t *testing.T) {
	// A pattern is equivalent to its NS-eliminated form (Theorem 5.1).
	p := pat(t, "NS((?X a b) UNION ((?X a b) AND (?X c ?Y)))")
	q := transform.EliminateNS(p)
	if ce := CheckEquivalent(p, q, CheckOpts{Trials: 150, Exhaustive: true, Seed: 1}); ce != nil {
		t.Fatalf("false inequivalence:\n%s", ce)
	}
}

func TestCheckEquivalentNegative(t *testing.T) {
	// OPT vs plain AND differ on graphs without the optional part.
	p := pat(t, "(?X a b) OPT (?X c ?Y)")
	q := pat(t, "(?X a b) AND (?X c ?Y)")
	ce := CheckEquivalent(p, q, CheckOpts{Trials: 300, Exhaustive: true, Seed: 2})
	if ce == nil {
		t.Fatal("inequivalent patterns not distinguished")
	}
	// The counterexample graph really distinguishes them.
	if sparql.Eval(ce.G1, p).Equal(sparql.Eval(ce.G1, q)) {
		t.Fatal("counterexample graph does not distinguish the patterns")
	}
}

func TestCheckSubsumptionEquivalent(t *testing.T) {
	// P1 OPT P2 vs P1 UNION (P1 AND P2): not equal as sets, but
	// subsumption-equivalent (the union keeps the subsumed bare P1
	// answers).
	p := pat(t, "(?X a b) OPT (?X c ?Y)")
	q := pat(t, "(?X a b) UNION ((?X a b) AND (?X c ?Y))")
	if ce := CheckEquivalent(p, q, CheckOpts{Trials: 300, Exhaustive: true, Seed: 3}); ce == nil {
		t.Fatal("set inequality not detected")
	}
	if ce := CheckSubsumptionEquivalent(p, q, CheckOpts{Trials: 300, Exhaustive: true, Seed: 4}); ce != nil {
		t.Fatalf("false subsumption-inequivalence:\n%s", ce)
	}
	// And a genuinely different pair fails even under subsumption.
	r := pat(t, "(?X zzz b)")
	if ce := CheckSubsumptionEquivalent(p, r, CheckOpts{Trials: 300, Exhaustive: true, Seed: 5}); ce == nil {
		t.Fatal("different patterns reported subsumption-equivalent")
	}
}

// TestCheckEquivalentOnRewritesQuick cross-validates the transform
// package through the tester: every rewrite chain must be judged
// equivalent (or subsumption-equivalent for OptToNS).
func TestCheckEquivalentOnRewritesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Vars: []sparql.Var{"X", "Y"}})
		opts := CheckOpts{Trials: 40, Seed: seed}
		if ce := CheckEquivalent(p, transform.EliminateNS(p), opts); ce != nil {
			t.Logf("EliminateNS inequivalent for %s:\n%s", p, ce)
			return false
		}
		if ce := CheckSubsumptionEquivalent(p, transform.OptToNS(p), opts); ce != nil {
			t.Logf("OptToNS not subsumption-equivalent for %s:\n%s", p, ce)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCheckContained(t *testing.T) {
	sub := pat(t, "(?X a b) AND (?X c ?Y)")
	// AND binds tighter: ((?X a b) AND (?X c ?Y)) UNION (?X a b).
	sup := pat(t, "(?X a b) AND (?X c ?Y) UNION (?X a b)")
	if ce := CheckContained(sub, sup, CheckOpts{Trials: 200, Exhaustive: true, Seed: 11}); ce != nil {
		t.Fatalf("false non-containment:\n%s", ce)
	}
	if ce := CheckContained(sup, sub, CheckOpts{Trials: 300, Exhaustive: true, Seed: 12}); ce == nil {
		t.Fatal("reverse containment not refuted")
	}
}

func TestCheckSubsumed(t *testing.T) {
	// Every pattern's answers are subsumed by those of its OPT extension.
	p := pat(t, "(?X a b)")
	q := pat(t, "(?X a b) OPT (?X c ?Y)")
	if ce := CheckSubsumed(p, q, CheckOpts{Trials: 200, Exhaustive: true, Seed: 13}); ce != nil {
		t.Fatalf("false non-subsumption:\n%s", ce)
	}
	r := pat(t, "(?X zzz ?Z)")
	if ce := CheckSubsumed(p, r, CheckOpts{Trials: 200, Exhaustive: true, Seed: 14}); ce == nil {
		t.Fatal("unrelated patterns reported subsumed")
	}
}
