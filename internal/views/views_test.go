package views

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func TestNewRejectsNonMonotone(t *testing.T) {
	base := rdf.NewGraph()
	for _, text := range []string{
		"CONSTRUCT {(?x out ?y)} WHERE (?x a ?y) OPT (?x b ?z)",
		"CONSTRUCT {(?x out ?x)} WHERE NS((?x a b))",
		"CONSTRUCT {(?x out ?x)} WHERE SELECT {?x} WHERE (?x a ?y)",
	} {
		q := parser.MustParseConstruct(text)
		if _, err := New(q, base); err == nil {
			t.Errorf("non-AUF view accepted: %s", text)
		}
	}
}

func TestViewBasics(t *testing.T) {
	base := rdf.FromTriples(rdf.T("juan", "born", "chile"))
	q := parser.MustParseConstruct(
		"CONSTRUCT {(?p chilean yes)} WHERE (?p born chile)")
	v, err := New(q, base)
	if err != nil {
		t.Fatal(err)
	}
	if v.Graph().Len() != 1 || !v.Graph().Contains("juan", "chilean", "yes") {
		t.Fatalf("initial view:\n%s", v.Graph())
	}
	// Mutating the original base must not affect the view's snapshot.
	base.Add("ana", "born", "chile")
	if v.Base().Len() != 1 {
		t.Fatal("view base not snapshotted")
	}
	// Inserting through the view extends the output.
	if added := v.Insert(rdf.T("ana", "born", "chile")); added != 1 {
		t.Fatalf("added = %d", added)
	}
	if !v.Graph().Contains("ana", "chilean", "yes") {
		t.Fatal("incremental triple missing")
	}
	// Re-inserting is a no-op.
	if added := v.Insert(rdf.T("ana", "born", "chile")); added != 0 {
		t.Fatal("duplicate insert produced output")
	}
}

func TestViewJoinAcrossDelta(t *testing.T) {
	// A join whose two sides arrive in separate inserts: the AND delta
	// rule must combine new triples with both old and new ones.
	q := parser.MustParseConstruct(
		"CONSTRUCT {(?p works_in ?c)} WHERE (?p works_at ?u) AND (?u located_in ?c)")
	v, err := New(q, rdf.NewGraph())
	if err != nil {
		t.Fatal(err)
	}
	v.Insert(rdf.T("ana", "works_at", "puc"))
	if v.Graph().Len() != 0 {
		t.Fatal("half a join produced output")
	}
	v.Insert(rdf.T("puc", "located_in", "chile"))
	if !v.Graph().Contains("ana", "works_in", "chile") {
		t.Fatalf("join across deltas missed:\n%s", v.Graph())
	}
	// Both sides within one delta.
	v.Insert(rdf.T("bob", "works_at", "uc"), rdf.T("uc", "located_in", "peru"))
	if !v.Graph().Contains("bob", "works_in", "peru") {
		t.Fatalf("join within one delta missed:\n%s", v.Graph())
	}
}

// TestViewMatchesRecomputeQuick: after any sequence of inserts, the
// incrementally maintained output equals a from-scratch recomputation.
func TestViewMatchesRecomputeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 3,
			Ops:   []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter},
		})
		vars := sparql.Vars(p)
		tmpl := []sparql.TriplePattern{sparql.TP(sparql.I("s"), sparql.I("p"), sparql.I("o"))}
		if len(vars) > 0 {
			tmpl = append(tmpl, sparql.TP(
				sparql.V(vars[rng.Intn(len(vars))]), sparql.I("out"), sparql.V(vars[rng.Intn(len(vars))])))
		}
		q := sparql.ConstructQuery{Template: tmpl, Where: p}
		v, err := New(q, workload.RandomGraph(rng, rng.Intn(10), nil))
		if err != nil {
			return false
		}
		for round := 0; round < 3; round++ {
			var batch []rdf.Triple
			ext := workload.RandomGraph(rng, 1+rng.Intn(5), nil)
			ext.ForEach(func(tr rdf.Triple) bool { batch = append(batch, tr); return true })
			v.Insert(batch...)
			want := sparql.EvalConstruct(v.Base(), q)
			if !v.Graph().Equal(want) {
				t.Logf("query %s\nview:\n%s\nrecompute:\n%s", q, v.Graph(), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
