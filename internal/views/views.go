// Package views implements materialized CONSTRUCT views with
// incremental maintenance under triple insertions.
//
// This is the practical payoff of Section 6 of the paper: a CONSTRUCT
// query in the monotone fragment CONSTRUCT[AUF] (Corollary 6.8) never
// retracts output triples when the base graph grows, so a materialized
// view can be maintained by *adding* the triples derived from the
// delta — no recomputation, no deletions.  Non-monotone queries (OPT,
// NS or SELECT in the WHERE clause) are rejected at construction time;
// for them, monotone maintenance would be unsound.
//
// The delta evaluation is the semi-naive rule set over the mapping
// algebra (with G the already-updated base graph):
//
//	Δ⟦t⟧            = matches of t in Δ
//	Δ⟦P1 AND P2⟧    = Δ⟦P1⟧ ⋈ ⟦P2⟧_G  ∪  ⟦P1⟧_G ⋈ Δ⟦P2⟧
//	Δ⟦P1 UNION P2⟧  = Δ⟦P1⟧ ∪ Δ⟦P2⟧
//	Δ⟦P FILTER R⟧   = {µ ∈ Δ⟦P⟧ | µ ⊨ R}
//
// which computes a superset of the genuinely new answers and a subset
// of ⟦P⟧_G — exactly what is needed to extend the view.  The AND rule's
// ⟦·⟧_G probes run as constrained evaluations seeded by the (small)
// delta side, so an insert costs ~|Δ| index probes, independent of |G|.
//
// The delta rules run on the ID-native row runtime: the delta is a
// slice of rdf.IDTriple in the base dictionary's ID space, Δ⟦t⟧ scans
// it with sparql.EvalTripleDelta, and the ⟦·⟧_G probes seed a
// sparql.Searcher with each delta row.  WHERE clauses wider than
// sparql.MaxSchemaVars keep the original string-mapping path.
package views

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// View is a materialized monotone CONSTRUCT view over a base graph.
type View struct {
	query sparql.ConstructQuery
	base  rdf.Store
	out   rdf.Store
	sc    *sparql.VarSchema // nil: WHERE wider than MaxSchemaVars, string fallback
}

// New materializes a CONSTRUCT[AUF] view over a snapshot of the base
// graph.  The base graph is cloned into a fresh in-memory store: the
// view is updated exclusively through Insert, so that its state stays
// consistent.  To maintain a view directly over a shared (for example
// durable) store, use Over.
func New(q sparql.ConstructQuery, base rdf.Store) (*View, error) {
	return newView(q, base, true)
}

// Over materializes a CONSTRUCT[AUF] view directly over base, without
// cloning it.  The view adopts the store: after Over returns, base
// must be mutated exclusively through the view's Insert methods, which
// keep (base, out) consistent and stage each insert as one atomic
// durability batch — on a durable backend, a rolled-back insert leaves
// no committed WAL records.
func Over(q sparql.ConstructQuery, base rdf.Store) (*View, error) {
	return newView(q, base, false)
}

func newView(q sparql.ConstructQuery, base rdf.Store, clone bool) (*View, error) {
	if !sparql.InFragment(q.Where, sparql.FragmentAUF) {
		return nil, fmt.Errorf("views: WHERE clause outside CONSTRUCT[AUF] (the monotone fragment, Corollary 6.8): %s", q.Where)
	}
	v := &View{query: q, base: base}
	if clone {
		v.base = rdf.CloneStore(base)
	}
	if sc, ok := sparql.SchemaFor(q.Where); ok {
		v.sc = sc
	}
	v.out = sparql.EvalConstruct(v.base, q)
	return v, nil
}

// Graph returns the materialized output graph.  Callers must not
// modify it.
func (v *View) Graph() rdf.Store { return v.out }

// Base returns the view's snapshot of the base graph.  Callers must
// not modify it; use Insert.
func (v *View) Base() rdf.Store { return v.base }

// Insert adds triples to the base graph and incrementally extends the
// output.  It returns the number of new output triples.  Ungoverned
// legacy entry point; servers should use InsertCtx or InsertBudget.
func (v *View) Insert(triples ...rdf.Triple) int {
	added, err := v.InsertBudget(nil, triples...)
	if err != nil {
		return 0
	}
	return added
}

// InsertCtx is Insert bounded by a context: if the delta evaluation is
// canceled, the insert is rolled back (see InsertBudget).
func (v *View) InsertCtx(ctx context.Context, triples ...rdf.Triple) (int, error) {
	return v.InsertBudget(sparql.NewBudget(ctx), triples...)
}

// InsertBudget is Insert under a resource governor.  The operation is
// atomic with respect to failure: if the governor aborts the delta
// evaluation, the freshly inserted base triples are removed again and
// the output graph is left untouched, so the view never holds a
// half-maintained state.  The returned error is the budget's typed
// error.
func (v *View) InsertBudget(b *sparql.Budget, triples ...rdf.Triple) (int, error) {
	return v.InsertObserved(b, nil, triples...)
}

// InsertObserved is InsertBudget with an execution profile: when prof
// is non-nil, a "view-insert" node is attached under it recording the
// delta size (rows in), the new output triples (rows out), wall time,
// and budget consumption of the delta evaluation.
func (v *View) InsertObserved(b *sparql.Budget, prof *obs.Node, triples ...rdf.Triple) (int, error) {
	if err := b.Err(); err != nil {
		return 0, err // a poisoned budget fails before mutating the base
	}
	var node *obs.Node
	var start time.Time
	var steps0, rows0, bytes0 int64
	if prof != nil {
		node = prof.Child("view-insert", "")
		start = time.Now()
		steps0, rows0, bytes0 = b.Counters()
	}
	finish := func(deltaLen, added int) {
		if node == nil {
			return
		}
		node.AddWall(time.Since(start))
		steps1, rows1, bytes1 := b.Counters()
		node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
		node.AddRowsIn(int64(deltaLen))
		node.AddRowsOut(int64(added))
	}
	// The whole insert is one durability batch: the adds (and, on the
	// unwind path, their compensating removes) stay staged until the
	// delta evaluation succeeds, so a durable base commits either one
	// atomic WAL record for the full insert or nothing at all.
	v.base.BeginBatch()
	var delta []rdf.Triple
	for _, t := range triples {
		if v.base.AddTriple(t) {
			delta = append(delta, t)
		}
	}
	if len(delta) == 0 {
		v.base.AbortBatch() // nothing staged; nothing to persist
		finish(0, 0)
		return 0, nil
	}
	newAnswers, err := v.deltaAnswers(delta, b)
	if err != nil {
		// Unwind: the output was not touched yet; removing the delta
		// restores the base, keeping (base, out) consistent.  The
		// removes land in the same open batch as the adds, and the
		// abort discards both — a rolled-back insert must not leave
		// committed WAL records on a durable base.
		for _, t := range delta {
			v.base.Remove(t.S, t.P, t.O)
		}
		v.base.AbortBatch()
		finish(len(delta), 0)
		return 0, err
	}
	if err := v.base.CommitBatch(); err != nil {
		// The log rejected the batch (I/O failure on a durable base).
		// Re-sync memory with the log's view of the world: remove the
		// delta again, discarding the compensating records unwritten.
		v.base.BeginBatch()
		for _, t := range delta {
			v.base.Remove(t.S, t.P, t.O)
		}
		v.base.AbortBatch()
		finish(len(delta), 0)
		return 0, err
	}
	added := 0
	for _, mu := range newAnswers.Mappings() {
		for _, tp := range v.query.Template {
			if tr, ok := mu.Apply(tp); ok {
				if v.out.AddTriple(tr) {
					added++
				}
			}
		}
	}
	finish(len(delta), added)
	return added, nil
}

// deltaAnswers computes the delta answer set on the row runtime, or on
// the string fallback for WHERE clauses wider than MaxSchemaVars.
func (v *View) deltaAnswers(delta []rdf.Triple, b *sparql.Budget) (*sparql.MappingSet, error) {
	if v.sc != nil {
		return v.deltaEvalRows(delta, b)
	}
	dg := rdf.NewGraph()
	for _, t := range delta {
		dg.AddTriple(t)
	}
	return deltaEval(v.base, dg, v.query.Where, b)
}

// deltaEvalRows runs the delta rules on the row runtime.  AddTriple has
// interned the delta's IRIs into the base dictionary, so the delta maps
// losslessly into ID space.
//
// The probes may fan out across goroutines (see probe), all reading
// the base graph; the read snapshot makes any concurrent mutation of
// the base — which would corrupt an index under a worker — fail
// loudly at the write site for the duration of the evaluation.
func (v *View) deltaEvalRows(delta []rdf.Triple, b *sparql.Budget) (*sparql.MappingSet, error) {
	release := v.base.AcquireRead()
	defer release()
	d := v.base.Dict()
	idDelta := make([]rdf.IDTriple, len(delta))
	for i, t := range delta {
		s, _ := d.Lookup(t.S)
		p, _ := d.Lookup(t.P)
		o, _ := d.Lookup(t.O)
		idDelta[i] = rdf.IDTriple{S: s, P: p, O: o}
	}
	s := sparql.NewSearcherBudget(v.base, v.sc, b)
	rs, err := v.deltaRows(idDelta, v.query.Where, s)
	if err != nil {
		return nil, err
	}
	return rs.MappingSet(d), nil
}

func (v *View) deltaRows(delta []rdf.IDTriple, p sparql.Pattern, s *sparql.Searcher) (*sparql.RowSet, error) {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return sparql.EvalTripleDeltaB(q, v.sc, v.base.Dict(), delta, s.Budget())
	case sparql.And:
		dl, err := v.deltaRows(delta, q.L, s)
		if err != nil {
			return nil, err
		}
		l, err := v.probe(dl, q.R, s)
		if err != nil {
			return nil, err
		}
		dr, err := v.deltaRows(delta, q.R, s)
		if err != nil {
			return nil, err
		}
		r, err := v.probe(dr, q.L, s)
		if err != nil {
			return nil, err
		}
		return l.UnionB(r, s.Budget())
	case sparql.Union:
		l, err := v.deltaRows(delta, q.L, s)
		if err != nil {
			return nil, err
		}
		r, err := v.deltaRows(delta, q.R, s)
		if err != nil {
			return nil, err
		}
		return l.UnionB(r, s.Budget())
	case sparql.Filter:
		inner, err := v.deltaRows(delta, q.P, s)
		if err != nil {
			return nil, err
		}
		return inner.FilterB(
			sparql.CompileCond(q.Cond, v.sc, v.base.Dict()), s.Budget())
	default:
		// New() admits only CONSTRUCT[AUF]; reaching this means the
		// pattern was mutated behind the view's back.
		return nil, sparql.ErrUnsupportedPattern{Pattern: p}
	}
}

// parProbeMin is the delta size (in rows) below which the probe loop
// stays on one goroutine: spinning up per-worker searchers only pays
// off once there are enough independent probes to share out.
const parProbeMin = 64

// probe computes small ⋈ ⟦p⟧_G by seeding a searcher with each delta
// row and streaming the compatible solutions of p — the
// index-nested-loop delta join, without allocating a mapping per probe
// step.
//
// The probes are independent (each reads the base graph and writes
// only its own output), so large deltas fan out across GOMAXPROCS
// goroutines: each worker gets a contiguous chunk of delta rows and
// its own Searcher, while all workers share s's Budget — safe, since
// Budget accounting is atomic — so one governor bounds the whole
// insert no matter how many workers it uses.
func (v *View) probe(small *sparql.RowSet, p sparql.Pattern, s *sparql.Searcher) (*sparql.RowSet, error) {
	workers := runtime.GOMAXPROCS(0)
	if small.Len() >= parProbeMin && workers > 1 {
		if workers > small.Len()/(parProbeMin/2) {
			workers = small.Len() / (parProbeMin / 2)
		}
		return v.probeChunked(small, p, s.Budget(), workers)
	}
	return v.probeRange(small, 0, small.Len(), p, s)
}

// probeRange runs the probes for delta rows [lo, hi) on one searcher.
func (v *View) probeRange(small *sparql.RowSet, lo, hi int, p sparql.Pattern, s *sparql.Searcher) (*sparql.RowSet, error) {
	out := sparql.NewRowSet(v.sc)
	for i := lo; i < hi; i++ {
		r := small.Row(i)
		s.Seed(r)
		if err := s.Search(p, r.Mask, func(m uint64) bool {
			out.Add(s.IDs(), r.Mask|m)
			return true
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// probeChunked shares the delta rows across workers and merges the
// per-worker results in chunk order.  Every worker is joined before
// returning, error or not, so a governed abort drains cleanly and the
// caller's rollback never races a live probe.
func (v *View) probeChunked(small *sparql.RowSet, p sparql.Pattern, b *sparql.Budget, workers int) (*sparql.RowSet, error) {
	outs := make([]*sparql.RowSet, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo, hi := w*small.Len()/workers, (w+1)*small.Len()/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			outs[w], errs[w] = v.probeRange(small, lo, hi, p, sparql.NewSearcherBudget(v.base, v.sc, b))
		}(w, lo, hi)
	}
	outs[0], errs[0] = v.probeRange(small, 0, small.Len()/workers, p, sparql.NewSearcherBudget(v.base, v.sc, b))
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := outs[0]
	for _, part := range outs[1:] {
		for i := 0; i < part.Len(); i++ {
			out.AddRow(part.Row(i))
		}
	}
	return out, nil
}

// deltaEval returns a set Ω with ⟦P⟧_{G} ∖ ⟦P⟧_{G∖Δ} ⊆ Ω ⊆ ⟦P⟧_G,
// where g is the already-updated base graph: every genuinely new
// answer, and only valid answers.  Since the output is a set, the AND
// rule may count an all-new join twice; deduplication makes that
// harmless, and probing the updated graph on both sides avoids keeping
// (or cloning) the pre-insert graph.
func deltaEval(g, delta rdf.Store, p sparql.Pattern, b *sparql.Budget) (*sparql.MappingSet, error) {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return sparql.EvalBudget(delta, q, b)
	case sparql.And:
		// Index-nested-loop delta join: the delta side is small, so the
		// other side is probed with each delta mapping as a constraint
		// (sparql.EvalCompatible turns bound variables into index
		// lookups) instead of being evaluated in full.
		dl, err := deltaEval(g, delta, q.L, b)
		if err != nil {
			return nil, err
		}
		l, err := joinConstrained(g, dl, q.R, b)
		if err != nil {
			return nil, err
		}
		dr, err := deltaEval(g, delta, q.R, b)
		if err != nil {
			return nil, err
		}
		r, err := joinConstrained(g, dr, q.L, b)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case sparql.Union:
		l, err := deltaEval(g, delta, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := deltaEval(g, delta, q.R, b)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case sparql.Filter:
		inner, err := deltaEval(g, delta, q.P, b)
		if err != nil {
			return nil, err
		}
		return inner.Filter(q.Cond), nil
	default:
		return nil, sparql.ErrUnsupportedPattern{Pattern: p}
	}
}

// joinConstrained computes small ⋈ ⟦p⟧_g by probing p with each
// mapping of small as a compatibility constraint.
func joinConstrained(g rdf.Store, small *sparql.MappingSet, p sparql.Pattern, b *sparql.Budget) (*sparql.MappingSet, error) {
	out := sparql.NewMappingSet()
	for _, mu := range small.Mappings() {
		nus, err := sparql.EvalCompatibleBudget(g, p, mu, b)
		if err != nil {
			return nil, err
		}
		for _, nu := range nus.Mappings() {
			out.Add(mu.Merge(nu))
		}
	}
	return out, nil
}
