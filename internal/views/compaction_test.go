package views

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// TestInsertUnwindThroughCompaction repeats the atomic-unwind property
// with the base graph's compaction threshold dropped to 1, so that the
// Add half of an insert and the Remove half of an aborted unwind both
// churn triples through the sorted-index overlay and its base merge.
// Whatever internal base/overlay split the store ends up in, the
// observable contents must roll back exactly and a retry must converge.
func TestInsertUnwindThroughCompaction(t *testing.T) {
	q := parser.MustParseConstruct(governedViewQuery)
	seed := rdf.NewGraph()
	for i := 0; i < 12; i++ {
		seed.Add(rdf.IRI(fmt.Sprintf("emp%d", i)), "works_at", "puc")
	}
	seed.Add("puc", "located_in", "chile")
	// New clones the seed, so the threshold must be set on each view's
	// live base, not on the seed.
	newView := func() *View {
		v, err := New(q, seed)
		if err != nil {
			t.Fatal(err)
		}
		v.Base().SetCompactionThreshold(1)
		return v
	}
	delta := governedDelta()

	control := newView()
	b := sparql.NewBudget(context.Background())
	if _, err := control.InsertBudget(b, delta...); err != nil {
		t.Fatalf("governed insert failed without fault: %v", err)
	}
	total := b.Steps()
	if total == 0 {
		t.Fatal("insert consumed no steps; sweep would be vacuous")
	}

	compacted := false
	for n := int64(0); n <= total; n++ {
		v := newView()
		baseBefore := rdf.CloneStore(v.Base())
		outBefore := rdf.CloneStore(v.Graph())

		fb := sparql.NewBudget(nil)
		fb.InjectFault(n, errInjectedView)
		if _, err := v.InsertBudget(fb, delta...); !errors.Is(err, errInjectedView) {
			t.Fatalf("fault@%d/%d: err = %v, want injected sentinel", n, total, err)
		}
		if !v.Base().Equal(baseBefore) {
			t.Fatalf("fault@%d: base not rolled back through compaction\nbefore:\n%s\nafter:\n%s",
				n, baseBefore, v.Base())
		}
		if !v.Graph().Equal(outBefore) {
			t.Fatalf("fault@%d: output changed on aborted insert", n)
		}
		if _, err := v.InsertBudget(nil, delta...); err != nil {
			t.Fatalf("fault@%d: retry failed: %v", n, err)
		}
		if !v.Base().Equal(control.Base()) || !v.Graph().Equal(control.Graph()) {
			t.Fatalf("fault@%d: retry diverges from control", n)
		}
		if v.Base().Stats().Compactions > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("threshold-1 sweep never compacted; the test is not exercising the merge path")
	}
}

// TestCompactionInterleavesWithMaintenance pins the snapshot contract
// at the views layer: with auto-compaction disabled the insert leaves a
// live overlay; an explicit Compact between inserts (legal: no snapshot
// held) merges it without disturbing the materialized output; while a
// read snapshot is held — as deltaEvalRows holds one for the whole
// delta evaluation — Compact refuses; and incremental maintenance keeps
// working across the base/overlay reshuffle.
func TestCompactionInterleavesWithMaintenance(t *testing.T) {
	q := parser.MustParseConstruct(governedViewQuery)
	v, err := New(q, rdf.NewGraph())
	if err != nil {
		t.Fatal(err)
	}
	g := v.Base()                     // New clones its argument; reach the live base
	g.SetCompactionThreshold(1 << 30) // manual compaction only
	v.Insert(governedDelta()...)
	if g.Stats().OverlayAdds == 0 {
		t.Fatal("expected a live overlay with auto-compaction disabled")
	}
	release := g.AcquireRead() // what deltaEvalRows holds during evaluation
	if g.Compact() {
		t.Fatal("Compact ran under an active read snapshot")
	}
	release()
	if !g.Compact() {
		t.Fatal("Compact refused with no readers")
	}
	if st := g.Stats(); st.OverlayAdds != 0 || st.Compactions != 1 {
		t.Fatalf("after explicit compact: %+v", st)
	}
	if !v.Graph().Contains("ana", "reaches", "chile") {
		t.Fatalf("view contents wrong after compaction:\n%s", v.Graph())
	}
	// Another insert after compaction still maintains incrementally.
	v.Insert(rdf.T("dan", "works_at", "puc"))
	if !v.Graph().Contains("dan", "reaches", "chile") {
		t.Fatalf("post-compaction insert incomplete:\n%s", v.Graph())
	}
}
