package views

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// parViewDelta builds a delta large enough to push the probe loop past
// parProbeMin, so the insert fans out across workers.
func parViewDelta(people int) []rdf.Triple {
	delta := make([]rdf.Triple, 0, people)
	for i := 0; i < people; i++ {
		delta = append(delta, rdf.T(
			rdf.IRI(fmt.Sprintf("person_%d", i)), "works_at",
			rdf.IRI(fmt.Sprintf("uni_%d", i%10))))
	}
	return delta
}

func parViewBase() *rdf.Graph {
	g := rdf.NewGraph()
	for u := 0; u < 10; u++ {
		g.Add(rdf.IRI(fmt.Sprintf("uni_%d", u)), "located_in",
			rdf.IRI(fmt.Sprintf("country_%d", u%3)))
	}
	return g
}

// TestInsertLargeDeltaParallelAgrees checks the parallel probe path
// against the serial one: a single large insert (probes fanned out
// across GOMAXPROCS workers) must produce exactly the view state that
// one-triple-at-a-time serial inserts do.
func TestInsertLargeDeltaParallelAgrees(t *testing.T) {
	q := parser.MustParseConstruct(
		"CONSTRUCT {(?p works_in ?c)} WHERE (?p works_at ?u) AND (?u located_in ?c)")
	delta := parViewDelta(4 * parProbeMin)

	serial, err := New(q, parViewBase())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range delta {
		serial.Insert(tr)
	}

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	par, err := New(q, parViewBase())
	if err != nil {
		t.Fatal(err)
	}
	added, err := par.InsertBudget(sparql.NewBudget(context.Background()), delta...)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(delta) {
		t.Fatalf("added %d of %d delta triples", added, len(delta))
	}
	if !par.Graph().Equal(serial.Graph()) {
		t.Fatalf("parallel insert diverges from serial\nparallel:\n%s\nserial:\n%s",
			par.Graph(), serial.Graph())
	}
	if !par.Base().Equal(serial.Base()) {
		t.Fatal("bases diverge after identical inserts")
	}
}

// TestInsertLargeDeltaParallelUnwind aborts a fanned-out insert at a
// spread of injection points: every worker must drain, and the
// rollback must restore base and output exactly, same as the serial
// unwind property.
func TestInsertLargeDeltaParallelUnwind(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	q := parser.MustParseConstruct(
		"CONSTRUCT {(?p works_in ?c)} WHERE (?p works_at ?u) AND (?u located_in ?c)")
	delta := parViewDelta(2 * parProbeMin)

	control, err := New(q, parViewBase())
	if err != nil {
		t.Fatal(err)
	}
	b := sparql.NewBudget(context.Background())
	if _, err := control.InsertBudget(b, delta...); err != nil {
		t.Fatalf("governed insert failed without fault: %v", err)
	}
	total := b.Steps()

	points := total / 16
	if points < 1 {
		points = 1
	}
	for n := int64(0); n <= total; n += points {
		v, err := New(q, parViewBase())
		if err != nil {
			t.Fatal(err)
		}
		baseBefore := rdf.CloneStore(v.Base())
		outBefore := rdf.CloneStore(v.Graph())
		fb := sparql.NewBudget(nil)
		fb.InjectFault(n, errInjectedView)
		added, err := v.InsertBudget(fb, delta...)
		if !errors.Is(err, errInjectedView) {
			t.Fatalf("fault@%d/%d: err = %v, want injected sentinel", n, total, err)
		}
		if added != 0 {
			t.Fatalf("fault@%d: reported %d added alongside error", n, added)
		}
		if !v.Base().Equal(baseBefore) {
			t.Fatalf("fault@%d: base not rolled back", n)
		}
		if !v.Graph().Equal(outBefore) {
			t.Fatalf("fault@%d: output changed on aborted insert", n)
		}
	}
}
