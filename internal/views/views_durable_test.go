package views

import (
	"errors"
	"testing"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/rdf/durable"
	"repro/internal/sparql"
)

// openDurable opens a durable store in dir seeded with the given
// triples.
func openDurable(t *testing.T, dir string, seed ...rdf.Triple) *durable.Store {
	t.Helper()
	s, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range seed {
		s.AddTriple(tr)
	}
	return s
}

// TestViewOverDurableUnwindLeavesNoWALRecords is the durability half
// of the atomic-unwind property: when the governor aborts an insert
// into a view over a durable base, not only must the in-memory state
// roll back (TestInsertBudgetAtomicUnwind), the WAL must hold no
// record of the aborted insert — a reopened store shows the
// pre-insert state, at every fault step.
func TestViewOverDurableUnwindLeavesNoWALRecords(t *testing.T) {
	q := parser.MustParseConstruct(governedViewQuery)
	seed := rdf.T("old", "works_at", "puc")
	delta := governedDelta()

	// Measure the fault-free step count on a throwaway store.
	control, err := Over(q, openDurable(t, t.TempDir(), seed))
	if err != nil {
		t.Fatal(err)
	}
	b := sparql.NewBudget(nil)
	if _, err := control.InsertBudget(b, delta...); err != nil {
		t.Fatalf("governed insert failed without fault: %v", err)
	}
	control.Base().Close()
	total := b.Steps()
	if total == 0 {
		t.Fatal("insert consumed no steps; the sweep below would be vacuous")
	}

	for n := int64(0); n <= total; n++ {
		dir := t.TempDir()
		base := openDurable(t, dir, seed)
		v, err := Over(q, base)
		if err != nil {
			t.Fatal(err)
		}
		want := rdf.CloneStore(v.Base())

		fb := sparql.NewBudget(nil)
		fb.InjectFault(n, errInjectedView)
		if _, err := v.InsertBudget(fb, delta...); !errors.Is(err, errInjectedView) {
			t.Fatalf("fault@%d/%d: err = %v, want injected sentinel", n, total, err)
		}
		if !v.Base().Equal(want) {
			t.Fatalf("fault@%d: live base not rolled back", n)
		}
		if recs := base.DurableStats().WALRecords; recs != 1 {
			t.Fatalf("fault@%d: WAL holds %d records after aborted insert, want 1 (the seed)", n, recs)
		}
		if err := base.Close(); err != nil {
			t.Fatal(err)
		}

		// The crash test proper: what's on disk must be the pre-insert
		// state, with no trace of the aborted batch.
		re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !re.Equal(want) {
			t.Fatalf("fault@%d: reopened base diverges\ngot:\n%swant:\n%s", n, re, want)
		}
		re.Close()
	}
}

// TestViewOverDurableCommitPersists is the success side: a completed
// insert through a view over a durable base survives close + reopen
// as one committed batch record.
func TestViewOverDurableCommitPersists(t *testing.T) {
	dir := t.TempDir()
	base := openDurable(t, dir, rdf.T("old", "works_at", "puc"))
	q := parser.MustParseConstruct(governedViewQuery)
	v, err := Over(q, base)
	if err != nil {
		t.Fatal(err)
	}
	added, err := v.InsertBudget(nil, governedDelta()...)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("insert derived no output triples; the view query is miswired")
	}
	if recs := base.DurableStats().WALRecords; recs != 2 {
		t.Fatalf("WAL holds %d records, want 2 (seed + one atomic batch)", recs)
	}
	want := rdf.CloneStore(v.Base())
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Equal(want) {
		t.Fatalf("reopened base diverges\ngot:\n%swant:\n%s", re, want)
	}
	// Rebuilding the view over the recovered base reproduces the
	// incrementally-maintained output exactly.
	rv, err := Over(q, re)
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Graph().Equal(v.Graph()) {
		t.Fatalf("rebuilt view output diverges\ngot:\n%swant:\n%s", rv.Graph(), v.Graph())
	}
}
