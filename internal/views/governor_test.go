package views

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

var errInjectedView = errors.New("fault: injected governor stop")

// governedViewQuery exercises every delta rule (triple, AND, UNION,
// FILTER) on the row runtime.
const governedViewQuery = "CONSTRUCT {(?p reaches ?c)} WHERE " +
	"((?p works_at ?u) AND (?u located_in ?c)) UNION " +
	"((?p born ?c) FILTER (!(?c = nowhere)))"

func governedDelta() []rdf.Triple {
	return []rdf.Triple{
		rdf.T("ana", "works_at", "puc"),
		rdf.T("puc", "located_in", "chile"),
		rdf.T("bob", "born", "peru"),
		rdf.T("eve", "born", "nowhere"),
	}
}

// TestInsertBudgetAtomicUnwind is the views half of the fault-harness
// property: whatever step the governor aborts an insert at, the view
// must roll back to its pre-insert state — base and output byte-for-
// byte unchanged, no partial rows leaked — and a later ungoverned
// insert of the same delta must produce exactly the no-fault result.
func TestInsertBudgetAtomicUnwind(t *testing.T) {
	q := parser.MustParseConstruct(governedViewQuery)
	seed := rdf.FromTriples(rdf.T("old", "works_at", "puc"))
	delta := governedDelta()

	// Control: the no-fault run, which also measures the step count.
	control, err := New(q, seed)
	if err != nil {
		t.Fatal(err)
	}
	b := sparql.NewBudget(context.Background())
	if _, err := control.InsertBudget(b, delta...); err != nil {
		t.Fatalf("governed insert failed without fault: %v", err)
	}
	total := b.Steps()
	if total == 0 {
		t.Fatal("insert consumed no steps; the sweep below would be vacuous")
	}

	for n := int64(0); n <= total; n++ {
		v, err := New(q, seed)
		if err != nil {
			t.Fatal(err)
		}
		baseBefore := rdf.CloneStore(v.Base())
		outBefore := rdf.CloneStore(v.Graph())

		b := sparql.NewBudget(nil)
		b.InjectFault(n, errInjectedView)
		added, err := v.InsertBudget(b, delta...)
		if !errors.Is(err, errInjectedView) {
			t.Fatalf("fault@%d/%d: err = %v, want injected sentinel", n, total, err)
		}
		if added != 0 {
			t.Fatalf("fault@%d: reported %d added triples alongside error", n, added)
		}
		if !v.Base().Equal(baseBefore) {
			t.Fatalf("fault@%d: base not rolled back\nbefore:\n%s\nafter:\n%s",
				n, baseBefore, v.Base())
		}
		if !v.Graph().Equal(outBefore) {
			t.Fatalf("fault@%d: output changed on aborted insert\nbefore:\n%s\nafter:\n%s",
				n, outBefore, v.Graph())
		}
		// Retrying without the fault converges to the control state.
		if _, err := v.InsertBudget(nil, delta...); err != nil {
			t.Fatalf("fault@%d: retry failed: %v", n, err)
		}
		if !v.Base().Equal(control.Base()) || !v.Graph().Equal(control.Graph()) {
			t.Fatalf("fault@%d: retry diverges from control\ngot:\n%s\nwant:\n%s",
				n, v.Graph(), control.Graph())
		}
	}
}

// TestInsertCtxCanceled: a pre-canceled context aborts the insert with
// the typed cancellation error and rolls back.
func TestInsertCtxCanceled(t *testing.T) {
	q := parser.MustParseConstruct(governedViewQuery)
	v, err := New(q, rdf.NewGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = v.InsertCtx(ctx, governedDelta()...)
	if !errors.Is(err, sparql.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled/context.Canceled", err)
	}
	if v.Base().Len() != 0 || v.Graph().Len() != 0 {
		t.Fatalf("canceled insert left state behind: base %d, out %d",
			v.Base().Len(), v.Graph().Len())
	}
	// The same insert with a live context succeeds.
	if _, err := v.InsertCtx(context.Background(), governedDelta()...); err != nil {
		t.Fatal(err)
	}
	if !v.Graph().Contains("ana", "reaches", "chile") {
		t.Fatalf("post-cancel insert incomplete:\n%s", v.Graph())
	}
}

// TestInsertBudgetRandomizedUnwind repeats the atomicity property on
// random AUF views over random graphs, sampling injection points.
func TestInsertBudgetRandomizedUnwind(t *testing.T) {
	rng := rand.New(rand.NewSource(8128))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter}
	for trial := 0; trial < 20; trial++ {
		where := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Ops: ops})
		if !sparql.InFragment(where, sparql.FragmentAUF) {
			continue
		}
		vars := sparql.Vars(where)
		if len(vars) == 0 {
			continue
		}
		q := sparql.ConstructQuery{
			Template: []sparql.TriplePattern{
				sparql.TP(sparql.V(vars[0]), sparql.I("derived"), sparql.V(vars[len(vars)-1])),
			},
			Where: where,
		}
		seed := workload.RandomGraph(rng, 2+rng.Intn(10), nil)
		delta := workload.RandomGraph(rng, 1+rng.Intn(6), nil).Triples()

		control, err := New(q, seed)
		if err != nil {
			t.Fatal(err)
		}
		b := sparql.NewBudget(context.Background())
		if _, err := control.InsertBudget(b, delta...); err != nil {
			t.Fatalf("trial %d: governed insert failed: %v", trial, err)
		}
		total := b.Steps()
		if total == 0 {
			continue // nothing charged: no injection point can fire
		}

		for n := int64(0); n <= total; n += 1 + total/16 {
			v, err := New(q, seed)
			if err != nil {
				t.Fatal(err)
			}
			baseBefore := rdf.CloneStore(v.Base())
			outBefore := rdf.CloneStore(v.Graph())
			fb := sparql.NewBudget(nil)
			fb.InjectFault(n, errInjectedView)
			if _, err := v.InsertBudget(fb, delta...); !errors.Is(err, errInjectedView) {
				t.Fatalf("trial %d fault@%d: err = %v", trial, n, err)
			}
			if !v.Base().Equal(baseBefore) || !v.Graph().Equal(outBefore) {
				t.Fatalf("trial %d fault@%d: state not rolled back", trial, n)
			}
			if _, err := v.InsertBudget(nil, delta...); err != nil {
				t.Fatalf("trial %d fault@%d: retry failed: %v", trial, n, err)
			}
			if !v.Graph().Equal(control.Graph()) {
				t.Fatalf("trial %d fault@%d: retry diverges from control", trial, n)
			}
		}
	}
}
