package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// fastOpts is the test coordinator configuration: tiny deterministic
// backoff, short per-attempt timeout, prober off (tests step Probe
// explicitly), hedging off unless a test opts in.
func fastOpts(shards []string) Options {
	return Options{
		Shards:         shards,
		Backoff:        BackoffPolicy{Base: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, MaxAttempts: 3},
		ScanTimeout:    250 * time.Millisecond,
		DisableHedging: true,
		ProbeInterval:  -1,
		Seed:           1,
	}
}

func mustCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// shardServer mounts the real scan handler plus /readyz and /insert on
// one graph, optionally wrapped by a fault injector.
func shardServer(t *testing.T, g *rdf.Graph, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/scan", ScanHandler(graphSource(g)))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		in, err := rdf.ReadGraph(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		added := 0
		in.ForEach(func(t3 rdf.Triple) bool {
			if g.AddTriple(t3) {
				added++
			}
			return true
		})
		fmt.Fprintf(w, "{\"added\": %d}\n", added)
	})
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// seedGraphs partitions a deterministic random graph across n shards
// and also returns the union as the single-node reference.
func seedGraphs(n, triples int, seed int64) (full *rdf.Graph, parts []*rdf.Graph) {
	rng := rand.New(rand.NewSource(seed))
	full = rdf.NewGraph()
	parts = make([]*rdf.Graph, n)
	for i := range parts {
		parts[i] = rdf.NewGraph()
	}
	preds := []rdf.IRI{"knows", "worksAt", "name", "email", "type"}
	for i := 0; i < triples; i++ {
		s := rdf.IRI(fmt.Sprintf("p%d", rng.Intn(40)))
		p := preds[rng.Intn(len(preds))]
		o := rdf.IRI(fmt.Sprintf("v%d", rng.Intn(60)))
		full.Add(s, p, o)
		parts[ShardOf(s, n)].Add(s, p, o)
	}
	return full, parts
}

// gatherPatterns parses a paper-syntax pattern and extracts its triple
// patterns, as nscoord does.
func gatherPatterns(t *testing.T, query string) (sparql.Pattern, []sparql.TriplePattern) {
	t.Helper()
	parsed, err := parser.ParseAny("paper", query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return parsed.Pattern, sparql.TriplePatterns(parsed.Pattern)
}

func evalRows(t *testing.T, g rdf.Store, pattern sparql.Pattern) *sparql.MappingSet {
	t.Helper()
	b := sparql.NewBudget(context.Background())
	res, err := exec.EvalCompiled(g, exec.Compile(g, pattern, nil, false), b, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// TestGatherDifferential is the scatter-gather exactness check: for
// every fragment of the language — AND joins, UNION, the non-monotone
// OPT and NS, FILTER, SELECT — evaluating over the coordinator's
// gathered subgraph must equal single-node evaluation over the full
// graph, at 1, 2 and 4 shards.
func TestGatherDifferential(t *testing.T) {
	queries := []string{
		"(?x knows ?y)",
		"(?x knows ?y) AND (?y knows ?z) AND (?z worksAt ?w)",
		"(?x knows ?y) UNION (?x worksAt ?y)",
		"(?x knows ?y) OPT (?y email ?e)",
		"((?x knows ?y) OPT (?y email ?e)) FILTER (!bound(?e))",
		"NS((?x worksAt ?w) UNION ((?x worksAt ?w) AND (?x email ?e)))",
		"SELECT {?x} WHERE (?x knows ?y) AND (?y worksAt ?w)",
		"(?x type v1) AND (?x knows ?y)",
	}
	for _, n := range []int{1, 2, 4} {
		full, parts := seedGraphs(n, 600, 11)
		var urls []string
		for _, g := range parts {
			urls = append(urls, shardServer(t, g, nil).URL)
		}
		c := mustCoordinator(t, fastOpts(urls))
		for _, q := range queries {
			pattern, tps := gatherPatterns(t, q)
			sub, statuses, partial := c.Gather(context.Background(), tps)
			if partial {
				t.Fatalf("%d shards, %q: unexpected partial gather: %+v", n, q, statuses)
			}
			got := evalRows(t, sub, pattern)
			want := evalRows(t, full, pattern)
			if !got.Equal(want) {
				t.Fatalf("%d shards, %q: cluster answer (%d rows) != single-node (%d rows)",
					n, q, got.Len(), want.Len())
			}
		}
	}
}

// faultInjector wraps a shard handler, failing the first `failures`
// scan requests in mode-specific ways before letting traffic through.
type faultInjector struct {
	mode     string // "5xx", "timeout", "reset", "midbody"
	failures int32
	inner    http.Handler
}

func (f *faultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/scan") || atomic.AddInt32(&f.failures, -1) < 0 {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.mode {
	case "5xx":
		http.Error(w, "shard exploding", http.StatusInternalServerError)
	case "timeout":
		select { // hold past the per-attempt timeout, then give up
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	case "reset":
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("no hijacker")
		}
		conn, _, _ := hj.Hijack()
		conn.Close()
	case "midbody":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Length", "1000") // promise more than delivered
		fmt.Fprint(w, "<a> <p> <o1> .\n")
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // tear the connection mid-body
	}
}

// TestGatherDegradation is the fault-injection table: each transient
// mode must be retried to success without marking the query partial,
// and a permanently-down shard must degrade the query to partial with
// that shard (and only that shard) in the error block.
func TestGatherDegradation(t *testing.T) {
	const shards = 3
	transient := []string{"5xx", "timeout", "reset", "midbody"}
	for _, mode := range transient {
		t.Run("transient/"+mode, func(t *testing.T) {
			full, parts := seedGraphs(shards, 300, 5)
			inj := &faultInjector{mode: mode, failures: 1}
			urls := []string{
				shardServer(t, parts[0], func(h http.Handler) http.Handler { inj.inner = h; return inj }).URL,
				shardServer(t, parts[1], nil).URL,
				shardServer(t, parts[2], nil).URL,
			}
			c := mustCoordinator(t, fastOpts(urls))
			pattern, tps := gatherPatterns(t, "(?x knows ?y) OPT (?y email ?e)")
			sub, statuses, partial := c.Gather(context.Background(), tps)
			if partial {
				t.Fatalf("one transient %s fault degraded the query: %+v", mode, statuses)
			}
			if got, want := evalRows(t, sub, pattern), evalRows(t, full, pattern); !got.Equal(want) {
				t.Fatalf("answer after retried %s fault differs from single-node", mode)
			}
			if st := c.Stats(); st.Shards[0].Retries < 1 {
				t.Fatalf("shard 0 stats show no retry after %s fault: %+v", mode, st.Shards[0])
			}
		})
	}

	t.Run("permanent-down", func(t *testing.T) {
		_, parts := seedGraphs(shards, 300, 5)
		down := httptest.NewServer(http.NotFoundHandler())
		down.Close() // connection refused from here on
		urls := []string{
			down.URL,
			shardServer(t, parts[1], nil).URL,
			shardServer(t, parts[2], nil).URL,
		}
		c := mustCoordinator(t, fastOpts(urls))
		pattern, tps := gatherPatterns(t, "(?x knows ?y) AND (?y worksAt ?w)")
		sub, statuses, partial := c.Gather(context.Background(), tps)
		if !partial {
			t.Fatal("dead shard did not mark the gather partial")
		}
		if statuses[0].Error == "" || statuses[1].Error != "" || statuses[2].Error != "" {
			t.Fatalf("error block misattributes the failure: %+v", statuses)
		}
		// The surviving shards' data still answers: the result is the
		// single-node answer over the reachable partitions.
		reachable := rdf.NewGraph()
		reachable.AddAll(parts[1])
		reachable.AddAll(parts[2])
		if got, want := evalRows(t, sub, pattern), evalRows(t, reachable, pattern); !got.Equal(want) {
			t.Fatal("partial answer differs from the reachable-shard reference")
		}
		// Exactly-once accounting: one degraded query = one tick, even
		// though the dead shard failed on two triple patterns.
		if st := c.Stats(); st.PartialResponses != 1 || st.Queries != 1 {
			t.Fatalf("partial accounting: queries=%d partials=%d, want 1/1", st.Queries, st.PartialResponses)
		}
	})

	t.Run("permanent-4xx-no-retry", func(t *testing.T) {
		_, parts := seedGraphs(2, 100, 5)
		bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "no", http.StatusBadRequest)
		}))
		t.Cleanup(bad.Close)
		urls := []string{bad.URL, shardServer(t, parts[1], nil).URL}
		c := mustCoordinator(t, fastOpts(urls))
		_, statuses, partial := c.Gather(context.Background(), []sparql.TriplePattern{
			{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")},
		})
		if !partial || statuses[0].Error == "" {
			t.Fatalf("4xx shard not reported: partial=%v %+v", partial, statuses)
		}
		if st := c.Stats(); st.Shards[0].Retries != 0 {
			t.Fatalf("4xx was retried %d times; permanent errors must not burn the budget", st.Shards[0].Retries)
		}
	})
}

// TestGatherDeadline checks a query deadline bounds the whole gather:
// with one shard black-holing requests, Gather returns partial within
// the deadline instead of hanging.
func TestGatherDeadline(t *testing.T) {
	_, parts := seedGraphs(2, 100, 9)
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)
	opts := fastOpts([]string{hang.URL, shardServer(t, parts[1], nil).URL})
	opts.ScanTimeout = 10 * time.Second // per-attempt cap out of the way: the deadline must do it
	c := mustCoordinator(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, statuses, partial := c.Gather(ctx, []sparql.TriplePattern{
		{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")},
	})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Gather overshot the deadline by %v", elapsed)
	}
	if !partial || statuses[0].Error == "" {
		t.Fatalf("deadline expiry not reported as partial: %v %+v", partial, statuses)
	}
}

// TestHedgeWins makes the primary slow and checks a hedge fires and
// wins, with the accounting to prove it.
func TestHedgeWins(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("a", "p", "b")
	var slowOnce atomic.Bool
	slowOnce.Store(true)
	inj := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/scan") && slowOnce.CompareAndSwap(true, false) {
			select { // first scan request stalls; the hedge sails past
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		ScanHandler(graphSource(g)).ServeHTTP(w, r)
	})
	srv := httptest.NewServer(inj)
	t.Cleanup(srv.Close)
	opts := fastOpts([]string{srv.URL})
	opts.DisableHedging = false
	opts.HedgeDelay = 20 * time.Millisecond
	opts.ScanTimeout = 5 * time.Second
	c := mustCoordinator(t, opts)
	start := time.Now()
	_, _, partial := c.Gather(context.Background(), []sparql.TriplePattern{
		{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")},
	})
	if partial {
		t.Fatal("hedged gather came back partial")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the slow primary: took %v", elapsed)
	}
	st := c.Stats()
	if st.Shards[0].Hedges < 1 || st.Shards[0].HedgeWins < 1 {
		t.Fatalf("hedge accounting: %+v", st.Shards[0])
	}
}

// TestProbeEjectReadmit steps the health state machine: EjectAfter
// consecutive probe failures eject the shard (Gather skips it),
// ReadmitAfter successes bring it back.
func TestProbeEjectReadmit(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("a", "p", "b")
	var down atomic.Bool
	mux := http.NewServeMux()
	mux.Handle("/scan", ScanHandler(graphSource(g)))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	opts := fastOpts([]string{srv.URL})
	opts.EjectAfter = 2
	opts.ReadmitAfter = 2
	c := mustCoordinator(t, opts)
	all := []sparql.TriplePattern{{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")}}

	down.Store(true)
	c.Probe()
	if st := c.Stats(); st.Shards[0].State != "healthy" {
		t.Fatalf("ejected after 1 failed probe, EjectAfter=2: %+v", st.Shards[0])
	}
	c.Probe()
	if st := c.Stats(); st.Shards[0].State != "ejected" || st.Shards[0].Ejections != 1 {
		t.Fatalf("not ejected after 2 failed probes: %+v", st.Shards[0])
	}
	if _, statuses, partial := c.Gather(context.Background(), all); !partial || !strings.Contains(statuses[0].Error, "ejected") {
		t.Fatalf("Gather did not skip the ejected shard: %v %+v", partial, statuses)
	}

	down.Store(false)
	c.Probe()
	if st := c.Stats(); st.Shards[0].State == "healthy" {
		t.Fatalf("readmitted after 1 probe, ReadmitAfter=2: %+v", st.Shards[0])
	}
	c.Probe()
	if st := c.Stats(); st.Shards[0].State != "healthy" || st.Shards[0].Readmissions != 1 {
		t.Fatalf("not readmitted after 2 good probes: %+v", st.Shards[0])
	}
	if _, _, partial := c.Gather(context.Background(), all); partial {
		t.Fatal("Gather still partial after readmission")
	}
}

// TestInsertRouting pushes triples through the coordinator and checks
// each lands on exactly the shard its subject hashes to.
func TestInsertRouting(t *testing.T) {
	const shards = 3
	parts := make([]*rdf.Graph, shards)
	var urls []string
	for i := range parts {
		parts[i] = rdf.NewGraph()
		urls = append(urls, shardServer(t, parts[i], nil).URL)
	}
	c := mustCoordinator(t, fastOpts(urls))
	var ts []rdf.Triple
	for i := 0; i < 50; i++ {
		ts = append(ts, tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	added, statuses, failed := c.Insert(context.Background(), ts)
	if failed {
		t.Fatalf("insert failed: %+v", statuses)
	}
	if added != len(ts) {
		t.Fatalf("added %d, want %d", added, len(ts))
	}
	for _, t3 := range ts {
		home := ShardOf(t3.S, shards)
		for i, g := range parts {
			if got := g.ContainsTriple(t3); got != (i == home) {
				t.Fatalf("triple %v: on shard %d = %v, home is %d", t3, i, got, home)
			}
		}
	}
	// Idempotency: re-insert adds nothing.
	if added, _, _ := c.Insert(context.Background(), ts); added != 0 {
		t.Fatalf("re-insert added %d, want 0", added)
	}
}

// TestCoordinatorCloseNoLeaks runs a gather against a flaky cluster,
// closes the coordinator and checks the goroutine count settles back —
// no scan, hedge or prober goroutine outlives Close.
func TestCoordinatorCloseNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	g := rdf.NewGraph()
	g.Add("a", "p", "b")
	inj := &faultInjector{mode: "5xx", failures: 2}
	srv := shardServer(t, g, func(h http.Handler) http.Handler { inj.inner = h; return inj })
	opts := fastOpts([]string{srv.URL})
	opts.DisableHedging = false
	opts.HedgeDelay = time.Millisecond
	opts.ProbeInterval = 5 * time.Millisecond
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 5; i++ {
		c.Gather(context.Background(), []sparql.TriplePattern{
			{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")},
		})
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 { // allow httptest slack
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
}
