package cluster

import (
	"hash/fnv"

	"repro/internal/rdf"
)

// ShardOf maps a subject IRI onto one of n shards by FNV-1a hash.
// Hash-by-subject keeps every triple of a star rooted at one subject
// on a single shard, so subject-bound scans touch one shard and the
// insert router and the scan filter agree on ownership by
// construction.  n <= 1 always maps to shard 0.
func ShardOf(subject rdf.IRI, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(subject))
	return int(h.Sum32() % uint32(n))
}

// Partition splits triples into n buckets by subject hash; bucket i
// holds exactly the triples shard i/n owns.  The input order is
// preserved within each bucket.
func Partition(triples []rdf.Triple, n int) [][]rdf.Triple {
	if n <= 1 {
		return [][]rdf.Triple{triples}
	}
	out := make([][]rdf.Triple, n)
	for _, t := range triples {
		i := ShardOf(t.S, n)
		out[i] = append(out[i], t)
	}
	return out
}
