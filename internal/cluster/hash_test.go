package cluster

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// TestShardOfStable pins a few assignments so the partition function
// never silently changes — a change would orphan every existing
// shard's data.
func TestShardOfStable(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			s := rdf.IRI(fmt.Sprintf("http://example.org/s%d", i))
			sh := ShardOf(s, n)
			if sh < 0 || sh >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", s, n, sh)
			}
			if sh2 := ShardOf(s, n); sh2 != sh {
				t.Fatalf("ShardOf(%q, %d) not deterministic: %d vs %d", s, n, sh, sh2)
			}
			seen[sh] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Fatalf("ShardOf over %d shards used only %d of them", n, len(seen))
		}
	}
	if ShardOf("anything", 0) != 0 || ShardOf("anything", 1) != 0 {
		t.Fatal("ShardOf with <= 1 shard must be 0")
	}
}

// TestPartitionCoversAndSeparates checks Partition assigns every
// triple to exactly one bucket, grouped by subject.
func TestPartitionCoversAndSeparates(t *testing.T) {
	var ts []rdf.Triple
	for i := 0; i < 100; i++ {
		ts = append(ts, tr(fmt.Sprintf("s%d", i%17), "p", fmt.Sprintf("o%d", i)))
	}
	buckets := Partition(ts, 4)
	if len(buckets) != 4 {
		t.Fatalf("Partition returned %d buckets, want 4", len(buckets))
	}
	total := 0
	for i, b := range buckets {
		total += len(b)
		for _, t3 := range b {
			if ShardOf(t3.S, 4) != i {
				t.Fatalf("triple %v landed in bucket %d, ShardOf says %d", t3, i, ShardOf(t3.S, 4))
			}
		}
	}
	if total != len(ts) {
		t.Fatalf("buckets hold %d triples, want %d", total, len(ts))
	}
}
