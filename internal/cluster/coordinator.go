// Package cluster is the scatter-gather layer of the sharded nsserve
// deployment: a hash-by-subject partition of the triple store across
// N shard servers, and a coordinator that answers any NS-SPARQL query
// against the union of the shards.
//
// # Why scatter-gather is exact
//
// The answer to an NS-SPARQL pattern P over a graph G is a function
// of the match sets ⟦tp⟧_G of the triple patterns tp occurring in P
// alone — every operator of the language (AND, UNION, OPT, FILTER,
// SELECT, NS) is defined compositionally from those sets and never
// consults G directly (see sparql.TriplePatterns).  Since the shards
// partition G, each pattern's global match set is the disjoint union
// of its per-shard match sets, so the coordinator gathers
// ⋃_tp matches(G, tp) — per-shard sorted streams k-way-merged into a
// per-query local store — and evaluates P on that subgraph with the
// ordinary single-node engine.  The answer is identical to
// single-node evaluation over G on every fragment, including the
// non-monotone ones (OPT, NS), which per-shard evaluation plus result
// union would get wrong.
//
// # Robustness model
//
// Every remote call is governed by the query's deadline: per-attempt
// timeouts are carved from it, transient failures (connection errors,
// 5xx, torn streams) are retried under exponential backoff with
// jitter, and a slow shard is hedged — a duplicate request launched
// after the shard's observed latency quantile — with the first
// response winning.  A health prober ejects shards that fail
// consecutive readiness probes and readmits them when they recover.
// When a shard stays unreachable within the deadline, the coordinator
// degrades gracefully: the query is answered from the shards that did
// respond, flagged partial with a per-shard error block, instead of
// failing outright.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Options configures a Coordinator.  The zero value of every knob
// takes the documented default; Shards is required.
type Options struct {
	// Shards are the shard base URLs, index i serving partition i/N.
	Shards []string
	// Client issues the HTTP requests; nil builds one with pooled
	// connections and no global timeout (deadlines come from contexts).
	Client *http.Client
	// Backoff is the retry policy for transient scan and insert
	// failures; a zero policy takes DefaultBackoff.
	Backoff BackoffPolicy
	// ScanTimeout caps a single scan attempt (the query deadline still
	// applies on top).  Default 10s.
	ScanTimeout time.Duration
	// HedgeDelay is the hedging delay used until a shard has enough
	// latency samples for a quantile estimate.  Default 50ms.
	HedgeDelay time.Duration
	// HedgeQuantile is the per-shard latency quantile after which a
	// hedge is launched.  Default 0.95.
	HedgeQuantile float64
	// HedgeMinSamples is how many successful scans a shard needs
	// before its own quantile replaces HedgeDelay.  Default 16.
	HedgeMinSamples int
	// DisableHedging turns hedged requests off (retries remain).
	DisableHedging bool
	// ProbeInterval is the health-prober period; <= 0 disables the
	// prober (shards then stay in their initial healthy state unless
	// Probe is called explicitly).  Default when Start is used: 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe.  Default 1s.
	ProbeTimeout time.Duration
	// EjectAfter ejects a shard after this many consecutive failed
	// probes.  Default 3.
	EjectAfter int
	// ReadmitAfter readmits an ejected shard after this many
	// consecutive successful probes.  Default 2.
	ReadmitAfter int
	// Seed seeds the jitter RNG; 0 seeds from the clock.  Tests pin it
	// for reproducible backoff schedules.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Backoff == (BackoffPolicy{}) {
		o.Backoff = DefaultBackoff
	}
	if o.ScanTimeout == 0 {
		o.ScanTimeout = 10 * time.Second
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 50 * time.Millisecond
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeMinSamples == 0 {
		o.HedgeMinSamples = 16
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = time.Second
	}
	if o.EjectAfter == 0 {
		o.EjectAfter = 3
	}
	if o.ReadmitAfter == 0 {
		o.ReadmitAfter = 2
	}
	return o
}

// ShardStatus is one shard's entry in a query's per-shard error
// block: which shard, its prober state, and what went wrong for this
// query ("" when the shard answered).
type ShardStatus struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Coordinator fans queries and inserts out to the shards.  All
// methods are safe for concurrent use.
type Coordinator struct {
	opts   Options
	shards []*shard
	client *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	queries  atomic.Int64
	partials atomic.Int64
	fails    atomic.Int64

	// attempts tracks every in-flight remote-call goroutine (scan
	// primaries, hedges, insert forwards) so Close can prove none leak.
	attempts sync.WaitGroup

	stopOnce sync.Once
	stop     chan struct{}
	probeWG  sync.WaitGroup
}

// New builds a Coordinator over the given shards.  Call Start to run
// the health prober, and Close when done.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		rng:    rand.New(rand.NewSource(seed)),
		stop:   make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	for i, base := range opts.Shards {
		sh := &shard{index: i, base: strings.TrimRight(base, "/")}
		sh.healthy.Store(true)
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// NumShards returns the configured shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Start launches the background health prober.
func (c *Coordinator) Start() {
	if c.opts.ProbeInterval <= 0 {
		return
	}
	c.probeWG.Add(1)
	go func() {
		defer c.probeWG.Done()
		t := time.NewTicker(c.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Probe()
			}
		}
	}()
}

// Close stops the prober, waits for every in-flight remote call
// goroutine to finish and releases pooled connections.  Callers stop
// issuing queries before Close (a server calls it after its drain).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
	c.attempts.Wait()
	c.client.CloseIdleConnections()
}

// jitter returns the coordinator's RNG under its lock for one Delay
// computation.
func (c *Coordinator) delay(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.opts.Backoff.Delay(attempt, c.rng)
}

// --- health probing ---

// Probe runs one readiness round over all shards, applying the
// eject/readmit state machine.  Exported so tests and callers without
// the background prober can step health explicitly.
func (c *Coordinator) Probe() {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			c.probeShard(sh)
		}(sh)
	}
	wg.Wait()
}

func (c *Coordinator) probeShard(sh *shard) {
	sh.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+"/readyz", nil)
	if err == nil {
		resp, derr := c.client.Do(req)
		if derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ok {
		sh.consecFails.Store(0)
		n := sh.consecOKs.Add(1)
		if !sh.healthy.Load() && n >= int64(c.opts.ReadmitAfter) {
			sh.healthy.Store(true)
			sh.readmissions.Add(1)
		}
		return
	}
	sh.probeFails.Add(1)
	sh.consecOKs.Store(0)
	n := sh.consecFails.Add(1)
	if sh.healthy.Load() && n >= int64(c.opts.EjectAfter) {
		sh.healthy.Store(false)
		sh.ejections.Add(1)
	}
}

// --- scatter-gather query path ---

// Gather pulls the matches of every pattern from every shard and
// merges them into a fresh local store — the query-relevant subgraph.
// It returns the store, the per-shard status block, and whether the
// gather is partial (at least one shard contributed nothing it should
// have).  The context carries the query deadline; Gather never
// outlives it: when the deadline falls, outstanding shards are
// recorded as failed and whatever arrived is returned.
func (c *Coordinator) Gather(ctx context.Context, patterns []sparql.TriplePattern) (rdf.Store, []ShardStatus, bool) {
	c.queries.Add(1)
	qspan := obs.SpanFromContext(ctx)
	g := rdf.NewGraph()
	shardErr := make([]error, len(c.shards))
	for _, tp := range patterns {
		gsp := qspan.StartChild("gather", tp.String())
		streams := make([][]rdf.Triple, len(c.shards))
		var wg sync.WaitGroup
		for i, sh := range c.shards {
			if shardErr[i] != nil {
				continue // already failed this query; don't burn the budget
			}
			if !sh.healthy.Load() {
				shardErr[i] = errors.New("ejected by health prober")
				continue
			}
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				ts, err := c.scanShard(ctx, sh, tp, gsp)
				if err != nil {
					shardErr[i] = err
					return
				}
				streams[i] = ts
			}(i, sh)
		}
		wg.Wait()
		merged := 0
		MergeSorted(streams, func(t rdf.Triple) bool {
			g.AddTriple(t)
			merged++
			return true
		})
		gsp.SetAttr("triples", merged)
		gsp.End()
	}
	g.Compact()

	partial := false
	statuses := make([]ShardStatus, len(c.shards))
	for i, sh := range c.shards {
		statuses[i] = ShardStatus{Shard: i, Addr: sh.base, State: sh.state()}
		if shardErr[i] != nil {
			statuses[i].Error = shardErr[i].Error()
			partial = true
		}
	}
	// Exactly-once partial accounting: one query is one tick,
	// regardless of how many shards or patterns failed inside it.
	if partial {
		c.partials.Add(1)
		qspan.MarkPartial()
	}
	return g, statuses, partial
}

// scanShard fetches one pattern from one shard: bounded retries with
// jittered backoff around hedged attempts.
func (c *Coordinator) scanShard(ctx context.Context, sh *shard, tp sparql.TriplePattern, parent *obs.Span) ([]rdf.Triple, error) {
	maxAttempts := c.opts.Backoff.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			sh.retries.Add(1)
			if err := SleepContext(ctx, c.delay(attempt-1)); err != nil {
				// The query deadline fell mid-backoff; the failure that
				// put us here is the informative error.
				return nil, lastErr
			}
		}
		ts, err := c.scanHedged(ctx, sh, tp, parent, attempt)
		if err == nil {
			return ts, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// scanHedged runs one logical scan attempt: a primary request, plus a
// hedge launched if the primary is still running after the shard's
// latency-quantile delay.  The first success wins and the loser is
// cancelled; if all launched requests fail, the first failure is
// returned (the retry loop takes it from there).
//
// Each launched request gets its own "rpc.scan" span under parent,
// carrying the shard index, the retry attempt, and whether it was the
// hedge lane; the select loop (never the request goroutines) ends the
// spans, marking the winner and, when a success preempts the other
// lane, marking the loser cancelled — its duration then reads "time
// until the winner made it redundant".
func (c *Coordinator) scanHedged(ctx context.Context, sh *shard, tp sparql.TriplePattern, parent *obs.Span, attempt int) ([]rdf.Triple, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		ts    []rdf.Triple
		err   error
		hedge bool
	}
	ch := make(chan result, 2) // buffered: the loser must never block
	launch := func(hedge bool) *obs.Span {
		sp := parent.StartChild("rpc.scan", sh.base)
		sp.SetAttr("shard", sh.index)
		sp.SetAttr("attempt", attempt)
		if hedge {
			sp.SetAttr("hedge", true)
		}
		c.attempts.Add(1)
		go func() {
			defer c.attempts.Done()
			ts, err := c.scanOnce(actx, sh, tp, sp)
			ch <- result{ts: ts, err: err, hedge: hedge}
		}()
		return sp
	}
	spans := map[bool]*obs.Span{false: launch(false)}
	outstanding, hedged := 1, false

	var hedgeC <-chan time.Time
	if !c.opts.DisableHedging {
		t := time.NewTimer(c.hedgeDelay(sh))
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			sh.hedges.Add(1)
			hedged = true
			spans[true] = launch(true)
			outstanding++
		case r := <-ch:
			outstanding--
			sp := spans[r.hedge]
			delete(spans, r.hedge)
			if r.err == nil {
				if r.hedge {
					sh.hedgeWins.Add(1)
				} else if hedged {
					sh.hedgesWasted.Add(1)
				}
				sp.SetAttr("outcome", "winner")
				sp.End()
				for _, loser := range spans {
					loser.SetAttr("outcome", "cancelled")
					loser.SetStatus("cancelled")
					loser.End()
				}
				return r.ts, nil
			}
			sp.SetAttr("outcome", "error")
			sp.SetAttr("error", r.err.Error())
			sp.SetStatus("error")
			sp.End()
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
			hedgeC = nil // one lane failed: ride the other out, no new hedges
		}
	}
}

// hedgeDelay picks the delay before a duplicate request: the shard's
// observed latency quantile once enough samples exist, the configured
// default before that.
func (c *Coordinator) hedgeDelay(sh *shard) time.Duration {
	if snap := sh.latency.Snapshot(); snap.Count >= int64(c.opts.HedgeMinSamples) {
		if q, ok := sh.latency.Quantile(c.opts.HedgeQuantile); ok {
			if q < time.Millisecond {
				q = time.Millisecond
			}
			return q
		}
	}
	return c.opts.HedgeDelay
}

// scanOnce issues a single scan request under the per-attempt
// timeout and parses the sorted stream.  The span contributes only
// trace-propagation headers (its IDs are immutable, so reading them
// here cannot race with the select loop ending the span); the shard
// adopts the trace and retains its segment for coordinator stitching.
func (c *Coordinator) scanOnce(ctx context.Context, sh *shard, tp sparql.TriplePattern, sp *obs.Span) ([]rdf.Triple, error) {
	sh.scans.Add(1)
	if c.opts.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.ScanTimeout)
		defer cancel()
	}
	u := sh.base + "/scan?" + ScanQuery(tp).Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if tid := sp.TraceID(); tid != "" {
		req.Header.Set(obs.HeaderTraceID, tid)
		req.Header.Set(obs.HeaderParentSpan, sp.ID())
	}
	if qid := obs.QueryIDFromContext(ctx); qid != "" {
		req.Header.Set(obs.HeaderQueryID, qid)
	}
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		sh.scanErrors.Add(1)
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		sh.scanErrors.Add(1)
		return nil, &StatusError{Code: resp.StatusCode, Endpoint: "scan"}
	}
	ts, err := ParseScanBody(resp.Body)
	if err != nil {
		sh.scanErrors.Add(1)
		return nil, err
	}
	sh.latency.Observe(time.Since(start))
	return ts, nil
}

// StatusError is a non-200 response from a shard.
type StatusError struct {
	Code     int
	Endpoint string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard %s returned HTTP %d", e.Endpoint, e.Code)
}

// retryable classifies an error as transient (worth a retry) or
// permanent.  Transport errors, torn streams, per-attempt timeouts
// and 5xx statuses are transient; 4xx statuses mean the request
// itself is wrong and retrying cannot help.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// --- insert routing ---

// Insert partitions triples by subject hash and forwards each bucket
// to its shard (in parallel, with the same retry policy as scans;
// inserts are idempotent, so retrying a torn forward is safe).  It
// returns the total number of newly-added triples and the per-shard
// status block; any Error entry means that shard's bucket is not
// (fully) applied.
func (c *Coordinator) Insert(ctx context.Context, triples []rdf.Triple) (int, []ShardStatus, bool) {
	buckets := Partition(triples, len(c.shards))
	statuses := make([]ShardStatus, len(c.shards))
	added := make([]int, len(c.shards))
	shardErr := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		statuses[i] = ShardStatus{Shard: i, Addr: sh.base, State: sh.state()}
		if len(buckets) <= i || len(buckets[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard, bucket []rdf.Triple) {
			defer wg.Done()
			n, err := c.insertShard(ctx, sh, bucket)
			added[i], shardErr[i] = n, err
		}(i, sh, buckets[i])
	}
	wg.Wait()
	total, failed := 0, false
	for i := range c.shards {
		total += added[i]
		if shardErr[i] != nil {
			statuses[i].Error = shardErr[i].Error()
			failed = true
		}
	}
	return total, statuses, failed
}

// insertShard posts one bucket to one shard with retries.
func (c *Coordinator) insertShard(ctx context.Context, sh *shard, bucket []rdf.Triple) (int, error) {
	var body strings.Builder
	for _, t := range bucket {
		body.WriteString(t.NTriples())
		body.WriteByte('\n')
	}
	maxAttempts := c.opts.Backoff.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			sh.retries.Add(1)
			if err := SleepContext(ctx, c.delay(attempt-1)); err != nil {
				return 0, lastErr
			}
		}
		n, err := c.insertOnce(ctx, sh, body.String())
		if err == nil {
			return n, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return 0, lastErr
		}
	}
	return 0, lastErr
}

func (c *Coordinator) insertOnce(ctx context.Context, sh *shard, body string) (int, error) {
	if c.opts.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.ScanTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.base+"/insert", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	if qid := obs.QueryIDFromContext(ctx); qid != "" {
		req.Header.Set(obs.HeaderQueryID, qid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, &StatusError{Code: resp.StatusCode, Endpoint: "insert"}
	}
	var out struct {
		Added int `json:"added"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Added, nil
}

// --- trace stitching ---

// FetchShardTraces pulls the shard-local segments of one distributed
// trace from every shard's /debug/traces endpoint, for stitching into
// the coordinator's own snapshot.  Shards that are down, don't have
// the trace, or answer garbage are simply skipped — stitching is
// best-effort diagnostics, never load-bearing.  Each fetched span is
// annotated with a "shard" attribute so a stitched tree says where
// every span ran.
func (c *Coordinator) FetchShardTraces(ctx context.Context, id string) []obs.TraceSnapshot {
	out := make([]obs.TraceSnapshot, 0, len(c.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			u := sh.base + "/debug/traces?id=" + url.QueryEscape(id)
			req, err := http.NewRequestWithContext(fctx, http.MethodGet, u, nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer func() {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var ts obs.TraceSnapshot
			if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&ts); err != nil {
				return
			}
			for i := range ts.Spans {
				if ts.Spans[i].Attrs == nil {
					ts.Spans[i].Attrs = make(map[string]any, 1)
				}
				ts.Spans[i].Attrs["shard"] = sh.index
			}
			mu.Lock()
			out = append(out, ts)
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	return out
}

// --- metrics ---

// NoteResult records the query-level outcome for /metrics: ok,
// "partial" (200 with partial:true) or "failed" (no shard answered).
func (c *Coordinator) NoteResult(outcome string) {
	if outcome == "failed" {
		c.fails.Add(1)
	}
}

// Stats snapshots the coordinator's cluster metrics.
func (c *Coordinator) Stats() obs.ClusterStats {
	out := obs.ClusterStats{
		Queries:          c.queries.Load(),
		PartialResponses: c.partials.Load(),
		FailedResponses:  c.fails.Load(),
	}
	for _, sh := range c.shards {
		out.Shards = append(out.Shards, sh.stats())
	}
	return out
}
