package cluster

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffGrowthAndCap pins the un-jittered schedule: exponential
// growth from Base by Multiplier, clamped at Max.
func TestBackoffGrowthAndCap(t *testing.T) {
	p := BackoffPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, MaxAttempts: 10}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

// TestBackoffJitterBounds draws many jittered delays from a pinned
// seed and checks every one lands in [d(1-j), d(1+j)] around the
// deterministic delay — and that they are not all identical (the
// jitter actually jitters).
func TestBackoffJitterBounds(t *testing.T) {
	p := DefaultBackoff
	rng := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 5; attempt++ {
		base := p.Delay(attempt, nil)
		lo := time.Duration(float64(base) * (1 - p.Jitter))
		hi := time.Duration(float64(base) * (1 + p.Jitter))
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt, rng)
			if d < lo || d > hi {
				t.Fatalf("attempt %d draw %d: delay %v outside [%v, %v]", attempt, i, d, lo, hi)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Fatalf("attempt %d: jitter produced a single value %v", attempt, base)
		}
	}
}

// TestBackoffJitterDeterministicSeed checks that two RNGs with the
// same seed produce the same jittered schedule — the property the
// coordinator's Seed option relies on for reproducible tests.
func TestBackoffJitterDeterministicSeed(t *testing.T) {
	p := DefaultBackoff
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 20; attempt++ {
		if da, db := p.Delay(attempt, a), p.Delay(attempt, b); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
	}
}

// TestBackoffJitterClamped checks Jitter > 1 clamps to 1 and the delay
// never goes negative.
func TestBackoffJitterClamped(t *testing.T) {
	p := BackoffPolicy{Base: 10 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 5, MaxAttempts: 3}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if d := p.Delay(0, rng); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("clamped jitter produced %v, want within [0, 20ms]", d)
		}
	}
}

// TestSleepContextCancel cancels the context mid-sleep and checks
// SleepContext returns promptly with the context error instead of
// overshooting the query deadline.
func TestSleepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := SleepContext(ctx, 10*time.Second)
	if err != context.Canceled {
		t.Fatalf("SleepContext = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("SleepContext slept %v past cancellation", elapsed)
	}
}

// TestSleepContextCompletes checks an uncancelled sleep returns nil,
// and a non-positive duration returns immediately.
func TestSleepContextCompletes(t *testing.T) {
	if err := SleepContext(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("SleepContext = %v", err)
	}
	if err := SleepContext(context.Background(), 0); err != nil {
		t.Fatalf("SleepContext(0) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepContext(ctx, 0); err != context.Canceled {
		t.Fatalf("SleepContext(cancelled, 0) = %v, want context.Canceled", err)
	}
}
