package cluster

import (
	"sync/atomic"

	"repro/internal/obs"
)

// shard is the coordinator's per-shard state: address, health-prober
// verdict and the counters behind /metrics.  Everything is atomic —
// scan goroutines, the prober and /metrics snapshots touch it
// concurrently.
type shard struct {
	index int
	base  string // base URL, e.g. "http://127.0.0.1:9001"

	// healthy is the prober's verdict; an unhealthy (ejected) shard is
	// skipped by Gather until readmitted.  Starts true: a shard is
	// innocent until probed.
	healthy     atomic.Bool
	consecFails atomic.Int64 // consecutive failed probes
	consecOKs   atomic.Int64 // consecutive successful probes

	scans        atomic.Int64 // scan attempts sent (primaries + hedges)
	scanErrors   atomic.Int64 // attempts that failed (any cause)
	retries      atomic.Int64 // re-sends after a failed attempt
	hedges       atomic.Int64 // hedge requests launched
	hedgeWins    atomic.Int64 // hedges that produced the winning response
	hedgesWasted atomic.Int64 // hedges made moot by the primary finishing
	ejections    atomic.Int64
	readmissions atomic.Int64
	probes       atomic.Int64
	probeFails   atomic.Int64

	// latency records successful scan attempts; its quantile drives
	// the hedging delay for this shard.
	latency obs.Histogram
}

// state renders the prober verdict for /metrics and error blocks.
func (sh *shard) state() string {
	if sh.healthy.Load() {
		return "healthy"
	}
	return "ejected"
}

// stats snapshots the shard's counters.
func (sh *shard) stats() obs.ShardStats {
	return obs.ShardStats{
		Shard:        sh.index,
		Addr:         sh.base,
		State:        sh.state(),
		Scans:        sh.scans.Load(),
		ScanErrors:   sh.scanErrors.Load(),
		Retries:      sh.retries.Load(),
		Hedges:       sh.hedges.Load(),
		HedgeWins:    sh.hedgeWins.Load(),
		HedgesWasted: sh.hedgesWasted.Load(),
		Ejections:    sh.ejections.Load(),
		Readmissions: sh.readmissions.Load(),
		Probes:       sh.probes.Load(),
		ProbeFails:   sh.probeFails.Load(),
		ScanLatency:  sh.latency.Snapshot(),
	}
}
