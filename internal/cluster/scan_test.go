package cluster

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func graphSource(g *rdf.Graph) StoreSource {
	return func() (rdf.Store, func()) { return g, g.AcquireRead() }
}

// TestScanRoundTrip serves a graph through ScanHandler and parses it
// back with ParseScanBody: the triples must survive, sorted, for
// every binding shape.
func TestScanRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("a", "knows", "b")
	g.Add("a", "type", "Person")
	g.Add("b", "knows", "c")
	srv := httptest.NewServer(ScanHandler(graphSource(g)))
	defer srv.Close()

	cases := []struct {
		tp   sparql.TriplePattern
		want int
	}{
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")}, 3},
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("knows"), O: sparql.V("y")}, 2},
		{sparql.TriplePattern{S: sparql.I("a"), P: sparql.I("knows"), O: sparql.V("y")}, 1},
		{sparql.TriplePattern{S: sparql.I("a"), P: sparql.I("knows"), O: sparql.I("b")}, 1},
		{sparql.TriplePattern{S: sparql.I("zz"), P: sparql.V("p"), O: sparql.V("y")}, 0},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + "/scan?" + ScanQuery(tc.tp).Encode())
		if err != nil {
			t.Fatal(err)
		}
		ts, err := ParseScanBody(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("pattern %v: %v", tc.tp, err)
		}
		if len(ts) != tc.want {
			t.Fatalf("pattern %v: got %d triples, want %d", tc.tp, len(ts), tc.want)
		}
		for i := 1; i < len(ts); i++ {
			if !ts[i-1].Less(ts[i]) {
				t.Fatalf("pattern %v: stream not strictly sorted at %d: %v !< %v", tc.tp, i, ts[i-1], ts[i])
			}
		}
		for _, t3 := range ts {
			if !g.ContainsTriple(t3) {
				t.Fatalf("pattern %v: fabricated triple %v", tc.tp, t3)
			}
		}
	}
}

// TestScanEscapedIRIs checks IRIs needing N-Triples escaping survive
// the wire format.
func TestScanEscapedIRIs(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("http://ex.org/a b", "p>q", "o\nnl")
	srv := httptest.NewServer(ScanHandler(graphSource(g)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/scan")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ParseScanBody(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0] != tr("http://ex.org/a b", "p>q", "o\nnl") {
		t.Fatalf("escaped triple did not round-trip: %v", ts)
	}
}

// TestParseScanBodyTorn feeds truncated and corrupted streams and
// checks each is flagged as torn (retryable), never silently accepted.
func TestParseScanBodyTorn(t *testing.T) {
	good := "<a> <p> <o1> .\n<b> <p> <o2> .\n# eof 2\n"
	if ts, err := ParseScanBody(strings.NewReader(good)); err != nil || len(ts) != 2 {
		t.Fatalf("well-formed stream: ts=%v err=%v", ts, err)
	}
	cases := []struct {
		name, body string
	}{
		{"no marker", "<a> <p> <o1> .\n<b> <p> <o2> .\n"},
		{"truncated before marker", "<a> <p> <o1> .\n"},
		{"count mismatch high", "<a> <p> <o1> .\n# eof 2\n"},
		{"count mismatch low", "<a> <p> <o1> .\n<b> <p> <o2> .\n# eof 1\n"},
		{"empty body", ""},
	}
	for _, tc := range cases {
		_, err := ParseScanBody(strings.NewReader(tc.body))
		var torn ErrTornScan
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !asTorn(err, &torn) {
			t.Fatalf("%s: error %v is not ErrTornScan", tc.name, err)
		}
	}
	// A syntactically broken line is a protocol error, not a torn
	// stream: retrying will not fix a peer that speaks garbage.
	if _, err := ParseScanBody(strings.NewReader("<a> <p>\n# eof 1\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func asTorn(err error, out *ErrTornScan) bool {
	t, ok := err.(ErrTornScan)
	if ok {
		*out = t
	}
	return ok
}

// TestParseScanBodyEmptyValid checks a zero-match stream with a valid
// marker parses as empty without error.
func TestParseScanBodyEmptyValid(t *testing.T) {
	ts, err := ParseScanBody(strings.NewReader("# eof 0\n"))
	if err != nil || len(ts) != 0 {
		t.Fatalf("empty stream: ts=%v err=%v", ts, err)
	}
}

// TestScanQueryRendering checks constants render as parameters and
// variables stay wildcards.
func TestScanQueryRendering(t *testing.T) {
	tp := sparql.TriplePattern{S: sparql.I("s1"), P: sparql.V("p"), O: sparql.I("o1")}
	v := ScanQuery(tp)
	if v.Get("s") != "s1" || v.Has("p") || v.Get("o") != "o1" {
		t.Fatalf("ScanQuery = %v", v)
	}
	if fmt.Sprint(ScanQuery(sparql.TriplePattern{S: sparql.V("x"), P: sparql.V("y"), O: sparql.V("z")})) != "map[]" {
		t.Fatal("all-variable pattern should render no parameters")
	}
}
