package cluster

import (
	"context"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sparql"
)

// TestGatherPlannerDifferential closes the loop between the cluster
// path and planner v2: the subgraph a coordinator gathers is evaluated
// under every planner configuration (v1 greedy, DP, DP+adaptive), and
// each must equal single-node reference evaluation over the full
// graph — so cost-based ordering, cost-gated join strategies and
// mid-query re-planning cannot change answers on gathered subgraphs
// either.
func TestGatherPlannerDifferential(t *testing.T) {
	queries := []string{
		"(?x knows ?y) AND (?y knows ?z) AND (?z worksAt ?w)",
		"(?x type v1) AND (?x knows ?y) AND (?y worksAt ?w)",
		"(?x knows ?y) OPT (?y email ?e)",
		"NS((?x worksAt ?w) UNION ((?x worksAt ?w) AND (?x email ?e)))",
	}
	planners := []plan.PlannerOptions{
		{Greedy: true},
		{NoReplan: true},
		{},
	}
	full, parts := seedGraphs(2, 600, 23)
	var urls []string
	for _, g := range parts {
		urls = append(urls, shardServer(t, g, nil).URL)
	}
	c := mustCoordinator(t, fastOpts(urls))
	for _, q := range queries {
		pattern, tps := gatherPatterns(t, q)
		sub, statuses, partial := c.Gather(context.Background(), tps)
		if partial {
			t.Fatalf("%q: unexpected partial gather: %+v", q, statuses)
		}
		want := sparql.Eval(full, pattern)
		for _, po := range planners {
			cp := exec.CompileOpts(sub, pattern, nil, false, po)
			res, err := exec.EvalCompiled(sub, cp, nil, plan.Options{})
			if err != nil {
				t.Fatalf("%q under %+v: %v", q, po, err)
			}
			if !res.Rows.Equal(want) {
				t.Fatalf("%q under %+v: cluster answer (%d rows) != reference (%d rows)",
					q, po, res.Rows.Len(), want.Len())
			}
		}
	}
}
