package cluster

import (
	"container/heap"

	"repro/internal/rdf"
)

// MergeSorted streams the k-way merge of already-sorted triple slices
// (ascending Triple.Less order, as the scan protocol delivers them)
// into emit, in global sorted order with duplicates collapsed, until
// emit returns false.  This is the cluster-side counterpart of the
// storage layer's three-way base∪adds∖dels merge: per-shard streams
// stay sorted end to end, so the gathered subgraph loads without a
// global re-sort.  A hash-by-subject partition makes cross-shard
// duplicates impossible, but the merge dedups anyway — readmitted
// shards replaying an insert, or overlapping pattern scans, must not
// double-count.
func MergeSorted(streams [][]rdf.Triple, emit func(rdf.Triple) bool) {
	h := make(mergeHeap, 0, len(streams))
	for _, s := range streams {
		if len(s) > 0 {
			h = append(h, mergeCursor{rest: s})
		}
	}
	heap.Init(&h)
	var last rdf.Triple
	first := true
	for len(h) > 0 {
		cur := h[0]
		t := cur.rest[0]
		if len(cur.rest) > 1 {
			h[0].rest = cur.rest[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if first || t != last {
			first = false
			last = t
			if !emit(t) {
				return
			}
		}
	}
}

type mergeCursor struct {
	rest []rdf.Triple
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].rest[0].Less(h[j].rest[0]) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
