package cluster

// The scan wire protocol: how a coordinator pulls one triple
// pattern's matches out of one shard.
//
//	GET /scan?s=<iri>&p=<iri>&o=<iri>
//
// Each parameter is a raw IRI string (URL-encoded); an absent
// parameter is a wildcard.  The response is text/plain: one N-Triples
// statement per line, sorted by the lexicographic (S, P, O) triple
// order so per-shard streams k-way-merge into one globally sorted
// stream, terminated by the marker line
//
//	# eof <count>
//
// The marker is the torn-response detector: a shard killed mid-stream
// (or a proxy truncating the body) leaves the marker missing or the
// count wrong, and the coordinator treats the attempt as failed and
// retries instead of silently serving a prefix.  Both halves of the
// protocol live here so nsserve (the shard) and nscoord (the
// coordinator) cannot drift apart, and tests can mount the real
// handler on fake stores.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// scanEOFPrefix starts the end-of-stream marker line.
const scanEOFPrefix = "# eof "

// StoreSource yields a read-consistent view of a store: the returned
// release func must be called when the scan is done.  nsserve backs
// it with the read side of its graph RWMutex.
type StoreSource func() (g rdf.Store, release func())

// ScanHandler serves the shard side of the scan protocol over src.
// Matches are collected under the source's read lock, sorted into the
// global triple order and streamed with the eof marker; request
// cancellation (client gone, deadline) aborts the write early, which
// the coordinator sees as a torn response.
func ScanHandler(src StoreSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var sp, pp, op *rdf.IRI
		for _, bind := range []struct {
			key string
			ptr **rdf.IRI
		}{{"s", &sp}, {"p", &pp}, {"o", &op}} {
			if q.Has(bind.key) {
				iri := rdf.IRI(q.Get(bind.key))
				*bind.ptr = &iri
			}
		}
		g, release := src()
		var matches []rdf.Triple
		g.Match(sp, pp, op, func(t rdf.Triple) bool {
			matches = append(matches, t)
			return true
		})
		release()
		// The index emits in per-permutation ID order; the wire order is
		// the backend-independent lexicographic one so any two shards'
		// streams merge, whatever their interning history.
		sort.Slice(matches, func(i, j int) bool { return matches[i].Less(matches[j]) })

		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		bw := bufio.NewWriter(w)
		for _, t := range matches {
			if _, err := bw.WriteString(t.NTriples()); err != nil {
				return // peer gone: the torn stream is the signal
			}
			if err := bw.WriteByte('\n'); err != nil {
				return
			}
		}
		fmt.Fprintf(bw, "%s%d\n", scanEOFPrefix, len(matches))
		bw.Flush()
	})
}

// ScanQuery renders tp as scan request parameters: constant positions
// become s/p/o parameters, variables stay wildcards.
func ScanQuery(tp sparql.TriplePattern) url.Values {
	v := url.Values{}
	for _, bind := range []struct {
		key string
		val sparql.Value
	}{{"s", tp.S}, {"p", tp.P}, {"o", tp.O}} {
		if !bind.val.IsVar() {
			v.Set(bind.key, string(bind.val.IRI()))
		}
	}
	return v
}

// ErrTornScan reports a scan response that ended without a valid eof
// marker: the shard died (or was killed) mid-stream, or a middlebox
// truncated the body.  Retryable.
type ErrTornScan struct {
	// Got is how many triples arrived before the stream ended.
	Got int
	// Want is the count the marker announced, or -1 when the marker
	// never arrived.
	Want int
}

func (e ErrTornScan) Error() string {
	if e.Want < 0 {
		return fmt.Sprintf("torn scan response: stream ended after %d triples with no eof marker", e.Got)
	}
	return fmt.Sprintf("torn scan response: eof marker announced %d triples, got %d", e.Want, e.Got)
}

// ParseScanBody reads one scan response stream, returning the triples
// in wire (sorted) order.  A missing marker, a count mismatch or an
// unparsable line yields an error; marker absence and count mismatch
// are ErrTornScan, which the coordinator's retry loop treats as
// transient.
func ParseScanBody(r io.Reader) ([]rdf.Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []rdf.Triple
	sawEOF := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, strings.TrimSuffix(scanEOFPrefix, " ")); ok {
				want, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("bad eof marker %q", line)
				}
				if want != len(out) {
					return nil, ErrTornScan{Got: len(out), Want: want}
				}
				sawEOF = true
				break
			}
			continue
		}
		t, err := rdf.ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("scan response: %w", err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		// A read error mid-body (connection reset, kill -9'd peer) is a
		// torn stream, not a protocol error.
		return nil, ErrTornScan{Got: len(out), Want: -1}
	}
	if !sawEOF {
		return nil, ErrTornScan{Got: len(out), Want: -1}
	}
	return out, nil
}
