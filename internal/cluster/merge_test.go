package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rdf"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.IRI(s), P: rdf.IRI(p), O: rdf.IRI(o)}
}

func collect(streams [][]rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	MergeSorted(streams, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// TestMergeSortedBasic merges disjoint sorted streams and checks the
// output is their sorted union.
func TestMergeSortedBasic(t *testing.T) {
	a := []rdf.Triple{tr("a", "p", "1"), tr("c", "p", "1")}
	b := []rdf.Triple{tr("b", "p", "1"), tr("d", "p", "1")}
	got := collect([][]rdf.Triple{a, b})
	want := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "1"), tr("c", "p", "1"), tr("d", "p", "1")}
	if len(got) != len(want) {
		t.Fatalf("merged %d triples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMergeSortedDedup checks duplicates across (and within) streams
// collapse to one emission.
func TestMergeSortedDedup(t *testing.T) {
	a := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "1")}
	b := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "1")}
	got := collect([][]rdf.Triple{a, b, a})
	if len(got) != 2 {
		t.Fatalf("merged %d triples, want 2 after dedup: %v", len(got), got)
	}
}

// TestMergeSortedEarlyStop checks a false return from emit stops the
// merge immediately.
func TestMergeSortedEarlyStop(t *testing.T) {
	a := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "1"), tr("c", "p", "1")}
	n := 0
	MergeSorted([][]rdf.Triple{a}, func(rdf.Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("emit called %d times after early stop, want 2", n)
	}
}

// TestMergeSortedRandomized cross-checks the k-way merge against
// sort+dedup of the concatenation, over random partitions.
func TestMergeSortedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	letters := []string{"a", "b", "c", "d", "e", "f"}
	for round := 0; round < 50; round++ {
		k := 1 + rng.Intn(5)
		streams := make([][]rdf.Triple, k)
		var all []rdf.Triple
		for i := range streams {
			n := rng.Intn(10)
			for j := 0; j < n; j++ {
				t3 := tr(letters[rng.Intn(len(letters))], letters[rng.Intn(len(letters))], letters[rng.Intn(len(letters))])
				streams[i] = append(streams[i], t3)
				all = append(all, t3)
			}
			sort.Slice(streams[i], func(a, b int) bool { return streams[i][a].Less(streams[i][b]) })
		}
		sort.Slice(all, func(a, b int) bool { return all[a].Less(all[b]) })
		var want []rdf.Triple
		for i, t3 := range all {
			if i == 0 || t3 != all[i-1] {
				want = append(want, t3)
			}
		}
		got := collect(streams)
		if len(got) != len(want) {
			t.Fatalf("round %d: merged %d, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d position %d: got %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}
