package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// tracedShard wraps a shard server with the minimal nsserve-style
// tracing envelope: /scan adopts the incoming NS-Trace-Id /
// NS-Parent-Span pair into a local "scan" span (recording the
// forwarded NS-Query-Id), and /debug/traces serves the shard's ring so
// the coordinator can stitch.
func tracedShard(t *testing.T, g *rdf.Graph, wrap func(http.Handler) http.Handler) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1, Seed: 1})
	inner := func(h http.Handler) http.Handler {
		traced := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/debug/traces" {
				obs.TracesHandler(tracer, nil).ServeHTTP(w, r)
				return
			}
			if r.URL.Path != "/scan" {
				h.ServeHTTP(w, r)
				return
			}
			sp := tracer.StartRemoteTrace(r.Header.Get(obs.HeaderTraceID),
				r.Header.Get(obs.HeaderParentSpan), "scan", "")
			if qid := r.Header.Get(obs.HeaderQueryID); qid != "" {
				sp.SetAttr("qid", qid)
			}
			defer sp.End()
			h.ServeHTTP(w, r)
		})
		if wrap != nil {
			return wrap(traced)
		}
		return traced
	}
	return shardServer(t, g, inner), tracer
}

// TestGatherTraceStitching is the end-to-end fault-injection check:
// one query against two misbehaving shards (shard 0 fails its first
// scan attempt, shard 1 stalls its primary so the hedge wins) must
// yield ONE stitched trace showing the gather span, all four rpc.scan
// attempts with their outcomes — error then winner on shard 0, a
// cancelled loser and a hedged winner on shard 1 — and the shard-side
// scan spans carrying the forwarded query ID.
func TestGatherTraceStitching(t *testing.T) {
	_, parts := seedGraphs(2, 120, 7)

	// Shard 0: first /scan attempt 500s, the retry succeeds.
	var s0Calls atomic.Int64
	srv0, _ := tracedShard(t, parts[0], func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" && s0Calls.Add(1) == 1 {
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	// Shard 1: the primary stalls past the hedge delay; the hedge
	// (second request) answers immediately and must win.
	var s1Calls atomic.Int64
	srv1, _ := tracedShard(t, parts[1], func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" && s1Calls.Add(1) == 1 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(2 * time.Second):
				}
			}
			h.ServeHTTP(w, r)
		})
	})

	opts := fastOpts([]string{srv0.URL, srv1.URL})
	opts.DisableHedging = false
	opts.HedgeDelay = 30 * time.Millisecond
	opts.ScanTimeout = 5 * time.Second
	c := mustCoordinator(t, opts)

	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1, Seed: 2})
	root := tracer.StartTrace("query", "")
	traceID := root.TraceID()
	ctx := obs.ContextWithSpan(context.Background(), root)
	ctx = obs.ContextWithQueryID(ctx, "q000007")

	_, patterns := gatherPatterns(t, "(?x knows ?y)")
	_, statuses, partial := c.Gather(ctx, patterns)
	if partial {
		t.Fatalf("query should recover, not degrade: %+v", statuses)
	}
	root.End()

	snap, ok := tracer.Get(traceID)
	if !ok {
		t.Fatal("coordinator trace missing")
	}
	for _, remote := range c.FetchShardTraces(context.Background(), traceID) {
		snap.Merge(remote)
	}

	type rpc struct {
		outcome, status string
		shard           any
		hedge           bool
	}
	var rpcs []rpc
	gathers, shardScans, qids := 0, 0, 0
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "gather":
			gathers++
		case "rpc.scan":
			outcome, _ := sp.Attrs["outcome"].(string)
			hedge, _ := sp.Attrs["hedge"].(bool)
			rpcs = append(rpcs, rpc{outcome: outcome, status: sp.Status, shard: sp.Attrs["shard"], hedge: hedge})
		case "scan":
			shardScans++
			if _, ok := sp.Attrs["shard"]; !ok {
				t.Fatalf("fetched shard span lacks the shard annotation: %+v", sp)
			}
			if sp.Attrs["qid"] == "q000007" {
				qids++
			}
		}
	}
	if gathers != 1 {
		t.Fatalf("got %d gather spans, want 1", gathers)
	}
	if len(rpcs) != 4 {
		t.Fatalf("got %d rpc.scan spans, want 4 (error+winner, cancelled+winner): %+v", len(rpcs), rpcs)
	}
	count := func(pred func(rpc) bool) int {
		n := 0
		for _, r := range rpcs {
			if pred(r) {
				n++
			}
		}
		return n
	}
	if count(func(r rpc) bool { return r.outcome == "winner" }) != 2 {
		t.Fatalf("want 2 winners: %+v", rpcs)
	}
	if count(func(r rpc) bool { return r.outcome == "error" && r.status == "error" }) != 1 {
		t.Fatalf("want 1 errored attempt (shard 0's first): %+v", rpcs)
	}
	if count(func(r rpc) bool { return r.outcome == "cancelled" && r.status == "cancelled" }) != 1 {
		t.Fatalf("want 1 cancelled loser (shard 1's stalled primary): %+v", rpcs)
	}
	if count(func(r rpc) bool { return r.hedge && r.outcome == "winner" }) != 1 {
		t.Fatalf("the shard 1 winner should be the hedge lane: %+v", rpcs)
	}
	// Both shards answered a traced /scan with the forwarded query ID.
	if shardScans < 2 || qids < 2 {
		t.Fatalf("shard-side spans incomplete: %d scans, %d with qid", shardScans, qids)
	}
	// The stitched tree renders with the shard spans under the rpcs.
	tree := snap.Tree()
	for _, want := range []string{"query", "gather", "rpc.scan", "outcome=winner", "outcome=cancelled"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("stitched tree missing %q:\n%s", want, tree)
		}
	}
}

// TestScanHeadersUntracedNoOp: without a span in context, scans carry
// no trace headers and the query ID header only when a qid is present.
func TestScanHeadersUntracedNoOp(t *testing.T) {
	var sawTrace, sawQID atomic.Bool
	_, parts := seedGraphs(1, 30, 3)
	srv := shardServer(t, parts[0], func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" {
				if r.Header.Get(obs.HeaderTraceID) != "" {
					sawTrace.Store(true)
				}
				if r.Header.Get(obs.HeaderQueryID) != "" {
					sawQID.Store(true)
				}
			}
			h.ServeHTTP(w, r)
		})
	})
	c := mustCoordinator(t, fastOpts([]string{srv.URL}))
	_, patterns := gatherPatterns(t, "(?x knows ?y)")
	_, _, partial := c.Gather(context.Background(), patterns)
	if partial {
		t.Fatal("gather failed")
	}
	if sawTrace.Load() || sawQID.Load() {
		t.Fatal("untraced gather must not emit trace or qid headers")
	}
}
