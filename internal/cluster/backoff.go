package cluster

import (
	"context"
	"math/rand"
	"time"
)

// BackoffPolicy computes retry delays: exponential growth from Base by
// Multiplier per attempt, capped at Max, with a uniform jitter of
// ±Jitter (a fraction of the computed delay) so a fleet of retrying
// coordinators does not thundering-herd a recovering shard.  The zero
// value is unusable; DefaultBackoff is the tuned default.
type BackoffPolicy struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (before jitter).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (>= 1).
	Multiplier float64
	// Jitter is the fraction of the delay randomized around it:
	// 0.2 means the actual delay is uniform in [0.8d, 1.2d].  Values
	// are clamped to [0, 1].
	Jitter float64
	// MaxAttempts bounds the total number of tries (first attempt
	// included); 0 or negative means exactly one try, no retries.
	MaxAttempts int
}

// DefaultBackoff is the coordinator's retry policy: 10ms doubling to a
// 500ms cap with 20% jitter, four tries total.
var DefaultBackoff = BackoffPolicy{
	Base:        10 * time.Millisecond,
	Max:         500 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
	MaxAttempts: 4,
}

// Delay returns the backoff before retry number attempt (attempt 0 is
// the delay after the first failure).  rng supplies the jitter; a nil
// rng yields the deterministic un-jittered delay, which tests use to
// pin expectations.
func (p BackoffPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			break
		}
	}
	if max := float64(p.Max); d > max {
		d = max
	}
	if rng != nil && p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// uniform in [d(1-j), d(1+j)]
		d *= 1 - j + 2*j*rng.Float64()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// SleepContext sleeps for d or until ctx is done, whichever comes
// first, returning ctx.Err() when the sleep was cut short.  Retry
// loops use it so a query deadline cancels a backoff sleep instead of
// overshooting it.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
