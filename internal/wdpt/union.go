package wdpt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/sparql"
)

// WellDesignedUnionToUSP implements the Section 5.3 counterpart of
// Proposition 5.6: a well-designed union P1 UNION ⋯ UNION Pn (every
// disjunct a well-designed SPARQL[AOF] pattern) is translated to an
// equivalent ns-pattern of USP–SPARQL by translating each disjunct to
// a simple pattern.
func WellDesignedUnionToUSP(p sparql.Pattern) (sparql.Pattern, error) {
	ok, err := analysis.IsWellDesignedUnion(p)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("wdpt: pattern is not a well-designed union: %s", p)
	}
	disjuncts := sparql.UnionDisjuncts(p)
	out := make([]sparql.Pattern, len(disjuncts))
	for i, d := range disjuncts {
		simple, err := WellDesignedToSimple(d)
		if err != nil {
			return nil, fmt.Errorf("wdpt: disjunct %d: %w", i, err)
		}
		out[i] = simple
	}
	return sparql.UnionOf(out...), nil
}
