package wdpt

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// GenerateOpts controls GenerateWellDesigned.
type GenerateOpts struct {
	// MaxNodes bounds the tree size (default 5).
	MaxNodes int
	// IRIs is the IRI pool (default workload-compatible a..r).
	IRIs []rdf.IRI
}

// GenerateWellDesigned draws a random well-designed SPARQL[AOF]
// pattern by generating a random pattern tree and rendering it.  Each
// child node reuses variables of its parent node (never of farther
// ancestors), which guarantees the connectedness condition of well
// designedness by construction.
func GenerateWellDesigned(rng *rand.Rand, opts GenerateOpts) sparql.Pattern {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 5
	}
	if opts.IRIs == nil {
		opts.IRIs = []rdf.IRI{"a", "b", "c", "p", "q", "r"}
	}
	counter := 0
	budget := 1 + rng.Intn(opts.MaxNodes)
	root := generateNode(rng, &opts, nil, &budget, &counter)
	t := &Tree{Root: root}
	return t.Pattern()
}

func generateNode(rng *rand.Rand, opts *GenerateOpts, parentVars []sparql.Var, budget, counter *int) *Node {
	*budget--
	n := &Node{}
	// Node variables: some inherited from the parent, some fresh.
	var vars []sparql.Var
	for _, v := range parentVars {
		if rng.Intn(2) == 0 {
			vars = append(vars, v)
		}
	}
	nFresh := 1 + rng.Intn(2)
	for i := 0; i < nFresh; i++ {
		vars = append(vars, sparql.Var(fmt.Sprintf("v%d", *counter)))
		*counter++
	}
	pos := func() sparql.Value {
		if rng.Intn(2) == 0 {
			return sparql.V(vars[rng.Intn(len(vars))])
		}
		return sparql.I(opts.IRIs[rng.Intn(len(opts.IRIs))])
	}
	nt := 1 + rng.Intn(2)
	for i := 0; i < nt; i++ {
		n.Triples = append(n.Triples, sparql.TP(pos(), sparql.I(opts.IRIs[rng.Intn(len(opts.IRIs))]), pos()))
	}
	// Make sure every declared variable occurs in some triple (so that
	// filters and children stay well designed).
	used := make(map[sparql.Var]struct{})
	for _, t := range n.Triples {
		for _, v := range sparql.Vars(t) {
			used[v] = struct{}{}
		}
	}
	var nodeVars []sparql.Var
	for _, v := range vars {
		if _, ok := used[v]; ok {
			nodeVars = append(nodeVars, v)
		}
	}
	if len(nodeVars) == 0 {
		// Degenerate all-constant node; give it one variable triple.
		v := sparql.Var(fmt.Sprintf("v%d", *counter))
		*counter++
		n.Triples = append(n.Triples, sparql.TP(sparql.V(v), sparql.I(opts.IRIs[rng.Intn(len(opts.IRIs))]), sparql.I(opts.IRIs[rng.Intn(len(opts.IRIs))])))
		nodeVars = []sparql.Var{v}
	}
	// Optional filter over node variables.
	if rng.Intn(3) == 0 {
		v := nodeVars[rng.Intn(len(nodeVars))]
		var cond sparql.Condition
		switch rng.Intn(3) {
		case 0:
			cond = sparql.Bound{X: v}
		case 1:
			cond = sparql.EqConst{X: v, C: opts.IRIs[rng.Intn(len(opts.IRIs))]}
		default:
			cond = sparql.Not{R: sparql.EqConst{X: v, C: opts.IRIs[rng.Intn(len(opts.IRIs))]}}
		}
		n.Conds = append(n.Conds, cond)
	}
	// Children while the budget allows.
	for *budget > 0 && rng.Intn(2) == 0 {
		n.Children = append(n.Children, generateNode(rng, opts, nodeVars, budget, counter))
	}
	return n
}
