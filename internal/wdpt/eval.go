package wdpt

import (
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// EvalTree evaluates a well-designed pattern tree directly, without
// materializing the nested left-outer joins of the rendered pattern.
// It implements the classic top-down procedure for well-designed
// patterns: an answer is a mapping that matches the core of some
// root-subtree R maximally — no child node outside R can extend it.
//
// The recursion computes, for each node, the set of *maximal*
// extensions of each core match; well designedness guarantees that the
// variables shared between a child and the rest of the tree occur in
// the parent's core, so child extensions are independent of each other
// and can be combined per child.
func EvalTree(g *rdf.Graph, t *Tree) *sparql.MappingSet {
	return evalNode(g, t.Root, sparql.NewMappingSet(sparql.Mapping{}))
}

// evalNode returns the maximal answers of the subtree rooted at n,
// relative to the set of partial mappings produced by the ancestors.
func evalNode(g *rdf.Graph, n *Node, parent *sparql.MappingSet) *sparql.MappingSet {
	core := sparql.Eval(g, n.corePattern())
	matched := parent.JoinHash(core)
	if matched.Len() == 0 {
		return matched
	}
	// Extend every matched mapping through each child independently: a
	// mapping keeps its current value if the child has no compatible
	// match, and is replaced by all its child extensions otherwise.
	current := matched
	for _, c := range n.Children {
		extended := evalNode(g, c, current)
		// current ⟕ child-results, but computed from the already
		// evaluated extensions: keep unextended mappings only when no
		// extension exists.
		next := sparql.NewMappingSet()
		for _, mu := range current.Mappings() {
			found := false
			for _, nu := range extended.Mappings() {
				if mu.SubsumedBy(nu) {
					found = true
					break
				}
			}
			if !found {
				next.Add(mu)
			}
		}
		for _, nu := range extended.Mappings() {
			next.Add(nu)
		}
		current = next
	}
	return current
}
