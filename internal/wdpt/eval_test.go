package wdpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparql"
	"repro/internal/workload"
)

// TestEvalTreeMatchesReferenceQuick: the dedicated top-down evaluation
// of well-designed pattern trees agrees with the bottom-up reference
// evaluator on random well-designed patterns and graphs.
func TestEvalTreeMatchesReferenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := GenerateWellDesigned(rng, GenerateOpts{MaxNodes: 6})
		tree, err := FromPattern(p)
		if err != nil {
			t.Logf("generator produced rejected pattern: %v", err)
			return false
		}
		g := workload.RandomGraph(rng, rng.Intn(30), nil)
		want := sparql.Eval(g, p)
		got := EvalTree(g, tree)
		if !got.Equal(want) {
			t.Logf("pattern %s\ntree:\n%s\ngraph\n%s\nwant %v\ngot  %v", p, tree, g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalTreeFigure2(t *testing.T) {
	tree, err := FromPattern(sparql.Opt{
		L: sparql.TP(sparql.V("X"), sparql.I("was_born_in"), sparql.I("Chile")),
		R: sparql.TP(sparql.V("X"), sparql.I("email"), sparql.V("Y")),
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := EvalTree(workload.Figure2G1(), tree)
	if r1.Len() != 1 || !r1.Contains(sparql.M("X", "Juan")) {
		t.Fatalf("G1 = %v", r1)
	}
	r2 := EvalTree(workload.Figure2G2(), tree)
	if r2.Len() != 1 || !r2.Contains(sparql.M("X", "Juan", "Y", "juan@puc.cl")) {
		t.Fatalf("G2 = %v", r2)
	}
}

func TestWellDesignedUnionToUSP(t *testing.T) {
	p := pat(t, "((?X a b) OPT (?X c ?Y)) UNION ((?Z d e) OPT (?Z f ?W))")
	usp, err := WellDesignedUnionToUSP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sparql.IsNSPattern(usp) {
		t.Fatalf("translation is not an ns-pattern: %s", usp)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := workload.RandomGraph(rng, rng.Intn(20), nil)
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, usp)) {
			t.Fatalf("translation changed answers on\n%s", g)
		}
	}
	// Rejections.
	if _, err := WellDesignedUnionToUSP(pat(t, "NS((?X a b))")); err == nil {
		t.Fatal("NS pattern accepted")
	}
	if _, err := WellDesignedUnionToUSP(pat(t, "(?X a b) AND ((?Y a b) OPT (?Y c ?X))")); err == nil {
		t.Fatal("non-well-designed pattern accepted")
	}
}

func TestWellDesignedUnionToUSPQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		ds := make([]sparql.Pattern, nd)
		for i := range ds {
			ds[i] = GenerateWellDesigned(rng, GenerateOpts{MaxNodes: 3})
		}
		p := sparql.UnionOf(ds...)
		usp, err := WellDesignedUnionToUSP(p)
		if err != nil {
			t.Logf("translation failed: %v", err)
			return false
		}
		g := workload.RandomGraph(rng, rng.Intn(20), nil)
		return sparql.IsNSPattern(usp) && sparql.Eval(g, p).Equal(sparql.Eval(g, usp))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
