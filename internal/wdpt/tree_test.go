package wdpt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func pat(t *testing.T, s string) sparql.Pattern {
	t.Helper()
	p, err := parser.ParsePattern(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

func TestFromPatternShapes(t *testing.T) {
	p := pat(t, "((?X name ?N) AND (?X works_at ?U)) OPT (?X email ?E) OPT (?X phone ?P)")
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, tree:\n%s", tree.NodeCount(), tree)
	}
	if len(tree.Root.Triples) != 2 || len(tree.Root.Children) != 2 {
		t.Fatalf("root shape wrong:\n%s", tree)
	}
	if !strings.Contains(tree.String(), "email") {
		t.Fatalf("String missing content:\n%s", tree)
	}
}

func TestFromPatternNormalizesAndOverOpt(t *testing.T) {
	// ((A OPT B) AND C) must normalize to (A AND C) with child B.
	p := pat(t, "((?X a b) OPT (?X c ?Y)) AND (?X d ?Z)")
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Triples) != 2 || len(tree.Root.Children) != 1 {
		t.Fatalf("normalization wrong:\n%s", tree)
	}
	// The rendered pattern is in OPT normal form and equivalent.
	rendered := tree.Pattern()
	opt, ok := rendered.(sparql.Opt)
	if !ok {
		t.Fatalf("rendered = %s", rendered)
	}
	if sparql.Ops(opt.L)[sparql.OpOpt] {
		t.Fatalf("left of top OPT still contains OPT: %s", rendered)
	}
}

func TestFromPatternRejections(t *testing.T) {
	// Not well designed.
	if _, err := FromPattern(pat(t, "(?X a b) AND ((?Y a b) OPT (?Y c ?X))")); err == nil {
		t.Fatal("non-well-designed pattern accepted")
	}
	// Out of fragment.
	if _, err := FromPattern(pat(t, "(?X a b) UNION (?X c d)")); err == nil {
		t.Fatal("UNION pattern accepted")
	}
	// Filter over an optionally bound variable.
	if _, err := FromPattern(pat(t, "((?X a b) OPT (?X c ?Y)) FILTER (bound(?Y))")); err == nil {
		t.Fatal("filter over optional variable accepted")
	}
}

// TestPatternTreeRenderEquivalentQuick validates the OPT-normal-form
// rewriting (Proposition A.1): the rendered tree evaluates like the
// original pattern on random graphs.
func TestPatternTreeRenderEquivalentQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := GenerateWellDesigned(rng, GenerateOpts{})
		tree, err := FromPattern(p)
		if err != nil {
			t.Logf("generator produced a rejected pattern %s: %v", p, err)
			return false
		}
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, tree.Pattern())) {
			t.Logf("pattern %s\nrendered %s\ngraph\n%s", p, tree.Pattern(), g)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWellDesignedToSimpleQuick is experiment E8 (Proposition 5.6): a
// well-designed pattern is equivalent to a single NS over a
// SPARQL[AUF] union.
func TestWellDesignedToSimpleQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := GenerateWellDesigned(rng, GenerateOpts{})
		simple, err := WellDesignedToSimple(p)
		if err != nil {
			t.Logf("translation failed on %s: %v", p, err)
			return false
		}
		ns, ok := simple.(sparql.NS)
		if !ok || !sparql.InFragment(ns.P, sparql.FragmentAUF) {
			t.Logf("translation of %s is not NS over AUF: %s", p, simple)
			return false
		}
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, simple)) {
			t.Logf("pattern %s\nsimple %s\ngraph\n%s\nwd  %v\nsp  %v",
				p, simple, g, sparql.Eval(g, p), sparql.Eval(g, simple))
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestToSimpleExample31(t *testing.T) {
	p := pat(t, "(?X was_born_in Chile) OPT (?X email ?Y)")
	simple, err := WellDesignedToSimple(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sparql.IsSimple(simple) {
		t.Fatalf("not a simple pattern: %s", simple)
	}
	g1, g2 := workload.Figure2G1(), workload.Figure2G2()
	if !sparql.Eval(g1, p).Equal(sparql.Eval(g1, simple)) || !sparql.Eval(g2, p).Equal(sparql.Eval(g2, simple)) {
		t.Fatalf("translation changed semantics: %s", simple)
	}
}

func TestRootSubtreesCount(t *testing.T) {
	// A root with two independent optional children has 4 root-subtrees;
	// a chain of two has 3.
	p := pat(t, "(?X a b) OPT (?X c ?Y) OPT (?X d ?Z)")
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tree.RootSubtrees()); n != 4 {
		t.Fatalf("independent children: %d root-subtrees, want 4", n)
	}
	p = pat(t, "(?X a b) OPT ((?X c ?Y) OPT (?Y d ?Z))")
	tree, err = FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tree.RootSubtrees()); n != 3 {
		t.Fatalf("chain: %d root-subtrees, want 3", n)
	}
}

func TestGeneratorProducesWellDesigned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := GenerateWellDesigned(rng, GenerateOpts{MaxNodes: 6})
		ok, err := analysis.IsWellDesigned(p)
		if err != nil || !ok {
			t.Fatalf("generator produced non-well-designed pattern: %s (err %v)", p, err)
		}
	}
}
