// Package wdpt implements well-designed pattern trees: the normal form
// of well-designed SPARQL[AOF] graph patterns (Proposition A.1, after
// Letelier, Pérez, Pichler and Skritek), and the translation of
// Proposition 5.6 from well-designed patterns to SP–SPARQL — a single
// NS operator over a SPARQL[AUF] union.
package wdpt

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/sparql"
)

// Node is a node of a well-designed pattern tree: a conjunction of
// triple patterns and filter conditions, with the children providing
// nested optional extensions.
type Node struct {
	Triples  []sparql.TriplePattern
	Conds    []sparql.Condition
	Children []*Node
}

// Tree is a well-designed pattern tree.
type Tree struct{ Root *Node }

// FromPattern converts a well-designed SPARQL[AOF] pattern into a
// pattern tree, applying the OPT-normal-form rewriting
//
//	(P1 OPT P2) AND P3 ≡ (P1 AND P3) OPT P2
//	P1 AND (P2 OPT P3) ≡ (P1 AND P2) OPT P3
//
// which is equivalence-preserving for well-designed patterns.  FILTER
// conditions are attached to the node whose triples bind their
// variables; a filter whose variables are bound only optionally is
// rejected (such patterns are outside the pattern-tree normal form).
func FromPattern(p sparql.Pattern) (*Tree, error) {
	wd, err := analysis.IsWellDesigned(p)
	if err != nil {
		return nil, err
	}
	if !wd {
		return nil, fmt.Errorf("wdpt: pattern is not well designed: %s", p)
	}
	root, err := build(p)
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

func build(p sparql.Pattern) (*Node, error) {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return &Node{Triples: []sparql.TriplePattern{q}}, nil
	case sparql.And:
		l, err := build(q.L)
		if err != nil {
			return nil, err
		}
		r, err := build(q.R)
		if err != nil {
			return nil, err
		}
		return &Node{
			Triples:  append(append([]sparql.TriplePattern{}, l.Triples...), r.Triples...),
			Conds:    append(append([]sparql.Condition{}, l.Conds...), r.Conds...),
			Children: append(append([]*Node{}, l.Children...), r.Children...),
		}, nil
	case sparql.Opt:
		l, err := build(q.L)
		if err != nil {
			return nil, err
		}
		r, err := build(q.R)
		if err != nil {
			return nil, err
		}
		l.Children = append(l.Children, r)
		return l, nil
	case sparql.Filter:
		n, err := build(q.P)
		if err != nil {
			return nil, err
		}
		core := make(map[sparql.Var]struct{})
		for _, t := range n.Triples {
			for _, v := range sparql.Vars(t) {
				core[v] = struct{}{}
			}
		}
		for _, v := range q.Cond.Vars(nil) {
			if _, ok := core[v]; !ok {
				return nil, fmt.Errorf("wdpt: filter %s constrains optionally-bound variable ?%s; not in pattern-tree normal form", q.Cond, v)
			}
		}
		n.Conds = append(n.Conds, q.Cond)
		return n, nil
	default:
		return nil, fmt.Errorf("wdpt: operator outside SPARQL[AOF] in %s", p)
	}
}

// pattern renders a node (with its subtree) back to a SPARQL[AOF]
// pattern in OPT normal form.
func (n *Node) pattern() sparql.Pattern {
	p := n.corePattern()
	for _, c := range n.Children {
		p = sparql.Opt{L: p, R: c.pattern()}
	}
	return p
}

// corePattern is the AND-of-triples (plus filters) of the node alone.
func (n *Node) corePattern() sparql.Pattern {
	ps := make([]sparql.Pattern, len(n.Triples))
	for i, t := range n.Triples {
		ps[i] = t
	}
	p := sparql.AndOf(ps...)
	if len(n.Conds) > 0 {
		p = sparql.Filter{P: p, Cond: sparql.ConjoinConds(n.Conds...)}
	}
	return p
}

// Pattern renders the tree as a SPARQL[AOF] pattern in OPT normal form
// (Proposition A.1).
func (t *Tree) Pattern() sparql.Pattern { return t.Root.pattern() }

// Vars returns the variables of the tree.
func (t *Tree) Vars() []sparql.Var { return sparql.Vars(t.Pattern()) }

// NodeCount returns the number of nodes.
func (t *Tree) NodeCount() int {
	n := 0
	var walk func(*Node)
	walk = func(nd *Node) {
		n++
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return n
}

// String renders the tree with indentation, for diagnostics.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.corePattern().String())
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// RootSubtrees enumerates every subtree of the tree that contains the
// root and is closed under parents, as slices of nodes.  These are the
// candidate "extension degrees" of an answer: a well-designed pattern
// maps each answer to the maximal root-subtree it satisfies.
func (t *Tree) RootSubtrees() [][]*Node {
	var enum func(n *Node) [][]*Node
	enum = func(n *Node) [][]*Node {
		// Combinations: for each child, either omit its subtree or
		// include one of its root-subtree choices.
		acc := [][]*Node{{n}}
		for _, c := range n.Children {
			choices := enum(c)
			var next [][]*Node
			for _, cur := range acc {
				next = append(next, cur) // child omitted
				for _, ch := range choices {
					ext := make([]*Node, 0, len(cur)+len(ch))
					ext = append(ext, cur...)
					ext = append(ext, ch...)
					next = append(next, ext)
				}
			}
			acc = next
		}
		return acc
	}
	return enum(t.Root)
}

// ToSimple implements the constructive direction of Proposition 5.6:
// it translates a well-designed pattern tree into an equivalent simple
// pattern — a single NS over a SPARQL[AUF] union.  Each root-subtree R
// contributes the conjunctive disjunct AND of the triples (and filters)
// of its nodes; the NS keeps, for every mapping, only its maximal
// extension, which is exactly the semantics of nested OPT in a
// well-designed pattern.
func (t *Tree) ToSimple() sparql.Pattern {
	var disjuncts []sparql.Pattern
	for _, sub := range t.RootSubtrees() {
		var triples []sparql.Pattern
		var conds []sparql.Condition
		for _, n := range sub {
			for _, tp := range n.Triples {
				triples = append(triples, tp)
			}
			conds = append(conds, n.Conds...)
		}
		d := sparql.AndOf(triples...)
		if len(conds) > 0 {
			d = sparql.Filter{P: d, Cond: sparql.ConjoinConds(conds...)}
		}
		disjuncts = append(disjuncts, d)
	}
	return sparql.NS{P: sparql.UnionOf(disjuncts...)}
}

// WellDesignedToSimple is the one-call form of Proposition 5.6: it
// converts a well-designed SPARQL[AOF] pattern to an equivalent simple
// pattern NS(Q) with Q in SPARQL[AUF].
func WellDesignedToSimple(p sparql.Pattern) (sparql.Pattern, error) {
	t, err := FromPattern(p)
	if err != nil {
		return nil, err
	}
	return t.ToSimple(), nil
}
