package sat

import "fmt"

// Prop is a propositional formula over variables 1..n.  The Section 7
// reductions of the paper start from "a propositional formula"; Prop
// plus the Tseitin transform lets arbitrary formulas feed the CNF-based
// gadgets of internal/reduction.
type Prop interface {
	// Eval evaluates under a 1-indexed assignment.
	Eval(assign []bool) bool
	// maxVar returns the largest variable index mentioned.
	maxVar() int
	String() string
	isProp()
}

// PVar is a propositional variable (index ≥ 1).
type PVar int

// PNot is ¬F.
type PNot struct{ F Prop }

// PAnd is the conjunction of its parts (empty = true).
type PAnd struct{ Fs []Prop }

// POr is the disjunction of its parts (empty = false).
type POr struct{ Fs []Prop }

// PImplies is F → G.
type PImplies struct{ F, G Prop }

// PIff is F ↔ G.
type PIff struct{ F, G Prop }

func (PVar) isProp()     {}
func (PNot) isProp()     {}
func (PAnd) isProp()     {}
func (POr) isProp()      {}
func (PImplies) isProp() {}
func (PIff) isProp()     {}

// Eval implements Prop.
func (v PVar) Eval(assign []bool) bool { return assign[int(v)] }

// Eval implements Prop.
func (f PNot) Eval(assign []bool) bool { return !f.F.Eval(assign) }

// Eval implements Prop.
func (f PAnd) Eval(assign []bool) bool {
	for _, g := range f.Fs {
		if !g.Eval(assign) {
			return false
		}
	}
	return true
}

// Eval implements Prop.
func (f POr) Eval(assign []bool) bool {
	for _, g := range f.Fs {
		if g.Eval(assign) {
			return true
		}
	}
	return false
}

// Eval implements Prop.
func (f PImplies) Eval(assign []bool) bool { return !f.F.Eval(assign) || f.G.Eval(assign) }

// Eval implements Prop.
func (f PIff) Eval(assign []bool) bool { return f.F.Eval(assign) == f.G.Eval(assign) }

func (v PVar) maxVar() int { return int(v) }
func (f PNot) maxVar() int { return f.F.maxVar() }

func (f PAnd) maxVar() int { return maxOver(f.Fs) }
func (f POr) maxVar() int  { return maxOver(f.Fs) }

func (f PImplies) maxVar() int { return max2(f.F.maxVar(), f.G.maxVar()) }
func (f PIff) maxVar() int     { return max2(f.F.maxVar(), f.G.maxVar()) }

func maxOver(fs []Prop) int {
	m := 0
	for _, g := range fs {
		m = max2(m, g.maxVar())
	}
	return m
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (v PVar) String() string { return fmt.Sprintf("x%d", int(v)) }
func (f PNot) String() string { return "¬" + f.F.String() }

func (f PAnd) String() string { return joinProps(f.Fs, " ∧ ", "⊤") }
func (f POr) String() string  { return joinProps(f.Fs, " ∨ ", "⊥") }

func (f PImplies) String() string { return "(" + f.F.String() + " → " + f.G.String() + ")" }
func (f PIff) String() string     { return "(" + f.F.String() + " ↔ " + f.G.String() + ")" }

func joinProps(fs []Prop, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	s := "("
	for i, g := range fs {
		if i > 0 {
			s += sep
		}
		s += g.String()
	}
	return s + ")"
}

// Tseitin converts a propositional formula into an equisatisfiable CNF
// whose models restricted to the base variables are exactly the models
// of the formula.  Every internal node gets a definition variable with
// equivalence clauses in *both* directions, so each base model extends
// to exactly one CNF model — the functional-encoding property the
// Lemma G.1 SPARQL gadget needs (its evaluation materializes models).
func Tseitin(p Prop) *CNF {
	f := NewCNF(p.maxVar())
	root := tseitinLit(p, f)
	f.AddClause(root)
	return f
}

// tseitinLit returns a literal equivalent to p, adding definition
// clauses to f.
func tseitinLit(p Prop, f *CNF) Lit {
	switch q := p.(type) {
	case PVar:
		return Lit(int(q))
	case PNot:
		return tseitinLit(q.F, f).Neg()
	case PAnd:
		lits := make([]Lit, len(q.Fs))
		for i, g := range q.Fs {
			lits[i] = tseitinLit(g, f)
		}
		return defineAnd(f, lits)
	case POr:
		lits := make([]Lit, len(q.Fs))
		for i, g := range q.Fs {
			lits[i] = tseitinLit(g, f)
		}
		return defineOr(f, lits)
	case PImplies:
		a, b := tseitinLit(q.F, f), tseitinLit(q.G, f)
		return defineOr(f, []Lit{a.Neg(), b})
	case PIff:
		a, b := tseitinLit(q.F, f), tseitinLit(q.G, f)
		// x ↔ (a ↔ b).
		x := Lit(f.NewVar())
		f.AddClause(x.Neg(), a.Neg(), b)
		f.AddClause(x.Neg(), a, b.Neg())
		f.AddClause(x, a, b)
		f.AddClause(x, a.Neg(), b.Neg())
		return x
	default:
		panic(fmt.Sprintf("sat: unknown Prop type %T", p))
	}
}

// defineAnd introduces x with x ↔ ⋀ lits.
func defineAnd(f *CNF, lits []Lit) Lit {
	switch len(lits) {
	case 0:
		x := Lit(f.NewVar())
		f.AddClause(x)
		return x
	case 1:
		return lits[0]
	}
	x := Lit(f.NewVar())
	long := make(Clause, 0, len(lits)+1)
	for _, l := range lits {
		f.AddClause(x.Neg(), l)
		long = append(long, l.Neg())
	}
	f.Clauses = append(f.Clauses, append(long, x))
	return x
}

// defineOr introduces x with x ↔ ⋁ lits.
func defineOr(f *CNF, lits []Lit) Lit {
	switch len(lits) {
	case 0:
		x := Lit(f.NewVar())
		f.AddClause(x.Neg())
		return x
	case 1:
		return lits[0]
	}
	x := Lit(f.NewVar())
	long := make(Clause, 0, len(lits)+1)
	for _, l := range lits {
		f.AddClause(x, l.Neg())
		long = append(long, l)
	}
	f.Clauses = append(f.Clauses, append(long, x.Neg()))
	return x
}
