// Package sat is the propositional-logic substrate for the complexity
// reductions of Section 7 of the paper: CNF formulas, a complete DPLL
// solver (used to label ground truth on small instances), cardinality
// encodings (for the MAX-ODD-SAT reduction of Theorem 7.3) and graph
// k-coloring encodings (for the Exact-M_k-Colorability reduction of
// Theorem 7.2).
package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Lit is a literal: +v for the variable v, -v for its negation.
// Variables are numbered from 1.
type Lit int

// Var returns the variable of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Positive reports whether the literal is unnegated.
func (l Lit) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Lit

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF returns an empty formula over n variables.
func NewCNF(n int) *CNF { return &CNF{NumVars: n} }

// AddClause appends a clause, growing NumVars if the clause mentions a
// larger variable.  A zero literal panics.
func (f *CNF) AddClause(lits ...Lit) {
	c := make(Clause, len(lits))
	for i, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		if l.Var() > f.NumVars {
			f.NumVars = l.Var()
		}
		c[i] = l
	}
	f.Clauses = append(f.Clauses, c)
}

// NewVar allocates a fresh variable and returns its index.
func (f *CNF) NewVar() int {
	f.NumVars++
	return f.NumVars
}

// Clone returns a deep copy.
func (f *CNF) Clone() *CNF {
	out := &CNF{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), c...)
	}
	return out
}

// Eval reports whether the assignment (1-indexed; index 0 unused)
// satisfies every clause.
func (f *CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the formula in a DIMACS-like notation.
func (f *CNF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(&b, "%d ", l)
		}
		b.WriteString("0\n")
	}
	return b.String()
}

// CountTrue returns the number of true values among variables 1..n of
// the assignment.
func CountTrue(assign []bool, n int) int {
	c := 0
	for v := 1; v <= n; v++ {
		if assign[v] {
			c++
		}
	}
	return c
}

// Random3CNF draws a random 3-CNF with the given number of variables
// and clauses; each clause has three distinct variables.
func Random3CNF(rng *rand.Rand, nVars, nClauses int) *CNF {
	if nVars < 3 {
		panic("sat: Random3CNF needs at least 3 variables")
	}
	f := NewCNF(nVars)
	for i := 0; i < nClauses; i++ {
		vars := rng.Perm(nVars)[:3]
		sort.Ints(vars)
		c := make(Clause, 3)
		for j, v := range vars {
			l := Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
