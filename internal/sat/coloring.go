package sat

// UGraph is a simple undirected graph on vertices 0..N-1, used by the
// Exact-M_k-Colorability reduction of Theorem 7.2.
type UGraph struct {
	N     int
	Edges [][2]int
}

// AddEdge inserts an undirected edge.
func (g *UGraph) AddEdge(u, v int) {
	if u >= g.N || v >= g.N || u < 0 || v < 0 {
		panic("sat: edge endpoint out of range")
	}
	g.Edges = append(g.Edges, [2]int{u, v})
}

// Complete returns K_n.
func Complete(n int) *UGraph {
	g := &UGraph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cycle returns C_n.
func Cycle(n int) *UGraph {
	g := &UGraph{N: n}
	for u := 0; u < n; u++ {
		g.AddEdge(u, (u+1)%n)
	}
	return g
}

// ColoringCNF encodes "g is k-colorable": variable x_{v,c} (v·k + c + 1)
// says vertex v gets color c; every vertex gets *exactly one* color
// (at-least-one plus pairwise at-most-one), and adjacent vertices do
// not share one.  The exactly-one constraint keeps the models of the
// formula in bijection with the proper colorings, which matters when
// the formula feeds the Lemma G.1 SPARQL gadget (whose evaluation
// materializes all models).
func ColoringCNF(g *UGraph, k int) *CNF {
	f := NewCNF(g.N * k)
	x := func(v, c int) Lit { return Lit(v*k + c + 1) }
	for v := 0; v < g.N; v++ {
		clause := make(Clause, k)
		for c := 0; c < k; c++ {
			clause[c] = x(v, c)
		}
		f.Clauses = append(f.Clauses, clause)
		for c := 0; c < k; c++ {
			for c2 := c + 1; c2 < k; c2++ {
				f.AddClause(x(v, c).Neg(), x(v, c2).Neg())
			}
		}
	}
	for _, e := range g.Edges {
		for c := 0; c < k; c++ {
			f.AddClause(x(e[0], c).Neg(), x(e[1], c).Neg())
		}
	}
	return f
}

// Colorable reports whether g is k-colorable (k ≥ 1; 0 colors only
// color the empty graph).
func Colorable(g *UGraph, k int) bool {
	if k <= 0 {
		return g.N == 0
	}
	return Satisfiable(ColoringCNF(g, k))
}

// ChromaticNumber computes χ(g) by probing increasing k; exponential in
// the worst case, intended for small ground-truth instances.
func ChromaticNumber(g *UGraph) int {
	if g.N == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if Colorable(g, k) {
			return k
		}
	}
}
