package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomProp(rng *rand.Rand, depth, nVars int) Prop {
	if depth == 0 || rng.Intn(3) == 0 {
		return PVar(1 + rng.Intn(nVars))
	}
	switch rng.Intn(5) {
	case 0:
		return PNot{F: randomProp(rng, depth-1, nVars)}
	case 1:
		n := rng.Intn(3)
		fs := make([]Prop, n)
		for i := range fs {
			fs[i] = randomProp(rng, depth-1, nVars)
		}
		return PAnd{Fs: fs}
	case 2:
		n := rng.Intn(3)
		fs := make([]Prop, n)
		for i := range fs {
			fs[i] = randomProp(rng, depth-1, nVars)
		}
		return POr{Fs: fs}
	case 3:
		return PImplies{F: randomProp(rng, depth-1, nVars), G: randomProp(rng, depth-1, nVars)}
	default:
		return PIff{F: randomProp(rng, depth-1, nVars), G: randomProp(rng, depth-1, nVars)}
	}
}

func TestPropEval(t *testing.T) {
	// (x1 ∧ ¬x2) ∨ (x2 ↔ x3) with x1=T, x2=F, x3=F.
	p := POr{Fs: []Prop{
		PAnd{Fs: []Prop{PVar(1), PNot{F: PVar(2)}}},
		PIff{F: PVar(2), G: PVar(3)},
	}}
	assign := []bool{false, true, false, false}
	if !p.Eval(assign) {
		t.Fatal("eval wrong")
	}
	if !(PImplies{F: PVar(2), G: PVar(3)}).Eval(assign) {
		t.Fatal("false antecedent should satisfy implication")
	}
	if (PAnd{}).Eval(assign) != true || (POr{}).Eval(assign) != false {
		t.Fatal("empty connectives wrong")
	}
	s := p.String()
	for _, want := range []string{"x1", "¬x2", "↔", "∨", "∧"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// TestTseitinEquisatisfiableQuick: for every assignment of the base
// variables, the formula holds iff the assignment extends to a model of
// the Tseitin CNF — and then to exactly one (functional encoding).
func TestTseitinEquisatisfiableQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProp(rng, 3, 3)
		cnf := Tseitin(p)
		if cnf.NumVars > 18 {
			return true // keep the model count enumerable
		}
		// Pin only the formula's own variables: Tseitin auxiliaries
		// start right after p.maxVar().
		nVars := p.maxVar()
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			base := make([]bool, nVars+1)
			for v := 1; v <= nVars; v++ {
				base[v] = mask&(1<<uint(v-1)) != 0
			}
			fixed := cnf.Clone()
			for v := 1; v <= nVars; v++ {
				if base[v] {
					fixed.AddClause(Lit(v))
				} else {
					fixed.AddClause(Lit(-v))
				}
			}
			want := p.Eval(base)
			if Satisfiable(fixed) != want {
				t.Logf("prop %s mask %b: CNF sat disagrees (want %v)", p, mask, want)
				return false
			}
			if want && countModels(fixed) != 1 {
				t.Logf("prop %s mask %b: %d extensions, want exactly 1", p, mask, countModels(fixed))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTseitinModelCount(t *testing.T) {
	// Models of the CNF must equal models of the formula.
	p := POr{Fs: []Prop{PVar(1), PAnd{Fs: []Prop{PVar(2), PVar(3)}}}}
	cnf := Tseitin(p)
	// Formula models over 3 vars: x1 ∨ (x2∧x3) → 5 models.
	if got := countModels(cnf); got != 5 {
		t.Fatalf("model count = %d, want 5", got)
	}
}

func TestTseitinEdgeCases(t *testing.T) {
	// Constant-true and constant-false formulas.
	if !Satisfiable(Tseitin(PAnd{})) {
		t.Fatal("⊤ unsatisfiable")
	}
	if Satisfiable(Tseitin(POr{})) {
		t.Fatal("⊥ satisfiable")
	}
	// Single literal and its negation.
	if !Satisfiable(Tseitin(PVar(1))) || !Satisfiable(Tseitin(PNot{F: PVar(1)})) {
		t.Fatal("literal formulas unsatisfiable")
	}
	if Satisfiable(Tseitin(PAnd{Fs: []Prop{PVar(1), PNot{F: PVar(1)}}})) {
		t.Fatal("x ∧ ¬x satisfiable")
	}
}

func TestTseitinFeedsGadgets(t *testing.T) {
	// End-to-end: an arbitrary propositional formula through Tseitin is
	// usable wherever the reductions expect CNF.
	p := PIff{F: PVar(1), G: PImplies{F: PVar(2), G: PVar(3)}}
	cnf := Tseitin(p)
	if !Satisfiable(cnf) {
		t.Fatal("satisfiable formula became unsatisfiable")
	}
}
