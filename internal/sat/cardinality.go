package sat

// AtMostK adds clauses to f enforcing that at most k of the given
// literals are true, using the Sinz sequential-counter encoding
// (auxiliary registers s_{i,j} = "at least j of the first i literals").
// k must be ≥ 0; k ≥ len(lits) adds nothing.
func AtMostK(f *CNF, lits []Lit, k int) {
	n := len(lits)
	if k >= n {
		return
	}
	if k == 0 {
		for _, l := range lits {
			f.AddClause(l.Neg())
		}
		return
	}
	// s[i][j], 1 ≤ i ≤ n, 1 ≤ j ≤ k: at least j of lits[0..i-1] true.
	s := make([][]int, n+1)
	for i := 1; i <= n; i++ {
		s[i] = make([]int, k+1)
		for j := 1; j <= k; j++ {
			s[i][j] = f.NewVar()
		}
	}
	f.AddClause(lits[0].Neg(), Lit(s[1][1]))
	for j := 2; j <= k; j++ {
		f.AddClause(Lit(-s[1][j]))
	}
	for i := 2; i <= n; i++ {
		f.AddClause(lits[i-1].Neg(), Lit(s[i][1]))
		f.AddClause(Lit(-s[i-1][1]), Lit(s[i][1]))
		for j := 2; j <= k; j++ {
			f.AddClause(lits[i-1].Neg(), Lit(-s[i-1][j-1]), Lit(s[i][j]))
			f.AddClause(Lit(-s[i-1][j]), Lit(s[i][j]))
		}
		f.AddClause(lits[i-1].Neg(), Lit(-s[i-1][k]))
	}
}

// AtLeastK adds clauses enforcing that at least k of the given literals
// are true, via the duality "at most n-k of the negations are true".
func AtLeastK(f *CNF, lits []Lit, k int) {
	n := len(lits)
	if k <= 0 {
		return
	}
	if k > n {
		// Unsatisfiable; add the empty-clause equivalent.
		v := f.NewVar()
		f.AddClause(Lit(v))
		f.AddClause(Lit(-v))
		return
	}
	neg := make([]Lit, n)
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	AtMostK(f, neg, n-k)
}

// AtLeastKFunc adds clauses enforcing that at least k of the literals
// are true, using a sequential counter whose registers are
// *functionally defined* (s_{i,j} ↔ "at least j of the first i literals
// are true", with equivalences in both directions).  Unlike the
// implication-only Sinz encoding, every model of the base variables
// extends to exactly one model of the auxiliaries; this keeps the
// model count — and hence the answer sets of the Lemma G.1 SPARQL
// gadget, which materializes all models — equal to the number of
// satisfying base assignments.
func AtLeastKFunc(f *CNF, lits []Lit, k int) {
	n := len(lits)
	if k <= 0 {
		return
	}
	if k > n {
		v := f.NewVar()
		f.AddClause(Lit(v))
		f.AddClause(Lit(-v))
		return
	}
	// s[i][j] for 1 ≤ j ≤ min(i, k).
	s := make([][]int, n+1)
	for i := 1; i <= n; i++ {
		top := i
		if top > k {
			top = k
		}
		s[i] = make([]int, top+1)
		for j := 1; j <= top; j++ {
			s[i][j] = f.NewVar()
		}
	}
	// s_{1,1} ↔ l_1.
	f.AddClause(Lit(-s[1][1]), lits[0])
	f.AddClause(lits[0].Neg(), Lit(s[1][1]))
	for i := 2; i <= n; i++ {
		top := len(s[i]) - 1
		for j := 1; j <= top; j++ {
			x := Lit(s[i][j])
			// a = s_{i-1,j} (false when j > i-1), b = l_i,
			// c = s_{i-1,j-1} (true when j = 1).
			var a Lit
			if j < len(s[i-1]) {
				a = Lit(s[i-1][j])
			}
			b := lits[i-1]
			var c Lit
			if j == 1 {
				c = 0 // true
			} else {
				c = Lit(s[i-1][j-1])
			}
			// x ↔ a ∨ (b ∧ c), with 0 meaning the constant noted above.
			switch {
			case a == 0 && c == 0: // x ↔ b
				f.AddClause(x.Neg(), b)
				f.AddClause(b.Neg(), x)
			case a == 0: // x ↔ b ∧ c
				f.AddClause(x.Neg(), b)
				f.AddClause(x.Neg(), c)
				f.AddClause(b.Neg(), c.Neg(), x)
			case c == 0: // x ↔ a ∨ b
				f.AddClause(x.Neg(), a, b)
				f.AddClause(a.Neg(), x)
				f.AddClause(b.Neg(), x)
			default:
				f.AddClause(x.Neg(), a, b)
				f.AddClause(x.Neg(), a, c)
				f.AddClause(a.Neg(), x)
				f.AddClause(b.Neg(), c.Neg(), x)
			}
		}
	}
	f.AddClause(Lit(s[n][k]))
}

// WithAtLeastKTrue returns φ_k of the Theorem 7.3 reduction: a copy of
// f augmented with clauses asserting that at least k of the variables
// 1..f.NumVars are true.  φ_k is satisfiable iff some assignment
// satisfies f with ≥ k variables true.  The functional counter encoding
// is used so that the SPARQL gadget built from φ_k stays enumerable.
func WithAtLeastKTrue(f *CNF, k int) *CNF {
	out := f.Clone()
	lits := make([]Lit, f.NumVars)
	for v := 1; v <= f.NumVars; v++ {
		lits[v-1] = Lit(v)
	}
	AtLeastKFunc(out, lits, k)
	return out
}

// MaxTrueVars returns the maximum, over satisfying assignments of f, of
// the number of true variables, and ok=false when f is unsatisfiable.
// Used as the ground-truth oracle for MAX-ODD-SAT.
func MaxTrueVars(f *CNF) (int, bool) {
	best, ok := -1, false
	for k := f.NumVars; k >= 0; k-- {
		if Satisfiable(WithAtLeastKTrue(f, k)) {
			best, ok = k, true
			break
		}
	}
	return best, ok
}
