package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLit(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || !l.Positive() || l.Neg() != Lit(-3) || l.Neg().Var() != 3 || l.Neg().Positive() {
		t.Fatal("literal accessors wrong")
	}
}

func TestCNFBasics(t *testing.T) {
	f := NewCNF(2)
	f.AddClause(1, -2)
	f.AddClause(Lit(5))
	if f.NumVars != 5 {
		t.Fatalf("NumVars = %d", f.NumVars)
	}
	if v := f.NewVar(); v != 6 {
		t.Fatalf("NewVar = %d", v)
	}
	if !strings.Contains(f.String(), "p cnf 6 2") {
		t.Fatalf("String = %q", f.String())
	}
	g := f.Clone()
	g.AddClause(Lit(-1))
	if len(f.Clauses) != 2 {
		t.Fatal("Clone shares clause slice")
	}
	mustPanic(t, func() { f.AddClause(0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSolveSimple(t *testing.T) {
	f := NewCNF(2)
	f.AddClause(1, 2)
	f.AddClause(-1)
	m, ok := Solve(f)
	if !ok || !m[2] || m[1] {
		t.Fatalf("model = %v, ok = %v", m, ok)
	}
	// x ∧ ¬x is unsatisfiable.
	g := NewCNF(1)
	g.AddClause(Lit(1))
	g.AddClause(Lit(-1))
	if Satisfiable(g) {
		t.Fatal("contradiction reported satisfiable")
	}
	// Empty formula is satisfiable.
	if !Satisfiable(NewCNF(3)) {
		t.Fatal("empty formula reported unsatisfiable")
	}
	// Empty clause is unsatisfiable.
	h := NewCNF(1)
	h.Clauses = append(h.Clauses, Clause{})
	if Satisfiable(h) {
		t.Fatal("empty clause reported satisfiable")
	}
}

func TestSolveMatchesBruteQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		formula := Random3CNF(rng, n, rng.Intn(4*n))
		model, ok := Solve(formula)
		_, bruteOK := SolveBrute(formula)
		if ok != bruteOK {
			t.Logf("DPLL=%v brute=%v on\n%s", ok, bruteOK, formula)
			return false
		}
		if ok && !formula.Eval(model) {
			t.Logf("DPLL returned a non-model on\n%s", formula)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAtMostKExhaustive(t *testing.T) {
	// For all n ≤ 5, k ≤ n: assignments to the base variables extend to
	// the auxiliaries iff they have ≤ k true literals.
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n; k++ {
			base := NewCNF(n)
			lits := make([]Lit, n)
			for i := range lits {
				lits[i] = Lit(i + 1)
			}
			AtMostK(base, lits, k)
			for mask := 0; mask < 1<<uint(n); mask++ {
				fixed := base.Clone()
				count := 0
				for v := 1; v <= n; v++ {
					if mask&(1<<uint(v-1)) != 0 {
						fixed.AddClause(Lit(v))
						count++
					} else {
						fixed.AddClause(Lit(-v))
					}
				}
				want := count <= k
				if got := Satisfiable(fixed); got != want {
					t.Fatalf("n=%d k=%d mask=%b: sat=%v want %v", n, k, mask, got, want)
				}
			}
		}
	}
}

func TestAtLeastKExhaustive(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n+1; k++ {
			base := NewCNF(n)
			lits := make([]Lit, n)
			for i := range lits {
				lits[i] = Lit(i + 1)
			}
			AtLeastK(base, lits, k)
			for mask := 0; mask < 1<<uint(n); mask++ {
				fixed := base.Clone()
				count := 0
				for v := 1; v <= n; v++ {
					if mask&(1<<uint(v-1)) != 0 {
						fixed.AddClause(Lit(v))
						count++
					} else {
						fixed.AddClause(Lit(-v))
					}
				}
				want := count >= k
				if got := Satisfiable(fixed); got != want {
					t.Fatalf("n=%d k=%d mask=%b: sat=%v want %v", n, k, mask, got, want)
				}
			}
		}
	}
}

func TestWithAtLeastKTrueAndMaxTrueVars(t *testing.T) {
	// f = (x1 ∨ x2) ∧ ¬x3: max true vars = 2.
	f := NewCNF(3)
	f.AddClause(1, 2)
	f.AddClause(Lit(-3))
	if !Satisfiable(WithAtLeastKTrue(f, 2)) {
		t.Fatal("φ_2 should be satisfiable")
	}
	if Satisfiable(WithAtLeastKTrue(f, 3)) {
		t.Fatal("φ_3 should be unsatisfiable")
	}
	if m, ok := MaxTrueVars(f); !ok || m != 2 {
		t.Fatalf("MaxTrueVars = %d, %v", m, ok)
	}
	g := NewCNF(1)
	g.AddClause(Lit(1))
	g.AddClause(Lit(-1))
	if _, ok := MaxTrueVars(g); ok {
		t.Fatal("MaxTrueVars on unsat formula reported ok")
	}
}

func TestMaxTrueVarsMatchesBruteQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		formula := Random3CNF(rng, n, rng.Intn(3*n))
		got, gotOK := MaxTrueVars(formula)
		// Brute-force reference.
		best, ok := -1, false
		assign := make([]bool, n+1)
		for mask := 0; mask < 1<<uint(n); mask++ {
			for v := 1; v <= n; v++ {
				assign[v] = mask&(1<<uint(v-1)) != 0
			}
			if formula.Eval(assign) {
				ok = true
				if c := CountTrue(assign, n); c > best {
					best = c
				}
			}
		}
		return gotOK == ok && (!ok || got == best)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestColoring(t *testing.T) {
	cases := []struct {
		name string
		g    *UGraph
		chi  int
	}{
		{"K1", Complete(1), 1},
		{"K4", Complete(4), 4},
		{"C4 (even cycle)", Cycle(4), 2},
		{"C5 (odd cycle)", Cycle(5), 3},
	}
	for _, c := range cases {
		if got := ChromaticNumber(c.g); got != c.chi {
			t.Errorf("%s: χ = %d, want %d", c.name, got, c.chi)
		}
		if !Colorable(c.g, c.chi) || Colorable(c.g, c.chi-1) {
			t.Errorf("%s: Colorable inconsistent around χ", c.name)
		}
	}
	if ChromaticNumber(&UGraph{}) != 0 {
		t.Error("empty graph should have χ = 0")
	}
	if !Colorable(&UGraph{}, 0) || Colorable(Complete(2), 0) {
		t.Error("0-colorability wrong")
	}
	mustPanic(t, func() { (&UGraph{N: 2}).AddEdge(0, 5) })
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := Random3CNF(rng, 6, 10)
	if f.NumVars != 6 || len(f.Clauses) != 10 {
		t.Fatalf("shape = %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause %v not ternary", c)
		}
		if c[0].Var() == c[1].Var() || c[1].Var() == c[2].Var() || c[0].Var() == c[2].Var() {
			t.Fatalf("clause %v repeats a variable", c)
		}
	}
	mustPanic(t, func() { Random3CNF(rng, 2, 1) })
}

func TestAtLeastKFuncExhaustive(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n+1; k++ {
			base := NewCNF(n)
			lits := make([]Lit, n)
			for i := range lits {
				lits[i] = Lit(i + 1)
			}
			AtLeastKFunc(base, lits, k)
			for mask := 0; mask < 1<<uint(n); mask++ {
				fixed := base.Clone()
				count := 0
				for v := 1; v <= n; v++ {
					if mask&(1<<uint(v-1)) != 0 {
						fixed.AddClause(Lit(v))
						count++
					} else {
						fixed.AddClause(Lit(-v))
					}
				}
				want := count >= k
				if got := Satisfiable(fixed); got != want {
					t.Fatalf("n=%d k=%d mask=%b: sat=%v want %v", n, k, mask, got, want)
				}
			}
		}
	}
}

func countModels(f *CNF) int {
	n := f.NumVars
	if n > 20 {
		panic("countModels: too many variables")
	}
	assign := make([]bool, n+1)
	count := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(assign) {
			count++
		}
	}
	return count
}

func TestAtLeastKFuncModelCount(t *testing.T) {
	// The functional encoding must have exactly one model per base
	// assignment with ≥ k true variables: C(4,2)+C(4,3)+C(4,4) = 11 for
	// n = 4, k = 2.
	f := NewCNF(4)
	lits := []Lit{1, 2, 3, 4}
	AtLeastKFunc(f, lits, 2)
	if got := countModels(f); got != 11 {
		t.Fatalf("model count = %d, want 11", got)
	}
}

func TestColoringModelCountExactlyOne(t *testing.T) {
	// With the exactly-one constraint, models of the coloring CNF are in
	// bijection with proper colorings: the triangle has 3! = 6 proper
	// 3-colorings.
	f := ColoringCNF(Complete(3), 3)
	if got := countModels(f); got != 6 {
		t.Fatalf("model count = %d, want 6", got)
	}
}
