package sat

// value is the three-valued assignment state used by the solver.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

// Solve decides satisfiability of f with DPLL (unit propagation, pure
// literal elimination, first-unassigned branching).  On success it
// returns a satisfying assignment indexed 1..NumVars.
func Solve(f *CNF) ([]bool, bool) {
	assign := make([]value, f.NumVars+1)
	if !dpll(f, assign) {
		return nil, false
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == vTrue
	}
	return out, true
}

// Satisfiable is Solve without the model.
func Satisfiable(f *CNF) bool {
	_, ok := Solve(f)
	return ok
}

func litValue(assign []value, l Lit) value {
	v := assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if l.Positive() == (v == vTrue) {
		return vTrue
	}
	return vFalse
}

func dpll(f *CNF, assign []value) bool {
	// Unit propagation to fixpoint; detect conflicts.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = unassigned
		}
	}
	for {
		propagated := false
		for _, c := range f.Clauses {
			unassignedCount := 0
			var unit Lit
			sat := false
			for _, l := range c {
				switch litValue(assign, l) {
				case vTrue:
					sat = true
				case unassigned:
					unassignedCount++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch unassignedCount {
			case 0:
				undo()
				return false
			case 1:
				if unit.Positive() {
					assign[unit.Var()] = vTrue
				} else {
					assign[unit.Var()] = vFalse
				}
				trail = append(trail, unit.Var())
				propagated = true
			}
		}
		if !propagated {
			break
		}
	}

	// Pure literal elimination.
	polarity := make(map[int]int8) // 1 pos only, -1 neg only, 2 mixed
	for _, c := range f.Clauses {
		clauseSat := false
		for _, l := range c {
			if litValue(assign, l) == vTrue {
				clauseSat = true
				break
			}
		}
		if clauseSat {
			continue
		}
		for _, l := range c {
			if litValue(assign, l) != unassigned {
				continue
			}
			p := int8(1)
			if !l.Positive() {
				p = -1
			}
			if cur, ok := polarity[l.Var()]; !ok {
				polarity[l.Var()] = p
			} else if cur != p {
				polarity[l.Var()] = 2
			}
		}
	}
	for v, p := range polarity {
		if p == 1 {
			assign[v] = vTrue
			trail = append(trail, v)
		} else if p == -1 {
			assign[v] = vFalse
			trail = append(trail, v)
		}
	}

	// Branch on the first unassigned variable of an unsatisfied clause.
	branch := 0
	for _, c := range f.Clauses {
		sat := false
		cand := 0
		for _, l := range c {
			switch litValue(assign, l) {
			case vTrue:
				sat = true
			case unassigned:
				if cand == 0 {
					cand = l.Var()
				}
			}
			if sat {
				break
			}
		}
		if !sat && cand != 0 {
			branch = cand
			break
		}
	}
	if branch == 0 {
		// Every clause satisfied.
		return true
	}
	for _, try := range []value{vTrue, vFalse} {
		assign[branch] = try
		if dpll(f, assign) {
			return true
		}
	}
	assign[branch] = unassigned
	undo()
	return false
}

// SolveBrute decides satisfiability by enumerating all assignments; the
// reference oracle for testing the DPLL solver (use only for tiny n).
func SolveBrute(f *CNF) ([]bool, bool) {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(assign) {
			return assign, true
		}
	}
	return nil, false
}
