package rdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddContainsLen(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatalf("empty graph has Len %d", g.Len())
	}
	if !g.Add("a", "b", "c") {
		t.Fatal("first Add returned false")
	}
	if g.Add("a", "b", "c") {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Contains("a", "b", "c") {
		t.Fatal("Contains missed inserted triple")
	}
	if g.Contains("a", "b", "d") || g.Contains("x", "b", "c") {
		t.Fatal("Contains reported absent triple")
	}
}

func TestRemove(t *testing.T) {
	g := FromTriples(T("a", "b", "c"), T("a", "b", "d"), T("x", "y", "z"))
	if !g.Remove("a", "b", "c") {
		t.Fatal("Remove of present triple returned false")
	}
	if g.Remove("a", "b", "c") {
		t.Fatal("Remove of absent triple returned true")
	}
	if g.Remove("never", "seen", "term") {
		t.Fatal("Remove with unknown IRIs returned true")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if g.Contains("a", "b", "c") {
		t.Fatal("removed triple still present")
	}
	if !g.Contains("a", "b", "d") || !g.Contains("x", "y", "z") {
		t.Fatal("Remove deleted the wrong triple")
	}
	// Indexes must stay consistent after removal.
	var got []Triple
	s := IRI("a")
	g.Match(&s, nil, nil, func(tr Triple) bool { got = append(got, tr); return true })
	if len(got) != 1 || got[0] != T("a", "b", "d") {
		t.Fatalf("Match after Remove = %v", got)
	}
}

func TestTriplesSorted(t *testing.T) {
	g := FromTriples(T("b", "x", "y"), T("a", "z", "z"), T("a", "x", "y"), T("a", "x", "b"))
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		if !ts[i-1].Less(ts[i]) {
			t.Fatalf("Triples not sorted at %d: %v then %v", i, ts[i-1], ts[i])
		}
	}
}

func TestSubgraphUnionEqual(t *testing.T) {
	g1 := FromTriples(T("a", "b", "c"))
	g2 := FromTriples(T("a", "b", "c"), T("d", "e", "f"))
	if !g1.IsSubgraphOf(g2) {
		t.Fatal("g1 should be a subgraph of g2")
	}
	if g2.IsSubgraphOf(g1) {
		t.Fatal("g2 should not be a subgraph of g1")
	}
	u := g1.Union(FromTriples(T("d", "e", "f")))
	if !u.Equal(g2) {
		t.Fatalf("union mismatch:\n%s\nvs\n%s", u, g2)
	}
	if u.Equal(g1) {
		t.Fatal("Equal on different graphs returned true")
	}
}

func TestIRIs(t *testing.T) {
	g := FromTriples(T("b", "p", "a"), T("a", "q", "b"))
	got := g.IRIs()
	want := []IRI{"a", "b", "p", "q"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IRIs = %v, want %v", got, want)
	}
	if !g.MentionsIRI("p") || g.MentionsIRI("zzz") {
		t.Fatal("MentionsIRI wrong")
	}
}

func collectMatch(g *Graph, s, p, o *IRI, scan bool) []Triple {
	var out []Triple
	f := g.Match
	if scan {
		f = g.MatchScan
	}
	f(s, p, o, func(t Triple) bool { out = append(out, t); return true })
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func TestMatchAllAccessPaths(t *testing.T) {
	g := FromTriples(
		T("a", "p", "x"), T("a", "p", "y"), T("a", "q", "x"),
		T("b", "p", "x"), T("c", "r", "c"),
	)
	iri := func(s string) *IRI { i := IRI(s); return &i }
	cases := []struct {
		name    string
		s, p, o *IRI
		want    int
	}{
		{"spo", iri("a"), iri("p"), iri("x"), 1},
		{"sp-", iri("a"), iri("p"), nil, 2},
		{"s-o", iri("a"), nil, iri("x"), 2},
		{"-po", nil, iri("p"), iri("x"), 2},
		{"s--", iri("a"), nil, nil, 3},
		{"-p-", nil, iri("p"), nil, 3},
		{"--o", nil, nil, iri("x"), 3},
		{"---", nil, nil, nil, 5},
		{"missing subject", iri("zzz"), nil, nil, 0},
		{"missing object", nil, nil, iri("zzz"), 0},
	}
	for _, c := range cases {
		got := collectMatch(g, c.s, c.p, c.o, false)
		if len(got) != c.want {
			t.Errorf("%s: got %d matches (%v), want %d", c.name, len(got), got, c.want)
		}
		scan := collectMatch(g, c.s, c.p, c.o, true)
		if !reflect.DeepEqual(got, scan) {
			t.Errorf("%s: Match and MatchScan disagree: %v vs %v", c.name, got, scan)
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	g := FromTriples(T("a", "p", "x"), T("a", "p", "y"), T("a", "p", "z"))
	n := 0
	g.Match(nil, nil, nil, func(Triple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d triples, want 2", n)
	}
}

// Property: for random graphs and random match masks, indexed Match and
// linear MatchScan return exactly the same triples.
func TestMatchEquivalentToScanQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	iris := []IRI{"a", "b", "c", "p", "q"}
	f := func(seed int64, mask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < rng.Intn(30); i++ {
			g.Add(iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))])
		}
		var s, p, o *IRI
		pick := func() *IRI { i := iris[rng.Intn(len(iris))]; return &i }
		if mask&1 != 0 {
			s = pick()
		}
		if mask&2 != 0 {
			p = pick()
		}
		if mask&4 != 0 {
			o = pick()
		}
		return reflect.DeepEqual(collectMatch(g, s, p, o, false), collectMatch(g, s, p, o, true))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := FromTriples(
		T("The_Pirate_Bay", "stands_for", "sharing_rights"),
		T("Gottfrid_Svartholm", "founder", "The_Pirate_Bay"),
		T("weird iri with spaces", "p", "x>y"),
	)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", g, h)
	}
}

func TestParseGraphStringBareAndComments(t *testing.T) {
	g, err := ParseGraphString(`
# a comment
a b c .
<d> <e> <f>
x y z
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || !g.Contains("a", "b", "c") || !g.Contains("d", "e", "f") || !g.Contains("x", "y", "z") {
		t.Fatalf("parsed graph wrong:\n%s", g)
	}
}

func TestParseGraphErrors(t *testing.T) {
	for _, bad := range []string{"a b", "a b c d .", "<unterminated p o .", "a b#c d ."} {
		if _, err := ParseGraphString(bad); err == nil {
			t.Errorf("ParseGraphString(%q) succeeded, want error", bad)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := T("s", "p", "o")
	if tr.String() != "(s, p, o)" {
		t.Fatalf("String = %q", tr.String())
	}
	if !strings.Contains(tr.NTriples(), "<s> <p> <o> .") {
		t.Fatalf("NTriples = %q", tr.NTriples())
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatal("distinct IRIs interned to same ID")
	}
	if d.Intern("a") != a {
		t.Fatal("re-interning changed ID")
	}
	if d.IRI(a) != "a" || d.IRI(b) != "b" {
		t.Fatal("IRI lookup wrong")
	}
	if _, ok := d.Lookup("c"); ok {
		t.Fatal("Lookup of absent IRI succeeded")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := FromTriples(T("a", "b", "c"))
	h := g.Clone()
	h.Add("d", "e", "f")
	if g.Contains("d", "e", "f") {
		t.Fatal("mutation of clone leaked into original")
	}
	if !h.Contains("a", "b", "c") {
		t.Fatal("clone lost triple")
	}
}

func TestCountMatch(t *testing.T) {
	g := FromTriples(
		T("a", "p", "x"), T("a", "p", "y"), T("a", "q", "x"),
		T("b", "p", "x"),
	)
	iri := func(s string) *IRI { i := IRI(s); return &i }
	cases := []struct {
		s, p, o *IRI
		want    int
	}{
		{iri("a"), iri("p"), iri("x"), 1},
		{iri("a"), iri("p"), iri("zzz"), 0},
		{iri("a"), iri("p"), nil, 2},
		{iri("a"), nil, iri("x"), 2},
		{nil, iri("p"), iri("x"), 2},
		{iri("a"), nil, nil, 3},
		{nil, iri("p"), nil, 3},
		{nil, nil, iri("x"), 3},
		{nil, nil, nil, 4},
		{iri("zzz"), nil, nil, 0},
		{nil, iri("zzz"), nil, 0},
		{nil, nil, iri("zzz"), 0},
	}
	for _, c := range cases {
		if got := g.CountMatch(c.s, c.p, c.o); got != c.want {
			t.Errorf("CountMatch(%v,%v,%v) = %d, want %d", c.s, c.p, c.o, got, c.want)
		}
	}
}

func TestGraphString(t *testing.T) {
	g := FromTriples(T("b", "p", "c"), T("a", "p", "c"))
	s := g.String()
	want := "<a> <p> <c> .\n<b> <p> <c> .\n"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
}

func TestMustParseGraph(t *testing.T) {
	g := MustParseGraph("a b c .")
	if g.Len() != 1 {
		t.Fatal("MustParseGraph wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseGraph did not panic on bad input")
		}
	}()
	MustParseGraph("not a triple line with <")
}

// TestMatchIDsAgreesWithMatchQuick: the ID-native match iterator returns
// exactly the triples of the string-level Match, for every combination
// of bound positions, on random graphs.
func TestMatchIDsAgreesWithMatchQuick(t *testing.T) {
	iris := []IRI{"a", "b", "c", "p", "q"}
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < rng.Intn(30); i++ {
			g.Add(iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))])
		}
		for mask := 0; mask < 8; mask++ {
			var s, p, o *IRI
			var si, pi, oi *ID
			pick := func() (*IRI, *ID) {
				iri := iris[rng.Intn(len(iris))]
				if id, ok := g.Dict().Lookup(iri); ok {
					return &iri, &id
				}
				return &iri, nil
			}
			missing := false
			if mask&1 != 0 {
				if s, si = pick(); si == nil {
					missing = true
				}
			}
			if mask&2 != 0 {
				if p, pi = pick(); pi == nil {
					missing = true
				}
			}
			if mask&4 != 0 {
				if o, oi = pick(); oi == nil {
					missing = true
				}
			}
			var want []Triple
			g.Match(s, p, o, func(tr Triple) bool { want = append(want, tr); return true })
			if missing {
				if len(want) != 0 {
					t.Fatalf("Match with unknown IRI returned triples")
				}
				continue
			}
			var got []Triple
			g.MatchIDs(si, pi, oi, func(tr IDTriple) bool {
				got = append(got, Triple{S: g.Dict().IRI(tr.S), P: g.Dict().IRI(tr.P), O: g.Dict().IRI(tr.O)})
				return true
			})
			sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
			sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
			if !reflect.DeepEqual(want, got) {
				t.Logf("mask=%b want %v got %v", mask, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestContainsIDs(t *testing.T) {
	g := FromTriples(T("a", "b", "c"))
	d := g.Dict()
	a, _ := d.Lookup("a")
	b, _ := d.Lookup("b")
	c, _ := d.Lookup("c")
	if !g.ContainsIDs(a, b, c) {
		t.Fatal("ContainsIDs missed present triple")
	}
	if g.ContainsIDs(a, b, a) || g.ContainsIDs(c, b, a) {
		t.Fatal("ContainsIDs reported absent triple")
	}
}

func TestMatchIDsEarlyStop(t *testing.T) {
	g := FromTriples(T("a", "p", "x"), T("a", "p", "y"), T("a", "p", "z"))
	a, _ := g.Dict().Lookup("a")
	n := 0
	g.MatchIDs(&a, nil, nil, func(IDTriple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d triples", n)
	}
}
