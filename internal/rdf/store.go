package rdf

// Store is the storage interface of the engine: everything above this
// package — the row engine (internal/sparql), the planner
// (internal/plan), the executor (internal/exec), view maintenance
// (internal/views) and the cmd tools — talks to a triple store
// exclusively through it.  *Graph (the in-memory sorted-index engine,
// the "memstore" backend) is the default implementation;
// internal/rdf/durable wraps it with a write-ahead log and snapshots
// for crash recovery.  The interface is deliberately rich rather than
// minimal: a backend delegates the read surface wholesale, and the
// engine never needs to name a concrete backend type.
//
// # Sorted-emission contract
//
// MatchIDs(s, p, o, fn) picks the permutation index whose key order
// leads with the bound positions (SPO for S or S,P or nothing; POS for
// P or P,O; OSP for O or S,O) and emits matches in ascending key order
// of that permutation.  This determinism is load-bearing: the
// merge-join fast path of internal/sparql requires two scans sharing a
// leading sort variable to arrive in that variable's ID order, and
// ForEach/Triples inherit reproducible output from it.  Every backend
// must preserve the contract exactly; the differential tests
// (internal/sparql/rowengine_test.go, internal/rdf/durable) hold all
// backends to the same answer sets and emission orders.
//
// # Snapshot-guard contract
//
// A Store is safe for any number of concurrent readers, but mutation
// (Add, AddTriple, AddAll, Remove, Compact) is not safe concurrently
// with anything, readers included; callers serialize writes against
// reads externally (nsserve uses an RWMutex).  AcquireRead is the
// defense-in-depth guard on that contract: it opens a read snapshot,
// and until the returned release func runs, any mutation panics —
// naming the live holder count — instead of corrupting an index under
// a concurrent probe, and Compact defers (returns false) rather than
// moving the base arrays a reader is scanning.  Parallel evaluation
// paths that fan a store out across worker goroutines hold a snapshot
// for the duration of the fan-out.  Release is idempotent; every
// acquired snapshot must be released before the next mutation.
//
// # Batch staging
//
// BeginBatch/CommitBatch/AbortBatch stage *durability*, not
// visibility: mutations inside a batch are applied to the in-memory
// indexes immediately (the caller's subsequent reads see them — view
// delta evaluation depends on that) but a durable backend withholds
// their log records until CommitBatch, which persists the whole batch
// as one atomic WAL record.  AbortBatch discards the staged records
// without writing anything; the caller is responsible for having
// undone the in-memory mutations first (the atomic unwind in
// internal/views issues compensating Removes inside the same batch, so
// a rolled-back insert leaves no committed WAL records).  Batches do
// not nest; the in-memory backend implements all three as no-ops.
type Store interface {
	// Dict returns the store's interning dictionary.  Callers may read
	// it freely; interning new terms while other goroutines read the
	// store is not safe.
	Dict() *Dict
	// Len reports the number of triples in the store.
	Len() int
	// Epoch returns the mutation epoch: a counter bumped on every
	// successful Add or Remove, used to key caches derived from the
	// store's contents (nsserve's plan cache).
	Epoch() uint64
	// Stats returns a point-in-time snapshot of the index layout.
	Stats() IndexStats

	// Add inserts the triple (s, p, o); it reports whether the triple
	// was new.
	Add(s, p, o IRI) bool
	// AddTriple inserts t; it reports whether the triple was new.
	AddTriple(t Triple) bool
	// AddAll inserts every triple of h.
	AddAll(h Store)
	// Remove deletes the triple (s, p, o); it reports whether it was
	// present.
	Remove(s, p, o IRI) bool

	// BeginBatch opens a durability batch (see the type comment).  It
	// panics if a batch is already open: stores are single-writer.
	BeginBatch()
	// CommitBatch persists the batch's staged mutations atomically and
	// closes the batch.  On error the staged records are discarded and
	// the in-memory state is NOT reverted; callers that need atomicity
	// unwind and re-sync as internal/views does.
	CommitBatch() error
	// AbortBatch discards the staged records and closes the batch,
	// leaving the in-memory state as the caller arranged it.
	AbortBatch()

	// Contains reports whether the triple (s, p, o) is in the store.
	Contains(s, p, o IRI) bool
	// ContainsTriple reports whether t is in the store.
	ContainsTriple(t Triple) bool
	// ContainsIDs is Contains in interned-ID space.
	ContainsIDs(s, p, o ID) bool
	// Match calls fn for every triple matching the given positions
	// (nil = wildcard) until fn returns false.
	Match(s, p, o *IRI, fn func(Triple) bool)
	// MatchIDs is the ID-native Match; see the sorted-emission
	// contract above.
	MatchIDs(s, p, o *ID, fn func(IDTriple) bool)
	// CountMatch returns the number of matching triples without
	// enumerating them.
	CountMatch(s, p, o *IRI) int
	// CountMatchIDs is the ID-native CountMatch: exact counts in
	// O(log n), the planner's cardinality source.
	CountMatchIDs(s, p, o *ID) int
	// ForEach calls fn for every triple until fn returns false, in
	// ascending (S, P, O) ID order.
	ForEach(fn func(Triple) bool)
	// Triples returns all triples sorted lexicographically.
	Triples() []Triple
	// IRIs returns the sorted set of IRIs mentioned in some triple.
	IRIs() []IRI
	// MentionsIRI reports whether iri occurs in some triple.
	MentionsIRI(iri IRI) bool
	// Equal reports whether the store and h hold exactly the same
	// triples.
	Equal(h Store) bool
	// IsSubgraphOf reports whether every triple of the store is in h.
	IsSubgraphOf(h Store) bool
	// String renders the contents as sorted N-Triples statements.
	String() string

	// AcquireRead opens a read snapshot; see the snapshot-guard
	// contract above.  The release func is idempotent.
	AcquireRead() (release func())
	// Compact merges any mutable delta into the sorted base now,
	// reporting whether the merge ran; it defers (returns false) while
	// read snapshots are held.
	Compact() bool
	// SetCompactionThreshold overrides the delta size that triggers
	// automatic compaction (n <= 0 restores the default).
	SetCompactionThreshold(n int)

	// Close releases backend resources (files, for durable backends)
	// after flushing pending state.  The in-memory backend's Close is
	// a no-op.  A closed store must not be used again.
	Close() error
}

// Graph is the memstore backend.
var _ Store = (*Graph)(nil)

// NewStore returns an empty in-memory store — the default memstore
// backend, typed as the interface.
func NewStore() Store { return NewGraph() }

// CloneStore copies the contents of any store into a fresh in-memory
// memstore.  Views use it to snapshot their base graph regardless of
// the backend the caller hands them.
func CloneStore(s Store) Store {
	g := NewGraph()
	s.ForEach(func(t Triple) bool {
		g.AddTriple(t)
		return true
	})
	return g
}
