package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadGraph parses a graph in the line-oriented triple format produced
// by Graph.String.  Each non-empty, non-comment line is
//
//	<s> <p> <o> .
//
// where each term is either an angle-bracketed IRI or a bare word (any
// run of characters without whitespace, '<', '>' or '#').  The trailing
// dot is optional.  Lines starting with '#' are comments.
func ReadGraph(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		g.AddTriple(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseGraphString parses a graph from a string; see ReadGraph.
func ParseGraphString(s string) (*Graph, error) {
	return ReadGraph(strings.NewReader(s))
}

// MustParseGraph is ParseGraphString but panics on error.  Intended for
// tests and examples with literal graph text.
func MustParseGraph(s string) *Graph {
	g, err := ParseGraphString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// ParseTripleLine parses a single triple statement, with optional
// trailing dot.
func ParseTripleLine(line string) (Triple, error) {
	rest := strings.TrimSpace(line)
	rest = strings.TrimSuffix(rest, ".")
	terms := make([]IRI, 0, 3)
	for i := 0; i < 3; i++ {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return Triple{}, fmt.Errorf("expected 3 terms, got %d in %q", len(terms), line)
		}
		var term IRI
		var err error
		term, rest, err = readTerm(rest)
		if err != nil {
			return Triple{}, err
		}
		terms = append(terms, term)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, fmt.Errorf("trailing content %q in %q", rest, line)
	}
	return Triple{S: terms[0], P: terms[1], O: terms[2]}, nil
}

func readTerm(s string) (IRI, string, error) {
	if s[0] == '<' {
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI in %q", s)
		}
		raw := s[1:end]
		raw = strings.NewReplacer("%3E", ">", "%0A", "\n").Replace(raw)
		return IRI(raw), s[end+1:], nil
	}
	end := strings.IndexAny(s, " \t")
	if end < 0 {
		end = len(s)
	}
	word := s[:end]
	if strings.ContainsAny(word, "<>#") {
		return "", "", fmt.Errorf("bare term %q contains reserved character", word)
	}
	return IRI(word), s[end:], nil
}

// WriteGraph writes the store's contents in sorted N-Triples form.
func WriteGraph(w io.Writer, g Store) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.NTriples()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
