// Package rdf implements the RDF data model used throughout the library:
// IRIs, triples, and (indexed) RDF graphs.
//
// Following the paper (Section 2), a triple is an element of I × I × I
// where I is a set of International Resource Identifiers, and an RDF
// graph is a finite set of such triples.  As in the paper, every string
// may be used as an IRI, and constant values and blank nodes are not
// modelled; the results of the paper are unaffected by their absence.
package rdf

import (
	"fmt"
	"strings"
)

// IRI is an International Resource Identifier.  As in the paper, any
// string is admitted as an IRI.
type IRI string

// String returns the IRI as a plain string.
func (i IRI) String() string { return string(i) }

// NTriples returns the IRI in angle-bracket N-Triples form.  IRIs that
// contain characters outside the bare-word alphabet are escaped.
func (i IRI) NTriples() string {
	return "<" + strings.NewReplacer(">", "%3E", "\n", "%0A").Replace(string(i)) + ">"
}

// Triple is an RDF triple (subject, predicate, object).
type Triple struct {
	S, P, O IRI
}

// T is a convenience constructor for a Triple.
func T(s, p, o IRI) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as "(s, p, o)" in the notation of the paper.
func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.S, t.P, t.O)
}

// NTriples renders the triple as an N-Triples statement line.
func (t Triple) NTriples() string {
	return t.S.NTriples() + " " + t.P.NTriples() + " " + t.O.NTriples() + " ."
}

// Less defines a total order on triples (lexicographic on S, P, O),
// used to produce deterministic listings of graphs.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}
