package rdf

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Graph is a finite set of RDF triples stored as three flat sorted
// permutation indexes — []IDTriple arrays in SPO, POS and OSP order —
// plus a small mutable delta overlay (see sorted.go).  Every
// bound/wildcard combination of Match/MatchIDs/CountMatch resolves to a
// binary-search prefix range over one permutation, so matching is a
// cache-friendly array scan and counting is O(log n), with the overlay
// merged in when non-empty.  Mutations go to the overlay in O(1) (plus
// an O(log n) base membership probe) and compact into the base arrays
// when the delta crosses a threshold (see maybeCompact).
//
// # Iteration order
//
// MatchIDs emits triples in ascending key order of the permutation it
// selects for the bound positions (SPO when S or S,P are bound or
// nothing is; POS for P or P,O; OSP for O or S,O).  This determinism is
// a contract: the merge-join fast path of internal/sparql relies on
// scans sharing a leading sort key arriving in that key's order, and
// ForEach/Triples/IRIs inherit reproducible output from it.
//
// # Concurrency
//
// A Graph is safe for any number of concurrent *readers*: every read
// path (Match, MatchIDs, Contains, ContainsIDs, CountMatch, ForEach,
// Len, and Dict.Lookup/Dict.IRI on the graph's dictionary) only reads
// the base arrays, the overlay and the dictionary.  The one internal
// write a read may perform — rebuilding the overlay's sorted views
// after a mutation — is double-checked under the overlay mutex and
// published through an atomic flag, so racing readers stay safe.  The
// parallel query engine relies on this — its workers probe the indexes
// of one graph simultaneously.
//
// Mutation (Add, AddTriple, AddAll, Remove, Compact) is not safe
// concurrently with anything, readers included; callers serialize
// writes against reads externally (nsserve uses an RWMutex).  As a
// defense-in-depth check, a reader may hold a read snapshot
// (AcquireRead) for the duration of a multi-goroutine read; mutating
// the graph while a snapshot is held panics immediately instead of
// corrupting an index under a concurrent probe, and compaction is
// deferred until the snapshots drain.
type Graph struct {
	dict *Dict
	n    int
	base [3][]IDTriple // sorted permutation arrays, indexed by perm
	ov   overlay

	compactAt   int          // overlay size that triggers compaction; 0 = automatic
	compactions atomic.Int64 // total compaction passes (stats)
	epoch       atomic.Uint64
	readers     atomic.Int32 // active read snapshots (AcquireRead)
}

// IDTriple is a triple in interned-ID space.  It is the currency of the
// ID-native evaluation path: matching and joining operate on machine
// words, and IRIs are materialized only at query boundaries.
type IDTriple struct {
	S, P, O ID
}

// Dict returns the graph's interning dictionary.  Callers may read it
// freely (Lookup, IRI); interning new terms while other goroutines read
// the graph is not safe.
func (g *Graph) Dict() *Dict { return g.dict }

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph {
	return &Graph{dict: NewDict(), ov: newOverlay()}
}

// FromTriples builds a graph from the given triples.
func FromTriples(ts ...Triple) *Graph {
	g := NewGraph()
	for _, t := range ts {
		g.AddTriple(t)
	}
	return g
}

// AcquireRead opens a read snapshot: until the returned release func
// runs, any mutation of the graph panics and Compact defers.  It is a
// guard, not a lock — readers are not serialized against each other
// (they never need to be), and the cost is one atomic increment per
// snapshot, not per read.  The parallel evaluation paths that fan a
// graph out across worker goroutines (views delta maintenance) hold a
// snapshot for the duration of the fan-out so that a misplaced write
// fails loudly at the write site instead of as index corruption in a
// reader.
func (g *Graph) AcquireRead() (release func()) {
	g.readers.Add(1)
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			g.readers.Add(-1)
		}
	}
}

// assertWritable panics when a mutation races an active read snapshot.
// The message names the live holder count so the offending fan-out is
// identifiable from the stack alone; the fix is always the same — run
// the release func each AcquireRead returned (the snapshot's Release)
// before mutating.
func (g *Graph) assertWritable() {
	if n := g.readers.Load(); n != 0 {
		panic(fmt.Sprintf(
			"rdf: graph mutated while %d read snapshot(s) are held; "+
				"call the release func returned by each AcquireRead (Release) before mutating "+
				"(see the Store snapshot-guard contract)", n))
	}
}

// BeginBatch, CommitBatch and AbortBatch are the durability-staging
// hooks of the Store interface.  The memstore has no log to stage, so
// all three are no-ops: mutations are immediately "durable" in the
// only sense an in-memory backend has.
func (g *Graph) BeginBatch() {}

// CommitBatch is a no-op for the memstore; see BeginBatch.
func (g *Graph) CommitBatch() error { return nil }

// AbortBatch is a no-op for the memstore; see BeginBatch.
func (g *Graph) AbortBatch() {}

// Close is a no-op for the memstore: there are no backend resources to
// release.
func (g *Graph) Close() error { return nil }

// Epoch returns the graph's mutation epoch: a counter bumped on every
// successful Add or Remove.  Callers that cache anything derived from
// graph statistics (nsserve's plan cache) key it by the epoch so a
// mutation invalidates the cache.  Reading the epoch is atomic, but a
// consistent (epoch, contents) pair still needs the caller's external
// read lock.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// inBase reports whether t is in the sorted base arrays (ignoring the
// overlay).
func (g *Graph) inBase(t IDTriple) bool {
	return findTriple(g.base[permSPO], permSPO, t)
}

// Add inserts the triple (s, p, o); it reports whether the triple was new.
func (g *Graph) Add(s, p, o IRI) bool {
	g.assertWritable()
	t := IDTriple{S: g.dict.Intern(s), P: g.dict.Intern(p), O: g.dict.Intern(o)}
	if _, pending := g.ov.dels[t]; pending {
		// Re-adding a base triple with a pending delete: cancel the delete.
		delete(g.ov.dels, t)
	} else if _, dup := g.ov.adds[t]; dup {
		return false
	} else if g.inBase(t) {
		return false
	} else {
		g.ov.adds[t] = struct{}{}
	}
	g.ov.markDirty()
	g.n++
	g.epoch.Add(1)
	g.maybeCompact()
	return true
}

// AddTriple inserts t; it reports whether the triple was new.
func (g *Graph) AddTriple(t Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddAll inserts every triple of h into g.
func (g *Graph) AddAll(h Store) {
	h.ForEach(func(t Triple) bool {
		g.AddTriple(t)
		return true
	})
}

// Remove deletes the triple (s, p, o); it reports whether it was present.
func (g *Graph) Remove(s, p, o IRI) bool {
	g.assertWritable()
	si, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pi, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oi, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	t := IDTriple{S: si, P: pi, O: oi}
	if _, ok := g.ov.adds[t]; ok {
		delete(g.ov.adds, t)
	} else if _, gone := g.ov.dels[t]; !gone && g.inBase(t) {
		g.ov.dels[t] = struct{}{}
	} else {
		return false
	}
	g.ov.markDirty()
	g.n--
	g.epoch.Add(1)
	g.maybeCompact()
	return true
}

// defaultCompactMin is the floor of the automatic compaction
// threshold: below it, merging the overlay into the base on every
// mutation would dominate mutation cost.
const defaultCompactMin = 1024

// compactThreshold is the overlay size at which mutations trigger a
// compaction: max(defaultCompactMin, n/8) unless SetCompactionThreshold
// overrode it.  The n/8 term grows the delta budget with the graph, so
// a bulk load compacts O(log n) times and amortizes to O(n) merged
// triples per base size doubling.
func (g *Graph) compactThreshold() int {
	if g.compactAt > 0 {
		return g.compactAt
	}
	t := len(g.base[permSPO]) / 8
	if t < defaultCompactMin {
		t = defaultCompactMin
	}
	return t
}

// SetCompactionThreshold overrides the overlay size that triggers
// compaction (n <= 0 restores the automatic threshold).  It is a
// tuning/test knob, not a mutation: the graph's contents are
// unaffected.  The new threshold takes effect on the next mutation.
func (g *Graph) SetCompactionThreshold(n int) {
	if n <= 0 {
		n = 0
	}
	g.compactAt = n
}

// maybeCompact runs a compaction when the overlay crossed the
// threshold.  Called only from mutation paths, which assertWritable
// already proved reader-free.
func (g *Graph) maybeCompact() {
	if g.ov.size() >= g.compactThreshold() {
		g.compact()
	}
}

// Compact merges the overlay into the sorted base arrays now,
// reporting whether the merge ran.  While an AcquireRead snapshot is
// held the compaction is deferred (returns false) — the next mutation
// or Compact call after the snapshots drain picks it up — so the
// parallel engine's readers never observe the base arrays moving.
func (g *Graph) Compact() bool {
	if g.readers.Load() != 0 {
		return false
	}
	if !g.ov.isEmpty() {
		g.compact()
	}
	return true
}

// compact merges adds and dels into the base arrays and resets the
// overlay.  Callers guarantee no concurrent readers.
func (g *Graph) compact() {
	addV, delV := g.ov.views()
	for k := permSPO; k <= permOSP; k++ {
		g.base[k] = mergeCompact(k, g.base[k], addV[k], delV[k])
	}
	g.ov.reset()
	g.compactions.Add(1)
}

// IndexStats is a point-in-time snapshot of the storage layer: the
// logical triple count, how it splits across the sorted base and the
// delta overlay, and how often the overlay has been compacted.  Reading
// it follows the same rules as any other graph read.
type IndexStats struct {
	Triples     int    // logical |G|
	BaseTriples int    // triples in the sorted base arrays
	OverlayAdds int    // pending inserts not yet compacted
	OverlayDels int    // pending deletes not yet compacted
	Compactions int64  // total compaction passes
	Epoch       uint64 // mutation epoch (see Epoch)
}

// Stats returns the storage layer snapshot.
func (g *Graph) Stats() IndexStats {
	return IndexStats{
		Triples:     g.n,
		BaseTriples: len(g.base[permSPO]),
		OverlayAdds: len(g.ov.adds),
		OverlayDels: len(g.ov.dels),
		Compactions: g.compactions.Load(),
		Epoch:       g.epoch.Load(),
	}
}

// Contains reports whether the triple (s, p, o) is in the graph.
func (g *Graph) Contains(s, p, o IRI) bool {
	si, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pi, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oi, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	return g.ContainsIDs(si, pi, oi)
}

// ContainsTriple reports whether t is in the graph.
func (g *Graph) ContainsTriple(t Triple) bool { return g.Contains(t.S, t.P, t.O) }

// ContainsIDs reports whether the triple (s, p, o), given in
// interned-ID space, is in the graph: an O(1) overlay probe plus an
// O(log n) binary search of the base.
func (g *Graph) ContainsIDs(s, p, o ID) bool {
	t := IDTriple{S: s, P: p, O: o}
	if _, ok := g.ov.adds[t]; ok {
		return true
	}
	if _, ok := g.ov.dels[t]; ok {
		return false
	}
	return g.inBase(t)
}

// Len reports the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// ForEach calls fn for every triple in the graph until fn returns
// false, in ascending (S, P, O) ID order.
func (g *Graph) ForEach(fn func(Triple) bool) {
	g.MatchIDs(nil, nil, nil, func(t IDTriple) bool {
		return fn(Triple{S: g.dict.IRI(t.S), P: g.dict.IRI(t.P), O: g.dict.IRI(t.O)})
	})
}

// Triples returns all triples, sorted lexicographically, for
// deterministic output.  The slice is preallocated to the exact size;
// the sort is still needed because dictionary ID order is interning
// order, not IRI order.
func (g *Graph) Triples() []Triple {
	ts := make([]Triple, 0, g.n)
	g.ForEach(func(t Triple) bool { ts = append(ts, t); return true })
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	return ts
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := NewGraph()
	h.AddAll(g)
	return h
}

// Union returns a new graph containing the triples of both g and h.
func (g *Graph) Union(h Store) *Graph {
	u := g.Clone()
	u.AddAll(h)
	return u
}

// IsSubgraphOf reports whether every triple of g is in h (g ⊆ h).
func (g *Graph) IsSubgraphOf(h Store) bool {
	ok := true
	g.ForEach(func(t Triple) bool {
		if !h.ContainsTriple(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equal reports whether g and h contain exactly the same triples.
func (g *Graph) Equal(h Store) bool {
	return g.n == h.Len() && g.IsSubgraphOf(h)
}

// IRIs returns the sorted set of IRIs mentioned in the graph, I(G).
// Mentioned IDs are collected in a bitset over the dictionary (the
// dictionary may hold IRIs whose triples were removed, so it cannot be
// returned wholesale), and the output is preallocated to the exact
// size before the final lexicographic sort.
func (g *Graph) IRIs() []IRI {
	words := make([]uint64, (g.dict.Len()+63)/64)
	mark := func(id ID) { words[id/64] |= 1 << (id % 64) }
	g.MatchIDs(nil, nil, nil, func(t IDTriple) bool {
		mark(t.S)
		mark(t.P)
		mark(t.O)
		return true
	})
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	out := make([]IRI, 0, n)
	for wi, w := range words {
		for ; w != 0; w &= w - 1 {
			out = append(out, g.dict.IRI(ID(wi*64+bits.TrailingZeros64(w))))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MentionsIRI reports whether iri occurs in some triple of the graph:
// three O(log n) prefix counts, one per position.
func (g *Graph) MentionsIRI(iri IRI) bool {
	id, ok := g.dict.Lookup(iri)
	if !ok {
		return false
	}
	return g.CountMatchIDs(&id, nil, nil) > 0 ||
		g.CountMatchIDs(nil, &id, nil) > 0 ||
		g.CountMatchIDs(nil, nil, &id) > 0
}

// Match calls fn for every triple matching the given positions, where a
// nil position is a wildcard, until fn returns false.  The best index
// for the bound positions is chosen automatically; see MatchIDs for the
// emission-order contract.
func (g *Graph) Match(s, p, o *IRI, fn func(Triple) bool) {
	var si, pi, oi *ID
	var ok bool
	if s != nil {
		var id ID
		if id, ok = g.dict.Lookup(*s); !ok {
			return
		}
		si = &id
	}
	if p != nil {
		var id ID
		if id, ok = g.dict.Lookup(*p); !ok {
			return
		}
		pi = &id
	}
	if o != nil {
		var id ID
		if id, ok = g.dict.Lookup(*o); !ok {
			return
		}
		oi = &id
	}
	g.MatchIDs(si, pi, oi, func(t IDTriple) bool {
		return fn(Triple{S: g.dict.IRI(t.S), P: g.dict.IRI(t.P), O: g.dict.IRI(t.O)})
	})
}

// chooseIndex maps the bound positions onto a permutation and a prefix:
// the permutation whose key order leads with the bound positions, so
// the matches form one contiguous range.  The fully-bound case is
// handled by ContainsIDs before this table applies.
func chooseIndex(s, p, o *ID) (k perm, depth int, a, b ID) {
	switch {
	case s != nil && p != nil:
		return permSPO, 2, *s, *p
	case p != nil && o != nil:
		return permPOS, 2, *p, *o
	case s != nil && o != nil:
		return permOSP, 2, *o, *s
	case s != nil:
		return permSPO, 1, *s, 0
	case p != nil:
		return permPOS, 1, *p, 0
	case o != nil:
		return permOSP, 1, *o, 0
	default:
		return permSPO, 0, 0, 0
	}
}

// MatchIDs is the ID-native counterpart of Match: positions are interned
// IDs (nil = wildcard) and fn receives ID triples, with no string
// conversion on the hot path.  The best permutation for the bound
// positions is chosen automatically and triples are emitted in
// ascending key order of that permutation (see the Graph doc comment) —
// a contract the merge-join fast path depends on.
func (g *Graph) MatchIDs(s, p, o *ID, fn func(IDTriple) bool) {
	if s != nil && p != nil && o != nil {
		if g.ContainsIDs(*s, *p, *o) {
			fn(IDTriple{S: *s, P: *p, O: *o})
		}
		return
	}
	k, depth, a, b := chooseIndex(s, p, o)
	base := g.base[k]
	lo, hi := rangeOf(base, k, depth, a, b)
	if g.ov.isEmpty() {
		for i := lo; i < hi; i++ {
			if !fn(base[i]) {
				return
			}
		}
		return
	}
	addV, delV := g.ov.views()
	alo, ahi := rangeOf(addV[k], k, depth, a, b)
	dlo, dhi := rangeOf(delV[k], k, depth, a, b)
	mergeEmit(k, base[lo:hi], addV[k][alo:ahi], delV[k][dlo:dhi], fn)
}

// CountMatch returns the number of triples matching the given
// positions (nil = wildcard) without enumerating them — O(log n)
// binary-search prefix counts over the base and overlay views; used for
// exact cardinality estimation by the query planner.
func (g *Graph) CountMatch(s, p, o *IRI) int {
	var si, pi, oi *ID
	var ok bool
	if s != nil {
		var id ID
		if id, ok = g.dict.Lookup(*s); !ok {
			return 0
		}
		si = &id
	}
	if p != nil {
		var id ID
		if id, ok = g.dict.Lookup(*p); !ok {
			return 0
		}
		pi = &id
	}
	if o != nil {
		var id ID
		if id, ok = g.dict.Lookup(*o); !ok {
			return 0
		}
		oi = &id
	}
	return g.CountMatchIDs(si, pi, oi)
}

// CountMatchIDs is the ID-native counterpart of CountMatch: exact match
// counts in O(log n), with the overlay's adds and dels adjusting the
// base range width.
func (g *Graph) CountMatchIDs(s, p, o *ID) int {
	if s != nil && p != nil && o != nil {
		if g.ContainsIDs(*s, *p, *o) {
			return 1
		}
		return 0
	}
	k, depth, a, b := chooseIndex(s, p, o)
	lo, hi := rangeOf(g.base[k], k, depth, a, b)
	n := hi - lo
	if !g.ov.isEmpty() {
		addV, delV := g.ov.views()
		alo, ahi := rangeOf(addV[k], k, depth, a, b)
		dlo, dhi := rangeOf(delV[k], k, depth, a, b)
		n += (ahi - alo) - (dhi - dlo)
	}
	return n
}

// MatchScan is the unindexed counterpart of Match: it scans every triple
// of the graph and filters.  It exists for the index-ablation benchmark
// (E25) and as the oracle of the index property tests.
func (g *Graph) MatchScan(s, p, o *IRI, fn func(Triple) bool) {
	g.ForEach(func(t Triple) bool {
		if s != nil && t.S != *s {
			return true
		}
		if p != nil && t.P != *p {
			return true
		}
		if o != nil && t.O != *o {
			return true
		}
		return fn(t)
	})
}

// String renders the graph as sorted N-Triples statements.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.NTriples())
		b.WriteByte('\n')
	}
	return b.String()
}
