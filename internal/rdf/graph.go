package rdf

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Graph is a finite set of RDF triples with hash indexes on all three
// access paths (SPO, POS, OSP), supporting constant-time membership and
// efficient matching with any combination of bound positions.
//
// # Concurrency
//
// A Graph is safe for any number of concurrent *readers*: every read
// path (Match, MatchIDs, Contains, ContainsIDs, CountMatch, ForEach,
// Len, and Dict.Lookup/Dict.IRI on the graph's dictionary) only loads
// from the index maps and the dictionary, never stores.  The parallel
// query engine relies on this — its workers probe the indexes of one
// graph simultaneously.
//
// Mutation (Add, AddTriple, AddAll, Remove) is not safe concurrently
// with anything, readers included; callers serialize writes against
// reads externally (nsserve uses an RWMutex).  As a defense-in-depth
// check, a reader may hold a read snapshot (AcquireRead) for the
// duration of a multi-goroutine read; mutating the graph while a
// snapshot is held panics immediately instead of corrupting an index
// under a concurrent probe.
type Graph struct {
	dict    *Dict
	n       int
	spo     index
	pos     index
	osp     index
	readers atomic.Int32 // active read snapshots (AcquireRead)
}

// index is a three-level hash index over interned IDs.
type index map[ID]map[ID]map[ID]struct{}

func (ix index) add(a, b, c ID) bool {
	m2, ok := ix[a]
	if !ok {
		m2 = make(map[ID]map[ID]struct{})
		ix[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[ID]struct{})
		m2[b] = m3
	}
	if _, ok := m3[c]; ok {
		return false
	}
	m3[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c ID) bool {
	m2, ok := ix[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, ok := m3[c]; !ok {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// IDTriple is a triple in interned-ID space.  It is the currency of the
// ID-native evaluation path: matching and joining operate on machine
// words, and IRIs are materialized only at query boundaries.
type IDTriple struct {
	S, P, O ID
}

// Dict returns the graph's interning dictionary.  Callers may read it
// freely (Lookup, IRI); interning new terms while other goroutines read
// the graph is not safe.
func (g *Graph) Dict() *Dict { return g.dict }

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph {
	return &Graph{
		dict: NewDict(),
		spo:  make(index),
		pos:  make(index),
		osp:  make(index),
	}
}

// FromTriples builds a graph from the given triples.
func FromTriples(ts ...Triple) *Graph {
	g := NewGraph()
	for _, t := range ts {
		g.AddTriple(t)
	}
	return g
}

// AcquireRead opens a read snapshot: until the returned release func
// runs, any mutation of the graph panics.  It is a guard, not a lock —
// readers are not serialized against each other (they never need to
// be), and the cost is one atomic increment per snapshot, not per
// read.  The parallel evaluation paths that fan a graph out across
// worker goroutines (views delta maintenance) hold a snapshot for the
// duration of the fan-out so that a misplaced write fails loudly at
// the write site instead of as index corruption in a reader.
func (g *Graph) AcquireRead() (release func()) {
	g.readers.Add(1)
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			g.readers.Add(-1)
		}
	}
}

// assertWritable panics when a mutation races an active read snapshot.
func (g *Graph) assertWritable() {
	if g.readers.Load() != 0 {
		panic("rdf: graph mutated while a read snapshot is held (concurrent readers active)")
	}
}

// Add inserts the triple (s, p, o); it reports whether the triple was new.
func (g *Graph) Add(s, p, o IRI) bool {
	g.assertWritable()
	si, pi, oi := g.dict.Intern(s), g.dict.Intern(p), g.dict.Intern(o)
	if !g.spo.add(si, pi, oi) {
		return false
	}
	g.pos.add(pi, oi, si)
	g.osp.add(oi, si, pi)
	g.n++
	return true
}

// AddTriple inserts t; it reports whether the triple was new.
func (g *Graph) AddTriple(t Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddAll inserts every triple of h into g.
func (g *Graph) AddAll(h *Graph) {
	h.ForEach(func(t Triple) bool {
		g.AddTriple(t)
		return true
	})
}

// Remove deletes the triple (s, p, o); it reports whether it was present.
func (g *Graph) Remove(s, p, o IRI) bool {
	g.assertWritable()
	si, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pi, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oi, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	if !g.spo.remove(si, pi, oi) {
		return false
	}
	g.pos.remove(pi, oi, si)
	g.osp.remove(oi, si, pi)
	g.n--
	return true
}

// Contains reports whether the triple (s, p, o) is in the graph.
func (g *Graph) Contains(s, p, o IRI) bool {
	si, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pi, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oi, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	m2, ok := g.spo[si]
	if !ok {
		return false
	}
	m3, ok := m2[pi]
	if !ok {
		return false
	}
	_, ok = m3[oi]
	return ok
}

// ContainsTriple reports whether t is in the graph.
func (g *Graph) ContainsTriple(t Triple) bool { return g.Contains(t.S, t.P, t.O) }

// Len reports the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// ForEach calls fn for every triple in the graph (in unspecified order)
// until fn returns false.
func (g *Graph) ForEach(fn func(Triple) bool) {
	for si, m2 := range g.spo {
		s := g.dict.IRI(si)
		for pi, m3 := range m2 {
			p := g.dict.IRI(pi)
			for oi := range m3 {
				if !fn(Triple{S: s, P: p, O: g.dict.IRI(oi)}) {
					return
				}
			}
		}
	}
}

// Triples returns all triples, sorted, for deterministic output.
func (g *Graph) Triples() []Triple {
	ts := make([]Triple, 0, g.n)
	g.ForEach(func(t Triple) bool { ts = append(ts, t); return true })
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	return ts
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := NewGraph()
	h.AddAll(g)
	return h
}

// Union returns a new graph containing the triples of both g and h.
func (g *Graph) Union(h *Graph) *Graph {
	u := g.Clone()
	u.AddAll(h)
	return u
}

// IsSubgraphOf reports whether every triple of g is in h (g ⊆ h).
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	ok := true
	g.ForEach(func(t Triple) bool {
		if !h.ContainsTriple(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equal reports whether g and h contain exactly the same triples.
func (g *Graph) Equal(h *Graph) bool {
	return g.n == h.n && g.IsSubgraphOf(h)
}

// IRIs returns the sorted set of IRIs mentioned in the graph, I(G).
func (g *Graph) IRIs() []IRI {
	seen := make(map[IRI]struct{})
	g.ForEach(func(t Triple) bool {
		seen[t.S] = struct{}{}
		seen[t.P] = struct{}{}
		seen[t.O] = struct{}{}
		return true
	})
	out := make([]IRI, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MentionsIRI reports whether iri occurs in some triple of the graph.
func (g *Graph) MentionsIRI(iri IRI) bool {
	id, ok := g.dict.Lookup(iri)
	if !ok {
		return false
	}
	if _, ok := g.spo[id]; ok {
		return true
	}
	if _, ok := g.pos[id]; ok {
		return true
	}
	_, ok = g.osp[id]
	return ok
}

// Match calls fn for every triple matching the given positions, where a
// nil position is a wildcard, until fn returns false.  The best index
// for the bound positions is chosen automatically.
func (g *Graph) Match(s, p, o *IRI, fn func(Triple) bool) {
	var si, pi, oi *ID
	var ok bool
	if s != nil {
		var id ID
		if id, ok = g.dict.Lookup(*s); !ok {
			return
		}
		si = &id
	}
	if p != nil {
		var id ID
		if id, ok = g.dict.Lookup(*p); !ok {
			return
		}
		pi = &id
	}
	if o != nil {
		var id ID
		if id, ok = g.dict.Lookup(*o); !ok {
			return
		}
		oi = &id
	}
	g.MatchIDs(si, pi, oi, func(t IDTriple) bool {
		return fn(Triple{S: g.dict.IRI(t.S), P: g.dict.IRI(t.P), O: g.dict.IRI(t.O)})
	})
}

// ContainsIDs reports whether the triple (s, p, o), given in interned-ID
// space, is in the graph.
func (g *Graph) ContainsIDs(s, p, o ID) bool {
	m2, ok := g.spo[s]
	if !ok {
		return false
	}
	m3, ok := m2[p]
	if !ok {
		return false
	}
	_, ok = m3[o]
	return ok
}

// MatchIDs is the ID-native counterpart of Match: positions are interned
// IDs (nil = wildcard) and fn receives ID triples, with no string
// conversion on the hot path.  The best index (SPO/POS/OSP) for the
// bound positions is chosen automatically.
func (g *Graph) MatchIDs(s, p, o *ID, fn func(IDTriple) bool) {
	switch {
	case s != nil && p != nil && o != nil:
		if g.ContainsIDs(*s, *p, *o) {
			fn(IDTriple{S: *s, P: *p, O: *o})
		}
	case s != nil && p != nil:
		for c := range g.spo[*s][*p] {
			if !fn(IDTriple{S: *s, P: *p, O: c}) {
				return
			}
		}
	case s != nil && o != nil:
		for b := range g.osp[*o][*s] {
			if !fn(IDTriple{S: *s, P: b, O: *o}) {
				return
			}
		}
	case p != nil && o != nil:
		for a := range g.pos[*p][*o] {
			if !fn(IDTriple{S: a, P: *p, O: *o}) {
				return
			}
		}
	case s != nil:
		for b, m3 := range g.spo[*s] {
			for c := range m3 {
				if !fn(IDTriple{S: *s, P: b, O: c}) {
					return
				}
			}
		}
	case p != nil:
		for c, m3 := range g.pos[*p] {
			for a := range m3 {
				if !fn(IDTriple{S: a, P: *p, O: c}) {
					return
				}
			}
		}
	case o != nil:
		for a, m3 := range g.osp[*o] {
			for b := range m3 {
				if !fn(IDTriple{S: a, P: b, O: *o}) {
					return
				}
			}
		}
	default:
		for a, m2 := range g.spo {
			for b, m3 := range m2 {
				for c := range m3 {
					if !fn(IDTriple{S: a, P: b, O: c}) {
						return
					}
				}
			}
		}
	}
}

// CountMatch returns the number of triples matching the given
// positions (nil = wildcard) without enumerating them where the
// indexes allow; used for cardinality estimation by the query planner.
func (g *Graph) CountMatch(s, p, o *IRI) int {
	var si, pi, oi ID
	var ok bool
	if s != nil {
		if si, ok = g.dict.Lookup(*s); !ok {
			return 0
		}
	}
	if p != nil {
		if pi, ok = g.dict.Lookup(*p); !ok {
			return 0
		}
	}
	if o != nil {
		if oi, ok = g.dict.Lookup(*o); !ok {
			return 0
		}
	}
	switch {
	case s != nil && p != nil && o != nil:
		if g.Contains(*s, *p, *o) {
			return 1
		}
		return 0
	case s != nil && p != nil:
		return len(g.spo[si][pi])
	case s != nil && o != nil:
		return len(g.osp[oi][si])
	case p != nil && o != nil:
		return len(g.pos[pi][oi])
	case s != nil:
		n := 0
		for _, m3 := range g.spo[si] {
			n += len(m3)
		}
		return n
	case p != nil:
		n := 0
		for _, m3 := range g.pos[pi] {
			n += len(m3)
		}
		return n
	case o != nil:
		n := 0
		for _, m3 := range g.osp[oi] {
			n += len(m3)
		}
		return n
	default:
		return g.n
	}
}

// MatchScan is the unindexed counterpart of Match: it scans every triple
// of the graph and filters.  It exists for the index-ablation benchmark.
func (g *Graph) MatchScan(s, p, o *IRI, fn func(Triple) bool) {
	g.ForEach(func(t Triple) bool {
		if s != nil && t.S != *s {
			return true
		}
		if p != nil && t.P != *p {
			return true
		}
		if o != nil && t.O != *o {
			return true
		}
		return fn(t)
	})
}

// String renders the graph as sorted N-Triples statements.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.NTriples())
		b.WriteByte('\n')
	}
	return b.String()
}
