package rdf

import "fmt"

// NewGraphFromSnapshot adopts a dictionary table and an SPO-sorted,
// duplicate-free triple array as a graph's base — the bulk-load path
// of the durable backend's snapshot loader.  iris is the dictionary in
// ID order (index i becomes ID i); spo becomes the SPO base array
// directly, and the POS/OSP permutations are rebuilt by sorting
// copies.  The inputs are validated rather than trusted: a snapshot
// file that decodes but violates the index invariants (duplicate
// dictionary entries, IDs out of range, unsorted or duplicate triples)
// must fail recovery loudly, not corrupt binary search.
func NewGraphFromSnapshot(iris []IRI, spo []IDTriple) (*Graph, error) {
	g := NewGraph()
	for i, iri := range iris {
		if id := g.dict.Intern(iri); id != ID(i) {
			return nil, fmt.Errorf("rdf: snapshot dictionary has duplicate entry %q (index %d collides with ID %d)", iri, i, id)
		}
	}
	n := ID(len(iris))
	for i, t := range spo {
		if t.S >= n || t.P >= n || t.O >= n {
			return nil, fmt.Errorf("rdf: snapshot triple %d (%d %d %d) references IDs beyond the dictionary (size %d)", i, t.S, t.P, t.O, n)
		}
		if i > 0 && !permSPO.less(spo[i-1], t) {
			return nil, fmt.Errorf("rdf: snapshot triples not strictly SPO-sorted at index %d", i)
		}
	}
	g.base[permSPO] = spo
	for _, k := range []perm{permPOS, permOSP} {
		arr := make([]IDTriple, len(spo))
		copy(arr, spo)
		k.sortTriples(arr)
		g.base[k] = arr
	}
	g.n = len(spo)
	return g, nil
}
