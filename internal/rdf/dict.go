package rdf

// ID is an interned identifier for an IRI within a Dict.  IDs are dense
// and start at 0, so they can index slices directly.
type ID uint32

// Dict interns IRIs to dense integer IDs.  Graphs share terms through a
// Dict so that triple storage and matching operate on machine words
// instead of strings.
//
// A Dict is not safe for concurrent mutation; concurrent readers are
// fine once no more terms are being added.
type Dict struct {
	byIRI map[IRI]ID
	byID  []IRI
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byIRI: make(map[IRI]ID)}
}

// Intern returns the ID for iri, assigning a fresh one if needed.
func (d *Dict) Intern(iri IRI) ID {
	if id, ok := d.byIRI[iri]; ok {
		return id
	}
	id := ID(len(d.byID))
	d.byIRI[iri] = id
	d.byID = append(d.byID, iri)
	return id
}

// Lookup returns the ID for iri and whether it is present.
func (d *Dict) Lookup(iri IRI) (ID, bool) {
	id, ok := d.byIRI[iri]
	return id, ok
}

// IRI returns the IRI for a previously interned ID.  It panics if id
// was never assigned by this dictionary.
func (d *Dict) IRI(id ID) IRI {
	return d.byID[id]
}

// Len reports the number of interned IRIs.
func (d *Dict) Len() int { return len(d.byID) }
