package rdf

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic with a read snapshot held", what)
		}
	}()
	fn()
}

// TestAcquireReadGuardsMutation checks the read-snapshot guard used by
// the parallel evaluators: while any snapshot is held, Add and Remove
// must panic instead of silently racing a concurrent reader; once the
// last snapshot is released, mutation works again, and releasing twice
// is a harmless no-op.
func TestAcquireReadGuardsMutation(t *testing.T) {
	g := NewGraph()
	g.Add("a", "p", "b")

	release := g.AcquireRead()
	mustPanic(t, "Add", func() { g.Add("c", "p", "d") })
	mustPanic(t, "Remove", func() { g.Remove("a", "p", "b") })
	if g.Len() != 1 || !g.Contains("a", "p", "b") {
		t.Fatal("guarded mutation went through anyway")
	}
	release()
	release() // double release must not underflow the reader count

	g.Add("c", "p", "d")
	if g.Len() != 2 {
		t.Fatal("mutation after release failed")
	}

	// Nested snapshots: the graph stays read-only until the last one
	// is gone.
	r1 := g.AcquireRead()
	r2 := g.AcquireRead()
	r1()
	mustPanic(t, "Add under the second snapshot", func() { g.Add("e", "p", "f") })
	r2()
	g.Add("e", "p", "f")
	if !g.Remove("e", "p", "f") {
		t.Fatal("Remove after release failed")
	}
}
