package rdf

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the storage layer's index machinery: three flat
// []IDTriple arrays sorted in the SPO/POS/OSP permutation orders, with
// binary-search prefix ranges for every bound/wildcard combination, and
// a small mutable delta overlay (insert/remove sets) so single-triple
// mutation stays O(delta) instead of O(n) array surgery.  Graph (in
// graph.go) owns one base array per permutation plus one overlay and
// compacts the overlay into the base when it crosses a threshold.  See
// DESIGN.md §10 for the layout and the snapshot-guard contract.

// perm identifies one of the three permutation indexes.  The constant
// order matters: perm doubles as the index into Graph.base and
// overlay.addV/delV.
type perm int

const (
	permSPO perm = iota // key order (S, P, O)
	permPOS             // key order (P, O, S)
	permOSP             // key order (O, S, P)
)

// key returns t's components in the permutation's comparison order,
// the leading pair packed into one uint64 (IDs are 32-bit) so range
// searches compare machine words instead of tuples.
func (k perm) key(t IDTriple) (ab uint64, c ID) {
	switch k {
	case permSPO:
		return uint64(t.S)<<32 | uint64(t.P), t.O
	case permPOS:
		return uint64(t.P)<<32 | uint64(t.O), t.S
	default:
		return uint64(t.O)<<32 | uint64(t.S), t.P
	}
}

// less is the strict total order of the permutation.
func (k perm) less(x, y IDTriple) bool {
	xab, xc := k.key(x)
	yab, yc := k.key(y)
	return xab < yab || (xab == yab && xc < yc)
}

// sortTriples sorts ts in k's order in place.
func (k perm) sortTriples(ts []IDTriple) {
	sort.Slice(ts, func(i, j int) bool { return k.less(ts[i], ts[j]) })
}

// rangeOf returns the half-open [lo, hi) range of arr (sorted in k's
// order) whose first depth key components equal the given prefix:
// depth 0 is the whole array, depth 1 fixes the leading component a,
// depth 2 fixes the leading pair (a, b).  Two binary searches, O(log n).
func rangeOf(arr []IDTriple, k perm, depth int, a, b ID) (int, int) {
	switch depth {
	case 0:
		return 0, len(arr)
	case 1:
		want := uint64(a)
		lo := sort.Search(len(arr), func(i int) bool {
			ab, _ := k.key(arr[i])
			return ab>>32 >= want
		})
		hi := lo + sort.Search(len(arr)-lo, func(i int) bool {
			ab, _ := k.key(arr[lo+i])
			return ab>>32 > want
		})
		return lo, hi
	default:
		want := uint64(a)<<32 | uint64(b)
		lo := sort.Search(len(arr), func(i int) bool {
			ab, _ := k.key(arr[i])
			return ab >= want
		})
		hi := lo + sort.Search(len(arr)-lo, func(i int) bool {
			ab, _ := k.key(arr[lo+i])
			return ab > want
		})
		return lo, hi
	}
}

// findTriple reports whether t occurs in arr (sorted in k's order).
func findTriple(arr []IDTriple, k perm, t IDTriple) bool {
	wab, wc := k.key(t)
	i := sort.Search(len(arr), func(i int) bool {
		ab, c := k.key(arr[i])
		return ab > wab || (ab == wab && c >= wc)
	})
	return i < len(arr) && arr[i] == t
}

// mergeEmit streams the union of base and add minus del in k's order,
// calling fn until it returns false; it reports whether the walk ran to
// completion.  The caller guarantees the overlay invariants (add is
// disjoint from base, del ⊆ base), so a base element never ties with an
// add element and every del element is hit while walking base.
func mergeEmit(k perm, base, add, del []IDTriple, fn func(IDTriple) bool) bool {
	bi, ai, di := 0, 0, 0
	for bi < len(base) || ai < len(add) {
		var t IDTriple
		if ai >= len(add) || (bi < len(base) && k.less(base[bi], add[ai])) {
			t = base[bi]
			bi++
			for di < len(del) && k.less(del[di], t) {
				di++
			}
			if di < len(del) && del[di] == t {
				di++
				continue
			}
		} else {
			t = add[ai]
			ai++
		}
		if !fn(t) {
			return false
		}
	}
	return true
}

// mergeCompact materializes mergeEmit into a fresh exact-size array —
// one compaction pass for one permutation.
func mergeCompact(k perm, base, add, del []IDTriple) []IDTriple {
	out := make([]IDTriple, 0, len(base)+len(add)-len(del))
	mergeEmit(k, base, add, del, func(t IDTriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// overlay is the graph's mutable delta on top of the sorted base
// arrays.  adds holds triples not in the base, dels holds base triples
// pending removal; Add/Remove maintain adds ∩ base = ∅ and dels ⊆
// base, so |G| = len(base) + len(adds) - len(dels) and a triple is
// present iff it is in adds, or in the base and not in dels.
//
// The maps are the source of truth and give O(1) mutation.  The read
// paths need the delta *sorted* per permutation to merge against the
// base ranges, so addV/delV are rebuilt lazily: mutations flip the
// dirty flag (they run with no concurrent readers, per the Graph
// contract), and the first subsequent reader rebuilds the views under
// mu with double-checked locking.  Concurrent readers may race into
// ensure together — the loser waits on mu, re-checks dirty, and leaves
// — and the atomic dirty flag publishes the rebuilt slices to the
// fast-path readers that never touch the mutex.
type overlay struct {
	adds map[IDTriple]struct{}
	dels map[IDTriple]struct{}

	dirty atomic.Bool
	mu    sync.Mutex
	addV  [3][]IDTriple
	delV  [3][]IDTriple
}

func newOverlay() overlay {
	return overlay{
		adds: make(map[IDTriple]struct{}),
		dels: make(map[IDTriple]struct{}),
	}
}

// size is the overlay's total delta cardinality (the compaction
// trigger input).
func (ov *overlay) size() int { return len(ov.adds) + len(ov.dels) }

// isEmpty reports whether the overlay holds no delta, letting scans
// skip the merge and walk the base array directly.
func (ov *overlay) isEmpty() bool { return len(ov.adds) == 0 && len(ov.dels) == 0 }

// markDirty records that the maps changed and the sorted views are
// stale.  Only mutation paths call it, so no reader is concurrent.
func (ov *overlay) markDirty() { ov.dirty.Store(true) }

// views returns the sorted per-permutation views of the overlay,
// rebuilding them first when stale.
func (ov *overlay) views() (addV, delV *[3][]IDTriple) {
	if ov.dirty.Load() {
		ov.mu.Lock()
		if ov.dirty.Load() {
			for k := permSPO; k <= permOSP; k++ {
				ov.addV[k] = rebuildView(ov.addV[k][:0], ov.adds, k)
				ov.delV[k] = rebuildView(ov.delV[k][:0], ov.dels, k)
			}
			ov.dirty.Store(false)
		}
		ov.mu.Unlock()
	}
	return &ov.addV, &ov.delV
}

// reset empties the overlay after a compaction, keeping the map and
// slice capacity for the next delta cycle.
func (ov *overlay) reset() {
	clear(ov.adds)
	clear(ov.dels)
	for k := permSPO; k <= permOSP; k++ {
		ov.addV[k] = ov.addV[k][:0]
		ov.delV[k] = ov.delV[k][:0]
	}
	ov.dirty.Store(false)
}

// rebuildView refills dst with the set's triples sorted in k's order.
func rebuildView(dst []IDTriple, set map[IDTriple]struct{}, k perm) []IDTriple {
	for t := range set {
		dst = append(dst, t)
	}
	k.sortTriples(dst)
	return dst
}
