package rdf

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// modelGraph is the oracle for the property tests: a plain map of
// triples with none of the index machinery.
type modelGraph map[Triple]struct{}

func (m modelGraph) add(t Triple) bool {
	if _, ok := m[t]; ok {
		return false
	}
	m[t] = struct{}{}
	return true
}

func (m modelGraph) remove(t Triple) bool {
	if _, ok := m[t]; !ok {
		return false
	}
	delete(m, t)
	return true
}

func (m modelGraph) match(s, p, o *IRI) []Triple {
	var out []Triple
	for t := range m {
		if s != nil && t.S != *s {
			continue
		}
		if p != nil && t.P != *p {
			continue
		}
		if o != nil && t.O != *o {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// randomTriple draws from a small universe so Add/Remove collide often
// and the overlay exercises its resurrect/cancel paths.
func randomTriple(rng *rand.Rand) Triple {
	return T(
		IRI(fmt.Sprintf("s%d", rng.Intn(8))),
		IRI(fmt.Sprintf("p%d", rng.Intn(4))),
		IRI(fmt.Sprintf("o%d", rng.Intn(8))),
	)
}

// checkAgainstModel compares every access path of g against the model:
// Len, Contains, Match for all 8 bound/wildcard masks over the
// universe, CountMatch, and sorted-order emission.
func checkAgainstModel(t *testing.T, g *Graph, m modelGraph) {
	t.Helper()
	if g.Len() != len(m) {
		t.Fatalf("Len = %d, model has %d", g.Len(), len(m))
	}
	st := g.Stats()
	if st.Triples != len(m) || st.BaseTriples+st.OverlayAdds-st.OverlayDels != len(m) {
		t.Fatalf("Stats inconsistent: %+v vs model size %d", st, len(m))
	}
	for si := -1; si < 8; si++ {
		for pi := -1; pi < 4; pi++ {
			for oi := -1; oi < 8; oi++ {
				var s, p, o *IRI
				if si >= 0 {
					v := IRI(fmt.Sprintf("s%d", si))
					s = &v
				}
				if pi >= 0 {
					v := IRI(fmt.Sprintf("p%d", pi))
					p = &v
				}
				if oi >= 0 {
					v := IRI(fmt.Sprintf("o%d", oi))
					o = &v
				}
				want := m.match(s, p, o)
				var got []Triple
				g.Match(s, p, o, func(tr Triple) bool {
					got = append(got, tr)
					return true
				})
				// Match emits in permutation-key (ID) order, not IRI
				// order; compare as sorted sets.
				sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
				if len(got) != len(want) {
					t.Fatalf("Match(%v,%v,%v): %d triples, model says %d", s, p, o, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("Match(%v,%v,%v): got[%d]=%v, want %v", s, p, o, i, got[i], want[i])
					}
				}
				if n := g.CountMatch(s, p, o); n != len(want) {
					t.Fatalf("CountMatch(%v,%v,%v) = %d, model says %d", s, p, o, n, len(want))
				}
				// MatchScan must agree with the indexed path.
				var scan []Triple
				g.MatchScan(s, p, o, func(tr Triple) bool {
					scan = append(scan, tr)
					return true
				})
				if len(scan) != len(want) {
					t.Fatalf("MatchScan(%v,%v,%v): %d triples, model says %d", s, p, o, len(scan), len(want))
				}
			}
		}
	}
}

// TestIndexMatchesModelThroughMutations drives random interleaved
// Add/Remove sequences (with a tiny compaction threshold so the
// base/overlay merge runs constantly) and checks every access path
// against a model graph at each step boundary.
func TestIndexMatchesModelThroughMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		g.SetCompactionThreshold(1 + rng.Intn(6))
		m := modelGraph{}
		steps := 60 + rng.Intn(60)
		for i := 0; i < steps; i++ {
			tr := randomTriple(rng)
			if rng.Intn(3) == 0 {
				if g.Remove(tr.S, tr.P, tr.O) != m.remove(tr) {
					t.Fatalf("trial %d step %d: Remove(%v) disagrees with model", trial, i, tr)
				}
			} else {
				if g.AddTriple(tr) != m.add(tr) {
					t.Fatalf("trial %d step %d: Add(%v) disagrees with model", trial, i, tr)
				}
			}
		}
		checkAgainstModel(t, g, m)
		// Force the remaining overlay through compaction and re-check.
		if !g.Compact() {
			t.Fatalf("trial %d: Compact refused with no readers", trial)
		}
		if st := g.Stats(); st.OverlayAdds != 0 || st.OverlayDels != 0 {
			t.Fatalf("trial %d: overlay non-empty after Compact: %+v", trial, st)
		}
		checkAgainstModel(t, g, m)
	}
}

// TestMatchIDsSortedEmission pins the emission-order contract the
// merge-join fast path relies on: MatchIDs yields triples in ascending
// key order of the chosen permutation, overlay or not.
func TestMatchIDsSortedEmission(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	g := NewGraph()
	g.SetCompactionThreshold(7) // keep a live overlay most of the time
	for i := 0; i < 150; i++ {
		tr := randomTriple(rng)
		if rng.Intn(4) == 0 {
			g.Remove(tr.S, tr.P, tr.O)
		} else {
			g.AddTriple(tr)
		}
	}
	st := g.Stats()
	if st.OverlayAdds == 0 && st.OverlayDels == 0 {
		t.Fatal("test needs a live overlay to be meaningful")
	}
	check := func(k perm, s, p, o *ID) {
		var prev IDTriple
		first := true
		g.MatchIDs(s, p, o, func(tr IDTriple) bool {
			if !first && !k.less(prev, tr) {
				t.Fatalf("MatchIDs emitted %v after %v (perm %d, not ascending)", tr, prev, k)
			}
			prev, first = tr, false
			return true
		})
	}
	sid, _ := g.dict.Lookup("s1")
	pid, _ := g.dict.Lookup("p1")
	oid, _ := g.dict.Lookup("o1")
	check(permSPO, nil, nil, nil)
	check(permSPO, &sid, nil, nil)
	check(permSPO, &sid, &pid, nil)
	check(permPOS, nil, &pid, nil)
	check(permPOS, nil, &pid, &oid)
	check(permOSP, nil, nil, &oid)
	check(permOSP, &sid, nil, &oid)
}

// TestCompactDeferredUnderSnapshot: Compact refuses (and mutation
// panics) while an AcquireRead snapshot is held, and compaction resumes
// after release.
func TestCompactDeferredUnderSnapshot(t *testing.T) {
	g := NewGraph()
	g.SetCompactionThreshold(1 << 30) // never auto-compact
	for i := 0; i < 10; i++ {
		g.Add(IRI(fmt.Sprintf("s%d", i)), "p", "o")
	}
	if g.Stats().OverlayAdds != 10 {
		t.Fatalf("overlay adds = %d, want 10", g.Stats().OverlayAdds)
	}
	release := g.AcquireRead()
	if g.Compact() {
		t.Fatal("Compact ran under an active read snapshot")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Add under an active read snapshot did not panic")
			}
		}()
		g.Add("x", "y", "z")
	}()
	release()
	release() // idempotent
	if !g.Compact() {
		t.Fatal("Compact refused after snapshot release")
	}
	st := g.Stats()
	if st.OverlayAdds != 0 || st.BaseTriples != 10 || st.Compactions != 1 {
		t.Fatalf("after compact: %+v", st)
	}
}

// TestConcurrentReadersAfterMutation exercises the lazy overlay-view
// rebuild: many goroutines read a freshly-mutated graph concurrently
// (the first readers race to rebuild the sorted views).  Run with
// -race; the double-checked dirty flag must make this safe.
func TestConcurrentReadersAfterMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9003))
	for round := 0; round < 10; round++ {
		g := NewGraph()
		g.SetCompactionThreshold(1 << 30)
		for i := 0; i < 100; i++ {
			tr := randomTriple(rng)
			if rng.Intn(4) == 0 {
				g.Remove(tr.S, tr.P, tr.O)
			} else {
				g.AddTriple(tr)
			}
		}
		release := g.AcquireRead()
		want := g.Len()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				n := 0
				g.MatchIDs(nil, nil, nil, func(IDTriple) bool { n++; return true })
				if n != want {
					t.Errorf("reader %d saw %d triples, want %d", w, n, want)
				}
				v := IRI(fmt.Sprintf("s%d", w))
				g.CountMatch(&v, nil, nil)
			}(w)
		}
		wg.Wait()
		release()
	}
}

// TestEpochBumpsOnMutation: every successful Add/Remove bumps the
// epoch; failed ones (duplicates, absent triples) and compaction do
// not.
func TestEpochBumpsOnMutation(t *testing.T) {
	g := NewGraph()
	e0 := g.Epoch()
	g.Add("a", "p", "b")
	if g.Epoch() != e0+1 {
		t.Fatalf("epoch after add = %d, want %d", g.Epoch(), e0+1)
	}
	g.Add("a", "p", "b") // duplicate
	if g.Epoch() != e0+1 {
		t.Fatalf("epoch bumped on duplicate add")
	}
	g.Remove("x", "y", "z") // absent
	if g.Epoch() != e0+1 {
		t.Fatalf("epoch bumped on no-op remove")
	}
	g.Remove("a", "p", "b")
	if g.Epoch() != e0+2 {
		t.Fatalf("epoch after remove = %d, want %d", g.Epoch(), e0+2)
	}
	g.Add("a", "p", "b")
	e := g.Epoch()
	g.Compact()
	if g.Epoch() != e {
		t.Fatalf("epoch bumped on compaction (contents unchanged)")
	}
}
