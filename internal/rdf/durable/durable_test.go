package durable

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// testOptions keeps unit tests deterministic: sync on close only (no
// timing-dependent batch syncs) and no automatic snapshots unless the
// test opts in.
func testOptions() Options {
	return Options{Fsync: FsyncOff, SnapshotEvery: -1}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableEmptyBootstrap opens a fresh directory and checks the
// store starts empty at generation 1.
func TestDurableEmptyBootstrap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if s.Len() != 0 {
		t.Fatalf("fresh store has %d triples", s.Len())
	}
	if st := s.DurableStats(); st.Generation != 1 || st.RecoveredWALRecords != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableReopen round-trips mutations through a clean close.
func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	s.Add("ana", "works_at", "puc")
	s.Add("puc", "located_in", "chile")
	s.Add("bob", "born", "peru")
	s.Remove("bob", "born", "peru")
	want := rdf.CloneStore(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, testOptions())
	defer r.Close()
	if !r.Equal(want) {
		t.Fatalf("reopened store:\n%swant:\n%s", r, want)
	}
	if st := r.DurableStats(); st.RecoveredWALRecords != 4 || st.RecoveredTruncatedBytes != 0 {
		t.Fatalf("recovery stats = %+v, want 4 records, 0 truncated", st)
	}
}

// TestDurableSnapshotRoll drives enough mutations through a small
// SnapshotEvery to roll generations several times, then reopens and
// checks contents and the on-disk file set.
func TestDurableSnapshotRoll(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Fsync: FsyncOff, SnapshotEvery: 8}
	s := mustOpen(t, dir, opts)
	model := rdf.NewGraph()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tr := randTriple(rng)
		if rng.Intn(4) == 0 {
			s.Remove(tr.S, tr.P, tr.O)
			model.Remove(tr.S, tr.P, tr.O)
		} else {
			s.AddTriple(tr)
			model.AddTriple(tr)
		}
	}
	st := s.DurableStats()
	if st.Snapshots == 0 || st.Generation < 2 {
		t.Fatalf("expected generation rolls, stats = %+v", st)
	}
	if st.LastSnapshotUnix == 0 {
		t.Fatal("LastSnapshotUnix not set after a snapshot")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the current generation's files may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if g, ok := parseGenName(e.Name(), "snap"); ok && g != st.Generation {
			t.Fatalf("stale snapshot %s after roll to generation %d", e.Name(), st.Generation)
		}
		if g, ok := parseGenName(e.Name(), "wal"); ok && g != st.Generation {
			t.Fatalf("stale WAL %s after roll to generation %d", e.Name(), st.Generation)
		}
	}

	r := mustOpen(t, dir, opts)
	defer r.Close()
	if !r.Equal(model) {
		t.Fatalf("reopened store diverges from model\ngot:\n%swant:\n%s", r, model)
	}
	if rs := r.DurableStats(); rs.RecoveredSnapshotTriples == 0 {
		t.Fatalf("recovery should have loaded a snapshot, stats = %+v", rs)
	}
}

// crashUniverse is the small IRI universe of the property test —
// small so removes hit existing triples and duplicates occur.
var crashSubjects = []rdf.IRI{"a", "b", "c", "d"}
var crashPreds = []rdf.IRI{"p", "q", "r"}
var crashObjects = []rdf.IRI{"x", "y", "z", "w", "v"}

func randTriple(rng *rand.Rand) rdf.Triple {
	return rdf.T(
		crashSubjects[rng.Intn(len(crashSubjects))],
		crashPreds[rng.Intn(len(crashPreds))],
		crashObjects[rng.Intn(len(crashObjects))],
	)
}

// crashOp is one mutation with the durability coordinates recorded
// right after it ran: the generation whose WAL holds its record and
// the WAL end offset once its record was written.  Ops folded into a
// snapshot (gen < final) survive regardless of offset.
type crashOp struct {
	tr     rdf.Triple
	remove bool
	gen    uint64
	walEnd int64
}

// TestCrashRecoveryProperty is the crash-recovery property test: run
// a random interleaving of adds, removes, batches and compactions
// against a durable store (rolling generations via snapshots), then
// simulate kill -9 by truncating the final WAL at EVERY byte offset
// C — mid-record (torn write), at a record boundary, and at the full
// size (post-fsync) — reopen, and check the recovered store equals
// the model built from exactly the ops whose records fit in C.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 8; round++ {
		dir := t.TempDir()
		// Snapshots roll mid-history in most rounds; round 0 stays on
		// generation 1 to cover the no-snapshot recovery path.
		opts := testOptions()
		if round > 0 {
			opts.SnapshotEvery = 10 + rng.Intn(30)
		}
		s := mustOpen(t, dir, opts)
		s.SetCompactionThreshold(4) // force frequent index compactions
		var ops []crashOp

		record := func(tr rdf.Triple, remove, changed bool) {
			if !changed {
				return // no record written; a no-op in every replay
			}
			ops = append(ops, crashOp{tr: tr, remove: remove, gen: s.gen.Load(), walEnd: s.wal.off})
		}
		for i := 0; i < 120+rng.Intn(80); i++ {
			switch k := rng.Intn(10); {
			case k == 0:
				s.Compact() // physical only: no WAL record, no model effect
			case k == 1:
				// A committed batch: all its ops share one record and
				// therefore one walEnd — they survive or vanish together.
				s.BeginBatch()
				var batch []crashOp
				for j := 0; j < 1+rng.Intn(4); j++ {
					tr := randTriple(rng)
					remove := rng.Intn(3) == 0
					var changed bool
					if remove {
						changed = s.Remove(tr.S, tr.P, tr.O)
					} else {
						changed = s.AddTriple(tr)
					}
					if changed {
						batch = append(batch, crashOp{tr: tr, remove: remove})
					}
				}
				if err := s.CommitBatch(); err != nil {
					t.Fatal(err)
				}
				for _, op := range batch {
					op.gen, op.walEnd = s.gen.Load(), s.wal.off
					ops = append(ops, op)
				}
			case k < 4:
				tr := randTriple(rng)
				record(tr, true, s.Remove(tr.S, tr.P, tr.O))
			default:
				tr := randTriple(rng)
				record(tr, false, s.AddTriple(tr))
			}
		}
		finalGen := s.gen.Load()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		walPath := filepath.Join(dir, walName(finalGen))
		full, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Cut points: every record boundary (clean crash between
		// writes), one byte either side of each (torn header / torn
		// tail), the empty file, and the full size (post-fsync crash
		// loses nothing).
		cutSet := map[int64]bool{0: true, int64(len(full)): true}
		for _, op := range ops {
			if op.gen != finalGen {
				continue
			}
			for _, c := range []int64{op.walEnd - 1, op.walEnd, op.walEnd + 1} {
				if c >= 0 && c <= int64(len(full)) {
					cutSet[c] = true
				}
			}
		}
		for i := 0; i < 20; i++ { // plus arbitrary mid-record offsets
			cutSet[rng.Int63n(int64(len(full))+1)] = true
		}
		for cut := range cutSet {
			if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			model := rdf.NewGraph()
			for _, op := range ops {
				if op.gen == finalGen && op.walEnd > cut {
					break // everything after the cut is a dropped suffix
				}
				if op.remove {
					model.Remove(op.tr.S, op.tr.P, op.tr.O)
				} else {
					model.AddTriple(op.tr)
				}
			}
			r := mustOpen(t, dir, opts)
			if !r.Equal(model) {
				t.Fatalf("round %d cut@%d/%d (gen %d): recovered %d triples, model %d\nrecovered:\n%swant:\n%s",
					round, cut, len(full), finalGen, r.Len(), model.Len(), r, model)
			}
			if st := r.DurableStats(); st.RecoveredTruncatedBytes < 0 {
				t.Fatalf("negative truncated bytes: %+v", st)
			}
			r.Close()
			// Recovery truncated the torn tail in place; restore the
			// full WAL for the next cut.
			if err := os.WriteFile(walPath, full, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestInjectedWALCrash cuts a WAL write mid-record via the
// fault-injection hook and checks the store reports the error sticky
// on Close, and recovery drops exactly the torn op.
func TestInjectedWALCrash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	s.Add("ana", "works_at", "puc")
	s.wal.failAfter = 5 // next record tears after 5 bytes
	if !s.Add("bob", "born", "peru") {
		t.Fatal("in-memory add must succeed even when the log write fails")
	}
	if st := s.DurableStats(); st.WALErrors != 1 {
		t.Fatalf("WALErrors = %d, want 1", st.WALErrors)
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "injected WAL crash") {
		t.Fatalf("Close() = %v, want sticky injected crash error", err)
	}

	r := mustOpen(t, dir, testOptions())
	defer r.Close()
	want := rdf.FromTriples(rdf.T("ana", "works_at", "puc"))
	if !r.Equal(want) {
		t.Fatalf("recovered:\n%swant only the pre-crash triple", r)
	}
	if st := r.DurableStats(); st.RecoveredTruncatedBytes != 5 {
		t.Fatalf("RecoveredTruncatedBytes = %d, want 5", st.RecoveredTruncatedBytes)
	}
}

// TestInjectedSnapshotCrash fails a snapshot mid-dump and checks the
// store stays on the old generation with nothing lost and no .tmp
// litter, and that a reopen recovers the full pre-crash state.
func TestInjectedSnapshotCrash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for _, tr := range []rdf.Triple{
		rdf.T("ana", "works_at", "puc"),
		rdf.T("puc", "located_in", "chile"),
		rdf.T("bob", "born", "peru"),
	} {
		s.AddTriple(tr)
	}
	want := rdf.CloneStore(s)

	s.failSnapAfter = 16
	if err := s.Snapshot(); !errors.Is(err, errInjectedSnapCrash) {
		t.Fatalf("Snapshot() = %v, want injected crash", err)
	}
	if st := s.DurableStats(); st.Generation != 1 || st.Snapshots != 0 {
		t.Fatalf("failed snapshot moved the generation: %+v", st)
	}
	// The writer cleans its own tmp on failure; simulate the harsher
	// crash (tmp left behind) too and let recovery sweep it.
	stray := filepath.Join(dir, snapName(2)+".tmp")
	if err := os.WriteFile(stray, []byte("partial snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, testOptions())
	defer r.Close()
	if !r.Equal(want) {
		t.Fatalf("recovered:\n%swant:\n%s", r, want)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray snapshot tmp not swept at recovery (stat err: %v)", err)
	}
	// A retried snapshot must now succeed and roll the generation.
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := r.DurableStats(); st.Generation != 2 {
		t.Fatalf("generation after retried snapshot = %d, want 2", st.Generation)
	}
}

// TestCorruptSnapshotRefusesOpen flips a byte in a snapshot and
// checks Open fails loudly instead of replaying the WAL over the
// wrong base.
func TestCorruptSnapshotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	s.Add("ana", "works_at", "puc")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Add("bob", "born", "peru")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open over corrupt snapshot = %v, want corruption error", err)
	}
}

// TestAbortBatchWritesNothing checks an aborted batch leaves no WAL
// records: after reopen, none of its mutations exist.
func TestAbortBatchWritesNothing(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	s.Add("keep", "p", "x")
	s.BeginBatch()
	s.Add("drop", "p", "y")
	s.Remove("keep", "p", "x")
	// The caller unwinds memory before aborting, per the contract.
	s.Add("keep", "p", "x")
	s.Remove("drop", "p", "y")
	s.AbortBatch()
	if st := s.DurableStats(); st.WALRecords != 1 {
		t.Fatalf("WALRecords = %d after abort, want 1 (the pre-batch add)", st.WALRecords)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, testOptions())
	defer r.Close()
	want := rdf.FromTriples(rdf.T("keep", "p", "x"))
	if !r.Equal(want) {
		t.Fatalf("recovered:\n%swant:\n%s", r, want)
	}
}

// TestFsyncAlwaysCountsSyncs checks the always policy syncs once per
// record and feeds the latency histogram.
func TestFsyncAlwaysCountsSyncs(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	defer s.Close()
	s.Add("a", "p", "x")
	s.Add("a", "p", "y")
	st := s.DurableStats()
	if st.WALSyncs != 2 {
		t.Fatalf("WALSyncs = %d under always, want 2", st.WALSyncs)
	}
	if st.FsyncLatency.Count != 2 {
		t.Fatalf("fsync histogram count = %d, want 2", st.FsyncLatency.Count)
	}
}

// TestDurableStatsRace hammers DurableStats from readers while the
// main goroutine mutates and snapshots — the one concurrent access
// the backend promises.  Run under -race at GOMAXPROCS 1 and 4.
func TestDurableStatsRace(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: 25})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := s.DurableStats()
					if st.Generation == 0 {
						t.Error("generation 0 observed")
						return
					}
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		tr := randTriple(rng)
		if rng.Intn(4) == 0 {
			s.Remove(tr.S, tr.P, tr.O)
		} else {
			s.AddTriple(tr)
		}
	}
	close(done)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParseFsyncPolicy covers the flag-value parser.
func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"batch", FsyncBatch}, {"off", FsyncOff}, {"Batch", FsyncBatch}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != strings.ToLower(tc.in) {
			t.Fatalf("String() = %q, want %q", got.String(), strings.ToLower(tc.in))
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}
