// Package durable is the persistent backend of the rdf.Store
// interface: an in-memory sorted-index graph (rdf.Graph, the
// memstore) fronted by an append-only write-ahead log and periodic
// snapshots, so a crash — kill -9 at any instruction — loses at most
// the unsynced WAL tail and recovery rebuilds exactly the state whose
// records reached disk.
//
// # File layout
//
// A data directory holds at most two generations of two files:
//
//	snap-<gen>   full dump of the store when generation <gen> began
//	wal-<gen>    every mutation since, one record per Add/Remove/batch
//
// Generation 1 has no snapshot (the base state is empty).  A
// snapshot bumps the generation: the full store is written to
// snap-<gen+1> (tmp + fsync + rename + dir fsync), a fresh
// wal-<gen+1> is created, and the old generation's files are
// deleted.  A crash anywhere in that sequence is safe: until the
// rename commits, recovery uses the old generation; after it, the
// new one — whichever valid snapshot has the highest generation wins,
// and leftovers of the loser are swept.
//
// # Recovery
//
// Open deletes stray .tmp files, loads the highest-generation valid
// snapshot (if any), replays that generation's WAL — truncating at
// the first torn or CRC-invalid record — and continues appending at
// the truncation point.  The result is exactly the snapshot state
// plus every durable WAL record, which under FsyncAlways is every
// committed mutation and under FsyncBatch everything up to the last
// sync window.
//
// # Concurrency
//
// The same single-writer rules as the memstore apply (see the
// rdf.Store snapshot-guard contract); DurableStats alone may be
// called concurrently with mutations — every counter it reads is
// atomic.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// FsyncPolicy says when WAL appends are forced to disk.
type FsyncPolicy int

const (
	// FsyncBatch syncs after BatchSyncRecords unsynced records or
	// BatchSyncInterval since the last sync, whichever comes first —
	// bounded loss, amortized sync cost.  The default.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways syncs after every record: no committed mutation is
	// ever lost, at one fsync per mutation (or per batch).
	FsyncAlways
	// FsyncOff never syncs; the OS flushes when it pleases.  A crash
	// can lose any unflushed suffix of the WAL — still a valid
	// prefix, never a corrupt state.
	FsyncOff
)

// ParseFsyncPolicy parses "always", "batch" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configures Open.  The zero value is usable: batch fsync,
// automatic snapshots every defaultSnapshotEvery mutations.
type Options struct {
	// Fsync is the WAL sync policy.
	Fsync FsyncPolicy
	// SnapshotEvery triggers a snapshot after that many mutations
	// since the last one; 0 means the default, negative disables
	// automatic snapshots entirely (Snapshot still works).
	SnapshotEvery int
	// BatchSyncRecords / BatchSyncInterval tune FsyncBatch; zero
	// values take the defaults (64 records / 100ms).
	BatchSyncRecords  int
	BatchSyncInterval time.Duration
}

const (
	defaultSnapshotEvery     = 10_000
	defaultBatchSyncRecords  = 64
	defaultBatchSyncInterval = 100 * time.Millisecond
)

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = defaultSnapshotEvery
	}
	if o.BatchSyncRecords <= 0 {
		o.BatchSyncRecords = defaultBatchSyncRecords
	}
	if o.BatchSyncInterval <= 0 {
		o.BatchSyncInterval = defaultBatchSyncInterval
	}
	return o
}

// Store is the durable backend: every read delegates to the embedded
// memstore, every mutation additionally appends a WAL record (or
// stages one, inside a batch).  It implements rdf.Store.
type Store struct {
	dir  string
	opts Options
	mem  *rdf.Graph

	// walMu serializes every touch of the WAL writer — appends, the
	// snapshot generation roll, and Close.  Mutations are single-writer
	// by the Store contract, but shutdown is not on that path: a signal
	// handler's Close may race an in-flight CommitBatch's fsync loop,
	// and a double Close must be an idempotent no-op rather than a
	// second close of the same file descriptor.
	walMu  sync.Mutex
	wal    *walWriter
	closed bool

	gen           atomic.Uint64
	mutsSinceSnap int

	batchOpen bool
	staged    []walOp

	// sticky I/O error: after a failed WAL append or snapshot the
	// in-memory state keeps working but Close reports the first
	// failure, and walErrors counts them for /metrics.
	err error

	walRecords       int64 // atomics, shared with the walWriter
	walBytes         int64
	walSyncs         int64
	walErrors        int64
	snapshots        int64
	lastSnapshotUnix int64
	recoveredTriples int64
	recoveredRecords int64
	truncatedBytes   int64
	fsyncHist        obs.Histogram

	// failSnapAfter is the snapshot crash-injection hook (see
	// writeSnapshot); -1 disables it.
	failSnapAfter int64
}

var _ rdf.Store = (*Store)(nil)

func addInt64(p *int64, d int64) { atomic.AddInt64(p, d) }

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%08d", gen) }

// parseGenName extracts the generation from a "snap-NNN" / "wal-NNN"
// file name.
func parseGenName(name, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix+"-")
	if !ok {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest, 10, 64)
	return gen, err == nil && gen > 0
}

// Open opens (or creates) the store in dir, running crash recovery:
// sweep temp files, load the newest valid snapshot, replay and
// truncate its WAL, resume appending.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	var snapGens, walGens []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if gen, ok := parseGenName(name, "snap"); ok {
			snapGens = append(snapGens, gen)
		} else if gen, ok := parseGenName(name, "wal"); ok {
			walGens = append(walGens, gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })

	s := &Store{dir: dir, opts: opts, failSnapAfter: -1}

	// Pick the base state: the highest-generation snapshot that
	// validates.  A snapshot that fails its CRC is media corruption —
	// the tmp+rename protocol never leaves a torn one — and silently
	// replaying its WAL over the wrong base would fabricate state, so
	// corruption refuses to open rather than guess.
	if len(snapGens) > 0 {
		g, err := loadSnapshot(dir, snapGens[0])
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot %s is corrupt: %w", snapName(snapGens[0]), err)
		}
		s.mem = g
		s.gen.Store(snapGens[0])
	} else {
		// No snapshot: the base state is empty, which is only correct
		// for generation 1 (later generations always have one; a lone
		// higher WAL means its snapshot vanished — refuse rather than
		// silently drop everything it assumed).
		s.mem = rdf.NewGraph()
		gen := uint64(1)
		if len(walGens) > 0 {
			sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
			gen = walGens[0]
			if gen > 1 {
				return nil, fmt.Errorf("durable: %s has no snapshot for its base state in %s", walName(gen), dir)
			}
		}
		s.gen.Store(gen)
	}
	s.recoveredTriples = int64(s.mem.Len())

	// Replay this generation's WAL over the base state, truncating
	// the torn tail, then reopen it for append at the valid end.
	walPath := filepath.Join(dir, walName(s.gen.Load()))
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: read WAL: %w", err)
	}
	records, validBytes := parseWAL(data, func(op walOp) {
		if op.remove {
			s.mem.Remove(op.s, op.p, op.o)
		} else {
			s.mem.Add(op.s, op.p, op.o)
		}
	})
	s.recoveredRecords = int64(records)
	s.truncatedBytes = int64(len(data)) - validBytes
	s.mutsSinceSnap = records
	if s.truncatedBytes > 0 {
		if err := os.Truncate(walPath, validBytes); err != nil {
			return nil, fmt.Errorf("durable: truncate torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open WAL: %w", err)
	}
	if _, err := f.Seek(validBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seek WAL: %w", err)
	}
	syncDir(dir)
	s.walRecords = int64(records)
	s.walBytes = validBytes
	s.wal = newWALWriter(f, validBytes, opts, &s.walRecords, &s.walBytes, &s.walSyncs, &s.fsyncHist)

	// Sweep files of other generations (crash leftovers between a
	// snapshot's rename and its cleanup).
	cur := s.gen.Load()
	for _, gen := range snapGens {
		if gen != cur {
			os.Remove(filepath.Join(dir, snapName(gen)))
		}
	}
	for _, gen := range walGens {
		if gen != cur {
			os.Remove(filepath.Join(dir, walName(gen)))
		}
	}
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// logOp records one mutation: staged if a batch is open, else
// appended as its own WAL record (followed by a snapshot check).
func (s *Store) logOp(op walOp) {
	if s.batchOpen {
		s.staged = append(s.staged, op)
		return
	}
	s.appendRecord([]walOp{op})
	s.maybeSnapshot()
}

// appendRecord writes one WAL record under walMu, returning the
// append error after folding it into the sticky error (the
// interface's mutation methods cannot return one; callers needing a
// hard guarantee check CommitBatch or Close).  Appending to a closed
// store is an error, not a crash: a drain that loses the race with
// shutdown surfaces as a failed commit.
func (s *Store) appendRecord(ops []walOp) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	var err error
	if s.closed || s.wal == nil {
		err = fmt.Errorf("durable: WAL append after Close")
	} else {
		err = s.wal.append(ops)
	}
	if err != nil {
		addInt64(&s.walErrors, 1)
		if s.err == nil {
			s.err = err
		}
	}
	return err
}

// maybeSnapshot rolls the generation when enough mutations have
// accumulated.  Never fires inside a batch: a batch is one atomic
// record and the snapshot boundary must not split it.
func (s *Store) maybeSnapshot() {
	if s.opts.SnapshotEvery <= 0 || s.batchOpen || s.mutsSinceSnap < s.opts.SnapshotEvery {
		return
	}
	if err := s.snapshot(); err != nil && s.err == nil {
		s.err = err
	}
}

// Snapshot forces a snapshot + generation roll now, regardless of the
// mutation count.
func (s *Store) Snapshot() error { return s.snapshot() }

func (s *Store) snapshot() error {
	if s.batchOpen {
		return fmt.Errorf("durable: snapshot inside an open batch")
	}
	// Fold the overlay into the base first so the dump is one sorted
	// array scan (and the reopened store starts compacted).
	s.mem.Compact()
	oldGen := s.gen.Load()
	newGen := oldGen + 1
	if err := writeSnapshot(s.dir, newGen, s.mem, s.failSnapAfter); err != nil {
		return err
	}
	// The snapshot is durable; mutations from here on belong to the
	// new generation's WAL.
	f, err := os.OpenFile(filepath.Join(s.dir, walName(newGen)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create WAL: %w", err)
	}
	syncDir(s.dir)
	s.walMu.Lock()
	if s.closed {
		// Shutdown won the race mid-roll: the new snapshot is already
		// durable, so just drop the fresh WAL handle and report.
		s.walMu.Unlock()
		f.Close()
		return fmt.Errorf("durable: snapshot after Close")
	}
	if err := s.wal.close(); err != nil && s.err == nil {
		s.err = err
	}
	s.wal = newWALWriter(f, 0, s.opts, &s.walRecords, &s.walBytes, &s.walSyncs, &s.fsyncHist)
	s.walMu.Unlock()
	atomic.StoreInt64(&s.walRecords, 0)
	atomic.StoreInt64(&s.walBytes, 0)
	s.gen.Store(newGen)
	s.mutsSinceSnap = 0
	addInt64(&s.snapshots, 1)
	atomic.StoreInt64(&s.lastSnapshotUnix, time.Now().Unix())
	os.Remove(filepath.Join(s.dir, snapName(oldGen)))
	os.Remove(filepath.Join(s.dir, walName(oldGen)))
	return nil
}

// DurableStats returns the backend's observability counters.  Safe to
// call concurrently with mutations.
func (s *Store) DurableStats() obs.DurableStats {
	return obs.DurableStats{
		Generation:               s.gen.Load(),
		WALRecords:               atomic.LoadInt64(&s.walRecords),
		WALBytes:                 atomic.LoadInt64(&s.walBytes),
		WALSyncs:                 atomic.LoadInt64(&s.walSyncs),
		WALErrors:                atomic.LoadInt64(&s.walErrors),
		Snapshots:                atomic.LoadInt64(&s.snapshots),
		LastSnapshotUnix:         atomic.LoadInt64(&s.lastSnapshotUnix),
		RecoveredSnapshotTriples: s.recoveredTriples,
		RecoveredWALRecords:      s.recoveredRecords,
		RecoveredTruncatedBytes:  s.truncatedBytes,
		FsyncLatency:             s.fsyncHist.Snapshot(),
	}
}

// Close flushes the WAL and closes it.  It returns the first I/O
// error the store swallowed on a mutation path, if any — the caller's
// last chance to learn a write never became durable.  Close is
// idempotent and safe to call concurrently with an in-flight
// CommitBatch (or another Close): whichever grabs walMu first wins,
// and the loser sees either a completed commit or a clean
// append-after-close error — never a write into a closed descriptor.
func (s *Store) Close() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.wal != nil {
		if err := s.wal.close(); err != nil && s.err == nil {
			s.err = err
		}
		s.wal = nil
	}
	return s.err
}

// --- mutation surface: delegate + log ---

// Add inserts the triple and, if new, logs it.
func (s *Store) Add(subj, pred, obj rdf.IRI) bool {
	if !s.mem.Add(subj, pred, obj) {
		return false
	}
	s.mutsSinceSnap++
	s.logOp(walOp{s: subj, p: pred, o: obj})
	return true
}

// AddTriple inserts t; it reports whether the triple was new.
func (s *Store) AddTriple(t rdf.Triple) bool { return s.Add(t.S, t.P, t.O) }

// AddAll inserts every triple of h.
func (s *Store) AddAll(h rdf.Store) {
	h.ForEach(func(t rdf.Triple) bool {
		s.AddTriple(t)
		return true
	})
}

// Remove deletes the triple and, if present, logs the removal.
func (s *Store) Remove(subj, pred, obj rdf.IRI) bool {
	if !s.mem.Remove(subj, pred, obj) {
		return false
	}
	s.mutsSinceSnap++
	s.logOp(walOp{remove: true, s: subj, p: pred, o: obj})
	return true
}

// BeginBatch opens a durability batch; see the rdf.Store contract.
func (s *Store) BeginBatch() {
	if s.batchOpen {
		panic("durable: BeginBatch with a batch already open")
	}
	s.batchOpen = true
	s.staged = s.staged[:0]
}

// CommitBatch persists the staged mutations as one atomic WAL record.
func (s *Store) CommitBatch() error {
	if !s.batchOpen {
		panic("durable: CommitBatch without an open batch")
	}
	s.batchOpen = false
	var err error
	if len(s.staged) > 0 {
		err = s.appendRecord(s.staged)
	}
	s.staged = s.staged[:0]
	s.maybeSnapshot()
	return err
}

// AbortBatch discards the staged records without writing anything.
func (s *Store) AbortBatch() {
	if !s.batchOpen {
		panic("durable: AbortBatch without an open batch")
	}
	s.batchOpen = false
	s.staged = s.staged[:0]
}

// --- read surface: pure delegation to the memstore ---

// Dict returns the store's interning dictionary.
func (s *Store) Dict() *rdf.Dict { return s.mem.Dict() }

// Len reports the number of triples in the store.
func (s *Store) Len() int { return s.mem.Len() }

// Epoch returns the mutation epoch.
func (s *Store) Epoch() uint64 { return s.mem.Epoch() }

// Stats returns the index layout snapshot of the embedded memstore.
func (s *Store) Stats() rdf.IndexStats { return s.mem.Stats() }

// Contains reports whether the triple (s, p, o) is in the store.
func (s *Store) Contains(subj, pred, obj rdf.IRI) bool { return s.mem.Contains(subj, pred, obj) }

// ContainsTriple reports whether t is in the store.
func (s *Store) ContainsTriple(t rdf.Triple) bool { return s.mem.ContainsTriple(t) }

// ContainsIDs is Contains in interned-ID space.
func (s *Store) ContainsIDs(subj, pred, obj rdf.ID) bool { return s.mem.ContainsIDs(subj, pred, obj) }

// Match calls fn for every matching triple; see rdf.Store.
func (s *Store) Match(subj, pred, obj *rdf.IRI, fn func(rdf.Triple) bool) {
	s.mem.Match(subj, pred, obj, fn)
}

// MatchIDs is the ID-native Match; the memstore's sorted-emission
// contract passes through unchanged.
func (s *Store) MatchIDs(subj, pred, obj *rdf.ID, fn func(rdf.IDTriple) bool) {
	s.mem.MatchIDs(subj, pred, obj, fn)
}

// CountMatch counts matching triples without enumerating them.
func (s *Store) CountMatch(subj, pred, obj *rdf.IRI) int { return s.mem.CountMatch(subj, pred, obj) }

// CountMatchIDs is the ID-native CountMatch.
func (s *Store) CountMatchIDs(subj, pred, obj *rdf.ID) int {
	return s.mem.CountMatchIDs(subj, pred, obj)
}

// ForEach calls fn for every triple in ascending (S, P, O) ID order.
func (s *Store) ForEach(fn func(rdf.Triple) bool) { s.mem.ForEach(fn) }

// Triples returns all triples sorted lexicographically.
func (s *Store) Triples() []rdf.Triple { return s.mem.Triples() }

// IRIs returns the sorted set of IRIs mentioned in some triple.
func (s *Store) IRIs() []rdf.IRI { return s.mem.IRIs() }

// MentionsIRI reports whether iri occurs in some triple.
func (s *Store) MentionsIRI(iri rdf.IRI) bool { return s.mem.MentionsIRI(iri) }

// Equal reports whether the store and h hold the same triples.
func (s *Store) Equal(h rdf.Store) bool { return s.mem.Equal(h) }

// IsSubgraphOf reports whether every triple of the store is in h.
func (s *Store) IsSubgraphOf(h rdf.Store) bool { return s.mem.IsSubgraphOf(h) }

// String renders the contents as sorted N-Triples statements.
func (s *Store) String() string { return s.mem.String() }

// AcquireRead opens a read snapshot on the embedded memstore.
func (s *Store) AcquireRead() (release func()) { return s.mem.AcquireRead() }

// Compact merges the memstore's delta overlay into its sorted base.
// Compaction is a physical reorganization, not a logical mutation, so
// no WAL record is written.
func (s *Store) Compact() bool { return s.mem.Compact() }

// SetCompactionThreshold tunes the memstore's compaction trigger.
func (s *Store) SetCompactionThreshold(n int) { s.mem.SetCompactionThreshold(n) }
