// Write-ahead log encoding and replay.
//
// The WAL is an append-only sequence of length-prefixed,
// CRC-checksummed records:
//
//	record  := length(u32 LE) crc(u32 LE) payload
//	payload := op*
//	op      := kind(byte: 1=add 2=remove) term term term
//	term    := uvarint-length bytes
//
// where crc is CRC-32 (IEEE) of the payload.  One record is one
// atomic unit of durability: a single Add/Remove outside a batch, or
// an entire batch (see the Store batch-staging contract).  Terms are
// the IRI strings themselves, not dictionary IDs, so replay is plain
// Add/Remove against a fresh graph and a WAL stays valid across
// snapshots that re-intern the dictionary in a different order.
//
// Replay scans records sequentially and stops at the first torn or
// corrupt one — a short header, a length pointing past the file's
// end, a CRC mismatch, or an undecodable payload.  Everything from
// that point on is discarded (the file is truncated at the last valid
// record boundary before reopening for append), which is exactly the
// crash semantics of an append-only log: the tail that was mid-write
// when the process died never happened.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

const (
	opAdd    = 1
	opRemove = 2

	// walHeaderLen is the fixed per-record framing overhead.
	walHeaderLen = 8

	// maxWALRecordLen is a sanity bound on a record's payload length:
	// a decoded length beyond it is treated as corruption, not as a
	// 3GiB allocation request.
	maxWALRecordLen = 1 << 28
)

// walOp is one logical mutation in a WAL record.
type walOp struct {
	remove  bool
	s, p, o rdf.IRI
}

// appendOp encodes op onto buf.
func appendOp(buf []byte, op walOp) []byte {
	kind := byte(opAdd)
	if op.remove {
		kind = opRemove
	}
	buf = append(buf, kind)
	for _, term := range [3]rdf.IRI{op.s, op.p, op.o} {
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
	}
	return buf
}

// encodeRecord frames ops as one WAL record: header + payload.
func encodeRecord(ops []walOp) []byte {
	payload := make([]byte, 0, 32*len(ops))
	for _, op := range ops {
		payload = appendOp(payload, op)
	}
	rec := make([]byte, walHeaderLen, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// decodeOps decodes a record payload.  The payload already passed its
// CRC check, so a decode error here means an encoder bug or
// deliberate corruption; either way the record is rejected whole.
func decodeOps(p []byte) ([]walOp, error) {
	var ops []walOp
	for len(p) > 0 {
		kind := p[0]
		if kind != opAdd && kind != opRemove {
			return nil, fmt.Errorf("bad op kind %d", kind)
		}
		p = p[1:]
		var terms [3]rdf.IRI
		for i := range terms {
			n, w := binary.Uvarint(p)
			if w <= 0 || uint64(len(p)-w) < n {
				return nil, fmt.Errorf("truncated term")
			}
			terms[i] = rdf.IRI(p[w : w+int(n)])
			p = p[w+int(n):]
		}
		ops = append(ops, walOp{remove: kind == opRemove, s: terms[0], p: terms[1], o: terms[2]})
	}
	return ops, nil
}

// parseWAL scans data record by record, calling apply for each op of
// each valid record, and returns how many records were applied and
// the byte offset of the last valid record's end.  It never fails: a
// torn or corrupt tail just ends the scan early, per the crash
// semantics in the package comment.
func parseWAL(data []byte, apply func(walOp)) (records int, validBytes int64) {
	off := 0
	for {
		if len(data)-off < walHeaderLen {
			return records, int64(off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxWALRecordLen || uint64(len(data)-off-walHeaderLen) < uint64(n) {
			return records, int64(off)
		}
		payload := data[off+walHeaderLen : off+walHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return records, int64(off)
		}
		ops, err := decodeOps(payload)
		if err != nil {
			return records, int64(off)
		}
		for _, op := range ops {
			apply(op)
		}
		records++
		off += walHeaderLen + int(n)
	}
}

// walWriter appends records to an open WAL file, applying the
// configured fsync policy.  It is not safe for concurrent use; the
// Store serializes mutations per the snapshot-guard contract.
type walWriter struct {
	f   *os.File
	off int64 // file end offset (== bytes of valid records)

	policy       FsyncPolicy
	syncRecords  int           // batch policy: sync after this many unsynced records
	syncInterval time.Duration // batch policy: or after this long since the last sync
	unsynced     int
	lastSync     time.Time

	records *int64 // shared counters owned by the Store (atomics)
	bytes   *int64
	syncs   *int64
	hist    *obs.Histogram

	// failAfter is a test-only crash-injection hook: when >= 0, the
	// next append writes only failAfter bytes of the record and
	// reports an injected I/O error, leaving a torn tail on disk
	// exactly as a crash mid-write would.
	failAfter int64
}

func newWALWriter(f *os.File, off int64, o Options, records, bytes, syncs *int64, hist *obs.Histogram) *walWriter {
	return &walWriter{
		f:            f,
		off:          off,
		policy:       o.Fsync,
		syncRecords:  o.BatchSyncRecords,
		syncInterval: o.BatchSyncInterval,
		lastSync:     time.Now(),
		records:      records,
		bytes:        bytes,
		syncs:        syncs,
		hist:         hist,
		failAfter:    -1,
	}
}

// append writes ops as one record and applies the fsync policy.
func (w *walWriter) append(ops []walOp) error {
	rec := encodeRecord(ops)
	if w.failAfter >= 0 {
		cut := w.failAfter
		if cut > int64(len(rec)) {
			cut = int64(len(rec))
		}
		n, _ := w.f.Write(rec[:cut])
		w.off += int64(n)
		return fmt.Errorf("durable: injected WAL crash after %d bytes", n)
	}
	n, err := w.f.Write(rec)
	w.off += int64(n)
	if err != nil {
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	addInt64(w.records, 1)
	addInt64(w.bytes, int64(len(rec)))
	w.unsynced++
	return w.maybeSync()
}

// maybeSync applies the fsync policy after a record write.
func (w *walWriter) maybeSync() error {
	switch w.policy {
	case FsyncAlways:
		return w.sync()
	case FsyncBatch:
		if w.unsynced >= w.syncRecords || time.Since(w.lastSync) >= w.syncInterval {
			return w.sync()
		}
	}
	return nil
}

// sync fsyncs the WAL file, timing the call into the latency
// histogram.
func (w *walWriter) sync() error {
	if w.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	w.hist.Observe(time.Since(start))
	addInt64(w.syncs, 1)
	w.unsynced = 0
	w.lastSync = time.Now()
	return nil
}

// close flushes and closes the WAL file.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
