package durable

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// TestCloseIdempotent double-closes a store and checks the second call
// is a no-op returning the same verdict, not a second close of the
// same descriptor.
func TestCloseIdempotent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	s.Add("a", "b", "c")
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseConcurrentWithCommit races Close (twice, from separate
// goroutines, as a signal handler and a deferred cleanup would) with
// an in-flight insert workload.  Run under -race this is the
// regression test for the shutdown torn-write bug: every commit must
// either land in the WAL before the close or fail cleanly with an
// append-after-close error — never write into a closed descriptor.
func TestCloseConcurrentWithCommit(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := mustOpen(t, t.TempDir(), Options{Fsync: FsyncAlways, SnapshotEvery: -1})

		commitErrs := make(chan error, 1)
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := 0; ; i++ {
				s.BeginBatch()
				s.Add(rdf.IRI(fmt.Sprintf("s%d", i)), "p", "o")
				if err := s.CommitBatch(); err != nil {
					firstErr = err
					break
				}
			}
			commitErrs <- firstErr
		}()
		go func() {
			defer wg.Done()
			s.Close()
		}()
		go func() {
			defer wg.Done()
			s.Close()
		}()
		wg.Wait()

		// The writer only stops when a commit fails, and the only
		// acceptable failure here is the clean append-after-close error.
		if err := <-commitErrs; err == nil || !strings.Contains(err.Error(), "after Close") {
			t.Fatalf("round %d: commit failed with %v, want append-after-Close", round, err)
		}
	}
}

// TestAppendAfterCloseIsError checks a mutation after Close surfaces
// as a sticky error on the next CommitBatch rather than panicking.
func TestAppendAfterCloseIsError(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.BeginBatch()
	s.Add("a", "b", "c")
	if err := s.CommitBatch(); err == nil || !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("CommitBatch after Close = %v, want append-after-Close error", err)
	}
}
