// Snapshot encoding: a point-in-time dump of the whole store that
// bounds WAL replay time.
//
//	snapshot := magic("NSSNAP01") body crc(u32 LE)
//	body     := generation(u64 LE)
//	            dictLen(u64 LE)  (uvarint-length bytes)*   IRIs in ID order
//	            tripleCount(u64 LE) (uvarint S P O)*       triples in SPO ID order
//
// where crc is CRC-32 (IEEE) of body.  Triples reference the
// dictionary by position, and arrive pre-sorted in SPO order, so
// loading is the rdf.NewGraphFromSnapshot bulk path: adopt the
// dictionary and SPO array, sort two copies for POS/OSP — no
// per-triple hashing or re-interning.
//
// A snapshot is written to a .tmp file, fsynced, renamed into place,
// and the directory fsynced; a crash anywhere in that sequence
// leaves either no snapshot (a stray .tmp, deleted at recovery) or a
// complete one.  Torn snapshots are impossible by construction; the
// CRC guards against silent media corruption, and a snapshot that
// fails its CRC is skipped in favor of the previous generation.
package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/rdf"
)

var snapMagic = [8]byte{'N', 'S', 'S', 'N', 'A', 'P', '0', '1'}

// errInjectedSnapCrash marks a test-injected mid-snapshot crash.
var errInjectedSnapCrash = fmt.Errorf("durable: injected snapshot crash")

// limitFailWriter fails after writing n bytes — the snapshot
// counterpart of walWriter.failAfter, simulating a crash mid-dump.
type limitFailWriter struct {
	w io.Writer
	n int64
}

func (l *limitFailWriter) Write(p []byte) (int, error) {
	if int64(len(p)) > l.n {
		n, _ := l.w.Write(p[:l.n])
		l.n = 0
		return n, errInjectedSnapCrash
	}
	l.n -= int64(len(p))
	return l.w.Write(p)
}

// crcWriter tees writes through a running CRC-32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// writeSnapshot dumps g as generation gen into dir's snapshot file,
// atomically (tmp + fsync + rename + dir fsync).  failAfter < 0
// disables crash injection.
func writeSnapshot(dir string, gen uint64, g *rdf.Graph, failAfter int64) error {
	path := filepath.Join(dir, snapName(gen))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot create: %w", err)
	}
	err = func() error {
		var sink io.Writer = f
		if failAfter >= 0 {
			sink = &limitFailWriter{w: f, n: failAfter}
		}
		bw := bufio.NewWriterSize(sink, 1<<16)
		cw := &crcWriter{w: bw}
		if _, err := cw.Write(snapMagic[:]); err != nil {
			return err
		}
		cw.crc = 0 // the trailer covers the body only, not the magic
		var u64 [8]byte
		put64 := func(v uint64) error {
			binary.LittleEndian.PutUint64(u64[:], v)
			_, err := cw.Write(u64[:])
			return err
		}
		if err := put64(gen); err != nil {
			return err
		}
		dict := g.Dict()
		if err := put64(uint64(dict.Len())); err != nil {
			return err
		}
		var varint [binary.MaxVarintLen64]byte
		putUvarint := func(v uint64) error {
			n := binary.PutUvarint(varint[:], v)
			_, err := cw.Write(varint[:n])
			return err
		}
		for id := 0; id < dict.Len(); id++ {
			iri := dict.IRI(rdf.ID(id))
			if err := putUvarint(uint64(len(iri))); err != nil {
				return err
			}
			if _, err := io.WriteString(cw, string(iri)); err != nil {
				return err
			}
		}
		if err := put64(uint64(g.Len())); err != nil {
			return err
		}
		var werr error
		g.MatchIDs(nil, nil, nil, func(t rdf.IDTriple) bool {
			for _, id := range [3]rdf.ID{t.S, t.P, t.O} {
				if werr = putUvarint(uint64(id)); werr != nil {
					return false
				}
			}
			return true
		})
		if werr != nil {
			return werr
		}
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], cw.crc)
		if _, err := cw.Write(trailer[:]); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot write: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// loadSnapshot reads and validates the generation-gen snapshot in
// dir, returning the reconstructed graph.
func loadSnapshot(dir string, gen uint64) (*rdf.Graph, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName(gen)))
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8+8+8+4 {
		return nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != snapMagic {
		return nil, fmt.Errorf("durable: bad snapshot magic")
	}
	body := data[8 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("durable: snapshot CRC mismatch (got %08x want %08x)", got, want)
	}
	if g := binary.LittleEndian.Uint64(body[:8]); g != gen {
		return nil, fmt.Errorf("durable: snapshot generation %d in file named for %d", g, gen)
	}
	body = body[8:]
	dictLen := binary.LittleEndian.Uint64(body[:8])
	body = body[8:]
	if dictLen > uint64(len(body)) {
		return nil, fmt.Errorf("durable: snapshot dictionary length %d exceeds body", dictLen)
	}
	iris := make([]rdf.IRI, 0, dictLen)
	for i := uint64(0); i < dictLen; i++ {
		n, w := binary.Uvarint(body)
		if w <= 0 || uint64(len(body)-w) < n {
			return nil, fmt.Errorf("durable: snapshot dictionary entry %d truncated", i)
		}
		iris = append(iris, rdf.IRI(body[w:w+int(n)]))
		body = body[w+int(n):]
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("durable: snapshot triple count truncated")
	}
	count := binary.LittleEndian.Uint64(body[:8])
	body = body[8:]
	if count > uint64(len(body)) {
		return nil, fmt.Errorf("durable: snapshot triple count %d exceeds body", count)
	}
	spo := make([]rdf.IDTriple, 0, count)
	for i := uint64(0); i < count; i++ {
		var ids [3]uint64
		for j := range ids {
			v, w := binary.Uvarint(body)
			if w <= 0 {
				return nil, fmt.Errorf("durable: snapshot triple %d truncated", i)
			}
			if v > uint64(^rdf.ID(0)) {
				return nil, fmt.Errorf("durable: snapshot triple %d has ID %d beyond the ID space", i, v)
			}
			ids[j] = v
			body = body[w:]
		}
		spo = append(spo, rdf.IDTriple{S: rdf.ID(ids[0]), P: rdf.ID(ids[1]), O: rdf.ID(ids[2])})
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after snapshot triples", len(body))
	}
	return rdf.NewGraphFromSnapshot(iris, spo)
}

// syncDir best-effort fsyncs a directory so renames and file
// creations within it are durable.  Errors are ignored: some
// filesystems reject directory fsync, and the write path must not
// fail on them.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
