package durable

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/rdf"
)

func walFixtureOps() [][]walOp {
	return [][]walOp{
		{{s: "ana", p: "works_at", o: "puc"}},
		{{s: "puc", p: "located_in", o: "chile"}, {remove: true, s: "ana", p: "works_at", o: "puc"}},
		{{s: "bob", p: "born", o: "<http://example.org/peru>"}},
	}
}

// TestWALRoundTrip encodes records and replays them byte-for-byte.
func TestWALRoundTrip(t *testing.T) {
	recs := walFixtureOps()
	var data []byte
	for _, ops := range recs {
		data = append(data, encodeRecord(ops)...)
	}
	var got []walOp
	n, valid := parseWAL(data, func(op walOp) { got = append(got, op) })
	if n != len(recs) {
		t.Fatalf("replayed %d records, want %d", n, len(recs))
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid bytes %d, want %d", valid, len(data))
	}
	var want []walOp
	for _, ops := range recs {
		want = append(want, ops...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed ops %+v, want %+v", got, want)
	}
}

// TestWALTornTail checks that a record cut at every possible byte
// offset replays exactly the records before it and reports the valid
// prefix length.
func TestWALTornTail(t *testing.T) {
	recs := walFixtureOps()
	var data []byte
	var bounds []int64 // record end offsets
	for _, ops := range recs {
		data = append(data, encodeRecord(ops)...)
		bounds = append(bounds, int64(len(data)))
	}
	for cut := 0; cut <= len(data); cut++ {
		wantRecs, wantValid := 0, int64(0)
		for i, b := range bounds {
			if b <= int64(cut) {
				wantRecs, wantValid = i+1, b
			}
		}
		n, valid := parseWAL(data[:cut], func(walOp) {})
		if n != wantRecs || valid != wantValid {
			t.Fatalf("cut@%d: replay = (%d records, %d bytes), want (%d, %d)",
				cut, n, valid, wantRecs, wantValid)
		}
	}
}

// TestWALCorruptCRC flips one payload byte in the middle record and
// checks replay stops before it, keeping the earlier record.
func TestWALCorruptCRC(t *testing.T) {
	recs := walFixtureOps()
	var data []byte
	var bounds []int64
	for _, ops := range recs {
		data = append(data, encodeRecord(ops)...)
		bounds = append(bounds, int64(len(data)))
	}
	data[bounds[0]+walHeaderLen] ^= 0xff // first payload byte of record 2
	n, valid := parseWAL(data, func(walOp) {})
	if n != 1 || valid != bounds[0] {
		t.Fatalf("replay after CRC corruption = (%d, %d), want (1, %d)", n, valid, bounds[0])
	}
}

// TestWALOversizedLength checks a record whose header claims an
// absurd payload length is rejected as corruption, not allocated.
func TestWALOversizedLength(t *testing.T) {
	good := encodeRecord(walFixtureOps()[0])
	bad := make([]byte, walHeaderLen)
	binary.LittleEndian.PutUint32(bad[0:4], maxWALRecordLen+1)
	data := append(append([]byte{}, good...), bad...)
	n, valid := parseWAL(data, func(walOp) {})
	if n != 1 || valid != int64(len(good)) {
		t.Fatalf("replay = (%d, %d), want (1, %d)", n, valid, len(good))
	}
}

// TestWALBadOpKind checks that a CRC-valid record with an undecodable
// payload is rejected whole: no partial application.
func TestWALBadOpKind(t *testing.T) {
	payload := appendOp(nil, walOp{s: "a", p: "b", o: "c"})
	payload = append(payload, 99) // valid op, then garbage kind
	rec := make([]byte, walHeaderLen, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	applied := 0
	n, valid := parseWAL(rec, func(walOp) { applied++ })
	if n != 0 || valid != 0 || applied != 0 {
		t.Fatalf("replay = (%d records, %d bytes, %d ops applied), want all zero", n, valid, applied)
	}
}

// TestSnapshotRoundTrip dumps a graph and loads it back.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := rdf.FromTriples(
		rdf.T("ana", "works_at", "puc"),
		rdf.T("puc", "located_in", "chile"),
		rdf.T("ana", "email", "a@puc.cl"),
	)
	g.Remove("ana", "email", "a@puc.cl") // leave a removed IRI in the dictionary
	if err := writeSnapshot(dir, 7, g, -1); err != nil {
		t.Fatal(err)
	}
	got, err := loadSnapshot(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatalf("loaded snapshot:\n%swant:\n%s", got, g)
	}
}
