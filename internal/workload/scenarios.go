package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Figure1 returns the organizations graph of Figure 1 / Example 2.1.
func Figure1() *rdf.Graph {
	return rdf.FromTriples(
		rdf.T("Gottfrid_Svartholm", "founder", "The_Pirate_Bay"),
		rdf.T("Fredrik_Neij", "founder", "The_Pirate_Bay"),
		rdf.T("Peter_Sunde", "founder", "The_Pirate_Bay"),
		rdf.T("founder", "sub_property", "supporter"),
		rdf.T("The_Pirate_Bay", "stands_for", "sharing_rights"),
		rdf.T("Carl_Lundström", "supporter", "The_Pirate_Bay"),
	)
}

// Figure2G1 returns the smaller professors graph G1 of Figure 2.
func Figure2G1() *rdf.Graph {
	return rdf.FromTriples(
		rdf.T("prof_01", "name", "Cristian"),
		rdf.T("prof_01", "email", "cris@puc.cl"),
		rdf.T("prof_01", "works_at", "PUC_Chile"),
		rdf.T("prof_02", "name", "Denis"),
		rdf.T("prof_02", "works_at", "U_Oxford"),
		rdf.T("Juan", "was_born_in", "Chile"),
	)
}

// Figure2G2 returns the extension G2 ⊇ G1 of Figure 2 (Juan's email is
// now known).
func Figure2G2() *rdf.Graph {
	g := Figure2G1()
	g.Add("Juan", "email", "juan@puc.cl")
	return g
}

// Figure3 returns the professors/universities graph of Figure 3
// (Example 6.1).
func Figure3() *rdf.Graph {
	return rdf.FromTriples(
		rdf.T("prof_01", "name", "Cristian"),
		rdf.T("prof_01", "email", "cris@puc.cl"),
		rdf.T("prof_01", "works_at", "U_Oxford"),
		rdf.T("prof_01", "works_at", "PUC_Chile"),
		rdf.T("prof_02", "name", "Denis"),
		rdf.T("prof_02", "works_at", "PUC_Chile"),
		rdf.T("Juan", "was_born_in", "Chile"),
		rdf.T("Juan", "email", "juan@puc.cl"),
	)
}

// UniversityOpts parameterizes the scalable university workload, a
// LUBM-flavoured social scenario in the spirit of the paper's examples:
// people with names and workplaces, where optional attributes (email,
// phone, homepage) are present only with some probability — the
// incomplete-information regime that motivates OPT and NS.
type UniversityOpts struct {
	People       int
	Universities int
	// OptionalPct is the probability (0–100) that each optional
	// attribute of a person is present.
	OptionalPct int
	// FoundersPct is the probability (0–100) that a person founded some
	// organization.
	FoundersPct int
	Seed        int64
}

// University generates the workload graph.
func University(o UniversityOpts) *rdf.Graph {
	if o.Universities == 0 {
		o.Universities = 1 + o.People/50
	}
	rng := rand.New(rand.NewSource(o.Seed))
	g := rdf.NewGraph()
	unis := make([]rdf.IRI, o.Universities)
	for i := range unis {
		unis[i] = rdf.IRI(fmt.Sprintf("university_%d", i))
		g.Add(unis[i], "type", "University")
		g.Add(unis[i], "stands_for", rdf.IRI(fmt.Sprintf("mission_%d", i%5)))
	}
	for i := 0; i < o.People; i++ {
		p := rdf.IRI(fmt.Sprintf("person_%d", i))
		g.Add(p, "name", rdf.IRI(fmt.Sprintf("Name_%d", i)))
		g.Add(p, "works_at", unis[rng.Intn(len(unis))])
		if rng.Intn(100) < o.OptionalPct {
			g.Add(p, "email", rdf.IRI(fmt.Sprintf("mail_%d@example.org", i)))
		}
		if rng.Intn(100) < o.OptionalPct {
			g.Add(p, "phone", rdf.IRI(fmt.Sprintf("phone_%d", i)))
		}
		if rng.Intn(100) < o.OptionalPct {
			g.Add(p, "homepage", rdf.IRI(fmt.Sprintf("http://example.org/~p%d", i)))
		}
		if rng.Intn(100) < o.FoundersPct {
			g.Add(p, "founder", unis[rng.Intn(len(unis))])
		} else if rng.Intn(100) < o.FoundersPct {
			g.Add(p, "supporter", unis[rng.Intn(len(unis))])
		}
		g.Add(p, "was_born_in", rdf.IRI(fmt.Sprintf("country_%d", rng.Intn(20))))
	}
	return g
}
