package workload

import (
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestFigureGraphs(t *testing.T) {
	if Figure1().Len() != 6 {
		t.Errorf("Figure1 has %d triples, want 6", Figure1().Len())
	}
	g1, g2 := Figure2G1(), Figure2G2()
	if !g1.IsSubgraphOf(g2) || g2.Len() != g1.Len()+1 {
		t.Error("Figure2 graphs not nested with one extra triple")
	}
	if !Figure3().Contains("prof_01", "works_at", "U_Oxford") {
		t.Error("Figure3 missing a triple")
	}
}

func TestUniversityShape(t *testing.T) {
	g := University(UniversityOpts{People: 100, OptionalPct: 100, FoundersPct: 0, Seed: 1})
	// Everyone has name, works_at, was_born_in, and all three optionals.
	if got := g.CountMatch(nil, ptr("name"), nil); got != 100 {
		t.Errorf("names = %d", got)
	}
	if got := g.CountMatch(nil, ptr("email"), nil); got != 100 {
		t.Errorf("emails = %d (OptionalPct=100)", got)
	}
	g0 := University(UniversityOpts{People: 100, OptionalPct: 0, FoundersPct: 0, Seed: 1})
	if got := g0.CountMatch(nil, ptr("email"), nil); got != 0 {
		t.Errorf("emails = %d (OptionalPct=0)", got)
	}
	// Determinism: same seed, same graph.
	if !University(UniversityOpts{People: 50, OptionalPct: 50, Seed: 7}).Equal(
		University(UniversityOpts{People: 50, OptionalPct: 50, Seed: 7})) {
		t.Error("University is not deterministic per seed")
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGraph(rng, 30, nil)
	if g.Len() == 0 || g.Len() > 30 {
		t.Errorf("RandomGraph size = %d", g.Len())
	}
	h := RandomExtension(rng, g, 10, nil)
	if !g.IsSubgraphOf(h) {
		t.Error("RandomExtension is not a supergraph")
	}
	p := RandomPattern(rng, PatternOpts{Depth: 3})
	if p == nil {
		t.Fatal("RandomPattern returned nil")
	}
	// Fragment restriction is honored.
	for i := 0; i < 50; i++ {
		q := RandomPattern(rng, PatternOpts{Depth: 3, Ops: []sparql.Op{sparql.OpAnd, sparql.OpFilter}})
		ops := sparql.Ops(q)
		if ops[sparql.OpUnion] || ops[sparql.OpOpt] || ops[sparql.OpNS] || ops[sparql.OpSelect] {
			t.Fatalf("pattern escaped the AF fragment: %s", q)
		}
	}
	tp := RandomTriplePattern(rng, &PatternOpts{VarProb: 100})
	if len(sparql.Vars(tp)) == 0 {
		t.Error("VarProb=100 produced a ground triple")
	}
	c := RandomCondition(rng, 2, &PatternOpts{})
	if c == nil {
		t.Fatal("RandomCondition returned nil")
	}
}

func ptr(s rdf.IRI) *rdf.IRI { return &s }
