package workload

import (
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestSocialGraphShape(t *testing.T) {
	s := NewSocial(SocialOpts{People: 500})
	if s.G.Len() == 0 {
		t.Fatal("empty social graph")
	}
	// Every person is typed.
	person := ClassPerson
	typed := countMatch(s.G, nil, PredType, &person)
	if typed != 500 {
		t.Fatalf("typed people = %d, want 500", typed)
	}
	// The zipf skew must make the top celebrity's follower count far
	// exceed the per-person out-degree (i.e. a genuine hub).
	celeb := s.Person(0)
	followers := countMatch(s.G, nil, PredFollows, &celeb)
	if followers < 10*s.Opts.FollowsPerPerson {
		t.Fatalf("celebrity in-degree %d too small for a hub (out-degree %d)",
			followers, s.Opts.FollowsPerPerson)
	}
	// Determinism: the same opts generate the same graph.
	s2 := NewSocial(SocialOpts{People: 500})
	if s2.G.Len() != s.G.Len() {
		t.Fatalf("non-deterministic generation: %d vs %d triples", s.G.Len(), s2.G.Len())
	}
}

func countMatch(g *rdf.Graph, s *rdf.IRI, p rdf.IRI, o *rdf.IRI) int {
	return g.CountMatch(s, &p, o)
}

func TestMixedQueriesDistributionAndValidity(t *testing.T) {
	s := NewSocial(SocialOpts{People: 300})
	rng := rand.New(rand.NewSource(7))
	qs := s.MixedQueries(rng, 200, nil)
	if len(qs) != 200 {
		t.Fatalf("got %d queries, want 200", len(qs))
	}
	// Shape accounting by structural classification: a star has one
	// variable shared by every triple; a chain has max join degree 2.
	stars := 0
	for _, q := range qs {
		tps := sparql.TriplePatterns(q)
		if len(tps) < 2 {
			t.Fatalf("degenerate query %s", q)
		}
		if centerVar(tps) != "" {
			stars++
		}
		// Every generated query must fit the row engine (validity of
		// the shapes against the schema width).
		if _, ok := sparql.EvalRows(s.G, q); !ok {
			t.Fatalf("query %s too wide for the row engine", q)
		}
	}
	// DefaultMix is 60%% stars (trees/flowers also have hubs but not a
	// variable common to every triple); allow wide tolerance.
	if stars < 80 || stars > 160 {
		t.Fatalf("star count %d outside expected band for a 60%% mix", stars)
	}
}

// centerVar returns the variable present in every triple pattern ("" if
// none).
func centerVar(tps []sparql.TriplePattern) sparql.Var {
	counts := make(map[sparql.Var]int)
	for _, tp := range tps {
		for _, v := range sparql.Vars(tp) {
			counts[v]++
		}
	}
	for v, n := range counts {
		if n == len(tps) {
			return v
		}
	}
	return ""
}
