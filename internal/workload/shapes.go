// Realistic SPARQL workload shapes.  Analyses of public endpoint logs
// (Wikidata, DBpedia — see Bonifati et al., "An Analytical Study of
// Large SPARQL Query Logs") consistently find that conjunctive queries
// are dominated by four join-graph shapes: stars (one center variable,
// many arms), chains (paths), trees (stars whose arms extend) and
// flowers (a star core with chain petals), with stars the clear
// majority.  This file generates a social-network graph with
// zipf-skewed connectivity and query streams reproducing that shape
// distribution — the workload under which the cost-based planner is
// measured (E28, cmd/nsload).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Social-graph predicates.
const (
	PredType    = rdf.IRI("type")
	PredKnows   = rdf.IRI("knows")
	PredFollows = rdf.IRI("follows")
	PredWorksAt = rdf.IRI("worksAt")
	PredLivesIn = rdf.IRI("livesIn")
	PredName    = rdf.IRI("name")
	PredEmail   = rdf.IRI("email")
	PredMentors = rdf.IRI("mentors")

	ClassPerson    = rdf.IRI("Person")
	ClassCelebrity = rdf.IRI("Celebrity")
	ClassOrg       = rdf.IRI("Org")
)

// SocialOpts sizes the social graph.  The zero value of any field
// picks a default proportional to People.
type SocialOpts struct {
	// People is the number of person entities (default 2000).
	People int
	// Celebrities is how many people are celebrities: follow targets
	// are zipf-skewed so a celebrity's in-degree is orders of magnitude
	// above the median (default People/100, min 1).
	Celebrities int
	// Orgs and Cities size the entity pools people attach to
	// (defaults People/40 and People/80, min 1 — so anchored scans
	// have a few dozen to a few thousand rows).
	Orgs   int
	Cities int
	// FollowsPerPerson and KnowsPerPerson are per-person out-degrees
	// (defaults 6 and 3).  follows objects are zipf-skewed toward
	// celebrities; knows objects are uniform.
	FollowsPerPerson int
	KnowsPerPerson   int
	// EmailPercent is the percentage of people with an email triple
	// (default 25) — a sparse unanchored predicate, so query arms over
	// it are selective without an object constant.
	EmailPercent int
	// Seed drives the generator (0 = a fixed default, so benchmarks
	// are reproducible).
	Seed int64
}

func (o *SocialOpts) fill() {
	if o.People == 0 {
		o.People = 2000
	}
	if o.Celebrities == 0 {
		o.Celebrities = max(o.People/100, 1)
	}
	if o.Orgs == 0 {
		o.Orgs = max(o.People/40, 1)
	}
	if o.Cities == 0 {
		o.Cities = max(o.People/80, 1)
	}
	if o.FollowsPerPerson == 0 {
		o.FollowsPerPerson = 6
	}
	if o.KnowsPerPerson == 0 {
		o.KnowsPerPerson = 3
	}
	if o.EmailPercent == 0 {
		o.EmailPercent = 25
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Social is a generated social graph plus the entity naming scheme the
// query-shape generators draw constants from.
type Social struct {
	G    *rdf.Graph
	Opts SocialOpts
}

// Person returns the IRI of person i (celebrities are the lowest
// indices, matching the zipf skew of follow targets).
func (s *Social) Person(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("person_%d", i)) }

// Org returns the IRI of organization i.
func (s *Social) Org(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("org_%d", i)) }

// City returns the IRI of city i.
func (s *Social) City(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("city_%d", i)) }

// NewSocial generates the graph: every person has type, name, worksAt
// and livesIn triples, knows/follows edges (follows zipf-skewed toward
// the celebrity indices) and, for EmailPercent of people, an email.
func NewSocial(o SocialOpts) *Social {
	o.fill()
	rng := rand.New(rand.NewSource(o.Seed))
	s := &Social{G: rdf.NewGraph(), Opts: o}
	// Zipf over people indices: person_0 (a celebrity) is the most
	// popular follow target, with a long uniform tail.
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(o.People-1))
	for i := 0; i < o.People; i++ {
		p := s.Person(i)
		s.G.Add(p, PredType, ClassPerson)
		if i < o.Celebrities {
			s.G.Add(p, PredType, ClassCelebrity)
		}
		s.G.Add(p, PredName, rdf.IRI(fmt.Sprintf("name_%d", i)))
		s.G.Add(p, PredWorksAt, s.Org(rng.Intn(o.Orgs)))
		s.G.Add(p, PredLivesIn, s.City(rng.Intn(o.Cities)))
		if rng.Intn(100) < o.EmailPercent {
			s.G.Add(p, PredEmail, rdf.IRI(fmt.Sprintf("email_%d", i)))
		}
		for k := 0; k < o.KnowsPerPerson; k++ {
			s.G.Add(p, PredKnows, s.Person(rng.Intn(o.People)))
		}
		for k := 0; k < o.FollowsPerPerson; k++ {
			s.G.Add(p, PredFollows, s.Person(int(zipf.Uint64())))
		}
		// mentors is deliberately sparse (1% of people): chains through
		// it are often empty, the case where adaptive execution can stop
		// before scanning the expensive edge predicates at all.
		if i%100 == 0 {
			s.G.Add(p, PredMentors, s.Person(rng.Intn(o.People)))
		}
	}
	for i := 0; i < o.Orgs; i++ {
		s.G.Add(s.Org(i), PredType, ClassOrg)
	}
	return s
}

// Shape names one query join-graph shape.
type Shape string

// The four shapes of the generated mix.
const (
	ShapeStar   Shape = "star"
	ShapeChain  Shape = "chain"
	ShapeTree   Shape = "tree"
	ShapeFlower Shape = "flower"
)

// DefaultMix is the shape distribution of the generated stream,
// approximating the star-heavy distribution of real endpoint logs.
var DefaultMix = map[Shape]int{
	ShapeStar:   60,
	ShapeChain:  24,
	ShapeTree:   10,
	ShapeFlower: 6,
}

func tp(s, p, o sparql.Value) sparql.TriplePattern { return sparql.TP(s, p, o) }
func v(name string) sparql.Value                   { return sparql.V(sparql.Var(name)) }
func c(iri rdf.IRI) sparql.Value                   { return sparql.I(iri) }

// StarQuery builds a star: one center variable ?x with arms drawn from
// the entity predicates.  Arms mix object-anchored scans (livesIn
// city, worksAt org, type Person — merge-eligible on ?x) with
// unanchored arms (email, knows) whose scans sort by the arm variable,
// so the join-order and join-strategy choices are non-trivial.
func (s *Social) StarQuery(rng *rand.Rand, arms int) sparql.Pattern {
	if arms < 2 {
		arms = 2
	}
	ops := []sparql.Pattern{
		tp(v("x"), c(PredLivesIn), c(s.City(rng.Intn(s.Opts.Cities)))),
		tp(v("x"), c(PredType), c(ClassPerson)),
		tp(v("x"), c(PredEmail), v("e")),
		tp(v("x"), c(PredWorksAt), c(s.Org(rng.Intn(s.Opts.Orgs)))),
		tp(v("x"), c(PredKnows), v("y")),
		tp(v("x"), c(PredName), v("n")),
	}
	if arms > len(ops) {
		arms = len(ops)
	}
	return sparql.AndOf(ops[:arms]...)
}

// ChainQuery builds a path of length hops through follows/knows edges,
// anchored at the far end by a livesIn or worksAt constant — the shape
// where join direction matters most under skew.
func (s *Social) ChainQuery(rng *rand.Rand, hops int) sparql.Pattern {
	if hops < 2 {
		hops = 2
	}
	ops := make([]sparql.Pattern, 0, hops+1)
	for i := 0; i < hops; i++ {
		pred := PredFollows
		if i%2 == 1 {
			pred = PredKnows
		}
		// Half the chains route the anchor-adjacent hop through the
		// sparse mentors predicate, making the selective end of the path
		// genuinely selective (often empty) rather than merely smaller.
		if i == hops-1 && rng.Intn(2) == 0 {
			pred = PredMentors
		}
		ops = append(ops, tp(v(fmt.Sprintf("x%d", i)), c(pred), v(fmt.Sprintf("x%d", i+1))))
	}
	if rng.Intn(2) == 0 {
		ops = append(ops, tp(v(fmt.Sprintf("x%d", hops)), c(PredLivesIn), c(s.City(rng.Intn(s.Opts.Cities)))))
	} else {
		ops = append(ops, tp(v(fmt.Sprintf("x%d", hops)), c(PredWorksAt), c(s.Org(rng.Intn(s.Opts.Orgs)))))
	}
	return sparql.AndOf(ops...)
}

// TreeQuery builds a two-level tree: a star on ?x with one arm
// extended to a star on its endpoint ?y.
func (s *Social) TreeQuery(rng *rand.Rand) sparql.Pattern {
	return sparql.AndOf(
		tp(v("x"), c(PredWorksAt), c(s.Org(rng.Intn(s.Opts.Orgs)))),
		tp(v("x"), c(PredKnows), v("y")),
		tp(v("y"), c(PredLivesIn), c(s.City(rng.Intn(s.Opts.Cities)))),
		tp(v("y"), c(PredName), v("n")),
	)
}

// FlowerQuery builds a star core on ?x plus a chain petal through
// follows, ending at a typed target.
func (s *Social) FlowerQuery(rng *rand.Rand) sparql.Pattern {
	return sparql.AndOf(
		tp(v("x"), c(PredLivesIn), c(s.City(rng.Intn(s.Opts.Cities)))),
		tp(v("x"), c(PredType), c(ClassPerson)),
		tp(v("x"), c(PredFollows), v("y")),
		tp(v("y"), c(PredType), c(ClassCelebrity)),
		tp(v("y"), c(PredWorksAt), v("o")),
	)
}

// Query draws one query of the given shape.
func (s *Social) Query(rng *rand.Rand, shape Shape) sparql.Pattern {
	switch shape {
	case ShapeChain:
		return s.ChainQuery(rng, 2+rng.Intn(2))
	case ShapeTree:
		return s.TreeQuery(rng)
	case ShapeFlower:
		return s.FlowerQuery(rng)
	default:
		return s.StarQuery(rng, 3+rng.Intn(3))
	}
}

// MixedQueries draws n queries following the mix's shape distribution
// (nil mix = DefaultMix).  The stream is deterministic in rng.
func (s *Social) MixedQueries(rng *rand.Rand, n int, mix map[Shape]int) []sparql.Pattern {
	if mix == nil {
		mix = DefaultMix
	}
	shapes := []Shape{ShapeStar, ShapeChain, ShapeTree, ShapeFlower}
	total := 0
	for _, sh := range shapes {
		total += mix[sh]
	}
	out := make([]sparql.Pattern, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(total)
		var pick Shape
		for _, sh := range shapes {
			if r < mix[sh] {
				pick = sh
				break
			}
			r -= mix[sh]
		}
		out = append(out, s.Query(rng, pick))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
