// Package workload provides synthetic RDF data and query generators:
// random graphs and patterns for property-based testing, the fixed
// graphs of the paper's figures, and scalable scenario generators used
// by the benchmark harness.
package workload

import (
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// PatternOpts controls RandomPattern.
type PatternOpts struct {
	// Depth is the maximum operator nesting depth.
	Depth int
	// Vars is the variable pool; triple positions draw from it.
	Vars []sparql.Var
	// IRIs is the IRI pool shared with RandomGraph, so that patterns
	// have a realistic chance of matching.
	IRIs []rdf.IRI
	// Ops is the set of operators to draw from; nil means full
	// NS-SPARQL.
	Ops []sparql.Op
	// VarProb is the probability (out of 100) that a triple position is
	// a variable; 0 defaults to 50.
	VarProb int
}

// DefaultVars is a small variable pool.
var DefaultVars = []sparql.Var{"X", "Y", "Z", "W"}

// DefaultIRIs is a small IRI pool.
var DefaultIRIs = []rdf.IRI{"a", "b", "c", "p", "q", "r"}

func (o *PatternOpts) fill() {
	if o.Depth == 0 {
		o.Depth = 3
	}
	if o.Vars == nil {
		o.Vars = DefaultVars
	}
	if o.IRIs == nil {
		o.IRIs = DefaultIRIs
	}
	if o.Ops == nil {
		o.Ops = []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}
	}
	if o.VarProb == 0 {
		o.VarProb = 50
	}
}

// RandomPattern draws a random graph pattern.
func RandomPattern(rng *rand.Rand, opts PatternOpts) sparql.Pattern {
	opts.fill()
	return randomPattern(rng, opts.Depth, &opts)
}

func randomPattern(rng *rand.Rand, depth int, o *PatternOpts) sparql.Pattern {
	if depth <= 0 || rng.Intn(3) == 0 {
		return RandomTriplePattern(rng, o)
	}
	switch o.Ops[rng.Intn(len(o.Ops))] {
	case sparql.OpAnd:
		return sparql.And{L: randomPattern(rng, depth-1, o), R: randomPattern(rng, depth-1, o)}
	case sparql.OpUnion:
		return sparql.Union{L: randomPattern(rng, depth-1, o), R: randomPattern(rng, depth-1, o)}
	case sparql.OpOpt:
		return sparql.Opt{L: randomPattern(rng, depth-1, o), R: randomPattern(rng, depth-1, o)}
	case sparql.OpFilter:
		return sparql.Filter{P: randomPattern(rng, depth-1, o), Cond: RandomCondition(rng, 2, o)}
	case sparql.OpSelect:
		nv := 1 + rng.Intn(len(o.Vars))
		vars := make([]sparql.Var, nv)
		for i := range vars {
			vars[i] = o.Vars[rng.Intn(len(o.Vars))]
		}
		return sparql.NewSelect(vars, randomPattern(rng, depth-1, o))
	default:
		return sparql.NS{P: randomPattern(rng, depth-1, o)}
	}
}

// RandomTriplePattern draws a triple pattern from the pools of opts.
func RandomTriplePattern(rng *rand.Rand, o *PatternOpts) sparql.TriplePattern {
	o.fill()
	vals := make([]sparql.Value, 3)
	for i := range vals {
		if rng.Intn(100) < o.VarProb {
			vals[i] = sparql.V(o.Vars[rng.Intn(len(o.Vars))])
		} else {
			vals[i] = sparql.I(o.IRIs[rng.Intn(len(o.IRIs))])
		}
	}
	return sparql.TP(vals[0], vals[1], vals[2])
}

// RandomCondition draws a built-in condition over the pools of opts.
func RandomCondition(rng *rand.Rand, depth int, o *PatternOpts) sparql.Condition {
	o.fill()
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return sparql.Bound{X: o.Vars[rng.Intn(len(o.Vars))]}
		case 1:
			return sparql.EqConst{X: o.Vars[rng.Intn(len(o.Vars))], C: o.IRIs[rng.Intn(len(o.IRIs))]}
		default:
			return sparql.EqVars{X: o.Vars[rng.Intn(len(o.Vars))], Y: o.Vars[rng.Intn(len(o.Vars))]}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return sparql.Not{R: RandomCondition(rng, depth-1, o)}
	case 1:
		return sparql.AndCond{L: RandomCondition(rng, depth-1, o), R: RandomCondition(rng, depth-1, o)}
	default:
		return sparql.OrCond{L: RandomCondition(rng, depth-1, o), R: RandomCondition(rng, depth-1, o)}
	}
}

// RandomGraph draws a graph with up to n triples over the given IRI
// pool (DefaultIRIs if nil).
func RandomGraph(rng *rand.Rand, n int, iris []rdf.IRI) *rdf.Graph {
	if iris == nil {
		iris = DefaultIRIs
	}
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		g.Add(iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))])
	}
	return g
}

// RandomExtension returns a random strict-or-equal supergraph of g,
// adding up to extra triples over the same IRI pool plus fresh ones.
// Useful for weak-monotonicity testing (G1 ⊆ G2 pairs).
func RandomExtension(rng *rand.Rand, g *rdf.Graph, extra int, iris []rdf.IRI) *rdf.Graph {
	if iris == nil {
		iris = DefaultIRIs
	}
	h := g.Clone()
	for i := 0; i < extra; i++ {
		h.Add(iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))])
	}
	return h
}
