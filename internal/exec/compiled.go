package exec

// Compiled queries: the shape both servers (nsserve and the cluster
// coordinator nscoord) execute.  A Compiled bundles a prepared plan
// with the query kind — SELECT, ASK or CONSTRUCT — and EvalCompiled
// dispatches to the matching engine entry point, so the two servers
// share one execution path and cannot drift apart on governor or
// profiling behaviour.

import (
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Compiled is a query ready to execute: the optimized plan plus the
// query kind.  Exactly one of Ask / Construct / neither (SELECT)
// applies.
type Compiled struct {
	// Prepared is the optimized plan of the query's graph pattern (the
	// WHERE pattern, for CONSTRUCT).
	Prepared plan.Prepared
	// Construct is non-nil for CONSTRUCT queries; its Template builds
	// the output graph.
	Construct *sparql.ConstructQuery
	// Ask marks ASK queries.
	Ask bool
}

// Compile prepares pattern against g and tags the result with the
// query kind.  construct may be nil and ask false for plain SELECT /
// pattern queries.
func Compile(g rdf.Store, pattern sparql.Pattern, construct *sparql.ConstructQuery, ask bool) Compiled {
	return CompileOpts(g, pattern, construct, ask, plan.PlannerOptions{})
}

// CompileOpts is Compile with explicit planner options; servers expose
// these as flags (nsserve -planner) and must key their plan caches by
// po.CacheTag().
func CompileOpts(g rdf.Store, pattern sparql.Pattern, construct *sparql.ConstructQuery, ask bool, po plan.PlannerOptions) Compiled {
	return Compiled{Prepared: plan.PrepareOpts(g, pattern, po), Construct: construct, Ask: ask}
}

// Result is the outcome of EvalCompiled; exactly one field is set,
// matching the Compiled's kind.
type Result struct {
	// Bool is set for ASK queries.
	Bool *bool
	// Rows is set for SELECT / pattern queries.
	Rows *sparql.MappingSet
	// Graph is set for CONSTRUCT queries.
	Graph rdf.Store
}

// EvalCompiled executes c against g under the budget and planner
// options: ASK through the early-terminating search, CONSTRUCT
// through the template instantiation path, everything else through
// the row evaluator.  g must be the store c was prepared against (or
// one with identical contents — the plan embeds index cardinalities,
// not data).
func EvalCompiled(g rdf.Store, c Compiled, b *sparql.Budget, o plan.Options) (Result, error) {
	switch {
	case c.Ask:
		ok, err := AskPreparedOpts(g, c.Prepared, b, o)
		if err != nil {
			return Result{}, err
		}
		return Result{Bool: &ok}, nil
	case c.Construct != nil:
		out, err := plan.EvalConstructPreparedOpts(g, c.Prepared, c.Construct.Template, b, o)
		if err != nil {
			return Result{}, err
		}
		return Result{Graph: out}, nil
	default:
		ms, err := plan.EvalPreparedOpts(g, c.Prepared, b, o)
		if err != nil {
			return Result{}, err
		}
		return Result{Rows: ms}, nil
	}
}
