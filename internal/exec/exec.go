// Package exec is a backtracking executor for NS-SPARQL with early
// termination: Ask decides whether a pattern has any solution and
// Limit returns the first k solutions, both without materializing the
// full answer set when they can avoid it.
//
// The search runs on the ID-native row runtime (sparql.Searcher): the
// pattern is optimized once up front, then evaluated depth-first over
// dictionary-encoded rows, binding triple patterns through the
// ID-level graph indexes.  Slots are bound in place in a single row
// buffer and presence masks travel by value, so extending or
// abandoning a partial solution allocates nothing — the string
// engine's Mapping.Clone() per search node is gone.
//
// For the monotone operators (AND, UNION, FILTER, SELECT) this is the
// classic certificate search that witnesses the NP membership of
// Eval(SPARQL[AUFS]) (Section 7).  The non-monotone operators OPT and
// NS need the complete sub-answer sets to decide what survives, so
// sub-patterns under them fall back to the reference evaluator; Ask
// and Limit still terminate early at the outer level.  Patterns wider
// than sparql.MaxSchemaVars fall back to materializing the reference
// answer set.
package exec

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// instrumentSearch attaches a "search" node under prof and returns a
// completion callback recording wall time, budget deltas and rows out.
// The backtracking searcher interleaves all operators in one depth-first
// walk, so exec profiles it as a single node instead of an operator
// tree; materializing fallbacks go through plan.EvalOpts, which builds
// the full tree.  A nil prof costs one nil check.
func instrumentSearch(prof *obs.Node, b *sparql.Budget, detail string) func(rows int64) {
	if prof == nil {
		return func(int64) {}
	}
	node := prof.Child("search", detail)
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	return func(rows int64) {
		node.AddWall(time.Since(start))
		steps1, rows1, bytes1 := b.Counters()
		node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
		node.AddRowsOut(rows)
	}
}

// Ask reports whether ⟦P⟧_G is non-empty, stopping at the first
// solution found.  Ungoverned legacy entry point; servers should use
// AskCtx or AskBudget.
func Ask(g rdf.Store, p sparql.Pattern) bool {
	found, _ := AskBudget(g, p, nil)
	return found
}

// AskCtx is Ask bounded by a context.
func AskCtx(ctx context.Context, g rdf.Store, p sparql.Pattern) (bool, error) {
	return AskBudget(g, p, sparql.NewBudget(ctx))
}

// AskBudget is Ask under a resource governor: the backtracking search
// charges the budget per index probe and aborts with the budget's
// typed error the moment the governor trips.
func AskBudget(g rdf.Store, p sparql.Pattern, b *sparql.Budget) (bool, error) {
	return AskOpts(g, p, b, plan.Options{})
}

// AskOpts is AskBudget with planner options.  Monotone patterns keep
// the early-terminating backtracking search; patterns that force full
// materialization anyway — a non-monotone (OPT/NS) root, or a schema
// wider than the row runtime — are routed through the planner's
// (possibly parallel) row evaluator instead of the serial reference
// evaluator.
func AskOpts(g rdf.Store, p sparql.Pattern, b *sparql.Budget, o plan.Options) (bool, error) {
	return AskPreparedOpts(g, plan.Prepare(g, p), b, o)
}

// AskPreparedOpts is AskOpts on an already-prepared plan, so servers
// can run ASK through their plan cache without re-optimizing.
func AskPreparedOpts(g rdf.Store, pr plan.Prepared, b *sparql.Budget, o plan.Options) (bool, error) {
	opt := pr.Pattern()
	sc, ok := sparql.SchemaFor(opt)
	if !ok || materializes(opt) {
		ms, err := plan.EvalPreparedOpts(g, pr, b, o)
		if err != nil {
			return false, err
		}
		return ms.Len() > 0, nil
	}
	done := instrumentSearch(o.Prof, b, "ask")
	found := false
	err := sparql.NewSearcherBudget(g, sc, b).Search(opt, 0, func(uint64) bool {
		found = true
		return false
	})
	if err != nil {
		done(0)
		return false, err
	}
	var rows int64
	if found {
		rows = 1
	}
	done(rows)
	return found, nil
}

// materializes reports whether the root operator needs its complete
// sub-answer sets before it can emit anything, so a backtracking
// search over it cannot terminate early and would only add overhead
// on top of a full evaluation.
func materializes(p sparql.Pattern) bool {
	switch p.(type) {
	case sparql.Opt, sparql.NS:
		return true
	}
	return false
}

// Limit returns up to k distinct solutions of ⟦P⟧_G (all of them for
// k < 0), stopping the search as soon as k are found.  Ungoverned
// legacy entry point; servers should use LimitCtx or LimitBudget.
func Limit(g rdf.Store, p sparql.Pattern, k int) *sparql.MappingSet {
	out, err := LimitBudget(g, p, k, nil)
	if err != nil {
		return sparql.NewMappingSet()
	}
	return out
}

// LimitCtx is Limit bounded by a context.
func LimitCtx(ctx context.Context, g rdf.Store, p sparql.Pattern, k int) (*sparql.MappingSet, error) {
	return LimitBudget(g, p, k, sparql.NewBudget(ctx))
}

// LimitBudget is Limit under a resource governor.  Each returned
// solution also charges the budget's row limit, so MaxRows bounds the
// result set even for k < 0.
func LimitBudget(g rdf.Store, p sparql.Pattern, k int, b *sparql.Budget) (*sparql.MappingSet, error) {
	return LimitOpts(g, p, k, b, plan.Options{})
}

// LimitOpts is LimitBudget with planner options; like AskOpts it sends
// the materializing cases through the planner's row evaluator.
func LimitOpts(g rdf.Store, p sparql.Pattern, k int, b *sparql.Budget, o plan.Options) (*sparql.MappingSet, error) {
	out := sparql.NewMappingSet()
	if k == 0 {
		return out, nil
	}
	opt := plan.Optimize(g, p)
	sc, ok := sparql.SchemaFor(opt)
	if !ok || materializes(opt) {
		ms, err := plan.EvalOpts(g, p, b, o)
		if err != nil {
			return nil, err
		}
		for _, mu := range ms.Mappings() {
			out.Add(mu)
			if k >= 0 && out.Len() >= k {
				break
			}
		}
		return out, nil
	}
	done := instrumentSearch(o.Prof, b, "limit")
	s := sparql.NewSearcherBudget(g, sc, b)
	seen := sparql.NewRowSet(sc)
	var rowErr error
	err := s.Search(opt, 0, func(m uint64) bool {
		if !seen.Add(s.IDs(), m) {
			return true
		}
		if rowErr = b.AddRows(1); rowErr != nil {
			return false
		}
		out.Add(s.Decode(m))
		return k < 0 || out.Len() < k
	})
	if err == nil {
		err = rowErr
	}
	if err != nil {
		done(0)
		return nil, err
	}
	done(int64(out.Len()))
	return out, nil
}

// ConstructContains decides t ∈ ans(Q, G) with early termination: the
// target triple is unified with each template triple, the resulting
// binding seeds the backtracking search, and the first witness stops
// it.  This is the decision problem of Section 7.3.  Ungoverned legacy
// entry point; servers should use ConstructContainsCtx or
// ConstructContainsBudget.
func ConstructContains(g rdf.Store, q sparql.ConstructQuery, target rdf.Triple) bool {
	found, _ := ConstructContainsBudget(g, q, target, nil)
	return found
}

// ConstructContainsCtx is ConstructContains bounded by a context.
func ConstructContainsCtx(ctx context.Context, g rdf.Store, q sparql.ConstructQuery, target rdf.Triple) (bool, error) {
	return ConstructContainsBudget(g, q, target, sparql.NewBudget(ctx))
}

// ConstructContainsBudget is ConstructContains under a resource
// governor.
func ConstructContainsBudget(g rdf.Store, q sparql.ConstructQuery, target rdf.Triple, b *sparql.Budget) (bool, error) {
	return ConstructContainsOpts(g, q, target, b, plan.Options{})
}

// ConstructContainsOpts is ConstructContainsBudget with planner
// options for the materializing fallback.  The seeded searches keep
// the serial early-terminating path: the seed row usually prunes the
// search long before materialization would pay off.
func ConstructContainsOpts(g rdf.Store, q sparql.ConstructQuery, target rdf.Triple, b *sparql.Budget, o plan.Options) (bool, error) {
	opt := plan.Optimize(g, q.Where)
	sc, scOK := sparql.SchemaFor(opt)
	for _, tp := range q.Template {
		seed, ok := unifyTemplate(tp, target)
		if !ok {
			continue
		}
		if !scOK {
			hit, err := containsMaterialized(g, q.Where, tp, target, b, o)
			if err != nil {
				return false, err
			}
			if hit {
				return true, nil
			}
			continue
		}
		// Encode the seed against the graph dictionary without
		// interning.  Solutions only bind template variables to graph
		// IRIs, so a seed value absent from the dictionary — or a
		// template variable outside the pattern — cannot be witnessed.
		c := sparql.Codec{Schema: sc, Dict: g.Dict()}
		row, ok := c.EncodeLookup(seed)
		if !ok {
			continue
		}
		// ans(Q, G) requires var(tp) ⊆ dom(µ); every emitted solution
		// agrees with the seed on shared slots, so domain coverage alone
		// certifies that µ(tp) is the target.
		tpMask := sc.SlotMask(sparql.Vars(tp))
		done := instrumentSearch(o.Prof, b, "construct-contains")
		s := sparql.NewSearcherBudget(g, sc, b)
		s.Seed(row)
		found := false
		err := s.Search(opt, row.Mask, func(m uint64) bool {
			if tpMask&^m != 0 {
				return true
			}
			found = true
			return false
		})
		if err != nil {
			done(0)
			return false, err
		}
		if found {
			done(1)
			return true, nil
		}
		done(0)
	}
	return false, nil
}

// containsMaterialized is the wide-schema fallback: materialize the
// answers and apply the template.
func containsMaterialized(g rdf.Store, where sparql.Pattern, tp sparql.TriplePattern, target rdf.Triple, b *sparql.Budget, o plan.Options) (bool, error) {
	ms, err := plan.EvalOpts(g, where, b, o)
	if err != nil {
		return false, err
	}
	for _, mu := range ms.Mappings() {
		if produced, ok := mu.Apply(tp); ok && produced == target {
			return true, nil
		}
	}
	return false, nil
}

// unifyTemplate matches a template triple against a concrete triple,
// returning the variable bindings (false on a constant mismatch or a
// repeated variable with different values).
func unifyTemplate(tp sparql.TriplePattern, tr rdf.Triple) (sparql.Mapping, bool) {
	mu := make(sparql.Mapping, 3)
	unify := func(v sparql.Value, iri rdf.IRI) bool {
		if !v.IsVar() {
			return v.IRI() == iri
		}
		if prev, ok := mu[v.Var()]; ok {
			return prev == iri
		}
		mu[v.Var()] = iri
		return true
	}
	if unify(tp.S, tr.S) && unify(tp.P, tr.P) && unify(tp.O, tr.O) {
		return mu, true
	}
	return nil, false
}
