// Package exec is a backtracking executor for NS-SPARQL with early
// termination: Ask decides whether a pattern has any solution and
// Limit returns the first k solutions, both without materializing the
// full answer set when they can avoid it.
//
// For the monotone operators (AND, UNION, FILTER, SELECT) the executor
// searches depth-first, binding one triple pattern at a time through
// the graph indexes — the classic certificate search that witnesses
// the NP membership of Eval(SPARQL[AUFS]) (Section 7).  The
// non-monotone operators OPT and NS need the complete sub-answer sets
// to decide what survives, so sub-patterns under them fall back to the
// reference evaluator; Ask and Limit still terminate early at the
// outer level.
package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Ask reports whether ⟦P⟧_G is non-empty, stopping at the first
// solution found.
func Ask(g *rdf.Graph, p sparql.Pattern) bool {
	found := false
	iterate(g, p, sparql.Mapping{}, func(sparql.Mapping) bool {
		found = true
		return false
	})
	return found
}

// Limit returns up to k solutions of ⟦P⟧_G (all of them for k < 0),
// stopping the search as soon as k distinct solutions are found.
func Limit(g *rdf.Graph, p sparql.Pattern, k int) *sparql.MappingSet {
	out := sparql.NewMappingSet()
	if k == 0 {
		return out
	}
	iterate(g, p, sparql.Mapping{}, func(mu sparql.Mapping) bool {
		out.Add(mu)
		return k < 0 || out.Len() < k
	})
	return out
}

// iterate streams the solutions of p that are compatible-extensions of
// the partial binding env, calling emit for each; emit returns false
// to stop.  iterate reports whether the search should continue.
//
// The emitted mappings are the *full* solutions of p (env restricted
// to p's variables merged with p's own bindings); duplicates may be
// emitted (e.g. via UNION) — callers deduplicate.
func iterate(g *rdf.Graph, p sparql.Pattern, env sparql.Mapping, emit func(sparql.Mapping) bool) bool {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return streamTriple(g, q, env, emit)
	case sparql.And:
		// Order the two sides by estimated cardinality so the selective
		// side binds first.
		l, r := q.L, q.R
		if plan.Estimate(g, r) < plan.Estimate(g, l) {
			l, r = r, l
		}
		return iterate(g, l, env, func(mu sparql.Mapping) bool {
			// mu is a full solution of l compatible with env; extend the
			// environment and search the other side.
			ext := env.Merge(mu)
			return iterate(g, r, ext, func(nu sparql.Mapping) bool {
				if !mu.CompatibleWith(nu) {
					return true
				}
				return emit(mu.Merge(nu))
			})
		})
	case sparql.Union:
		if !iterate(g, q.L, env, emit) {
			return false
		}
		return iterate(g, q.R, env, emit)
	case sparql.Filter:
		return iterate(g, q.P, env, func(mu sparql.Mapping) bool {
			if !q.Cond.Eval(mu) {
				return true
			}
			return emit(mu)
		})
	case sparql.Select:
		// Project and deduplicate locally so the limit counts distinct
		// projections.
		seen := sparql.NewMappingSet()
		return iterate(g, q.P, env.Restrict(q.Vars), func(mu sparql.Mapping) bool {
			proj := mu.Restrict(q.Vars)
			if !proj.CompatibleWith(env) || !seen.Add(proj) {
				return true
			}
			return emit(proj)
		})
	case sparql.Opt, sparql.NS:
		// Non-monotone: the survivors depend on the whole sub-answer
		// set.  Evaluate compatibly and stream the results.
		cont := true
		for _, mu := range sparql.EvalCompatible(g, p, env).Mappings() {
			if !emit(mu) {
				cont = false
				break
			}
		}
		return cont
	default:
		panic(fmt.Sprintf("exec: unknown pattern type %T", p))
	}
}

// streamTriple emits the matches of a triple pattern compatible with
// env directly from the graph indexes, without materializing.
func streamTriple(g *rdf.Graph, t sparql.TriplePattern, env sparql.Mapping, emit func(sparql.Mapping) bool) bool {
	// Positions bound by env (or constant) become index constraints.
	resolve := func(v sparql.Value) (*rdf.IRI, sparql.Var, bool) {
		if !v.IsVar() {
			iri := v.IRI()
			return &iri, "", false
		}
		if iri, ok := env[v.Var()]; ok {
			i := iri
			return &i, v.Var(), true
		}
		return nil, v.Var(), true
	}
	s, sv, sIsVar := resolve(t.S)
	p, pv, pIsVar := resolve(t.P)
	o, ov, oIsVar := resolve(t.O)
	cont := true
	g.Match(s, p, o, func(tr rdf.Triple) bool {
		mu := make(sparql.Mapping, 3)
		ok := true
		bind := func(isVar bool, v sparql.Var, iri rdf.IRI) {
			if !isVar || !ok {
				return
			}
			if prev, bound := mu[v]; bound && prev != iri {
				ok = false // repeated variable, conflicting values
				return
			}
			mu[v] = iri
		}
		bind(sIsVar, sv, tr.S)
		bind(pIsVar, pv, tr.P)
		bind(oIsVar, ov, tr.O)
		if !ok {
			return true
		}
		if !emit(mu) {
			cont = false
			return false
		}
		return true
	})
	return cont
}

// ConstructContains decides t ∈ ans(Q, G) with early termination: the
// target triple is unified with each template triple, the resulting
// binding seeds the backtracking search, and the first witness stops
// it.  This is the decision problem of Section 7.3.
func ConstructContains(g *rdf.Graph, q sparql.ConstructQuery, target rdf.Triple) bool {
	for _, tp := range q.Template {
		seed, ok := unifyTemplate(tp, target)
		if !ok {
			continue
		}
		found := false
		iterate(g, q.Where, seed, func(mu sparql.Mapping) bool {
			// ans(Q, G) requires var(tp) ⊆ dom(µ); µ is compatible with
			// the seed, so when that holds the produced triple is the
			// target.
			if produced, ok := mu.Apply(tp); ok && produced == target {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// unifyTemplate matches a template triple against a concrete triple,
// returning the variable bindings (false on a constant mismatch or a
// repeated variable with different values).
func unifyTemplate(tp sparql.TriplePattern, tr rdf.Triple) (sparql.Mapping, bool) {
	mu := make(sparql.Mapping, 3)
	unify := func(v sparql.Value, iri rdf.IRI) bool {
		if !v.IsVar() {
			return v.IRI() == iri
		}
		if prev, ok := mu[v.Var()]; ok {
			return prev == iri
		}
		mu[v.Var()] = iri
		return true
	}
	if unify(tp.S, tr.S) && unify(tp.P, tr.P) && unify(tp.O, tr.O) {
		return mu, true
	}
	return nil, false
}
