package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

type rdfTriple = rdf.Triple

var rdfT = rdf.T

// TestLimitAllMatchesEvalQuick: Limit with k < 0 enumerates exactly the
// reference answer set, on random full NS-SPARQL patterns.
func TestLimitAllMatchesEvalQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(20), nil)
		want := sparql.Eval(g, p)
		got := Limit(g, p, -1)
		if !got.Equal(want) {
			t.Logf("pattern %s\ngraph\n%s\nwant %v\ngot  %v", p, g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAskMatchesEvalQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(20), nil)
		return Ask(g, p) == (sparql.Eval(g, p).Len() > 0)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLimitCounts(t *testing.T) {
	g := workload.University(workload.UniversityOpts{People: 100, OptionalPct: 50, Seed: 1})
	p := parser.MustParsePattern(`(?p name ?n) AND (?p works_at ?u)`)
	total := sparql.Eval(g, p).Len()
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	for _, k := range []int{0, 1, 7, 100, 1000} {
		want := k
		if k > total {
			want = total
		}
		got := Limit(g, p, k)
		if got.Len() != want {
			t.Errorf("Limit(%d).Len() = %d, want %d", k, got.Len(), want)
		}
		// Every returned mapping must be a genuine answer.
		full := sparql.Eval(g, p)
		for _, mu := range got.Mappings() {
			if !full.Contains(mu) {
				t.Errorf("Limit returned a non-answer %s", mu)
			}
		}
	}
}

func TestLimitDistinctUnderSelect(t *testing.T) {
	// SELECT projections collapse; the limit must count distinct
	// projected mappings, not underlying solutions.
	g := workload.University(workload.UniversityOpts{People: 50, OptionalPct: 100, Seed: 2})
	// Every person works at university_0 or _1; the projection has at
	// most a couple of distinct answers.
	p := parser.MustParsePattern(`SELECT {?u} WHERE (?p works_at ?u)`)
	total := sparql.Eval(g, p).Len()
	got := Limit(g, p, total+5)
	if got.Len() != total {
		t.Fatalf("Limit over-counted projections: %d vs %d", got.Len(), total)
	}
}

func TestAskEarlyOnHugeGraph(t *testing.T) {
	// Ask on a selective pattern over a large graph must find the single
	// witness; correctness check (the speed is measured in E23).
	g := workload.University(workload.UniversityOpts{People: 3000, OptionalPct: 50, Seed: 3})
	p := parser.MustParsePattern(`(?p name Name_1234) AND (?p works_at ?u)`)
	if !Ask(g, p) {
		t.Fatal("existing witness not found")
	}
	q := parser.MustParsePattern(`(?p name Name_1234) AND (?p works_at nowhere)`)
	if Ask(g, q) {
		t.Fatal("nonexistent witness found")
	}
}

func TestAskWithOptAndNS(t *testing.T) {
	g := workload.Figure2G2()
	p := parser.MustParsePattern(`(?X was_born_in Chile) OPT (?X email ?Y)`)
	if !Ask(g, p) {
		t.Fatal("OPT pattern with answers reported empty")
	}
	ns := parser.MustParsePattern(`NS((?X was_born_in Peru))`)
	if Ask(g, ns) {
		t.Fatal("empty NS pattern reported non-empty")
	}
}

func TestConstructContainsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		vars := sparql.Vars(p)
		tmpl := []sparql.TriplePattern{sparql.TP(sparql.I("s"), sparql.I("p"), sparql.I("o"))}
		if len(vars) > 0 {
			tmpl = append(tmpl, sparql.TP(
				sparql.V(vars[rng.Intn(len(vars))]), sparql.I("rel"), sparql.V(vars[rng.Intn(len(vars))])))
		}
		q := sparql.ConstructQuery{Template: tmpl, Where: p}
		g := workload.RandomGraph(rng, rng.Intn(20), nil)
		full := sparql.EvalConstruct(g, q)
		// Every produced triple is found...
		ok := true
		full.ForEach(func(tr rdfTriple) bool {
			if !ConstructContains(g, q, tr) {
				t.Logf("produced triple %v not found for %s", tr, q)
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		// ...and random probes agree with the full output.
		iris := append(workload.DefaultIRIs, "rel", "s", "p", "o")
		for i := 0; i < 10; i++ {
			probe := rdfT(iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))], iris[rng.Intn(len(iris))])
			if ConstructContains(g, q, probe) != full.ContainsTriple(probe) {
				t.Logf("probe %v disagrees for %s", probe, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
