package exec

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

var errInjectedExec = errors.New("fault: injected governor stop")

// TestAskCtxCanceled: a dead context aborts Ask with the typed error
// instead of burning the full search.
func TestAskCtxCanceled(t *testing.T) {
	g := workload.Figure1()
	p := sparql.TP(sparql.V("X"), sparql.V("P"), sparql.V("Y"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AskCtx(ctx, g, p)
	if !errors.Is(err, sparql.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled/context.Canceled", err)
	}
	// A live context gives the real answer.
	ok, err := AskCtx(context.Background(), g, p)
	if err != nil || !ok {
		t.Fatalf("live AskCtx = %v, %v", ok, err)
	}
}

// TestLimitBudgetMaxRows: the row budget is a hard error, not a silent
// truncation — unlike the k limit, which is an explicit request.
func TestLimitBudgetMaxRows(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(rdf.IRI(rune('a'+i)), "p", "x")
	}
	p := sparql.TP(sparql.V("S"), sparql.I("p"), sparql.V("O"))

	// k within budget: fine.
	b := sparql.NewBudget(nil).WithMaxRows(5)
	out, err := LimitBudget(g, p, 3, b)
	if err != nil || out.Len() != 3 {
		t.Fatalf("k=3 under MaxRows=5: %v, %v", out, err)
	}
	// Unlimited k against a smaller row budget: typed failure.
	b = sparql.NewBudget(nil).WithMaxRows(5)
	_, err = LimitBudget(g, p, -1, b)
	var be sparql.ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != sparql.BudgetRows {
		t.Fatalf("err = %v, want ErrBudgetExceeded{BudgetRows}", err)
	}
	// The legacy wrapper degrades to an empty set, not a panic.
	if got := Limit(g, p, -1); got.Len() != 10 {
		t.Fatalf("ungoverned Limit = %d rows", got.Len())
	}
}

// TestExecFaultInjection sweeps injected faults through Ask, Limit and
// ConstructContains on random patterns: the sentinel must surface and
// the same call must succeed afterwards with the fault disarmed,
// agreeing with the ungoverned result.
func TestExecFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}
	for trial := 0; trial < 15; trial++ {
		g := workload.RandomGraph(rng, 2+rng.Intn(20), nil)
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: ops})

		b := sparql.NewBudget(context.Background())
		want, err := AskBudget(g, p, b)
		if err != nil {
			t.Fatalf("trial %d: governed Ask failed: %v", trial, err)
		}
		total := b.Steps()
		for n := int64(0); n <= total; n += 1 + total/8 {
			fb := sparql.NewBudget(nil)
			fb.InjectFault(n, errInjectedExec)
			got, err := AskBudget(g, p, fb)
			if err == nil {
				// Ask stops at the first witness and the index iteration
				// order is not deterministic, so a lucky run may finish
				// before step n — but only with a true answer.
				if !want || !got {
					t.Fatalf("trial %d Ask fault@%d/%d: completed with %v, want fault or early witness",
						trial, n, total, got)
				}
			} else if !errors.Is(err, errInjectedExec) {
				t.Fatalf("trial %d Ask fault@%d/%d: err = %v", trial, n, total, err)
			}
		}
		if got := Ask(g, p); got != want {
			t.Fatalf("trial %d: Ask changed after faults: %v -> %v", trial, want, got)
		}

		lb := sparql.NewBudget(context.Background())
		wantSet, err := LimitBudget(g, p, -1, lb)
		if err != nil {
			t.Fatalf("trial %d: governed Limit failed: %v", trial, err)
		}
		ltotal := lb.Steps()
		for n := int64(0); n <= ltotal; n += 1 + ltotal/8 {
			fb := sparql.NewBudget(nil)
			fb.InjectFault(n, errInjectedExec)
			got, err := LimitBudget(g, p, -1, fb)
			if err == nil {
				// Step totals vary with iteration order; an under-n run
				// must be complete and correct (see the sparql fault suite).
				if !got.Equal(wantSet) {
					t.Fatalf("trial %d Limit fault@%d/%d: completed with wrong answers", trial, n, ltotal)
				}
				continue
			}
			if !errors.Is(err, errInjectedExec) {
				t.Fatalf("trial %d Limit fault@%d/%d: err = %v", trial, n, ltotal, err)
			}
		}
		if got := Limit(g, p, -1); !got.Equal(wantSet) {
			t.Fatalf("trial %d: Limit changed after faults", trial)
		}
	}
}

// TestConstructContainsFaultInjection covers the remaining governed
// entry point, including its seeded-searcher path.
func TestConstructContainsFaultInjection(t *testing.T) {
	g := workload.Figure1()
	q := sparql.ConstructQuery{
		Template: []sparql.TriplePattern{
			sparql.TP(sparql.V("X"), sparql.I("linked"), sparql.V("Y")),
		},
		Where: sparql.And{
			L: sparql.TP(sparql.V("X"), sparql.V("P"), sparql.V("Y")),
			R: sparql.TP(sparql.V("Y"), sparql.V("Q"), sparql.V("Z")),
		},
	}
	var target rdf.Triple
	found := false
	g.ForEach(func(t rdf.Triple) bool {
		target = rdf.T(t.S, "linked", t.O)
		found = true
		return false
	})
	if !found {
		t.Fatal("empty scenario graph")
	}

	b := sparql.NewBudget(context.Background())
	want, err := ConstructContainsBudget(g, q, target, b)
	if err != nil {
		t.Fatalf("governed ConstructContains failed: %v", err)
	}
	total := b.Steps()
	for n := int64(0); n <= total; n++ {
		fb := sparql.NewBudget(nil)
		fb.InjectFault(n, errInjectedExec)
		got, err := ConstructContainsBudget(g, q, target, fb)
		if err == nil {
			// Like Ask, the search may find its witness before step n.
			if !want || !got {
				t.Fatalf("fault@%d/%d: completed with %v, want fault or early witness", n, total, got)
			}
		} else if !errors.Is(err, errInjectedExec) {
			t.Fatalf("fault@%d/%d: err = %v", n, total, err)
		}
	}
	if got := ConstructContains(g, q, target); got != want {
		t.Fatalf("ConstructContains changed after faults: %v -> %v", want, got)
	}
	// Canceled context variant.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ConstructContainsCtx(ctx, g, q, target); !errors.Is(err, sparql.ErrCanceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
}
