package reduction

import (
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sat"
	"repro/internal/sparql"
)

// DPGadget is the Theorem 7.1 reduction from SAT-UNSAT to the
// evaluation problem for simple patterns: a graph G, a *simple* pattern
// P = NS(P_φ UNION (P_φ AND P_ψ)) and a mapping µ such that
//
//	µ ∈ ⟦P⟧_G  iff  φ is satisfiable and ψ is unsatisfiable.
//
// The two SAT gadgets use disjoint namespaces, so Lemma G.2 ensures
// they evaluate independently over the union graph; when ψ is
// satisfiable, every P_φ answer is properly subsumed by a joint answer
// and the NS removes it.
type DPGadget struct {
	Graph   *rdf.Graph
	Pattern sparql.Pattern
	Mapping sparql.Mapping
}

// NewDPGadget builds the reduction for the pair (φ, ψ).
func NewDPGadget(phi, psi *sat.CNF) DPGadget {
	gPhi := NewSATGadget(phi, "f")
	gPsi := NewSATGadget(psi, "g")
	pattern := sparql.NS{P: sparql.Union{
		L: gPhi.Pattern,
		R: sparql.And{L: gPhi.Pattern, R: gPsi.Pattern},
	}}
	return DPGadget{
		Graph:   gPhi.Graph.Union(gPsi.Graph),
		Pattern: pattern,
		Mapping: gPhi.Mapping,
	}
}

// Holds reports µ ∈ ⟦P⟧_G, deciding (φ, ψ) ∈ SAT-UNSAT.
func (d DPGadget) Holds() bool {
	return sparql.Eval(d.Graph, d.Pattern).Contains(d.Mapping)
}

// ConstructGadget is the Theorem 7.4 reduction from SAT to the
// evaluation problem for CONSTRUCT[AUF]: a graph G, a CONSTRUCT query Q
// with an AUF pattern, and a triple t with t ∈ ans(Q, G) iff φ is
// satisfiable.
type ConstructGadget struct {
	Graph  *rdf.Graph
	Query  sparql.ConstructQuery
	Triple rdf.Triple
}

// NewConstructGadget builds the reduction.  The pattern is the SAT
// gadget body *without* the SELECT (CONSTRUCT[AUF] admits no
// projection); the template mentions only the always-bound witness
// variable, so the satisfying-assignment bindings are irrelevant to
// the output triple.
func NewConstructGadget(phi *sat.CNF) ConstructGadget {
	g := NewSATGadget(phi, "c")
	sel := g.Pattern.(sparql.Select)
	w := sel.Vars[0]
	result := rdf.IRI("c_result")
	return ConstructGadget{
		Graph: g.Graph,
		Query: sparql.ConstructQuery{
			Template: []sparql.TriplePattern{sparql.TP(sparql.V(w), sparql.I(result), sparql.V(w))},
			Where:    sel.P,
		},
		Triple: rdf.T(g.Mapping[w], result, g.Mapping[w]),
	}
}

// Holds reports t ∈ ans(Q, G), deciding satisfiability of φ.
func (c ConstructGadget) Holds() bool {
	return sparql.ConstructContains(c.Graph, c.Query, c.Triple)
}

// HoldsFast is Holds using the constrained membership procedure.
func (d DPGadget) HoldsFast() bool {
	return sparql.Member(d.Graph, d.Pattern, d.Mapping)
}

// HoldsFast is Holds with the early-terminating search of the exec
// package (unify the target with the template, backtrack for a
// witness).
func (c ConstructGadget) HoldsFast() bool {
	return exec.ConstructContains(c.Graph, c.Query, c.Triple)
}
