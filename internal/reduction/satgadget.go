// Package reduction implements the complexity gadgets of Section 7 and
// Appendices G–I as executable reductions:
//
//   - the SAT gadget of Lemma G.1 (in its AUFS variant, see DESIGN.md);
//   - the SAT-UNSAT → simple-pattern reduction of Theorem 7.1
//     (DP-hardness of Eval(SP–SPARQL));
//   - the disjunct-combination construction of Lemma H.1 and the
//     Exact-M_k-Colorability pipeline of Theorem 7.2 (BH_2k-hardness);
//   - the MAX-ODD-SAT pipeline of Theorem 7.3 (P^NP_∥-hardness);
//   - the SAT → CONSTRUCT[AUF] membership reduction of Theorem 7.4.
//
// Every gadget returns concrete (graph, pattern/query, mapping/triple)
// instances whose evaluation decides the source problem, so the
// benchmark harness can demonstrate the complexity *shape* of each
// fragment, and the tests can validate the reductions against the DPLL
// solver on small instances.
package reduction

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/sat"
	"repro/internal/sparql"
)

// SATGadget is the output of the Lemma G.1 construction: a graph G_φ, a
// graph pattern P_φ and a mapping µ_φ such that
//
//	⟦P_φ⟧_{G_φ} = {µ_φ}  if φ is satisfiable,
//	⟦P_φ⟧_{G_φ} = ∅      otherwise,
//
// with dom(µ_φ) = the in-scope variables of P_φ, every triple pattern
// of P_φ mentioning an IRI (no variable-only patterns), and
// I(P_φ) = I(G_φ).
//
// The paper cites the SPARQL[AUF] construction of [30, Theorem 3.2];
// we use an equivalent SPARQL[AUFS] construction with a single
// projected witness variable (satisfying assignments are projected
// away, leaving the unique witness mapping).  All uses of the gadget in
// Theorems 7.1–7.3 place it under NS, whose bodies admit AUFS —
// Definition 5.3 — so every property the proofs rely on is preserved.
type SATGadget struct {
	Graph   *rdf.Graph
	Pattern sparql.Pattern
	Mapping sparql.Mapping
	// Namespace is the IRI/variable prefix, for Lemma G.2 disjointness.
	Namespace string
}

// NewSATGadget builds the gadget for a CNF formula.  The namespace
// prefixes every IRI and variable, so that gadgets for different
// formulas mention disjoint IRIs and variables (the hypothesis of
// Lemma G.2 and Lemma H.1).
func NewSATGadget(f *sat.CNF, namespace string) SATGadget {
	ns := func(s string) rdf.IRI { return rdf.IRI(namespace + "_" + s) }
	a, one, zero, val, wp := ns("a"), ns("one"), ns("zero"), ns("val"), ns("w")
	tru, fls, wit := ns("1"), ns("0"), ns("yes")

	g := rdf.FromTriples(
		rdf.T(a, val, tru), rdf.T(a, val, fls),
		rdf.T(a, one, tru), rdf.T(a, zero, fls),
		rdf.T(a, wp, wit),
	)

	xVar := func(v int) sparql.Var { return sparql.Var(fmt.Sprintf("%s_x%d", namespace, v)) }
	wVar := sparql.Var(namespace + "_w")

	// Enc(φ): each clause is a UNION over its literals; the literal x_i
	// forces ?x_i = 1 by matching (a, one, ?x_i), and ¬x_i forces
	// ?x_i = 0 via (a, zero, ?x_i).  Clauses are grouped by their
	// largest variable so that the AND chain interleaves value-domain
	// patterns with the clauses they complete: the bottom-up join then
	// prunes partial assignments as early as possible instead of first
	// materializing all 2^n value combinations.
	clausesByMaxVar := make([][]sparql.Pattern, f.NumVars+1)
	emptyClause := false
	for _, c := range f.Clauses {
		if len(c) == 0 {
			emptyClause = true
			continue
		}
		maxVar := 0
		lits := make([]sparql.Pattern, len(c))
		for i, l := range c {
			if l.Var() > maxVar {
				maxVar = l.Var()
			}
			pred := one
			if !l.Positive() {
				pred = zero
			}
			lits[i] = sparql.TP(sparql.I(a), sparql.I(pred), sparql.V(xVar(l.Var())))
		}
		clausesByMaxVar[maxVar] = append(clausesByMaxVar[maxVar], sparql.UnionOf(lits...))
	}

	parts := []sparql.Pattern{sparql.TP(sparql.I(a), sparql.I(wp), sparql.V(wVar))}
	if emptyClause {
		// Empty clause: the formula is unsatisfiable; encode with an
		// unmatchable triple pattern ((a, never, ?w) cannot match
		// because "never" only occurs in a self-loop), keeping
		// I(P_φ) = I(G_φ).
		parts = append(parts, sparql.TP(sparql.I(a), sparql.I(ns("never")), sparql.V(wVar)))
		g.Add(ns("never"), ns("never"), ns("never"))
	}
	for v := 1; v <= f.NumVars; v++ {
		// P0 for ?x_v: the variable ranges over {0, 1}...
		parts = append(parts, sparql.TP(sparql.I(a), sparql.I(val), sparql.V(xVar(v))))
		// ...followed by every clause whose variables are now all bound.
		parts = append(parts, clausesByMaxVar[v]...)
	}
	body := sparql.AndOf(parts...)
	pattern := sparql.NewSelect([]sparql.Var{wVar}, body)

	return SATGadget{
		Graph:     g,
		Pattern:   pattern,
		Mapping:   sparql.Mapping{wVar: wit},
		Namespace: namespace,
	}
}

// Holds evaluates the gadget: it reports µ_φ ∈ ⟦P_φ⟧_{G_φ}, which by
// construction decides satisfiability of φ.
func (s SATGadget) Holds() bool {
	return s.HoldsOn(s.Graph)
}

// HoldsOn evaluates the gadget pattern over an arbitrary graph (used
// when several gadgets share a combined graph, Lemma G.2).
func (s SATGadget) HoldsOn(g *rdf.Graph) bool {
	return sparql.Eval(g, s.Pattern).Contains(s.Mapping)
}

// HoldsFast is Holds using the constrained membership procedure
// (sparql.Member) instead of full evaluation; see experiment E21.
func (s SATGadget) HoldsFast() bool {
	return sparql.Member(s.Graph, s.Pattern, s.Mapping)
}
