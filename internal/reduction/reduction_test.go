package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sat"
	"repro/internal/sparql"
)

func TestSATGadgetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := sat.Random3CNF(rng, 4, 6)
	g := NewSATGadget(f, "t")
	// Lemma G.1 conditions: (1) dom(µ) = in-scope vars, I(P) = I(G).
	scope := sparql.InScopeVars(g.Pattern)
	if len(scope) != 1 || len(g.Mapping) != 1 {
		t.Fatalf("scope = %v, mapping = %v", scope, g.Mapping)
	}
	if _, ok := g.Mapping[scope[0]]; !ok {
		t.Fatal("mapping domain differs from pattern scope")
	}
	for _, iri := range sparql.IRIs(g.Pattern) {
		if !g.Graph.MentionsIRI(iri) {
			t.Fatalf("I(P) ⊄ I(G): %s", iri)
		}
	}
	// (2) every triple pattern mentions an IRI — check the fragment and
	// absence of variable-only triples syntactically.
	if !sparql.InFragment(g.Pattern, sparql.FragmentAUFS) {
		t.Fatal("gadget pattern outside AUFS")
	}
}

// TestSATGadgetMatchesDPLLQuick: µ_φ ∈ ⟦P_φ⟧_{G_φ} iff φ is satisfiable,
// and the answer set is exactly {µ_φ} or ∅ (Lemma G.1 (3)/(4)).
func TestSATGadgetMatchesDPLLQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		formula := sat.Random3CNF(rng, n, rng.Intn(4*n))
		gadget := NewSATGadget(formula, "t")
		answers := sparql.Eval(gadget.Graph, gadget.Pattern)
		if sat.Satisfiable(formula) {
			if answers.Len() != 1 || !answers.Contains(gadget.Mapping) {
				t.Logf("sat formula, answers = %v", answers)
				return false
			}
		} else if answers.Len() != 0 {
			t.Logf("unsat formula, answers = %v", answers)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSATGadgetEmptyClause(t *testing.T) {
	f := sat.NewCNF(3)
	f.Clauses = append(f.Clauses, sat.Clause{})
	g := NewSATGadget(f, "t")
	if g.Holds() {
		t.Fatal("gadget for formula with empty clause holds")
	}
	for _, iri := range sparql.IRIs(g.Pattern) {
		if !g.Graph.MentionsIRI(iri) {
			t.Fatalf("I(P) ⊄ I(G) in empty-clause case: %s", iri)
		}
	}
}

// TestDPGadgetTruthTable: the Theorem 7.1 instance holds exactly on
// SAT-UNSAT pairs, across all four satisfiability combinations.
func TestDPGadgetTruthTable(t *testing.T) {
	satF := sat.NewCNF(2)
	satF.AddClause(1, 2)
	unsatF := sat.NewCNF(1)
	unsatF.AddClause(sat.Lit(1))
	unsatF.AddClause(sat.Lit(-1))

	cases := []struct {
		name     string
		phi, psi *sat.CNF
		want     bool
	}{
		{"sat/unsat", satF, unsatF, true},
		{"sat/sat", satF, satF, false},
		{"unsat/unsat", unsatF, unsatF, false},
		{"unsat/sat", unsatF, satF, false},
	}
	for _, c := range cases {
		d := NewDPGadget(c.phi, c.psi)
		if !sparql.IsNSPattern(d.Pattern) {
			t.Errorf("%s: DP gadget is not an ns-pattern", c.name)
		}
		if got := d.Holds(); got != c.want {
			t.Errorf("%s: Holds = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDPGadgetMatchesDPLLQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := sat.Random3CNF(rng, 3+rng.Intn(3), rng.Intn(10))
		psi := sat.Random3CNF(rng, 3+rng.Intn(3), rng.Intn(10))
		want := sat.Satisfiable(phi) && !sat.Satisfiable(psi)
		return NewDPGadget(phi, psi).Holds() == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstructGadget(t *testing.T) {
	satF := sat.NewCNF(3)
	satF.AddClause(1, -2)
	satF.AddClause(2, 3)
	c := NewConstructGadget(satF)
	if !sparql.InFragment(c.Query.Where, sparql.FragmentAUF) {
		t.Fatalf("CONSTRUCT gadget pattern outside AUF: %s", c.Query.Where)
	}
	if !c.Holds() {
		t.Fatal("gadget for satisfiable formula does not hold")
	}
	unsatF := sat.NewCNF(1)
	unsatF.AddClause(sat.Lit(1))
	unsatF.AddClause(sat.Lit(-1))
	if NewConstructGadget(unsatF).Holds() {
		t.Fatal("gadget for unsatisfiable formula holds")
	}
}

func TestConstructGadgetMatchesDPLLQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := sat.Random3CNF(rng, 3+rng.Intn(3), rng.Intn(10))
		return NewConstructGadget(formula).Holds() == sat.Satisfiable(formula)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCombineLemmaH1: the combined instance holds iff some component
// instance holds, over all 2^n component outcomes (n = 2).
func TestCombineLemmaH1(t *testing.T) {
	satF := sat.NewCNF(2)
	satF.AddClause(1, 2)
	unsatF := sat.NewCNF(1)
	unsatF.AddClause(sat.Lit(1))
	unsatF.AddClause(sat.Lit(-1))
	mk := func(phi, psi *sat.CNF, ns string) Instance {
		gPhi := NewSATGadget(phi, ns+"_sat")
		gPsi := NewSATGadget(psi, ns+"_unsat")
		return Instance{
			Graph: gPhi.Graph.Union(gPsi.Graph),
			Pattern: sparql.NS{P: sparql.Union{
				L: gPhi.Pattern,
				R: sparql.And{L: gPhi.Pattern, R: gPsi.Pattern},
			}},
			Mapping: gPhi.Mapping,
		}
	}
	type combo struct{ a, b bool }
	for _, c := range []combo{{true, true}, {true, false}, {false, true}, {false, false}} {
		pick := func(holds bool, ns string) Instance {
			if holds {
				return mk(satF, unsatF, ns) // holds
			}
			return mk(satF, satF, ns) // does not hold
		}
		i1, i2 := pick(c.a, "p"), pick(c.b, "q")
		if i1.Holds() != c.a || i2.Holds() != c.b {
			t.Fatalf("component instances wrong for %v", c)
		}
		combined := Combine([]Instance{i1, i2})
		if !sparql.IsNSPattern(combined.Pattern) {
			t.Fatal("combined pattern is not an ns-pattern")
		}
		if got := combined.Holds(); got != (c.a || c.b) {
			t.Errorf("combo %v: combined.Holds = %v", c, got)
		}
	}
}

func TestCombinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Combine of no instances did not panic")
		}
	}()
	Combine(nil)
}

func TestChromaticGadget(t *testing.T) {
	// χ(C5) = 3.
	c5 := sat.Cycle(5)
	if !ChromaticGadget(c5, 3, "a").Holds() {
		t.Error("χ(C5)=3 instance does not hold")
	}
	if ChromaticGadget(c5, 2, "b").Holds() {
		t.Error("χ(C5)=2 instance holds")
	}
	if ChromaticGadget(c5, 4, "c").Holds() {
		t.Error("χ(C5)=4 instance holds")
	}
}

func TestExactSetChromaticInstance(t *testing.T) {
	// χ(K4) = 4: membership in {3, 4} holds, in {2, 3} does not.
	k4 := sat.Complete(4)
	if !ExactSetChromaticInstance(k4, []int{3, 4}).Holds() {
		t.Error("χ(K4) ∈ {3,4} instance does not hold")
	}
	if ExactSetChromaticInstance(k4, []int{2, 3}).Holds() {
		t.Error("χ(K4) ∈ {2,3} instance holds")
	}
}

func TestMkSet(t *testing.T) {
	got := MkSet(1)
	want := []int{7}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("MkSet(1) = %v, want %v", got, want)
	}
	got = MkSet(2)
	want = []int{13, 15}
	if len(got) != 2 || got[0] != 13 || got[1] != 15 {
		t.Fatalf("MkSet(2) = %v, want %v", got, want)
	}
}

func TestMaxOddSatInstance(t *testing.T) {
	// f over 4 vars: x1 ∧ ¬x2 — the maximizing assignment is
	// {x1, x3, x4} with 3 true variables: odd, so the instance holds.
	f := sat.NewCNF(4)
	f.AddClause(sat.Lit(1))
	f.AddClause(sat.Lit(-2))
	if m, ok := sat.MaxTrueVars(f); !ok || m != 3 {
		t.Fatalf("MaxTrueVars = %d, %v", m, ok)
	}
	inst := MaxOddSatInstance(f)
	if !sparql.IsNSPattern(inst.Pattern) {
		t.Fatal("MAX-ODD-SAT instance is not an ns-pattern")
	}
	if !inst.Holds() {
		t.Fatal("odd-maximum instance does not hold")
	}

	// g over 4 vars: ¬x1 ∧ ¬x2 — maximum is {x3, x4}: even.
	g := sat.NewCNF(4)
	g.AddClause(sat.Lit(-1))
	g.AddClause(sat.Lit(-2))
	if MaxOddSatInstance(g).Holds() {
		t.Fatal("even-maximum instance holds")
	}

	// Unsatisfiable formula: not in MAX-ODD-SAT.
	u := sat.NewCNF(2)
	u.AddClause(sat.Lit(1))
	u.AddClause(sat.Lit(-1))
	if MaxOddSatInstance(u).Holds() {
		t.Fatal("unsat instance holds")
	}
}

func TestMaxOddSatOddVarCount(t *testing.T) {
	// An odd variable count gets padded with a forced-false variable.
	f := sat.NewCNF(3)
	f.AddClause(sat.Lit(1))
	// Max true = 3 (x1, x2, x3): odd.
	inst := MaxOddSatInstance(f)
	if !inst.Holds() {
		t.Fatal("padded odd-maximum instance does not hold")
	}
}

func TestMaxOddSatMatchesOracleQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := sat.Random3CNF(rng, 4, rng.Intn(8))
		m, ok := sat.MaxTrueVars(formula)
		want := ok && m%2 == 1
		got := MaxOddSatInstance(formula).Holds()
		if got != want {
			t.Logf("formula\n%smax=%d ok=%v", formula, m, ok)
		}
		return got == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHoldsFastAgreesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := sat.Random3CNF(rng, 3+rng.Intn(3), rng.Intn(8))
		psi := sat.Random3CNF(rng, 3+rng.Intn(3), rng.Intn(8))
		g := NewSATGadget(phi, "t")
		if g.Holds() != g.HoldsFast() {
			t.Logf("SATGadget disagreement on\n%s", phi)
			return false
		}
		d := NewDPGadget(phi, psi)
		if d.Holds() != d.HoldsFast() {
			t.Logf("DPGadget disagreement")
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstructGadgetHoldsFastQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := sat.Random3CNF(rng, 3+rng.Intn(4), rng.Intn(12))
		c := NewConstructGadget(formula)
		return c.HoldsFast() == sat.Satisfiable(formula)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
