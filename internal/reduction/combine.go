package reduction

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/sat"
	"repro/internal/sparql"
)

// Instance is a membership instance (G, P, µ) for the evaluation
// problem: the question "µ ∈ ⟦P⟧_G?".
type Instance struct {
	Graph   *rdf.Graph
	Pattern sparql.Pattern
	Mapping sparql.Mapping
}

// Holds evaluates the instance.
func (in Instance) Holds() bool {
	return sparql.Eval(in.Graph, in.Pattern).Contains(in.Mapping)
}

// Combine implements Lemma H.1: given instances (µ_i, P_i, G_i) with
// pairwise disjoint variables and IRIs, where each P_i = NS(Q_i) is a
// simple pattern, it builds a single instance (µ, P, G) with P an
// ns-pattern of n disjuncts such that
//
//	µ ∈ ⟦P⟧_G  iff  µ_i ∈ ⟦P_i⟧_{G_i} for some i.
//
// The graph gains a marker triple (µ(?X), c_?X, d_?X) per variable, and
// each disjunct joins Q_i with the marker patterns of the variables it
// does not bind, so that every disjunct binds exactly dom(µ).
func Combine(items []Instance) Instance {
	if len(items) == 0 {
		panic("reduction: Combine of no instances")
	}
	g := rdf.NewGraph()
	mu := make(sparql.Mapping)
	for _, it := range items {
		g.AddAll(it.Graph)
		for v, iri := range it.Mapping {
			if _, dup := mu[v]; dup {
				panic(fmt.Sprintf("reduction: instances share variable ?%s", v))
			}
			mu[v] = iri
		}
	}
	cIRI := func(v sparql.Var) rdf.IRI { return rdf.IRI("c_" + string(v)) }
	dIRI := func(v sparql.Var) rdf.IRI { return rdf.IRI("d_" + string(v)) }
	for v, iri := range mu {
		g.Add(iri, cIRI(v), dIRI(v))
	}
	var disjuncts []sparql.Pattern
	for _, it := range items {
		ns, ok := it.Pattern.(sparql.NS)
		if !ok {
			panic(fmt.Sprintf("reduction: Combine requires simple patterns, got %s", it.Pattern))
		}
		parts := []sparql.Pattern{ns.P}
		for _, v := range mu.Domain() {
			if _, bound := it.Mapping[v]; !bound {
				parts = append(parts, sparql.TP(sparql.V(v), sparql.I(cIRI(v)), sparql.I(dIRI(v))))
			}
		}
		disjuncts = append(disjuncts, sparql.NS{P: sparql.AndOf(parts...)})
	}
	return Instance{Graph: g, Pattern: sparql.UnionOf(disjuncts...), Mapping: mu}
}

// ChromaticGadget is the DP building block of Theorem 7.2: an instance
// deciding "χ(H) = m" (m-colorable and not (m-1)-colorable), built from
// the SAT-UNSAT gadget over coloring encodings.  The namespace keeps
// several chromatic gadgets disjoint.
func ChromaticGadget(h *sat.UGraph, m int, namespace string) Instance {
	colM := sat.ColoringCNF(h, m)
	colM1 := sat.ColoringCNF(h, m-1)
	gPhi := NewSATGadget(colM, namespace+"_sat")
	gPsi := NewSATGadget(colM1, namespace+"_unsat")
	pattern := sparql.NS{P: sparql.Union{
		L: gPhi.Pattern,
		R: sparql.And{L: gPhi.Pattern, R: gPsi.Pattern},
	}}
	return Instance{
		Graph:   gPhi.Graph.Union(gPsi.Graph),
		Pattern: pattern,
		Mapping: gPhi.Mapping,
	}
}

// ExactSetChromaticInstance is the Theorem 7.2 pipeline for an
// arbitrary finite set M of candidate chromatic numbers: it returns a
// USP instance (with |M| disjuncts) deciding χ(H) ∈ M.  The paper's
// Exact-M_k-Colorability uses M_k = {6k+1, 6k+3, …, 8k−1}; see MkSet.
func ExactSetChromaticInstance(h *sat.UGraph, ms []int) Instance {
	items := make([]Instance, len(ms))
	for i, m := range ms {
		items[i] = ChromaticGadget(h, m, fmt.Sprintf("chi%d", m))
	}
	return Combine(items)
}

// MkSet returns M_k = {6k+1, 6k+3, …, 8k−1} of Theorem 7.2.
func MkSet(k int) []int {
	var ms []int
	for m := 6*k + 1; m <= 8*k-1; m += 2 {
		ms = append(ms, m)
	}
	return ms
}

// MaxOddSatInstance is the Theorem 7.3 pipeline: given a CNF φ over an
// even number m of variables, it returns a USP instance with m/2
// disjuncts such that the instance holds iff φ ∈ MAX-ODD-SAT — the
// satisfying assignment with the most true variables assigns true to
// an odd number of them.  Each odd k contributes the SAT-UNSAT pair
// (φ_k, φ_{k+1}) with φ_k = φ ∧ "at least k variables true"
// (cardinality-encoded, Appendix I).
func MaxOddSatInstance(f *sat.CNF) Instance {
	m := f.NumVars
	if m%2 != 0 {
		// As in the paper: add a fresh variable forced to false.
		f = f.Clone()
		r := f.NewVar()
		f.AddClause(sat.Lit(-r))
		m = f.NumVars
	}
	var items []Instance
	for k := 1; k <= m-1; k += 2 {
		phiK := sat.WithAtLeastKTrue(f, k)
		phiK1 := sat.WithAtLeastKTrue(f, k+1)
		ns := fmt.Sprintf("odd%d", k)
		gPhi := NewSATGadget(phiK, ns+"_sat")
		gPsi := NewSATGadget(phiK1, ns+"_unsat")
		items = append(items, Instance{
			Graph: gPhi.Graph.Union(gPsi.Graph),
			Pattern: sparql.NS{P: sparql.Union{
				L: gPhi.Pattern,
				R: sparql.And{L: gPhi.Pattern, R: gPsi.Pattern},
			}},
			Mapping: gPhi.Mapping,
		})
	}
	return Combine(items)
}

// HoldsFast is Holds using the constrained membership procedure.
func (in Instance) HoldsFast() bool {
	return sparql.Member(in.Graph, in.Pattern, in.Mapping)
}
