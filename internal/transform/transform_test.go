package transform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func randPatternAndGraph(rng *rand.Rand, ops []sparql.Op, depth int) (sparql.Pattern, *rdf.Graph) {
	p := workload.RandomPattern(rng, workload.PatternOpts{Depth: depth, Ops: ops})
	g := workload.RandomGraph(rng, rng.Intn(20), nil)
	return p, g
}

func TestFreshVars(t *testing.T) {
	p := sparql.TP(sparql.V("m_0"), sparql.I("a"), sparql.V("X"))
	f := NewFreshVars(p)
	v1 := f.Fresh("m")
	if v1 == "m_0" {
		t.Fatal("Fresh returned a used variable")
	}
	v2 := f.Fresh("m")
	if v1 == v2 {
		t.Fatal("Fresh returned the same variable twice")
	}
	f.Avoid("zz_0")
	if f.Fresh("zz") == "zz_0" {
		t.Fatal("Avoid was ignored")
	}
}

func TestMinusSemantics(t *testing.T) {
	// MINUS must keep exactly the mappings not compatible with any
	// mapping of the right side (direct Diff on evaluated sets).
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1, g := randPatternAndGraph(rng, []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter}, 2)
		p2 := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Ops: []sparql.Op{sparql.OpAnd, sparql.OpUnion}})
		want := sparql.Eval(g, p1).Diff(sparql.Eval(g, p2))
		got := sparql.Eval(g, Minus(p1, p2))
		return got.Equal(want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinusOnEmptyGraph(t *testing.T) {
	g := rdf.NewGraph()
	p := Minus(sparql.TP(sparql.V("x"), sparql.I("a"), sparql.I("b")), sparql.TP(sparql.V("x"), sparql.I("c"), sparql.V("y")))
	if r := sparql.Eval(g, p); r.Len() != 0 {
		t.Fatalf("eval on empty graph = %v", r)
	}
}

func TestOptToNSSubsumptionEquivalentQuick(t *testing.T) {
	// E15: (P1 OPT P2) and NS(P1 UNION (P1 AND P2)) are
	// subsumption-equivalent on every graph.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, nil, 3)
		return sparql.Eval(g, p).SubsumptionEquivalent(sparql.Eval(g, OptToNS(p)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptToNSExactOnExample31(t *testing.T) {
	p := sparql.Opt{
		L: sparql.TP(sparql.V("X"), sparql.I("was_born_in"), sparql.I("Chile")),
		R: sparql.TP(sparql.V("X"), sparql.I("email"), sparql.V("Y")),
	}
	q := OptToNS(p)
	if sparql.Ops(q)[sparql.OpOpt] {
		t.Fatal("OptToNS left an OPT behind")
	}
	for _, g := range []*rdf.Graph{workload.Figure2G1(), workload.Figure2G2()} {
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, q)) {
			t.Fatalf("mismatch on %v", g)
		}
	}
}

func TestEliminateNSEquivalentQuick(t *testing.T) {
	// Theorem 5.1: EliminateNS produces an NS-free pattern with exactly
	// the same answers on every graph.
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Keep patterns small: the construction is exponential in the
		// number of in-scope variables.
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 3,
			Vars:  []sparql.Var{"X", "Y", "Z"},
		})
		g := workload.RandomGraph(rng, rng.Intn(15), nil)
		q := EliminateNS(p)
		if sparql.Ops(q)[sparql.OpNS] {
			t.Logf("EliminateNS left an NS behind in %s", q)
			return false
		}
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, q)) {
			t.Logf("pattern %s\nrewritten %s\ngraph\n%s", p, q, g)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateNSNoPruneEquivalentQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 2,
			Vars:  []sparql.Var{"X", "Y"},
		})
		g := workload.RandomGraph(rng, rng.Intn(12), nil)
		return sparql.Eval(g, p).Equal(sparql.Eval(g, EliminateNSNoPrune(p)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateNSPruneSmaller(t *testing.T) {
	// On a pattern whose variables are all certainly bound, pruning
	// collapses the subset enumeration to a single disjunct.
	p := sparql.NS{P: sparql.And{
		L: sparql.TP(sparql.V("X"), sparql.I("a"), sparql.V("Y")),
		R: sparql.TP(sparql.V("Y"), sparql.I("b"), sparql.V("Z")),
	}}
	pruned, full := EliminateNS(p), EliminateNSNoPrune(p)
	if sparql.Size(pruned) >= sparql.Size(full) {
		t.Fatalf("pruned size %d, full size %d", sparql.Size(pruned), sparql.Size(full))
	}
}

func TestCertainlyBound(t *testing.T) {
	p := sparql.And{
		L: sparql.Opt{
			L: sparql.TP(sparql.V("X"), sparql.I("a"), sparql.I("b")),
			R: sparql.TP(sparql.V("X"), sparql.I("c"), sparql.V("Y")),
		},
		R: sparql.Union{
			L: sparql.TP(sparql.V("Z"), sparql.I("d"), sparql.V("W")),
			R: sparql.TP(sparql.V("Z"), sparql.I("e"), sparql.I("f")),
		},
	}
	cb := CertainlyBound(p)
	for _, v := range []sparql.Var{"X", "Z"} {
		if _, ok := cb[v]; !ok {
			t.Errorf("certainly bound missing %s", v)
		}
	}
	for _, v := range []sparql.Var{"Y", "W"} {
		if _, ok := cb[v]; ok {
			t.Errorf("%s wrongly reported certainly bound", v)
		}
	}
}

func TestCertainlyBoundSoundQuick(t *testing.T) {
	// Every answer must bind every certainly-bound variable.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, nil, 3)
		cb := CertainlyBound(p)
		for _, mu := range sparql.Eval(g, p).Mappings() {
			for v := range cb {
				if _, ok := mu[v]; !ok {
					t.Logf("pattern %s produced %s missing certainly-bound %s", p, mu, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnionNormalFormAUFSQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect}, 3)
		ds, err := UnionNormalForm(p)
		if err != nil {
			t.Logf("UNF failed on AUFS pattern %s: %v", p, err)
			return false
		}
		for _, d := range ds {
			if sparql.Ops(d)[sparql.OpUnion] {
				t.Logf("disjunct %s still contains UNION", d)
				return false
			}
		}
		return sparql.Eval(g, p).Equal(sparql.Eval(g, sparql.UnionOf(ds...)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnionNormalFormOptLeftDistribution(t *testing.T) {
	p := sparql.Opt{
		L: sparql.Union{
			L: sparql.TP(sparql.V("X"), sparql.I("a"), sparql.I("b")),
			R: sparql.TP(sparql.V("X"), sparql.I("c"), sparql.I("d")),
		},
		R: sparql.TP(sparql.V("X"), sparql.I("e"), sparql.V("Y")),
	}
	ds, err := UnionNormalForm(p)
	if err != nil || len(ds) != 2 {
		t.Fatalf("ds = %v, err = %v", ds, err)
	}
	g := rdf.FromTriples(rdf.T("1", "a", "b"), rdf.T("2", "c", "d"), rdf.T("1", "e", "x"))
	if !sparql.Eval(g, p).Equal(sparql.Eval(g, sparql.UnionOf(ds...))) {
		t.Fatal("UNF changed semantics")
	}
}

func TestUnionNormalFormRejectsUnionUnderOptRight(t *testing.T) {
	p := sparql.Opt{
		L: sparql.TP(sparql.V("X"), sparql.I("a"), sparql.I("b")),
		R: sparql.Union{
			L: sparql.TP(sparql.V("X"), sparql.I("c"), sparql.V("Y")),
			R: sparql.TP(sparql.V("X"), sparql.I("d"), sparql.V("Z")),
		},
	}
	if _, err := UnionNormalForm(p); err == nil {
		t.Fatal("UNF accepted UNION under the right side of OPT")
	}
	if _, err := UnionNormalForm(sparql.NS{P: p.R}); err == nil {
		t.Fatal("UNF accepted UNION under NS")
	}
}

func TestSelectFreeLemmaF2Quick(t *testing.T) {
	// Lemma F.2: µ ∈ ⟦P⟧_G iff there is µ' ∈ ⟦P_sf⟧_G with µ ⪯ µ' and
	// dom(µ) = dom(µ') ∩ var(P).
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect, sparql.OpOpt}, 3)
		sf := SelectFree(p)
		if sparql.Ops(sf)[sparql.OpSelect] {
			t.Logf("SelectFree left a SELECT behind in %s", sf)
			return false
		}
		pv := make(map[sparql.Var]struct{})
		for _, v := range sparql.Vars(p) {
			pv[v] = struct{}{}
		}
		restrictToP := func(mu sparql.Mapping) sparql.Mapping {
			out := make(sparql.Mapping)
			for v, i := range mu {
				if _, ok := pv[v]; ok {
					out[v] = i
				}
			}
			return out
		}
		left := sparql.Eval(g, p)
		right := sparql.Eval(g, sf)
		// Direction 1: every µ ∈ ⟦P⟧ is witnessed.
		for _, mu := range left.Mappings() {
			found := false
			for _, nu := range right.Mappings() {
				if mu.SubsumedBy(nu) && restrictToP(nu).Equal(mu) {
					found = true
					break
				}
			}
			if !found {
				t.Logf("pattern %s: %s has no witness in ⟦P_sf⟧", p, mu)
				return false
			}
		}
		// Direction 2: every µ' ∈ ⟦P_sf⟧ restricts to an answer of P.
		for _, nu := range right.Mappings() {
			if !left.Contains(restrictToP(nu)) {
				t.Logf("pattern %s: %s restricts to a non-answer", p, nu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstructSelectFreeEquivalentQuick(t *testing.T) {
	// Proposition 6.7 at the CONSTRUCT level: the SELECT-free version
	// produces the same output graph.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect}, 3)
		// Template over variables of P only (w.l.o.g. in the paper).
		vars := sparql.Vars(p)
		if len(vars) == 0 {
			return true
		}
		tmpl := []sparql.TriplePattern{
			sparql.TP(sparql.V(vars[rng.Intn(len(vars))]), sparql.I("out"), sparql.V(vars[rng.Intn(len(vars))])),
			sparql.TP(sparql.I("const"), sparql.I("p"), sparql.V(vars[rng.Intn(len(vars))])),
		}
		q := sparql.ConstructQuery{Template: tmpl, Where: p}
		qsf := ConstructSelectFree(q)
		if sparql.Ops(qsf.Where)[sparql.OpSelect] {
			return false
		}
		return sparql.EvalConstruct(g, q).Equal(sparql.EvalConstruct(g, qsf))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstructNSEquivalentQuick(t *testing.T) {
	// Lemma 6.3: CONSTRUCT H WHERE P ≡ CONSTRUCT H WHERE NS(P).
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, g := randPatternAndGraph(rng, nil, 3)
		vars := sparql.Vars(p)
		tmpl := []sparql.TriplePattern{sparql.TP(sparql.I("s"), sparql.I("p"), sparql.I("o"))}
		if len(vars) > 0 {
			tmpl = append(tmpl,
				sparql.TP(sparql.V(vars[rng.Intn(len(vars))]), sparql.I("rel"), sparql.V(vars[rng.Intn(len(vars))])))
		}
		q := sparql.ConstructQuery{Template: tmpl, Where: p}
		return sparql.EvalConstruct(g, q).Equal(sparql.EvalConstruct(g, ConstructNS(q)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRenameVars(t *testing.T) {
	p := sparql.Filter{
		P: sparql.NewSelect([]sparql.Var{"X", "Y"}, sparql.TP(sparql.V("X"), sparql.I("a"), sparql.V("Y"))),
		Cond: sparql.AndCond{
			L: sparql.Bound{X: "X"},
			R: sparql.EqVars{X: "X", Y: "Y"},
		},
	}
	q := RenameVars(p, map[sparql.Var]sparql.Var{"X": "Q"})
	vs := sparql.Vars(q)
	for _, v := range vs {
		if v == "X" {
			t.Fatalf("X survived renaming: %s", q)
		}
	}
	if len(vs) != 2 {
		t.Fatalf("vars after rename = %v", vs)
	}
	// Identity substitution returns structurally equal pattern.
	if !sparql.Equal(RenameVars(p, nil), p) {
		t.Fatal("empty substitution changed pattern")
	}
}

func TestEliminateNSOnWitnessPattern(t *testing.T) {
	// The running NS example: NS(P1 UNION (P1 AND P2)) should evaluate
	// like P1 OPT P2 after elimination.
	p1 := sparql.TP(sparql.V("X"), sparql.I("was_born_in"), sparql.I("Chile"))
	p2 := sparql.TP(sparql.V("X"), sparql.I("email"), sparql.V("Y"))
	ns := sparql.NS{P: sparql.Union{L: p1, R: sparql.And{L: p1, R: p2}}}
	q := EliminateNS(ns)
	opt := sparql.Opt{L: p1, R: p2}
	for _, g := range []*rdf.Graph{workload.Figure2G1(), workload.Figure2G2(), rdf.NewGraph()} {
		if !sparql.Eval(g, q).Equal(sparql.Eval(g, opt)) {
			t.Fatalf("mismatch on graph\n%s\neliminated %s", g, q)
		}
	}
}

func TestRenameTemplateVars(t *testing.T) {
	tmpl := []sparql.TriplePattern{
		sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("Y")),
		sparql.TP(sparql.I("s"), sparql.V("X"), sparql.I("o")),
	}
	out := RenameTemplateVars(tmpl, map[sparql.Var]sparql.Var{"X": "Z"})
	if out[0].S.Var() != "Z" || out[1].P.Var() != "Z" {
		t.Fatalf("rename missed: %v", out)
	}
	if out[0].O.Var() != "Y" || !sparql.Equal(tmpl[0], sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("Y"))) {
		t.Fatal("rename touched the wrong things or mutated input")
	}
}
