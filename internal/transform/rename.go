package transform

import "repro/internal/sparql"

// RenameVars applies a variable substitution to a pattern, renaming
// occurrences in triple patterns, FILTER conditions and SELECT lists.
// Variables not in the substitution are left unchanged.
func RenameVars(p sparql.Pattern, subst map[sparql.Var]sparql.Var) sparql.Pattern {
	if len(subst) == 0 {
		return p
	}
	switch q := p.(type) {
	case sparql.TriplePattern:
		return sparql.TP(renameValue(q.S, subst), renameValue(q.P, subst), renameValue(q.O, subst))
	case sparql.And:
		return sparql.And{L: RenameVars(q.L, subst), R: RenameVars(q.R, subst)}
	case sparql.Union:
		return sparql.Union{L: RenameVars(q.L, subst), R: RenameVars(q.R, subst)}
	case sparql.Opt:
		return sparql.Opt{L: RenameVars(q.L, subst), R: RenameVars(q.R, subst)}
	case sparql.Filter:
		return sparql.Filter{P: RenameVars(q.P, subst), Cond: RenameCondVars(q.Cond, subst)}
	case sparql.Select:
		vars := make([]sparql.Var, len(q.Vars))
		for i, v := range q.Vars {
			vars[i] = renameVar(v, subst)
		}
		return sparql.NewSelect(vars, RenameVars(q.P, subst))
	case sparql.NS:
		return sparql.NS{P: RenameVars(q.P, subst)}
	default:
		panic("transform: unknown pattern type")
	}
}

// RenameCondVars applies a variable substitution to a condition.
func RenameCondVars(c sparql.Condition, subst map[sparql.Var]sparql.Var) sparql.Condition {
	switch r := c.(type) {
	case sparql.Bound:
		return sparql.Bound{X: renameVar(r.X, subst)}
	case sparql.EqConst:
		return sparql.EqConst{X: renameVar(r.X, subst), C: r.C}
	case sparql.EqVars:
		return sparql.EqVars{X: renameVar(r.X, subst), Y: renameVar(r.Y, subst)}
	case sparql.Not:
		return sparql.Not{R: RenameCondVars(r.R, subst)}
	case sparql.AndCond:
		return sparql.AndCond{L: RenameCondVars(r.L, subst), R: RenameCondVars(r.R, subst)}
	case sparql.OrCond:
		return sparql.OrCond{L: RenameCondVars(r.L, subst), R: RenameCondVars(r.R, subst)}
	case sparql.TrueCond, sparql.FalseCond:
		return r
	default:
		panic("transform: unknown condition type")
	}
}

// RenameTemplateVars applies a variable substitution to CONSTRUCT
// template triples.
func RenameTemplateVars(ts []sparql.TriplePattern, subst map[sparql.Var]sparql.Var) []sparql.TriplePattern {
	out := make([]sparql.TriplePattern, len(ts))
	for i, t := range ts {
		out[i] = sparql.TP(renameValue(t.S, subst), renameValue(t.P, subst), renameValue(t.O, subst))
	}
	return out
}

func renameValue(v sparql.Value, subst map[sparql.Var]sparql.Var) sparql.Value {
	if v.IsVar() {
		return sparql.V(renameVar(v.Var(), subst))
	}
	return v
}

func renameVar(v sparql.Var, subst map[sparql.Var]sparql.Var) sparql.Var {
	if w, ok := subst[v]; ok {
		return w
	}
	return v
}
