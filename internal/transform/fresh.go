// Package transform implements the constructive rewrites of the paper:
//
//   - the OPT → NS encoding of Section 5.1;
//   - the MINUS encoding of Appendix D;
//   - the bound-partition of Lemma D.2 and NS elimination (Theorem 5.1);
//   - UNION normal form for the monotone fragments (Proposition D.1);
//   - the SELECT-free version of Definition F.1 (Proposition 6.7);
//   - CONSTRUCT normalization via NS (Lemma 6.3).
//
// Every rewrite returns a new pattern; inputs are never mutated.
package transform

import (
	"fmt"

	"repro/internal/sparql"
)

// FreshVars hands out variables guaranteed to be distinct from a given
// set of used variables and from each other.
type FreshVars struct {
	used map[sparql.Var]struct{}
	next int
}

// NewFreshVars returns a generator that avoids every variable occurring
// in the given patterns.
func NewFreshVars(ps ...sparql.Pattern) *FreshVars {
	f := &FreshVars{used: make(map[sparql.Var]struct{})}
	for _, p := range ps {
		for _, v := range sparql.Vars(p) {
			f.used[v] = struct{}{}
		}
	}
	return f
}

// Avoid marks additional variables as used.
func (f *FreshVars) Avoid(vs ...sparql.Var) {
	for _, v := range vs {
		f.used[v] = struct{}{}
	}
}

// Fresh returns a new variable with the given name hint.
func (f *FreshVars) Fresh(hint string) sparql.Var {
	for {
		v := sparql.Var(fmt.Sprintf("%s_%d", hint, f.next))
		f.next++
		if _, ok := f.used[v]; !ok {
			f.used[v] = struct{}{}
			return v
		}
	}
}
