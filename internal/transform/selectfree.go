package transform

import "repro/internal/sparql"

// SelectFree computes the SELECT-free version P_sf of Definition F.1:
// every (SELECT V WHERE P') node is removed and the variables that it
// projected away are renamed to globally fresh variables.  By Lemma F.2,
// for every graph G a mapping µ is in ⟦P⟧_G iff some µ' ∈ ⟦P_sf⟧_G has
// µ ⪯ µ' and dom(µ) = dom(µ') ∩ var(P); in particular the two patterns
// produce the same triples when used under a CONSTRUCT template whose
// variables occur in P (Proposition 6.7).
func SelectFree(p sparql.Pattern) sparql.Pattern {
	f := NewFreshVars(p)
	return selectFree(p, f)
}

func selectFree(p sparql.Pattern, f *FreshVars) sparql.Pattern {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return q
	case sparql.And:
		return sparql.And{L: selectFree(q.L, f), R: selectFree(q.R, f)}
	case sparql.Union:
		return sparql.Union{L: selectFree(q.L, f), R: selectFree(q.R, f)}
	case sparql.Opt:
		return sparql.Opt{L: selectFree(q.L, f), R: selectFree(q.R, f)}
	case sparql.Filter:
		return sparql.Filter{P: selectFree(q.P, f), Cond: q.Cond}
	case sparql.NS:
		return sparql.NS{P: selectFree(q.P, f)}
	case sparql.Select:
		body := selectFree(q.P, f)
		keep := make(map[sparql.Var]struct{}, len(q.Vars))
		for _, v := range q.Vars {
			keep[v] = struct{}{}
		}
		subst := make(map[sparql.Var]sparql.Var)
		for _, v := range sparql.Vars(q.P) {
			if _, ok := keep[v]; !ok {
				subst[v] = f.Fresh("sf")
			}
		}
		return RenameVars(body, subst)
	default:
		panic("transform: unknown pattern type")
	}
}

// ConstructSelectFree applies Proposition 6.7: it replaces the pattern
// of a CONSTRUCT query by its SELECT-free version, turning a
// CONSTRUCT[AUFS] query into an equivalent CONSTRUCT[AUF] query.
func ConstructSelectFree(q sparql.ConstructQuery) sparql.ConstructQuery {
	return sparql.ConstructQuery{Template: q.Template, Where: SelectFree(q.Where)}
}

// ConstructNS applies Lemma 6.3: (CONSTRUCT H WHERE P) is equivalent to
// (CONSTRUCT H WHERE NS(P)), since a properly subsumed mapping can only
// instantiate template triples that its subsumer also instantiates.
func ConstructNS(q sparql.ConstructQuery) sparql.ConstructQuery {
	return sparql.ConstructQuery{Template: q.Template, Where: sparql.NS{P: q.Where}}
}
