package transform

import (
	"fmt"

	"repro/internal/sparql"
)

// UnionNormalForm rewrites a pattern into a list of UNION-free
// disjuncts whose union is equivalent to the input (Proposition D.1).
// It supports the monotone operators AND, FILTER and SELECT fully, and
// OPT through its left argument (left-outer join distributes over union
// on the left).  A UNION occurring under the *right* argument of an OPT
// or under NS cannot be distributed out (the classic counterexample is
// the errata to [29]); in that case an error is returned.
//
// For patterns in SPARQL[AUFS] — the fragment where the paper needs the
// normal form — UnionNormalForm always succeeds.
func UnionNormalForm(p sparql.Pattern) ([]sparql.Pattern, error) {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return []sparql.Pattern{q}, nil
	case sparql.Union:
		l, err := UnionNormalForm(q.L)
		if err != nil {
			return nil, err
		}
		r, err := UnionNormalForm(q.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case sparql.And:
		l, err := UnionNormalForm(q.L)
		if err != nil {
			return nil, err
		}
		r, err := UnionNormalForm(q.R)
		if err != nil {
			return nil, err
		}
		out := make([]sparql.Pattern, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				out = append(out, sparql.And{L: a, R: b})
			}
		}
		return out, nil
	case sparql.Opt:
		l, err := UnionNormalForm(q.L)
		if err != nil {
			return nil, err
		}
		if hasUnion(q.R) {
			return nil, fmt.Errorf("transform: UNION under the right argument of OPT cannot be normalized: %s", q.R)
		}
		out := make([]sparql.Pattern, len(l))
		for i, a := range l {
			out[i] = sparql.Opt{L: a, R: q.R}
		}
		return out, nil
	case sparql.Filter:
		inner, err := UnionNormalForm(q.P)
		if err != nil {
			return nil, err
		}
		out := make([]sparql.Pattern, len(inner))
		for i, a := range inner {
			out[i] = sparql.Filter{P: a, Cond: q.Cond}
		}
		return out, nil
	case sparql.Select:
		inner, err := UnionNormalForm(q.P)
		if err != nil {
			return nil, err
		}
		out := make([]sparql.Pattern, len(inner))
		for i, a := range inner {
			out[i] = sparql.Select{Vars: q.Vars, P: a}
		}
		return out, nil
	case sparql.NS:
		if hasUnion(q.P) {
			return nil, fmt.Errorf("transform: UNION under NS cannot be normalized: %s", q)
		}
		return []sparql.Pattern{q}, nil
	default:
		panic("transform: unknown pattern type")
	}
}

func hasUnion(p sparql.Pattern) bool {
	return sparql.Ops(p)[sparql.OpUnion]
}
