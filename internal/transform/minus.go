package transform

import "repro/internal/sparql"

// Minus builds the MINUS encoding of Appendix D:
//
//	P1 MINUS P2 = (P1 OPT (P2 AND (?x1, ?x2, ?x3))) FILTER ¬bound(?x1)
//
// with ?x1, ?x2, ?x3 fresh.  Over any graph G it retrieves the mappings
// of ⟦P1⟧_G that are not compatible with any mapping of ⟦P2⟧_G.
//
// The encoding relies on (?x1, ?x2, ?x3) matching every triple of a
// non-empty graph: if some µ2 ∈ ⟦P2⟧_G is compatible with µ1, the OPT
// extends µ1 and binds ?x1, and the filter rejects it.  If G is empty,
// ⟦P2⟧_G is empty too and the filter passes everything — also correct.
func Minus(p1, p2 sparql.Pattern) sparql.Pattern {
	f := NewFreshVars(p1, p2)
	x1, x2, x3 := f.Fresh("m"), f.Fresh("m"), f.Fresh("m")
	return sparql.Filter{
		P: sparql.Opt{
			L: p1,
			R: sparql.And{
				L: p2,
				R: sparql.TP(sparql.V(x1), sparql.V(x2), sparql.V(x3)),
			},
		},
		Cond: sparql.Not{R: sparql.Bound{X: x1}},
	}
}

// OptToNS rewrites every OPT in the pattern using the NS operator,
// following the equivalence of Section 5.1:
//
//	(P1 OPT P2) ≡ NS(P1 UNION (P1 AND P2))
//
// Note that the equivalence holds literally only when ⟦P1⟧_G has no
// internally subsumed mappings (which is the common case, and always
// the case for the subsumption-free patterns of Section 5.2); the NS on
// the right-hand side additionally removes mappings of ⟦P1⟧_G that were
// already subsumed within ⟦P1⟧_G.  The two sides are always
// subsumption-equivalent.  See the E15 experiment.
func OptToNS(p sparql.Pattern) sparql.Pattern {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return q
	case sparql.And:
		return sparql.And{L: OptToNS(q.L), R: OptToNS(q.R)}
	case sparql.Union:
		return sparql.Union{L: OptToNS(q.L), R: OptToNS(q.R)}
	case sparql.Opt:
		l, r := OptToNS(q.L), OptToNS(q.R)
		return sparql.NS{P: sparql.Union{L: l, R: sparql.And{L: l, R: r}}}
	case sparql.Filter:
		return sparql.Filter{P: OptToNS(q.P), Cond: q.Cond}
	case sparql.Select:
		return sparql.Select{Vars: q.Vars, P: OptToNS(q.P)}
	case sparql.NS:
		return sparql.NS{P: OptToNS(q.P)}
	default:
		panic("transform: unknown pattern type")
	}
}
