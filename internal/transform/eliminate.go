package transform

import (
	"sort"

	"repro/internal/sparql"
)

// EliminateNS rewrites a pattern of NS-SPARQL into an equivalent
// pattern of plain SPARQL (Theorem 5.1).  The construction follows
// Appendix D, using the bound-partition of Lemma D.2: for an occurrence
// NS(Q) with in-scope variables X, every answer of Q binds some subset
// V ⊆ X, and
//
//	NS(Q) ≡ ⋃_{V ⊆ X}  Q_V MINUS (⋃_{W ⊋ V} Q_W)
//
// where Q_V = Q FILTER (⋀_{v∈V} bound(v) ∧ ⋀_{v∈X∖V} ¬bound(v)) fixes
// the binding domain to exactly V.  A mapping with domain V is properly
// subsumed in ⟦Q⟧_G exactly when it is compatible with a mapping whose
// domain is a strict superset of V, which is what the MINUS removes.
//
// The output size is exponential in |X| per NS occurrence (and the
// paper proves a double-exponential bound for nested NS; see
// BenchmarkE7_NSElimination).  EliminateNS prunes subsets V that miss a
// certainly-bound variable of Q, whose Q_V is syntactically empty; use
// EliminateNSNoPrune for the unpruned construction.
func EliminateNS(p sparql.Pattern) sparql.Pattern { return eliminateNS(p, true) }

// EliminateNSNoPrune is EliminateNS without the certainly-bound subset
// pruning; kept as the ablation baseline for experiment E7.
func EliminateNSNoPrune(p sparql.Pattern) sparql.Pattern { return eliminateNS(p, false) }

func eliminateNS(p sparql.Pattern, prune bool) sparql.Pattern {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return q
	case sparql.And:
		return sparql.And{L: eliminateNS(q.L, prune), R: eliminateNS(q.R, prune)}
	case sparql.Union:
		return sparql.Union{L: eliminateNS(q.L, prune), R: eliminateNS(q.R, prune)}
	case sparql.Opt:
		return sparql.Opt{L: eliminateNS(q.L, prune), R: eliminateNS(q.R, prune)}
	case sparql.Filter:
		return sparql.Filter{P: eliminateNS(q.P, prune), Cond: q.Cond}
	case sparql.Select:
		return sparql.Select{Vars: q.Vars, P: eliminateNS(q.P, prune)}
	case sparql.NS:
		return eliminateOneNS(eliminateNS(q.P, prune), prune)
	default:
		panic("transform: unknown pattern type")
	}
}

// eliminateOneNS rewrites NS(q) where q is already NS-free.
func eliminateOneNS(q sparql.Pattern, prune bool) sparql.Pattern {
	scope := sparql.InScopeVars(q)
	var certain map[sparql.Var]struct{}
	if prune {
		certain = CertainlyBound(q)
	}

	// Enumerate the admissible subsets V ⊆ scope as bitmasks.
	type disjunct struct {
		mask uint
		pat  sparql.Pattern
	}
	var subsets []disjunct
	n := len(scope)
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		if prune && !maskCovers(mask, scope, certain) {
			continue
		}
		subsets = append(subsets, disjunct{mask: mask, pat: boundPartition(q, mask, scope)})
	}
	// Deterministic order: by popcount then mask, so larger domains come
	// last and the output is stable.
	sort.Slice(subsets, func(i, j int) bool {
		pi, pj := popcount(subsets[i].mask), popcount(subsets[j].mask)
		if pi != pj {
			return pi < pj
		}
		return subsets[i].mask < subsets[j].mask
	})

	out := make([]sparql.Pattern, 0, len(subsets))
	for _, d := range subsets {
		var supers []sparql.Pattern
		for _, e := range subsets {
			if e.mask != d.mask && e.mask&d.mask == d.mask {
				supers = append(supers, e.pat)
			}
		}
		if len(supers) == 0 {
			out = append(out, d.pat)
		} else {
			out = append(out, Minus(d.pat, sparql.UnionOf(supers...)))
		}
	}
	return sparql.UnionOf(out...)
}

// boundPartition builds Q_V: q filtered so that exactly the variables
// of the mask (over scope) are bound.
func boundPartition(q sparql.Pattern, mask uint, scope []sparql.Var) sparql.Pattern {
	conds := make([]sparql.Condition, 0, len(scope))
	for i, v := range scope {
		if mask&(1<<uint(i)) != 0 {
			conds = append(conds, sparql.Bound{X: v})
		} else {
			conds = append(conds, sparql.Not{R: sparql.Bound{X: v}})
		}
	}
	if len(conds) == 0 {
		return q
	}
	return sparql.Filter{P: q, Cond: sparql.ConjoinConds(conds...)}
}

func maskCovers(mask uint, scope []sparql.Var, certain map[sparql.Var]struct{}) bool {
	for i, v := range scope {
		if _, ok := certain[v]; ok && mask&(1<<uint(i)) == 0 {
			return false
		}
	}
	return true
}

func popcount(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// CertainlyBound returns the set of variables bound in every answer of
// the pattern, computed syntactically:
//
//	cb(t)            = var(t)
//	cb(P1 AND P2)    = cb(P1) ∪ cb(P2)
//	cb(P1 UNION P2)  = cb(P1) ∩ cb(P2)
//	cb(P1 OPT P2)    = cb(P1)
//	cb(P FILTER R)   = cb(P)
//	cb(SELECT V, P)  = cb(P) ∩ V
//	cb(NS(P))        = cb(P)
//
// This is the standard under-approximation used to prune impossible
// binding domains.
func CertainlyBound(p sparql.Pattern) map[sparql.Var]struct{} {
	switch q := p.(type) {
	case sparql.TriplePattern:
		out := make(map[sparql.Var]struct{}, 3)
		for _, v := range sparql.Vars(q) {
			out[v] = struct{}{}
		}
		return out
	case sparql.And:
		out := CertainlyBound(q.L)
		for v := range CertainlyBound(q.R) {
			out[v] = struct{}{}
		}
		return out
	case sparql.Union:
		l, r := CertainlyBound(q.L), CertainlyBound(q.R)
		out := make(map[sparql.Var]struct{})
		for v := range l {
			if _, ok := r[v]; ok {
				out[v] = struct{}{}
			}
		}
		return out
	case sparql.Opt:
		return CertainlyBound(q.L)
	case sparql.Filter:
		return CertainlyBound(q.P)
	case sparql.Select:
		inner := CertainlyBound(q.P)
		out := make(map[sparql.Var]struct{})
		for _, v := range q.Vars {
			if _, ok := inner[v]; ok {
				out[v] = struct{}{}
			}
		}
		return out
	case sparql.NS:
		return CertainlyBound(q.P)
	default:
		panic("transform: unknown pattern type")
	}
}
