package sparql

import (
	"math/bits"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// This file is the sort-merge fast path for Join, Diff and LeftJoin.
// The sorted permutation store (internal/rdf) emits every index scan in
// ascending key order of the permutation it selects, so when both
// operands of a binary operator are triple-pattern scans whose emission
// order leads with the *same variable*, their rows arrive pre-grouped
// by that variable's value and the join reduces to aligning equal-key
// runs — no hash table, no rehashing, one forward pass over each side.
// Everything else falls back to the hash join (JoinB/DiffB/LeftJoinB).
//
// Soundness of the run restriction: a triple pattern binds all of its
// variables in every row it produces, so the shared leading variable is
// bound on both sides of every candidate pair; compatible rows must
// agree on it, hence every compatible pair lies inside one equal-key
// run and — for the Diff half of OPT — a left row with no compatible
// row in its run has none anywhere.

// MergeJoinEnabled gates the fast path.  It exists for the E25 store
// ablation benchmark (merge vs hash join on identical plans) and as an
// escape hatch; the engines consult it at dispatch time.
var MergeJoinEnabled = true

// scanLeadSlot returns the schema slot of the variable that the index
// scan for ts emits its rows ordered by — the leading free position of
// the permutation chooseIndex picks for the pattern's constants.  ok =
// false when the pattern has no variables or repeats one (a repeated
// variable filters rows, breaking the "one row per matched triple"
// accounting the merge path relies on).
func scanLeadSlot(ts *tripleSlots) (int, bool) {
	cbits := 0
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			cbits |= 1 << i
		}
	}
	nvars := 3 - bits.OnesCount(uint(cbits))
	if nvars == 0 || bits.OnesCount64(ts.mask) != nvars {
		return 0, false
	}
	// Mirror of rdf's index choice: constants select the permutation,
	// the first unbound position of its key order is the sort leader.
	var lead int
	switch cbits {
	case 0b011: // S,P const -> SPO, ordered by O
		lead = 2
	case 0b110, 0b100, 0b000: // P,O / O / none -> ordered by S
		lead = 0
	case 0b101, 0b001: // S,O / S -> ordered by P
		lead = 1
	case 0b010: // P const -> POS, ordered by O
		lead = 2
	}
	return ts.slot[lead], true
}

// mergeSide is one operand's scan, buffered flat: row i is
// ids[i*w:(i+1)*w] with presence mask mask, and keys[i] is its leading
// sort-key value.  keys is nondecreasing by the store's emission-order
// contract.
type mergeSide struct {
	keys []rdf.ID
	ids  []rdf.ID
	mask uint64
	n    int
	w    int
}

func (m *mergeSide) row(i int) []rdf.ID { return m.ids[i*m.w : (i+1)*m.w : (i+1)*m.w] }

// scanMergeSide runs one index scan and buffers it as a mergeSide,
// charging the budget like evalTripleRowsB does: one step per matched
// triple, one row charge per buffered row.
func scanMergeSide(g rdf.Store, ts *tripleSlots, leadSlot int, sc *VarSchema, b *Budget) (*mergeSide, error) {
	w := sc.Len()
	side := &mergeSide{mask: ts.mask, w: w}
	var sp, pp, op *rdf.ID
	if ts.isConst[0] {
		sp = &ts.constID[0]
	}
	if ts.isConst[1] {
		pp = &ts.constID[1]
	}
	if ts.isConst[2] {
		op = &ts.constID[2]
	}
	scratch := make([]rdf.ID, w)
	var err error
	g.MatchIDs(sp, pp, op, func(tr rdf.IDTriple) bool {
		if err = b.Step(); err != nil {
			return false
		}
		// No repeated variables (scanLeadSlot rejected those), so the
		// bind cannot fail and every matched triple is one row.
		ts.bindTriple(scratch, tr, 0)
		if err = b.chargeRow(w); err != nil {
			return false
		}
		side.ids = append(side.ids, scratch...)
		side.keys = append(side.keys, scratch[leadSlot])
		side.n++
		return true
	})
	if err != nil {
		return nil, err
	}
	return side, nil
}

// instrumentedScan wraps one side's scan with the per-operand profile
// counters the standard path records through evalInstrumented, so the
// profile tree stays congruent to the pattern tree whichever join
// strategy ran: wall time, budget deltas, rows out (= |⟦t⟧_G|) and one
// range scan.
func instrumentedScan(g rdf.Store, ts *tripleSlots, leadSlot int, sc *VarSchema, b *Budget, node *obs.Node) (*mergeSide, error) {
	if node == nil {
		return scanMergeSide(g, ts, leadSlot, sc, b)
	}
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	side, err := scanMergeSide(g, ts, leadSlot, sc, b)
	node.AddWall(time.Since(start))
	steps1, rows1, bytes1 := b.Counters()
	node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
	if err != nil {
		return nil, err
	}
	node.AddRowsOut(int64(side.n))
	node.AddRangeScans(1)
	return side, nil
}

// tryMergeScanJoin attempts the merge fast path for l ⋈ r (outer =
// false) or l ⟕ r (outer = true).  handled = false means the operands
// don't qualify — not both triple patterns, different lead variables, a
// repeated variable, or a constant missing from the dictionary — and
// the caller must run the standard path; nothing has been recorded on
// node in that case.  When handled, the profile children for both
// operands have been created (L before R) and the operator's counters
// (rows in, merge runs) recorded, exactly like the standard path.
func tryMergeScanJoin(g rdf.Store, lp, rp Pattern, sc *VarSchema, b *Budget, node *obs.Node, outer bool) (*RowSet, bool, error) {
	if !MergeJoinEnabled {
		return nil, false, nil
	}
	lt, ok := lp.(TriplePattern)
	if !ok {
		return nil, false, nil
	}
	rt, ok := rp.(TriplePattern)
	if !ok {
		return nil, false, nil
	}
	lts, ok := resolveTriple(lt, sc, g.Dict())
	if !ok {
		return nil, false, nil
	}
	rts, ok := resolveTriple(rt, sc, g.Dict())
	if !ok {
		return nil, false, nil
	}
	lLead, ok := scanLeadSlot(&lts)
	if !ok {
		return nil, false, nil
	}
	rLead, ok := scanLeadSlot(&rts)
	if !ok || lLead != rLead {
		return nil, false, nil
	}
	nl := childNode(node, lp)
	ls, err := instrumentedScan(g, &lts, lLead, sc, b, nl)
	if err != nil {
		return nil, true, err
	}
	nr := childNode(node, rp)
	rs, err := instrumentedScan(g, &rts, rLead, sc, b, nr)
	if err != nil {
		return nil, true, err
	}
	node.AddRowsIn(int64(ls.n + rs.n))
	out := NewRowSet(sc)
	runs, err := mergeJoinRuns(ls, rs, outer, b, out)
	if err != nil {
		return nil, true, err
	}
	node.AddMergeRuns(runs)
	return out, true, nil
}

// mergeJoinRuns aligns the equal-key runs of two nondecreasing-key
// sides and emits compatible pairs into out; with outer set, left rows
// with no compatible partner are emitted alone (the Diff half of ⟕).
// Returns the number of aligned runs (both sides non-empty at the key).
func mergeJoinRuns(l, r *mergeSide, outer bool, b *Budget, out *RowSet) (int64, error) {
	scratch := make([]rdf.ID, l.w)
	var runs int64
	i, j := 0, 0
	for i < l.n {
		if j >= r.n {
			if !outer {
				break
			}
			for ; i < l.n; i++ {
				if err := b.Step(); err != nil {
					return runs, err
				}
				if err := out.addCharged(l.row(i), l.mask, b); err != nil {
					return runs, err
				}
			}
			break
		}
		lk, rk := l.keys[i], r.keys[j]
		if lk < rk {
			if outer {
				if err := b.Step(); err != nil {
					return runs, err
				}
				if err := out.addCharged(l.row(i), l.mask, b); err != nil {
					return runs, err
				}
			}
			i++
			continue
		}
		if lk > rk {
			j++
			continue
		}
		i1 := i
		for i1 < l.n && l.keys[i1] == lk {
			i1++
		}
		j1 := j
		for j1 < r.n && r.keys[j1] == rk {
			j1++
		}
		runs++
		for a := i; a < i1; a++ {
			arow := l.row(a)
			matched := false
			for c := j; c < j1; c++ {
				if err := b.Step(); err != nil {
					return runs, err
				}
				brow := r.row(c)
				if rowsCompatible(arow, l.mask, brow, r.mask) {
					matched = true
					if err := out.addCharged(scratch, mergeRows(scratch, arow, l.mask, brow, r.mask), b); err != nil {
						return runs, err
					}
				}
			}
			if outer && !matched {
				if err := out.addCharged(arow, l.mask, b); err != nil {
					return runs, err
				}
			}
		}
		i, j = i1, j1
	}
	return runs, nil
}
