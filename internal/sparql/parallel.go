package sparql

import (
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// This file is the parallel execution layer of the row engine: a
// bounded worker pool that evaluates independent sub-problems of one
// query concurrently, governed by a single shared Budget (whose
// counters are atomic — see budget.go).
//
// Three kinds of work fan out:
//
//   - Operator operands.  UNION branches are independent by
//     definition, and the operands of AND/OPT are independently
//     evaluable sub-queries (Semantics and Complexity of SPARQL); the
//     evaluator computes both sides of a binary operator concurrently
//     whenever a worker is free.
//   - Partitioned joins.  Large Join/Diff/LeftJoin probes are
//     hash-partitioned: the chain index of the build side is
//     constructed once (before the fan-out, so workers only read it),
//     contiguous chunks of the probe side stream against it on
//     separate workers into per-partition RowSets, and the partitions
//     merge through the existing open-addressed dedup.
//   - NS sharding.  Maximal buckets rows by presence mask; buckets
//     only read shared state and produce private "subsumed" lists, so
//     they shard across workers with a final cross-shard sweep that
//     drops every subsumed row in deterministic row order.
//
// Concurrency safety rests on three facts: rdf.Graph and rdf.Dict are
// safe for concurrent readers (the evaluation path only ever calls
// Lookup/IRI/MatchIDs — nothing interns); every worker writes only to
// RowSets it owns; and the shared Budget is atomic, with a sticky
// error that every worker observes on its next Step, so cancellation
// and faults drain the pool promptly.
//
// Determinism: the parallel engine returns exactly the same *set* of
// rows as the serial engine (differentially tested per fragment).
// The insertion order of the result RowSet may differ from the serial
// order — partition merges append partition-by-partition — but
// decoded MappingSets compare as sets and server output is sorted, so
// no observable result depends on scheduling.

// DefaultMinPartition is the operand size (in rows) below which
// Join/Diff/Maximal stay serial: partitioning a small build costs more
// in goroutine handoff and partition merging than it saves.
const DefaultMinPartition = 512

// ParOptions tunes the parallel row engine.
type ParOptions struct {
	// Workers is the total worker count, including the calling
	// goroutine: 0 means runtime.GOMAXPROCS(0), 1 runs serially.
	Workers int
	// MinPartition overrides DefaultMinPartition (0 keeps the
	// default).  Tests set it to 1 to force partitioned operators on
	// small inputs.
	MinPartition int
	// Prof, when non-nil, collects an execution profile: one child
	// node per operator, with pool and partition counters on top of
	// the serial engine's metrics.  See EvalRowsProf.
	Prof *obs.Node
	// Hints carries the planner's per-node join-strategy decisions
	// (nil = structural auto behaviour).  See EvalHints.
	Hints *EvalHints
}

func (o ParOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ParOptions) minPartition() int {
	if o.MinPartition <= 0 {
		return DefaultMinPartition
	}
	return o.MinPartition
}

// pool is the bounded set of *extra* workers one evaluation may spawn
// (the calling goroutine is worker zero and is not accounted here).  A
// nil pool means "serial".  Acquisition never blocks: when no token is
// free the caller simply does the work inline, so the pool cannot
// deadlock no matter how operators nest.
type pool struct {
	sem chan struct{}
}

func newPool(extra int) *pool {
	if extra <= 0 {
		return nil
	}
	return &pool{sem: make(chan struct{}, extra)}
}

func (p *pool) tryAcquire() bool {
	if p == nil {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *pool) release() { <-p.sem }

// EvalRowsPar is EvalRows on the parallel engine: ⟦P⟧_G with UNION
// branches, AND/OPT operands, large joins and NS evaluated across up
// to workers goroutines (0 = GOMAXPROCS).  ok = false when the
// pattern exceeds MaxSchemaVars variables.
func EvalRowsPar(g rdf.Store, p Pattern, workers int) (*RowSet, bool) {
	rs, ok, err := EvalRowsParOpts(g, p, nil, ParOptions{Workers: workers})
	if err != nil {
		return nil, false
	}
	return rs, ok
}

// EvalRowsParBudget is EvalRowsPar under a governor: the single budget
// is shared by every worker (its counters are atomic), cancellation
// and limits stop all of them within a stride, and the pool is fully
// drained before the error returns.
func EvalRowsParBudget(g rdf.Store, p Pattern, b *Budget, workers int) (*RowSet, bool, error) {
	return EvalRowsParOpts(g, p, b, ParOptions{Workers: workers})
}

// EvalRowsParOpts is EvalRowsParBudget with full tuning options.
func EvalRowsParOpts(g rdf.Store, p Pattern, b *Budget, o ParOptions) (*RowSet, bool, error) {
	sc, ok := SchemaFor(p)
	if !ok {
		return nil, false, nil
	}
	if o.workers() <= 1 {
		rs, err := evalRowsB(g, p, sc, b, o.Prof, o.Hints)
		if err != nil {
			return nil, true, err
		}
		return rs, true, nil
	}
	e := &parEval{
		g:       g,
		sc:      sc,
		b:       b,
		po:      newPool(o.workers() - 1),
		minPart: o.minPartition(),
		hints:   o.Hints,
	}
	rs, err := e.eval(p, o.Prof)
	if err != nil {
		return nil, true, err
	}
	return rs, true, nil
}

// parEval is the parallel bottom-up evaluator; it mirrors evalRowsB
// with concurrent operand evaluation and partitioned operators.
type parEval struct {
	g       rdf.Store
	sc      *VarSchema
	b       *Budget
	po      *pool
	minPart int
	hints   *EvalHints
}

// eval attaches a profile node for p under parent and evaluates; the
// instrumentation wrapper is shared with the serial engine.
func (e *parEval) eval(p Pattern, parent *obs.Node) (*RowSet, error) {
	return e.evalInto(p, childNode(parent, p))
}

// evalInto evaluates p into an already-created profile node — evalBoth
// creates both operand nodes before fanning out so the profile tree's
// child order is deterministic (L, R) regardless of scheduling.
func (e *parEval) evalInto(p Pattern, node *obs.Node) (*RowSet, error) {
	return evalInstrumented(node, e.b, func() (*RowSet, error) {
		return e.evalOp(p, node)
	})
}

func (e *parEval) evalOp(p Pattern, node *obs.Node) (*RowSet, error) {
	if err := e.b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleRowsB(e.g, q, e.sc, e.b, node)
	case And:
		if e.hints.JoinStrategyFor(p) != StrategyHash {
			if rs, handled, err := tryMergeScanJoin(e.g, q.L, q.R, e.sc, e.b, node, false); handled {
				return rs, err
			}
		}
		l, r, err := e.evalBoth(q.L, q.R, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.joinParB(r, e.b, e.po, e.minPart, node)
	case Union:
		l, r, err := e.evalBoth(q.L, q.R, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.UnionB(r, e.b)
	case Opt:
		if e.hints.JoinStrategyFor(p) != StrategyHash {
			if rs, handled, err := tryMergeScanJoin(e.g, q.L, q.R, e.sc, e.b, node, true); handled {
				return rs, err
			}
		}
		l, r, err := e.evalBoth(q.L, q.R, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.leftJoinParB(r, e.b, e.po, e.minPart, node)
	case Filter:
		inner, err := e.eval(q.P, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		return inner.FilterB(CompileCond(q.Cond, e.sc, e.g.Dict()), e.b)
	case Select:
		inner, err := e.eval(q.P, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		return inner.ProjectB(e.sc.SlotMask(q.Vars), e.b)
	case NS:
		inner, err := e.eval(q.P, node)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		out, err := inner.maximalParB(e.b, e.po, e.minPart, node)
		if err != nil {
			return nil, err
		}
		recordNS(node, inner, out)
		return out, nil
	default:
		return nil, ErrUnsupportedPattern{Pattern: p}
	}
}

// evalBoth evaluates two sub-patterns, on two goroutines when a worker
// is free.  It always joins the spawned branch before returning —
// including on error — so an unwinding evaluation never leaves a
// worker running behind the caller's back.  The pool counters land on
// node (the binary operator that wanted the fan-out).
func (e *parEval) evalBoth(pl, pr Pattern, node *obs.Node) (*RowSet, *RowSet, error) {
	nl := childNode(node, pl)
	nr := childNode(node, pr)
	if e.po.tryAcquire() {
		node.AddPoolAcquired(1)
		var (
			r    *RowSet
			rerr error
			done = make(chan struct{})
		)
		go func() {
			defer close(done)
			defer e.po.release()
			r, rerr = e.evalInto(pr, nr)
		}()
		l, lerr := e.evalInto(pl, nl)
		<-done
		if lerr != nil {
			return nil, nil, lerr
		}
		if rerr != nil {
			return nil, nil, rerr
		}
		return l, r, nil
	}
	node.AddPoolInline(1)
	l, err := e.evalInto(pl, nl)
	if err != nil {
		return nil, nil, err
	}
	r, err := e.evalInto(pr, nr)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// parChunks splits [0, n) into contiguous chunks of at least minChunk
// elements, runs work on each — one chunk inline, the rest on pool
// workers — and returns the per-chunk results in chunk order.  Every
// spawned worker is joined before parChunks returns (clean drain); the
// first error in chunk order wins, and with a shared sticky budget all
// chunks report the same governor error anyway.  Pool counters land on
// node: tokens acquired, plus one inline fallback when the operator
// wanted more workers than the pool had free.
func parChunks[T any](po *pool, n, minChunk int, node *obs.Node, work func(lo, hi int) (T, error)) ([]T, error) {
	if minChunk < 1 {
		minChunk = 1
	}
	workers := 1
	maxWorkers := n / minChunk
	for workers < maxWorkers && po.tryAcquire() {
		workers++
	}
	node.AddPoolAcquired(int64(workers - 1))
	if workers < maxWorkers {
		node.AddPoolInline(1)
	}
	if workers == 1 {
		out, err := work(0, n)
		if err != nil {
			return nil, err
		}
		return []T{out}, nil
	}
	outs := make([]T, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer po.release()
			outs[w], errs[w] = work(lo, hi)
		}(w, lo, hi)
	}
	outs[0], errs[0] = work(0, n/workers)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// mergeParts folds per-partition RowSets into one through the
// open-addressed dedup, in partition order.  Each partition's own
// dedup hits fold into the merged set's counter so the operator's
// profile sees every rejected duplicate, wherever it happened.
func mergeParts(parts []*RowSet, bud *Budget) (*RowSet, error) {
	out := parts[0]
	for _, p := range parts[1:] {
		out.dedup += p.dedup
		for i := 0; i < p.Len(); i++ {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			if err := out.addCharged(p.RowIDs(i), p.masks[i], bud); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// joinParB is JoinB with the probe side hash-partitioned across
// workers.  The build side's chain index is constructed once by the
// caller's goroutine; each worker streams a contiguous chunk of probe
// rows against it into a private RowSet, and the partitions merge
// through the shared dedup.  Small or keyless joins stay serial.
func (s *RowSet) joinParB(t *RowSet, bud *Budget, po *pool, minPart int, node *obs.Node) (*RowSet, error) {
	if s.Len() == 0 || t.Len() == 0 {
		return NewRowSet(s.Schema), nil
	}
	build, probe := s, t
	if build.Len() > probe.Len() {
		build, probe = probe, build
	}
	key := build.alwaysBoundMask() & probe.alwaysBoundMask()
	if po == nil || key == 0 || probe.Len() < minPart {
		return s.JoinB(t, bud)
	}
	head, next := build.chainIndex(key)
	parts, err := parChunks(po, probe.Len(), chunkOf(minPart), node, func(lo, hi int) (*RowSet, error) {
		out := NewRowSet(s.Schema)
		scratch := make([]rdf.ID, s.Schema.Len())
		for j := lo; j < hi; j++ {
			b, bm := probe.RowIDs(j), probe.masks[j]
			if err := bud.Step(); err != nil {
				return nil, err
			}
			for i := headOf(head, rowHash(b, key)); i >= 0; i = next[i] {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				a, am := build.RowIDs(int(i)), build.masks[i]
				if rowsCompatible(a, am, b, bm) {
					if err := out.addCharged(scratch, mergeRows(scratch, a, am, b, bm), bud); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	node.AddPartitions(int64(len(parts)))
	return mergeParts(parts, bud)
}

// diffParB is DiffB with the left side partitioned across workers,
// each probing the shared chain index of t.
func (s *RowSet) diffParB(t *RowSet, bud *Budget, po *pool, minPart int, node *obs.Node) (*RowSet, error) {
	if s.Len() == 0 {
		return NewRowSet(s.Schema), nil
	}
	key := s.alwaysBoundMask() & t.alwaysBoundMask()
	if po == nil || t.Len() == 0 || key == 0 || s.Len() < minPart {
		return s.DiffB(t, bud)
	}
	head, next := t.chainIndex(key)
	parts, err := parChunks(po, s.Len(), chunkOf(minPart), node, func(lo, hi int) (*RowSet, error) {
		out := NewRowSet(s.Schema)
		for i := lo; i < hi; i++ {
			a, am := s.RowIDs(i), s.masks[i]
			if err := bud.Step(); err != nil {
				return nil, err
			}
			compatible := false
			for j := headOf(head, rowHash(a, key)); j >= 0; j = next[j] {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				if rowsCompatible(a, am, t.RowIDs(int(j)), t.masks[j]) {
					compatible = true
					break
				}
			}
			if !compatible {
				if err := out.addCharged(a, am, bud); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	node.AddPartitions(int64(len(parts)))
	return mergeParts(parts, bud)
}

// leftJoinParB is Ω1 ⟕ Ω2 with both halves partitioned.  The Join
// half often indexes t with the same key the Diff half needs, so the
// receiver-cached chain index is built once for both.
func (s *RowSet) leftJoinParB(t *RowSet, bud *Budget, po *pool, minPart int, node *obs.Node) (*RowSet, error) {
	j, err := s.joinParB(t, bud, po, minPart, node)
	if err != nil {
		return nil, err
	}
	d, err := s.diffParB(t, bud, po, minPart, node)
	if err != nil {
		return nil, err
	}
	return j.UnionB(d, bud)
}

// chunkOf derives the minimum chunk size from the partition threshold:
// fine enough to occupy the pool, coarse enough that per-chunk setup
// (a RowSet, a scratch row) stays amortized.
func chunkOf(minPart int) int {
	c := minPart / 4
	if c < 1 {
		c = 1
	}
	return c
}

// MaximalPar is Maximal on the parallel engine (0 = GOMAXPROCS).
func (s *RowSet) MaximalPar(workers int) *RowSet {
	out, _ := s.MaximalParB(nil, workers)
	return out
}

// MaximalParB is MaximalB sharded by mask bucket: rows group by
// presence mask, each bucket's subsumption hunt (hash the superset
// buckets' restrictions, probe the bucket's rows) is independent of
// every other bucket's, so buckets spread across workers.  A final
// cross-shard sweep in row order drops the subsumed rows, keeping the
// output order identical to the serial algorithm's.
func (s *RowSet) MaximalParB(bud *Budget, workers int) (*RowSet, error) {
	o := ParOptions{Workers: workers}
	return s.maximalParB(bud, newPool(o.workers()-1), DefaultMinPartition, nil)
}

func (s *RowSet) maximalParB(bud *Budget, po *pool, minPart int, node *obs.Node) (*RowSet, error) {
	if po == nil || s.Len() < minPart {
		return s.MaximalB(bud)
	}
	type bucket struct {
		mask uint64
		rows []int32
	}
	buckets := make(map[uint64]*bucket)
	order := make([]uint64, 0)
	for i := 0; i < s.Len(); i++ {
		m := s.masks[i]
		b, ok := buckets[m]
		if !ok {
			b = &bucket{mask: m}
			buckets[m] = b
			order = append(order, m)
		}
		b.rows = append(b.rows, int32(i))
	}
	if len(order) < 2 {
		// One mask: no strict superset exists, every row is maximal.
		out := NewRowSet(s.Schema)
		for i := 0; i < s.Len(); i++ {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Shard the buckets: each worker hunts subsumption for a chunk of
	// buckets, reading the shared bucket map and rows (no writes) and
	// collecting its own dead-row list.
	deadParts, err := parChunks(po, len(order), 1, node, func(lo, hi int) ([]int32, error) {
		var dead []int32
		for _, m := range order[lo:hi] {
			b := buckets[m]
			var superKeys *RowSet
			for m2, b2 := range buckets {
				if m2 == m || m&^m2 != 0 {
					continue
				}
				// m ⊊ m2: hash the m-restrictions of the superset bucket.
				if superKeys == nil {
					superKeys = NewRowSet(s.Schema)
				}
				for _, j := range b2.rows {
					if err := bud.Step(); err != nil {
						return nil, err
					}
					superKeys.Add(s.RowIDs(int(j)), m)
				}
			}
			if superKeys == nil {
				continue
			}
			for _, i := range b.rows {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				if superKeys.Contains(s.RowIDs(int(i)), m) {
					dead = append(dead, i)
				}
			}
		}
		return dead, nil
	})
	if err != nil {
		return nil, err
	}
	node.AddPartitions(int64(len(deadParts)))
	// Cross-shard sweep: merge the shards' dead lists and emit the
	// survivors in row order (the serial algorithm's order).
	dead := make([]bool, s.Len())
	for _, part := range deadParts {
		for _, i := range part {
			dead[i] = true
		}
	}
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if !dead[i] {
			if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
