package sparql

import (
	"sort"
	"strings"
)

// MappingSet is a set of mappings Ω with deterministic iteration order
// (insertion order) and hash-based deduplication.
type MappingSet struct {
	items []Mapping
	index map[string]struct{}
}

// NewMappingSet returns a set containing the given mappings.
func NewMappingSet(mus ...Mapping) *MappingSet {
	s := &MappingSet{index: make(map[string]struct{}, len(mus))}
	for _, mu := range mus {
		s.Add(mu)
	}
	return s
}

// Add inserts µ; it reports whether µ was new.
func (s *MappingSet) Add(mu Mapping) bool {
	k := mu.key()
	if _, ok := s.index[k]; ok {
		return false
	}
	s.index[k] = struct{}{}
	s.items = append(s.items, mu)
	return true
}

// addKeyed inserts µ with a precomputed canonical key; callers must
// pass exactly mu.key().  The row decode boundary uses it to emit keys
// in slot order instead of re-deriving and sorting each domain.
func (s *MappingSet) addKeyed(mu Mapping, key string) bool {
	if _, ok := s.index[key]; ok {
		return false
	}
	s.index[key] = struct{}{}
	s.items = append(s.items, mu)
	return true
}

// Contains reports whether µ ∈ Ω.
func (s *MappingSet) Contains(mu Mapping) bool {
	_, ok := s.index[mu.key()]
	return ok
}

// Len reports |Ω|.
func (s *MappingSet) Len() int { return len(s.items) }

// Mappings returns the members in insertion order.  The slice is shared;
// callers must not modify it.
func (s *MappingSet) Mappings() []Mapping { return s.items }

// Sorted returns the members sorted by canonical key, for deterministic
// output.
func (s *MappingSet) Sorted() []Mapping {
	// Compute each canonical key once up front: key() sorts the domain
	// and formats every binding, so re-deriving it inside the comparator
	// would cost O(n log n) string builds instead of O(n).
	type keyed struct {
		mu  Mapping
		key string
	}
	ks := make([]keyed, len(s.items))
	for i, mu := range s.items {
		ks[i] = keyed{mu: mu, key: mu.key()}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]Mapping, len(ks))
	for i, k := range ks {
		out[i] = k.mu
	}
	return out
}

// Join returns Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ∼ µ2}.
func (s *MappingSet) Join(t *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		for _, nu := range t.items {
			if mu.CompatibleWith(nu) {
				out.Add(mu.Merge(nu))
			}
		}
	}
	return out
}

// Union returns Ω1 ∪ Ω2.
func (s *MappingSet) Union(t *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		out.Add(mu)
	}
	for _, mu := range t.items {
		out.Add(mu)
	}
	return out
}

// Diff returns Ω1 ∖ Ω2 = {µ1 ∈ Ω1 | ∀µ2 ∈ Ω2 : µ1 ≁ µ2}.
func (s *MappingSet) Diff(t *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		ok := true
		for _, nu := range t.items {
			if mu.CompatibleWith(nu) {
				ok = false
				break
			}
		}
		if ok {
			out.Add(mu)
		}
	}
	return out
}

// LeftJoin returns Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2).
func (s *MappingSet) LeftJoin(t *MappingSet) *MappingSet {
	return s.Join(t).Union(s.Diff(t))
}

// Project returns {µ|V | µ ∈ Ω}.
func (s *MappingSet) Project(vars []Var) *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		out.Add(mu.Restrict(vars))
	}
	return out
}

// Filter returns {µ ∈ Ω | µ ⊨ R}.
func (s *MappingSet) Filter(cond Condition) *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		if cond.Eval(mu) {
			out.Add(mu)
		}
	}
	return out
}

// SubsumedBy reports Ω1 ⊑ Ω2: every µ1 ∈ Ω1 is subsumed by some µ2 ∈ Ω2.
func (s *MappingSet) SubsumedBy(t *MappingSet) bool {
	for _, mu := range s.items {
		found := false
		for _, nu := range t.items {
			if mu.SubsumedBy(nu) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets contain exactly the same mappings.
func (s *MappingSet) Equal(t *MappingSet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.index {
		if _, ok := t.index[k]; !ok {
			return false
		}
	}
	return true
}

// SubsumptionEquivalent reports Ω1 ⊑ Ω2 and Ω2 ⊑ Ω1, i.e. the two sets
// are equally informative (Section 4).
func (s *MappingSet) SubsumptionEquivalent(t *MappingSet) bool {
	return s.SubsumedBy(t) && t.SubsumedBy(s)
}

// String renders the set as one mapping per line, sorted, e.g. for test
// failure output.
func (s *MappingSet) String() string {
	mus := s.Sorted()
	lines := make([]string, len(mus))
	for i, mu := range mus {
		lines[i] = mu.String()
	}
	return "{" + strings.Join(lines, ", ") + "}"
}

// Table renders the set as an aligned text table in the style of the
// paper's examples: one column per variable (union of all domains,
// sorted), one row per mapping, empty cells for unbound variables.
func (s *MappingSet) Table() string {
	varSet := make(map[Var]struct{})
	for _, mu := range s.items {
		for v := range mu {
			varSet[v] = struct{}{}
		}
	}
	vars := make([]Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	header := make([]string, len(vars))
	widths := make([]int, len(vars))
	for i, v := range vars {
		header[i] = v.String()
		widths[i] = len(header[i])
	}
	rows := make([][]string, 0, len(s.items))
	for _, mu := range s.Sorted() {
		row := make([]string, len(vars))
		for i, v := range vars {
			if iri, ok := mu[v]; ok {
				row[i] = string(iri)
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	if len(rows) == 0 {
		b.WriteString("(no solutions)\n")
	}
	return b.String()
}

// Maximal returns Ω_max: the mappings of Ω that are not properly
// subsumed by another mapping of Ω (the semantics of NS, Section 5.1).
// It uses the domain-bucketed algorithm; see MaximalNaive for the
// quadratic reference implementation.
func (s *MappingSet) Maximal() *MappingSet { return s.MaximalBucketed() }

// MaximalNaive computes Ω_max by pairwise subsumption checks, O(|Ω|²).
// Kept as the reference implementation and ablation baseline (E17).
func (s *MappingSet) MaximalNaive() *MappingSet {
	out := NewMappingSet()
	for _, mu := range s.items {
		maximal := true
		for _, nu := range s.items {
			if mu.ProperlySubsumedBy(nu) {
				maximal = false
				break
			}
		}
		if maximal {
			out.Add(mu)
		}
	}
	return out
}

// MaximalBucketed computes Ω_max by grouping mappings by domain: a
// mapping µ can only be properly subsumed by a mapping whose domain is
// a strict superset of dom(µ), so for each pair of domains (D ⊊ D') we
// hash the D-restrictions of the D'-bucket and probe each µ in the
// D-bucket in O(1).
func (s *MappingSet) MaximalBucketed() *MappingSet {
	type bucket struct {
		vars []Var
		mus  []Mapping
	}
	buckets := make(map[string]*bucket)
	order := make([]string, 0)
	for _, mu := range s.items {
		dk := mu.domainKey()
		b, ok := buckets[dk]
		if !ok {
			b = &bucket{vars: mu.Domain()}
			buckets[dk] = b
			order = append(order, dk)
		}
		b.mus = append(b.mus, mu)
	}

	isStrictSubset := func(a, b []Var) bool {
		if len(a) >= len(b) {
			return false
		}
		j := 0
		for _, v := range a {
			for j < len(b) && b[j] < v {
				j++
			}
			if j >= len(b) || b[j] != v {
				return false
			}
			j++
		}
		return true
	}

	// For each bucket D, precompute the union of restricted-key sets of
	// all strict-superset buckets.
	out := NewMappingSet()
	for _, dk := range order {
		b := buckets[dk]
		var superKeys map[string]struct{}
		for dk2, b2 := range buckets {
			if dk2 == dk || !isStrictSubset(b.vars, b2.vars) {
				continue
			}
			if superKeys == nil {
				superKeys = make(map[string]struct{})
			}
			for _, nu := range b2.mus {
				superKeys[nu.Restrict(b.vars).key()] = struct{}{}
			}
		}
		for _, mu := range b.mus {
			if superKeys != nil {
				if _, subsumed := superKeys[mu.key()]; subsumed {
					continue
				}
			}
			out.Add(mu)
		}
	}
	// Restore deterministic insertion order relative to s.
	final := NewMappingSet()
	for _, mu := range s.items {
		if out.Contains(mu) {
			final.Add(mu)
		}
	}
	return final
}
