package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// Condition is a SPARQL built-in condition R (Section 2.1): atoms are
// bound(?X), ?X = c and ?X = ?Y, closed under ¬, ∧ and ∨.  The
// constants True and False are admitted as well; they are needed by the
// constructive transformations of the paper (e.g. the tautological
// Adom(t) of Lemma 6.5) and are definable in the fragment anyway
// (e.g. ¬bound(?X) ∨ bound(?X)).
type Condition interface {
	// Eval reports µ ⊨ R.
	Eval(mu Mapping) bool
	// Vars appends the variables of R, var(R), to dst.
	Vars(dst []Var) []Var
	// String renders R in SPARQL notation.
	String() string
	isCondition()
}

// Bound is the atom bound(?X): µ ⊨ bound(?X) iff ?X ∈ dom(µ).
type Bound struct{ X Var }

// EqConst is the atom ?X = c: satisfied iff ?X ∈ dom(µ) and µ(?X) = c.
type EqConst struct {
	X Var
	C rdf.IRI
}

// EqVars is the atom ?X = ?Y: satisfied iff both variables are bound
// and have the same image.
type EqVars struct{ X, Y Var }

// Not is ¬R.
type Not struct{ R Condition }

// AndCond is R1 ∧ R2.
type AndCond struct{ L, R Condition }

// OrCond is R1 ∨ R2.
type OrCond struct{ L, R Condition }

// TrueCond is the constant true condition.
type TrueCond struct{}

// FalseCond is the constant false condition.
type FalseCond struct{}

func (Bound) isCondition()     {}
func (EqConst) isCondition()   {}
func (EqVars) isCondition()    {}
func (Not) isCondition()       {}
func (AndCond) isCondition()   {}
func (OrCond) isCondition()    {}
func (TrueCond) isCondition()  {}
func (FalseCond) isCondition() {}

// Eval implements Condition.
func (c Bound) Eval(mu Mapping) bool { _, ok := mu[c.X]; return ok }

// Eval implements Condition.
func (c EqConst) Eval(mu Mapping) bool { i, ok := mu[c.X]; return ok && i == c.C }

// Eval implements Condition.
func (c EqVars) Eval(mu Mapping) bool {
	i, ok := mu[c.X]
	if !ok {
		return false
	}
	j, ok := mu[c.Y]
	return ok && i == j
}

// Eval implements Condition.
func (c Not) Eval(mu Mapping) bool { return !c.R.Eval(mu) }

// Eval implements Condition.
func (c AndCond) Eval(mu Mapping) bool { return c.L.Eval(mu) && c.R.Eval(mu) }

// Eval implements Condition.
func (c OrCond) Eval(mu Mapping) bool { return c.L.Eval(mu) || c.R.Eval(mu) }

// Eval implements Condition.
func (TrueCond) Eval(Mapping) bool { return true }

// Eval implements Condition.
func (FalseCond) Eval(Mapping) bool { return false }

// Vars implements Condition.
func (c Bound) Vars(dst []Var) []Var { return append(dst, c.X) }

// Vars implements Condition.
func (c EqConst) Vars(dst []Var) []Var { return append(dst, c.X) }

// Vars implements Condition.
func (c EqVars) Vars(dst []Var) []Var { return append(dst, c.X, c.Y) }

// Vars implements Condition.
func (c Not) Vars(dst []Var) []Var { return c.R.Vars(dst) }

// Vars implements Condition.
func (c AndCond) Vars(dst []Var) []Var { return c.R.Vars(c.L.Vars(dst)) }

// Vars implements Condition.
func (c OrCond) Vars(dst []Var) []Var { return c.R.Vars(c.L.Vars(dst)) }

// Vars implements Condition.
func (TrueCond) Vars(dst []Var) []Var { return dst }

// Vars implements Condition.
func (FalseCond) Vars(dst []Var) []Var { return dst }

func (c Bound) String() string   { return fmt.Sprintf("bound(%s)", c.X) }
func (c EqConst) String() string { return fmt.Sprintf("%s = %s", c.X, I(c.C)) }
func (c EqVars) String() string  { return fmt.Sprintf("%s = %s", c.X, c.Y) }
func (c Not) String() string     { return fmt.Sprintf("!(%s)", c.R) }
func (c AndCond) String() string { return fmt.Sprintf("(%s && %s)", c.L, c.R) }
func (c OrCond) String() string  { return fmt.Sprintf("(%s || %s)", c.L, c.R) }
func (TrueCond) String() string  { return "true" }
func (FalseCond) String() string { return "false" }

// CondEqual reports structural equality of two conditions.
func CondEqual(a, b Condition) bool {
	switch x := a.(type) {
	case Bound:
		y, ok := b.(Bound)
		return ok && x == y
	case EqConst:
		y, ok := b.(EqConst)
		return ok && x == y
	case EqVars:
		y, ok := b.(EqVars)
		return ok && x == y
	case Not:
		y, ok := b.(Not)
		return ok && CondEqual(x.R, y.R)
	case AndCond:
		y, ok := b.(AndCond)
		return ok && CondEqual(x.L, y.L) && CondEqual(x.R, y.R)
	case OrCond:
		y, ok := b.(OrCond)
		return ok && CondEqual(x.L, y.L) && CondEqual(x.R, y.R)
	case TrueCond:
		_, ok := b.(TrueCond)
		return ok
	case FalseCond:
		_, ok := b.(FalseCond)
		return ok
	default:
		panic(fmt.Sprintf("sparql: unknown condition type %T", a))
	}
}

// ConjoinConds folds conditions with ∧; the empty conjunction is true.
func ConjoinConds(cs ...Condition) Condition {
	var out Condition
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = AndCond{L: out, R: c}
		}
	}
	if out == nil {
		return TrueCond{}
	}
	return out
}

// DisjoinConds folds conditions with ∨; the empty disjunction is false.
func DisjoinConds(cs ...Condition) Condition {
	var out Condition
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = OrCond{L: out, R: c}
		}
	}
	if out == nil {
		return FalseCond{}
	}
	return out
}
