package sparql_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// parTestOpts forces every parallel code path on small inputs: four
// workers (three pool tokens) and a partition threshold of one row, so
// joins partition, NS shards, and operands fan out even on the tiny
// random graphs the differential tests draw.
var parTestOpts = sparql.ParOptions{Workers: 4, MinPartition: 1}

// TestEvalRowsParAgreesWithSerialQuick is the differential property
// test of the parallel engine: on random patterns × random graphs,
// parallel and serial row evaluation and the string reference
// evaluator produce the same answer set, per fragment.
func TestEvalRowsParAgreesWithSerialQuick(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(777))
			for trial := 0; trial < 150; trial++ {
				g := workload.RandomGraph(rng, 2+rng.Intn(30), nil)
				p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
				switch fc.ns {
				case "wrap":
					p = sparql.NS{P: p}
				case "union":
					q := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Ops: fc.ops})
					p = sparql.Union{L: sparql.NS{P: p}, R: sparql.NS{P: q}}
				}
				want := sparql.Eval(g, p)
				serial, ok := sparql.EvalRows(g, p)
				if !ok {
					t.Fatal("schema rejected small pattern")
				}
				par, ok, err := sparql.EvalRowsParOpts(g, p, nil, parTestOpts)
				if err != nil {
					t.Fatalf("trial %d: parallel eval failed: %v", trial, err)
				}
				if !ok {
					t.Fatal("parallel engine rejected a schema the serial engine accepted")
				}
				d := g.Dict()
				if got := par.MappingSet(d); !got.Equal(want) {
					t.Fatalf("trial %d: parallel diverges from reference on\n%s\ngot: %v\nwant:%v",
						trial, p, got, want)
				}
				if got, ws := par.MappingSet(d), serial.MappingSet(d); !got.Equal(ws) {
					t.Fatalf("trial %d: parallel diverges from serial rows on\n%s\ngot: %v\nwant:%v",
						trial, p, got, ws)
				}
			}
		})
	}
}

// TestMaximalParAgreesQuick checks the sharded NS against the serial
// row algorithm and the naive string algorithm on random sets, with
// the partition threshold forced to one so the shards really spread.
func TestMaximalParAgreesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vars := []sparql.Var{"A", "B", "C", "D"}
	sc, _ := sparql.NewVarSchema(vars)
	for trial := 0; trial < 300; trial++ {
		ms := sparql.NewMappingSet()
		for i, n := 0, rng.Intn(60); i < n; i++ {
			ms.Add(randomMapping(rng, vars, workload.DefaultIRIs))
		}
		c := sparql.Codec{Schema: sc, Dict: rdf.NewDict()}
		rs, ok := sparql.EncodeMappingSet(ms, c)
		if !ok {
			t.Fatal("encode failed")
		}
		want := ms.MaximalNaive()
		got, err := rs.MaximalParMin(nil, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if gs := got.MappingSet(c.Dict); !gs.Equal(want) {
			t.Fatalf("sharded Maximal diverges\nin:  %v\ngot: %v\nwant:%v", ms, gs, want)
		}
		if gs, ws := got.MappingSet(c.Dict), rs.Maximal().MappingSet(c.Dict); !gs.Equal(ws) {
			t.Fatalf("sharded Maximal != serial Maximal on %v", ms)
		}
	}
}

// TestBudgetConcurrentExact hammers one Budget from many goroutines
// and checks that no charge is lost: the atomic counters must add up
// exactly.
func TestBudgetConcurrentExact(t *testing.T) {
	const workers, per = 8, 20000
	b := sparql.NewBudget(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.Step(); err != nil {
					t.Errorf("unlimited budget failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.Steps(); got != workers*per {
		t.Fatalf("lost steps under concurrency: got %d want %d", got, workers*per)
	}
}

// TestBudgetConcurrentSticky trips a step limit from many goroutines
// at once: every worker must observe the same typed error, and the
// overshoot past the limit is bounded by the worker count (each may be
// one Step past the limit when the first failure publishes).
func TestBudgetConcurrentSticky(t *testing.T) {
	const workers, limit = 8, 5000
	b := sparql.NewBudget(context.Background()).WithMaxSteps(limit).WithStride(1)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := b.Step(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var first error
	for w, err := range errs {
		var be sparql.ErrBudgetExceeded
		if !errors.As(err, &be) || be.Kind != sparql.BudgetSteps {
			t.Fatalf("worker %d: got %v, want ErrBudgetExceeded{steps}", w, err)
		}
		if first == nil {
			first = err
		} else if !errors.Is(err, first) {
			t.Fatalf("sticky error not single-valued: %v vs %v", err, first)
		}
	}
	if got := b.Steps(); got > limit+workers+1 {
		t.Fatalf("overshoot too large: %d steps for limit %d", got, limit)
	}
}

// TestBudgetConcurrentFaultOnce injects a fault and lets many workers
// cross the trigger together: all of them must surface the injected
// sentinel (first publisher wins, everyone reads it back).
func TestBudgetConcurrentFaultOnce(t *testing.T) {
	sentinel := errors.New("injected")
	const workers = 8
	b := sparql.NewBudget(context.Background()).WithStride(1)
	b.InjectFault(100, sentinel)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := b.Step(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, sentinel) {
			t.Fatalf("worker %d: got %v, want the injected sentinel", w, err)
		}
	}
	if !errors.Is(b.Err(), sentinel) {
		t.Fatalf("sticky error is %v, want the injected sentinel", b.Err())
	}
}

// drainedGoroutines waits for the goroutine count to fall back to the
// baseline, failing the test if the pool leaked a worker.
func drainedGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
}

// TestParallelFaultInjectionSweep moves a fault across every step of a
// parallel evaluation, per fragment: whatever the injection point —
// mid-fan-out, mid-partition, mid-merge — the engine must either
// return the exact reference answer (fault never reached) or the
// injected sentinel, with the pool fully drained either way.
func TestParallelFaultInjectionSweep(t *testing.T) {
	sentinel := errors.New("injected fault")
	base := runtime.NumGoroutine()
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(808))
			g := workload.RandomGraph(rng, 25, nil)
			p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
			if fc.ns == "wrap" || fc.ns == "union" {
				p = sparql.NS{P: p}
			}
			want := sparql.Eval(g, p)

			// One ungoverned run bounds the sweep range; the exact step
			// total varies slightly with scheduling (partition merges),
			// so the invariant below holds for every injection point.
			probe := sparql.NewBudget(context.Background()).WithStride(1)
			if _, _, err := sparql.EvalRowsParOpts(g, p, probe, parTestOpts); err != nil {
				t.Fatalf("probe run failed: %v", err)
			}
			total := probe.Steps()
			stride := total / 40
			if stride < 1 {
				stride = 1
			}
			faulted := false
			for at := int64(0); at <= total+1; at += stride {
				b := sparql.NewBudget(context.Background()).WithStride(1)
				b.InjectFault(at, sentinel)
				rs, ok, err := sparql.EvalRowsParOpts(g, p, b, parTestOpts)
				if !ok {
					t.Fatal("schema rejected")
				}
				if err != nil {
					faulted = true
					if !errors.Is(err, sentinel) {
						t.Fatalf("faultAt=%d: got %v, want the sentinel", at, err)
					}
					continue
				}
				if got := rs.MappingSet(g.Dict()); !got.Equal(want) {
					t.Fatalf("faultAt=%d: unfaulted run diverges\ngot: %v\nwant:%v", at, got, want)
				}
			}
			if !faulted && total > 0 {
				t.Fatal("sweep never hit the fault — injection points not exercised")
			}
		})
	}
	drainedGoroutines(t, base)
}

// TestParallelDeadlineDrains points the parallel engine at a join far
// too large to finish, with a deadline far too small: it must come
// back promptly with the typed cancellation error and no leftover
// workers.
func TestParallelDeadlineDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	g := workload.University(workload.UniversityOpts{People: 3000, OptionalPct: 50, FoundersPct: 10, Seed: 2})
	// Two independent join components: the planner-free engine
	// evaluates them as one cartesian product, ~3000² rows.
	p := sparql.And{
		L: sparql.And{
			L: sparql.TP(sparql.V("A"), sparql.I("name"), sparql.V("N")),
			R: sparql.TP(sparql.V("A"), sparql.I("works_at"), sparql.V("U")),
		},
		R: sparql.And{
			L: sparql.TP(sparql.V("B"), sparql.I("name"), sparql.V("M")),
			R: sparql.TP(sparql.V("B"), sparql.I("works_at"), sparql.V("V")),
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	b := sparql.NewBudget(ctx).WithMaxBytes(1 << 30)
	start := time.Now()
	_, ok, err := sparql.EvalRowsParOpts(g, p, b, parTestOpts)
	elapsed := time.Since(start)
	if !ok {
		t.Fatal("schema rejected")
	}
	if err == nil {
		t.Fatal("a 9M-row join finished under a 30ms deadline?")
	}
	if !errors.Is(err, sparql.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v — workers not draining promptly", elapsed)
	}
	drainedGoroutines(t, base)
}

// TestParallelSharedBudgetMemoryLimit checks that the memory estimate
// governs the whole parallel evaluation, not each partition
// separately: the per-partition RowSets all charge the one shared
// Budget, so materializing across N workers cannot launder an
// N×-too-large intermediate past the limit.
func TestParallelSharedBudgetMemoryLimit(t *testing.T) {
	g := workload.University(workload.UniversityOpts{People: 500, OptionalPct: 50, FoundersPct: 10, Seed: 3})
	p := sparql.And{
		L: sparql.TP(sparql.V("P"), sparql.I("name"), sparql.V("N")),
		R: sparql.TP(sparql.V("P"), sparql.I("works_at"), sparql.V("U")),
	}
	b := sparql.NewBudget(context.Background()).WithMaxBytes(4096)
	_, ok, err := sparql.EvalRowsParOpts(g, p, b, parTestOpts)
	if !ok {
		t.Fatal("schema rejected")
	}
	var be sparql.ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != sparql.BudgetMemory {
		t.Fatalf("got %v, want ErrBudgetExceeded{memory}", err)
	}
}
