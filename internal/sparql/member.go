package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// Member decides the evaluation problem of Section 7 — µ ∈ ⟦P⟧_G? —
// without materializing the full answer set.  It runs the constrained
// evaluation EvalCompatible with µ as the constraint, which substitutes
// µ's bindings into triple patterns as constants, pruning the search
// space to mappings compatible with µ.
func Member(g *rdf.Graph, p Pattern, mu Mapping) bool {
	return EvalCompatible(g, p, mu).Contains(mu)
}

// EvalCompatible returns {ν ∈ ⟦P⟧_G | ν ∼ c}: exactly the answers
// compatible with the constraint mapping c.  With c = µ∅ it coincides
// with Eval.
//
// The pruning pushes c through the algebra:
//
//   - triple patterns treat variables bound by c as constants;
//   - AND/UNION/FILTER constrain both sides with c directly (a join
//     result is compatible with c iff both factors are);
//   - SELECT restricts the constraint to the projected variables;
//   - the difference part of OPT and the maximality check of NS re-run
//     the sub-pattern constrained by the *candidate* mapping, since a
//     blocking extension need not be compatible with c.
func EvalCompatible(g *rdf.Graph, p Pattern, c Mapping) *MappingSet {
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleConstrained(g, q, c)
	case And:
		return EvalCompatible(g, q.L, c).JoinHash(EvalCompatible(g, q.R, c))
	case Union:
		return EvalCompatible(g, q.L, c).Union(EvalCompatible(g, q.R, c))
	case Opt:
		left := EvalCompatible(g, q.L, c)
		out := left.JoinHash(EvalCompatible(g, q.R, c))
		for _, mu1 := range left.Mappings() {
			// µ1 survives iff no mapping of ⟦P2⟧ is compatible with it —
			// a check on the *unrestricted* right side, pruned by µ1.
			if EvalCompatible(g, q.R, mu1).Len() == 0 {
				out.Add(mu1)
			}
		}
		return out
	case Filter:
		return EvalCompatible(g, q.P, c).Filter(q.Cond)
	case Select:
		inner := EvalCompatible(g, q.P, c.Restrict(q.Vars))
		return inner.Project(q.Vars)
	case NS:
		cands := EvalCompatible(g, q.P, c)
		out := NewMappingSet()
		for _, mu := range cands.Mappings() {
			// A proper subsumer of µ is compatible with µ but not
			// necessarily with c, so re-evaluate constrained by µ.
			maximal := true
			for _, nu := range EvalCompatible(g, q.P, mu).Mappings() {
				if mu.ProperlySubsumedBy(nu) {
					maximal = false
					break
				}
			}
			if maximal {
				out.Add(mu)
			}
		}
		return out
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// evalTripleConstrained matches a triple pattern with the constraint's
// bindings substituted as constants.
func evalTripleConstrained(g *rdf.Graph, t TriplePattern, c Mapping) *MappingSet {
	bind := func(v Value) Value {
		if v.IsVar() {
			if iri, ok := c[v.Var()]; ok {
				return I(iri)
			}
		}
		return v
	}
	ground := TP(bind(t.S), bind(t.P), bind(t.O))
	out := NewMappingSet()
	for _, mu := range Eval(g, ground).Mappings() {
		// Re-attach the substituted bindings, so that dom(ν) = var(t)
		// as the semantics requires.  (A substituted variable cannot
		// also be matched: it occurs only as a constant in ground.)
		full := mu.Clone()
		for _, v := range Vars(t) {
			if iri, ok := c[v]; ok {
				full[v] = iri
			}
		}
		out.Add(full)
	}
	return out
}
