package sparql

import (
	"repro/internal/rdf"
)

// Member decides the evaluation problem of Section 7 — µ ∈ ⟦P⟧_G? —
// without materializing the full answer set.  It runs the constrained
// evaluation EvalCompatible with µ as the constraint, which substitutes
// µ's bindings into triple patterns as constants, pruning the search
// space to mappings compatible with µ.
func Member(g rdf.Store, p Pattern, mu Mapping) bool {
	return EvalCompatible(g, p, mu).Contains(mu)
}

// EvalCompatible returns {ν ∈ ⟦P⟧_G | ν ∼ c}: exactly the answers
// compatible with the constraint mapping c.  With c = µ∅ it coincides
// with Eval.
//
// The pruning pushes c through the algebra:
//
//   - triple patterns treat variables bound by c as constants;
//   - AND/UNION/FILTER constrain both sides with c directly (a join
//     result is compatible with c iff both factors are);
//   - SELECT restricts the constraint to the projected variables;
//   - the difference part of OPT and the maximality check of NS re-run
//     the sub-pattern constrained by the *candidate* mapping, since a
//     blocking extension need not be compatible with c.
//
// EvalCompatible is the ungoverned wrapper; a malformed pattern yields
// an empty set rather than a panic.  Use EvalCompatibleBudget to bound
// the evaluation.
func EvalCompatible(g rdf.Store, p Pattern, c Mapping) *MappingSet {
	ms, err := EvalCompatibleBudget(g, p, c, nil)
	if err != nil {
		return NewMappingSet()
	}
	return ms
}

// EvalCompatibleBudget is EvalCompatible under a governor.  The OPT
// difference loop and the NS maximality loop re-evaluate the
// sub-pattern once per candidate — exactly the recursions that make
// the non-monotone operators expensive (Theorems 7.2–7.4) — and each
// iteration charges the budget, so cancellation propagates out of
// arbitrarily nested OPT/NS within a bounded amount of work.
func EvalCompatibleBudget(g rdf.Store, p Pattern, c Mapping, b *Budget) (*MappingSet, error) {
	if err := b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleConstrainedB(g, q, c, b)
	case And:
		l, err := EvalCompatibleBudget(g, q.L, c, b)
		if err != nil {
			return nil, err
		}
		r, err := EvalCompatibleBudget(g, q.R, c, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.JoinHash(r), nil
	case Union:
		l, err := EvalCompatibleBudget(g, q.L, c, b)
		if err != nil {
			return nil, err
		}
		r, err := EvalCompatibleBudget(g, q.R, c, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case Opt:
		left, err := EvalCompatibleBudget(g, q.L, c, b)
		if err != nil {
			return nil, err
		}
		right, err := EvalCompatibleBudget(g, q.R, c, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(left.Len() + right.Len()); err != nil {
			return nil, err
		}
		out := left.JoinHash(right)
		for _, mu1 := range left.Mappings() {
			// µ1 survives iff no mapping of ⟦P2⟧ is compatible with it —
			// a check on the *unrestricted* right side, pruned by µ1.
			blocked, err := EvalCompatibleBudget(g, q.R, mu1, b)
			if err != nil {
				return nil, err
			}
			if blocked.Len() == 0 {
				out.Add(mu1)
			}
		}
		return out, nil
	case Filter:
		inner, err := EvalCompatibleBudget(g, q.P, c, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Filter(q.Cond), nil
	case Select:
		inner, err := EvalCompatibleBudget(g, q.P, c.Restrict(q.Vars), b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Project(q.Vars), nil
	case NS:
		cands, err := EvalCompatibleBudget(g, q.P, c, b)
		if err != nil {
			return nil, err
		}
		out := NewMappingSet()
		for _, mu := range cands.Mappings() {
			// A proper subsumer of µ is compatible with µ but not
			// necessarily with c, so re-evaluate constrained by µ.
			subs, err := EvalCompatibleBudget(g, q.P, mu, b)
			if err != nil {
				return nil, err
			}
			maximal := true
			for _, nu := range subs.Mappings() {
				if err := b.Step(); err != nil {
					return nil, err
				}
				if mu.ProperlySubsumedBy(nu) {
					maximal = false
					break
				}
			}
			if maximal {
				out.Add(mu)
			}
		}
		return out, nil
	default:
		return nil, ErrUnsupportedPattern{Pattern: p}
	}
}

// evalTripleConstrainedB matches a triple pattern with the constraint's
// bindings substituted as constants; each index match charges one step.
func evalTripleConstrainedB(g rdf.Store, t TriplePattern, c Mapping, b *Budget) (*MappingSet, error) {
	bind := func(v Value) Value {
		if v.IsVar() {
			if iri, ok := c[v.Var()]; ok {
				return I(iri)
			}
		}
		return v
	}
	ground := TP(bind(t.S), bind(t.P), bind(t.O))
	matches, err := evalTripleBudget(g, ground, b)
	if err != nil {
		return nil, err
	}
	out := NewMappingSet()
	for _, mu := range matches.Mappings() {
		// Re-attach the substituted bindings, so that dom(ν) = var(t)
		// as the semantics requires.  (A substituted variable cannot
		// also be matched: it occurs only as a constant in ground.)
		full := mu.Clone()
		for _, v := range Vars(t) {
			if iri, ok := c[v]; ok {
				full[v] = iri
			}
		}
		out.Add(full)
	}
	return out, nil
}
