package sparql_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// withMergeJoin runs fn under the given MergeJoinEnabled setting,
// restoring the previous value.
func withMergeJoin(enabled bool, fn func()) {
	prev := sparql.MergeJoinEnabled
	sparql.MergeJoinEnabled = enabled
	defer func() { sparql.MergeJoinEnabled = prev }()
	fn()
}

// TestMergeJoinAgreesWithHashJoinQuick: on random patterns × random
// graphs per fragment, the row engine with the merge fast path enabled,
// the row engine with it disabled (pure hash join), and the string
// reference evaluator all produce the same answer set.
func TestMergeJoinAgreesWithHashJoinQuick(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5150))
			for trial := 0; trial < 120; trial++ {
				g := workload.RandomGraph(rng, 2+rng.Intn(30), nil)
				p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
				if fc.ns == "wrap" {
					p = sparql.NS{P: p}
				}
				want := sparql.Eval(g, p)
				var merged, hashed *sparql.MappingSet
				withMergeJoin(true, func() { merged = sparql.EvalRowEngine(g, p) })
				withMergeJoin(false, func() { hashed = sparql.EvalRowEngine(g, p) })
				if !merged.Equal(want) {
					t.Fatalf("trial %d: merge-enabled engine diverges from reference on\n%s\ngot: %v\nwant:%v",
						trial, p, merged, want)
				}
				if !hashed.Equal(want) {
					t.Fatalf("trial %d: merge-disabled engine diverges from reference on\n%s",
						trial, p)
				}
				// Parallel engine with the fast path enabled.
				withMergeJoin(true, func() {
					rs, ok := sparql.EvalRowsPar(g, p, 4)
					if !ok {
						t.Fatalf("trial %d: parallel engine rejected small pattern", trial)
					}
					if got := rs.MappingSet(g.Dict()); !got.Equal(want) {
						t.Fatalf("trial %d: parallel merge-enabled engine diverges on\n%s", trial, p)
					}
				})
			}
		})
	}
}

// mergeEligible builds a graph and query pair that must take the merge
// fast path: both operands are triple-pattern scans whose emission
// order leads with the shared variable ?x.
func mergeEligible() (*rdf.Graph, sparql.Pattern, sparql.Pattern) {
	g := rdf.NewGraph()
	for i := 0; i < 40; i++ {
		s := rdf.IRI(fmt.Sprintf("person_%d", i))
		g.Add(s, "works_at", rdf.IRI(fmt.Sprintf("uni_%d", i%3)))
		if i%2 == 0 {
			g.Add(s, "born_in", rdf.IRI(fmt.Sprintf("country_%d", i%5)))
		}
	}
	l := sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("works_at"), O: sparql.I("uni_1")}
	r := sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("born_in"), O: sparql.I("country_0")}
	return g, l, r
}

// TestMergeJoinTakesFastPath pins that eligible shapes actually run the
// merge path (merge_runs appears in the profile) and produce the
// reference answers, for both AND and OPT.
func TestMergeJoinTakesFastPath(t *testing.T) {
	g, l, r := mergeEligible()
	for _, tc := range []struct {
		name string
		p    sparql.Pattern
	}{
		{"and", sparql.And{L: l, R: r}},
		{"opt", sparql.Opt{L: l, R: r}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sparql.Eval(g, tc.p)
			prof := obs.NewNode("query", "")
			rs, ok, err := sparql.EvalRowsProf(g, tc.p, sparql.NewBudget(context.Background()), prof)
			if err != nil || !ok {
				t.Fatalf("eval: ok=%v err=%v", ok, err)
			}
			if got := rs.MappingSet(g.Dict()); !got.Equal(want) {
				t.Fatalf("merge path diverges\ngot: %v\nwant:%v", got, want)
			}
			snap := prof.Snapshot()
			if runs := snap.Sum(func(n *obs.Profile) int64 { return n.MergeRuns }); runs == 0 {
				t.Fatalf("eligible %s did not take the merge path (no merge_runs in profile)", tc.name)
			}
			if scans := snap.Sum(func(n *obs.Profile) int64 { return n.RangeScans }); scans != 2 {
				t.Fatalf("range_scans = %d, want 2 (one per operand)", scans)
			}
		})
	}
}

// TestMergeJoinIneligibleShapesFallBack: shapes that must not merge —
// different lead variables, a repeated variable, no shared lead — still
// agree with the reference (through the hash join) and record no merge
// runs.
func TestMergeJoinIneligibleShapesFallBack(t *testing.T) {
	g, l, _ := mergeEligible()
	for _, tc := range []struct {
		name string
		p    sparql.Pattern
	}{
		// (?x works_at uni_1) leads with ?x; (?x born_in ?c) leads with ?c.
		{"different-leads", sparql.And{
			L: l,
			R: sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("born_in"), O: sparql.V("c")},
		}},
		// Repeated variable on one side.
		{"repeated-var", sparql.And{
			L: sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("works_at"), O: sparql.V("x")},
			R: l,
		}},
		// One side is not a triple pattern.
		{"non-triple", sparql.And{L: sparql.And{L: l, R: l}, R: l}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sparql.Eval(g, tc.p)
			prof := obs.NewNode("query", "")
			rs, ok, err := sparql.EvalRowsProf(g, tc.p, sparql.NewBudget(context.Background()), prof)
			if err != nil || !ok {
				t.Fatalf("eval: ok=%v err=%v", ok, err)
			}
			if got := rs.MappingSet(g.Dict()); !got.Equal(want) {
				t.Fatalf("fallback diverges\ngot: %v\nwant:%v", got, want)
			}
			root := prof.Snapshot().Children[0]
			if root.MergeRuns != 0 {
				t.Fatalf("ineligible %s recorded merge_runs=%d on the root operator", tc.name, root.MergeRuns)
			}
		})
	}
}

// TestMergeJoinThroughMutationAndCompaction interleaves mutation (with
// a tiny compaction threshold so queries see every overlay/base split)
// with merge-eligible queries, checking the fast path against the
// reference after every batch.
func TestMergeJoinThroughMutationAndCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(5151))
	g := rdf.NewGraph()
	g.SetCompactionThreshold(3)
	l := sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("works_at"), O: sparql.I("uni_0")}
	r := sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("born_in"), O: sparql.I("country_0")}
	patterns := []sparql.Pattern{
		sparql.And{L: l, R: r},
		sparql.Opt{L: l, R: r},
	}
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			s := rdf.IRI(fmt.Sprintf("person_%d", rng.Intn(25)))
			switch rng.Intn(4) {
			case 0:
				g.Remove(s, "works_at", rdf.IRI(fmt.Sprintf("uni_%d", rng.Intn(2))))
			case 1:
				g.Remove(s, "born_in", rdf.IRI(fmt.Sprintf("country_%d", rng.Intn(2))))
			case 2:
				g.Add(s, "works_at", rdf.IRI(fmt.Sprintf("uni_%d", rng.Intn(2))))
			default:
				g.Add(s, "born_in", rdf.IRI(fmt.Sprintf("country_%d", rng.Intn(2))))
			}
		}
		for _, p := range patterns {
			want := sparql.Eval(g, p)
			got := sparql.EvalRowEngine(g, p)
			if !got.Equal(want) {
				st := g.Stats()
				t.Fatalf("round %d: merge path diverges (store %+v) on\n%s\ngot: %v\nwant:%v",
					round, st, p, got, want)
			}
		}
	}
	if g.Stats().Compactions == 0 {
		t.Fatal("test never compacted; threshold plumbing broken")
	}
}

// TestMergeJoinFaultInjection sweeps an injected governor fault through
// every reachable step count of a merge-path evaluation: the injected
// sentinel (and nothing else) surfaces, and a clean re-run still
// agrees with the reference.
func TestMergeJoinFaultInjection(t *testing.T) {
	g, l, r := mergeEligible()
	for _, p := range []sparql.Pattern{
		sparql.And{L: l, R: r},
		sparql.Opt{L: l, R: r},
	} {
		want := sparql.Eval(g, p)
		b := sparql.NewBudget(context.Background())
		rs, ok, err := sparql.EvalRowsBudget(g, p, b)
		if err != nil || !ok {
			t.Fatalf("governed merge eval failed without fault: ok=%v err=%v", ok, err)
		}
		if got := rs.MappingSet(g.Dict()); !got.Equal(want) {
			t.Fatalf("governed merge eval diverges")
		}
		total := b.Steps()
		for _, n := range injectionPoints(total, 32) {
			b2 := sparql.NewBudget(nil)
			b2.InjectFault(n, errInjected)
			rs2, ok2, err := sparql.EvalRowsBudget(g, p, b2)
			if err == nil {
				if !ok2 || !rs2.MappingSet(g.Dict()).Equal(want) {
					t.Fatalf("fault@%d/%d: completed with wrong answers", n, total)
				}
				continue
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("fault@%d/%d: err = %v, want injected sentinel", n, total, err)
			}
		}
	}
}
