package sparql

import (
	"math/bits"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// This file is the planner-facing surface of the row engine's join
// strategy choice.  The engine historically picked merge-vs-hash with a
// purely structural gate at dispatch time (tryMergeScanJoin); the
// cost-based planner (internal/plan) now decides per binary node and
// passes its decisions down as EvalHints, keyed by the node's pattern
// text.  A nil *EvalHints (or a node with no entry) keeps the
// structural auto behaviour, so every pre-existing entry point is
// unchanged.

// JoinStrategy is the planner's decision for one And/Opt node.
type JoinStrategy uint8

const (
	// StrategyAuto lets the engine decide structurally (the default):
	// the merge fast path runs whenever both operands are index scans
	// sharing their leading sort variable.
	StrategyAuto JoinStrategy = iota
	// StrategyMerge asks for the sort-merge fast path.  It is advisory:
	// a node whose operands do not qualify structurally still runs the
	// hash join (the engine never executes an unsound merge).
	StrategyMerge
	// StrategyHash forces the hash join even when the merge path would
	// qualify.  Used by the planner's cost gate and by ablations.
	StrategyHash
)

// String names the strategy for plan explanations.
func (s JoinStrategy) String() string {
	switch s {
	case StrategyMerge:
		return "merge"
	case StrategyHash:
		return "hash"
	}
	return "auto"
}

// EvalHints carries the planner's per-node execution decisions into the
// row engine.  Nodes are keyed by their pattern text (Pattern.String()),
// so identical subtrees share one decision; a missing key means
// StrategyAuto.  Hints are read-only during evaluation and safe to
// share across concurrent queries.
type EvalHints struct {
	// Join maps an And/Opt node's String() to its join strategy.
	Join map[string]JoinStrategy
}

// JoinStrategyFor returns the hinted strategy for node p
// (StrategyAuto on a nil receiver or a missing entry).
func (h *EvalHints) JoinStrategyFor(p Pattern) JoinStrategy {
	if h == nil || h.Join == nil {
		return StrategyAuto
	}
	return h.Join[p.String()]
}

// ScanLeadVar returns the variable whose values an index scan for t
// emits in nondecreasing order — the leading free position of the
// permutation the sorted store picks for t's constants.  ok = false
// when the pattern has no variables or repeats one (mirroring
// scanLeadSlot's run-soundness restriction).  It is purely structural
// (no dictionary or schema needed), so the planner can reason about
// merge-join eligibility before evaluation.
func ScanLeadVar(t TriplePattern) (Var, bool) {
	pos := [3]Value{t.S, t.P, t.O}
	cbits := 0
	nvars := 0
	for i, v := range pos {
		if !v.IsVar() {
			cbits |= 1 << i
		} else {
			nvars++
		}
	}
	if nvars == 0 {
		return "", false
	}
	// Repeated variables filter rows, breaking run alignment.
	seen := map[Var]bool{}
	for _, v := range pos {
		if v.IsVar() {
			if seen[v.Var()] {
				return "", false
			}
			seen[v.Var()] = true
		}
	}
	if bits.OnesCount(uint(cbits))+nvars != 3 {
		return "", false
	}
	// Mirror of scanLeadSlot / rdf's chooseIndex.
	var lead int
	switch cbits {
	case 0b011: // S,P const -> SPO, ordered by O
		lead = 2
	case 0b110, 0b100, 0b000: // P,O / O / none -> ordered by S
		lead = 0
	case 0b101, 0b001: // S,O / S -> ordered by P
		lead = 1
	case 0b010: // P const -> POS, ordered by O
		lead = 2
	}
	return pos[lead].Var(), true
}

// EvalPatternRows evaluates one sub-pattern under an existing
// query-wide schema, attaching its operator profile under parent — the
// building block of the planner's adaptive chain executor, which
// evaluates an AND chain operand by operand and joins the row sets
// itself.  sc must cover var(p) (the planner builds it from the whole
// query); h carries join-strategy hints for nested binary nodes.
func EvalPatternRows(g rdf.Store, p Pattern, sc *VarSchema, b *Budget, parent *obs.Node, h *EvalHints) (*RowSet, error) {
	return evalRowsB(g, p, sc, b, parent, h)
}

// TryMergeScanJoin exposes the sort-merge fast path for l ⋈ r (outer =
// false) or l ⟕ r (outer = true) to the planner's adaptive executor.
// handled = false means the operands don't qualify structurally and
// nothing was evaluated or recorded; the caller must run its standard
// path.  See tryMergeScanJoin for the profile contract.
func TryMergeScanJoin(g rdf.Store, lp, rp Pattern, sc *VarSchema, b *Budget, node *obs.Node, outer bool) (*RowSet, bool, error) {
	return tryMergeScanJoin(g, lp, rp, sc, b, node, outer)
}
