package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Pattern is an NS-SPARQL graph pattern: a triple pattern, or one of
// the operators AND, UNION, OPT, FILTER, SELECT (Section 2.1) and NS
// (Section 5.1) applied to sub-patterns.
type Pattern interface {
	// String renders the pattern in the concrete syntax accepted by the
	// parser package.
	String() string
	isPattern()
}

// TriplePattern is a triple in (I ∪ V) × (I ∪ V) × (I ∪ V).
type TriplePattern struct{ S, P, O Value }

// And is (P1 AND P2).
type And struct{ L, R Pattern }

// Union is (P1 UNION P2).
type Union struct{ L, R Pattern }

// Opt is (P1 OPT P2).
type Opt struct{ L, R Pattern }

// Filter is (P FILTER R).
type Filter struct {
	P    Pattern
	Cond Condition
}

// Select is (SELECT V WHERE P).  Vars must be sorted and duplicate-free;
// use NewSelect to normalize.
type Select struct {
	Vars []Var
	P    Pattern
}

// NS is NS(P), the not-subsumed operator of Section 5.1:
// ⟦NS(P)⟧_G = ⟦P⟧_G^max, the subsumption-maximal answers.
type NS struct{ P Pattern }

func (TriplePattern) isPattern() {}
func (And) isPattern()           {}
func (Union) isPattern()         {}
func (Opt) isPattern()           {}
func (Filter) isPattern()        {}
func (Select) isPattern()        {}
func (NS) isPattern()            {}

// TP builds a triple pattern.
func TP(s, p, o Value) TriplePattern { return TriplePattern{S: s, P: p, O: o} }

// NewSelect builds a Select with the variable list sorted and
// de-duplicated.
func NewSelect(vars []Var, p Pattern) Select {
	seen := make(map[Var]struct{}, len(vars))
	out := make([]Var, 0, len(vars))
	for _, v := range vars {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Select{Vars: out, P: p}
}

func (t TriplePattern) String() string {
	return fmt.Sprintf("(%s %s %s)", t.S, t.P, t.O)
}

func (p And) String() string   { return fmt.Sprintf("(%s AND %s)", p.L, p.R) }
func (p Union) String() string { return fmt.Sprintf("(%s UNION %s)", p.L, p.R) }
func (p Opt) String() string   { return fmt.Sprintf("(%s OPT %s)", p.L, p.R) }
func (p Filter) String() string {
	return fmt.Sprintf("(%s FILTER (%s))", p.P, p.Cond)
}

func (p Select) String() string {
	names := make([]string, len(p.Vars))
	for i, v := range p.Vars {
		names[i] = v.String()
	}
	return fmt.Sprintf("(SELECT {%s} WHERE %s)", strings.Join(names, ", "), p.P)
}

func (p NS) String() string { return fmt.Sprintf("NS(%s)", p.P) }

// Vars returns var(P): all variables mentioned in P (including inside
// FILTER conditions and SELECT lists), sorted.
func Vars(p Pattern) []Var {
	set := make(map[Var]struct{})
	varsInto(p, set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func varsInto(p Pattern, set map[Var]struct{}) {
	switch q := p.(type) {
	case TriplePattern:
		for _, v := range []Value{q.S, q.P, q.O} {
			if v.IsVar() {
				set[v.Var()] = struct{}{}
			}
		}
	case And:
		varsInto(q.L, set)
		varsInto(q.R, set)
	case Union:
		varsInto(q.L, set)
		varsInto(q.R, set)
	case Opt:
		varsInto(q.L, set)
		varsInto(q.R, set)
	case Filter:
		varsInto(q.P, set)
		for _, v := range q.Cond.Vars(nil) {
			set[v] = struct{}{}
		}
	case Select:
		varsInto(q.P, set)
		for _, v := range q.Vars {
			set[v] = struct{}{}
		}
	case NS:
		varsInto(q.P, set)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// TriplePatterns returns the distinct triple patterns occurring in P,
// in first-occurrence (left-to-right) order.  The answer to any
// NS-SPARQL pattern over a graph G is a function of the match sets
// ⟦tp⟧_G of exactly these triple patterns — every operator (AND,
// UNION, OPT, FILTER, SELECT, NS) is defined compositionally from
// them and never consults G directly — so a distributed evaluator may
// gather ⋃_tp matches(G, tp) from the shards of a partition of G and
// evaluate P locally on that subgraph with an answer identical to
// evaluating over G.  The cluster coordinator relies on this.
func TriplePatterns(p Pattern) []TriplePattern {
	seen := make(map[TriplePattern]struct{})
	var out []TriplePattern
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch q := p.(type) {
		case TriplePattern:
			if _, ok := seen[q]; !ok {
				seen[q] = struct{}{}
				out = append(out, q)
			}
		case And:
			walk(q.L)
			walk(q.R)
		case Union:
			walk(q.L)
			walk(q.R)
		case Opt:
			walk(q.L)
			walk(q.R)
		case Filter:
			walk(q.P)
		case Select:
			walk(q.P)
		case NS:
			walk(q.P)
		default:
			panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
		}
	}
	walk(p)
	return out
}

// InScopeVars returns the variables that can occur in the domain of an
// answer to P: all variables for the operators of the paper, except
// that SELECT restricts scope to its variable list.
func InScopeVars(p Pattern) []Var {
	set := make(map[Var]struct{})
	inScopeInto(p, set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func inScopeInto(p Pattern, set map[Var]struct{}) {
	switch q := p.(type) {
	case TriplePattern:
		varsInto(q, set)
	case And:
		inScopeInto(q.L, set)
		inScopeInto(q.R, set)
	case Union:
		inScopeInto(q.L, set)
		inScopeInto(q.R, set)
	case Opt:
		inScopeInto(q.L, set)
		inScopeInto(q.R, set)
	case Filter:
		inScopeInto(q.P, set)
	case Select:
		inner := make(map[Var]struct{})
		inScopeInto(q.P, inner)
		for _, v := range q.Vars {
			if _, ok := inner[v]; ok {
				set[v] = struct{}{}
			}
		}
	case NS:
		inScopeInto(q.P, set)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// IRIs returns I(P): all IRIs mentioned in P (including FILTER
// constants), sorted.
func IRIs(p Pattern) []rdf.IRI {
	set := make(map[rdf.IRI]struct{})
	irisInto(p, set)
	out := make([]rdf.IRI, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func irisInto(p Pattern, set map[rdf.IRI]struct{}) {
	switch q := p.(type) {
	case TriplePattern:
		for _, v := range []Value{q.S, q.P, q.O} {
			if !v.IsVar() {
				set[v.IRI()] = struct{}{}
			}
		}
	case And:
		irisInto(q.L, set)
		irisInto(q.R, set)
	case Union:
		irisInto(q.L, set)
		irisInto(q.R, set)
	case Opt:
		irisInto(q.L, set)
		irisInto(q.R, set)
	case Filter:
		irisInto(q.P, set)
		condIRIsInto(q.Cond, set)
	case Select:
		irisInto(q.P, set)
	case NS:
		irisInto(q.P, set)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

func condIRIsInto(c Condition, set map[rdf.IRI]struct{}) {
	switch r := c.(type) {
	case EqConst:
		set[r.C] = struct{}{}
	case Not:
		condIRIsInto(r.R, set)
	case AndCond:
		condIRIsInto(r.L, set)
		condIRIsInto(r.R, set)
	case OrCond:
		condIRIsInto(r.L, set)
		condIRIsInto(r.R, set)
	}
}

// Equal reports structural equality of two patterns.
func Equal(a, b Pattern) bool {
	switch x := a.(type) {
	case TriplePattern:
		y, ok := b.(TriplePattern)
		return ok && x == y
	case And:
		y, ok := b.(And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Union:
		y, ok := b.(Union)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Opt:
		y, ok := b.(Opt)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Filter:
		y, ok := b.(Filter)
		return ok && Equal(x.P, y.P) && CondEqual(x.Cond, y.Cond)
	case Select:
		y, ok := b.(Select)
		if !ok || len(x.Vars) != len(y.Vars) {
			return false
		}
		for i := range x.Vars {
			if x.Vars[i] != y.Vars[i] {
				return false
			}
		}
		return Equal(x.P, y.P)
	case NS:
		y, ok := b.(NS)
		return ok && Equal(x.P, y.P)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", a))
	}
}

// Size returns the number of AST nodes of P (triple patterns and
// operators; FILTER conditions count as one node).  Used to measure the
// growth of rewrites such as NS elimination (Theorem 5.1).
func Size(p Pattern) int {
	switch q := p.(type) {
	case TriplePattern:
		return 1
	case And:
		return 1 + Size(q.L) + Size(q.R)
	case Union:
		return 1 + Size(q.L) + Size(q.R)
	case Opt:
		return 1 + Size(q.L) + Size(q.R)
	case Filter:
		return 2 + Size(q.P)
	case Select:
		return 1 + Size(q.P)
	case NS:
		return 1 + Size(q.P)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// Op identifies a pattern operator for fragment classification.
type Op int

// Operator identifiers; OpTriple is counted for completeness but every
// fragment admits triple patterns.
const (
	OpTriple Op = iota
	OpAnd
	OpUnion
	OpOpt
	OpFilter
	OpSelect
	OpNS
)

var opNames = map[Op]string{
	OpTriple: "triple", OpAnd: "AND", OpUnion: "UNION",
	OpOpt: "OPT", OpFilter: "FILTER", OpSelect: "SELECT", OpNS: "NS",
}

// String returns the operator keyword.
func (o Op) String() string { return opNames[o] }

// OpSet is a set of operators, used to denote fragments such as
// SPARQL[AUFS] = {AND, UNION, FILTER, SELECT}.
type OpSet map[Op]bool

// Fragment shorthands from the paper.
var (
	FragmentAF    = OpSet{OpAnd: true, OpFilter: true}
	FragmentAOF   = OpSet{OpAnd: true, OpOpt: true, OpFilter: true}
	FragmentAUOF  = OpSet{OpAnd: true, OpUnion: true, OpOpt: true, OpFilter: true}
	FragmentAFS   = OpSet{OpAnd: true, OpFilter: true, OpSelect: true}
	FragmentAUF   = OpSet{OpAnd: true, OpUnion: true, OpFilter: true}
	FragmentAUFS  = OpSet{OpAnd: true, OpUnion: true, OpFilter: true, OpSelect: true}
	FragmentFull  = OpSet{OpAnd: true, OpUnion: true, OpOpt: true, OpFilter: true, OpSelect: true}
	FragmentNSAll = OpSet{OpAnd: true, OpUnion: true, OpOpt: true, OpFilter: true, OpSelect: true, OpNS: true}
)

// Ops returns the set of operators occurring in P.
func Ops(p Pattern) OpSet {
	out := make(OpSet)
	opsInto(p, out)
	return out
}

func opsInto(p Pattern, out OpSet) {
	switch q := p.(type) {
	case TriplePattern:
	case And:
		out[OpAnd] = true
		opsInto(q.L, out)
		opsInto(q.R, out)
	case Union:
		out[OpUnion] = true
		opsInto(q.L, out)
		opsInto(q.R, out)
	case Opt:
		out[OpOpt] = true
		opsInto(q.L, out)
		opsInto(q.R, out)
	case Filter:
		out[OpFilter] = true
		opsInto(q.P, out)
	case Select:
		out[OpSelect] = true
		opsInto(q.P, out)
	case NS:
		out[OpNS] = true
		opsInto(q.P, out)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// InFragment reports whether P uses only operators from the given set.
func InFragment(p Pattern, frag OpSet) bool {
	for op := range Ops(p) {
		if !frag[op] {
			return false
		}
	}
	return true
}

// IsSimple reports whether P is a simple pattern (Definition 5.3):
// NS(Q) with Q in SPARQL[AUFS].
func IsSimple(p Pattern) bool {
	ns, ok := p.(NS)
	return ok && InFragment(ns.P, FragmentAUFS)
}

// IsNSPattern reports whether P is an ns-pattern (Definition 5.7): a
// union P1 UNION ⋯ UNION Pn of simple patterns.
func IsNSPattern(p Pattern) bool {
	for _, d := range UnionDisjuncts(p) {
		if !IsSimple(d) {
			return false
		}
	}
	return true
}

// UnionDisjuncts flattens top-level UNIONs and returns the disjuncts in
// left-to-right order.
func UnionDisjuncts(p Pattern) []Pattern {
	if u, ok := p.(Union); ok {
		return append(UnionDisjuncts(u.L), UnionDisjuncts(u.R)...)
	}
	return []Pattern{p}
}

// UnionOf folds patterns into a left-associated UNION chain.  It panics
// on an empty list (SPARQL has no empty pattern).
func UnionOf(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("sparql: UnionOf of no patterns")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Union{L: out, R: p}
	}
	return out
}

// AndOf folds patterns into a left-associated AND chain.  It panics on
// an empty list.
func AndOf(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("sparql: AndOf of no patterns")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = And{L: out, R: p}
	}
	return out
}
