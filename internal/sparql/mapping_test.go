package sparql

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestMappingBasics(t *testing.T) {
	mu := M("X", "juan", "Y", "juan@puc.cl")
	if got := mu.Domain(); !reflect.DeepEqual(got, []Var{"X", "Y"}) {
		t.Fatalf("Domain = %v", got)
	}
	if mu.String() != "[?X → juan, ?Y → juan@puc.cl]" {
		t.Fatalf("String = %q", mu.String())
	}
	cl := mu.Clone()
	cl["Z"] = "z"
	if _, ok := mu["Z"]; ok {
		t.Fatal("Clone is not independent")
	}
}

func TestCompatibility(t *testing.T) {
	mu1 := M("X", "a", "Y", "b")
	mu2 := M("Y", "b", "Z", "c")
	mu3 := M("Y", "OTHER")
	if !mu1.CompatibleWith(mu2) || !mu2.CompatibleWith(mu1) {
		t.Fatal("agreeing mappings reported incompatible")
	}
	if mu1.CompatibleWith(mu3) || mu3.CompatibleWith(mu1) {
		t.Fatal("disagreeing mappings reported compatible")
	}
	empty := M()
	if !empty.CompatibleWith(mu1) || !mu1.CompatibleWith(empty) {
		t.Fatal("empty mapping must be compatible with everything")
	}
	got := mu1.Merge(mu2)
	want := M("X", "a", "Y", "b", "Z", "c")
	if !got.Equal(want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
}

func TestSubsumption(t *testing.T) {
	small := M("X", "a")
	big := M("X", "a", "Y", "b")
	other := M("X", "DIFFERENT")
	if !small.SubsumedBy(big) {
		t.Fatal("⪯ failed on extension")
	}
	if !small.SubsumedBy(small) {
		t.Fatal("⪯ must be reflexive")
	}
	if small.ProperlySubsumedBy(small) {
		t.Fatal("≺ must be irreflexive")
	}
	if !small.ProperlySubsumedBy(big) {
		t.Fatal("≺ failed on strict extension")
	}
	if big.SubsumedBy(small) {
		t.Fatal("⪯ held in the wrong direction")
	}
	if small.SubsumedBy(other) || other.SubsumedBy(small) {
		t.Fatal("⪯ held between incompatible mappings")
	}
	if !M().SubsumedBy(small) {
		t.Fatal("empty mapping must be subsumed by everything")
	}
}

func TestRestrictAndBind(t *testing.T) {
	mu := M("X", "a", "Y", "b", "Z", "c")
	got := mu.Restrict([]Var{"X", "Z", "W"})
	if !got.Equal(M("X", "a", "Z", "c")) {
		t.Fatalf("Restrict = %v", got)
	}
	b := mu.Bind("W", "w")
	if !b.Equal(M("X", "a", "Y", "b", "Z", "c", "W", "w")) {
		t.Fatalf("Bind = %v", b)
	}
	if _, ok := mu["W"]; ok {
		t.Fatal("Bind mutated receiver")
	}
}

func TestApply(t *testing.T) {
	mu := M("X", "juan", "Y", "chile")
	tp := TP(V("X"), I("was_born_in"), V("Y"))
	tr, ok := mu.Apply(tp)
	if !ok || tr != rdf.T("juan", "was_born_in", "chile") {
		t.Fatalf("Apply = %v, %v", tr, ok)
	}
	if _, ok := M("X", "juan").Apply(tp); ok {
		t.Fatal("Apply succeeded with unbound variable")
	}
	tr, ok = mu.Apply(TP(I("a"), I("b"), I("c")))
	if !ok || tr != rdf.T("a", "b", "c") {
		t.Fatal("Apply failed on ground triple pattern")
	}
}

// randomMapping draws a mapping over vars X0..X{nv-1} with values from a
// small IRI pool, so that compatible/subsumed pairs are common.
func randomMapping(rng *rand.Rand, nv, nIRIs int) Mapping {
	mu := make(Mapping)
	for i := 0; i < nv; i++ {
		switch rng.Intn(3) {
		case 0:
			mu[Var(rune('A'+i))] = rdf.IRI(rune('a' + rng.Intn(nIRIs)))
		}
	}
	return mu
}

func TestSubsumptionIsPartialOrderQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMapping(rng, 4, 3)
		b := randomMapping(rng, 4, 3)
		c := randomMapping(rng, 4, 3)
		// Antisymmetry.
		if a.SubsumedBy(b) && b.SubsumedBy(a) && !a.Equal(b) {
			return false
		}
		// Transitivity.
		if a.SubsumedBy(b) && b.SubsumedBy(c) && !a.SubsumedBy(c) {
			return false
		}
		// Reflexivity.
		return a.SubsumedBy(a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSubsumesBothQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMapping(rng, 4, 3)
		b := randomMapping(rng, 4, 3)
		if !a.CompatibleWith(b) {
			return true
		}
		m := a.Merge(b)
		return a.SubsumedBy(m) && b.SubsumedBy(m)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
