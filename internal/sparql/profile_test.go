package sparql_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// profileKids maps a pattern node onto the sub-patterns its profile
// children correspond to, in the order the instrumented evaluators
// create them (left before right; fan-out pre-creates both nodes
// before spawning, so the order is deterministic under parallelism
// too).
func profileKids(p sparql.Pattern) []sparql.Pattern {
	switch q := p.(type) {
	case sparql.And:
		return []sparql.Pattern{q.L, q.R}
	case sparql.Union:
		return []sparql.Pattern{q.L, q.R}
	case sparql.Opt:
		return []sparql.Pattern{q.L, q.R}
	case sparql.Filter:
		return []sparql.Pattern{q.P}
	case sparql.Select:
		return []sparql.Pattern{q.P}
	case sparql.NS:
		return []sparql.Pattern{q.P}
	default:
		return nil
	}
}

// checkProfileNode walks the profile tree alongside the pattern tree,
// holding every per-operator counter to the reference evaluator's
// answer sets: rows out is |⟦P⟧_G|, rows in is the sum of the operand
// answer sets, and NS candidates/survivors are the inner answer set
// before and after the maximality pass (with the per-mask buckets
// summing to the totals).
func checkProfileNode(t *testing.T, g *rdf.Graph, p sparql.Pattern, node *obs.Profile) {
	t.Helper()
	want := sparql.Eval(g, p)
	if node.RowsOut != int64(want.Len()) {
		t.Fatalf("%T: rows_out=%d, reference says %d\npattern: %s",
			p, node.RowsOut, want.Len(), p)
	}
	kids := profileKids(p)
	var wantIn int64
	for _, k := range kids {
		wantIn += int64(sparql.Eval(g, k).Len())
	}
	if node.RowsIn != wantIn {
		t.Fatalf("%T: rows_in=%d, reference says %d\npattern: %s",
			p, node.RowsIn, wantIn, p)
	}
	if q, isNS := p.(sparql.NS); isNS {
		inner := sparql.Eval(g, q.P)
		if node.NSCandidates != int64(inner.Len()) {
			t.Fatalf("NS: candidates=%d, reference says %d\npattern: %s",
				node.NSCandidates, inner.Len(), p)
		}
		if node.NSSurvivors != int64(want.Len()) {
			t.Fatalf("NS: survivors=%d, reference says %d\npattern: %s",
				node.NSSurvivors, want.Len(), p)
		}
		var c, s int64
		for _, b := range node.NSBuckets {
			c += b.Candidates
			s += b.Survivors
		}
		if c != node.NSCandidates || s != node.NSSurvivors {
			t.Fatalf("NS: bucket sums %d/%d != totals %d/%d",
				c, s, node.NSCandidates, node.NSSurvivors)
		}
	}
	if len(node.Children) != len(kids) {
		t.Fatalf("%T: %d profile children, want %d\npattern: %s",
			p, len(node.Children), len(kids), p)
	}
	for i := range kids {
		checkProfileNode(t, g, kids[i], node.Children[i])
	}
}

// profileTrial draws one random graph × pattern for a fragment.
func profileTrial(rng *rand.Rand, fcOps []sparql.Op, ns string) (*rdf.Graph, sparql.Pattern) {
	g := workload.RandomGraph(rng, 2+rng.Intn(25), nil)
	p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fcOps})
	switch ns {
	case "wrap":
		p = sparql.NS{P: p}
	case "union":
		q := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Ops: fcOps})
		p = sparql.Union{L: sparql.NS{P: p}, R: sparql.NS{P: q}}
	}
	return g, p
}

// TestProfileDifferentialSerial: on random patterns × random graphs,
// the serial row engine's profile counters match the reference
// evaluator exactly, node for node.
func TestProfileDifferentialSerial(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8017))
			for trial := 0; trial < 100; trial++ {
				g, p := profileTrial(rng, fc.ops, fc.ns)
				prof := obs.NewNode("query", "")
				rs, ok, err := sparql.EvalRowsProf(g, p, sparql.NewBudget(context.Background()), prof)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !ok {
					continue // schema too wide for the row engine
				}
				if want := sparql.Eval(g, p); !rs.MappingSet(g.Dict()).Equal(want) {
					t.Fatalf("trial %d: profiled eval diverges on\n%s", trial, p)
				}
				snap := prof.Snapshot()
				if len(snap.Children) != 1 {
					t.Fatalf("trial %d: root has %d children, want 1", trial, len(snap.Children))
				}
				checkProfileNode(t, g, p, snap.Children[0])
			}
		})
	}
}

// TestProfileDifferentialParallel is the same property under the
// parallel engine with every fan-out path forced (four workers,
// partition threshold one): the row counters must be schedule
// independent, and the pre-created child nodes must keep the profile
// tree congruent to the pattern tree.
func TestProfileDifferentialParallel(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8020))
			for trial := 0; trial < 100; trial++ {
				g, p := profileTrial(rng, fc.ops, fc.ns)
				prof := obs.NewNode("query", "")
				opts := sparql.ParOptions{Workers: 4, MinPartition: 1, Prof: prof}
				rs, ok, err := sparql.EvalRowsParOpts(g, p, sparql.NewBudget(context.Background()), opts)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !ok {
					continue
				}
				if want := sparql.Eval(g, p); !rs.MappingSet(g.Dict()).Equal(want) {
					t.Fatalf("trial %d: profiled parallel eval diverges on\n%s", trial, p)
				}
				snap := prof.Snapshot()
				if len(snap.Children) != 1 {
					t.Fatalf("trial %d: root has %d children, want 1", trial, len(snap.Children))
				}
				checkProfileNode(t, g, p, snap.Children[0])
			}
		})
	}
}

// TestProfileDedupHits pins the dedup counter on a join that produces
// duplicate rows: (?x p ?y) AND (?z p ?w) projected onto a shared
// variable is not needed — instead use a union of identical branches,
// where every row of the right branch is a dedup hit.
func TestProfileDedupHits(t *testing.T) {
	g := rdf.FromTriples(
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("c", "p", "d"),
	)
	tp := sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("p"), O: sparql.V("y")}
	p := sparql.Union{L: tp, R: tp}
	prof := obs.NewNode("query", "")
	rs, ok, err := sparql.EvalRowsProf(g, p, sparql.NewBudget(context.Background()), prof)
	if err != nil || !ok {
		t.Fatalf("eval: ok=%v err=%v", ok, err)
	}
	if rs.Len() != 3 {
		t.Fatalf("union of identical branches: %d rows, want 3", rs.Len())
	}
	snap := prof.Snapshot()
	union := snap.Find("union")
	if union == nil {
		t.Fatal("no union node in profile")
	}
	if union.DedupHits != 3 {
		t.Fatalf("dedup_hits=%d, want 3 (every right-branch row is a duplicate)", union.DedupHits)
	}
	if union.RowsIn != 6 || union.RowsOut != 3 {
		t.Fatalf("union rows_in=%d rows_out=%d, want 6/3", union.RowsIn, union.RowsOut)
	}
}
