package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Mapping is a partial function µ : V → I from variables to IRIs
// (Section 2 of the paper).  The map keys are dom(µ).
type Mapping map[Var]rdf.IRI

// M builds a mapping from alternating variable/IRI pairs:
// M("X", "juan", "Y", "juan@puc.cl").  It panics on an odd argument
// count; intended for tests and examples.
func M(pairs ...string) Mapping {
	if len(pairs)%2 != 0 {
		panic("sparql: M requires an even number of arguments")
	}
	mu := make(Mapping, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		mu[Var(pairs[i])] = rdf.IRI(pairs[i+1])
	}
	return mu
}

// Domain returns dom(µ) sorted by variable name.
func (mu Mapping) Domain() []Var {
	vs := make([]Var, 0, len(mu))
	for v := range mu {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Clone returns a copy of µ.
func (mu Mapping) Clone() Mapping {
	out := make(Mapping, len(mu))
	for v, i := range mu {
		out[v] = i
	}
	return out
}

// CompatibleWith reports µ1 ∼ µ2: the two mappings agree on every
// variable in dom(µ1) ∩ dom(µ2).
func (mu Mapping) CompatibleWith(nu Mapping) bool {
	a, b := mu, nu
	if len(b) < len(a) {
		a, b = b, a
	}
	for v, i := range a {
		if j, ok := b[v]; ok && j != i {
			return false
		}
	}
	return true
}

// Merge returns µ1 ∪ µ2, the extension of µ1 by the bindings of µ2.
// The caller must ensure µ1 ∼ µ2.
func (mu Mapping) Merge(nu Mapping) Mapping {
	out := make(Mapping, len(mu)+len(nu))
	for v, i := range mu {
		out[v] = i
	}
	for v, i := range nu {
		out[v] = i
	}
	return out
}

// SubsumedBy reports µ1 ⪯ µ2: dom(µ1) ⊆ dom(µ2) and the mappings agree
// on dom(µ1) (Section 3.1).
func (mu Mapping) SubsumedBy(nu Mapping) bool {
	if len(mu) > len(nu) {
		return false
	}
	for v, i := range mu {
		if j, ok := nu[v]; !ok || j != i {
			return false
		}
	}
	return true
}

// ProperlySubsumedBy reports µ1 ≺ µ2: µ1 ⪯ µ2 and µ1 ≠ µ2.
func (mu Mapping) ProperlySubsumedBy(nu Mapping) bool {
	return len(mu) < len(nu) && mu.SubsumedBy(nu)
}

// Equal reports whether the two mappings are identical.
func (mu Mapping) Equal(nu Mapping) bool {
	return len(mu) == len(nu) && mu.SubsumedBy(nu)
}

// Restrict returns µ|V: µ restricted to dom(µ) ∩ V.
func (mu Mapping) Restrict(vars []Var) Mapping {
	out := make(Mapping)
	for _, v := range vars {
		if i, ok := mu[v]; ok {
			out[v] = i
		}
	}
	return out
}

// Bind returns a copy of µ extended with v → iri (overwriting any
// previous binding of v).
func (mu Mapping) Bind(v Var, iri rdf.IRI) Mapping {
	out := mu.Clone()
	out[v] = iri
	return out
}

// Apply returns µ(t), the result of replacing every variable of the
// triple pattern by its image.  ok is false if var(t) ⊄ dom(µ).
func (mu Mapping) Apply(t TriplePattern) (rdf.Triple, bool) {
	s, ok := t.S.Resolve(mu)
	if !ok {
		return rdf.Triple{}, false
	}
	p, ok := t.P.Resolve(mu)
	if !ok {
		return rdf.Triple{}, false
	}
	o, ok := t.O.Resolve(mu)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// key returns a canonical string for µ suitable for use as a set key.
func (mu Mapping) key() string {
	vs := mu.Domain()
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%q=%q;", string(v), string(mu[v]))
	}
	return b.String()
}

// domainKey returns a canonical string for dom(µ).
func (mu Mapping) domainKey() string {
	vs := mu.Domain()
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%q;", string(v))
	}
	return b.String()
}

// String renders µ in the paper's notation, e.g.
// "[?X → juan, ?Y → juan@puc.cl]", with variables sorted.
func (mu Mapping) String() string {
	vs := mu.Domain()
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%s → %s", v, mu[v])
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
