package sparql

// SimplifyCond rewrites a condition into an equivalent, usually smaller
// one: double negations are removed, constants are folded through the
// connectives, and trivial (in)equalities collapse.  The rewriting is
// purely logical — it is sound for every mapping, bound or not.
func SimplifyCond(c Condition) Condition {
	switch r := c.(type) {
	case Bound, TrueCond, FalseCond:
		return r
	case EqConst:
		return r
	case EqVars:
		if r.X == r.Y {
			// ?X = ?X holds exactly when ?X is bound.
			return Bound{X: r.X}
		}
		return r
	case Not:
		inner := SimplifyCond(r.R)
		switch i := inner.(type) {
		case Not:
			return i.R
		case TrueCond:
			return FalseCond{}
		case FalseCond:
			return TrueCond{}
		default:
			return Not{R: inner}
		}
	case AndCond:
		l, rr := SimplifyCond(r.L), SimplifyCond(r.R)
		if _, ok := l.(FalseCond); ok {
			return FalseCond{}
		}
		if _, ok := rr.(FalseCond); ok {
			return FalseCond{}
		}
		if _, ok := l.(TrueCond); ok {
			return rr
		}
		if _, ok := rr.(TrueCond); ok {
			return l
		}
		if CondEqual(l, rr) {
			return l
		}
		return AndCond{L: l, R: rr}
	case OrCond:
		l, rr := SimplifyCond(r.L), SimplifyCond(r.R)
		if _, ok := l.(TrueCond); ok {
			return TrueCond{}
		}
		if _, ok := rr.(TrueCond); ok {
			return TrueCond{}
		}
		if _, ok := l.(FalseCond); ok {
			return rr
		}
		if _, ok := rr.(FalseCond); ok {
			return l
		}
		if CondEqual(l, rr) {
			return l
		}
		return OrCond{L: l, R: rr}
	default:
		panic("sparql: unknown condition type")
	}
}

// SimplifyPattern applies SimplifyCond throughout a pattern and removes
// filters whose condition simplified to true.  Filters that simplified
// to false are kept (as FalseCond filters) rather than rewritten to an
// empty pattern, since SPARQL has no empty-pattern constant.
func SimplifyPattern(p Pattern) Pattern {
	switch q := p.(type) {
	case TriplePattern:
		return q
	case And:
		return And{L: SimplifyPattern(q.L), R: SimplifyPattern(q.R)}
	case Union:
		return Union{L: SimplifyPattern(q.L), R: SimplifyPattern(q.R)}
	case Opt:
		return Opt{L: SimplifyPattern(q.L), R: SimplifyPattern(q.R)}
	case Filter:
		body := SimplifyPattern(q.P)
		cond := SimplifyCond(q.Cond)
		if _, ok := cond.(TrueCond); ok {
			return body
		}
		return Filter{P: body, Cond: cond}
	case Select:
		return Select{Vars: q.Vars, P: SimplifyPattern(q.P)}
	case NS:
		return NS{P: SimplifyPattern(q.P)}
	default:
		panic("sparql: unknown pattern type")
	}
}
