package sparql_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// bindJoinCase draws one random accumulator/probe pair: the
// accumulator is the evaluation of a random sub-pattern (unions and
// optionals included, so rows carry heterogeneous presence masks) and
// the probe is a random triple pattern sharing its schema.
func bindJoinCase(rng *rand.Rand) (g *rdf.Graph, accPat sparql.Pattern, t sparql.TriplePattern, joined sparql.Pattern) {
	g = workload.RandomGraph(rng, 4+rng.Intn(22), nil)
	accPat = workload.RandomPattern(rng, workload.PatternOpts{
		Depth: 2,
		Ops:   []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt},
	})
	t = workload.RandomTriplePattern(rng, &workload.PatternOpts{})
	return g, accPat, t, sparql.And{L: accPat, R: t}
}

// TestBindJoinScanMatchesHashJoin is the bind join's differential
// property: for random accumulators (heterogeneous masks included) and
// random probe triples, BindJoinScan(acc, t) decodes to exactly the
// reference answers of acc AND t — the same set the hash join
// produces.
func TestBindJoinScanMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3030))
	for trial := 0; trial < 300; trial++ {
		g, accPat, probe, joined := bindJoinCase(rng)
		sc, ok := sparql.SchemaFor(joined)
		if !ok {
			continue
		}
		acc, err := sparql.EvalPatternRows(g, accPat, sc, nil, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: accumulator eval failed: %v", trial, err)
		}
		want := sparql.Eval(g, joined)
		got, err := sparql.BindJoinScan(g, acc, probe, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: BindJoinScan failed: %v", trial, err)
		}
		if gs := got.MappingSet(g.Dict()); !gs.Equal(want) {
			t.Fatalf("trial %d: bind join diverges on acc=%s probe=%s\ngot: %v\nwant:%v",
				trial, accPat, probe, gs, want)
		}
	}
}

// TestBindJoinScanParMatchesSerial pins the morsel-parallel bind join
// to the serial one on the same random cases, with single-row morsels
// so the pool engages on tiny accumulators.
func TestBindJoinScanParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4040))
	base := runtime.NumGoroutine()
	for trial := 0; trial < 300; trial++ {
		g, accPat, probe, joined := bindJoinCase(rng)
		sc, ok := sparql.SchemaFor(joined)
		if !ok {
			continue
		}
		acc, err := sparql.EvalPatternRows(g, accPat, sc, nil, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: accumulator eval failed: %v", trial, err)
		}
		want, err := sparql.BindJoinScan(g, acc, probe, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: serial bind join failed: %v", trial, err)
		}
		got, err := sparql.BindJoinScanPar(g, acc, probe, nil, 4, 1, nil)
		if err != nil {
			t.Fatalf("trial %d: parallel bind join failed: %v", trial, err)
		}
		if gs, ws := got.MappingSet(g.Dict()), want.MappingSet(g.Dict()); !gs.Equal(ws) {
			t.Fatalf("trial %d: parallel bind join diverges on acc=%s probe=%s\ngot: %v\nwant:%v",
				trial, accPat, probe, gs, ws)
		}
	}
	drainedGoroutines(t, base)
}

// TestBindJoinFaultInjection sweeps an injected fault across every
// reachable step of serial and morsel-parallel bind joins: the join
// must either complete with the exact reference answer (fault not
// reached) or surface exactly the injected sentinel with a nil result
// — and the worker pool must be fully drained either way (no morsel
// outlives the unwind).
func TestBindJoinFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5050))
	base := runtime.NumGoroutine()
	for trial := 0; trial < 8; trial++ {
		g, accPat, probe, joined := bindJoinCase(rng)
		sc, ok := sparql.SchemaFor(joined)
		if !ok {
			continue
		}
		acc, err := sparql.EvalPatternRows(g, accPat, sc, nil, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: accumulator eval failed: %v", trial, err)
		}
		want := sparql.Eval(g, joined)

		// Probe run bounds the sweep; parallel step totals vary with
		// scheduling, so the sweep asserts the either/or invariant
		// rather than exact totals.
		pb := sparql.NewBudget(context.Background()).WithStride(1)
		if _, err := sparql.BindJoinScan(g, acc, probe, pb, nil); err != nil {
			t.Fatalf("trial %d: probe run failed: %v", trial, err)
		}
		total := pb.Steps()

		for _, mode := range []string{"serial", "parallel"} {
			faulted := false
			for _, at := range injectionPoints(total, 16) {
				b := sparql.NewBudget(context.Background()).WithStride(1)
				b.InjectFault(at, errInjected)
				var rs *sparql.RowSet
				var err error
				if mode == "serial" {
					rs, err = sparql.BindJoinScan(g, acc, probe, b, nil)
				} else {
					rs, err = sparql.BindJoinScanPar(g, acc, probe, b, 4, 1, nil)
				}
				if err != nil {
					faulted = true
					if !errors.Is(err, errInjected) {
						t.Fatalf("trial %d %s fault@%d: err = %v, want injected sentinel",
							trial, mode, at, err)
					}
					if rs != nil {
						t.Fatalf("trial %d %s fault@%d: non-nil result alongside error", trial, mode, at)
					}
					// The sticky budget error is the same sentinel, recorded
					// once: a second Step observes it without re-wrapping.
					if !errors.Is(b.Err(), errInjected) {
						t.Fatalf("trial %d %s fault@%d: sticky error is %v", trial, mode, at, b.Err())
					}
					continue
				}
				if gs := rs.MappingSet(g.Dict()); !gs.Equal(want) {
					t.Fatalf("trial %d %s fault@%d: unfaulted run diverges", trial, mode, at)
				}
			}
			if !faulted && total > 0 {
				t.Fatalf("trial %d %s: sweep never hit the fault", trial, mode)
			}
		}
	}
	drainedGoroutines(t, base)
}

// TestBindJoinParBudgetCancelMidMorsel cancels the context while a
// large morsel-parallel bind join is in flight: the join must come
// back promptly with the typed cancellation error, surface it exactly
// once, and leave no workers behind.
func TestBindJoinParBudgetCancelMidMorsel(t *testing.T) {
	base := runtime.NumGoroutine()
	g := workload.University(workload.UniversityOpts{People: 4000, OptionalPct: 50, FoundersPct: 10, Seed: 7})
	accPat := sparql.TP(sparql.V("A"), sparql.I("name"), sparql.V("N"))
	probe := sparql.TP(sparql.V("A"), sparql.I("works_at"), sparql.V("U"))
	sc, ok := sparql.SchemaFor(sparql.And{L: accPat, R: probe})
	if !ok {
		t.Fatal("schema rejected")
	}
	acc, err := sparql.EvalPatternRows(g, accPat, sc, nil, nil, nil)
	if err != nil {
		t.Fatalf("accumulator eval failed: %v", err)
	}
	if acc.Len() < 1000 {
		t.Fatalf("fixture too small: %d accumulator rows", acc.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := sparql.NewBudget(ctx).WithStride(1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var rs *sparql.RowSet
	for {
		// Loop until the cancellation actually lands mid-join (on a
		// fast machine the first run may complete before the timer).
		rs, err = sparql.BindJoinScanPar(g, acc, probe, b, 4, 64, nil)
		if err != nil || time.Since(start) > 5*time.Second {
			break
		}
	}
	if err == nil {
		t.Skip("join kept completing before cancellation landed")
	}
	if !errors.Is(err, sparql.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if rs != nil {
		t.Fatal("non-nil result alongside cancellation")
	}
	if !errors.Is(b.Err(), sparql.ErrCanceled) {
		t.Fatalf("sticky error is %v, want ErrCanceled", b.Err())
	}
	drainedGoroutines(t, base)
}
