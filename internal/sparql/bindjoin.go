package sparql

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// BindJoinScan joins an accumulated row set with ⟦t⟧_G by index
// nested-loop: for each accumulator row, the row's bindings for t's
// variables are pinned as constants and the matching index permutation
// is probed directly (rdf.Store.MatchIDs), instead of scanning and
// hashing the pattern's full extension.  With the sorted permutation
// store every probe is one O(log n) range lookup, so the cost is
// |acc| probes plus the matched triples — the winning strategy when a
// selective prefix meets a large predicate, and the reason the
// adaptive executor can beat any static plan on selective chains.
//
// The result is exactly acc ⋈ ⟦t⟧_G under the row algebra's
// compatibility semantics: pinned slots enforce equality on shared
// bound variables, bindTriple rejects repeated-variable mismatches,
// and slots unbound in a given accumulator row simply stay free in
// the probe (that row's probe degrades toward a wider scan, keeping
// the join exact for heterogeneous masks).
func BindJoinScan(g rdf.Store, acc *RowSet, t TriplePattern, b *Budget, parent *obs.Node) (*RowSet, error) {
	return bindJoinScanPar(g, acc, t, b, nil, 0, parent)
}

// BindJoinScanPar is BindJoinScan with the accumulator's rows split
// into morsels dispatched across a bounded worker pool: each worker
// probes the sorted indexes for a contiguous chunk of accumulator rows
// into a private RowSet, and the per-morsel results merge through the
// open-addressed dedup (mergeParts).  workers counts the calling
// goroutine; minPart is the accumulator size below which the join
// stays serial (0 = DefaultMinPartition).  The budget is shared and
// atomic, so a governor trip or injected fault stops every morsel
// within a stride and the pool drains before the error returns.
func BindJoinScanPar(g rdf.Store, acc *RowSet, t TriplePattern, b *Budget, workers, minPart int, parent *obs.Node) (*RowSet, error) {
	o := ParOptions{Workers: workers, MinPartition: minPart}
	return bindJoinScanPar(g, acc, t, b, newPool(o.workers()-1), o.minPartition(), parent)
}

func bindJoinScanPar(g rdf.Store, acc *RowSet, t TriplePattern, b *Budget, po *pool, minPart int, parent *obs.Node) (*RowSet, error) {
	var out *RowSet
	node := parent.Child("bindjoin", t.String())
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	defer func() {
		if node != nil {
			node.AddWall(time.Since(start))
			steps1, rows1, bytes1 := b.Counters()
			node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
			if out != nil {
				node.AddRowsOut(int64(out.Len()))
			}
		}
	}()
	ts, ok := resolveTriple(t, acc.Schema, g.Dict())
	if !ok {
		// A constant of t is not in the dictionary: ⟦t⟧_G = ∅.
		out = NewRowSet(acc.Schema)
		return out, nil
	}
	node.AddRowsIn(int64(acc.Len()))
	if po == nil || acc.Len() < minPart {
		o := NewRowSet(acc.Schema)
		if err := bindProbeRange(g, acc, &ts, 0, acc.Len(), o, b, node); err != nil {
			return nil, err
		}
		out = o
		return out, nil
	}
	parts, err := parChunks(po, acc.Len(), chunkOf(minPart), node, func(lo, hi int) (*RowSet, error) {
		part := NewRowSet(acc.Schema)
		if err := bindProbeRange(g, acc, &ts, lo, hi, part, b, node); err != nil {
			return nil, err
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	node.AddPartitions(int64(len(parts)))
	merged, err := mergeParts(parts, b)
	if err != nil {
		return nil, err
	}
	out = merged
	return out, nil
}

// bindProbeRange probes the sorted indexes for accumulator rows
// [lo, hi), appending the join output to out — the per-morsel work of
// the bind join, shared by the serial and parallel paths.  out is
// private to the caller; the budget and profile node are shared and
// atomic.
func bindProbeRange(g rdf.Store, acc *RowSet, ts *tripleSlots, lo, hi int, out *RowSet, b *Budget, node *obs.Node) error {
	scratch := make([]rdf.ID, acc.Schema.Len())
	for i := lo; i < hi; i++ {
		row, rowMask := acc.RowIDs(i), acc.Mask(i)
		var vals [3]rdf.ID
		var probe [3]*rdf.ID
		for j := 0; j < 3; j++ {
			if ts.isConst[j] {
				vals[j] = ts.constID[j]
				probe[j] = &vals[j]
			} else if rowMask&(1<<uint(ts.slot[j])) != 0 {
				vals[j] = row[ts.slot[j]]
				probe[j] = &vals[j]
			}
		}
		if err := b.Step(); err != nil {
			return err
		}
		node.AddRangeScans(1)
		node.AddBindProbes(1)
		var err error
		g.MatchIDs(probe[0], probe[1], probe[2], func(tr rdf.IDTriple) bool {
			if err = b.Step(); err != nil {
				return false
			}
			copy(scratch, row)
			if mask, ok := ts.bindTriple(scratch, tr, rowMask); ok {
				if err = out.addCharged(scratch, mask, b); err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
