package sparql

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// BindJoinScan joins an accumulated row set with ⟦t⟧_G by index
// nested-loop: for each accumulator row, the row's bindings for t's
// variables are pinned as constants and the matching index permutation
// is probed directly (rdf.Store.MatchIDs), instead of scanning and
// hashing the pattern's full extension.  With the sorted permutation
// store every probe is one O(log n) range lookup, so the cost is
// |acc| probes plus the matched triples — the winning strategy when a
// selective prefix meets a large predicate, and the reason the
// adaptive executor can beat any static plan on selective chains.
//
// The result is exactly acc ⋈ ⟦t⟧_G under the row algebra's
// compatibility semantics: pinned slots enforce equality on shared
// bound variables, bindTriple rejects repeated-variable mismatches,
// and slots unbound in a given accumulator row simply stay free in
// the probe (that row's probe degrades toward a wider scan, keeping
// the join exact for heterogeneous masks).
func BindJoinScan(g rdf.Store, acc *RowSet, t TriplePattern, b *Budget, parent *obs.Node) (*RowSet, error) {
	out := NewRowSet(acc.Schema)
	node := parent.Child("bindjoin", t.String())
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	defer func() {
		if node != nil {
			node.AddWall(time.Since(start))
			steps1, rows1, bytes1 := b.Counters()
			node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
			node.AddRowsOut(int64(out.Len()))
		}
	}()
	ts, ok := resolveTriple(t, acc.Schema, g.Dict())
	if !ok {
		// A constant of t is not in the dictionary: ⟦t⟧_G = ∅.
		return out, nil
	}
	node.AddRowsIn(int64(acc.Len()))
	scratch := make([]rdf.ID, acc.Schema.Len())
	for i := 0; i < acc.Len(); i++ {
		row, rowMask := acc.RowIDs(i), acc.Mask(i)
		var vals [3]rdf.ID
		var probe [3]*rdf.ID
		for j := 0; j < 3; j++ {
			if ts.isConst[j] {
				vals[j] = ts.constID[j]
				probe[j] = &vals[j]
			} else if rowMask&(1<<uint(ts.slot[j])) != 0 {
				vals[j] = row[ts.slot[j]]
				probe[j] = &vals[j]
			}
		}
		if err := b.Step(); err != nil {
			return nil, err
		}
		node.AddRangeScans(1)
		var err error
		g.MatchIDs(probe[0], probe[1], probe[2], func(tr rdf.IDTriple) bool {
			if err = b.Step(); err != nil {
				return false
			}
			copy(scratch, row)
			if mask, ok := ts.bindTriple(scratch, tr, rowMask); ok {
				if err = out.addCharged(scratch, mask, b); err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
