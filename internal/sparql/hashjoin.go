package sparql

// Hash-based join for mapping sets.  The textbook nested-loop join in
// Join is the reference implementation; JoinHash produces the same set
// by bucketing the right-hand side on the variables that are bound in
// *every* mapping of both sides.  When the two sides are homogeneous
// (the common case: answers to triple patterns and their joins), this
// turns the O(|Ω1|·|Ω2|) pairing into a hash probe.

// alwaysBoundVars returns the variables bound in every mapping of the
// set (sorted); for the empty set it returns nil.
func (s *MappingSet) alwaysBoundVars() []Var {
	if len(s.items) == 0 {
		return nil
	}
	counts := make(map[Var]int)
	for _, mu := range s.items {
		for v := range mu {
			counts[v]++
		}
	}
	var out []Var
	for v, c := range counts {
		if c == len(s.items) {
			out = append(out, v)
		}
	}
	sortVars(out)
	return out
}

// JoinHash returns Ω1 ⋈ Ω2, equal to Join but using a hash index on
// the shared always-bound variables of the two sides.  Mappings that
// agree on the key still undergo the full compatibility check, so the
// result is exact even when domains are heterogeneous.
func (s *MappingSet) JoinHash(t *MappingSet) *MappingSet {
	if s.Len() == 0 || t.Len() == 0 {
		return NewMappingSet()
	}
	// Probe with the larger side, build on the smaller.
	build, probe := s, t
	if build.Len() > probe.Len() {
		build, probe = probe, build
	}
	key := intersectVars(build.alwaysBoundVars(), probe.alwaysBoundVars())
	if len(key) == 0 {
		// No common always-bound variables: fall back to nested loop.
		return s.Join(t)
	}
	index := make(map[string][]Mapping, build.Len())
	for _, mu := range build.items {
		k := mu.Restrict(key).key()
		index[k] = append(index[k], mu)
	}
	out := NewMappingSet()
	for _, nu := range probe.items {
		k := nu.Restrict(key).key()
		for _, mu := range index[k] {
			if mu.CompatibleWith(nu) {
				out.Add(mu.Merge(nu))
			}
		}
	}
	return out
}

func intersectVars(a, b []Var) []Var {
	set := make(map[Var]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	var out []Var
	for _, v := range b {
		if _, ok := set[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// DiffHash returns Ω1 ∖ Ω2 using the same hash-bucketing idea: a left
// mapping survives iff no right mapping is compatible with it.  The
// bucketing applies only when the right side has always-bound
// variables shared with the left side's always-bound variables —
// otherwise compatibility cannot be decided from the key and the
// nested-loop Diff is used.
//
// Note the asymmetry with JoinHash: for Diff the key must cover enough
// of the right side to *prove absence*, so a right mapping missing a
// key variable would be unreachable from the probe; the always-bound
// requirement on the right side guarantees this cannot happen.
func (s *MappingSet) DiffHash(t *MappingSet) *MappingSet {
	if s.Len() == 0 {
		return NewMappingSet()
	}
	if t.Len() == 0 {
		out := NewMappingSet()
		for _, mu := range s.items {
			out.Add(mu)
		}
		return out
	}
	key := intersectVars(s.alwaysBoundVars(), t.alwaysBoundVars())
	if len(key) == 0 {
		return s.Diff(t)
	}
	index := make(map[string][]Mapping, t.Len())
	for _, nu := range t.items {
		index[nu.Restrict(key).key()] = append(index[nu.Restrict(key).key()], nu)
	}
	out := NewMappingSet()
	for _, mu := range s.items {
		compatible := false
		for _, nu := range index[mu.Restrict(key).key()] {
			if mu.CompatibleWith(nu) {
				compatible = true
				break
			}
		}
		if !compatible {
			out.Add(mu)
		}
	}
	return out
}

// LeftJoinHash is LeftJoin with the hash-based primitives.
func (s *MappingSet) LeftJoinHash(t *MappingSet) *MappingSet {
	return s.JoinHash(t).Union(s.DiffHash(t))
}
