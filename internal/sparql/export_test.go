package sparql

// Test-only exports: the differential tests need to force the sharded
// NS implementation on inputs far below DefaultMinPartition.

// MaximalParMin is MaximalParB with a tunable partition threshold.
func (s *RowSet) MaximalParMin(bud *Budget, workers, minPart int) (*RowSet, error) {
	return s.maximalParB(bud, newPool(workers-1), minPart, nil)
}
