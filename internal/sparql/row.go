package sparql

import (
	"math/bits"

	"repro/internal/rdf"
)

// Row is a solution mapping in the ID-native runtime representation: a
// fixed-width vector of interned IDs (one slot per schema variable)
// plus a presence bitset marking the bound slots.  Slots whose bit is
// clear hold unspecified values and must never be read.
//
// Rows replace map[Var]IRI in the evaluation core: compatibility,
// merge and subsumption become word operations, and set membership
// hashes machine words instead of formatting strings.
type Row struct {
	Mask uint64
	IDs  []rdf.ID
}

func popcount(m uint64) int      { return bits.OnesCount64(m) }
func trailingZeros(m uint64) int { return bits.TrailingZeros64(m) }

// rowsCompatible reports µ1 ∼ µ2 on rows: the bound slots shared by the
// two masks carry equal IDs.
func rowsCompatible(a []rdf.ID, am uint64, b []rdf.ID, bm uint64) bool {
	for m := am & bm; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeRows writes µ1 ∪ µ2 into dst (width must match) and returns the
// merged mask.  The caller must ensure compatibility.
func mergeRows(dst []rdf.ID, a []rdf.ID, am uint64, b []rdf.ID, bm uint64) uint64 {
	for m := am; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		dst[i] = a[i]
	}
	for m := bm &^ am; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		dst[i] = b[i]
	}
	return am | bm
}

// rowSubsumedBy reports µ1 ⪯ µ2 on rows: dom(µ1) ⊆ dom(µ2) (mask
// inclusion) and the rows agree on dom(µ1).
func rowSubsumedBy(a []rdf.ID, am uint64, b []rdf.ID, bm uint64) bool {
	if am&^bm != 0 {
		return false
	}
	for m := am; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowHash computes an FNV-1a style integer hash over the mask and the
// bound IDs of a row.  Unbound slots do not contribute, so rows that
// are equal as partial mappings hash equally regardless of slot
// residue.
func rowHash(ids []rdf.ID, mask uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= mask
	h *= prime
	for m := mask; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		h ^= uint64(ids[i])
		h *= prime
	}
	return h
}

// rowsEqual reports exact equality of two rows as partial mappings.
func rowsEqual(a []rdf.ID, am uint64, b []rdf.ID, bm uint64) bool {
	if am != bm {
		return false
	}
	for m := am; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
