// Package sparql implements the SPARQL graph-pattern algebra of
// Arenas & Ugarte, "Designing a Query Language for RDF: Marrying Open
// and Closed Worlds" (PODS 2016): mappings and the mapping algebra
// (Section 2), graph patterns with AND, UNION, OPT, FILTER and SELECT,
// the not-subsumed operator NS (Section 5.1), CONSTRUCT queries
// (Section 6), and a bottom-up evaluator for all of them.
package sparql

import (
	"strings"

	"repro/internal/rdf"
)

// Var is a SPARQL variable.  The name is stored without the leading
// '?'; String adds it back.
type Var string

// String renders the variable in SPARQL notation, e.g. "?X".
func (v Var) String() string { return "?" + string(v) }

// Value is a position of a triple pattern: either a variable or an IRI.
// The zero Value is the empty IRI.
type Value struct {
	vr    Var
	iri   rdf.IRI
	isVar bool
}

// V returns a variable Value.
func V(name Var) Value { return Value{vr: name, isVar: true} }

// I returns an IRI Value.
func I(iri rdf.IRI) Value { return Value{iri: iri} }

// IsVar reports whether the value is a variable.
func (v Value) IsVar() bool { return v.isVar }

// Var returns the variable; it panics if the value is an IRI.
func (v Value) Var() Var {
	if !v.isVar {
		panic("sparql: Var() on IRI value " + string(v.iri))
	}
	return v.vr
}

// IRI returns the IRI; it panics if the value is a variable.
func (v Value) IRI() rdf.IRI {
	if v.isVar {
		panic("sparql: IRI() on variable value " + v.vr.String())
	}
	return v.iri
}

// String renders the value in SPARQL notation.  IRIs that would not
// survive re-parsing as a bare word (reserved characters, keywords,
// empty string) are wrapped in angle brackets.
func (v Value) String() string {
	if v.isVar {
		return v.vr.String()
	}
	if BareIRISafe(v.iri) {
		return string(v.iri)
	}
	return v.iri.NTriples()
}

// reservedWords are the keywords of the concrete syntax; they cannot be
// written as bare IRIs (use <...> instead).
var reservedWords = map[string]bool{
	"AND": true, "UNION": true, "OPT": true, "OPTIONAL": true,
	"FILTER": true, "SELECT": true, "WHERE": true, "NS": true,
	"CONSTRUCT": true, "BOUND": true, "TRUE": true, "FALSE": true,
	"MINUS": true,
}

// BareIRISafe reports whether iri can be printed as a bare word and
// re-parsed unambiguously by the parser package.
func BareIRISafe(iri rdf.IRI) bool {
	s := string(iri)
	if s == "" || reservedWords[strings.ToUpper(s)] {
		return false
	}
	for _, r := range s {
		switch r {
		case '(', ')', '{', '}', ',', '<', '>', '?', '=', '!', '&', '|', '#', ' ', '\t', '\n', '\r':
			return false
		}
	}
	return true
}

// Resolve returns µ(v): the IRI itself for an IRI value, and the image
// under µ for a variable value.  ok is false if the variable is not in
// dom(µ).
func (v Value) Resolve(mu Mapping) (rdf.IRI, bool) {
	if !v.isVar {
		return v.iri, true
	}
	iri, ok := mu[v.vr]
	return iri, ok
}
