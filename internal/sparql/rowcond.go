package sparql

import (
	"repro/internal/rdf"
)

// RowCond is a FILTER condition compiled against a VarSchema and a
// dictionary: it evaluates µ ⊨ R directly on a row — bound() is a bit
// test, equality compares interned IDs — with no map lookups or string
// comparisons.
type RowCond func(ids []rdf.ID, mask uint64) bool

// CompileCond compiles R for rows over the schema.  Constants are
// resolved with Lookup, not Intern: a constant absent from the
// dictionary cannot equal any bound ID, so its atom compiles to false
// (the dictionary — typically a graph's — is never mutated).
// Variables outside the schema are treated as never bound, matching
// the semantics of atoms over variables the pattern cannot bind.
func CompileCond(c Condition, sc *VarSchema, d *rdf.Dict) RowCond {
	condFalse := func([]rdf.ID, uint64) bool { return false }
	switch r := c.(type) {
	case Bound:
		i, ok := sc.Slot(r.X)
		if !ok {
			return condFalse
		}
		bit := uint64(1) << uint(i)
		return func(_ []rdf.ID, mask uint64) bool { return mask&bit != 0 }
	case EqConst:
		i, ok := sc.Slot(r.X)
		if !ok {
			return condFalse
		}
		id, ok := d.Lookup(r.C)
		if !ok {
			return condFalse
		}
		bit := uint64(1) << uint(i)
		return func(ids []rdf.ID, mask uint64) bool {
			return mask&bit != 0 && ids[i] == id
		}
	case EqVars:
		i, iok := sc.Slot(r.X)
		j, jok := sc.Slot(r.Y)
		if !iok || !jok {
			return condFalse
		}
		both := uint64(1)<<uint(i) | uint64(1)<<uint(j)
		return func(ids []rdf.ID, mask uint64) bool {
			return mask&both == both && ids[i] == ids[j]
		}
	case Not:
		inner := CompileCond(r.R, sc, d)
		return func(ids []rdf.ID, mask uint64) bool { return !inner(ids, mask) }
	case AndCond:
		l := CompileCond(r.L, sc, d)
		rr := CompileCond(r.R, sc, d)
		return func(ids []rdf.ID, mask uint64) bool { return l(ids, mask) && rr(ids, mask) }
	case OrCond:
		l := CompileCond(r.L, sc, d)
		rr := CompileCond(r.R, sc, d)
		return func(ids []rdf.ID, mask uint64) bool { return l(ids, mask) || rr(ids, mask) }
	case TrueCond:
		return func([]rdf.ID, uint64) bool { return true }
	case FalseCond:
		return condFalse
	default:
		// Unknown condition types fall back to the string evaluator.
		codec := Codec{Schema: sc, Dict: d}
		return func(ids []rdf.ID, mask uint64) bool {
			return c.Eval(codec.DecodeMasked(ids, mask))
		}
	}
}
