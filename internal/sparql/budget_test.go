package sparql

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestBudgetNilIsUnlimited: a nil *Budget is the ungoverned mode; every
// method must be a no-op returning nil.
func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 10_000; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("nil budget Step: %v", err)
		}
	}
	if err := b.StepN(1 << 20); err != nil {
		t.Fatalf("nil budget StepN: %v", err)
	}
	if err := b.AddRows(1 << 20); err != nil {
		t.Fatalf("nil budget AddRows: %v", err)
	}
	if err := b.chargeRow(64); err != nil {
		t.Fatalf("nil budget chargeRow: %v", err)
	}
	if b.Steps() != 0 || b.Err() != nil {
		t.Fatalf("nil budget state: steps=%d err=%v", b.Steps(), b.Err())
	}
}

// TestBudgetMaxStepsExact: the step limit must fire on exactly the
// (maxSteps+1)-th step, regardless of the stride, and stay sticky.
func TestBudgetMaxStepsExact(t *testing.T) {
	b := NewBudget(nil).WithMaxSteps(100)
	for i := 0; i < 100; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step %d within limit failed: %v", i+1, err)
		}
	}
	err := b.Step()
	var be ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != BudgetSteps {
		t.Fatalf("step 101: got %v, want ErrBudgetExceeded{BudgetSteps}", err)
	}
	// Sticky: every later call returns the same failure.
	if err2 := b.Step(); !errors.Is(err2, err) && err2.Error() != err.Error() {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
	if b.Err() == nil {
		t.Fatal("Err() nil after exhaustion")
	}
}

// TestBudgetStepNBulk: bulk charging trips the same limit.
func TestBudgetStepNBulk(t *testing.T) {
	b := NewBudget(nil).WithMaxSteps(1000)
	if err := b.StepN(1000); err != nil {
		t.Fatalf("StepN within limit: %v", err)
	}
	var be ErrBudgetExceeded
	if err := b.StepN(1); !errors.As(err, &be) || be.Kind != BudgetSteps {
		t.Fatalf("StepN over limit: %v", err)
	}
}

// TestBudgetCancellationLatency: a canceled context must be noticed
// within one stride of steps — not immediately (that would be the slow
// path on every step) but boundedly soon.
func TestBudgetCancellationLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx).WithStride(8)
	cancel()
	var err error
	n := 0
	for err == nil && n < 100 {
		err = b.Step()
		n++
	}
	if err == nil {
		t.Fatal("canceled context never noticed")
	}
	if n > 8 {
		t.Fatalf("cancellation noticed after %d steps, stride is 8", n)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled wrap", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, cause context.Canceled not wrapped", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v wrongly matches DeadlineExceeded", err)
	}
}

// TestBudgetDeadlineCause: an expired deadline must surface both
// ErrCanceled and context.DeadlineExceeded, so servers can map it to a
// timeout status distinct from a client hang-up.
func TestBudgetDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	b := NewBudget(ctx).WithStride(1)
	err := b.Step()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled and context.DeadlineExceeded", err)
	}
}

// TestBudgetMaxRows: the row limit is charged independently of steps.
func TestBudgetMaxRows(t *testing.T) {
	b := NewBudget(nil).WithMaxRows(5)
	if err := b.AddRows(5); err != nil {
		t.Fatalf("AddRows within limit: %v", err)
	}
	var be ErrBudgetExceeded
	if err := b.AddRows(1); !errors.As(err, &be) || be.Kind != BudgetRows {
		t.Fatalf("AddRows over limit: %v", err)
	}
	// Sticky across other methods too.
	if err := b.Step(); err == nil {
		t.Fatal("Step nil after row exhaustion")
	}
}

// TestBudgetMaxBytes: the memory estimate (8 bytes per slot + mask
// word per row) trips BudgetMemory.
func TestBudgetMaxBytes(t *testing.T) {
	b := NewBudget(nil).WithMaxBytes(100)
	// width 4 → 40 bytes/row: two rows fit, the third does not.
	if err := b.chargeRow(4); err != nil {
		t.Fatalf("row 1: %v", err)
	}
	if err := b.chargeRow(4); err != nil {
		t.Fatalf("row 2: %v", err)
	}
	var be ErrBudgetExceeded
	if err := b.chargeRow(4); !errors.As(err, &be) || be.Kind != BudgetMemory {
		t.Fatalf("row 3: %v", err)
	}
}

// TestBudgetInjectFaultExact: the fault hook must fire on the exact
// step that reaches the armed count, even far from a stride boundary.
func TestBudgetInjectFaultExact(t *testing.T) {
	sentinel := errors.New("injected")
	for _, at := range []int64{0, 1, 2, 500, 1023, 1024, 1025, 5000} {
		b := NewBudget(nil)
		b.InjectFault(at, sentinel)
		var err error
		for err == nil {
			err = b.Step()
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("faultAt=%d: err = %v", at, err)
		}
		want := at
		if want == 0 {
			want = 1 // the first step is the earliest observable point
		}
		if b.Steps() != want {
			t.Fatalf("faultAt=%d: fired at step %d", at, b.Steps())
		}
	}
}

// TestBudgetStrideRounding: strides round up to powers of two.
func TestBudgetStrideRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024},
	} {
		if b := NewBudget(nil).WithStride(tc.in); b.stride != tc.want {
			t.Errorf("WithStride(%d) = %d, want %d", tc.in, b.stride, tc.want)
		}
	}
}

// bogusPattern is a Pattern node outside the implemented algebra, as a
// mutated or hand-built plan might contain.
type bogusPattern struct{}

func (bogusPattern) String() string { return "BOGUS" }
func (bogusPattern) isPattern()     {}

// TestUnknownPatternIsTypedError: an unsupported pattern node must
// surface as ErrUnsupportedPattern through every entry point — and the
// legacy Iterate must report "stopped early" instead of panicking
// (the old behavior crashed the caller, lock held and all).
func TestUnknownPatternIsTypedError(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("a", "p", "b")
	sc, ok := NewVarSchema([]Var{"X"})
	if !ok {
		t.Fatal("schema rejected")
	}
	s := NewSearcher(g, sc)
	var up ErrUnsupportedPattern
	if err := s.Search(bogusPattern{}, 0, func(uint64) bool { return true }); !errors.As(err, &up) {
		t.Fatalf("Search: %v, want ErrUnsupportedPattern", err)
	}
	if s.Iterate(bogusPattern{}, 0, func(uint64) bool { return true }) {
		t.Fatal("Iterate claimed completion on an unsupported pattern")
	}
	if _, err := EvalBudget(g, bogusPattern{}, nil); !errors.As(err, &up) {
		t.Fatalf("EvalBudget: %v, want ErrUnsupportedPattern", err)
	}
	if _, err := EvalCompatibleBudget(g, bogusPattern{}, Mapping{}, nil); !errors.As(err, &up) {
		t.Fatalf("EvalCompatibleBudget: %v, want ErrUnsupportedPattern", err)
	}
	// The nested case unwinds through the combinators too.
	nested := And{L: TP(V("X"), I("p"), I("b")), R: bogusPattern{}}
	if err := s.Search(nested, 0, func(uint64) bool { return true }); !errors.As(err, &up) {
		t.Fatalf("nested Search: %v, want ErrUnsupportedPattern", err)
	}
	if up.Error() == "" {
		t.Fatal("empty error text")
	}
}

// TestBudgetKindString covers the error-text side of the taxonomy.
func TestBudgetKindString(t *testing.T) {
	if got := (ErrBudgetExceeded{Kind: BudgetSteps}).Error(); got != "sparql: query budget exceeded: max steps" {
		t.Errorf("steps text: %q", got)
	}
	if got := (ErrBudgetExceeded{Kind: BudgetRows}).Error(); got != "sparql: query budget exceeded: max rows" {
		t.Errorf("rows text: %q", got)
	}
	if got := (ErrBudgetExceeded{Kind: BudgetMemory}).Error(); got != "sparql: query budget exceeded: max memory" {
		t.Errorf("memory text: %q", got)
	}
	if got := BudgetKind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind text: %q", got)
	}
}

// TestBudgetErrorCarriesLimit: every tripped limit must surface its
// configured value in both the typed error and the message, so an
// operator reading a 503 body knows which knob to raise and from what.
func TestBudgetErrorCarriesLimit(t *testing.T) {
	// Steps.
	b := NewBudget(nil).WithMaxSteps(3)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = b.Step()
	}
	var be ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != BudgetSteps || be.Limit != 3 {
		t.Fatalf("steps: err=%v, want Kind=steps Limit=3", err)
	}
	if got := err.Error(); got != "sparql: query budget exceeded: max steps (limit 3)" {
		t.Errorf("steps text: %q", got)
	}

	// Rows.
	b = NewBudget(nil).WithMaxRows(2)
	err = b.AddRows(5)
	if !errors.As(err, &be) || be.Kind != BudgetRows || be.Limit != 2 {
		t.Fatalf("rows: err=%v, want Kind=rows Limit=2", err)
	}
	if got := err.Error(); got != "sparql: query budget exceeded: max rows (limit 2)" {
		t.Errorf("rows text: %q", got)
	}

	// Memory.  Width 4 → 40 bytes per row; the third row exceeds 100.
	b = NewBudget(nil).WithMaxBytes(100)
	err = nil
	for i := 0; i < 10 && err == nil; i++ {
		err = b.chargeRow(4)
	}
	if !errors.As(err, &be) || be.Kind != BudgetMemory || be.Limit != 100 {
		t.Fatalf("memory: err=%v, want Kind=memory Limit=100", err)
	}
	if got := err.Error(); got != "sparql: query budget exceeded: max memory (limit 100)" {
		t.Errorf("memory text: %q", got)
	}
}

// TestBudgetCounters: the Counters accessor exposes exact consumption
// snapshots (the profiler's budget-attribution source) and is nil-safe.
func TestBudgetCounters(t *testing.T) {
	var nilB *Budget
	if s, r, by := nilB.Counters(); s != 0 || r != 0 || by != 0 {
		t.Fatalf("nil budget counters: %d/%d/%d", s, r, by)
	}
	// chargeRow only accounts when a byte limit is armed.
	b := NewBudget(nil).WithMaxBytes(1 << 20)
	for i := 0; i < 7; i++ {
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddRows(3); err != nil {
		t.Fatal(err)
	}
	if err := b.chargeRow(4); err != nil {
		t.Fatal(err)
	}
	steps, rows, bytes := b.Counters()
	if steps != 7 {
		t.Errorf("steps=%d, want 7", steps)
	}
	if rows != 3 {
		t.Errorf("rows=%d, want 3", rows)
	}
	if bytes != 40 {
		t.Errorf("bytes=%d, want 40 (width 4 → 8*(4+1))", bytes)
	}
}
