package sparql

import (
	"strconv"

	"repro/internal/rdf"
)

// RowSet is the ID-native counterpart of MappingSet: a set of rows over
// one VarSchema, with deterministic (insertion) iteration order and
// integer-hash deduplication.  Rows are stored in a single flat backing
// array and membership runs over an open-addressed table of row
// indices, so a RowSet of n rows costs O(log n) allocations (array
// doublings) instead of n maps.
// A RowSet is not safe for concurrent use: operators mutate scratch
// state (the cached chain index below) even on the "read" side.  The
// parallel engine (parallel.go) therefore builds any shared index
// before fanning out and its workers only read it.
type RowSet struct {
	Schema *VarSchema
	masks  []uint64
	ids    []rdf.ID // len = len(masks) * Schema.Len()
	table  []int32  // open-addressed (linear probing); -1 = empty slot

	// Cached chain index (see chainIndex): Join, Diff and LeftJoin on
	// the same receiver with the same key reuse it instead of
	// rebuilding the map per call — LeftJoin's Join and Diff halves
	// share one build, and repeated evaluations (views, benchmarks)
	// pay for the index once.
	idxKey  uint64
	idxRows int
	idxHead map[uint64]int32
	idxNext []int32

	// dedup counts Add calls rejected as duplicates — the rows the
	// open-addressed table saved downstream operators from reprocessing.
	// Plain (not atomic): a RowSet is single-writer by contract, and the
	// parallel engine's partition merge folds partition counts in.
	dedup int64
}

// NewRowSet returns an empty set of rows over the schema.
func NewRowSet(sc *VarSchema) *RowSet {
	return &RowSet{Schema: sc}
}

// Len reports the number of rows.
func (s *RowSet) Len() int { return len(s.masks) }

// Mask returns the presence bitset of row i.
func (s *RowSet) Mask(i int) uint64 { return s.masks[i] }

// RowIDs returns the ID vector of row i as a view into the backing
// array; callers must not modify it.
func (s *RowSet) RowIDs(i int) []rdf.ID {
	w := s.Schema.Len()
	return s.ids[i*w : (i+1)*w : (i+1)*w]
}

// Row returns row i.
func (s *RowSet) Row(i int) Row { return Row{Mask: s.masks[i], IDs: s.RowIDs(i)} }

// grow rebuilds the probe table at double capacity (rows keep their
// insertion positions; only the table is rehashed).
func (s *RowSet) grow() {
	n := 2 * len(s.table)
	if n < 16 {
		n = 16
	}
	s.table = make([]int32, n)
	for i := range s.table {
		s.table[i] = -1
	}
	for j := range s.masks {
		s.place(rowHash(s.RowIDs(j), s.masks[j]), int32(j))
	}
}

// place inserts index j at the first free slot of h's probe sequence.
func (s *RowSet) place(h uint64, j int32) {
	m := uint64(len(s.table) - 1)
	for i := h & m; ; i = (i + 1) & m {
		if s.table[i] < 0 {
			s.table[i] = j
			return
		}
	}
}

// Add inserts the row (ids, mask), copying it into the backing array;
// it reports whether the row was new.
func (s *RowSet) Add(ids []rdf.ID, mask uint64) bool {
	if 4*(len(s.masks)+1) > 3*len(s.table) {
		s.grow()
	}
	h := rowHash(ids, mask)
	m := uint64(len(s.table) - 1)
	i := h & m
	for {
		j := s.table[i]
		if j < 0 {
			break
		}
		if rowsEqual(s.RowIDs(int(j)), s.masks[j], ids, mask) {
			s.dedup++
			return false
		}
		i = (i + 1) & m
	}
	s.table[i] = int32(len(s.masks))
	s.masks = append(s.masks, mask)
	s.ids = append(s.ids, ids[:s.Schema.Len()]...)
	return true
}

// AddRow inserts r; it reports whether the row was new.
func (s *RowSet) AddRow(r Row) bool { return s.Add(r.IDs, r.Mask) }

// DedupHits reports how many Add calls were rejected as duplicates over
// the set's lifetime.
func (s *RowSet) DedupHits() int64 {
	if s == nil {
		return 0
	}
	return s.dedup
}

// Contains reports whether the row (ids, mask) is in the set.
func (s *RowSet) Contains(ids []rdf.ID, mask uint64) bool {
	if len(s.table) == 0 {
		return false
	}
	m := uint64(len(s.table) - 1)
	for i := rowHash(ids, mask) & m; ; i = (i + 1) & m {
		j := s.table[i]
		if j < 0 {
			return false
		}
		if rowsEqual(s.RowIDs(int(j)), s.masks[j], ids, mask) {
			return true
		}
	}
}

// alwaysBoundMask returns the slots bound in every row (0 for the empty
// set).
func (s *RowSet) alwaysBoundMask() uint64 {
	if len(s.masks) == 0 {
		return 0
	}
	m := s.masks[0]
	for _, mm := range s.masks[1:] {
		m &= mm
		if m == 0 {
			break
		}
	}
	return m
}

// Join returns Ω1 ⋈ Ω2 over rows.  When the two sides share slots that
// are bound in every row, the smaller side is hash-bucketed on those
// slots and the larger side probes it; otherwise the join degrades to
// the nested loop.  Either way the full compatibility check runs on
// each candidate pair, so the result is exact for heterogeneous
// domains.
func (s *RowSet) Join(t *RowSet) *RowSet {
	out, _ := s.JoinB(t, nil)
	return out
}

// JoinB is Join under a governor: every candidate pair charges one
// budget step and every retained row charges the memory estimate, so a
// runaway (e.g. cross-product) join stops at the deadline instead of
// wedging the caller.
func (s *RowSet) JoinB(t *RowSet, bud *Budget) (*RowSet, error) {
	out := NewRowSet(s.Schema)
	if s.Len() == 0 || t.Len() == 0 {
		return out, nil
	}
	scratch := make([]rdf.ID, s.Schema.Len())
	build, probe := s, t
	if build.Len() > probe.Len() {
		build, probe = probe, build
	}
	key := build.alwaysBoundMask() & probe.alwaysBoundMask()
	if key == 0 {
		for i := 0; i < s.Len(); i++ {
			for j := 0; j < t.Len(); j++ {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				a, am := s.RowIDs(i), s.masks[i]
				b, bm := t.RowIDs(j), t.masks[j]
				if rowsCompatible(a, am, b, bm) {
					if err := out.addCharged(scratch, mergeRows(scratch, a, am, b, bm), bud); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	}
	head, next := build.chainIndex(key)
	for j := 0; j < probe.Len(); j++ {
		b, bm := probe.RowIDs(j), probe.masks[j]
		if err := bud.Step(); err != nil {
			return nil, err
		}
		for i := headOf(head, rowHash(b, key)); i >= 0; i = next[i] {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			a, am := build.RowIDs(int(i)), build.masks[i]
			if rowsCompatible(a, am, b, bm) {
				if err := out.addCharged(scratch, mergeRows(scratch, a, am, b, bm), bud); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// addCharged inserts a row and charges its footprint when it is new.
func (s *RowSet) addCharged(ids []rdf.ID, mask uint64, bud *Budget) error {
	if s.Add(ids, mask) {
		return bud.chargeRow(s.Schema.Len())
	}
	return nil
}

// chainIndex buckets the rows of s by the hash of their key-slot
// restriction, as a head map plus a chain array — two allocations
// total, instead of one slice per distinct key.  The index is cached
// on the receiver: a repeat call with the same key and an unchanged
// row count returns it for free, and a rebuild reuses the map and the
// chain array.  Callers must treat the returned structures as
// read-only and must not retain them across mutations of s.
func (s *RowSet) chainIndex(key uint64) (map[uint64]int32, []int32) {
	if s.idxHead != nil && s.idxKey == key && s.idxRows == s.Len() {
		return s.idxHead, s.idxNext
	}
	head := s.idxHead
	if head == nil {
		head = make(map[uint64]int32, s.Len())
	} else {
		clear(head)
	}
	next := s.idxNext
	if cap(next) < s.Len() {
		next = make([]int32, s.Len())
	}
	next = next[:s.Len()]
	for i := 0; i < s.Len(); i++ {
		h := rowHash(s.RowIDs(i), key)
		next[i] = headOf(head, h)
		head[h] = int32(i)
	}
	s.idxKey, s.idxRows, s.idxHead, s.idxNext = key, s.Len(), head, next
	return head, next
}

func headOf(head map[uint64]int32, h uint64) int32 {
	if i, ok := head[h]; ok {
		return i
	}
	return -1
}

// Union returns Ω1 ∪ Ω2.
func (s *RowSet) Union(t *RowSet) *RowSet {
	out, _ := s.UnionB(t, nil)
	return out
}

// UnionB is Union under a governor.
func (s *RowSet) UnionB(t *RowSet, bud *Budget) (*RowSet, error) {
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
			return nil, err
		}
	}
	for i := 0; i < t.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if err := out.addCharged(t.RowIDs(i), t.masks[i], bud); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Diff returns Ω1 ∖ Ω2 = {µ1 ∈ Ω1 | ∀µ2 ∈ Ω2 : µ1 ≁ µ2}, hash-bucketed
// on the shared always-bound slots when possible.  As with the string
// algebra, the bucketing is sound because a probe key drawn from slots
// bound in *every* right row reaches every potentially compatible
// right row.
func (s *RowSet) Diff(t *RowSet) *RowSet {
	out, _ := s.DiffB(t, nil)
	return out
}

// DiffB is Diff under a governor: each compatibility probe charges a
// step.
func (s *RowSet) DiffB(t *RowSet, bud *Budget) (*RowSet, error) {
	out := NewRowSet(s.Schema)
	if s.Len() == 0 {
		return out, nil
	}
	if t.Len() == 0 {
		for i := 0; i < s.Len(); i++ {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	key := s.alwaysBoundMask() & t.alwaysBoundMask()
	if key == 0 {
		for i := 0; i < s.Len(); i++ {
			a, am := s.RowIDs(i), s.masks[i]
			ok := true
			for j := 0; j < t.Len(); j++ {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				if rowsCompatible(a, am, t.RowIDs(j), t.masks[j]) {
					ok = false
					break
				}
			}
			if ok {
				if err := out.addCharged(a, am, bud); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	head, next := t.chainIndex(key)
	for i := 0; i < s.Len(); i++ {
		a, am := s.RowIDs(i), s.masks[i]
		if err := bud.Step(); err != nil {
			return nil, err
		}
		compatible := false
		for j := headOf(head, rowHash(a, key)); j >= 0; j = next[j] {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			if rowsCompatible(a, am, t.RowIDs(int(j)), t.masks[j]) {
				compatible = true
				break
			}
		}
		if !compatible {
			if err := out.addCharged(a, am, bud); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// LeftJoin returns Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2).
func (s *RowSet) LeftJoin(t *RowSet) *RowSet {
	return s.Join(t).Union(s.Diff(t))
}

// LeftJoinB is LeftJoin under a governor.
func (s *RowSet) LeftJoinB(t *RowSet, bud *Budget) (*RowSet, error) {
	j, err := s.JoinB(t, bud)
	if err != nil {
		return nil, err
	}
	d, err := s.DiffB(t, bud)
	if err != nil {
		return nil, err
	}
	return j.UnionB(d, bud)
}

// Project returns {µ|V | µ ∈ Ω} for V given as a slot mask.
func (s *RowSet) Project(mask uint64) *RowSet {
	out, _ := s.ProjectB(mask, nil)
	return out
}

// ProjectB is Project under a governor.
func (s *RowSet) ProjectB(mask uint64, bud *Budget) (*RowSet, error) {
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if err := out.addCharged(s.RowIDs(i), s.masks[i]&mask, bud); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns {µ ∈ Ω | µ ⊨ R} for a compiled row condition.
func (s *RowSet) Filter(cond RowCond) *RowSet {
	out, _ := s.FilterB(cond, nil)
	return out
}

// FilterB is Filter under a governor.
func (s *RowSet) FilterB(cond RowCond, bud *Budget) (*RowSet, error) {
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if cond(s.RowIDs(i), s.masks[i]) {
			if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Maximal returns Ω_max over rows: the domain-bucketed NS algorithm of
// MaximalBucketed keyed on the presence bitmask.  Rows are grouped by
// mask; a row can only be properly subsumed by a row whose mask is a
// strict superset, so for each mask pair (m ⊊ m') the m-restrictions
// of the m'-bucket are hashed and each row of the m-bucket probes them
// in O(1) — with word operations end to end.
func (s *RowSet) Maximal() *RowSet {
	out, _ := s.MaximalB(nil)
	return out
}

// MaximalB is Maximal under a governor: hashing a superset bucket and
// probing it both charge steps, so the quadratic-in-buckets worst case
// respects deadlines.
func (s *RowSet) MaximalB(bud *Budget) (*RowSet, error) {
	type bucket struct {
		mask uint64
		rows []int32
	}
	buckets := make(map[uint64]*bucket)
	order := make([]uint64, 0)
	for i := 0; i < s.Len(); i++ {
		m := s.masks[i]
		b, ok := buckets[m]
		if !ok {
			b = &bucket{mask: m}
			buckets[m] = b
			order = append(order, m)
		}
		b.rows = append(b.rows, int32(i))
	}
	dead := make(map[int32]struct{})
	for _, m := range order {
		b := buckets[m]
		var superKeys *RowSet
		for m2, b2 := range buckets {
			if m2 == m || m&^m2 != 0 {
				continue
			}
			// m ⊊ m2: hash the m-restrictions of the superset bucket.
			if superKeys == nil {
				superKeys = NewRowSet(s.Schema)
			}
			for _, j := range b2.rows {
				if err := bud.Step(); err != nil {
					return nil, err
				}
				superKeys.Add(s.RowIDs(int(j)), m)
			}
		}
		if superKeys == nil {
			continue
		}
		for _, i := range b.rows {
			if err := bud.Step(); err != nil {
				return nil, err
			}
			if superKeys.Contains(s.RowIDs(int(i)), m) {
				dead[i] = struct{}{}
			}
		}
	}
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		if err := bud.Step(); err != nil {
			return nil, err
		}
		if _, gone := dead[int32(i)]; !gone {
			if err := out.addCharged(s.RowIDs(i), s.masks[i], bud); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MaximalNaive computes Ω_max by pairwise subsumption checks, O(n²);
// the reference implementation for differential tests.
func (s *RowSet) MaximalNaive() *RowSet {
	out := NewRowSet(s.Schema)
	for i := 0; i < s.Len(); i++ {
		a, am := s.RowIDs(i), s.masks[i]
		maximal := true
		for j := 0; j < s.Len(); j++ {
			if b, bm := s.RowIDs(j), s.masks[j]; am != bm && rowSubsumedBy(a, am, b, bm) {
				maximal = false
				break
			}
		}
		if maximal {
			out.Add(a, am)
		}
	}
	return out
}

// MappingSet decodes the rows back to a string MappingSet through the
// codec's dictionary — the boundary conversion from the ID-native core
// to the public facade.  Schema slots are assigned in sorted variable
// order, so walking a row's mask yields the variables exactly as
// Mapping.key() would after sorting; the canonical key is built in the
// same pass, one allocation per row.
func (s *RowSet) MappingSet(d *rdf.Dict) *MappingSet {
	c := Codec{Schema: s.Schema, Dict: d}
	out := NewMappingSet()
	var buf []byte
	for i := 0; i < s.Len(); i++ {
		ids, mask := s.RowIDs(i), s.masks[i]
		buf = buf[:0]
		for m := mask; m != 0; m &= m - 1 {
			j := trailingZeros(m)
			buf = strconv.AppendQuote(buf, string(s.Schema.vars[j]))
			buf = append(buf, '=')
			buf = strconv.AppendQuote(buf, string(d.IRI(ids[j])))
			buf = append(buf, ';')
		}
		out.addKeyed(c.DecodeMasked(ids, mask), string(buf))
	}
	return out
}

// EncodeMappingSet converts a string MappingSet to rows, interning the
// variable images into the codec dictionary.  ok = false when some
// mapping binds a variable outside the schema.
func EncodeMappingSet(ms *MappingSet, c Codec) (*RowSet, bool) {
	out := NewRowSet(c.Schema)
	for _, mu := range ms.Mappings() {
		r, ok := c.Encode(mu)
		if !ok {
			return nil, false
		}
		out.AddRow(r)
	}
	return out, true
}
