package sparql

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
)

func examplePattern() Pattern {
	return Filter{
		P: Opt{
			L: TP(V("X"), I("was_born_in"), I("Chile")),
			R: Union{
				L: TP(V("X"), I("email"), V("Y")),
				R: NewSelect([]Var{"X"}, TP(V("X"), I("phone"), V("Z"))),
			},
		},
		Cond: OrCond{L: Bound{X: "Y"}, R: EqConst{X: "X", C: "Juan"}},
	}
}

func TestVarsAndIRIs(t *testing.T) {
	p := examplePattern()
	if got := Vars(p); !reflect.DeepEqual(got, []Var{"X", "Y", "Z"}) {
		t.Fatalf("Vars = %v", got)
	}
	wantIRIs := []rdf.IRI{"Chile", "Juan", "email", "phone", "was_born_in"}
	if got := IRIs(p); !reflect.DeepEqual(got, wantIRIs) {
		t.Fatalf("IRIs = %v", got)
	}
}

func TestInScopeVars(t *testing.T) {
	p := examplePattern()
	// ?Z is projected away by the inner SELECT, so it can never appear
	// in an answer's domain.
	if got := InScopeVars(p); !reflect.DeepEqual(got, []Var{"X", "Y"}) {
		t.Fatalf("InScopeVars = %v", got)
	}
	// A SELECT variable not produced by its body is not in scope.
	q := NewSelect([]Var{"X", "Ghost"}, TP(V("X"), I("p"), V("Y")))
	if got := InScopeVars(q); !reflect.DeepEqual(got, []Var{"X"}) {
		t.Fatalf("InScopeVars = %v", got)
	}
}

func TestEqualAndSize(t *testing.T) {
	p := examplePattern()
	q := examplePattern()
	if !Equal(p, q) {
		t.Fatal("identical patterns not Equal")
	}
	if Equal(p, TP(V("X"), I("a"), I("b"))) {
		t.Fatal("different patterns Equal")
	}
	if Size(p) != Size(q) || Size(p) < 6 {
		t.Fatalf("Size = %d", Size(p))
	}
}

func TestOpsAndFragments(t *testing.T) {
	p := examplePattern()
	ops := Ops(p)
	for _, op := range []Op{OpOpt, OpUnion, OpFilter, OpSelect} {
		if !ops[op] {
			t.Errorf("Ops missing %v", op)
		}
	}
	if ops[OpAnd] || ops[OpNS] {
		t.Error("Ops reported operators that do not occur")
	}
	if InFragment(p, FragmentAUFS) {
		t.Error("pattern with OPT claimed to be in AUFS")
	}
	if !InFragment(p, FragmentFull) {
		t.Error("pattern not in full SPARQL fragment")
	}
	auf := Union{L: TP(V("X"), I("a"), I("b")), R: Filter{P: TP(V("X"), I("c"), V("Y")), Cond: Bound{X: "Y"}}}
	if !InFragment(auf, FragmentAUF) || !InFragment(auf, FragmentAUFS) {
		t.Error("AUF pattern misclassified")
	}
}

func TestIsSimpleAndNSPattern(t *testing.T) {
	aufs := Union{L: TP(V("X"), I("a"), I("b")), R: NewSelect([]Var{"X"}, TP(V("X"), I("c"), V("Y")))}
	simple := NS{P: aufs}
	if !IsSimple(simple) {
		t.Error("NS over AUFS not recognized as simple")
	}
	if IsSimple(NS{P: Opt{L: TP(V("X"), I("a"), I("b")), R: TP(V("X"), I("c"), V("Y"))}}) {
		t.Error("NS over OPT claimed simple")
	}
	if IsSimple(aufs) {
		t.Error("pattern without NS claimed simple")
	}
	usp := Union{L: simple, R: NS{P: TP(V("Z"), I("d"), I("e"))}}
	if !IsNSPattern(usp) {
		t.Error("union of simple patterns not recognized as ns-pattern")
	}
	if IsNSPattern(Union{L: simple, R: aufs}) {
		t.Error("union with non-simple disjunct claimed ns-pattern")
	}
}

func TestUnionDisjunctsAndFolds(t *testing.T) {
	a := Pattern(TP(V("X"), I("a"), I("b")))
	b := Pattern(TP(V("X"), I("c"), I("d")))
	c := Pattern(TP(V("X"), I("e"), I("f")))
	u := UnionOf(a, b, c)
	ds := UnionDisjuncts(u)
	if len(ds) != 3 || !Equal(ds[0], a) || !Equal(ds[1], b) || !Equal(ds[2], c) {
		t.Fatalf("disjuncts = %v", ds)
	}
	if len(UnionDisjuncts(a)) != 1 {
		t.Fatal("single pattern should have one disjunct")
	}
	and := AndOf(a, b, c)
	if Size(and) != 5 {
		t.Fatalf("AndOf size = %d", Size(and))
	}
}

func TestNewSelectNormalizes(t *testing.T) {
	s := NewSelect([]Var{"Y", "X", "Y"}, TP(V("X"), I("a"), V("Y")))
	if !reflect.DeepEqual(s.Vars, []Var{"X", "Y"}) {
		t.Fatalf("Vars = %v", s.Vars)
	}
}

func TestPatternStrings(t *testing.T) {
	p := examplePattern()
	s := p.String()
	for _, want := range []string{"OPT", "UNION", "SELECT", "FILTER", "?X", "was_born_in"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	ns := NS{P: TP(V("X"), I("a"), I("b"))}
	if ns.String() != "NS((?X a b))" {
		t.Errorf("NS String = %q", ns.String())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestValueAccessors(t *testing.T) {
	v := V("X")
	if !v.IsVar() || v.Var() != "X" || v.String() != "?X" {
		t.Fatal("variable Value accessors wrong")
	}
	i := I("iri")
	if i.IsVar() || i.IRI() != "iri" || i.String() != "iri" {
		t.Fatal("IRI Value accessors wrong")
	}
	mustPanic(t, func() { _ = v.IRI() })
	mustPanic(t, func() { _ = i.Var() })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
