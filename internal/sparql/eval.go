package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Eval computes ⟦P⟧_G bottom-up, following the semantics of Section 2.1
// and the NS semantics of Section 5.1.
func Eval(g rdf.Store, p Pattern) *MappingSet {
	switch q := p.(type) {
	case TriplePattern:
		return evalTriple(g, q)
	case And:
		return Eval(g, q.L).Join(Eval(g, q.R))
	case Union:
		return Eval(g, q.L).Union(Eval(g, q.R))
	case Opt:
		return Eval(g, q.L).LeftJoin(Eval(g, q.R))
	case Filter:
		return Eval(g, q.P).Filter(q.Cond)
	case Select:
		return Eval(g, q.P).Project(q.Vars)
	case NS:
		return Eval(g, q.P).Maximal()
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// evalTriple computes ⟦t⟧_G = {µ | dom(µ) = var(t), µ(t) ∈ G}, handling
// repeated variables within the triple pattern (e.g. (?X, p, ?X)).
func evalTriple(g rdf.Store, t TriplePattern) *MappingSet {
	out := NewMappingSet()
	var s, p, o *rdf.IRI
	if !t.S.IsVar() {
		i := t.S.IRI()
		s = &i
	}
	if !t.P.IsVar() {
		i := t.P.IRI()
		p = &i
	}
	if !t.O.IsVar() {
		i := t.O.IRI()
		o = &i
	}
	g.Match(s, p, o, func(tr rdf.Triple) bool {
		mu := make(Mapping, 3)
		if bindPos(mu, t.S, tr.S) && bindPos(mu, t.P, tr.P) && bindPos(mu, t.O, tr.O) {
			out.Add(mu)
		}
		return true
	})
	return out
}

// bindPos binds a variable position of a triple pattern to the matched
// IRI; it reports false when a repeated variable would need two
// different images.
func bindPos(mu Mapping, v Value, iri rdf.IRI) bool {
	if !v.IsVar() {
		return true
	}
	if prev, ok := mu[v.Var()]; ok {
		return prev == iri
	}
	mu[v.Var()] = iri
	return true
}

// ConstructQuery is (CONSTRUCT H WHERE P) (Section 6.1): Template is
// the finite set of triple patterns H, Where the graph pattern P.
type ConstructQuery struct {
	Template []TriplePattern
	Where    Pattern
}

// String renders the query in the concrete syntax of the parser.
func (q ConstructQuery) String() string {
	s := "CONSTRUCT {"
	for i, t := range q.Template {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "} WHERE " + q.Where.String()
}

// Vars returns all variables mentioned in the query (template and
// pattern).
func (q ConstructQuery) Vars() []Var {
	set := make(map[Var]struct{})
	for _, t := range q.Template {
		varsInto(t, set)
	}
	varsInto(q.Where, set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortVars(out)
	return out
}

func sortVars(vs []Var) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// EvalConstruct computes ans(Q, G) = {µ(t) | µ ∈ ⟦P⟧_G, t ∈ H,
// var(t) ⊆ dom(µ)} as an RDF graph (Section 6.1).
func EvalConstruct(g rdf.Store, q ConstructQuery) rdf.Store {
	out := rdf.NewGraph()
	for _, mu := range Eval(g, q.Where).Mappings() {
		for _, t := range q.Template {
			if tr, ok := mu.Apply(t); ok {
				out.AddTriple(tr)
			}
		}
	}
	return out
}

// ConstructContains reports t ∈ ans(Q, G) without materializing the
// whole output graph; this is the decision problem Eval(G) of
// Section 7.3.
func ConstructContains(g rdf.Store, q ConstructQuery, t rdf.Triple) bool {
	for _, mu := range Eval(g, q.Where).Mappings() {
		for _, tp := range q.Template {
			if tr, ok := mu.Apply(tp); ok && tr == t {
				return true
			}
		}
	}
	return false
}
