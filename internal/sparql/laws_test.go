package sparql

// Pattern-level algebraic laws, checked semantically on random graphs.
// These are the classic SPARQL equivalences (Schmidt, Meier and Lausen;
// Pérez, Arenas and Gutierrez) plus the NS laws of the paper, and they
// underwrite the rewrites the planner is allowed to perform.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func equivalentOn(t *testing.T, rng *rand.Rand, p, q Pattern) bool {
	t.Helper()
	for i := 0; i < 15; i++ {
		g := randomGraphLocal(rng, rng.Intn(15))
		if !Eval(g, p).Equal(Eval(g, q)) {
			t.Logf("patterns differ:\n  %s\n  %s\non graph\n%s", p, q, g)
			return false
		}
	}
	return true
}

func TestUnionLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		b := randomPatternLocal(rng, 2)
		c := randomPatternLocal(rng, 2)
		// Commutativity, associativity, idempotence.
		return equivalentOn(t, rng, Union{L: a, R: b}, Union{L: b, R: a}) &&
			equivalentOn(t, rng, Union{L: a, R: Union{L: b, R: c}}, Union{L: Union{L: a, R: b}, R: c}) &&
			equivalentOn(t, rng, Union{L: a, R: a}, a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAndLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		b := randomPatternLocal(rng, 2)
		c := randomPatternLocal(rng, 2)
		// Commutativity, associativity, distribution over UNION.
		return equivalentOn(t, rng, And{L: a, R: b}, And{L: b, R: a}) &&
			equivalentOn(t, rng, And{L: a, R: And{L: b, R: c}}, And{L: And{L: a, R: b}, R: c}) &&
			equivalentOn(t, rng,
				And{L: a, R: Union{L: b, R: c}},
				Union{L: And{L: a, R: b}, R: And{L: a, R: c}})
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		r1 := randomCondLocal(rng, 2)
		r2 := randomCondLocal(rng, 2)
		// Conjunction decomposition and filter commutation.
		if !equivalentOn(t, rng,
			Filter{P: a, Cond: AndCond{L: r1, R: r2}},
			Filter{P: Filter{P: a, Cond: r1}, Cond: r2}) {
			return false
		}
		if !equivalentOn(t, rng,
			Filter{P: Filter{P: a, Cond: r1}, Cond: r2},
			Filter{P: Filter{P: a, Cond: r2}, Cond: r1}) {
			return false
		}
		// Disjunction splits through UNION.
		return equivalentOn(t, rng,
			Filter{P: a, Cond: OrCond{L: r1, R: r2}},
			Union{L: Filter{P: a, Cond: r1}, R: Filter{P: a, Cond: r2}})
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		b := randomPatternLocal(rng, 2)
		c := randomPatternLocal(rng, 2)
		// OPT distributes over UNION on the *left* only.
		return equivalentOn(t, rng,
			Opt{L: Union{L: a, R: b}, R: c},
			Union{L: Opt{L: a, R: c}, R: Opt{L: b, R: c}})
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptRightUnionNotDistributive(t *testing.T) {
	// The classic counterexample (errata to Pérez et al.): P OPT (Q1
	// UNION Q2) is NOT equivalent to (P OPT Q1) UNION (P OPT Q2).  This
	// is the Theorem 3.6 witness shape; certify the inequivalence.
	p := TP(V("X"), I("a"), I("b"))
	q1 := TP(V("X"), I("c"), V("Y"))
	q2 := TP(V("X"), I("d"), V("Z"))
	lhs := Opt{L: p, R: Union{L: q1, R: q2}}
	rhs := Union{L: Opt{L: p, R: q1}, R: Opt{L: p, R: q2}}
	g := randomGraphLocal(rand.New(rand.NewSource(1)), 0)
	g.Add("1", "a", "b")
	g.Add("1", "c", "2")
	if Eval(g, lhs).Equal(Eval(g, rhs)) {
		t.Fatalf("expected inequivalence on\n%s", g)
	}
}

func TestNSLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		b := randomPatternLocal(rng, 2)
		// NS is idempotent.
		if !equivalentOn(t, rng, NS{P: NS{P: a}}, NS{P: a}) {
			return false
		}
		// NS commutes with FILTER?  No — but NS over UNION of a pattern
		// with itself collapses.
		if !equivalentOn(t, rng, NS{P: Union{L: a, R: a}}, NS{P: a}) {
			return false
		}
		// NS(a UNION b) ⊑-equals NS(NS(a) UNION NS(b)).
		for i := 0; i < 10; i++ {
			g := randomGraphLocal(rng, rng.Intn(15))
			l := Eval(g, NS{P: Union{L: a, R: b}})
			r := Eval(g, NS{P: Union{L: NS{P: a}, R: NS{P: b}}})
			if !l.Equal(r) {
				t.Logf("NS-union law failed on\n%s", g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSelectLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPatternLocal(rng, 2)
		vars := Vars(a)
		if len(vars) == 0 {
			return true
		}
		v := vars[rng.Intn(len(vars))]
		// Nested SELECT collapses to the intersection of the lists.
		inner := NewSelect(vars, a)
		outer := NewSelect([]Var{v}, inner)
		collapsed := NewSelect([]Var{v}, a)
		if !equivalentOn(t, rng, outer, collapsed) {
			return false
		}
		// SELECT over all variables is the identity.
		return equivalentOn(t, rng, NewSelect(vars, a), a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
