package sparql

import (
	"repro/internal/obs"
	"repro/internal/rdf"
)

// StagedExec is the planner-facing handle on the parallel engine's
// worker pool for morsel-style staged chain execution (see
// internal/plan's staged driver): the driver evaluates a DP-ordered
// AND chain one operand at a time — observing materialized prefix
// cardinalities at drift checkpoints between stages — while each
// stage's work (operand scans, partitioned hash joins, bind-join
// probes) fans out across the pool in morsels.  One StagedExec serves
// one query: it owns the pool and shares the query's schema, budget
// and hints with every stage, so the whole staged evaluation is
// governed by a single atomic budget exactly like the static tree.
type StagedExec struct {
	e *parEval
}

// NewStagedExec builds the handle for pattern p.  ok = false when p
// exceeds MaxSchemaVars (the caller falls back like the other row
// entry points).  Workers counts the calling goroutine; 1 degrades
// every stage to the serial operators (nil pool), which the plan
// package uses only in tests — production serial chains run the
// serial adaptive executor instead.
func NewStagedExec(g rdf.Store, p Pattern, b *Budget, o ParOptions) (*StagedExec, bool) {
	sc, ok := SchemaFor(p)
	if !ok {
		return nil, false
	}
	return &StagedExec{e: &parEval{
		g:       g,
		sc:      sc,
		b:       b,
		po:      newPool(o.workers() - 1),
		minPart: o.minPartition(),
		hints:   o.Hints,
	}}, true
}

// Schema returns the query-wide schema the handle evaluates under.
func (x *StagedExec) Schema() *VarSchema { return x.e.sc }

// EvalOperand evaluates one chain operand on the parallel engine,
// attaching its operator profile under parent.  Operands are usually
// single index scans, but composite operands (filter-wrapped scans,
// nested unions) fan their own sub-operators out across the pool.
func (x *StagedExec) EvalOperand(p Pattern, parent *obs.Node) (*RowSet, error) {
	return x.e.eval(p, parent)
}

// TryMergeFirst exposes the sort-merge fast path for the chain's first
// pair, mirroring TryMergeScanJoin on the shared pool's budget and
// schema.  handled = false means the operands don't qualify and
// nothing was evaluated.
func (x *StagedExec) TryMergeFirst(l, r Pattern, node *obs.Node) (*RowSet, bool, error) {
	return tryMergeScanJoin(x.e.g, l, r, x.e.sc, x.e.b, node, false)
}

// Join joins the accumulated prefix with one operand's rows through
// the partitioned parallel hash join: the probe side splits into
// contiguous morsels across the pool, each probing the shared chain
// index into a private RowSet, merged through the open-addressed
// dedup.  Small or keyless joins stay serial (JoinB).
func (x *StagedExec) Join(acc, r *RowSet, node *obs.Node) (*RowSet, error) {
	node.AddRowsIn(int64(acc.Len() + r.Len()))
	return acc.joinParB(r, x.e.b, x.e.po, x.e.minPart, node)
}

// BindJoin is the parallel bind join: acc's rows split into morsels
// across the pool, each worker probing the sorted indexes with
// row-bound constants (see BindJoinScanPar).
func (x *StagedExec) BindJoin(acc *RowSet, t TriplePattern, node *obs.Node) (*RowSet, error) {
	return bindJoinScanPar(x.e.g, acc, t, x.e.b, x.e.po, x.e.minPart, node)
}
