package sparql

import (
	"repro/internal/rdf"
)

// EvalBudget is the reference evaluator Eval under a governor: the
// same bottom-up semantics over string mappings, with budget charges
// proportional to the work of each algebra operator.  It exists for
// the string-engine paths (patterns wider than MaxSchemaVars) so that
// even the fallback respects deadlines and step limits.
//
// Charging is coarser than on the row engine: binary operators charge
// their input cardinalities up front (the nested-loop Join is O(n·m),
// so that product is charged before the join runs).  A single operator
// invocation can therefore overshoot a deadline by its own runtime,
// but never run unboundedly across operators.
//
// With b == nil, EvalBudget(g, p, nil) computes exactly Eval(g, p)
// (differentially tested), except that a malformed pattern returns
// ErrUnsupportedPattern instead of panicking.
func EvalBudget(g rdf.Store, p Pattern, b *Budget) (*MappingSet, error) {
	if err := b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleBudget(g, q, b)
	case And:
		l, err := EvalBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := EvalBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() * r.Len()); err != nil {
			return nil, err
		}
		return l.Join(r), nil
	case Union:
		l, err := EvalBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := EvalBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case Opt:
		l, err := EvalBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := EvalBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(2 * l.Len() * max(r.Len(), 1)); err != nil {
			return nil, err
		}
		return l.LeftJoin(r), nil
	case Filter:
		inner, err := EvalBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Filter(q.Cond), nil
	case Select:
		inner, err := EvalBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Project(q.Vars), nil
	case NS:
		inner, err := EvalBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len() * inner.Len()); err != nil {
			return nil, err
		}
		return inner.Maximal(), nil
	default:
		return nil, ErrUnsupportedPattern{Pattern: p}
	}
}

// evalTripleBudget computes ⟦t⟧_G like evalTriple, charging one step
// per index match.
func evalTripleBudget(g rdf.Store, t TriplePattern, b *Budget) (*MappingSet, error) {
	out := NewMappingSet()
	var s, p, o *rdf.IRI
	if !t.S.IsVar() {
		i := t.S.IRI()
		s = &i
	}
	if !t.P.IsVar() {
		i := t.P.IRI()
		p = &i
	}
	if !t.O.IsVar() {
		i := t.O.IRI()
		o = &i
	}
	var err error
	g.Match(s, p, o, func(tr rdf.Triple) bool {
		if err = b.Step(); err != nil {
			return false
		}
		mu := make(Mapping, 3)
		if bindPos(mu, t.S, tr.S) && bindPos(mu, t.P, tr.P) && bindPos(mu, t.O, tr.O) {
			out.Add(mu)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
