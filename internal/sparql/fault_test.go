package sparql_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// errInjected is the sentinel forced through the engine by the fault
// harness; tests assert it — and nothing else — surfaces.
var errInjected = errors.New("fault: injected governor stop")

// injectionPoints samples up to max step counts in [0, total]: the
// boundaries always, the interior evenly.  The engine's step sequence
// is deterministic in count (though not in emission order), so a fault
// armed at n ≤ total is guaranteed to fire.
func injectionPoints(total int64, max int) []int64 {
	if total <= int64(max) {
		pts := make([]int64, 0, total+1)
		for n := int64(0); n <= total; n++ {
			pts = append(pts, n)
		}
		return pts
	}
	pts := []int64{0, 1, total}
	for i := 1; len(pts) < max; i++ {
		pts = append(pts, total*int64(i)/int64(max))
	}
	return pts
}

// faultFragments is the operator mix the injection sweep runs over:
// the weakly monotone algebra and the full language (whose OPT/NS
// nodes exercise the constrained-evaluator fallback inside the
// searcher).
func faultFragments() []struct {
	name string
	ops  []sparql.Op
} {
	return []struct {
		name string
		ops  []sparql.Op
	}{
		{"AUFS", []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect}},
		{"full", []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}},
	}
}

// TestSearcherFaultInjection is the harness property test for the
// streaming searcher: with no fault armed, a governed search agrees
// with the string reference evaluator; with a fault armed at every
// reachable step count, the search (a) surfaces exactly the injected
// error, (b) emits only genuine solutions before stopping, and (c)
// leaves the searcher and graph reusable — the next search succeeds.
func TestSearcherFaultInjection(t *testing.T) {
	for _, fc := range faultFragments() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(271828))
			for trial := 0; trial < 12; trial++ {
				g := workload.RandomGraph(rng, 2+rng.Intn(20), nil)
				p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
				sc, ok := sparql.SchemaFor(p)
				if !ok {
					t.Fatal("schema rejected small pattern")
				}
				want := sparql.Eval(g, p)

				// No fault: governed run must agree with the reference.
				b := sparql.NewBudget(context.Background())
				s := sparql.NewSearcherBudget(g, sc, b)
				got := sparql.NewRowSet(sc)
				if err := s.Search(p, 0, func(m uint64) bool {
					got.Add(s.IDs(), m)
					return true
				}); err != nil {
					t.Fatalf("trial %d: governed search failed without fault: %v", trial, err)
				}
				if gs := got.MappingSet(g.Dict()); !gs.Equal(want) {
					t.Fatalf("trial %d: governed search diverges on\n%s\ngot: %v\nwant:%v",
						trial, p, gs, want)
				}
				total := b.Steps()

				for _, n := range injectionPoints(total, 24) {
					b2 := sparql.NewBudget(nil)
					b2.InjectFault(n, errInjected)
					s2 := sparql.NewSearcherBudget(g, sc, b2)
					partial := sparql.NewMappingSet()
					err := s2.Search(p, 0, func(m uint64) bool {
						partial.Add(s2.Decode(m))
						return true
					})
					// Step totals are only deterministic up to iteration
					// order (DiffB and the OPT fallback stop probing early),
					// so a given run may finish under n steps — but then it
					// must have finished *correctly*.  Anything else is a
					// broken unwind.
					if err == nil {
						if !partial.Equal(want) {
							t.Fatalf("trial %d, fault@%d/%d: completed with wrong answers\ngot: %v\nwant:%v",
								trial, n, total, partial, want)
						}
						continue
					}
					if !errors.Is(err, errInjected) {
						t.Fatalf("trial %d, fault@%d/%d: err = %v, want injected sentinel",
							trial, n, total, err)
					}
					// Everything emitted before the stop is a real answer —
					// an abort must not leak half-bound rows.
					for _, mu := range partial.Mappings() {
						if !want.Contains(mu) {
							t.Fatalf("trial %d, fault@%d: emitted non-answer %v\npattern %s\nwant %v",
								trial, n, mu, p, want)
						}
					}
					// Legacy Iterate on the same poisoned budget reports
					// "stopped early" instead of panicking.
					if s2.Iterate(p, 0, func(uint64) bool { return true }) {
						t.Fatalf("trial %d, fault@%d: Iterate claimed completion on poisoned budget", trial, n)
					}
				}

				// After every abort, a fresh ungoverned search over the same
				// graph still produces the full answer set: no state leaked.
				s3 := sparql.NewSearcher(g, sc)
				again := sparql.NewRowSet(sc)
				if err := s3.Search(p, 0, func(m uint64) bool {
					again.Add(s3.IDs(), m)
					return true
				}); err != nil {
					t.Fatalf("trial %d: post-fault search failed: %v", trial, err)
				}
				if gs := again.MappingSet(g.Dict()); !gs.Equal(want) {
					t.Fatalf("trial %d: post-fault search diverges", trial)
				}
			}
		})
	}
}

// TestEvalRowsFaultInjection sweeps the bottom-up row evaluator: a
// fault at any reachable step must abort with the sentinel and a nil
// result, and the no-fault governed run must match the reference.
func TestEvalRowsFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(314159))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}
	for trial := 0; trial < 12; trial++ {
		g := workload.RandomGraph(rng, 2+rng.Intn(20), nil)
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: ops})
		want := sparql.Eval(g, p)

		b := sparql.NewBudget(context.Background())
		rs, ok, err := sparql.EvalRowsBudget(g, p, b)
		if err != nil {
			t.Fatalf("trial %d: governed eval failed without fault: %v", trial, err)
		}
		if !ok {
			t.Fatal("row path rejected a narrow pattern")
		}
		if gs := rs.MappingSet(g.Dict()); !gs.Equal(want) {
			t.Fatalf("trial %d: governed EvalRowsBudget diverges on\n%s\ngot: %v\nwant:%v",
				trial, p, gs, want)
		}
		total := b.Steps()

		for _, n := range injectionPoints(total, 24) {
			b2 := sparql.NewBudget(nil)
			b2.InjectFault(n, errInjected)
			rs2, _, err := sparql.EvalRowsBudget(g, p, b2)
			if err == nil {
				// See TestSearcherFaultInjection: a run may come in under n
				// steps, but then it must be complete and correct.
				if gs := rs2.MappingSet(g.Dict()); !gs.Equal(want) {
					t.Fatalf("trial %d, fault@%d/%d: completed with wrong answers", trial, n, total)
				}
				continue
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("trial %d, fault@%d/%d: err = %v, want injected sentinel",
					trial, n, total, err)
			}
			if rs2 != nil {
				t.Fatalf("trial %d, fault@%d: non-nil result alongside error", trial, n)
			}
		}
		// The graph survives the aborts intact.
		if got := sparql.Eval(g, p); !got.Equal(want) {
			t.Fatalf("trial %d: reference answer changed after aborts", trial)
		}
	}
}

// TestEvalBudgetFaultInjection sweeps the governed string-space
// evaluator (the mirror of the reference Eval used by wide-schema
// fallbacks and the delta rules).
func TestEvalBudgetFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(161803))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}
	for trial := 0; trial < 12; trial++ {
		g := workload.RandomGraph(rng, 2+rng.Intn(20), nil)
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: ops})
		want := sparql.Eval(g, p)

		b := sparql.NewBudget(context.Background())
		ms, err := sparql.EvalBudget(g, p, b)
		if err != nil {
			t.Fatalf("trial %d: governed eval failed without fault: %v", trial, err)
		}
		if !ms.Equal(want) {
			t.Fatalf("trial %d: governed EvalBudget diverges on\n%s\ngot: %v\nwant:%v",
				trial, p, ms, want)
		}
		total := b.Steps()

		for _, n := range injectionPoints(total, 24) {
			b2 := sparql.NewBudget(nil)
			b2.InjectFault(n, errInjected)
			ms2, err := sparql.EvalBudget(g, p, b2)
			if err == nil {
				if !ms2.Equal(want) {
					t.Fatalf("trial %d, fault@%d/%d: completed with wrong answers", trial, n, total)
				}
				continue
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("trial %d, fault@%d/%d: err = %v, want injected sentinel",
					trial, n, total, err)
			}
			if ms2 != nil {
				t.Fatalf("trial %d, fault@%d: non-nil result alongside error", trial, n)
			}
		}
	}
}

// TestEvalCompatibleFaultInjection sweeps the constrained evaluator
// used at the searcher's OPT/NS boundary and by the views delta join.
func TestEvalCompatibleFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(602214))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpNS}
	for trial := 0; trial < 12; trial++ {
		g := workload.RandomGraph(rng, 2+rng.Intn(20), nil)
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: ops})
		env := sparql.Mapping{}
		for _, v := range sparql.Vars(p) {
			if rng.Intn(3) == 0 {
				env[v] = workload.DefaultIRIs[rng.Intn(len(workload.DefaultIRIs))]
			}
		}

		b := sparql.NewBudget(context.Background())
		ms, err := sparql.EvalCompatibleBudget(g, p, env, b)
		if err != nil {
			t.Fatalf("trial %d: constrained eval failed without fault: %v", trial, err)
		}
		// Differential: the constrained result is exactly the compatible
		// slice of the reference answers.
		want := sparql.NewMappingSet()
		for _, mu := range sparql.Eval(g, p).Mappings() {
			if mu.CompatibleWith(env) {
				want.Add(mu)
			}
		}
		if !ms.Equal(want) {
			t.Fatalf("trial %d: EvalCompatibleBudget diverges on\n%s\nenv %v\ngot: %v\nwant:%v",
				trial, p, env, ms, want)
		}
		total := b.Steps()

		for _, n := range injectionPoints(total, 16) {
			b2 := sparql.NewBudget(nil)
			b2.InjectFault(n, errInjected)
			ms2, err := sparql.EvalCompatibleBudget(g, p, env, b2)
			if err == nil {
				if !ms2.Equal(want) {
					t.Fatalf("trial %d, fault@%d/%d: completed with wrong answers", trial, n, total)
				}
				continue
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("trial %d, fault@%d/%d: err = %v, want injected sentinel",
					trial, n, total, err)
			}
		}
	}
}

// TestDeadlineStopsSearch wires a real context deadline through the
// searcher on an adversarial cross-product pattern and checks the
// governor actually halts an otherwise long-running search.
func TestDeadlineStopsSearch(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 60; i++ {
		g.Add(rdf.IRI(string(rune('a'+i%26))+string(rune('0'+i/26))), "p", rdf.IRI(string(rune('A'+i%26))+string(rune('0'+i/26))))
	}
	// Four unconstrained triple patterns: |G|⁴ search nodes, far beyond
	// any deadline this test is willing to wait for.
	p := sparql.And{
		L: sparql.And{
			L: sparql.TP(sparql.V("A"), sparql.I("p"), sparql.V("B")),
			R: sparql.TP(sparql.V("C"), sparql.I("p"), sparql.V("D")),
		},
		R: sparql.And{
			L: sparql.TP(sparql.V("E"), sparql.I("p"), sparql.V("F")),
			R: sparql.TP(sparql.V("G"), sparql.I("p"), sparql.V("H")),
		},
	}
	sc, _ := sparql.SchemaFor(p)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	b := sparql.NewBudget(ctx)
	s := sparql.NewSearcherBudget(g, sc, b)
	start := time.Now()
	err := s.Search(p, 0, func(uint64) bool { return true })
	elapsed := time.Since(start)
	if !errors.Is(err, sparql.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled/DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}
