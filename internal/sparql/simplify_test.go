package sparql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestSimplifyCondCases(t *testing.T) {
	cases := []struct {
		in, want Condition
	}{
		{Not{R: Not{R: Bound{X: "X"}}}, Bound{X: "X"}},
		{Not{R: TrueCond{}}, FalseCond{}},
		{Not{R: FalseCond{}}, TrueCond{}},
		{EqVars{X: "X", Y: "X"}, Bound{X: "X"}},
		{AndCond{L: TrueCond{}, R: Bound{X: "X"}}, Bound{X: "X"}},
		{AndCond{L: Bound{X: "X"}, R: FalseCond{}}, FalseCond{}},
		{OrCond{L: FalseCond{}, R: Bound{X: "X"}}, Bound{X: "X"}},
		{OrCond{L: TrueCond{}, R: Bound{X: "X"}}, TrueCond{}},
		{AndCond{L: Bound{X: "X"}, R: Bound{X: "X"}}, Bound{X: "X"}},
		{OrCond{L: Bound{X: "X"}, R: Bound{X: "X"}}, Bound{X: "X"}},
		{
			// Nested: ¬¬(true ∧ (?X = ?X)) → bound(?X).
			Not{R: Not{R: AndCond{L: TrueCond{}, R: EqVars{X: "X", Y: "X"}}}},
			Bound{X: "X"},
		},
	}
	for _, c := range cases {
		if got := SimplifyCond(c.in); !CondEqual(got, c.want) {
			t.Errorf("SimplifyCond(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// randomCondLocal draws conditions rich in constants and repetition so
// that the simplifier has work to do.
func randomCondLocal(rng *rand.Rand, depth int) Condition {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return Bound{X: Var(rune('A' + rng.Intn(3)))}
		case 1:
			return EqConst{X: Var(rune('A' + rng.Intn(3))), C: rdf.IRI(rune('a' + rng.Intn(3)))}
		case 2:
			return EqVars{X: Var(rune('A' + rng.Intn(3))), Y: Var(rune('A' + rng.Intn(3)))}
		case 3:
			return TrueCond{}
		default:
			return FalseCond{}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Not{R: randomCondLocal(rng, depth-1)}
	case 1:
		return AndCond{L: randomCondLocal(rng, depth-1), R: randomCondLocal(rng, depth-1)}
	default:
		return OrCond{L: randomCondLocal(rng, depth-1), R: randomCondLocal(rng, depth-1)}
	}
}

func TestSimplifyCondSoundQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCondLocal(rng, 4)
		s := SimplifyCond(c)
		// Idempotent.
		if !CondEqual(SimplifyCond(s), s) {
			t.Logf("not idempotent: %s → %s → %s", c, s, SimplifyCond(s))
			return false
		}
		// Same truth value on random mappings (including partial ones).
		for i := 0; i < 20; i++ {
			mu := randomMapping(rng, 3, 3)
			if c.Eval(mu) != s.Eval(mu) {
				t.Logf("simplification changed semantics: %s vs %s on %s", c, s, mu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyPattern(t *testing.T) {
	p := Filter{
		P:    TP(V("X"), I("a"), V("Y")),
		Cond: AndCond{L: TrueCond{}, R: TrueCond{}},
	}
	s := SimplifyPattern(p)
	if _, isFilter := s.(Filter); isFilter {
		t.Fatalf("trivially-true filter not removed: %s", s)
	}
	// False filters stay (there is no empty pattern to rewrite to).
	p2 := Filter{P: TP(V("X"), I("a"), V("Y")), Cond: Not{R: TrueCond{}}}
	s2 := SimplifyPattern(p2)
	f2, isFilter := s2.(Filter)
	if !isFilter {
		t.Fatalf("false filter dropped: %s", s2)
	}
	if _, ok := f2.Cond.(FalseCond); !ok {
		t.Fatalf("false filter condition = %s", f2.Cond)
	}
	// Structure below other operators is traversed.
	p3 := NS{P: Union{L: p, R: NewSelect([]Var{"X"}, p)}}
	s3 := SimplifyPattern(p3)
	if Size(s3) >= Size(p3) {
		t.Fatalf("no shrink: %d vs %d", Size(s3), Size(p3))
	}
}

func TestSimplifyPatternSoundQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build patterns with constant-heavy filters.
		base := Pattern(TP(V("X"), I("a"), V("Y")))
		p := base
		for i := 0; i < 3; i++ {
			switch rng.Intn(3) {
			case 0:
				p = Filter{P: p, Cond: randomCondLocal(rng, 3)}
			case 1:
				p = Union{L: p, R: Filter{P: base, Cond: randomCondLocal(rng, 2)}}
			default:
				p = NS{P: p}
			}
		}
		g := rdf.FromTriples(
			rdf.T("a", "a", "a"), rdf.T("b", "a", "c"), rdf.T("c", "a", "b"),
		)
		return Eval(g, p).Equal(Eval(g, SimplifyPattern(p)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
