package sparql

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// EvalRows computes ⟦P⟧_G with the ID-native row engine: one VarSchema
// for the whole query, dictionary-encoded rows throughout, and the
// mask-bucketed NS algorithm.  ok = false when the pattern exceeds
// MaxSchemaVars variables (or is malformed); callers then fall back to
// the string algebra.
//
// The result decodes to exactly Eval(g, p) (differentially tested);
// Eval stays the reference implementation and oracle.
func EvalRows(g rdf.Store, p Pattern) (*RowSet, bool) {
	rs, ok, err := EvalRowsBudget(g, p, nil)
	if err != nil {
		return nil, false
	}
	return rs, ok
}

// EvalRowsBudget is EvalRows under a governor: the budget is charged
// per triple-index probe, join candidate and materialized row, and the
// evaluation aborts with the budget's typed error (ErrCanceled,
// ErrBudgetExceeded) as soon as the governor trips.  Malformed plans
// surface as ErrUnsupportedPattern instead of panicking.
func EvalRowsBudget(g rdf.Store, p Pattern, b *Budget) (*RowSet, bool, error) {
	return EvalRowsProf(g, p, b, nil)
}

// EvalRowsProf is EvalRowsBudget with an execution profile: when prof
// is non-nil, evaluation attaches one child node per operator of the
// pattern tree under it, recording wall time, rows in/out, dedup hits,
// NS pruning per mask bucket, and budget consumption.  A nil prof is
// exactly EvalRowsBudget — the instrumentation costs one nil check per
// operator node, nothing per row.
func EvalRowsProf(g rdf.Store, p Pattern, b *Budget, prof *obs.Node) (*RowSet, bool, error) {
	return EvalRowsHints(g, p, b, prof, nil)
}

// EvalRowsHints is EvalRowsProf with planner join-strategy hints (see
// EvalHints); nil hints keep the structural auto behaviour.
func EvalRowsHints(g rdf.Store, p Pattern, b *Budget, prof *obs.Node, h *EvalHints) (*RowSet, bool, error) {
	sc, ok := SchemaFor(p)
	if !ok {
		return nil, false, nil
	}
	rs, err := evalRowsB(g, p, sc, b, prof, h)
	if err != nil {
		return nil, true, err
	}
	return rs, true, nil
}

// opName maps a pattern node to its profile operator name and detail.
// Only triples carry a detail (their pattern text): inner nodes are
// identified by tree position, and repeating whole sub-pattern strings
// would bloat every profile response.
func opName(p Pattern) (op, detail string) {
	switch q := p.(type) {
	case TriplePattern:
		return "triple", q.String()
	case And:
		return "and", ""
	case Union:
		return "union", ""
	case Opt:
		return "opt", ""
	case Filter:
		return "filter", ""
	case Select:
		return "select", ""
	case NS:
		return "ns", ""
	}
	return fmt.Sprintf("%T", p), ""
}

// childNode attaches a profile node for pattern p under parent (nil in,
// nil out: the uninstrumented path never allocates).
func childNode(parent *obs.Node, p Pattern) *obs.Node {
	if parent == nil {
		return nil
	}
	op, detail := opName(p)
	return parent.Child(op, detail)
}

// evalInstrumented wraps one operator evaluation with the profile
// counters common to the serial and parallel engines: wall time and
// budget deltas over the call's window, then rows out and dedup hits of
// the result.  Budget deltas include the children evaluated inside the
// window (see obs.Node.AddBudget); the root node's totals are exact.
func evalInstrumented(node *obs.Node, b *Budget, eval func() (*RowSet, error)) (*RowSet, error) {
	if node == nil {
		return eval()
	}
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	rs, err := eval()
	node.AddWall(time.Since(start))
	steps1, rows1, bytes1 := b.Counters()
	node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
	if err != nil {
		return nil, err
	}
	node.AddRowsOut(int64(rs.Len()))
	node.AddDedupHits(rs.DedupHits())
	return rs, nil
}

// recordNS attributes an NS operator's pruning to its profile node:
// total candidates vs survivors, plus the per-presence-mask breakdown
// (survivors are a subset of candidates, so every survivor mask has a
// candidate bucket).
func recordNS(node *obs.Node, in, out *RowSet) {
	if node == nil {
		return
	}
	node.AddNS(int64(in.Len()), int64(out.Len()))
	type cs struct{ c, s int64 }
	buckets := make(map[uint64]*cs)
	for i := 0; i < in.Len(); i++ {
		m := in.masks[i]
		b := buckets[m]
		if b == nil {
			b = &cs{}
			buckets[m] = b
		}
		b.c++
	}
	for i := 0; i < out.Len(); i++ {
		buckets[out.masks[i]].s++
	}
	for m, b := range buckets {
		node.AddNSBucket(m, b.c, b.s)
	}
}

// EvalRowEngine evaluates with the row engine and decodes at the
// boundary, falling back to the reference evaluator for patterns wider
// than MaxSchemaVars.
func EvalRowEngine(g rdf.Store, p Pattern) *MappingSet {
	rs, ok := EvalRows(g, p)
	if !ok {
		return Eval(g, p)
	}
	return rs.MappingSet(g.Dict())
}

// evalRowsB is the bottom-up evaluator over rows; every sub-result uses
// the same query-wide schema, and every operator runs its budgeted
// variant so a hostile sub-pattern cannot outrun the governor.  parent
// is the enclosing profile node (nil disables instrumentation); h
// carries the planner's join-strategy hints (nil = structural auto).
func evalRowsB(g rdf.Store, p Pattern, sc *VarSchema, b *Budget, parent *obs.Node, h *EvalHints) (*RowSet, error) {
	node := childNode(parent, p)
	return evalInstrumented(node, b, func() (*RowSet, error) {
		return evalRowsOp(g, p, sc, b, node, h)
	})
}

// evalRowsOp dispatches one operator, recursing through evalRowsB so
// the children attach under node.  Rows-in is the operand total fed to
// the operator (its own output is recorded by the wrapper).
func evalRowsOp(g rdf.Store, p Pattern, sc *VarSchema, b *Budget, node *obs.Node, h *EvalHints) (*RowSet, error) {
	if err := b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleRowsB(g, q, sc, b, node)
	case And:
		if h.JoinStrategyFor(p) != StrategyHash {
			if rs, handled, err := tryMergeScanJoin(g, q.L, q.R, sc, b, node, false); handled {
				return rs, err
			}
		}
		l, err := evalRowsB(g, q.L, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.JoinB(r, b)
	case Union:
		l, err := evalRowsB(g, q.L, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.UnionB(r, b)
	case Opt:
		if h.JoinStrategyFor(p) != StrategyHash {
			if rs, handled, err := tryMergeScanJoin(g, q.L, q.R, sc, b, node, true); handled {
				return rs, err
			}
		}
		l, err := evalRowsB(g, q.L, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(l.Len() + r.Len()))
		return l.LeftJoinB(r, b)
	case Filter:
		inner, err := evalRowsB(g, q.P, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		return inner.FilterB(CompileCond(q.Cond, sc, g.Dict()), b)
	case Select:
		inner, err := evalRowsB(g, q.P, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		return inner.ProjectB(sc.SlotMask(q.Vars), b)
	case NS:
		inner, err := evalRowsB(g, q.P, sc, b, node, h)
		if err != nil {
			return nil, err
		}
		node.AddRowsIn(int64(inner.Len()))
		out, err := inner.MaximalB(b)
		if err != nil {
			return nil, err
		}
		recordNS(node, inner, out)
		return out, nil
	default:
		return nil, ErrUnsupportedPattern{Pattern: p}
	}
}

// tripleSlots resolves the positions of a triple pattern against a
// schema and dictionary: each position is either a constant ID or a
// slot index.  ok = false when a constant is absent from the
// dictionary (the pattern matches nothing).
type tripleSlots struct {
	constID [3]rdf.ID
	isConst [3]bool
	slot    [3]int
	mask    uint64 // slots of the variable positions, i.e. var(t)
}

func resolveTriple(t TriplePattern, sc *VarSchema, d *rdf.Dict) (tripleSlots, bool) {
	var ts tripleSlots
	for i, v := range [3]Value{t.S, t.P, t.O} {
		if v.IsVar() {
			s, ok := sc.Slot(v.Var())
			if !ok {
				// Schema built from var(P) always covers var(t).
				panic("sparql: triple variable outside schema")
			}
			ts.slot[i] = s
			ts.mask |= 1 << uint(s)
			continue
		}
		id, ok := d.Lookup(v.IRI())
		if !ok {
			return ts, false
		}
		ts.isConst[i] = true
		ts.constID[i] = id
	}
	return ts, true
}

// bindTriple writes the matched IDs of a triple into the variable slots
// of dst, reporting false when a repeated variable would need two
// different images.  Positions bound as constants are skipped (the
// index already constrained them).
func (ts *tripleSlots) bindTriple(dst []rdf.ID, tr rdf.IDTriple, boundMask uint64) (uint64, bool) {
	vals := [3]rdf.ID{tr.S, tr.P, tr.O}
	written := boundMask
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			continue
		}
		bit := uint64(1) << uint(ts.slot[i])
		if written&bit != 0 {
			if dst[ts.slot[i]] != vals[i] {
				return 0, false
			}
			continue
		}
		dst[ts.slot[i]] = vals[i]
		written |= bit
	}
	return written, true
}

// EvalTripleDelta computes the matches of t among a slice of delta
// triples given in the dictionary's ID space — the Δ⟦t⟧ rule of
// incremental view maintenance, evaluated without building a delta
// graph (which would carry its own, incompatible dictionary).
func EvalTripleDelta(t TriplePattern, sc *VarSchema, d *rdf.Dict, delta []rdf.IDTriple) *RowSet {
	out, _ := EvalTripleDeltaB(t, sc, d, delta, nil)
	return out
}

// EvalTripleDeltaB is EvalTripleDelta under a governor.
func EvalTripleDeltaB(t TriplePattern, sc *VarSchema, d *rdf.Dict, delta []rdf.IDTriple, b *Budget) (*RowSet, error) {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, d)
	if !ok {
		return out, nil
	}
	scratch := make([]rdf.ID, sc.Len())
	for _, tr := range delta {
		if err := b.Step(); err != nil {
			return nil, err
		}
		vals := [3]rdf.ID{tr.S, tr.P, tr.O}
		match := true
		for i := 0; i < 3; i++ {
			if ts.isConst[i] && ts.constID[i] != vals[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			out.Add(scratch, ts.mask)
		}
	}
	return out, nil
}

// evalTripleRowsB computes ⟦t⟧_G directly on the ID-level indexes: a
// constant in any of the three positions selects the matching index
// order (SPO/POS/OSP) via MatchIDs, and repeated variables are checked
// in ID space.  Each index probe charges one budget step; the scan is
// recorded as one range scan on the pattern's profile node.
func evalTripleRowsB(g rdf.Store, t TriplePattern, sc *VarSchema, b *Budget, node *obs.Node) (*RowSet, error) {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, g.Dict())
	if !ok {
		return out, nil
	}
	node.AddRangeScans(1)
	var sp, pp, op *rdf.ID
	if ts.isConst[0] {
		sp = &ts.constID[0]
	}
	if ts.isConst[1] {
		pp = &ts.constID[1]
	}
	if ts.isConst[2] {
		op = &ts.constID[2]
	}
	scratch := make([]rdf.ID, sc.Len())
	var err error
	g.MatchIDs(sp, pp, op, func(tr rdf.IDTriple) bool {
		if err = b.Step(); err != nil {
			return false
		}
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			if err = out.addCharged(scratch, ts.mask, b); err != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
