package sparql

import (
	"repro/internal/rdf"
)

// EvalRows computes ⟦P⟧_G with the ID-native row engine: one VarSchema
// for the whole query, dictionary-encoded rows throughout, and the
// mask-bucketed NS algorithm.  ok = false when the pattern exceeds
// MaxSchemaVars variables (or is malformed); callers then fall back to
// the string algebra.
//
// The result decodes to exactly Eval(g, p) (differentially tested);
// Eval stays the reference implementation and oracle.
func EvalRows(g *rdf.Graph, p Pattern) (*RowSet, bool) {
	rs, ok, err := EvalRowsBudget(g, p, nil)
	if err != nil {
		return nil, false
	}
	return rs, ok
}

// EvalRowsBudget is EvalRows under a governor: the budget is charged
// per triple-index probe, join candidate and materialized row, and the
// evaluation aborts with the budget's typed error (ErrCanceled,
// ErrBudgetExceeded) as soon as the governor trips.  Malformed plans
// surface as ErrUnsupportedPattern instead of panicking.
func EvalRowsBudget(g *rdf.Graph, p Pattern, b *Budget) (*RowSet, bool, error) {
	sc, ok := SchemaFor(p)
	if !ok {
		return nil, false, nil
	}
	rs, err := evalRowsB(g, p, sc, b)
	if err != nil {
		return nil, true, err
	}
	return rs, true, nil
}

// EvalRowEngine evaluates with the row engine and decodes at the
// boundary, falling back to the reference evaluator for patterns wider
// than MaxSchemaVars.
func EvalRowEngine(g *rdf.Graph, p Pattern) *MappingSet {
	rs, ok := EvalRows(g, p)
	if !ok {
		return Eval(g, p)
	}
	return rs.MappingSet(g.Dict())
}

// evalRowsB is the bottom-up evaluator over rows; every sub-result uses
// the same query-wide schema, and every operator runs its budgeted
// variant so a hostile sub-pattern cannot outrun the governor.
func evalRowsB(g *rdf.Graph, p Pattern, sc *VarSchema, b *Budget) (*RowSet, error) {
	if err := b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleRowsB(g, q, sc, b)
	case And:
		l, err := evalRowsB(g, q.L, sc, b)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b)
		if err != nil {
			return nil, err
		}
		return l.JoinB(r, b)
	case Union:
		l, err := evalRowsB(g, q.L, sc, b)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b)
		if err != nil {
			return nil, err
		}
		return l.UnionB(r, b)
	case Opt:
		l, err := evalRowsB(g, q.L, sc, b)
		if err != nil {
			return nil, err
		}
		r, err := evalRowsB(g, q.R, sc, b)
		if err != nil {
			return nil, err
		}
		return l.LeftJoinB(r, b)
	case Filter:
		inner, err := evalRowsB(g, q.P, sc, b)
		if err != nil {
			return nil, err
		}
		return inner.FilterB(CompileCond(q.Cond, sc, g.Dict()), b)
	case Select:
		inner, err := evalRowsB(g, q.P, sc, b)
		if err != nil {
			return nil, err
		}
		return inner.ProjectB(sc.SlotMask(q.Vars), b)
	case NS:
		inner, err := evalRowsB(g, q.P, sc, b)
		if err != nil {
			return nil, err
		}
		return inner.MaximalB(b)
	default:
		return nil, ErrUnsupportedPattern{Pattern: p}
	}
}

// tripleSlots resolves the positions of a triple pattern against a
// schema and dictionary: each position is either a constant ID or a
// slot index.  ok = false when a constant is absent from the
// dictionary (the pattern matches nothing).
type tripleSlots struct {
	constID [3]rdf.ID
	isConst [3]bool
	slot    [3]int
	mask    uint64 // slots of the variable positions, i.e. var(t)
}

func resolveTriple(t TriplePattern, sc *VarSchema, d *rdf.Dict) (tripleSlots, bool) {
	var ts tripleSlots
	for i, v := range [3]Value{t.S, t.P, t.O} {
		if v.IsVar() {
			s, ok := sc.Slot(v.Var())
			if !ok {
				// Schema built from var(P) always covers var(t).
				panic("sparql: triple variable outside schema")
			}
			ts.slot[i] = s
			ts.mask |= 1 << uint(s)
			continue
		}
		id, ok := d.Lookup(v.IRI())
		if !ok {
			return ts, false
		}
		ts.isConst[i] = true
		ts.constID[i] = id
	}
	return ts, true
}

// bindTriple writes the matched IDs of a triple into the variable slots
// of dst, reporting false when a repeated variable would need two
// different images.  Positions bound as constants are skipped (the
// index already constrained them).
func (ts *tripleSlots) bindTriple(dst []rdf.ID, tr rdf.IDTriple, boundMask uint64) (uint64, bool) {
	vals := [3]rdf.ID{tr.S, tr.P, tr.O}
	written := boundMask
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			continue
		}
		bit := uint64(1) << uint(ts.slot[i])
		if written&bit != 0 {
			if dst[ts.slot[i]] != vals[i] {
				return 0, false
			}
			continue
		}
		dst[ts.slot[i]] = vals[i]
		written |= bit
	}
	return written, true
}

// EvalTripleDelta computes the matches of t among a slice of delta
// triples given in the dictionary's ID space — the Δ⟦t⟧ rule of
// incremental view maintenance, evaluated without building a delta
// graph (which would carry its own, incompatible dictionary).
func EvalTripleDelta(t TriplePattern, sc *VarSchema, d *rdf.Dict, delta []rdf.IDTriple) *RowSet {
	out, _ := EvalTripleDeltaB(t, sc, d, delta, nil)
	return out
}

// EvalTripleDeltaB is EvalTripleDelta under a governor.
func EvalTripleDeltaB(t TriplePattern, sc *VarSchema, d *rdf.Dict, delta []rdf.IDTriple, b *Budget) (*RowSet, error) {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, d)
	if !ok {
		return out, nil
	}
	scratch := make([]rdf.ID, sc.Len())
	for _, tr := range delta {
		if err := b.Step(); err != nil {
			return nil, err
		}
		vals := [3]rdf.ID{tr.S, tr.P, tr.O}
		match := true
		for i := 0; i < 3; i++ {
			if ts.isConst[i] && ts.constID[i] != vals[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			out.Add(scratch, ts.mask)
		}
	}
	return out, nil
}

// evalTripleRowsB computes ⟦t⟧_G directly on the ID-level indexes: a
// constant in any of the three positions selects the matching index
// order (SPO/POS/OSP) via MatchIDs, and repeated variables are checked
// in ID space.  Each index probe charges one budget step.
func evalTripleRowsB(g *rdf.Graph, t TriplePattern, sc *VarSchema, b *Budget) (*RowSet, error) {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, g.Dict())
	if !ok {
		return out, nil
	}
	var sp, pp, op *rdf.ID
	if ts.isConst[0] {
		sp = &ts.constID[0]
	}
	if ts.isConst[1] {
		pp = &ts.constID[1]
	}
	if ts.isConst[2] {
		op = &ts.constID[2]
	}
	scratch := make([]rdf.ID, sc.Len())
	var err error
	g.MatchIDs(sp, pp, op, func(tr rdf.IDTriple) bool {
		if err = b.Step(); err != nil {
			return false
		}
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			if err = out.addCharged(scratch, ts.mask, b); err != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
