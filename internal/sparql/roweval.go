package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// EvalRows computes ⟦P⟧_G with the ID-native row engine: one VarSchema
// for the whole query, dictionary-encoded rows throughout, and the
// mask-bucketed NS algorithm.  ok = false when the pattern exceeds
// MaxSchemaVars variables; callers then fall back to the string
// algebra.
//
// The result decodes to exactly Eval(g, p) (differentially tested);
// Eval stays the reference implementation and oracle.
func EvalRows(g *rdf.Graph, p Pattern) (*RowSet, bool) {
	sc, ok := SchemaFor(p)
	if !ok {
		return nil, false
	}
	return evalRows(g, p, sc), true
}

// EvalRowEngine evaluates with the row engine and decodes at the
// boundary, falling back to the reference evaluator for patterns wider
// than MaxSchemaVars.
func EvalRowEngine(g *rdf.Graph, p Pattern) *MappingSet {
	rs, ok := EvalRows(g, p)
	if !ok {
		return Eval(g, p)
	}
	return rs.MappingSet(g.Dict())
}

// evalRows is the bottom-up evaluator over rows; every sub-result uses
// the same query-wide schema.
func evalRows(g *rdf.Graph, p Pattern, sc *VarSchema) *RowSet {
	switch q := p.(type) {
	case TriplePattern:
		return evalTripleRows(g, q, sc)
	case And:
		return evalRows(g, q.L, sc).Join(evalRows(g, q.R, sc))
	case Union:
		return evalRows(g, q.L, sc).Union(evalRows(g, q.R, sc))
	case Opt:
		return evalRows(g, q.L, sc).LeftJoin(evalRows(g, q.R, sc))
	case Filter:
		return evalRows(g, q.P, sc).Filter(CompileCond(q.Cond, sc, g.Dict()))
	case Select:
		return evalRows(g, q.P, sc).Project(sc.SlotMask(q.Vars))
	case NS:
		return evalRows(g, q.P, sc).Maximal()
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// tripleSlots resolves the positions of a triple pattern against a
// schema and dictionary: each position is either a constant ID or a
// slot index.  ok = false when a constant is absent from the
// dictionary (the pattern matches nothing).
type tripleSlots struct {
	constID [3]rdf.ID
	isConst [3]bool
	slot    [3]int
	mask    uint64 // slots of the variable positions, i.e. var(t)
}

func resolveTriple(t TriplePattern, sc *VarSchema, d *rdf.Dict) (tripleSlots, bool) {
	var ts tripleSlots
	for i, v := range [3]Value{t.S, t.P, t.O} {
		if v.IsVar() {
			s, ok := sc.Slot(v.Var())
			if !ok {
				// Schema built from var(P) always covers var(t).
				panic("sparql: triple variable outside schema")
			}
			ts.slot[i] = s
			ts.mask |= 1 << uint(s)
			continue
		}
		id, ok := d.Lookup(v.IRI())
		if !ok {
			return ts, false
		}
		ts.isConst[i] = true
		ts.constID[i] = id
	}
	return ts, true
}

// bindTriple writes the matched IDs of a triple into the variable slots
// of dst, reporting false when a repeated variable would need two
// different images.  Positions bound as constants are skipped (the
// index already constrained them).
func (ts *tripleSlots) bindTriple(dst []rdf.ID, tr rdf.IDTriple, boundMask uint64) (uint64, bool) {
	vals := [3]rdf.ID{tr.S, tr.P, tr.O}
	written := boundMask
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			continue
		}
		bit := uint64(1) << uint(ts.slot[i])
		if written&bit != 0 {
			if dst[ts.slot[i]] != vals[i] {
				return 0, false
			}
			continue
		}
		dst[ts.slot[i]] = vals[i]
		written |= bit
	}
	return written, true
}

// EvalTripleDelta computes the matches of t among a slice of delta
// triples given in the dictionary's ID space — the Δ⟦t⟧ rule of
// incremental view maintenance, evaluated without building a delta
// graph (which would carry its own, incompatible dictionary).
func EvalTripleDelta(t TriplePattern, sc *VarSchema, d *rdf.Dict, delta []rdf.IDTriple) *RowSet {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, d)
	if !ok {
		return out
	}
	scratch := make([]rdf.ID, sc.Len())
	for _, tr := range delta {
		vals := [3]rdf.ID{tr.S, tr.P, tr.O}
		match := true
		for i := 0; i < 3; i++ {
			if ts.isConst[i] && ts.constID[i] != vals[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			out.Add(scratch, ts.mask)
		}
	}
	return out
}

// evalTripleRows computes ⟦t⟧_G directly on the ID-level indexes: a
// constant in any of the three positions selects the matching index
// order (SPO/POS/OSP) via MatchIDs, and repeated variables are checked
// in ID space.
func evalTripleRows(g *rdf.Graph, t TriplePattern, sc *VarSchema) *RowSet {
	out := NewRowSet(sc)
	ts, ok := resolveTriple(t, sc, g.Dict())
	if !ok {
		return out
	}
	var sp, pp, op *rdf.ID
	if ts.isConst[0] {
		sp = &ts.constID[0]
	}
	if ts.isConst[1] {
		pp = &ts.constID[1]
	}
	if ts.isConst[2] {
		op = &ts.constID[2]
	}
	scratch := make([]rdf.ID, sc.Len())
	g.MatchIDs(sp, pp, op, func(tr rdf.IDTriple) bool {
		if _, ok := ts.bindTriple(scratch, tr, 0); ok {
			out.Add(scratch, ts.mask)
		}
		return true
	})
	return out
}
