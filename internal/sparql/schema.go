package sparql

import (
	"sort"

	"repro/internal/rdf"
)

// MaxSchemaVars is the widest variable schema the row engine supports:
// the presence bitset of a Row is a single machine word.  Queries with
// more variables fall back to the string-based algebra.
const MaxSchemaVars = 64

// VarSchema assigns the variables of one query dense slot indices, so
// that a solution mapping can be laid out as a fixed-width row of
// interned IDs instead of a hash map of strings.  A schema is built
// once per query and shared by every RowSet of its evaluation.
type VarSchema struct {
	vars  []Var
	slots map[Var]int
}

// NewVarSchema builds a schema over the given variables (sorted,
// de-duplicated).  It returns ok = false when the variable count
// exceeds MaxSchemaVars.
func NewVarSchema(vars []Var) (*VarSchema, bool) {
	uniq := make([]Var, 0, len(vars))
	seen := make(map[Var]struct{}, len(vars))
	for _, v := range vars {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			uniq = append(uniq, v)
		}
	}
	if len(uniq) > MaxSchemaVars {
		return nil, false
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	sc := &VarSchema{vars: uniq, slots: make(map[Var]int, len(uniq))}
	for i, v := range uniq {
		sc.slots[v] = i
	}
	return sc, true
}

// SchemaFor builds the schema of a pattern from var(P) (including
// FILTER conditions and SELECT lists).  ok = false when the pattern has
// more than MaxSchemaVars variables.
func SchemaFor(p Pattern) (*VarSchema, bool) {
	return NewVarSchema(Vars(p))
}

// Len reports the number of slots.
func (sc *VarSchema) Len() int { return len(sc.vars) }

// Vars returns the schema's variables in slot order.  Callers must not
// modify the slice.
func (sc *VarSchema) Vars() []Var { return sc.vars }

// Slot returns the slot index of v and whether v is in the schema.
func (sc *VarSchema) Slot(v Var) (int, bool) {
	i, ok := sc.slots[v]
	return i, ok
}

// SlotMask returns the presence bitmask covering the given variables;
// variables outside the schema are ignored.
func (sc *VarSchema) SlotMask(vars []Var) uint64 {
	var m uint64
	for _, v := range vars {
		if i, ok := sc.slots[v]; ok {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Codec converts between string mappings and rows over a schema, using
// a dictionary for the variable images.  Conversion happens only at
// query boundaries; the evaluation core stays in ID space.
type Codec struct {
	Schema *VarSchema
	Dict   *rdf.Dict
}

// Encode converts µ to a row, interning IRIs as needed.  ok = false
// when µ binds a variable outside the schema.
func (c Codec) Encode(mu Mapping) (Row, bool) {
	r := Row{IDs: make([]rdf.ID, c.Schema.Len())}
	for v, iri := range mu {
		i, ok := c.Schema.Slot(v)
		if !ok {
			return Row{}, false
		}
		r.IDs[i] = c.Dict.Intern(iri)
		r.Mask |= 1 << uint(i)
	}
	return r, true
}

// EncodeLookup is Encode without interning: ok = false when µ binds a
// variable outside the schema or an IRI outside the dictionary (such a
// mapping cannot be an answer over the dictionary's graph).
func (c Codec) EncodeLookup(mu Mapping) (Row, bool) {
	r := Row{IDs: make([]rdf.ID, c.Schema.Len())}
	for v, iri := range mu {
		i, ok := c.Schema.Slot(v)
		if !ok {
			return Row{}, false
		}
		id, ok := c.Dict.Lookup(iri)
		if !ok {
			return Row{}, false
		}
		r.IDs[i] = id
		r.Mask |= 1 << uint(i)
	}
	return r, true
}

// Decode converts a row back to a string mapping.
func (c Codec) Decode(r Row) Mapping {
	return c.DecodeMasked(r.IDs, r.Mask)
}

// DecodeMasked converts a raw (ids, mask) row to a string mapping.
func (c Codec) DecodeMasked(ids []rdf.ID, mask uint64) Mapping {
	mu := make(Mapping, popcount(mask))
	for m := mask; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		mu[c.Schema.vars[i]] = c.Dict.IRI(ids[i])
	}
	return mu
}
