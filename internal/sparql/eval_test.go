package sparql

import (
	"testing"

	"repro/internal/rdf"
)

// figure1Graph is the RDF graph of Figure 1 / Example 2.1.
func figure1Graph() *rdf.Graph {
	return rdf.FromTriples(
		rdf.T("Gottfrid_Svartholm", "founder", "The_Pirate_Bay"),
		rdf.T("Fredrik_Neij", "founder", "The_Pirate_Bay"),
		rdf.T("Peter_Sunde", "founder", "The_Pirate_Bay"),
		rdf.T("founder", "sub_property", "supporter"),
		rdf.T("The_Pirate_Bay", "stands_for", "sharing_rights"),
		rdf.T("Carl_Lundström", "supporter", "The_Pirate_Bay"),
	)
}

// figure2G1 and figure2G2 are the graphs G1 ⊆ G2 of Figure 2.
func figure2G1() *rdf.Graph {
	return rdf.FromTriples(
		rdf.T("prof_01", "name", "Cristian"),
		rdf.T("prof_01", "email", "cris@puc.cl"),
		rdf.T("prof_01", "works_at", "PUC Chile"),
		rdf.T("prof_02", "name", "Denis"),
		rdf.T("prof_02", "works_at", "U Oxford"),
		rdf.T("Juan", "was_born_in", "Chile"),
	)
}

func figure2G2() *rdf.Graph {
	g := figure2G1()
	g.Add("Juan", "email", "juan@puc.cl")
	return g
}

func TestExample22(t *testing.T) {
	// Example 2.2: founders and supporters of organizations standing for
	// sharing rights.
	g := figure1Graph()
	p1 := And{
		L: TP(V("o"), I("stands_for"), I("sharing_rights")),
		R: Union{
			L: TP(V("p"), I("founder"), V("o")),
			R: TP(V("p"), I("supporter"), V("o")),
		},
	}
	p := NewSelect([]Var{"p"}, p1)
	got := Eval(g, p)
	want := setOf(
		M("p", "Gottfrid_Svartholm"),
		M("p", "Fredrik_Neij"),
		M("p", "Peter_Sunde"),
		M("p", "Carl_Lundström"),
	)
	if !got.Equal(want) {
		t.Fatalf("⟦P⟧G =\n%s\nwant\n%s", got.Table(), want.Table())
	}

	// Intermediate step from the paper: ⟦P1⟧G binds both ?p and ?o.
	inner := Eval(g, p1)
	if inner.Len() != 4 || !inner.Contains(M("p", "Carl_Lundström", "o", "The_Pirate_Bay")) {
		t.Fatalf("⟦P1⟧G =\n%s", inner.Table())
	}
}

func TestExample31OptSemantics(t *testing.T) {
	// Example 3.1: P = (?X, was_born_in, Chile) OPT (?X, email, ?Y).
	p := Opt{
		L: TP(V("X"), I("was_born_in"), I("Chile")),
		R: TP(V("X"), I("email"), V("Y")),
	}
	g1, g2 := figure2G1(), figure2G2()
	r1 := Eval(g1, p)
	if r1.Len() != 1 || !r1.Contains(M("X", "Juan")) {
		t.Fatalf("⟦P⟧G1 = %v", r1)
	}
	r2 := Eval(g2, p)
	if r2.Len() != 1 || !r2.Contains(M("X", "Juan", "Y", "juan@puc.cl")) {
		t.Fatalf("⟦P⟧G2 = %v", r2)
	}
	// Not monotone: µ1 disappears...
	if r2.Contains(M("X", "Juan")) {
		t.Fatal("µ1 should not survive in G2")
	}
	// ...but weakly monotone on this pair: ⟦P⟧G1 ⊑ ⟦P⟧G2.
	if !r1.SubsumedBy(r2) {
		t.Fatal("⟦P⟧G1 ⊑ ⟦P⟧G2 must hold")
	}
}

func TestExample33NotWeaklyMonotone(t *testing.T) {
	// Example 3.3: the unnatural pattern that breaks weak monotonicity.
	p := And{
		L: TP(V("X"), I("was_born_in"), I("Chile")),
		R: Opt{
			L: TP(V("Y"), I("was_born_in"), I("Chile")),
			R: TP(V("Y"), I("email"), V("X")),
		},
	}
	g1, g2 := figure2G1(), figure2G2()
	r1 := Eval(g1, p)
	if r1.Len() != 1 || !r1.Contains(M("X", "Juan", "Y", "Juan")) {
		t.Fatalf("⟦P⟧G1 = %v", r1)
	}
	r2 := Eval(g2, p)
	if r2.Len() != 0 {
		t.Fatalf("⟦P⟧G2 = %v, want ∅", r2)
	}
	if r1.SubsumedBy(r2) {
		t.Fatal("pattern must violate weak monotonicity on this pair")
	}
}

func TestEvalTripleGroundAndRepeatedVars(t *testing.T) {
	g := rdf.FromTriples(rdf.T("a", "p", "a"), rdf.T("a", "p", "b"), rdf.T("c", "q", "c"))
	// Ground pattern: answer is {µ∅} iff the triple is present.
	r := Eval(g, TP(I("a"), I("p"), I("b")))
	if r.Len() != 1 || !r.Contains(M()) {
		t.Fatalf("ground pattern eval = %v", r)
	}
	if r := Eval(g, TP(I("a"), I("p"), I("zzz"))); r.Len() != 0 {
		t.Fatalf("absent ground pattern eval = %v", r)
	}
	// Repeated variable: (?X, p, ?X) only matches (a, p, a).
	r = Eval(g, TP(V("X"), I("p"), V("X")))
	if r.Len() != 1 || !r.Contains(M("X", "a")) {
		t.Fatalf("repeated-var eval = %v", r)
	}
	// All-variable pattern with repeated subject/object.
	r = Eval(g, TP(V("X"), V("P"), V("X")))
	want := setOf(M("X", "a", "P", "p"), M("X", "c", "P", "q"))
	if !r.Equal(want) {
		t.Fatalf("eval = %v, want %v", r, want)
	}
}

func TestEvalFilter(t *testing.T) {
	g := figure2G1()
	p := Filter{
		P:    TP(V("X"), I("works_at"), V("W")),
		Cond: EqConst{X: "W", C: "PUC Chile"},
	}
	r := Eval(g, p)
	if r.Len() != 1 || !r.Contains(M("X", "prof_01", "W", "PUC Chile")) {
		t.Fatalf("filter eval = %v", r)
	}
}

func TestEvalNS(t *testing.T) {
	// NS removes properly subsumed answers (Section 5.1).
	g := figure2G2()
	p := NS{P: Union{
		L: TP(V("X"), I("was_born_in"), I("Chile")),
		R: And{
			L: TP(V("X"), I("was_born_in"), I("Chile")),
			R: TP(V("X"), I("email"), V("Y")),
		},
	}}
	r := Eval(g, p)
	if r.Len() != 1 || !r.Contains(M("X", "Juan", "Y", "juan@puc.cl")) {
		t.Fatalf("NS eval = %v", r)
	}
	// On G1 (no email) the maximal answer is the bare binding.
	r = Eval(figure2G1(), p)
	if r.Len() != 1 || !r.Contains(M("X", "Juan")) {
		t.Fatalf("NS eval on G1 = %v", r)
	}
}

func TestExample61Construct(t *testing.T) {
	// Example 6.1 over the Figure 3 graph.
	g := rdf.FromTriples(
		rdf.T("prof_01", "name", "Cristian"),
		rdf.T("prof_01", "email", "cris@puc.cl"),
		rdf.T("prof_01", "works_at", "U_Oxford"),
		rdf.T("prof_01", "works_at", "PUC_Chile"),
		rdf.T("prof_02", "name", "Denis"),
		rdf.T("prof_02", "works_at", "PUC_Chile"),
		rdf.T("Juan", "was_born_in", "Chile"),
		rdf.T("Juan", "email", "juan@puc.cl"),
	)
	q := ConstructQuery{
		Template: []TriplePattern{
			TP(V("n"), I("affiliated_to"), V("u")),
			TP(V("n"), I("email"), V("e")),
		},
		Where: Opt{
			L: And{
				L: TP(V("p"), I("name"), V("n")),
				R: TP(V("p"), I("works_at"), V("u")),
			},
			R: TP(V("p"), I("email"), V("e")),
		},
	}
	out := EvalConstruct(g, q)
	want := rdf.FromTriples(
		rdf.T("Denis", "affiliated_to", "PUC_Chile"),
		rdf.T("Cristian", "affiliated_to", "U_Oxford"),
		rdf.T("Cristian", "affiliated_to", "PUC_Chile"),
		rdf.T("Cristian", "email", "cris@puc.cl"),
	)
	if !out.Equal(want) {
		t.Fatalf("ans(Q,G) =\n%s\nwant\n%s", out, want)
	}
	if !ConstructContains(g, q, rdf.T("Cristian", "email", "cris@puc.cl")) {
		t.Fatal("ConstructContains missed a produced triple")
	}
	if ConstructContains(g, q, rdf.T("Denis", "email", "x")) {
		t.Fatal("ConstructContains reported an absent triple")
	}
}

func TestEvalSelectProjectsSubset(t *testing.T) {
	g := figure1Graph()
	p := NewSelect([]Var{"p", "nonexistent"}, TP(V("p"), I("founder"), V("o")))
	r := Eval(g, p)
	if r.Len() != 3 || !r.Contains(M("p", "Peter_Sunde")) {
		t.Fatalf("select eval = %v", r)
	}
}
