package sparql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func setOf(mus ...Mapping) *MappingSet { return NewMappingSet(mus...) }

func TestMappingSetAddDedup(t *testing.T) {
	s := NewMappingSet()
	if !s.Add(M("X", "a")) {
		t.Fatal("first Add returned false")
	}
	if s.Add(M("X", "a")) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Len() != 1 || !s.Contains(M("X", "a")) {
		t.Fatal("set state wrong after dedup")
	}
}

func TestJoinPaperDefinition(t *testing.T) {
	// Example 2.2 of the paper: joining the stands_for mapping with the
	// founder/supporter union keeps all four people.
	standsFor := setOf(M("o", "The_Pirate_Bay"))
	people := setOf(
		M("p", "Gottfrid_Svartholm", "o", "The_Pirate_Bay"),
		M("p", "Fredrik_Neij", "o", "The_Pirate_Bay"),
		M("p", "Peter_Sunde", "o", "The_Pirate_Bay"),
		M("p", "Carl_Lundström", "o", "The_Pirate_Bay"),
	)
	j := standsFor.Join(people)
	if !j.Equal(people) {
		t.Fatalf("join = %v", j)
	}
}

func TestJoinIncompatible(t *testing.T) {
	a := setOf(M("X", "1"))
	b := setOf(M("X", "2"))
	if j := a.Join(b); j.Len() != 0 {
		t.Fatalf("join of incompatible sets = %v", j)
	}
}

func TestDiffAndLeftJoin(t *testing.T) {
	born := setOf(M("X", "juan"))
	email := setOf(M("X", "juan", "Y", "juan@puc.cl"))
	// With the email present, the left-outer join extends the mapping.
	lj := born.LeftJoin(email)
	if lj.Len() != 1 || !lj.Contains(M("X", "juan", "Y", "juan@puc.cl")) {
		t.Fatalf("left join = %v", lj)
	}
	// With no compatible right side, the left side survives via Diff.
	other := setOf(M("X", "pedro", "Y", "p@x"))
	lj = born.LeftJoin(other)
	if lj.Len() != 1 || !lj.Contains(M("X", "juan")) {
		t.Fatalf("left join (no match) = %v", lj)
	}
	d := born.Diff(email)
	if d.Len() != 0 {
		t.Fatalf("diff with compatible right side = %v", d)
	}
}

func TestDiffEmptyMappingAbsorbs(t *testing.T) {
	// The empty mapping is compatible with everything, so a right side
	// containing it empties the difference.
	l := setOf(M("X", "a"), M("Y", "b"))
	r := setOf(M())
	if d := l.Diff(r); d.Len() != 0 {
		t.Fatalf("diff = %v", d)
	}
}

func TestProjectAndFilter(t *testing.T) {
	s := setOf(M("X", "a", "Y", "b"), M("X", "c"))
	p := s.Project([]Var{"Y"})
	if p.Len() != 2 || !p.Contains(M("Y", "b")) || !p.Contains(M()) {
		t.Fatalf("project = %v", p)
	}
	f := s.Filter(Bound{X: "Y"})
	if f.Len() != 1 || !f.Contains(M("X", "a", "Y", "b")) {
		t.Fatalf("filter = %v", f)
	}
}

func TestSubsumedBySets(t *testing.T) {
	small := setOf(M("X", "a"))
	big := setOf(M("X", "a", "Y", "b"), M("Z", "z"))
	if !small.SubsumedBy(big) {
		t.Fatal("⊑ failed")
	}
	if big.SubsumedBy(small) {
		t.Fatal("⊑ held in the wrong direction")
	}
	if !NewMappingSet().SubsumedBy(small) {
		t.Fatal("∅ ⊑ Ω must hold")
	}
	if small.SubsumedBy(NewMappingSet()) {
		t.Fatal("nonempty ⊑ ∅ must fail")
	}
}

func TestMaximalSimple(t *testing.T) {
	s := setOf(
		M("X", "a"),
		M("X", "a", "Y", "b"),
		M("X", "c"),
		M("Y", "b"),
	)
	m := s.Maximal()
	want := setOf(M("X", "a", "Y", "b"), M("X", "c"))
	if !m.Equal(want) {
		t.Fatalf("Maximal = %v, want %v", m, want)
	}
}

func TestMaximalEmptyMapping(t *testing.T) {
	// The empty mapping survives only when it is the sole member.
	if m := setOf(M()).Maximal(); m.Len() != 1 || !m.Contains(M()) {
		t.Fatalf("Maximal({µ∅}) = %v", m)
	}
	if m := setOf(M(), M("X", "a")).Maximal(); m.Len() != 1 || !m.Contains(M("X", "a")) {
		t.Fatalf("Maximal = %v", m)
	}
}

func randomMappingSet(rng *rand.Rand, n int) *MappingSet {
	s := NewMappingSet()
	for i := 0; i < n; i++ {
		s.Add(randomMapping(rng, 4, 3))
	}
	return s
}

func TestMaximalBucketedMatchesNaiveQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomMappingSet(rng, rng.Intn(40))
		return s.MaximalBucketed().Equal(s.MaximalNaive())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalIdempotentQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomMappingSet(rng, rng.Intn(40))
		m := s.Maximal()
		return m.Maximal().Equal(m) && m.SubsumptionEquivalent(s)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAlgebraLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMappingSet(rng, rng.Intn(15))
		b := randomMappingSet(rng, rng.Intn(15))
		c := randomMappingSet(rng, rng.Intn(15))
		// Join and Union are commutative and associative.
		if !a.Join(b).Equal(b.Join(a)) {
			return false
		}
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Join(b.Join(c)).Equal(a.Join(b).Join(c)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// Join distributes over Union (Prop. in [30] §2).
		if !a.Join(b.Union(c)).Equal(a.Join(b).Union(a.Join(c))) {
			return false
		}
		// LeftJoin definition.
		return a.LeftJoin(b).Equal(a.Join(b).Union(a.Diff(b)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	s := setOf(M("p", "Peter_Sunde"), M("p", "Fredrik_Neij"))
	tab := s.Table()
	if !strings.Contains(tab, "?p") || !strings.Contains(tab, "Peter_Sunde") {
		t.Fatalf("table = %q", tab)
	}
	empty := NewMappingSet().Table()
	if !strings.Contains(empty, "no solutions") {
		t.Fatalf("empty table = %q", empty)
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := setOf(M("X", "b"), M("X", "a"))
	got := s.Sorted()
	if !got[0].Equal(M("X", "a")) || !got[1].Equal(M("X", "b")) {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestHashJoinMatchesNestedQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMappingSet(rng, rng.Intn(25))
		b := randomMappingSet(rng, rng.Intn(25))
		if !a.JoinHash(b).Equal(a.Join(b)) {
			t.Logf("JoinHash differs on\n%v\n%v", a, b)
			return false
		}
		if !a.DiffHash(b).Equal(a.Diff(b)) {
			t.Logf("DiffHash differs on\n%v\n%v", a, b)
			return false
		}
		return a.LeftJoinHash(b).Equal(a.LeftJoin(b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinHomogeneous(t *testing.T) {
	// Homogeneous sides exercise the bucketed fast path.
	a := setOf(M("X", "1", "Y", "a"), M("X", "2", "Y", "b"), M("X", "3", "Y", "c"))
	b := setOf(M("X", "1", "Z", "p"), M("X", "2", "Z", "q"), M("X", "9", "Z", "r"))
	j := a.JoinHash(b)
	want := setOf(M("X", "1", "Y", "a", "Z", "p"), M("X", "2", "Y", "b", "Z", "q"))
	if !j.Equal(want) {
		t.Fatalf("JoinHash = %v", j)
	}
	d := a.DiffHash(b)
	if !d.Equal(setOf(M("X", "3", "Y", "c"))) {
		t.Fatalf("DiffHash = %v", d)
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	a := setOf(M("X", "1"))
	empty := NewMappingSet()
	if a.JoinHash(empty).Len() != 0 || empty.JoinHash(a).Len() != 0 {
		t.Fatal("join with empty side not empty")
	}
	if !a.DiffHash(empty).Equal(a) {
		t.Fatal("diff with empty right side should keep everything")
	}
	if empty.DiffHash(a).Len() != 0 {
		t.Fatal("diff of empty left side should be empty")
	}
}

func TestAlwaysBoundVars(t *testing.T) {
	s := setOf(M("X", "1", "Y", "a"), M("X", "2"))
	got := s.alwaysBoundVars()
	if len(got) != 1 || got[0] != "X" {
		t.Fatalf("alwaysBoundVars = %v", got)
	}
	if NewMappingSet().alwaysBoundVars() != nil {
		t.Fatal("empty set should have nil always-bound vars")
	}
}
