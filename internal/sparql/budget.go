package sparql

import (
	"context"
	"errors"
	"fmt"
)

// The paper's complexity map (Theorems 7.1–7.4) guarantees that
// adversarial NS-SPARQL queries are intractable in the worst case:
// evaluation is DP-complete already for SPARQL[AUF], BH₂ₖ-hard for
// nested NS, and P^NP_∥-complete in general.  A production engine
// therefore cannot promise to *finish* every query — it can only
// promise to *stop*.  Budget is that promise: a per-query resource
// envelope (deadline via context.Context, maximum search steps,
// maximum result rows, and a coarse memory estimate) threaded through
// every evaluation path.
//
// The hot loops of the engine call Step once per unit of work (a
// triple-index probe, a join candidate pair, a subsumption check).
// Step is designed to be nearly free: a nil *Budget short-circuits
// immediately, and a live one only increments a counter and compares
// it against a precomputed checkpoint.  The expensive part — polling
// ctx.Err() — runs once per stride (default 1024 steps), so the
// engine notices cancellation within a bounded, small amount of work
// while the per-step overhead stays in the noise.
//
// Budget is single-goroutine state, like the Searcher that carries
// it; a Budget must not be shared by concurrent queries.

// ErrCanceled is returned (wrapped) when evaluation stops because the
// query's context was canceled or its deadline expired.  The cause is
// wrapped too, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) distinguish timeout from client
// cancellation.
var ErrCanceled = errors.New("sparql: query canceled")

// BudgetKind identifies which resource of a Budget ran out.
type BudgetKind uint8

const (
	// BudgetSteps: the search-step limit (MaxSteps) was reached.
	BudgetSteps BudgetKind = iota
	// BudgetRows: the result-row limit (MaxRows) was reached.
	BudgetRows
	// BudgetMemory: the estimated memory limit (MaxBytes) was reached.
	BudgetMemory
)

func (k BudgetKind) String() string {
	switch k {
	case BudgetSteps:
		return "steps"
	case BudgetRows:
		return "rows"
	case BudgetMemory:
		return "memory"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrBudgetExceeded reports that a query exhausted one of its resource
// limits.  Match with errors.As.
type ErrBudgetExceeded struct {
	Kind BudgetKind
}

func (e ErrBudgetExceeded) Error() string {
	return "sparql: query budget exceeded: max " + e.Kind.String()
}

// ErrUnsupportedPattern reports a pattern node outside the algebra the
// engine implements — a malformed plan.  It is returned through the
// error paths instead of panicking, so a bad plan cannot crash a
// caller holding locks.
type ErrUnsupportedPattern struct {
	Pattern Pattern
}

func (e ErrUnsupportedPattern) Error() string {
	return fmt.Sprintf("sparql: unsupported pattern type %T", e.Pattern)
}

// DefaultStride is how many steps pass between context polls.  Powers
// of two only; the default keeps the poll far off the hot path while
// bounding the engine's reaction latency to ~a thousand index probes.
const DefaultStride = 1024

// Budget is a query's resource envelope.  The zero limits mean
// "unlimited"; a nil *Budget is valid everywhere and disables all
// accounting (every method on a nil receiver returns nil), so legacy
// entry points simply pass nil.
type Budget struct {
	ctx      context.Context // nil: never canceled
	maxSteps int64           // 0: unlimited
	maxRows  int64           // 0: unlimited
	maxBytes int64           // 0: unlimited
	stride   int64           // power of two

	steps   int64
	rows    int64
	bytes   int64
	checkAt int64 // next steps value that triggers a full check
	err     error // sticky: first failure, returned forever after

	faultAt  int64 // fault injection: fire once steps >= faultAt
	faultErr error // nil: injection disabled
}

// NewBudget returns a budget tied to ctx (nil is allowed and means "no
// cancellation") with no resource limits and the default stride.  A
// context that is already dead poisons the budget immediately, so a
// query on a canceled request fails on its first step instead of a
// stride later.
func NewBudget(ctx context.Context) *Budget {
	b := &Budget{ctx: ctx, stride: DefaultStride}
	if ctx != nil {
		if ce := ctx.Err(); ce != nil {
			b.err = fmt.Errorf("%w (%w)", ErrCanceled, ce)
		}
	}
	b.recalc()
	return b
}

// WithMaxSteps bounds the total search steps (0 = unlimited).
func (b *Budget) WithMaxSteps(n int64) *Budget {
	b.maxSteps = n
	b.recalc()
	return b
}

// WithMaxRows bounds the number of result rows a query may return
// (0 = unlimited).  Unlike LIMIT, hitting it is an error: the answer
// would be silently wrong if truncated.
func (b *Budget) WithMaxRows(n int64) *Budget {
	b.maxRows = n
	return b
}

// WithMaxBytes bounds the estimated bytes of materialized intermediate
// rows (0 = unlimited).  The estimate is coarse — row widths times
// rows retained — and exists to stop runaway joins, not to account
// precisely.
func (b *Budget) WithMaxBytes(n int64) *Budget {
	b.maxBytes = n
	return b
}

// WithStride sets the context-poll stride, rounded up to a power of
// two (minimum 1).  Small strides are for tests.
func (b *Budget) WithStride(n int64) *Budget {
	s := int64(1)
	for s < n {
		s <<= 1
	}
	b.stride = s
	b.recalc()
	return b
}

// InjectFault arms the test-only fault hook: the first Step at or
// after afterSteps total steps fails with err (sticky).  It simulates
// cancellation or budget exhaustion at an exact point of the search,
// so tests can probe every unwind path; production code never calls
// it.
func (b *Budget) InjectFault(afterSteps int64, err error) {
	b.faultAt = afterSteps
	b.faultErr = err
	b.recalc()
}

// Steps reports the search steps consumed so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps
}

// Err returns the sticky failure, if any.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}

// recalc positions the next checkpoint: the next stride boundary,
// clipped so that step limits and injected faults fire exactly.
func (b *Budget) recalc() {
	n := b.steps + b.stride
	if b.maxSteps > 0 && b.maxSteps+1 < n {
		n = b.maxSteps + 1
	}
	if b.faultErr != nil && b.faultAt < n {
		n = b.faultAt
	}
	if n <= b.steps {
		n = b.steps + 1
	}
	b.checkAt = n
}

// Step charges one unit of search work.  It is the hot-path entry:
// nil receiver and non-checkpoint steps return immediately.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.steps++
	if b.steps < b.checkAt {
		return nil
	}
	return b.check()
}

// StepN charges n units at once (bulk loops that know their size).
func (b *Budget) StepN(n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.steps += int64(n)
	if b.steps < b.checkAt {
		return nil
	}
	return b.check()
}

// check runs the full (slow-path) inspection at a checkpoint.
func (b *Budget) check() error {
	if b.faultErr != nil && b.steps >= b.faultAt {
		b.err = b.faultErr
		return b.err
	}
	if b.maxSteps > 0 && b.steps > b.maxSteps {
		b.err = ErrBudgetExceeded{Kind: BudgetSteps}
		return b.err
	}
	if b.ctx != nil {
		if ce := b.ctx.Err(); ce != nil {
			b.err = fmt.Errorf("%w (%w)", ErrCanceled, ce)
			return b.err
		}
	}
	b.recalc()
	return nil
}

// AddRows charges n result rows against the row limit.
func (b *Budget) AddRows(n int) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.rows += int64(n)
	if b.maxRows > 0 && b.rows > b.maxRows {
		b.err = ErrBudgetExceeded{Kind: BudgetRows}
		return b.err
	}
	return nil
}

// chargeRow charges the estimated footprint of one materialized row of
// the given slot width against the memory limit.
func (b *Budget) chargeRow(width int) error {
	if b == nil || b.maxBytes == 0 {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.bytes += 8*int64(width) + 8 // IDs + mask word
	if b.bytes > b.maxBytes {
		b.err = ErrBudgetExceeded{Kind: BudgetMemory}
		return b.err
	}
	return nil
}
