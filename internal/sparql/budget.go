package sparql

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
)

// The paper's complexity map (Theorems 7.1–7.4) guarantees that
// adversarial NS-SPARQL queries are intractable in the worst case:
// evaluation is DP-complete already for SPARQL[AUF], BH₂ₖ-hard for
// nested NS, and P^NP_∥-complete in general.  A production engine
// therefore cannot promise to *finish* every query — it can only
// promise to *stop*.  Budget is that promise: a per-query resource
// envelope (deadline via context.Context, maximum search steps,
// maximum result rows, and a coarse memory estimate) threaded through
// every evaluation path.
//
// The hot loops of the engine call Step once per unit of work (a
// triple-index probe, a join candidate pair, a subsumption check).
// Step is designed to be nearly free: a nil *Budget short-circuits
// immediately, and a live one only bumps an atomic counter and
// compares it against a precomputed checkpoint.  The expensive part —
// polling ctx.Err() — runs once per stride (default 1024 steps), so
// the engine notices cancellation within a bounded, small amount of
// work while the per-step overhead stays in the noise.
//
// # Memory-ordering contract
//
// One Budget governs every worker of a parallel evaluation, so the
// accounting state is shared.  The contract is:
//
//   - Configuration (NewBudget, WithMaxSteps, WithMaxRows, WithMaxBytes,
//     WithStride, InjectFault) must complete before evaluation starts.
//     The limits, the context, and the fault hook are plain fields read
//     without synchronization by the hot path; publishing them to the
//     workers happens-before the workers run because the pool spawns
//     its goroutines after configuration (Go's go-statement ordering).
//     Configuring a Budget concurrently with Step is a data race.
//   - The counters (steps, rows, bytes) and the checkpoint are atomics.
//     Charging is an atomic add; readers (Steps, the checkpoint
//     comparison) see monotonic snapshots.  Counts are exact — no
//     charge is lost — but which worker crosses a limit first is
//     scheduling-dependent.
//   - The sticky error is published once with a compare-and-swap and
//     read by every Step before doing any work, so after one worker
//     trips the governor, every other worker observes the failure on
//     its next Step and unwinds.  The *first* published error wins and
//     is returned forever after, from every goroutine.
//   - The fault-injection hook fires at most once (the CAS), even when
//     several workers cross faultAt together.

// ErrCanceled is returned (wrapped) when evaluation stops because the
// query's context was canceled or its deadline expired.  The cause is
// wrapped too, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) distinguish timeout from client
// cancellation.
var ErrCanceled = errors.New("sparql: query canceled")

// BudgetKind identifies which resource of a Budget ran out.
type BudgetKind uint8

const (
	// BudgetSteps: the search-step limit (MaxSteps) was reached.
	BudgetSteps BudgetKind = iota
	// BudgetRows: the result-row limit (MaxRows) was reached.
	BudgetRows
	// BudgetMemory: the estimated memory limit (MaxBytes) was reached.
	BudgetMemory
)

func (k BudgetKind) String() string {
	switch k {
	case BudgetSteps:
		return "steps"
	case BudgetRows:
		return "rows"
	case BudgetMemory:
		return "memory"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrBudgetExceeded reports that a query exhausted one of its resource
// limits.  Match with errors.As; Kind says which limit tripped and
// Limit carries its configured value, so the error string alone is
// enough to tune the envelope ("raise -max-steps" vs "raise -max-rows").
type ErrBudgetExceeded struct {
	Kind  BudgetKind
	Limit int64 // the configured limit that tripped; 0 when unknown
}

func (e ErrBudgetExceeded) Error() string {
	msg := "sparql: query budget exceeded: max " + e.Kind.String()
	if e.Limit > 0 {
		msg += " (limit " + strconv.FormatInt(e.Limit, 10) + ")"
	}
	return msg
}

// ErrUnsupportedPattern reports a pattern node outside the algebra the
// engine implements — a malformed plan.  It is returned through the
// error paths instead of panicking, so a bad plan cannot crash a
// caller holding locks.
type ErrUnsupportedPattern struct {
	Pattern Pattern
}

func (e ErrUnsupportedPattern) Error() string {
	return fmt.Sprintf("sparql: unsupported pattern type %T", e.Pattern)
}

// DefaultStride is how many steps pass between context polls.  Powers
// of two only; the default keeps the poll far off the hot path while
// bounding the engine's reaction latency to ~a thousand index probes.
const DefaultStride = 1024

// budgetErr boxes the sticky error so it can sit behind an
// atomic.Pointer (interfaces cannot).
type budgetErr struct{ err error }

// Budget is a query's resource envelope.  The zero limits mean
// "unlimited"; a nil *Budget is valid everywhere and disables all
// accounting (every method on a nil receiver returns nil), so legacy
// entry points simply pass nil.
//
// A single Budget may be shared by all workers of one parallel
// evaluation (see the memory-ordering contract above); sharing one
// Budget across *different* queries is not supported.
type Budget struct {
	ctx      context.Context // nil: never canceled
	maxSteps int64           // 0: unlimited
	maxRows  int64           // 0: unlimited
	maxBytes int64           // 0: unlimited
	stride   int64           // power of two

	steps   atomic.Int64
	rows    atomic.Int64
	bytes   atomic.Int64
	checkAt atomic.Int64              // next steps value that triggers a full check
	failed  atomic.Pointer[budgetErr] // sticky: first failure, returned forever after

	faultAt  int64 // fault injection: fire once steps >= faultAt
	faultErr error // nil: injection disabled
}

// NewBudget returns a budget tied to ctx (nil is allowed and means "no
// cancellation") with no resource limits and the default stride.  A
// context that is already dead poisons the budget immediately, so a
// query on a canceled request fails on its first step instead of a
// stride later.
func NewBudget(ctx context.Context) *Budget {
	b := &Budget{ctx: ctx, stride: DefaultStride}
	if ctx != nil {
		if ce := ctx.Err(); ce != nil {
			b.fail(fmt.Errorf("%w (%w)", ErrCanceled, ce))
		}
	}
	b.recalc()
	return b
}

// WithMaxSteps bounds the total search steps (0 = unlimited).
func (b *Budget) WithMaxSteps(n int64) *Budget {
	b.maxSteps = n
	b.recalc()
	return b
}

// WithMaxRows bounds the number of result rows a query may return
// (0 = unlimited).  Unlike LIMIT, hitting it is an error: the answer
// would be silently wrong if truncated.
func (b *Budget) WithMaxRows(n int64) *Budget {
	b.maxRows = n
	return b
}

// WithMaxBytes bounds the estimated bytes of materialized intermediate
// rows (0 = unlimited).  The estimate is coarse — row widths times
// rows retained — and exists to stop runaway joins, not to account
// precisely.
func (b *Budget) WithMaxBytes(n int64) *Budget {
	b.maxBytes = n
	return b
}

// WithStride sets the context-poll stride, rounded up to a power of
// two (minimum 1).  Small strides are for tests.
func (b *Budget) WithStride(n int64) *Budget {
	s := int64(1)
	for s < n {
		s <<= 1
	}
	b.stride = s
	b.recalc()
	return b
}

// InjectFault arms the test-only fault hook: the first Step at or
// after afterSteps total steps fails with err (sticky).  It simulates
// cancellation or budget exhaustion at an exact point of the search,
// so tests can probe every unwind path; production code never calls
// it.  Like the other configuration methods it must be called before
// evaluation starts; the sticky-error CAS guarantees the fault fires
// at most once even when several workers cross afterSteps together.
func (b *Budget) InjectFault(afterSteps int64, err error) {
	b.faultAt = afterSteps
	b.faultErr = err
	b.recalc()
}

// Steps reports the search steps consumed so far.  Under concurrent
// evaluation this is a monotonic snapshot.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// Counters reports the resources consumed so far — search steps,
// result rows and estimated bytes.  Under concurrent evaluation each
// value is a monotonic snapshot; the profiler diffs two Counters calls
// to attribute consumption to an operator's wall-clock window.
func (b *Budget) Counters() (steps, rows, bytes int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.steps.Load(), b.rows.Load(), b.bytes.Load()
}

// Err returns the sticky failure, if any.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if f := b.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// fail publishes err as the sticky failure; the first publisher wins
// and every caller gets the winning error back.
func (b *Budget) fail(err error) error {
	b.failed.CompareAndSwap(nil, &budgetErr{err: err})
	return b.failed.Load().err
}

// recalc positions the next checkpoint: the next stride boundary,
// clipped so that step limits and injected faults fire exactly.
func (b *Budget) recalc() {
	b.recalcFrom(b.steps.Load())
}

func (b *Budget) recalcFrom(steps int64) {
	n := steps + b.stride
	if b.maxSteps > 0 && b.maxSteps+1 < n {
		n = b.maxSteps + 1
	}
	if b.faultErr != nil && b.faultAt < n {
		n = b.faultAt
	}
	if n <= steps {
		n = steps + 1
	}
	b.checkAt.Store(n)
}

// Step charges one unit of search work.  It is the hot-path entry:
// nil receiver and non-checkpoint steps return after one atomic add.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if f := b.failed.Load(); f != nil {
		return f.err
	}
	s := b.steps.Add(1)
	if s < b.checkAt.Load() {
		return nil
	}
	return b.check(s)
}

// StepN charges n units at once (bulk loops that know their size).
func (b *Budget) StepN(n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	if f := b.failed.Load(); f != nil {
		return f.err
	}
	s := b.steps.Add(int64(n))
	if s < b.checkAt.Load() {
		return nil
	}
	return b.check(s)
}

// check runs the full (slow-path) inspection at a checkpoint.  Several
// workers may enter it together; the sticky CAS keeps the outcome
// single-valued and recalc is idempotent.
func (b *Budget) check(steps int64) error {
	if b.faultErr != nil && steps >= b.faultAt {
		return b.fail(b.faultErr)
	}
	if b.maxSteps > 0 && steps > b.maxSteps {
		return b.fail(ErrBudgetExceeded{Kind: BudgetSteps, Limit: b.maxSteps})
	}
	if b.ctx != nil {
		if ce := b.ctx.Err(); ce != nil {
			return b.fail(fmt.Errorf("%w (%w)", ErrCanceled, ce))
		}
	}
	b.recalcFrom(steps)
	return nil
}

// AddRows charges n result rows against the row limit.
func (b *Budget) AddRows(n int) error {
	if b == nil {
		return nil
	}
	if f := b.failed.Load(); f != nil {
		return f.err
	}
	r := b.rows.Add(int64(n))
	if b.maxRows > 0 && r > b.maxRows {
		return b.fail(ErrBudgetExceeded{Kind: BudgetRows, Limit: b.maxRows})
	}
	return nil
}

// chargeRow charges the estimated footprint of one materialized row of
// the given slot width against the memory limit.
func (b *Budget) chargeRow(width int) error {
	if b == nil || b.maxBytes == 0 {
		return nil
	}
	if f := b.failed.Load(); f != nil {
		return f.err
	}
	n := b.bytes.Add(8*int64(width) + 8) // IDs + mask word
	if n > b.maxBytes {
		return b.fail(ErrBudgetExceeded{Kind: BudgetMemory, Limit: b.maxBytes})
	}
	return nil
}
