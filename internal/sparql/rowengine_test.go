package sparql_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// randomMapping draws a partial mapping over the variable and IRI
// pools, possibly empty.
func randomMapping(rng *rand.Rand, vars []sparql.Var, iris []rdf.IRI) sparql.Mapping {
	mu := sparql.Mapping{}
	for _, v := range vars {
		if rng.Intn(2) == 0 {
			mu[v] = iris[rng.Intn(len(iris))]
		}
	}
	return mu
}

// TestRowRoundTripQuick checks Mapping → Row → Mapping is the identity,
// including mappings with unbound slots and the empty mapping.
func TestRowRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vars := []sparql.Var{"A", "B", "C", "D", "E"}
	sc, ok := sparql.NewVarSchema(vars)
	if !ok {
		t.Fatal("schema rejected")
	}
	c := sparql.Codec{Schema: sc, Dict: rdf.NewDict()}
	for trial := 0; trial < 500; trial++ {
		mu := randomMapping(rng, vars, workload.DefaultIRIs)
		r, ok := c.Encode(mu)
		if !ok {
			t.Fatalf("Encode failed for %v", mu)
		}
		if got := c.Decode(r); !got.Equal(mu) {
			t.Fatalf("round trip: %v -> %v", mu, got)
		}
		// The mask must mirror the domain exactly.
		var want int
		for range mu {
			want++
		}
		if got := r.Mask; popcount64(got) != want {
			t.Fatalf("mask %b has %d bits, dom size %d", got, popcount64(got), want)
		}
	}
	// A variable outside the schema must be rejected, not dropped.
	if _, ok := c.Encode(sparql.Mapping{"Z": "a"}); ok {
		t.Fatal("Encode accepted out-of-schema variable")
	}
}

func popcount64(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// TestRowMaximalAgreesWithStringQuick checks that the mask-bucketed row
// Maximal agrees with both string NS algorithms (naive pairwise and
// domain-bucketed) on random mapping sets with heterogeneous domains.
func TestRowMaximalAgreesWithStringQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []sparql.Var{"A", "B", "C", "D"}
	sc, _ := sparql.NewVarSchema(vars)
	for trial := 0; trial < 300; trial++ {
		ms := sparql.NewMappingSet()
		for i, n := 0, rng.Intn(40); i < n; i++ {
			ms.Add(randomMapping(rng, vars, workload.DefaultIRIs))
		}
		c := sparql.Codec{Schema: sc, Dict: rdf.NewDict()}
		rs, ok := sparql.EncodeMappingSet(ms, c)
		if !ok {
			t.Fatal("encode failed")
		}
		want := ms.MaximalNaive()
		if got := rs.Maximal().MappingSet(c.Dict); !got.Equal(want) {
			t.Fatalf("row Maximal != string MaximalNaive\nin:  %v\ngot: %v\nwant:%v", ms, got, want)
		}
		if got := rs.MaximalNaive().MappingSet(c.Dict); !got.Equal(want) {
			t.Fatalf("row MaximalNaive != string MaximalNaive on %v", ms)
		}
		if got := ms.MaximalBucketed(); !got.Equal(want) {
			t.Fatalf("string MaximalBucketed != MaximalNaive on %v", ms)
		}
	}
}

// TestRowAlgebraAgreesWithStringQuick checks each RowSet operator
// against its MappingSet counterpart on random operand sets.
func TestRowAlgebraAgreesWithStringQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []sparql.Var{"A", "B", "C", "D"}
	sc, _ := sparql.NewVarSchema(vars)
	randSet := func(d *rdf.Dict) (*sparql.MappingSet, *sparql.RowSet) {
		ms := sparql.NewMappingSet()
		for i, n := 0, rng.Intn(25); i < n; i++ {
			ms.Add(randomMapping(rng, vars, workload.DefaultIRIs))
		}
		rs, ok := sparql.EncodeMappingSet(ms, sparql.Codec{Schema: sc, Dict: d})
		if !ok {
			t.Fatal("encode failed")
		}
		return ms, rs
	}
	for trial := 0; trial < 200; trial++ {
		d := rdf.NewDict()
		m1, r1 := randSet(d)
		m2, r2 := randSet(d)
		check := func(op string, got *sparql.RowSet, want *sparql.MappingSet) {
			t.Helper()
			if g := got.MappingSet(d); !g.Equal(want) {
				t.Fatalf("%s diverges\nΩ1: %v\nΩ2: %v\ngot: %v\nwant:%v", op, m1, m2, g, want)
			}
		}
		check("Join", r1.Join(r2), m1.Join(m2))
		check("Union", r1.Union(r2), m1.Union(m2))
		check("Diff", r1.Diff(r2), m1.Diff(m2))
		check("LeftJoin", r1.LeftJoin(r2), m1.LeftJoin(m2))
		proj := []sparql.Var{"A", "C"}
		check("Project", r1.Project(sc.SlotMask(proj)), m1.Project(proj))
		cond := workload.RandomCondition(rng, 2, &workload.PatternOpts{Vars: vars})
		check("Filter", r1.Filter(sparql.CompileCond(cond, sc, d)),
			m1.Filter(cond))
	}
}

// fragmentCases enumerates the operator fragments exercised by the
// differential test: AF and AUFS (weakly monotone algebra), SP and USP
// (NS-normal forms), plus the full language.
func fragmentCases() []struct {
	name string
	ops  []sparql.Op
	ns   string // "", "wrap" (NS at the root → SP-style), "free" (NS anywhere)
} {
	return []struct {
		name string
		ops  []sparql.Op
		ns   string
	}{
		{"AF", []sparql.Op{sparql.OpAnd, sparql.OpFilter}, ""},
		{"AUFS", []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect}, ""},
		{"SP", []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter, sparql.OpSelect}, "wrap"},
		{"USP", []sparql.Op{sparql.OpAnd, sparql.OpFilter, sparql.OpSelect}, "union"},
		{"full", []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpOpt, sparql.OpFilter, sparql.OpSelect, sparql.OpNS}, "free"},
	}
}

// TestEvalRowsAgreesWithEvalQuick is the differential property test of
// the tentpole: on random patterns × random graphs, the row engine and
// the string reference evaluator produce the same answer set, per
// fragment.
func TestEvalRowsAgreesWithEvalQuick(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			for trial := 0; trial < 150; trial++ {
				g := workload.RandomGraph(rng, 2+rng.Intn(30), nil)
				p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
				switch fc.ns {
				case "wrap": // SP: a single subsumption-maximal block
					p = sparql.NS{P: p}
				case "union": // USP: union of NS blocks
					q := workload.RandomPattern(rng, workload.PatternOpts{Depth: 2, Ops: fc.ops})
					p = sparql.Union{L: sparql.NS{P: p}, R: sparql.NS{P: q}}
				}
				want := sparql.Eval(g, p)
				got := sparql.EvalRowEngine(g, p)
				if !got.Equal(want) {
					t.Fatalf("trial %d: row engine diverges on\n%s\ngot: %v\nwant:%v",
						trial, p, got, want)
				}
			}
		})
	}
}

// TestSearcherAgreesWithEvalQuick checks the streaming backtracking
// searcher against the reference evaluator: collecting every emitted
// row (deduplicated) must equal Eval up to multiplicity.
func TestSearcherAgreesWithEvalQuick(t *testing.T) {
	for _, fc := range fragmentCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4321))
			for trial := 0; trial < 100; trial++ {
				g := workload.RandomGraph(rng, 2+rng.Intn(25), nil)
				p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: fc.ops})
				if fc.ns == "wrap" {
					p = sparql.NS{P: p}
				}
				sc, ok := sparql.SchemaFor(p)
				if !ok {
					t.Fatal("schema rejected small pattern")
				}
				s := sparql.NewSearcher(g, sc)
				got := sparql.NewRowSet(sc)
				s.Iterate(p, 0, func(m uint64) bool {
					got.Add(s.IDs(), m)
					return true
				})
				want := sparql.Eval(g, p)
				if gs := got.MappingSet(g.Dict()); !gs.Equal(want) {
					t.Fatalf("trial %d: searcher diverges on\n%s\ngot: %v\nwant:%v",
						trial, p, gs, want)
				}
			}
		})
	}
}

// TestSearcherSeededCompatible checks that seeding the searcher with an
// environment row streams exactly the Eval answers compatible with it.
func TestSearcherSeededCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	ops := []sparql.Op{sparql.OpAnd, sparql.OpUnion, sparql.OpFilter}
	for trial := 0; trial < 150; trial++ {
		g := workload.RandomGraph(rng, 2+rng.Intn(25), nil)
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3, Ops: ops})
		sc, _ := sparql.SchemaFor(p)
		env := sparql.Mapping{}
		for _, v := range sc.Vars() {
			if rng.Intn(3) == 0 {
				env[v] = workload.DefaultIRIs[rng.Intn(len(workload.DefaultIRIs))]
			}
		}
		c := sparql.Codec{Schema: sc, Dict: g.Dict()}
		row, ok := c.EncodeLookup(env)
		if !ok {
			continue // an env IRI is absent from the graph dictionary
		}
		s := sparql.NewSearcher(g, sc)
		s.Seed(row)
		got := sparql.NewRowSet(sc)
		s.Iterate(p, row.Mask, func(m uint64) bool {
			got.Add(s.IDs(), m)
			return true
		})
		want := sparql.NewMappingSet()
		for _, mu := range sparql.Eval(g, p).Mappings() {
			if mu.CompatibleWith(env) {
				want.Add(mu)
			}
		}
		if gs := got.MappingSet(g.Dict()); !gs.Equal(want) {
			t.Fatalf("trial %d: seeded searcher diverges on\n%s\nenv: %v\ngot: %v\nwant:%v",
				trial, p, env, gs, want)
		}
	}
}

// TestRepeatedVarTriple is the regression test for triple patterns with
// repeated variables, e.g. (?X, p, ?X): both engines must bind the
// variable once and require the two positions to agree.
func TestRepeatedVarTriple(t *testing.T) {
	g := rdf.NewGraph()
	g.Add("a", "p", "a")
	g.Add("a", "p", "b")
	g.Add("b", "p", "b")
	g.Add("c", "q", "c")

	cases := []struct {
		name string
		p    sparql.Pattern
		want *sparql.MappingSet
	}{
		{
			"subject-object (?X p ?X)",
			sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("X")),
			sparql.NewMappingSet(
				sparql.Mapping{"X": "a"},
				sparql.Mapping{"X": "b"},
			),
		},
		{
			"all three (?X ?X ?X)",
			sparql.TP(sparql.V("X"), sparql.V("X"), sparql.V("X")),
			sparql.NewMappingSet(),
		},
		{
			"subject-predicate with constant object (?X ?X b)",
			sparql.TP(sparql.V("X"), sparql.V("X"), sparql.I("b")),
			sparql.NewMappingSet(),
		},
		{
			"repeated under join",
			sparql.And{
				L: sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("X")),
				R: sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("Y")),
			},
			sparql.NewMappingSet(
				sparql.Mapping{"X": "a", "Y": "a"},
				sparql.Mapping{"X": "a", "Y": "b"},
				sparql.Mapping{"X": "b", "Y": "b"},
			),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sparql.Eval(g, tc.p); !got.Equal(tc.want) {
				t.Errorf("string engine: got %v want %v", got, tc.want)
			}
			if got := sparql.EvalRowEngine(g, tc.p); !got.Equal(tc.want) {
				t.Errorf("row engine: got %v want %v", got, tc.want)
			}
			sc, _ := sparql.SchemaFor(tc.p)
			s := sparql.NewSearcher(g, sc)
			rs := sparql.NewRowSet(sc)
			s.Iterate(tc.p, 0, func(m uint64) bool {
				rs.Add(s.IDs(), m)
				return true
			})
			if got := rs.MappingSet(g.Dict()); !got.Equal(tc.want) {
				t.Errorf("searcher: got %v want %v", got, tc.want)
			}
		})
	}
}

// TestSchemaWidthLimit checks the >MaxSchemaVars fallback path.
func TestSchemaWidthLimit(t *testing.T) {
	wide := make([]sparql.Var, sparql.MaxSchemaVars+1)
	for i := range wide {
		wide[i] = sparql.Var(fmt.Sprintf("V%02d", i))
	}
	if _, ok := sparql.NewVarSchema(wide); ok {
		t.Fatalf("schema accepted %d variables", len(wide))
	}
	// Build a chain pattern with 65 variables; EvalRowEngine must fall
	// back to Eval and still return the right answers.
	g := rdf.NewGraph()
	g.Add("a", "p", "a")
	var p sparql.Pattern = sparql.TP(sparql.V(wide[0]), sparql.I("p"), sparql.V(wide[0]))
	for _, v := range wide[1:] {
		p = sparql.And{L: p, R: sparql.TP(sparql.V(v), sparql.I("p"), sparql.V(v))}
	}
	if _, ok := sparql.EvalRows(g, p); ok {
		t.Fatal("EvalRows accepted a pattern wider than MaxSchemaVars")
	}
	want := sparql.Eval(g, p)
	if got := sparql.EvalRowEngine(g, p); !got.Equal(want) {
		t.Fatalf("wide fallback diverges: got %v want %v", got, want)
	}
}
