package sparql

import (
	"repro/internal/rdf"
)

// Searcher is a streaming, backtracking evaluator over the ID-native
// row representation.  It owns a single row buffer: triple matches bind
// slots in place and presence masks are passed by value, so extending a
// partial solution costs zero allocations and "undoing" a binding on
// backtrack is simply dropping its mask bit — no Mapping.Clone() per
// search node.
//
// Search streams the solutions of a pattern that extend a seed
// environment; exec.Ask/Limit and the views delta probes are built on
// it.  For the monotone operators the search is the classic
// certificate hunt (Section 7); OPT and NS need complete sub-answer
// sets and fall back to the constrained reference evaluator at their
// boundary.
//
// A Searcher carries an optional *Budget (see budget.go): every triple
// index probe charges one step, so cancellation, deadlines, step
// limits and injected faults all surface as typed errors from Search,
// unwinding the recursion cleanly.
type Searcher struct {
	g       rdf.Store
	sc      *VarSchema
	ids     []rdf.ID
	budget  *Budget
	triples map[TriplePattern]tripleSlots
	dead    map[TriplePattern]bool // constants absent from the dictionary
	conds   map[Condition]RowCond
}

// NewSearcher returns a searcher for patterns over the schema with no
// resource budget.
func NewSearcher(g rdf.Store, sc *VarSchema) *Searcher {
	return NewSearcherBudget(g, sc, nil)
}

// NewSearcherBudget returns a searcher governed by b (nil disables all
// accounting).
func NewSearcherBudget(g rdf.Store, sc *VarSchema, b *Budget) *Searcher {
	return &Searcher{
		g:       g,
		sc:      sc,
		ids:     make([]rdf.ID, sc.Len()),
		budget:  b,
		triples: make(map[TriplePattern]tripleSlots),
		dead:    make(map[TriplePattern]bool),
		conds:   make(map[Condition]RowCond),
	}
}

// Schema returns the searcher's variable schema.
func (s *Searcher) Schema() *VarSchema { return s.sc }

// Budget returns the searcher's budget (nil when ungoverned).
func (s *Searcher) Budget() *Budget { return s.budget }

// IDs exposes the shared row buffer.  During an emit callback, the
// slots of the emitted solution mask hold the solution's IDs; callers
// must copy what they keep.
func (s *Searcher) IDs() []rdf.ID { return s.ids }

// Seed copies the bound slots of r into the row buffer; pass r.Mask as
// the envMask of the subsequent Search.
func (s *Searcher) Seed(r Row) {
	for m := r.Mask; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		s.ids[i] = r.IDs[i]
	}
}

// Decode converts the current buffer restricted to mask into a string
// mapping.
func (s *Searcher) Decode(mask uint64) Mapping {
	return Codec{Schema: s.sc, Dict: s.g.Dict()}.DecodeMasked(s.ids, mask)
}

func (s *Searcher) resolved(t TriplePattern) (tripleSlots, bool) {
	if s.dead[t] {
		return tripleSlots{}, false
	}
	if ts, ok := s.triples[t]; ok {
		return ts, true
	}
	ts, ok := resolveTriple(t, s.sc, s.g.Dict())
	if !ok {
		s.dead[t] = true
		return tripleSlots{}, false
	}
	s.triples[t] = ts
	return ts, true
}

func (s *Searcher) compiled(c Condition) RowCond {
	if rc, ok := s.conds[c]; ok {
		return rc
	}
	rc := CompileCond(c, s.sc, s.g.Dict())
	s.conds[c] = rc
	return rc
}

// Search streams the solutions of p that are compatible extensions of
// the environment (the buffer slots in envMask), calling emit with each
// solution's presence mask; the solution's IDs sit in the buffer.
// Duplicates may be emitted (e.g. via UNION) — callers deduplicate.
// emit returns false to stop the search early (not an error).
//
// Search returns nil on a complete or emit-stopped search, a typed
// ErrUnsupportedPattern for a malformed plan, and the budget's error
// (ErrCanceled or ErrBudgetExceeded) when the governor halts the
// query.  In every case the recursion unwinds cleanly: the searcher
// holds no locks and keeps no partial state beyond its scratch buffer.
func (s *Searcher) Search(p Pattern, envMask uint64, emit func(solMask uint64) bool) error {
	_, err := s.search(p, envMask, emit)
	return err
}

// Iterate is the legacy entry point: Search without error reporting.
// It reports whether the search ran to completion; a governor stop or
// an unsupported pattern reads as "stopped early" (false) instead of
// panicking.  New callers should use Search.
func (s *Searcher) Iterate(p Pattern, envMask uint64, emit func(solMask uint64) bool) bool {
	cont, err := s.search(p, envMask, emit)
	return cont && err == nil
}

// search is the recursive core: cont = false when emit stopped the
// search, err != nil when the governor or a malformed plan did.
func (s *Searcher) search(p Pattern, envMask uint64, emit func(uint64) bool) (bool, error) {
	if err := s.budget.Step(); err != nil {
		return false, err
	}
	switch q := p.(type) {
	case TriplePattern:
		return s.streamTriple(q, envMask, emit)
	case And:
		var innerErr error
		cont, err := s.search(q.L, envMask, func(ml uint64) bool {
			c, e := s.search(q.R, envMask|ml, func(mr uint64) bool {
				return emit(ml | mr)
			})
			if e != nil {
				innerErr = e
				return false
			}
			return c
		})
		if err == nil {
			err = innerErr
		}
		if err != nil {
			return false, err
		}
		return cont, nil
	case Union:
		cont, err := s.search(q.L, envMask, emit)
		if err != nil || !cont {
			return cont, err
		}
		return s.search(q.R, envMask, emit)
	case Filter:
		cond := s.compiled(q.Cond)
		return s.search(q.P, envMask, func(m uint64) bool {
			if !cond(s.ids, m) {
				return true
			}
			return emit(m)
		})
	case Select:
		return s.searchSelect(q, envMask, emit)
	case Opt, NS:
		// Non-monotone: the survivors depend on the whole sub-answer
		// set.  Evaluate compatibly with the environment (under the same
		// budget) and stream the results back through the row buffer.
		env := s.Decode(envMask)
		ms, err := EvalCompatibleBudget(s.g, p, env, s.budget)
		if err != nil {
			return false, err
		}
		d := s.g.Dict()
		for _, mu := range ms.Mappings() {
			var m uint64
			ok := true
			for v, iri := range mu {
				i, found := s.sc.Slot(v)
				if !found {
					ok = false
					break
				}
				id, found := d.Lookup(iri)
				if !found {
					ok = false
					break
				}
				s.ids[i] = id
				m |= 1 << uint(i)
			}
			if !ok {
				continue
			}
			if !emit(m) {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, ErrUnsupportedPattern{Pattern: p}
	}
}

// searchSelect projects and deduplicates locally.  The inner pattern
// runs on its own buffer: hidden variables (outside the SELECT list)
// must not be constrained by — nor clobber — the outer environment.
// The inner searcher shares the outer budget, so the governor sees one
// continuous step count.
func (s *Searcher) searchSelect(q Select, envMask uint64, emit func(uint64) bool) (bool, error) {
	selMask := s.sc.SlotMask(q.Vars)
	inner := NewSearcherBudget(s.g, s.sc, s.budget)
	innerEnv := envMask & selMask
	inner.Seed(Row{Mask: innerEnv, IDs: s.ids})
	seen := NewRowSet(s.sc)
	return inner.search(q.P, innerEnv, func(m uint64) bool {
		proj := m & selMask
		if !seen.Add(inner.ids, proj) {
			return true
		}
		for mm := proj; mm != 0; mm &= mm - 1 {
			i := trailingZeros(mm)
			s.ids[i] = inner.ids[i]
		}
		return emit(proj)
	})
}

// streamTriple emits the matches of a triple pattern compatible with
// the environment directly from the ID-level graph indexes.  Each
// index probe charges one budget step — this is the engine's unit of
// work.
func (s *Searcher) streamTriple(t TriplePattern, envMask uint64, emit func(uint64) bool) (bool, error) {
	ts, ok := s.resolved(t)
	if !ok {
		return true, nil // a constant is unknown: no matches
	}
	// Positions that are constants or env-bound variables become index
	// constraints.
	var ptr [3]*rdf.ID
	var vals [3]rdf.ID
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			vals[i] = ts.constID[i]
			ptr[i] = &vals[i]
		} else if envMask&(1<<uint(ts.slot[i])) != 0 {
			vals[i] = s.ids[ts.slot[i]]
			ptr[i] = &vals[i]
		}
	}
	cont := true
	var err error
	s.g.MatchIDs(ptr[0], ptr[1], ptr[2], func(tr rdf.IDTriple) bool {
		if err = s.budget.Step(); err != nil {
			cont = false
			return false
		}
		if _, ok := ts.bindTriple(s.ids, tr, envMask); !ok {
			return true // repeated variable, conflicting values
		}
		if !emit(ts.mask) {
			cont = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return cont, nil
}
