package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// Searcher is a streaming, backtracking evaluator over the ID-native
// row representation.  It owns a single row buffer: triple matches bind
// slots in place and presence masks are passed by value, so extending a
// partial solution costs zero allocations and "undoing" a binding on
// backtrack is simply dropping its mask bit — no Mapping.Clone() per
// search node.
//
// Iterate streams the solutions of a pattern that extend a seed
// environment; exec.Ask/Limit and the views delta probes are built on
// it.  For the monotone operators the search is the classic
// certificate hunt (Section 7); OPT and NS need complete sub-answer
// sets and fall back to the constrained reference evaluator at their
// boundary.
type Searcher struct {
	g       *rdf.Graph
	sc      *VarSchema
	ids     []rdf.ID
	triples map[TriplePattern]tripleSlots
	dead    map[TriplePattern]bool // constants absent from the dictionary
	conds   map[Condition]RowCond
}

// NewSearcher returns a searcher for patterns over the schema.
func NewSearcher(g *rdf.Graph, sc *VarSchema) *Searcher {
	return &Searcher{
		g:       g,
		sc:      sc,
		ids:     make([]rdf.ID, sc.Len()),
		triples: make(map[TriplePattern]tripleSlots),
		dead:    make(map[TriplePattern]bool),
		conds:   make(map[Condition]RowCond),
	}
}

// Schema returns the searcher's variable schema.
func (s *Searcher) Schema() *VarSchema { return s.sc }

// IDs exposes the shared row buffer.  During an emit callback, the
// slots of the emitted solution mask hold the solution's IDs; callers
// must copy what they keep.
func (s *Searcher) IDs() []rdf.ID { return s.ids }

// Seed copies the bound slots of r into the row buffer; pass r.Mask as
// the envMask of the subsequent Iterate.
func (s *Searcher) Seed(r Row) {
	for m := r.Mask; m != 0; m &= m - 1 {
		i := trailingZeros(m)
		s.ids[i] = r.IDs[i]
	}
}

// Decode converts the current buffer restricted to mask into a string
// mapping.
func (s *Searcher) Decode(mask uint64) Mapping {
	return Codec{Schema: s.sc, Dict: s.g.Dict()}.DecodeMasked(s.ids, mask)
}

func (s *Searcher) resolved(t TriplePattern) (tripleSlots, bool) {
	if s.dead[t] {
		return tripleSlots{}, false
	}
	if ts, ok := s.triples[t]; ok {
		return ts, true
	}
	ts, ok := resolveTriple(t, s.sc, s.g.Dict())
	if !ok {
		s.dead[t] = true
		return tripleSlots{}, false
	}
	s.triples[t] = ts
	return ts, true
}

func (s *Searcher) compiled(c Condition) RowCond {
	if rc, ok := s.conds[c]; ok {
		return rc
	}
	rc := CompileCond(c, s.sc, s.g.Dict())
	s.conds[c] = rc
	return rc
}

// Iterate streams the solutions of p that are compatible extensions of
// the environment (the buffer slots in envMask), calling emit with each
// solution's presence mask; the solution's IDs sit in the buffer.
// Duplicates may be emitted (e.g. via UNION) — callers deduplicate.
// emit returns false to stop; Iterate reports whether the search should
// continue.
func (s *Searcher) Iterate(p Pattern, envMask uint64, emit func(solMask uint64) bool) bool {
	switch q := p.(type) {
	case TriplePattern:
		return s.streamTriple(q, envMask, emit)
	case And:
		return s.Iterate(q.L, envMask, func(ml uint64) bool {
			return s.Iterate(q.R, envMask|ml, func(mr uint64) bool {
				return emit(ml | mr)
			})
		})
	case Union:
		if !s.Iterate(q.L, envMask, emit) {
			return false
		}
		return s.Iterate(q.R, envMask, emit)
	case Filter:
		cond := s.compiled(q.Cond)
		return s.Iterate(q.P, envMask, func(m uint64) bool {
			if !cond(s.ids, m) {
				return true
			}
			return emit(m)
		})
	case Select:
		return s.iterateSelect(q, envMask, emit)
	case Opt, NS:
		// Non-monotone: the survivors depend on the whole sub-answer
		// set.  Evaluate compatibly with the environment and stream the
		// results back through the row buffer.
		env := s.Decode(envMask)
		d := s.g.Dict()
		for _, mu := range EvalCompatible(s.g, p, env).Mappings() {
			var m uint64
			ok := true
			for v, iri := range mu {
				i, found := s.sc.Slot(v)
				if !found {
					ok = false
					break
				}
				id, found := d.Lookup(iri)
				if !found {
					ok = false
					break
				}
				s.ids[i] = id
				m |= 1 << uint(i)
			}
			if !ok {
				continue
			}
			if !emit(m) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// iterateSelect projects and deduplicates locally.  The inner pattern
// runs on its own buffer: hidden variables (outside the SELECT list)
// must not be constrained by — nor clobber — the outer environment.
func (s *Searcher) iterateSelect(q Select, envMask uint64, emit func(uint64) bool) bool {
	selMask := s.sc.SlotMask(q.Vars)
	inner := NewSearcher(s.g, s.sc)
	innerEnv := envMask & selMask
	inner.Seed(Row{Mask: innerEnv, IDs: s.ids})
	seen := NewRowSet(s.sc)
	return inner.Iterate(q.P, innerEnv, func(m uint64) bool {
		proj := m & selMask
		if !seen.Add(inner.ids, proj) {
			return true
		}
		for mm := proj; mm != 0; mm &= mm - 1 {
			i := trailingZeros(mm)
			s.ids[i] = inner.ids[i]
		}
		return emit(proj)
	})
}

// streamTriple emits the matches of a triple pattern compatible with
// the environment directly from the ID-level graph indexes.
func (s *Searcher) streamTriple(t TriplePattern, envMask uint64, emit func(uint64) bool) bool {
	ts, ok := s.resolved(t)
	if !ok {
		return true // a constant is unknown: no matches
	}
	// Positions that are constants or env-bound variables become index
	// constraints.
	var ptr [3]*rdf.ID
	var vals [3]rdf.ID
	for i := 0; i < 3; i++ {
		if ts.isConst[i] {
			vals[i] = ts.constID[i]
			ptr[i] = &vals[i]
		} else if envMask&(1<<uint(ts.slot[i])) != 0 {
			vals[i] = s.ids[ts.slot[i]]
			ptr[i] = &vals[i]
		}
	}
	cont := true
	s.g.MatchIDs(ptr[0], ptr[1], ptr[2], func(tr rdf.IDTriple) bool {
		if _, ok := ts.bindTriple(s.ids, tr, envMask); !ok {
			return true // repeated variable, conflicting values
		}
		if !emit(ts.mask) {
			cont = false
			return false
		}
		return true
	})
	return cont
}
