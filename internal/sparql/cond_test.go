package sparql

import (
	"reflect"
	"testing"
)

func TestConditionEval(t *testing.T) {
	mu := M("X", "a", "Y", "a", "Z", "b")
	cases := []struct {
		cond Condition
		want bool
	}{
		{Bound{X: "X"}, true},
		{Bound{X: "W"}, false},
		{EqConst{X: "X", C: "a"}, true},
		{EqConst{X: "X", C: "b"}, false},
		{EqConst{X: "W", C: "a"}, false}, // unbound var: not satisfied
		{EqVars{X: "X", Y: "Y"}, true},
		{EqVars{X: "X", Y: "Z"}, false},
		{EqVars{X: "X", Y: "W"}, false},
		{EqVars{X: "W", Y: "X"}, false},
		{Not{R: Bound{X: "W"}}, true},
		{AndCond{L: Bound{X: "X"}, R: Bound{X: "Y"}}, true},
		{AndCond{L: Bound{X: "X"}, R: Bound{X: "W"}}, false},
		{OrCond{L: Bound{X: "W"}, R: Bound{X: "X"}}, true},
		{OrCond{L: Bound{X: "W"}, R: Bound{X: "V"}}, false},
		{TrueCond{}, true},
		{FalseCond{}, false},
	}
	for _, c := range cases {
		if got := c.cond.Eval(mu); got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.cond, mu, got, c.want)
		}
	}
}

func TestConditionVars(t *testing.T) {
	c := AndCond{
		L: OrCond{L: Bound{X: "A"}, R: EqConst{X: "B", C: "c"}},
		R: Not{R: EqVars{X: "C", Y: "D"}},
	}
	got := c.Vars(nil)
	want := []Var{"A", "B", "C", "D"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestCondEqual(t *testing.T) {
	a := AndCond{L: Bound{X: "X"}, R: Not{R: EqConst{X: "Y", C: "c"}}}
	b := AndCond{L: Bound{X: "X"}, R: Not{R: EqConst{X: "Y", C: "c"}}}
	if !CondEqual(a, b) {
		t.Fatal("identical conditions not equal")
	}
	if CondEqual(a, Bound{X: "X"}) {
		t.Fatal("different conditions equal")
	}
	if CondEqual(OrCond{L: Bound{X: "X"}, R: Bound{X: "Y"}}, OrCond{L: Bound{X: "Y"}, R: Bound{X: "X"}}) {
		t.Fatal("CondEqual is structural; operand order matters")
	}
	if !CondEqual(TrueCond{}, TrueCond{}) || CondEqual(TrueCond{}, FalseCond{}) {
		t.Fatal("constant condition equality wrong")
	}
}

func TestConjoinDisjoin(t *testing.T) {
	if _, ok := ConjoinConds().(TrueCond); !ok {
		t.Fatal("empty conjunction should be true")
	}
	if _, ok := DisjoinConds().(FalseCond); !ok {
		t.Fatal("empty disjunction should be false")
	}
	c := ConjoinConds(Bound{X: "X"}, Bound{X: "Y"}, Bound{X: "Z"})
	mu := M("X", "a", "Y", "b", "Z", "c")
	if !c.Eval(mu) || c.Eval(M("X", "a")) {
		t.Fatalf("conjunction eval wrong: %s", c)
	}
	d := DisjoinConds(Bound{X: "X"}, Bound{X: "Y"})
	if !d.Eval(M("Y", "b")) || d.Eval(M("W", "w")) {
		t.Fatalf("disjunction eval wrong: %s", d)
	}
	if single := ConjoinConds(Bound{X: "X"}); !CondEqual(single, Bound{X: "X"}) {
		t.Fatal("singleton conjunction should be the condition itself")
	}
}

func TestConditionStrings(t *testing.T) {
	c := AndCond{L: OrCond{L: Bound{X: "X"}, R: EqVars{X: "X", Y: "Y"}}, R: Not{R: EqConst{X: "Z", C: "iri"}}}
	s := c.String()
	for _, want := range []string{"bound(?X)", "?X = ?Y", "!(?Z = iri)", "&&", "||"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
