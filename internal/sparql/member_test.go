package sparql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

// randomPatternLocal builds random full NS-SPARQL patterns without
// importing the workload package (which would create an import cycle in
// tests that live inside sparql itself).
func randomPatternLocal(rng *rand.Rand, depth int) Pattern {
	if depth == 0 || rng.Intn(3) == 0 {
		pos := func() Value {
			if rng.Intn(2) == 0 {
				return V(Var(rune('A' + rng.Intn(4))))
			}
			return I(rdf.IRI(rune('a' + rng.Intn(4))))
		}
		return TP(pos(), pos(), pos())
	}
	switch rng.Intn(6) {
	case 0:
		return And{L: randomPatternLocal(rng, depth-1), R: randomPatternLocal(rng, depth-1)}
	case 1:
		return Union{L: randomPatternLocal(rng, depth-1), R: randomPatternLocal(rng, depth-1)}
	case 2:
		return Opt{L: randomPatternLocal(rng, depth-1), R: randomPatternLocal(rng, depth-1)}
	case 3:
		return Filter{P: randomPatternLocal(rng, depth-1), Cond: randomCondLocal(rng, 2)}
	case 4:
		return NewSelect([]Var{Var(rune('A' + rng.Intn(4)))}, randomPatternLocal(rng, depth-1))
	default:
		return NS{P: randomPatternLocal(rng, depth-1)}
	}
}

func randomGraphLocal(rng *rand.Rand, n int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		g.Add(rdf.IRI(rune('a'+rng.Intn(4))), rdf.IRI(rune('a'+rng.Intn(4))), rdf.IRI(rune('a'+rng.Intn(4))))
	}
	return g
}

// TestEvalCompatibleMatchesReferenceQuick: the constrained evaluator
// returns exactly the c-compatible subset of the reference answers.
func TestEvalCompatibleMatchesReferenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPatternLocal(rng, 3)
		g := randomGraphLocal(rng, rng.Intn(20))
		c := randomMapping(rng, 4, 4)
		want := NewMappingSet()
		for _, mu := range Eval(g, p).Mappings() {
			if mu.CompatibleWith(c) {
				want.Add(mu)
			}
		}
		got := EvalCompatible(g, p, c)
		if !got.Equal(want) {
			t.Logf("pattern %s\nconstraint %s\ngraph\n%s\nwant %v\ngot  %v", p, c, g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMemberMatchesEvalQuick: Member agrees with the reference on both
// actual answers and random non-answers.
func TestMemberMatchesEvalQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPatternLocal(rng, 3)
		g := randomGraphLocal(rng, rng.Intn(20))
		ref := Eval(g, p)
		// Every reference answer is a member.
		for _, mu := range ref.Mappings() {
			if !Member(g, p, mu) {
				t.Logf("answer %s rejected for %s", mu, p)
				return false
			}
		}
		// Random probes agree with containment.
		for i := 0; i < 10; i++ {
			mu := randomMapping(rng, 4, 4)
			if Member(g, p, mu) != ref.Contains(mu) {
				t.Logf("probe %s disagrees for %s", mu, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalCompatibleEmptyConstraintIsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := randomPatternLocal(rng, 3)
		g := randomGraphLocal(rng, rng.Intn(20))
		if !EvalCompatible(g, p, Mapping{}).Equal(Eval(g, p)) {
			t.Fatalf("EvalCompatible(∅) ≠ Eval for %s", p)
		}
	}
}

func TestMemberSelective(t *testing.T) {
	// Membership with a fully bound candidate prunes to point lookups.
	g := rdf.FromTriples(
		rdf.T("juan", "born", "chile"), rdf.T("juan", "email", "j@x"),
		rdf.T("ana", "born", "chile"),
	)
	p := Opt{
		L: TP(V("X"), I("born"), I("chile")),
		R: TP(V("X"), I("email"), V("Y")),
	}
	if !Member(g, p, M("X", "juan", "Y", "j@x")) {
		t.Fatal("member answer rejected")
	}
	if Member(g, p, M("X", "juan")) {
		t.Fatal("OPT-extended mapping should not be a member bare")
	}
	if !Member(g, p, M("X", "ana")) {
		t.Fatal("unextended answer rejected")
	}
	if Member(g, p, M("X", "pedro")) {
		t.Fatal("non-answer accepted")
	}
}
