// Staged adaptive parallel execution (morsel-style fan-out with
// mid-query re-planning).
//
// The static parallel engine (sparql.EvalRowsParOpts) commits the
// whole DP-ordered AND chain to a plan-time tree: it fans operands and
// partitioned joins out across the worker pool, but once the tree is
// built no observation can change it — exactly the queries big enough
// to parallelize are the ones stuck with estimate-only plans when
// cardinalities drift.  The staged executor instead drives the chain
// through the shared adaptive driver (runChain in adaptive.go) with
// the parallel pool's operators plugged in:
//
//   - each join step is one *stage*: the accumulated prefix and the
//     next operand fan out across the pool in morsels (partitioned
//     hash join, or the parallel bind join when the observed prefix
//     is small enough that per-row index probes beat scanning the
//     operand's full extension — sparql.BindJoinScanPar, gated by the
//     same bindJoinCost(obs) < hashJoinCost(obs, est) comparison the
//     serial adaptive path uses);
//   - between stages the driver observes the materialized prefix
//     cardinality at a drift checkpoint (the [est/factor, est·factor]
//     confidence band) and re-plans the remaining operands against
//     observed counts before the next fan-out;
//   - an empty prefix short-circuits the whole tail: no dead morsels
//     are dispatched for operands that can no longer contribute.
//
// Stages are visible as `stages=N` and bind probes as `bind_probes=N`
// on the profile's staged "and" node, and each stage records a trace
// span (position, strategy, rows).  Options.NoStaged (nsserve/nscoord
// -no-staged) forces the static tree for ablation; -no-replan disarms
// the adaptive driver entirely, which also routes parallel queries to
// the static tree (the E30 "static-parallel" baseline).
package plan

import (
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// evalStagedChain runs the prepared AND chain morsel-style on the
// parallel engine.  ok = false means the chain's schema exceeds the
// row engine's width and nothing was evaluated (the caller falls back
// to the string algebra).
func evalStagedChain(g rdf.Store, pr Prepared, b *sparql.Budget, o Options, prof *obs.Node, span *obs.Span) (*sparql.RowSet, bool, error) {
	x, ok := sparql.NewStagedExec(g, pr.pattern, b, sparql.ParOptions{
		Workers:      o.workers(),
		MinPartition: o.MinPartition,
		Hints:        pr.hints,
	})
	if !ok {
		return nil, false, nil
	}
	return runInstrumentedChain(pr, stagedChainOps(x), "staged", b, prof, span)
}

// stagedChainOps plugs the parallel pool's morsel operators into the
// shared chain driver.
func stagedChainOps(x *sparql.StagedExec) chainOps {
	return chainOps{
		evalOperand:   x.EvalOperand,
		tryMergeFirst: x.TryMergeFirst,
		join:          x.Join,
		bindJoin:      x.BindJoin,
		staged:        true,
	}
}
