package plan

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// matchCountingStore decorates a Store, counting MatchIDs scans.  The
// counter is atomic because the staged executor's workers probe
// concurrently.
type matchCountingStore struct {
	rdf.Store
	scans atomic.Int64
}

func (c *matchCountingStore) MatchIDs(s, p, o *rdf.ID, fn func(rdf.IDTriple) bool) {
	c.scans.Add(1)
	c.Store.MatchIDs(s, p, o, fn)
}

// findNode returns the first profile node with the given op and detail.
func findNode(p *obs.Profile, op, detail string) *obs.Profile {
	if p == nil {
		return nil
	}
	if p.Op == op && p.Detail == detail {
		return p
	}
	for _, c := range p.Children {
		if n := findNode(c, op, detail); n != nil {
			return n
		}
	}
	return nil
}

// TestStagedMatchesReferenceQuick is the staged executor's core
// differential property: on random AND chains (the shape that arms the
// adaptive driver) over random graphs, forced staged-parallel
// evaluation returns exactly the reference answer set.
func TestStagedMatchesReferenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 300; trial++ {
		g := workload.RandomGraph(rng, 4+rng.Intn(25), nil)
		n := 3 + rng.Intn(4)
		var p sparql.Pattern = workload.RandomTriplePattern(rng, &workload.PatternOpts{})
		for i := 1; i < n; i++ {
			p = sparql.And{L: p, R: workload.RandomTriplePattern(rng, &workload.PatternOpts{})}
		}
		want := sparql.Eval(g, p)
		pr := PrepareOpts(g, p, PlannerOptions{})
		got, err := EvalPreparedOpts(g, pr, nil, forcePar)
		if err != nil {
			t.Fatalf("trial %d %s: staged eval failed: %v", trial, p, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: staged eval diverges on %s\ngot: %v\nwant:%v",
				trial, p, got, want)
		}
	}
}

// TestStagedRouting pins the engine routing: an armed chain under the
// parallel gates runs on the staged executor (an "and" node with
// detail "staged" and a positive stage count appears on the profile),
// NoStaged forces it back onto the static tree, and the serial engine
// keeps the serial adaptive driver.  All three answer identically.
func TestStagedRouting(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 300})
	q := parser.MustParsePattern(
		"(?x livesIn city_1) AND (?x worksAt org_0) AND (?x knows ?y) AND (?y name ?n)")
	want := sparql.Eval(s.G, q)
	pr := PrepareOpts(s.G, q, PlannerOptions{})
	if !pr.adaptiveArmed() {
		t.Fatal("test query must arm the adaptive driver")
	}

	run := func(o Options) (*obs.Profile, *sparql.MappingSet) {
		prof := obs.NewNode("query", "")
		o.Prof = prof
		got, err := EvalPreparedOpts(s.G, pr, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("answer diverges from reference under %+v", o)
		}
		return prof.Snapshot(), got
	}

	staged, _ := run(forcePar)
	node := findNode(staged, "and", "staged")
	if node == nil {
		t.Fatal("parallel adaptive run has no staged chain node on the profile")
	}
	if node.Stages < 1 {
		t.Fatalf("staged node records %d stages, want >=1", node.Stages)
	}

	static, _ := run(Options{Parallel: 4, MinParallelEstimate: -1, MinPartition: 1, NoStaged: true})
	if findNode(static, "and", "staged") != nil {
		t.Fatal("NoStaged run still produced a staged chain node")
	}

	serial, _ := run(Options{Parallel: 1})
	if findNode(serial, "and", "staged") != nil {
		t.Fatal("serial run produced a staged chain node")
	}
	if findNode(serial, "and", "adaptive") == nil {
		t.Fatal("serial run lost its adaptive chain node")
	}
}

// TestStagedEmptyPrefixShortCircuit pins satellite behaviour: when the
// first stage of a staged chain comes back empty, the remaining
// fan-out is cancelled — no morsels are dispatched for tail operands.
// The scan counter makes the short-circuit observable: a static tree
// over the four-operand chain scans every operand, the short-circuited
// staged run touches at most the first pair.
func TestStagedEmptyPrefixShortCircuit(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 300})
	// First operand matches nothing: the DP order puts the 0-cost scan
	// first, and the chain is long enough to stay armed.
	q := parser.MustParsePattern(
		"(?x nosuchpred nosuchvalue) AND (?x knows ?y) AND (?y knows ?z) AND (?z worksAt ?w)")
	pr := PrepareOpts(s.G, q, PlannerOptions{})
	if !pr.adaptiveArmed() {
		t.Fatal("test query must arm the adaptive driver")
	}
	cs := &matchCountingStore{Store: s.G}
	prof := obs.NewNode("query", "")
	o := forcePar
	o.Prof = prof
	got, err := EvalPreparedOpts(cs, pr, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty answer, got %d rows", got.Len())
	}
	if findNode(prof.Snapshot(), "and", "staged") == nil {
		t.Fatal("empty-prefix query did not run on the staged executor")
	}
	// The empty first operand costs one scan; a merge attempt on the
	// first pair may add a second.  The two tail operands must never be
	// scanned.
	if n := cs.scans.Load(); n > 2 {
		t.Fatalf("%d index scans after an empty first stage, want <=2 (tail fan-out not cancelled)", n)
	}
}

// TestStagedReplanAndBindJoin drives the staged parallel executor into
// both of its runtime decisions on the same setup as the serial
// adaptive test: the collapsed prefix must trigger a re-plan between
// stages, and the tiny observed prefix must flip the next stage to the
// parallel bind join — with the probes surfacing on the profile.
func TestStagedReplanAndBindJoin(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 1000})
	var city, org rdf.IRI
	found := false
	for i := 0; i < s.Opts.People && !found; i++ {
		p := s.Person(i)
		var pc, po rdf.IRI
		s.G.ForEach(func(tr rdf.Triple) bool {
			if tr.S == p && tr.P == workload.PredLivesIn {
				pc = tr.O
			}
			if tr.S == p && tr.P == workload.PredWorksAt {
				po = tr.O
			}
			return true
		})
		n := 0
		for j := 0; j < s.Opts.People; j++ {
			if countPair(s.G, s.Person(j), pc, po) {
				n++
			}
		}
		if n >= 1 && n <= 3 {
			city, org, found = pc, po, true
		}
	}
	if !found {
		t.Skip("no suitably selective (city, org) pair in this seed")
	}
	q := parser.MustParsePattern(fmt.Sprintf(
		"(?x livesIn %s) AND (?x worksAt %s) AND (?x knows ?y) AND (?y name ?n) AND (?x type Person)",
		city, org))
	pr := PrepareOpts(s.G, q, PlannerOptions{})
	prof := obs.NewNode("query", "")
	o := forcePar
	o.Prof = prof
	got, err := EvalPreparedOpts(s.G, pr, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sparql.Eval(s.G, q)) {
		t.Fatal("staged adaptive answer differs from reference")
	}
	snap := prof.Snapshot()
	node := findNode(snap, "and", "staged")
	if node == nil {
		t.Fatal("no staged chain node on the profile")
	}
	if node.Replans < 1 {
		t.Errorf("expected >=1 replan on a collapsed prefix, got %d", node.Replans)
	}
	if node.Stages < 2 {
		t.Errorf("expected >=2 stages on a 5-operand chain, got %d", node.Stages)
	}
	if !hasOp(snap, "bindjoin") {
		t.Error("expected a bindjoin node on the profile (tiny prefix vs large predicate)")
	}
	if n := snap.Sum(func(p *obs.Profile) int64 { return p.BindProbes }); n < 1 {
		t.Errorf("expected >=1 recorded bind probe, got %d", n)
	}
}

// TestStagedDifferentialNoStaged extends the planner differential to
// the staged/static ablation axis: every planner configuration must
// return the reference answers with the staged executor enabled and
// with NoStaged forcing the static parallel tree.
func TestStagedDifferentialNoStaged(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 300})
	rng := rand.New(rand.NewSource(31))
	var queries []sparql.Pattern
	for i := 0; i < 8; i++ {
		queries = append(queries, s.MixedQueries(rng, 1, nil)...)
	}
	queries = append(queries,
		parser.MustParsePattern("(?x0 follows ?x1) AND (?x1 mentors ?x2) AND (?x2 worksAt org_3)"),
		parser.MustParsePattern("(?x livesIn city_1) AND (?x worksAt org_0) AND (?x knows ?y) AND (?y name ?n)"))
	for qi, q := range queries {
		want := sparql.Eval(s.G, q)
		for _, cfg := range plannerConfigs {
			pr := PrepareOpts(s.G, q, cfg.po)
			for _, noStaged := range []bool{false, true} {
				o := forcePar
				o.NoStaged = noStaged
				got, err := EvalPreparedOpts(s.G, pr, nil, o)
				if err != nil {
					t.Fatalf("q%d %s under %s (noStaged=%t): %v", qi, q, cfg.name, noStaged, err)
				}
				if !got.Equal(want) {
					t.Fatalf("q%d %s under %s (noStaged=%t): %d rows, reference %d",
						qi, q, cfg.name, noStaged, got.Len(), want.Len())
				}
			}
		}
	}
}
