// Package plan is a query planner and optimized evaluator for
// NS-SPARQL.  It is semantics-preserving engineering on top of the
// reference evaluator of internal/sparql (which stays the oracle in
// differential tests):
//
//   - AND chains are flattened, split into variable-connected
//     components, and each component is ordered by a dynamic program
//     over its connected subsets minimizing the C_out cost metric fed
//     by exact index cardinalities (see cost.go and dp.go); components
//     beyond DPMaxPatterns — and the v1 ablation baseline
//     (PlannerOptions.Greedy) — use the greedy
//     smallest-connected-estimate heuristic;
//   - merge vs hash join is chosen per binary node by estimated cost
//     and passed to the row engine as sparql.EvalHints;
//   - long AND chains run under the adaptive chain driver
//     (adaptive.go): the serial path evaluates operand by operand and
//     re-orders the remaining operands mid-query when observed
//     cardinalities drift past ReplanFactor× the estimate; the
//     parallel path runs the same driver morsel-style (staged.go),
//     fanning each join stage out across the worker pool and
//     re-planning between stages;
//   - conjunctive FILTER conditions are split and pushed down to the
//     earliest operand that certainly binds their variables;
//   - joins, differences and left-outer joins run hash-bucketed on the
//     shared always-bound variables (sparql.JoinHash and friends);
//   - the optimized pattern is evaluated on the ID-native row engine
//     (sparql.EvalRows): dictionary-encoded rows with presence bitsets,
//     hash joins keyed on always-bound slot masks, and the
//     mask-bucketed NS algorithm.  Patterns wider than
//     sparql.MaxSchemaVars fall back to the string hash algebra
//     (EvalString), which also remains available for the E20 ablation.
//
// These choices are ablated in the E20 experiment.
package plan

import (
	"context"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// Options tunes the evaluator.  The zero value is the production
// default: the parallel row engine with one worker per CPU, engaging
// only when the planner's cardinality estimate says the query is big
// enough to amortize the fan-out.
type Options struct {
	// Parallel is the worker count for the parallel row engine
	// (including the calling goroutine): 0 means runtime.GOMAXPROCS(0),
	// 1 forces the serial engine.
	Parallel int
	// MinParallelEstimate is the planner's estimated result
	// cardinality below which evaluation stays serial even when
	// Parallel > 1 (goroutine handoff would dominate on small
	// queries).  0 means DefaultMinParallelEstimate; set it negative
	// to parallelize unconditionally.
	MinParallelEstimate float64
	// MinPartition is passed through to the row engine's partitioned
	// operators (0 = sparql.DefaultMinPartition).
	MinPartition int
	// NoStaged forces the static parallel tree even when the plan is
	// staged-eligible (an adaptive-armed AND chain): the whole chain
	// fans out at once with no drift checkpoints — the E30 ablation
	// baseline, exposed as -no-staged on nsserve and nscoord.  It has
	// no effect on serial evaluation or on plans that are not
	// adaptive-armed.
	NoStaged bool
	// Prof, when non-nil, collects a per-query execution profile: the
	// evaluator attaches one obs child node per operator under it (see
	// internal/obs and sparql.EvalRowsProf).  The string-algebra
	// fallback for patterns wider than sparql.MaxSchemaVars records
	// only root-level totals.  A nil Prof disables all instrumentation
	// at the cost of one nil check per operator node.
	Prof *obs.Node
	// Trace, when non-nil, is the live execution span of the query's
	// distributed trace: the adaptive chain executor records each
	// mid-query replan checkpoint as a child span (position, observed
	// vs estimated cardinality), so re-optimizations survive the
	// request and show up in /debug/traces.  A nil Trace is a no-op.
	Trace *obs.Span
}

// DefaultMinParallelEstimate is the default serial/parallel cutover
// estimate: queries the planner expects to stay under this many
// intermediate rows are evaluated serially.
const DefaultMinParallelEstimate = 256

func (o Options) workers() int {
	if o.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

func (o Options) minEstimate() float64 {
	if o.MinParallelEstimate == 0 {
		return DefaultMinParallelEstimate
	}
	return o.MinParallelEstimate
}

// Eval optimizes the pattern for the given graph and evaluates it on
// the ID-native row engine, decoding at the boundary.  It always
// returns exactly ⟦P⟧_G.  Eval is the ungoverned legacy entry point
// (context.Background(), no limits); servers should use EvalCtx or
// EvalBudget so hostile queries cannot run unboundedly.
func Eval(g rdf.Store, p sparql.Pattern) *sparql.MappingSet {
	ms, err := EvalBudget(g, p, nil)
	if err != nil {
		// Only a malformed plan can fail without a budget; degrade to
		// the empty answer instead of crashing the caller.
		return sparql.NewMappingSet()
	}
	return ms
}

// EvalCtx is Eval bounded by a context: evaluation aborts with a typed
// error (wrapping sparql.ErrCanceled and the context cause) shortly
// after ctx is canceled or its deadline expires.
func EvalCtx(ctx context.Context, g rdf.Store, p sparql.Pattern) (*sparql.MappingSet, error) {
	return EvalBudget(g, p, sparql.NewBudget(ctx))
}

// EvalBudget is Eval under a full resource governor (see
// sparql.Budget): deadline, step, row and memory limits all surface as
// typed errors instead of unbounded work.  A nil budget disables all
// accounting.  It runs with the default Options — the parallel engine
// on multi-core hosts, gated by the cardinality estimate.
func EvalBudget(g rdf.Store, p sparql.Pattern, b *sparql.Budget) (*sparql.MappingSet, error) {
	return EvalOpts(g, p, b, Options{})
}

// Prepared is an optimized, ready-to-run query plan: the rewritten
// pattern, the planner's cardinality estimate for the serial/parallel
// cutover, the recorded plan (Explain), the engine hints, and — for
// AND chains — the flattened operand order plus prefix estimates the
// adaptive executor checkpoints against.  Preparation reads the
// graph's index counts (CountMatch), so a Prepared plan is only valid
// for the graph contents it was built against — cache it keyed by the
// graph's Epoch and the PlannerOptions.CacheTag, as nsserve's plan
// cache does, and it never goes stale.
type Prepared struct {
	pattern sparql.Pattern
	est     float64
	popts   PlannerOptions
	explain *Explain
	hints   *sparql.EvalHints
	estr    *estimator
	// chain is the ordered flat operand list when the whole pattern is
	// an AND chain (components concatenated), nil otherwise;
	// chainEsts[i] is the estimated cardinality after joining
	// chain[:i+1].
	chain     []sparql.Pattern
	chainEsts []float64
}

// Pattern returns the optimized pattern the plan will evaluate.
func (pr Prepared) Pattern() sparql.Pattern { return pr.pattern }

// Explain returns the recorded plan (nil only for a zero Prepared).
func (pr Prepared) Explain() *Explain { return pr.explain }

// Prepare optimizes p for g under the default planner options, the
// graph-dependent (and therefore cacheable) half of EvalOpts.
func Prepare(g rdf.Store, p sparql.Pattern) Prepared {
	return PrepareOpts(g, p, PlannerOptions{})
}

// PrepareOpts is Prepare with explicit planner options (greedy
// baseline, DP cutoff, re-plan factor).
func PrepareOpts(g rdf.Store, p sparql.Pattern, po PlannerOptions) Prepared {
	pc := &planCtx{g: g, e: newEstimator(g), po: po}
	opt := pc.optimize(sparql.SimplifyPattern(p))
	pr := Prepared{pattern: opt, popts: po, estr: pc.e}
	if _, ok := opt.(sparql.And); ok {
		// andOperands of the rebuilt tree recovers the planner's full
		// chain order (left-deep within components, concatenated across).
		pr.chain = andOperands(opt)
		pr.chainEsts = chainCards(buildCands(pc.e, pr.chain), identityOrder(len(pr.chain)))
	}
	pr.explain, pr.hints = buildExplain(pc.e, opt, po, pr.adaptiveArmed())
	pr.est = pr.explain.Estimate
	return pr
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// EvalOpts is EvalBudget with explicit engine options: the optimized
// pattern runs on the parallel row engine when o asks for more than
// one worker and the cardinality estimate clears the serial cutover,
// and on the serial row engine otherwise.  Both engines return exactly
// the same answer set (differentially tested); the string algebra
// remains the fallback for patterns wider than sparql.MaxSchemaVars.
func EvalOpts(g rdf.Store, p sparql.Pattern, b *sparql.Budget, o Options) (*sparql.MappingSet, error) {
	return EvalPreparedOpts(g, Prepare(g, p), b, o)
}

// EvalPreparedOpts runs a Prepared plan, skipping the optimization and
// estimation passes — the evaluation half of EvalOpts, split out so
// servers can cache plans across requests.
func EvalPreparedOpts(g rdf.Store, pr Prepared, b *sparql.Budget, o Options) (*sparql.MappingSet, error) {
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	opt := pr.pattern
	var (
		rs  *sparql.RowSet
		ok  bool
		err error
	)
	if workers := o.workers(); workers > 1 && pr.est >= o.minEstimate() {
		if pr.adaptiveArmed() && !o.NoStaged {
			// Morsel-style staged fan-out: run the chain stage by
			// stage on the pool, observing materialized prefix
			// cardinalities and re-planning the tail between stages
			// (staged.go).
			rs, ok, err = evalStagedChain(g, pr, b, o, o.Prof, o.Trace)
		} else {
			// Static tree: the whole plan fans out at once (no
			// sequential drift checkpoint exists once the chain is
			// committed) — non-chain plans, -no-replan, -no-staged
			// and the greedy baseline.
			rs, ok, err = sparql.EvalRowsParOpts(g, opt, b, sparql.ParOptions{
				Workers:      workers,
				MinPartition: o.MinPartition,
				Prof:         o.Prof,
				Hints:        pr.hints,
			})
		}
	} else if pr.adaptiveArmed() {
		rs, ok, err = evalAdaptiveChain(g, pr, b, o.Prof, o.Trace)
	} else {
		rs, ok, err = sparql.EvalRowsHints(g, opt, b, o.Prof, pr.hints)
	}
	recordRoot := func(resultRows int) {
		if o.Prof == nil {
			return
		}
		o.Prof.AddWall(time.Since(start))
		steps1, rows1, bytes1 := b.Counters()
		o.Prof.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
		o.Prof.AddRowsOut(int64(resultRows))
	}
	if err != nil {
		recordRoot(0)
		return nil, err
	}
	if ok {
		if err := b.AddRows(rs.Len()); err != nil {
			recordRoot(0)
			return nil, err
		}
		recordRoot(rs.Len())
		return rs.MappingSet(g.Dict()), nil
	}
	ms, err := evalOptBudget(g, opt, b) // wider than MaxSchemaVars
	if err != nil {
		recordRoot(0)
		return nil, err
	}
	if err := b.AddRows(ms.Len()); err != nil {
		recordRoot(0)
		return nil, err
	}
	recordRoot(ms.Len())
	return ms, nil
}

// EvalString optimizes the pattern and evaluates it with the
// string-mapping hash algebra — the pre-row-engine planner path, kept
// as the E20 ablation baseline and the fallback for patterns wider
// than sparql.MaxSchemaVars.
func EvalString(g rdf.Store, p sparql.Pattern) *sparql.MappingSet {
	ms, err := evalOptBudget(g, Optimize(g, p), nil)
	if err != nil {
		return sparql.NewMappingSet()
	}
	return ms
}

// EvalConstruct is the planner-backed counterpart of
// sparql.EvalConstruct.
func EvalConstruct(g rdf.Store, q sparql.ConstructQuery) rdf.Store {
	out, err := EvalConstructBudget(g, q, nil)
	if err != nil {
		return rdf.NewGraph()
	}
	return out
}

// EvalConstructCtx is EvalConstruct bounded by a context.
func EvalConstructCtx(ctx context.Context, g rdf.Store, q sparql.ConstructQuery) (rdf.Store, error) {
	return EvalConstructBudget(g, q, sparql.NewBudget(ctx))
}

// EvalConstructBudget is EvalConstruct under a resource governor.
func EvalConstructBudget(g rdf.Store, q sparql.ConstructQuery, b *sparql.Budget) (rdf.Store, error) {
	return EvalConstructOpts(g, q, b, Options{})
}

// EvalConstructOpts is EvalConstructBudget with explicit engine
// options.
func EvalConstructOpts(g rdf.Store, q sparql.ConstructQuery, b *sparql.Budget, o Options) (rdf.Store, error) {
	return EvalConstructPreparedOpts(g, Prepare(g, q.Where), q.Template, b, o)
}

// EvalConstructPreparedOpts is EvalConstructOpts on an already-prepared
// WHERE plan (the template needs no preparation).
func EvalConstructPreparedOpts(g rdf.Store, pr Prepared, template []sparql.TriplePattern, b *sparql.Budget, o Options) (rdf.Store, error) {
	ms, err := EvalPreparedOpts(g, pr, b, o)
	if err != nil {
		return nil, err
	}
	out := rdf.NewGraph()
	for _, mu := range ms.Mappings() {
		if err := b.Step(); err != nil {
			return nil, err
		}
		for _, t := range template {
			if tr, ok := mu.Apply(t); ok {
				out.AddTriple(tr)
			}
		}
	}
	return out, nil
}

// Optimize rewrites the pattern into a semantically equal pattern with
// pushed-down filters and reordered AND chains.  The rewriting uses
// only equivalences that hold for arbitrary patterns:
//
//	AND is associative and commutative;
//	(P1 AND P2) FILTER R ≡ (P1 FILTER R) AND P2
//	    when var(R) ⊆ cb(P1) (the certainly-bound variables);
//	R1 ∧ R2 splits into two FILTER applications.
func Optimize(g rdf.Store, p sparql.Pattern) sparql.Pattern {
	pc := &planCtx{g: g, e: newEstimator(g)}
	return pc.optimize(sparql.SimplifyPattern(p))
}

// planCtx threads the shared estimator and planner options through one
// optimization pass, so a k-pattern query costs O(k) index probes no
// matter how many candidate orders the DP scores.
type planCtx struct {
	g  rdf.Store
	e  *estimator
	po PlannerOptions
}

func (pc *planCtx) optimize(p sparql.Pattern) sparql.Pattern {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return q
	case sparql.And:
		return pc.optimizeAndChain(q)
	case sparql.Union:
		return sparql.Union{L: pc.optimize(q.L), R: pc.optimize(q.R)}
	case sparql.Opt:
		return sparql.Opt{L: pc.optimize(q.L), R: pc.optimize(q.R)}
	case sparql.Filter:
		return pc.optimizeFilter(q)
	case sparql.Select:
		return sparql.Select{Vars: q.Vars, P: pc.optimize(q.P)}
	case sparql.NS:
		return sparql.NS{P: pc.optimize(q.P)}
	default:
		// Unknown operator: leave it untouched (optimization is always
		// allowed to be the identity) and let the evaluator report a
		// typed sparql.ErrUnsupportedPattern instead of panicking here.
		return p
	}
}

// andOperands flattens an AND chain.
func andOperands(p sparql.Pattern) []sparql.Pattern {
	if a, ok := p.(sparql.And); ok {
		return append(andOperands(a.L), andOperands(a.R)...)
	}
	return []sparql.Pattern{p}
}

// optimizeAndChain orders a flattened AND chain: operands split into
// variable-connected components (ordered by smallest member estimate,
// reproducing the v1 greedy's global sequencing), and each component
// is ordered by the connected-subset DP (dp.go) — or the v1 greedy
// heuristic when PlannerOptions.Greedy is set or the component exceeds
// the DP cutoff.
func (pc *planCtx) optimizeAndChain(a sparql.And) sparql.Pattern {
	ops := andOperands(a)
	for i, op := range ops {
		ops[i] = pc.optimize(op)
	}
	cands := buildCands(pc.e, ops)
	comps := chainComponents(cands)
	ordered := make([]sparql.Pattern, 0, len(cands))
	starts := make([]int, 0, len(comps))
	for _, members := range comps {
		starts = append(starts, len(ordered))
		var order []int
		if pc.po.Greedy || len(members) > pc.po.dpMax() {
			order = greedyOrderComponent(cands, members)
		} else {
			order = dpOrderComponent(cands, members)
		}
		for _, i := range order {
			ordered = append(ordered, cands[i].p)
		}
	}
	return andComponents(ordered, starts)
}

// andComponents rebuilds the AND tree from the greedily ordered chain:
// each connected component keeps its left-deep greedy order (good join
// ordering), and the variable-disjoint components combine through a
// balanced tree of cross products.  AND is associative and commutative,
// so the reshaping is an equivalence; its point is structural — the
// parallel engine fans out the operands of every AND node, and a
// balanced tree over independent components exposes them as concurrent
// sub-problems instead of hiding them down one left spine.
func andComponents(ordered []sparql.Pattern, starts []int) sparql.Pattern {
	if len(starts) <= 1 {
		return sparql.AndOf(ordered...)
	}
	parts := make([]sparql.Pattern, 0, len(starts))
	for i, lo := range starts {
		hi := len(ordered)
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		parts = append(parts, sparql.AndOf(ordered[lo:hi]...))
	}
	return balancedAnd(parts)
}

// balancedAnd folds patterns into a balanced binary AND tree.
func balancedAnd(parts []sparql.Pattern) sparql.Pattern {
	switch len(parts) {
	case 1:
		return parts[0]
	case 2:
		return sparql.And{L: parts[0], R: parts[1]}
	}
	mid := len(parts) / 2
	return sparql.And{L: balancedAnd(parts[:mid]), R: balancedAnd(parts[mid:])}
}

func (pc *planCtx) optimizeFilter(f sparql.Filter) sparql.Pattern {
	body := pc.optimize(f.P)
	conjuncts := splitConjuncts(f.Cond)
	var remaining []sparql.Condition
	for _, c := range conjuncts {
		if pushed, ok := pushFilter(body, c); ok {
			body = pushed
		} else {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) == 0 {
		return body
	}
	return sparql.Filter{P: body, Cond: sparql.ConjoinConds(remaining...)}
}

func splitConjuncts(c sparql.Condition) []sparql.Condition {
	if a, ok := c.(sparql.AndCond); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []sparql.Condition{c}
}

// pushFilter tries to push a single conjunct into an operand of an AND
// chain whose certainly-bound variables cover it.  It reports whether
// the push happened.
func pushFilter(p sparql.Pattern, cond sparql.Condition) (sparql.Pattern, bool) {
	a, ok := p.(sparql.And)
	if !ok {
		return p, false
	}
	vars := cond.Vars(nil)
	covered := func(q sparql.Pattern) bool {
		cb := transform.CertainlyBound(q)
		for _, v := range vars {
			if _, ok := cb[v]; !ok {
				return false
			}
		}
		return true
	}
	ops := andOperands(a)
	for i, op := range ops {
		if covered(op) {
			// Try to push deeper first.
			if deeper, ok := pushFilter(op, cond); ok {
				ops[i] = deeper
			} else {
				ops[i] = sparql.Filter{P: op, Cond: cond}
			}
			return sparql.AndOf(ops...), true
		}
	}
	return p, false
}

// Estimate returns a rough upper estimate of |⟦P⟧_G| used for join
// ordering.  Triple patterns use exact index counts; operators combine
// estimates structurally.  (The formulas live on the memoizing
// estimator in cost.go; this entry point builds a throwaway memo.)
func Estimate(g rdf.Store, p sparql.Pattern) float64 {
	return newEstimator(g).estimate(p)
}

// evalOptBudget mirrors sparql.Eval with the hash-based algebra
// primitives, charging the budget per operator (cardinality-
// proportional, like sparql.EvalBudget).
func evalOptBudget(g rdf.Store, p sparql.Pattern, b *sparql.Budget) (*sparql.MappingSet, error) {
	if err := b.Step(); err != nil {
		return nil, err
	}
	switch q := p.(type) {
	case sparql.TriplePattern:
		return sparql.EvalBudget(g, q, b)
	case sparql.And:
		l, err := evalOptBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := evalOptBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.JoinHash(r), nil
	case sparql.Union:
		l, err := evalOptBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := evalOptBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case sparql.Opt:
		l, err := evalOptBudget(g, q.L, b)
		if err != nil {
			return nil, err
		}
		r, err := evalOptBudget(g, q.R, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(l.Len() + r.Len()); err != nil {
			return nil, err
		}
		return l.LeftJoinHash(r), nil
	case sparql.Filter:
		inner, err := evalOptBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Filter(q.Cond), nil
	case sparql.Select:
		inner, err := evalOptBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len()); err != nil {
			return nil, err
		}
		return inner.Project(q.Vars), nil
	case sparql.NS:
		inner, err := evalOptBudget(g, q.P, b)
		if err != nil {
			return nil, err
		}
		if err := b.StepN(inner.Len() * inner.Len()); err != nil {
			return nil, err
		}
		return inner.Maximal(), nil
	default:
		return nil, sparql.ErrUnsupportedPattern{Pattern: p}
	}
}
