// Package plan is a query planner and optimized evaluator for
// NS-SPARQL.  It is semantics-preserving engineering on top of the
// reference evaluator of internal/sparql (which stays the oracle in
// differential tests):
//
//   - AND chains are flattened and greedily reordered by estimated
//     cardinality, preferring operands connected by already-bound
//     variables (index-nested-loop flavoured join ordering);
//   - conjunctive FILTER conditions are split and pushed down to the
//     earliest operand that certainly binds their variables;
//   - joins, differences and left-outer joins run hash-bucketed on the
//     shared always-bound variables (sparql.JoinHash and friends);
//   - the optimized pattern is evaluated on the ID-native row engine
//     (sparql.EvalRows): dictionary-encoded rows with presence bitsets,
//     hash joins keyed on always-bound slot masks, and the
//     mask-bucketed NS algorithm.  Patterns wider than
//     sparql.MaxSchemaVars fall back to the string hash algebra
//     (EvalString), which also remains available for the E20 ablation.
//
// These choices are ablated in the E20 experiment.
package plan

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// Eval optimizes the pattern for the given graph and evaluates it on
// the ID-native row engine, decoding at the boundary.  It always
// returns exactly ⟦P⟧_G.
func Eval(g *rdf.Graph, p sparql.Pattern) *sparql.MappingSet {
	opt := Optimize(g, p)
	if rs, ok := sparql.EvalRows(g, opt); ok {
		return rs.MappingSet(g.Dict())
	}
	return evalOpt(g, opt) // wider than MaxSchemaVars
}

// EvalString optimizes the pattern and evaluates it with the
// string-mapping hash algebra — the pre-row-engine planner path, kept
// as the E20 ablation baseline and the fallback for patterns wider
// than sparql.MaxSchemaVars.
func EvalString(g *rdf.Graph, p sparql.Pattern) *sparql.MappingSet {
	return evalOpt(g, Optimize(g, p))
}

// EvalConstruct is the planner-backed counterpart of
// sparql.EvalConstruct.
func EvalConstruct(g *rdf.Graph, q sparql.ConstructQuery) *rdf.Graph {
	out := rdf.NewGraph()
	for _, mu := range Eval(g, q.Where).Mappings() {
		for _, t := range q.Template {
			if tr, ok := mu.Apply(t); ok {
				out.AddTriple(tr)
			}
		}
	}
	return out
}

// Optimize rewrites the pattern into a semantically equal pattern with
// pushed-down filters and reordered AND chains.  The rewriting uses
// only equivalences that hold for arbitrary patterns:
//
//	AND is associative and commutative;
//	(P1 AND P2) FILTER R ≡ (P1 FILTER R) AND P2
//	    when var(R) ⊆ cb(P1) (the certainly-bound variables);
//	R1 ∧ R2 splits into two FILTER applications.
func Optimize(g *rdf.Graph, p sparql.Pattern) sparql.Pattern {
	return optimize(g, sparql.SimplifyPattern(p))
}

func optimize(g *rdf.Graph, p sparql.Pattern) sparql.Pattern {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return q
	case sparql.And:
		return optimizeAndChain(g, q)
	case sparql.Union:
		return sparql.Union{L: optimize(g, q.L), R: optimize(g, q.R)}
	case sparql.Opt:
		return sparql.Opt{L: optimize(g, q.L), R: optimize(g, q.R)}
	case sparql.Filter:
		return optimizeFilter(g, q)
	case sparql.Select:
		return sparql.Select{Vars: q.Vars, P: optimize(g, q.P)}
	case sparql.NS:
		return sparql.NS{P: optimize(g, q.P)}
	default:
		panic(fmt.Sprintf("plan: unknown pattern type %T", p))
	}
}

// andOperands flattens an AND chain.
func andOperands(p sparql.Pattern) []sparql.Pattern {
	if a, ok := p.(sparql.And); ok {
		return append(andOperands(a.L), andOperands(a.R)...)
	}
	return []sparql.Pattern{p}
}

func optimizeAndChain(g *rdf.Graph, a sparql.And) sparql.Pattern {
	ops := andOperands(a)
	for i, op := range ops {
		ops[i] = optimize(g, op)
	}
	// Greedy join ordering: start from the smallest estimate; then
	// repeatedly take the connected operand (sharing a certainly-bound
	// variable with what is already joined) with the smallest estimate,
	// falling back to the globally smallest when nothing connects.
	type cand struct {
		p    sparql.Pattern
		est  float64
		vars map[sparql.Var]struct{}
	}
	cands := make([]cand, len(ops))
	for i, op := range ops {
		cands[i] = cand{p: op, est: Estimate(g, op), vars: transform.CertainlyBound(op)}
	}
	// Stable start: smallest estimate, ties by original position.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].est < cands[j].est })

	used := make([]bool, len(cands))
	bound := make(map[sparql.Var]struct{})
	ordered := make([]sparql.Pattern, 0, len(cands))
	take := func(i int) {
		used[i] = true
		ordered = append(ordered, cands[i].p)
		for v := range cands[i].vars {
			bound[v] = struct{}{}
		}
	}
	take(0)
	for len(ordered) < len(cands) {
		best, bestConnected := -1, false
		for i, c := range cands {
			if used[i] {
				continue
			}
			connected := false
			for v := range c.vars {
				if _, ok := bound[v]; ok {
					connected = true
					break
				}
			}
			if best == -1 || (connected && !bestConnected) ||
				(connected == bestConnected && c.est < cands[best].est) {
				best, bestConnected = i, connected
			}
		}
		take(best)
	}
	return sparql.AndOf(ordered...)
}

func optimizeFilter(g *rdf.Graph, f sparql.Filter) sparql.Pattern {
	body := optimize(g, f.P)
	conjuncts := splitConjuncts(f.Cond)
	var remaining []sparql.Condition
	for _, c := range conjuncts {
		if pushed, ok := pushFilter(body, c); ok {
			body = pushed
		} else {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) == 0 {
		return body
	}
	return sparql.Filter{P: body, Cond: sparql.ConjoinConds(remaining...)}
}

func splitConjuncts(c sparql.Condition) []sparql.Condition {
	if a, ok := c.(sparql.AndCond); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []sparql.Condition{c}
}

// pushFilter tries to push a single conjunct into an operand of an AND
// chain whose certainly-bound variables cover it.  It reports whether
// the push happened.
func pushFilter(p sparql.Pattern, cond sparql.Condition) (sparql.Pattern, bool) {
	a, ok := p.(sparql.And)
	if !ok {
		return p, false
	}
	vars := cond.Vars(nil)
	covered := func(q sparql.Pattern) bool {
		cb := transform.CertainlyBound(q)
		for _, v := range vars {
			if _, ok := cb[v]; !ok {
				return false
			}
		}
		return true
	}
	ops := andOperands(a)
	for i, op := range ops {
		if covered(op) {
			// Try to push deeper first.
			if deeper, ok := pushFilter(op, cond); ok {
				ops[i] = deeper
			} else {
				ops[i] = sparql.Filter{P: op, Cond: cond}
			}
			return sparql.AndOf(ops...), true
		}
	}
	return p, false
}

// Estimate returns a rough upper estimate of |⟦P⟧_G| used for join
// ordering.  Triple patterns use exact index counts; operators combine
// estimates structurally.
func Estimate(g *rdf.Graph, p sparql.Pattern) float64 {
	switch q := p.(type) {
	case sparql.TriplePattern:
		var s, pr, o *rdf.IRI
		if !q.S.IsVar() {
			i := q.S.IRI()
			s = &i
		}
		if !q.P.IsVar() {
			i := q.P.IRI()
			pr = &i
		}
		if !q.O.IsVar() {
			i := q.O.IRI()
			o = &i
		}
		return float64(g.CountMatch(s, pr, o))
	case sparql.And:
		l, r := Estimate(g, q.L), Estimate(g, q.R)
		// Crude: assume the join keeps the smaller side's cardinality
		// scaled by a fan-out of the larger's density.
		if l < r {
			return l * (1 + r/float64(g.Len()+1))
		}
		return r * (1 + l/float64(g.Len()+1))
	case sparql.Union:
		return Estimate(g, q.L) + Estimate(g, q.R)
	case sparql.Opt:
		return Estimate(g, q.L) * 1.5
	case sparql.Filter:
		return Estimate(g, q.P) / 2
	case sparql.Select:
		return Estimate(g, q.P)
	case sparql.NS:
		return Estimate(g, q.P)
	default:
		panic(fmt.Sprintf("plan: unknown pattern type %T", p))
	}
}

// evalOpt mirrors sparql.Eval with the hash-based algebra primitives.
func evalOpt(g *rdf.Graph, p sparql.Pattern) *sparql.MappingSet {
	switch q := p.(type) {
	case sparql.TriplePattern:
		return sparql.Eval(g, q)
	case sparql.And:
		return evalOpt(g, q.L).JoinHash(evalOpt(g, q.R))
	case sparql.Union:
		return evalOpt(g, q.L).Union(evalOpt(g, q.R))
	case sparql.Opt:
		return evalOpt(g, q.L).LeftJoinHash(evalOpt(g, q.R))
	case sparql.Filter:
		return evalOpt(g, q.P).Filter(q.Cond)
	case sparql.Select:
		return evalOpt(g, q.P).Project(q.Vars)
	case sparql.NS:
		return evalOpt(g, q.P).Maximal()
	default:
		panic(fmt.Sprintf("plan: unknown pattern type %T", p))
	}
}
