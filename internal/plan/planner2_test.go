package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// countingStore decorates a Store, counting CountMatch index probes.
type countingStore struct {
	rdf.Store
	probes int
}

func (c *countingStore) CountMatch(s, p, o *rdf.IRI) int {
	c.probes++
	return c.Store.CountMatch(s, p, o)
}

// TestPrepareProbeCount pins the estimator's memoization contract:
// planning a k-pattern query issues exactly one CountMatch probe per
// distinct triple pattern, no matter how many orders the DP
// enumerates (2^k subsets for a connected component of size k).
func TestPrepareProbeCount(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 300})
	q := parser.MustParsePattern(
		`(?x livesIn city_1) AND (?x type Person) AND (?x email ?e) AND ` +
			`(?x worksAt org_2) AND (?x knows ?y) AND (?x name ?n)`)
	k := len(sparql.TriplePatterns(q))
	if k != 6 {
		t.Fatalf("expected 6 patterns, got %d", k)
	}
	cs := &countingStore{Store: s.G}
	pr := PrepareOpts(cs, q, PlannerOptions{})
	if cs.probes != k {
		t.Fatalf("Prepare issued %d index probes for %d patterns, want exactly %d (memoized)",
			cs.probes, k, k)
	}
	ex := pr.Explain()
	if ex == nil {
		t.Fatal("prepared plan has no explain record")
	}
	if ex.Probes != k {
		t.Fatalf("Explain.Probes = %d, want %d", ex.Probes, k)
	}
	if len(ex.JoinOrder) != k {
		t.Fatalf("Explain.JoinOrder has %d scans, want %d", len(ex.JoinOrder), k)
	}
	// The greedy baseline must be equally frugal.
	cs2 := &countingStore{Store: s.G}
	PrepareOpts(cs2, q, PlannerOptions{Greedy: true})
	if cs2.probes != k {
		t.Fatalf("greedy Prepare issued %d probes, want %d", cs2.probes, k)
	}
}

// TestExplainWellDesigned checks the recorded well-designedness flag
// against the analysis package's verdict on the original (unoptimized)
// pattern, over the eight query shapes of the cluster differential
// suite — so plan optimization can never silently flip the property.
func TestExplainWellDesigned(t *testing.T) {
	queries := []string{
		"(?x knows ?y)",
		"(?x knows ?y) AND (?y knows ?z) AND (?z worksAt ?w)",
		"(?x knows ?y) UNION (?x worksAt ?y)",
		"(?x knows ?y) OPT (?y email ?e)",
		"((?x knows ?y) OPT (?y email ?e)) FILTER (!bound(?e))",
		"NS((?x worksAt ?w) UNION ((?x worksAt ?w) AND (?x email ?e)))",
		"SELECT {?x} WHERE (?x knows ?y) AND (?y worksAt ?w)",
		"(?x type v1) AND (?x knows ?y)",
	}
	g := rdf.NewGraph()
	g.Add("a", "knows", "b")
	g.Add("a", "worksAt", "w1")
	want := func(p sparql.Pattern) bool {
		if sparql.InFragment(p, sparql.FragmentAOF) {
			ok, err := analysis.IsWellDesigned(p)
			return err == nil && ok
		}
		if sparql.InFragment(p, sparql.FragmentAUOF) {
			ok, err := analysis.IsWellDesignedUnion(p)
			return err == nil && ok
		}
		return false
	}
	sawTrue, sawFalse := false, false
	for _, q := range queries {
		p := parser.MustParsePattern(q)
		ex := PrepareOpts(g, p, PlannerOptions{}).Explain()
		if ex == nil {
			t.Fatalf("%q: no explain record", q)
		}
		if w := want(p); ex.WellDesigned != w {
			t.Errorf("%q: recorded well_designed=%t, analysis says %t", q, ex.WellDesigned, w)
		}
		if ex.WellDesigned {
			sawTrue = true
		} else {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("shape set must exercise both verdicts (true=%t false=%t)", sawTrue, sawFalse)
	}
}

// plannerConfigs are the ablation points every differential check runs.
var plannerConfigs = []struct {
	name string
	po   PlannerOptions
}{
	{"greedy", PlannerOptions{Greedy: true}},
	{"dp", PlannerOptions{NoReplan: true}},
	{"dp-adaptive", PlannerOptions{}},
	{"dp-eager-replan", PlannerOptions{ReplanFactor: 1.0000001}},
}

// TestPlannerDifferential: on the social workload (zipf skew, the
// shapes that arm merge joins, bind joins, short-circuits and
// replans), every planner configuration must return exactly the
// reference answer set on every fragment of the language, under both
// the serial and the parallel engine.
func TestPlannerDifferential(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 400})
	rng := rand.New(rand.NewSource(3))
	var queries []sparql.Pattern
	for i := 0; i < 12; i++ {
		queries = append(queries, s.MixedQueries(rng, 1, nil)...)
	}
	for _, q := range []string{
		// The non-AND fragments the chain executor must leave intact.
		"(?x knows ?y) UNION (?x worksAt ?y)",
		"((?x livesIn city_0) AND (?x knows ?y)) OPT (?y email ?e)",
		"((?x knows ?y) OPT (?y email ?e)) FILTER (!bound(?e))",
		"NS((?x worksAt ?w) UNION ((?x worksAt ?w) AND (?x email ?e)))",
		"SELECT {?x} WHERE (?x knows ?y) AND (?y worksAt ?w)",
		"(?x0 follows ?x1) AND (?x1 mentors ?x2) AND (?x2 worksAt org_3)",
		"(?x livesIn city_1) AND (?x worksAt org_0) AND (?x knows ?y) AND (?y name ?n)",
	} {
		queries = append(queries, parser.MustParsePattern(q))
	}
	for qi, q := range queries {
		want := sparql.Eval(s.G, q)
		for _, cfg := range plannerConfigs {
			pr := PrepareOpts(s.G, q, cfg.po)
			for _, opts := range []Options{
				{Parallel: 1},
				{MinParallelEstimate: -1}, // force the parallel engine
			} {
				got, err := EvalPreparedOpts(s.G, pr, nil, opts)
				if err != nil {
					t.Fatalf("q%d %s under %s: %v", qi, q, cfg.name, err)
				}
				if !got.Equal(want) {
					t.Fatalf("q%d %s under %s (parallel=%d): %d rows, reference %d",
						qi, q, cfg.name, opts.Parallel, got.Len(), want.Len())
				}
			}
		}
	}
}

// TestAdaptiveReplanAndBindJoin drives the adaptive executor into both
// of its runtime decisions and checks they surface on the profile: a
// correlated anchored pair whose observed cardinality collapses far
// below the model triggers a re-plan, and a selective prefix against a
// large predicate switches the join to an index bind join.
func TestAdaptiveReplanAndBindJoin(t *testing.T) {
	s := workload.NewSocial(workload.SocialOpts{People: 1000})
	// Find a (city, org) pair with a small nonempty intersection: the
	// model estimates the pair near min(|livesIn|, |worksAt|), so 1–3
	// observed rows is far outside the confidence band.
	var city, org rdf.IRI
	found := false
	for i := 0; i < s.Opts.People && !found; i++ {
		p := s.Person(i)
		var pc, po rdf.IRI
		s.G.ForEach(func(tr rdf.Triple) bool {
			if tr.S == p && tr.P == workload.PredLivesIn {
				pc = tr.O
			}
			if tr.S == p && tr.P == workload.PredWorksAt {
				po = tr.O
			}
			return true
		})
		n := 0
		for j := 0; j < s.Opts.People; j++ {
			q := s.Person(j)
			if countPair(s.G, q, pc, po) {
				n++
			}
		}
		if n >= 1 && n <= 3 {
			city, org, found = pc, po, true
		}
	}
	if !found {
		t.Skip("no suitably selective (city, org) pair in this seed")
	}
	q := parser.MustParsePattern(fmt.Sprintf(
		"(?x livesIn %s) AND (?x worksAt %s) AND (?x knows ?y) AND (?y name ?n) AND (?x type Person)",
		city, org))
	pr := PrepareOpts(s.G, q, PlannerOptions{})
	prof := obs.NewNode("query", "")
	got, err := EvalPreparedOpts(s.G, pr, nil, Options{Parallel: 1, Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sparql.Eval(s.G, q)) {
		t.Fatal("adaptive answer differs from reference")
	}
	snap := prof.Snapshot()
	if n := snap.Sum(func(p *obs.Profile) int64 { return p.Replans }); n < 1 {
		t.Errorf("expected >=1 replan on a collapsed prefix, got %d", n)
	}
	if !hasOp(snap, "bindjoin") {
		t.Error("expected a bindjoin node on the profile (tiny prefix vs large predicate)")
	}
}

func countPair(g *rdf.Graph, person, city, org rdf.IRI) bool {
	lp, wp := workload.PredLivesIn, workload.PredWorksAt
	return g.CountMatch(&person, &lp, &city) > 0 && g.CountMatch(&person, &wp, &org) > 0
}

func hasOp(p *obs.Profile, op string) bool {
	if p == nil {
		return false
	}
	if p.Op == op {
		return true
	}
	for _, c := range p.Children {
		if hasOp(c, op) {
			return true
		}
	}
	return false
}
