package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// TestEvalMatchesReferenceQuick is the planner's core guarantee: for
// random NS-SPARQL patterns and graphs, the optimized evaluator returns
// exactly the reference answer set.
func TestEvalMatchesReferenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		want := sparql.Eval(g, p)
		got := Eval(g, p)
		if !got.Equal(want) {
			t.Logf("pattern %s\noptimized %s\ngraph\n%s\nwant %v\ngot  %v",
				p, Optimize(g, p), g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePreservesSemanticsQuick(t *testing.T) {
	// Optimize alone (evaluated by the *reference* evaluator) must also
	// preserve answers — this isolates rewriting bugs from algebra bugs.
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		if !sparql.Eval(g, p).Equal(sparql.Eval(g, Optimize(g, p))) {
			t.Logf("pattern %s\noptimized %s\ngraph\n%s", p, Optimize(g, p), g)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalConstructMatchesReference(t *testing.T) {
	g := workload.Figure3()
	q := parser.MustParseConstruct(`CONSTRUCT {(?n affiliated_to ?u), (?n email ?e)}
		WHERE ((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	if !EvalConstruct(g, q).Equal(sparql.EvalConstruct(g, q)) {
		t.Fatal("planner CONSTRUCT differs from reference")
	}
}

func TestFilterPushdown(t *testing.T) {
	g := workload.University(workload.UniversityOpts{People: 50, OptionalPct: 50, Seed: 3})
	p := parser.MustParsePattern(
		`((?p name ?n) AND (?p works_at ?u)) FILTER (?u = university_0 && bound(?n))`)
	opt := Optimize(g, p)
	// The conjuncts must have been pushed inside the AND: the top node
	// is no longer a Filter.
	if _, isFilter := opt.(sparql.Filter); isFilter {
		t.Fatalf("filter not pushed down: %s", opt)
	}
	if !sparql.Eval(g, p).Equal(Eval(g, p)) {
		t.Fatal("pushdown changed semantics")
	}
}

func TestFilterNotPushedWhenUnsafe(t *testing.T) {
	// ¬bound over an optional variable must stay at the top: pushing it
	// into the OPT's left side would change semantics.
	g := workload.Figure2G2()
	p := parser.MustParsePattern(
		`((?X was_born_in Chile) OPT (?X email ?Y)) FILTER (!(bound(?Y)))`)
	opt := Optimize(g, p)
	if _, isFilter := opt.(sparql.Filter); !isFilter {
		t.Fatalf("unsafe filter was pushed: %s", opt)
	}
	if !sparql.Eval(g, p).Equal(Eval(g, p)) {
		t.Fatal("semantics changed")
	}
}

func TestJoinOrdering(t *testing.T) {
	// The selective triple pattern (?p name Name_3) should be joined
	// before the broad (?p ?r ?x) one.
	g := workload.University(workload.UniversityOpts{People: 100, OptionalPct: 50, Seed: 4})
	p := parser.MustParsePattern(`(?p ?r ?x) AND (?p name Name_3)`)
	opt := Optimize(g, p).(sparql.And)
	if Estimate(g, opt.L) > Estimate(g, opt.R) {
		// With two operands, the chain is L then R; L must be the
		// smaller estimate.
		t.Fatalf("join order not by selectivity: %s", opt)
	}
	if !sparql.Eval(g, p).Equal(Eval(g, p)) {
		t.Fatal("reordering changed semantics")
	}
}

func TestEstimate(t *testing.T) {
	g := rdf.FromTriples(
		rdf.T("a", "p", "x"), rdf.T("b", "p", "y"), rdf.T("c", "q", "z"),
	)
	tp := func(s string) sparql.Pattern { return parser.MustParsePattern(s) }
	if got := Estimate(g, tp(`(?s p ?o)`)); got != 2 {
		t.Fatalf("Estimate(?s p ?o) = %v", got)
	}
	if got := Estimate(g, tp(`(?s ?p ?o)`)); got != 3 {
		t.Fatalf("Estimate(?s ?p ?o) = %v", got)
	}
	if got := Estimate(g, tp(`(?s zzz ?o)`)); got != 0 {
		t.Fatalf("Estimate of unmatched predicate = %v", got)
	}
	if got := Estimate(g, tp(`(?s p ?o) UNION (?s q ?o)`)); got != 3 {
		t.Fatalf("Estimate of union = %v", got)
	}
}

func TestCountMatchAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := workload.RandomGraph(rng, 60, nil)
	iris := []rdf.IRI{"a", "b", "c", "p", "q", "zzz"}
	for mask := 0; mask < 8; mask++ {
		for trial := 0; trial < 20; trial++ {
			var s, p, o *rdf.IRI
			if mask&1 != 0 {
				i := iris[rng.Intn(len(iris))]
				s = &i
			}
			if mask&2 != 0 {
				i := iris[rng.Intn(len(iris))]
				p = &i
			}
			if mask&4 != 0 {
				i := iris[rng.Intn(len(iris))]
				o = &i
			}
			n := 0
			g.Match(s, p, o, func(rdf.Triple) bool { n++; return true })
			if got := g.CountMatch(s, p, o); got != n {
				t.Fatalf("CountMatch mask=%b: got %d, want %d", mask, got, n)
			}
		}
	}
}

// TestEvalStringMatchesEvalQuick pins the E20 ablation baseline: the
// string-mapping planner path and the row-engine path must agree.
func TestEvalStringMatchesEvalQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		return EvalString(g, p).Equal(Eval(g, p))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
