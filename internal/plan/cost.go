// Cost model of planner v2.  The sorted permutation store answers
// exact pattern cardinalities in O(log n) (rdf.Store.CountMatch), so
// leaf estimates are exact; join estimates combine them with
// distinct-value upper bounds in the classic System-R style:
//
//	|L ⋈ R| ≈ |L|·|R| · ∏_{v ∈ var(L)∩var(R)} 1 / max(dv_L(v), dv_R(v))
//
// where dv_X(v) is an upper bound on the distinct values v takes in X
// (a leaf binds at most |X| distinct values per variable; a join keeps
// the smaller side's bound, capped by the result cardinality).  The
// chain cost metric is C_out: the sum of leaf scan costs plus every
// intermediate join cardinality — the quantity the DP ordering
// minimizes and the re-optimizer re-checks against observed rows.
//
// The estimator memoizes every index probe, so preparing a k-pattern
// query costs O(k) CountMatch calls no matter how many orders the DP
// considers (the probe-count test pins this).
package plan

import (
	"math"
	"sync"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// estimator is a memoizing cardinality oracle for one (graph, epoch).
// Triple-pattern counts come from the exact sorted indexes and are
// memoized by pattern value; composite estimates are memoized by
// pattern text.  The mutex makes it safe for the adaptive executor to
// re-plan concurrently running queries that share one cached plan.
type estimator struct {
	g rdf.Store

	mu      sync.Mutex
	triples map[sparql.TriplePattern]float64
	comps   map[string]float64
	probes  int
}

func newEstimator(g rdf.Store) *estimator {
	return &estimator{
		g:       g,
		triples: make(map[sparql.TriplePattern]float64),
		comps:   make(map[string]float64),
	}
}

// Probes returns how many CountMatch index probes the estimator has
// issued (memo misses only).
func (e *estimator) Probes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.probes
}

// tripleCount returns |⟦t⟧_G| (ignoring repeated-variable filtering,
// which only lowers it): an exact index count, memoized.
func (e *estimator) tripleCount(t sparql.TriplePattern) float64 {
	e.mu.Lock()
	if c, ok := e.triples[t]; ok {
		e.mu.Unlock()
		return c
	}
	e.probes++
	e.mu.Unlock()
	var s, p, o *rdf.IRI
	if !t.S.IsVar() {
		i := t.S.IRI()
		s = &i
	}
	if !t.P.IsVar() {
		i := t.P.IRI()
		p = &i
	}
	if !t.O.IsVar() {
		i := t.O.IRI()
		o = &i
	}
	c := float64(e.g.CountMatch(s, p, o))
	e.mu.Lock()
	e.triples[t] = c
	e.mu.Unlock()
	return c
}

// estimate mirrors the exported Estimate's structural formulas, with
// memoization on top (identical values, O(k) probes).
func (e *estimator) estimate(p sparql.Pattern) float64 {
	if t, ok := p.(sparql.TriplePattern); ok {
		return e.tripleCount(t)
	}
	key := p.String()
	e.mu.Lock()
	if c, ok := e.comps[key]; ok {
		e.mu.Unlock()
		return c
	}
	e.mu.Unlock()
	var c float64
	switch q := p.(type) {
	case sparql.And:
		l, r := e.estimate(q.L), e.estimate(q.R)
		// Crude: assume the join keeps the smaller side's cardinality
		// scaled by a fan-out of the larger's density.
		if l < r {
			c = l * (1 + r/float64(e.g.Len()+1))
		} else {
			c = r * (1 + l/float64(e.g.Len()+1))
		}
	case sparql.Union:
		c = e.estimate(q.L) + e.estimate(q.R)
	case sparql.Opt:
		c = e.estimate(q.L) * 1.5
	case sparql.Filter:
		c = e.estimate(q.P) / 2
	case sparql.Select:
		c = e.estimate(q.P)
	case sparql.NS:
		c = e.estimate(q.P)
	default:
		// Unknown operator: assume the worst (whole-graph cardinality)
		// rather than crashing the planner on a malformed plan.
		c = float64(e.g.Len() + 1)
	}
	e.mu.Lock()
	e.comps[key] = c
	e.mu.Unlock()
	return c
}

// dvMap is the per-variable distinct-value upper bound of one
// (sub-)plan.
type dvMap map[sparql.Var]float64

// leafDV builds the distinct-value bounds of a chain operand: each of
// its variables takes at most |operand| distinct values.
func leafDV(vars []sparql.Var, card float64) dvMap {
	dv := make(dvMap, len(vars))
	for _, v := range vars {
		dv[v] = math.Max(card, 1)
	}
	return dv
}

// joinCard estimates |L ⋈ R| and the joined plan's distinct-value
// bounds.  Operands with no shared variable are a cross product.
func joinCard(cardL, cardR float64, dvL, dvR dvMap) (float64, dvMap) {
	out := cardL * cardR
	for v, dl := range dvL {
		if dr, ok := dvR[v]; ok {
			out /= math.Max(math.Max(dl, dr), 1)
		}
	}
	dv := make(dvMap, len(dvL)+len(dvR))
	for v, dl := range dvL {
		if dr, ok := dvR[v]; ok {
			dv[v] = math.Min(dl, dr)
		} else {
			dv[v] = dl
		}
	}
	for v, dr := range dvR {
		if _, ok := dvL[v]; !ok {
			dv[v] = dr
		}
	}
	for v, d := range dv {
		if d > out {
			dv[v] = math.Max(out, 1)
		}
	}
	return out, dv
}

// hashCostFactor weights the hash-table build against a plain scan of
// the same rows (hashing, collision chains, allocation).
const hashCostFactor = 1.2

// hashJoinCost models JoinB: scan both sides, build a chain index on
// the smaller, probe with the larger.
func hashJoinCost(nl, nr float64) float64 {
	return nl + nr + hashCostFactor*math.Min(nl, nr) + math.Max(nl, nr)
}

// bindProbeCost is the modeled cost of one index probe of a bind
// join (sorted-index binary search plus per-probe setup), relative to
// the unit cost of streaming one row through a scan.
const bindProbeCost = 16

// bindJoinCost models sparql.BindJoinScan: one index probe per
// accumulator row.  Matched rows cost the same under every strategy
// (they all emit the join output), so they cancel out of the
// comparison and only the probe term remains.
func bindJoinCost(nl float64) float64 {
	return nl * bindProbeCost
}

// mergeJoinCost models tryMergeScanJoin: scan both sides (the store
// emits them pre-sorted, so there is no sort term), then one linear
// run-alignment pass over both.  Under these models merge dominates
// hash whenever both sides are non-empty — aligning pre-sorted runs
// never loses to hashing the same rows — so the cost gate agrees with
// the old structural gate on the binary choice; its value is that the
// DP ordering *seeks out* merge-eligible adjacencies via this
// discount.
func mergeJoinCost(nl, nr float64) float64 {
	return 2 * (nl + nr)
}
