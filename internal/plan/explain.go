// Plan explanation: the planner's decisions, recorded on the Prepared
// plan and surfaced through nsserve's profile=1 responses and `nsq
// -stats`.  Everything here is immutable after Prepare — runtime
// counters (replans, merge runs) live in the obs profile instead, so
// one cached plan can serve concurrent queries.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/sparql"
)

// PlannerVersion tags plans produced by this planner generation; it is
// part of nsserve's plan-cache key, so upgrading the planner (or
// flipping its options) can never serve a stale plan shape.
const PlannerVersion = 2

// PlannerOptions selects the planning algorithm.  The zero value is
// the production default: DP join ordering with cost-gated join
// strategies and adaptive mid-query re-optimization.
type PlannerOptions struct {
	// Greedy forces the v1 greedy ordering heuristic with the purely
	// structural merge-join gate and no re-optimization — the ablation
	// baseline.
	Greedy bool
	// NoReplan keeps the v2 ordering but disables the adaptive
	// executor's mid-query re-planning.
	NoReplan bool
	// DPMaxPatterns is the connected-component size above which DP
	// ordering falls back to greedy (0 = DefaultDPMaxPatterns).
	DPMaxPatterns int
	// ReplanFactor is the observed/estimated cardinality drift ratio
	// that triggers a re-plan (0 = DefaultReplanFactor).
	ReplanFactor float64
}

func (po PlannerOptions) dpMax() int {
	if po.DPMaxPatterns <= 0 {
		return DefaultDPMaxPatterns
	}
	return po.DPMaxPatterns
}

func (po PlannerOptions) replanFactor() float64 {
	if po.ReplanFactor <= 0 {
		return DefaultReplanFactor
	}
	return po.ReplanFactor
}

func (po PlannerOptions) name() string {
	if po.Greedy {
		return "greedy"
	}
	return "dp"
}

// CacheTag renders the options (plus the planner version) as a short
// string for plan-cache keys: two queries planned under different
// planner configurations must never share a cache entry.
func (po PlannerOptions) CacheTag() string {
	return fmt.Sprintf("v%d:%s:replan=%t:dpmax=%d:factor=%g",
		PlannerVersion, po.name(), !po.NoReplan && !po.Greedy, po.dpMax(), po.replanFactor())
}

// ScanChoice records the index permutation one triple pattern scans —
// the leading constants select it (see rdf.Store.MatchIDs) — plus the
// exact scan cardinality the planner ordered by.
type ScanChoice struct {
	Pattern string  `json:"pattern"`
	Index   string  `json:"index"` // "SPO" | "POS" | "OSP"
	Est     float64 `json:"est"`
}

// JoinChoice records the strategy decision for one binary node whose
// operands are both index scans (the nodes where merge vs hash is a
// real choice).
type JoinChoice struct {
	Op       string  `json:"op"` // "and" | "opt"
	Left     string  `json:"left"`
	Right    string  `json:"right"`
	Strategy string  `json:"strategy"` // "merge" | "hash"
	Est      float64 `json:"est"`      // estimated join output
}

// Explain is the recorded plan: what the planner chose and why a
// reader should believe it.  Serialized as the "plan" block of
// profile=1 responses.
type Explain struct {
	Planner      string  `json:"planner"` // "dp" | "greedy"
	Version      int     `json:"version"`
	Estimate     float64 `json:"estimate"`
	Probes       int     `json:"probes"` // index probes during Prepare
	WellDesigned bool    `json:"well_designed"`
	Adaptive     bool    `json:"adaptive"` // adaptive chain executor armed
	// Staged marks the plan eligible for morsel-style staged parallel
	// execution: when the evaluator routes it to the parallel engine
	// (workers > 1, estimate over the cutover) the chain runs stage by
	// stage with drift checkpoints instead of as a static tree, unless
	// Options.NoStaged forces the tree.  Always equal to Adaptive
	// today (both require an armed chain) but recorded separately so
	// the decision shows up in Explain JSON.
	Staged    bool         `json:"staged"`
	JoinOrder []ScanChoice `json:"join_order,omitempty"`
	Joins     []JoinChoice `json:"joins,omitempty"`
}

// Summary renders the plan as indented text for `nsq -stats`.
func (ex *Explain) Summary() string {
	if ex == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan planner=%s version=%d est=%g probes=%d well_designed=%t adaptive=%t staged=%t\n",
		ex.Planner, ex.Version, ex.Estimate, ex.Probes, ex.WellDesigned, ex.Adaptive, ex.Staged)
	for _, s := range ex.JoinOrder {
		fmt.Fprintf(&sb, "  scan %s index=%s est=%g\n", s.Pattern, s.Index, s.Est)
	}
	for _, j := range ex.Joins {
		fmt.Fprintf(&sb, "  %s %s: %s vs %s est=%g\n", j.Op, j.Strategy, j.Left, j.Right, j.Est)
	}
	return sb.String()
}

// IndexFor names the permutation the sorted store scans for a triple
// pattern, from its constant positions (the mirror of the store's
// chooseIndex contract: S or S,P or none → SPO; P or P,O → POS; O or
// S,O → OSP).
func IndexFor(t sparql.TriplePattern) string {
	cbits := 0
	if !t.S.IsVar() {
		cbits |= 1
	}
	if !t.P.IsVar() {
		cbits |= 2
	}
	if !t.O.IsVar() {
		cbits |= 4
	}
	switch cbits {
	case 0b010, 0b110:
		return "POS"
	case 0b100, 0b101:
		return "OSP"
	default: // none, S, S|P, all
		return "SPO"
	}
}

// wellDesigned evaluates the analysis package's notion on the
// fragments where it is defined: well designedness for SPARQL[AOF],
// well-designed unions for SPARQL[AUOF], false elsewhere.  The flag
// marks plans eligible for the cheaper well-designed OPT strategies
// (Mengel & Skritek); routing on it is future work, recording it is
// not.
func wellDesigned(p sparql.Pattern) bool {
	if sparql.InFragment(p, sparql.FragmentAOF) {
		ok, err := analysis.IsWellDesigned(p)
		return err == nil && ok
	}
	if sparql.InFragment(p, sparql.FragmentAUOF) {
		ok, err := analysis.IsWellDesignedUnion(p)
		return err == nil && ok
	}
	return false
}

// buildExplain assembles the plan record and the engine hints for an
// optimized pattern: scan choices in execution order, and a cost-gated
// merge/hash decision for every binary node over two index scans.
func buildExplain(e *estimator, opt sparql.Pattern, po PlannerOptions, adaptive bool) (*Explain, *sparql.EvalHints) {
	ex := &Explain{
		Planner:      po.name(),
		Version:      PlannerVersion,
		Estimate:     e.estimate(opt),
		WellDesigned: wellDesigned(opt),
		Adaptive:     adaptive,
		Staged:       adaptive,
	}
	for _, t := range sparql.TriplePatterns(opt) {
		ex.JoinOrder = append(ex.JoinOrder, ScanChoice{
			Pattern: t.String(),
			Index:   IndexFor(t),
			Est:     e.tripleCount(t),
		})
	}
	hints := &sparql.EvalHints{Join: make(map[string]sparql.JoinStrategy)}
	collectJoins(e, opt, ex, hints)
	ex.Probes = e.Probes()
	if po.Greedy || len(hints.Join) == 0 {
		// The v1 baseline keeps the structural gate (hints off).
		hints = nil
	}
	return ex, hints
}

func collectJoins(e *estimator, p sparql.Pattern, ex *Explain, hints *sparql.EvalHints) {
	switch q := p.(type) {
	case sparql.And, sparql.Opt:
		var l, r sparql.Pattern
		op := "and"
		if a, ok := q.(sparql.And); ok {
			l, r = a.L, a.R
		} else {
			o := q.(sparql.Opt)
			l, r = o.L, o.R
			op = "opt"
		}
		lt, lOK := l.(sparql.TriplePattern)
		rt, rOK := r.(sparql.TriplePattern)
		if lOK && rOK {
			nl, nr := e.tripleCount(lt), e.tripleCount(rt)
			card, _ := joinCard(nl, nr, leafDV(sparql.Vars(lt), nl), leafDV(sparql.Vars(rt), nr))
			strategy := sparql.StrategyHash
			lv, okL := sparql.ScanLeadVar(lt)
			rv, okR := sparql.ScanLeadVar(rt)
			if okL && okR && lv == rv && mergeJoinCost(nl, nr) <= hashJoinCost(nl, nr) {
				strategy = sparql.StrategyMerge
			}
			hints.Join[q.(sparql.Pattern).String()] = strategy
			ex.Joins = append(ex.Joins, JoinChoice{
				Op: op, Left: lt.String(), Right: rt.String(),
				Strategy: strategy.String(), Est: card,
			})
		}
		collectJoins(e, l, ex, hints)
		collectJoins(e, r, ex, hints)
	case sparql.Union:
		collectJoins(e, q.L, ex, hints)
		collectJoins(e, q.R, ex, hints)
	case sparql.Filter:
		collectJoins(e, q.P, ex, hints)
	case sparql.Select:
		collectJoins(e, q.P, ex, hints)
	case sparql.NS:
		collectJoins(e, q.P, ex, hints)
	}
}
