// Adaptive chain execution (mid-query re-optimization).
//
// When the whole optimized pattern is an AND chain, the engine does
// not have to commit to the planner's join order: the chain driver
// (runChain) evaluates the chain one operand at a time, compares the
// accumulated row count against the planner's prefix estimates
// (chainCards), and when the observed cardinality drifts past
// ReplanFactor× the estimate it re-orders the *remaining* operands
// against the observed cardinality before continuing.  Estimates are
// exact for leaf scans but join selectivities are only modeled, so a
// mid-chain blow-up (or an unexpectedly empty prefix) is exactly the
// case a static order gets wrong.
//
// The driver is engine-agnostic: it is parameterized by chainOps, the
// executor primitives of one engine.  evalAdaptiveChain instantiates
// it with the serial row operators; the staged parallel executor
// (staged.go) instantiates it with the parallel pool's morsel
// operators, making the same drift checkpoints, re-plans, bind-join
// gate and empty-prefix short-circuit available to both engines.
// Replans are visible as `replans=N` on the query profile node and
// aggregate into the server's planner_replans counter.
package plan

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// adaptiveArmed reports whether the prepared plan carries enough chain
// state for mid-query re-optimization: a v2 plan over an AND chain
// long enough that a drift checkpoint can still reorder ≥2 remaining
// operands.
func (pr Prepared) adaptiveArmed() bool {
	return !pr.popts.Greedy && !pr.popts.NoReplan && len(pr.chain) >= 3 && pr.estr != nil
}

// chainOps abstracts the executor primitives the chain driver drives:
// the serial row engine and the staged parallel engine plug in here.
// staged marks the parallel instantiation, which counts each join step
// as one morsel fan-out stage and records a span per stage.
type chainOps struct {
	evalOperand   func(p sparql.Pattern, parent *obs.Node) (*sparql.RowSet, error)
	tryMergeFirst func(l, r sparql.Pattern, node *obs.Node) (*sparql.RowSet, bool, error)
	join          func(acc, r *sparql.RowSet, node *obs.Node) (*sparql.RowSet, error)
	bindJoin      func(acc *sparql.RowSet, t sparql.TriplePattern, node *obs.Node) (*sparql.RowSet, error)
	staged        bool
}

// serialChainOps builds the chain driver's primitives over the serial
// row engine.
func serialChainOps(g rdf.Store, sc *sparql.VarSchema, b *sparql.Budget, hints *sparql.EvalHints) chainOps {
	return chainOps{
		evalOperand: func(p sparql.Pattern, parent *obs.Node) (*sparql.RowSet, error) {
			return sparql.EvalPatternRows(g, p, sc, b, parent, hints)
		},
		tryMergeFirst: func(l, r sparql.Pattern, node *obs.Node) (*sparql.RowSet, bool, error) {
			return sparql.TryMergeScanJoin(g, l, r, sc, b, node, false)
		},
		join: func(acc, r *sparql.RowSet, node *obs.Node) (*sparql.RowSet, error) {
			node.AddRowsIn(int64(acc.Len() + r.Len()))
			return acc.JoinB(r, b)
		},
		bindJoin: func(acc *sparql.RowSet, t sparql.TriplePattern, node *obs.Node) (*sparql.RowSet, error) {
			return sparql.BindJoinScan(g, acc, t, b, node)
		},
	}
}

// evalAdaptiveChain runs the prepared AND chain with drift-triggered
// re-planning on the serial engine.  ok = false means the chain's
// schema exceeds the row engine's width and nothing was evaluated (the
// caller falls back to the string algebra, like the other row-engine
// entry points).
func evalAdaptiveChain(g rdf.Store, pr Prepared, b *sparql.Budget, prof *obs.Node, span *obs.Span) (*sparql.RowSet, bool, error) {
	sc, ok := sparql.SchemaFor(pr.pattern)
	if !ok {
		return nil, false, nil
	}
	return runInstrumentedChain(pr, serialChainOps(g, sc, b, pr.hints), "adaptive", b, prof, span)
}

// runInstrumentedChain wraps runChain with the driver's profile node
// ("and" with the executor name as detail) and root counters, shared
// by the serial and staged instantiations.
func runInstrumentedChain(pr Prepared, ops chainOps, detail string, b *sparql.Budget, prof *obs.Node, span *obs.Span) (*sparql.RowSet, bool, error) {
	node := prof.Child("and", detail)
	start := time.Now()
	steps0, rows0, bytes0 := b.Counters()
	rs, err := runChain(pr, ops, node, span)
	if node != nil {
		node.AddWall(time.Since(start))
		steps1, rows1, bytes1 := b.Counters()
		node.AddBudget(steps1-steps0, rows1-rows0, bytes1-bytes0)
		if err == nil {
			node.AddRowsOut(int64(rs.Len()))
		}
	}
	if err != nil {
		return nil, true, err
	}
	return rs, true, nil
}

// runChain is the engine-agnostic chain driver: evaluate operands in
// the planner's order, checkpoint observed cardinality against the
// prefix estimates, re-plan the tail on drift, and pick bind vs hash
// join per step against the observed accumulator size.
func runChain(pr Prepared, ops chainOps, node *obs.Node, span *obs.Span) (*sparql.RowSet, error) {
	factor := pr.popts.replanFactor()
	chain := append([]sparql.Pattern(nil), pr.chain...)
	targets := append([]float64(nil), pr.chainEsts...)
	e := pr.estr

	var (
		acc *sparql.RowSet
		err error
		i   int
	)
	// First pair: honor the planner's merge choice with the pair fast
	// path (it evaluates both scans itself); otherwise evaluate the
	// first operand alone.
	first := sparql.And{L: chain[0], R: chain[1]}
	if pr.hints.JoinStrategyFor(first) != sparql.StrategyHash {
		if rs, handled, merr := ops.tryMergeFirst(chain[0], chain[1], node); handled {
			if merr != nil {
				return nil, merr
			}
			acc, i = rs, 2
			recordStage(ops, node, span, 1, "merge", acc)
		}
	}
	if acc == nil {
		acc, err = ops.evalOperand(chain[0], node)
		if err != nil {
			return nil, err
		}
		i = 1
	}
	// accDV tracks the distinct-value bounds of the accumulated prefix
	// so re-planning can estimate remaining joins from the observed
	// cardinality.
	accDV := prefixDV(e, chain[:i], float64(acc.Len()))
	for ; i < len(chain); i++ {
		// Drift checkpoint: the chain is all inner joins, so an empty
		// prefix decides the query — return before evaluating (on the
		// staged engine: before dispatching morsels for) the tail.
		if acc.Len() == 0 {
			if span != nil {
				span.SetAttr("empty_prefix_at", i)
			}
			return acc, nil
		}
		obsCard := float64(acc.Len())
		if est := targets[i-1]; len(chain)-i >= 2 && drifted(obsCard, est, factor) {
			rsp := span.StartChild("replan", "")
			rsp.SetAttr("position", i)
			rsp.SetAttr("observed", obsCard)
			rsp.SetAttr("estimate", est)
			rsp.SetAttr("remaining", len(chain)-i)
			replanTail(e, chain, targets, i, obsCard, accDV)
			rsp.End()
			node.AddReplans(1)
		}
		est := e.estimate(chain[i])
		// Join-strategy choice against the OBSERVED cardinality: when
		// the accumulated prefix is small relative to the next operand's
		// extension, probing the index per row (bind join) beats scanning
		// and hashing the whole extension — the choice no static plan can
		// make, because it depends on the prefix's actual row count.
		if t, isTriple := chain[i].(sparql.TriplePattern); isTriple &&
			bindJoinCost(obsCard) < hashJoinCost(obsCard, est) {
			acc, err = ops.bindJoin(acc, t, node)
			if err != nil {
				return nil, err
			}
			recordStage(ops, node, span, i, "bind", acc)
		} else {
			r, err := ops.evalOperand(chain[i], node)
			if err != nil {
				return nil, err
			}
			acc, err = ops.join(acc, r, node)
			if err != nil {
				return nil, err
			}
			recordStage(ops, node, span, i, "hash", acc)
		}
		_, accDV = joinCardInto(float64(acc.Len()), accDV, leafDV(sparql.Vars(chain[i]), est))
	}
	return acc, nil
}

// recordStage accounts one completed morsel fan-out stage of the
// staged parallel driver: a stage counter on the profile node and a
// span carrying the stage's position, join strategy and output
// cardinality.  Serial instantiations record nothing (their join steps
// are not fan-outs).
func recordStage(ops chainOps, node *obs.Node, span *obs.Span, position int, strategy string, acc *sparql.RowSet) {
	if !ops.staged {
		return
	}
	node.AddStages(1)
	if span != nil {
		ssp := span.StartChild("stage", strategy)
		ssp.SetAttr("position", position)
		ssp.SetAttr("strategy", strategy)
		ssp.SetAttr("rows", acc.Len())
		ssp.End()
	}
}

// drifted reports whether the observed prefix cardinality left the
// planner's confidence band [est/factor, est·factor] (±1 row of slack
// so tiny prefixes never trigger).
func drifted(obs, est, factor float64) bool {
	return obs > est*factor+1 || obs*factor+1 < est
}

// prefixDV rebuilds the distinct-value bounds of an evaluated prefix,
// capped at the observed cardinality.
func prefixDV(e *estimator, prefix []sparql.Pattern, obs float64) dvMap {
	dv := make(dvMap)
	for _, p := range prefix {
		est := e.estimate(p)
		for _, v := range sparql.Vars(p) {
			if cur, ok := dv[v]; !ok || est < cur {
				dv[v] = est
			}
		}
	}
	for v, d := range dv {
		if d > obs {
			dv[v] = maxf(obs, 1)
		}
	}
	return dv
}

// joinCardInto re-caps dv bounds after a join whose output size is
// already known (observed), merging in the new operand's bounds.
func joinCardInto(obs float64, dvL, dvR dvMap) (float64, dvMap) {
	dv := make(dvMap, len(dvL)+len(dvR))
	for v, d := range dvL {
		dv[v] = d
	}
	for v, d := range dvR {
		if cur, ok := dv[v]; !ok || d < cur {
			dv[v] = d
		}
	}
	for v, d := range dv {
		if d > obs {
			dv[v] = maxf(obs, 1)
		}
	}
	return obs, dv
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// replanTail greedily re-orders chain[i:] against the observed prefix
// cardinality: at each step it takes the operand whose estimated join
// output with the current accumulator is smallest (cross products cost
// their full product, so connected operands win naturally), then
// rewrites the remaining prefix targets so the next checkpoints
// compare against the new plan.
func replanTail(e *estimator, chain []sparql.Pattern, targets []float64, i int, obs float64, accDV dvMap) {
	rest := chain[i:]
	type tailCand struct {
		p    sparql.Pattern
		est  float64
		vars []sparql.Var
	}
	cands := make([]tailCand, len(rest))
	for j, p := range rest {
		cands[j] = tailCand{p: p, est: e.estimate(p), vars: sparql.Vars(p)}
	}
	card, dv := obs, accDV
	used := make([]bool, len(cands))
	for k := range rest {
		best, bestOut := -1, 0.0
		var bestDV dvMap
		for j, c := range cands {
			if used[j] {
				continue
			}
			out, ndv := joinCard(card, c.est, dv, leafDV(c.vars, c.est))
			if best == -1 || out < bestOut || (out == bestOut && c.est < cands[best].est) {
				best, bestOut, bestDV = j, out, ndv
			}
		}
		used[best] = true
		chain[i+k] = cands[best].p
		card, dv = bestOut, bestDV
		targets[i+k] = card
	}
}
