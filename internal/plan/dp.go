// Dynamic-programming join ordering for AND chains (planner v2).
//
// The chain's operands split into variable-connected components; each
// component of at most DPMaxPatterns operands is ordered by an exact
// dynamic program over its *connected subsets* (the DPccp essence:
// subplans that would be cross products are never enumerated), larger
// components fall back to the v1 greedy heuristic.  Plans are
// left-deep — the row engine folds a chain left to right, and the
// adaptive executor re-plans a left-deep tail — and the cost metric is
// C_out (see cost.go), with merge-eligible first pairs discounted so
// the DP prefers orders the sort-merge fast path can execute.
package plan

import (
	"math"
	"sort"

	"repro/internal/sparql"
)

// DefaultDPMaxPatterns is the component size above which the DP
// (2^n subsets) yields to the greedy heuristic.
const DefaultDPMaxPatterns = 12

// DefaultReplanFactor is the observed/estimated cardinality ratio
// beyond which the adaptive executor re-plans the remaining chain.
const DefaultReplanFactor = 4.0

// mergeDiscount scales the first join's output term when the pair is
// merge-eligible (both operands index scans sharing their leading sort
// variable): the merge path skips the hash table, so such a start is
// cheaper than its cardinality alone suggests.
const mergeDiscount = 0.7

// cand is one chain operand with its planning metadata.
type cand struct {
	p    sparql.Pattern
	est  float64
	vars []sparql.Var
	vset map[sparql.Var]struct{}
	// lead is the leading sort variable of the operand's index scan
	// ("" when the operand is not a merge-qualifying triple scan).
	lead sparql.Var
}

func buildCands(e *estimator, ops []sparql.Pattern) []cand {
	cands := make([]cand, len(ops))
	for i, op := range ops {
		vars := sparql.Vars(op)
		vset := make(map[sparql.Var]struct{}, len(vars))
		for _, v := range vars {
			vset[v] = struct{}{}
		}
		c := cand{p: op, est: e.estimate(op), vars: vars, vset: vset}
		if t, ok := op.(sparql.TriplePattern); ok {
			if lv, ok := sparql.ScanLeadVar(t); ok {
				c.lead = lv
			}
		}
		cands[i] = c
	}
	return cands
}

func (c *cand) sharesVar(other *cand) bool {
	for v := range c.vset {
		if _, ok := other.vset[v]; ok {
			return true
		}
	}
	return false
}

// mergePair reports whether evaluating a then b as the chain's first
// join qualifies for the sort-merge fast path.
func mergePair(a, b *cand) bool {
	return a.lead != "" && a.lead == b.lead
}

// chainComponents partitions operand indices into variable-connected
// components, each listed in original operand order; the components
// are ordered by (smallest member estimate, original position), which
// reproduces the v1 greedy's "exhaust one component, then jump to the
// globally smallest remaining operand" sequencing.
func chainComponents(cands []cand) [][]int {
	n := len(cands)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		id := len(comps)
		queue := []int{i}
		comp[i] = id
		var members []int
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			members = append(members, j)
			for k := 0; k < n; k++ {
				if comp[k] < 0 && cands[j].sharesVar(&cands[k]) {
					comp[k] = id
					queue = append(queue, k)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.SliceStable(comps, func(a, b int) bool {
		return minEst(cands, comps[a]) < minEst(cands, comps[b])
	})
	return comps
}

func minEst(cands []cand, members []int) float64 {
	m := math.Inf(1)
	for _, i := range members {
		if cands[i].est < m {
			m = cands[i].est
		}
	}
	return m
}

// greedyOrderComponent is the v1 heuristic restricted to one
// component: start from the smallest estimate, then repeatedly take
// the smallest-estimate operand connected to the already-bound
// variables (the component is connected, so one always exists).
func greedyOrderComponent(cands []cand, members []int) []int {
	idx := append([]int(nil), members...)
	sort.SliceStable(idx, func(a, b int) bool { return cands[idx[a]].est < cands[idx[b]].est })
	used := make(map[int]bool, len(idx))
	bound := make(map[sparql.Var]struct{})
	order := make([]int, 0, len(idx))
	take := func(i int) {
		used[i] = true
		order = append(order, i)
		for v := range cands[i].vset {
			bound[v] = struct{}{}
		}
	}
	take(idx[0])
	for len(order) < len(idx) {
		best, bestConnected := -1, false
		for _, i := range idx {
			if used[i] {
				continue
			}
			connected := false
			for v := range cands[i].vset {
				if _, ok := bound[v]; ok {
					connected = true
					break
				}
			}
			if best == -1 || (connected && !bestConnected) ||
				(connected == bestConnected && cands[i].est < cands[best].est) {
				best, bestConnected = i, connected
			}
		}
		take(best)
	}
	return order
}

// dpEntry is one DP state: the best-known left-deep plan for a
// connected subset of the component.
type dpEntry struct {
	cost  float64
	card  float64
	dv    dvMap
	vars  map[sparql.Var]struct{}
	order []int // component-local positions, in join order
}

// dpOrderComponent finds the minimum-C_out left-deep order of one
// connected component by DP over its connected subsets.  Component
// positions are pre-sorted by estimate so that equal-cost plans
// resolve toward starting with the smaller scan (deterministic, and
// it preserves the v1 ordering on two-operand chains, where every
// order has the same C_out).
func dpOrderComponent(cands []cand, members []int) []int {
	n := len(members)
	if n == 1 {
		return members
	}
	pos := append([]int(nil), members...)
	sort.SliceStable(pos, func(a, b int) bool { return cands[pos[a]].est < cands[pos[b]].est })

	entries := make([]*dpEntry, 1<<n)
	for i := 0; i < n; i++ {
		c := &cands[pos[i]]
		entries[1<<i] = &dpEntry{
			cost:  c.est,
			card:  c.est,
			dv:    leafDV(c.vars, c.est),
			vars:  c.vset,
			order: []int{i},
		}
	}
	full := (1 << n) - 1
	for mask := 1; mask <= full; mask++ {
		e := entries[mask]
		if e == nil || mask == full {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			cj := &cands[pos[j]]
			connected := false
			for v := range cj.vset {
				if _, ok := e.vars[v]; ok {
					connected = true
					break
				}
			}
			if !connected {
				// Connected subsets only: within one component, any
				// cross-product subplan is dominated by a connected order.
				continue
			}
			card, dv := joinCard(e.card, cj.est, e.dv, leafDV(cj.vars, cj.est))
			out := card
			if len(e.order) == 1 && mergePair(&cands[pos[e.order[0]]], cj) {
				out *= mergeDiscount
			}
			cost := e.cost + cj.est + out
			next := mask | 1<<j
			if cur := entries[next]; cur == nil || cost < cur.cost-1e-9 {
				vars := make(map[sparql.Var]struct{}, len(e.vars)+len(cj.vset))
				for v := range e.vars {
					vars[v] = struct{}{}
				}
				for v := range cj.vset {
					vars[v] = struct{}{}
				}
				order := make([]int, len(e.order)+1)
				copy(order, e.order)
				order[len(e.order)] = j
				entries[next] = &dpEntry{cost: cost, card: card, dv: dv, vars: vars, order: order}
			}
		}
	}
	best := entries[full]
	if best == nil {
		// Unreachable for a connected component; fail safe to greedy.
		return greedyOrderComponent(cands, members)
	}
	order := make([]int, n)
	for i, j := range best.order {
		order[i] = pos[j]
	}
	return order
}

// chainCards returns the estimated cardinality after each prefix of
// the ordered chain (cross products across component boundaries
// multiply; joinCard handles that as ∏ with no shared variables).
// These are the targets the adaptive executor compares observed rows
// against.
func chainCards(cands []cand, order []int) []float64 {
	out := make([]float64, len(order))
	var card float64
	var dv dvMap
	for i, idx := range order {
		c := &cands[idx]
		if i == 0 {
			card, dv = c.est, leafDV(c.vars, c.est)
		} else {
			card, dv = joinCard(card, c.est, dv, leafDV(c.vars, c.est))
		}
		out[i] = card
	}
	return out
}
