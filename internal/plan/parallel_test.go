package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// forcePar bypasses both parallel gates: four workers regardless of
// GOMAXPROCS, no estimate cutover, and single-row partitions so the
// partitioned operators engage on tiny test inputs.
var forcePar = Options{Parallel: 4, MinParallelEstimate: -1, MinPartition: 1}

// TestEvalOptsParallelMatchesReferenceQuick extends the planner's core
// guarantee to the parallel engine: forced-parallel evaluation returns
// exactly the reference answer set on random patterns × graphs.
func TestEvalOptsParallelMatchesReferenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{Depth: 3})
		g := workload.RandomGraph(rng, rng.Intn(25), nil)
		want := sparql.Eval(g, p)
		got, err := EvalOpts(g, p, nil, forcePar)
		if err != nil {
			t.Logf("pattern %s: parallel eval failed: %v", p, err)
			return false
		}
		if !got.Equal(want) {
			t.Logf("pattern %s\noptimized %s\ngraph\n%s\nwant %v\ngot  %v",
				p, Optimize(g, p), g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAndComponentsSplit checks the connectivity analysis: an AND
// chain over variable-disjoint groups must come out of the optimizer
// as a balanced tree of per-component subplans (so the parallel
// engine can fan the components out), and still evaluate to the
// reference answers.
func TestAndComponentsSplit(t *testing.T) {
	g := workload.RandomGraph(rand.New(rand.NewSource(5)), 30, nil)
	// Three components: {?x}, {?y, ?z}, {?w}.
	p := parser.MustParsePattern(
		"(?x a b) AND (?y p ?z) AND (?z q ?u) AND (?w r c)")
	opt := Optimize(g, p)
	and, ok := opt.(sparql.And)
	if !ok {
		t.Fatalf("optimized root is %T, want And", opt)
	}
	// A balanced tree over 3 components has a component on one side
	// and a two-component And on the other; a serial left-deep chain
	// over all 4 triples would instead nest And three deep on one side
	// with a bare triple at every right child.  Distinguish by
	// checking that both children of the root contain at least one
	// full component (share no variables with each other).
	if shared := sharedVars(and.L, and.R); len(shared) != 0 {
		t.Fatalf("root children share variables %v — components not split", shared)
	}
	want := sparql.Eval(g, p)
	if got := Eval(g, p); !got.Equal(want) {
		t.Fatalf("component plan diverges\ngot: %v\nwant:%v", got, want)
	}
	if got, err := EvalOpts(g, p, nil, forcePar); err != nil || !got.Equal(want) {
		t.Fatalf("parallel component plan diverges (err=%v)\ngot: %v\nwant:%v", err, got, want)
	}
}

func sharedVars(l, r sparql.Pattern) []sparql.Var {
	lv := map[sparql.Var]bool{}
	for _, v := range sparql.Vars(l) {
		lv[v] = true
	}
	var shared []sparql.Var
	for _, v := range sparql.Vars(r) {
		if lv[v] {
			shared = append(shared, v)
		}
	}
	return shared
}

// TestConnectedChainStaysLeftDeep pins the complementary property: a
// fully connected AND chain must not be split — the greedy order
// produces one left-deep component.
func TestConnectedChainStaysLeftDeep(t *testing.T) {
	g := workload.RandomGraph(rand.New(rand.NewSource(6)), 30, nil)
	p := parser.MustParsePattern(
		"(?x a ?y) AND (?y b ?z) AND (?z c ?w)")
	opt := Optimize(g, p)
	and, ok := opt.(sparql.And)
	if !ok {
		t.Fatalf("optimized root is %T, want And", opt)
	}
	if _, leaf := and.R.(sparql.TriplePattern); !leaf {
		t.Fatalf("connected chain not left-deep: right child is %T", and.R)
	}
	want := sparql.Eval(g, p)
	if got := Eval(g, p); !got.Equal(want) {
		t.Fatalf("left-deep plan diverges\ngot: %v\nwant:%v", got, want)
	}
}
