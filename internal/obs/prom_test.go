package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusBasics: counters, the histogram conversion to
// cumulative seconds buckets with a +Inf terminator, and label quoting.
func TestWritePrometheusBasics(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("query", 200, 2*time.Millisecond)
	m.ObserveRequest("query", 200, 30*time.Second) // beyond the last bound → +Inf
	m.ObserveRequest("insert", 500, time.Millisecond)
	m.GovernorTrip()
	snap := m.Snapshot()
	ts := TraceStats{Started: 5, Kept: 2}
	snap.Traces = &ts

	var sb strings.Builder
	WritePrometheus(&sb, snap)
	out := sb.String()

	for _, want := range []string{
		"# TYPE ns_requests_total counter",
		`ns_requests_total{code="200"} 2`,
		`ns_requests_total{code="500"} 1`,
		"ns_governor_trips_total 1",
		"# TYPE ns_request_duration_seconds histogram",
		`ns_request_duration_seconds_bucket{endpoint="query",le="+Inf"} 2`,
		`ns_request_duration_seconds_count{endpoint="query"} 2`,
		"ns_traces_started_total 5",
		"ns_traces_kept_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: every query bucket at or above 2.5ms
	// holds the 2ms observation, and the +Inf bucket equals the count.
	if !strings.Contains(out, `ns_request_duration_seconds_bucket{endpoint="query",le="0.0025"} 1`) {
		t.Fatalf("2ms observation missing from the 2.5ms bucket:\n%s", out)
	}
	if !strings.Contains(out, `ns_request_duration_seconds_bucket{endpoint="query",le="10"} 1`) {
		t.Fatalf("cumulative carry into the 10s bucket wrong:\n%s", out)
	}
}

// TestWritePrometheusEscaping: label values pass through the exposition
// escapes.
func TestWritePrometheusEscaping(t *testing.T) {
	if got := lbl("addr", `a"b\c`); got != `addr="a\"b\\c"` {
		t.Fatalf("lbl escaped to %s", got)
	}
	if got := lbl("addr", "x\ny"); got != `addr="x\ny"` {
		t.Fatalf("newline escaped to %s", got)
	}
}

// TestWritePrometheusClusterAndDurable: the optional snapshot blocks
// render with their labels.
func TestWritePrometheusClusterAndDurable(t *testing.T) {
	m := NewMetrics()
	snap := m.Snapshot()
	snap.Durable = &DurableStats{WALRecords: 7, FsyncLatency: HistogramSnapshot{Count: 1, SumUS: 500,
		Buckets: []LatencyBucket{{LeUS: 1000, Count: 1}, {LeUS: -1, Count: 0}}}}
	snap.Cluster = &ClusterStats{
		Queries: 3,
		Shards: []ShardStats{
			{Shard: 0, Addr: "http://s0", State: "healthy", Scans: 9},
			{Shard: 1, Addr: "http://s1", State: "ejected", Scans: 2},
		},
	}
	var sb strings.Builder
	WritePrometheus(&sb, snap)
	out := sb.String()
	for _, want := range []string{
		"ns_durable_wal_records_total 7",
		`ns_durable_fsync_duration_seconds_bucket{le="0.001"} 1`,
		`ns_durable_fsync_duration_seconds_bucket{le="+Inf"} 1`,
		"ns_cluster_queries_total 3",
		`ns_shard_state{shard="0",addr="http://s0"} 1`,
		`ns_shard_state{shard="1",addr="http://s1"} 0`,
		`ns_shard_scans_total{shard="0",addr="http://s0"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWantsPrometheus: negotiation via Accept and the format override;
// a browser's */* stays on JSON.
func TestWantsPrometheus(t *testing.T) {
	req := httptest.NewRequest("GET", "/metrics", nil)
	if WantsPrometheus(req) {
		t.Fatal("no Accept header should default to JSON")
	}
	req.Header.Set("Accept", "*/*")
	if WantsPrometheus(req) {
		t.Fatal("*/* should default to JSON")
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if !WantsPrometheus(req) {
		t.Fatal("a scraper Accept header should negotiate the text view")
	}
	req = httptest.NewRequest("GET", "/metrics?format=prometheus", nil)
	if !WantsPrometheus(req) {
		t.Fatal("format=prometheus should force the text view")
	}
}
