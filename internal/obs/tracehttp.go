package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// TracesHandler serves the /debug/traces endpoint over a Tracer:
//
//	GET /debug/traces           → {"traces":[TraceSummary...]} (newest first)
//	GET /debug/traces?limit=N   → at most N summaries
//	GET /debug/traces?id=<id>   → one stitched TraceSnapshot, or 404
//
// stitch, when non-nil, fetches additional snapshots of the same trace
// from other processes (the coordinator pulls shard-side segments by
// trace ID); its results are merged into the local snapshot before
// serving.  A fetch-by-ID succeeds if either side has the trace.
func TracesHandler(t *Tracer, stitch func(r *http.Request, id string) []TraceSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		id := r.URL.Query().Get("id")
		if id == "" {
			limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
			list := t.List(limit)
			if list == nil {
				list = []TraceSummary{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]any{"traces": list})
			return
		}
		snap, found := t.Get(id)
		if stitch != nil {
			for _, remote := range stitch(r, id) {
				if !found {
					snap = TraceSnapshot{TraceID: id}
					found = true
				}
				snap.Merge(remote)
			}
		}
		if !found {
			http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
