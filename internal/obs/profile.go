// Package obs is the engine's observability layer: per-query execution
// profiles (a tree of per-operator counters collected while the row
// engine evaluates) and process-wide server metrics (request counts,
// latency histograms, gauges) for nsserve's /metrics endpoint.
//
// The paper's complexity map (Theorems 7.1–7.4) says NS-SPARQL cost is
// dominated by pattern shape: evaluation is DP-complete already for
// SPARQL[AUF] and P^NP_∥-complete in general, so two queries of the
// same byte length can differ by orders of magnitude in work.  A
// production service therefore needs per-operator visibility — how
// many rows each AND/OPT/NS node produced, how much NS pruned, where
// the budget went — to diagnose the hard cases.  This package is that
// visibility, engineered to cost nothing when it is off:
//
//   - Every method on a nil *Node is a no-op, so the uninstrumented
//     evaluation path pays one nil check per operator node (not per
//     row) and nothing else.
//   - Live counters are atomics: all workers of a parallel evaluation
//     write the same tree without locks on the counter path.  Only
//     child creation and NS bucket maps take a mutex, both of which
//     happen once per operator, not per row.
//   - Snapshot decouples collection from reporting: the HTTP layer
//     serializes a plain Profile value, never the live atomics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Node is a live profile node for one operator of one query's plan.  A
// nil *Node is valid everywhere and records nothing, so evaluation
// code threads nodes unconditionally and profiling is enabled simply
// by passing a non-nil root.
//
// Counters are atomic: the workers of a parallel evaluation may update
// one node concurrently.  Children are created under a mutex; callers
// that need a deterministic child order (the differential tests walk
// the profile tree alongside the pattern tree) must create the
// children before fanning out, which the evaluators do.
type Node struct {
	op     string
	detail string

	wallNS    atomic.Int64
	rowsIn    atomic.Int64
	rowsOut   atomic.Int64
	dedupHits atomic.Int64

	nsCandidates atomic.Int64
	nsSurvivors  atomic.Int64

	partitions   atomic.Int64
	poolAcquired atomic.Int64
	poolInline   atomic.Int64

	rangeScans atomic.Int64
	mergeRuns  atomic.Int64
	replans    atomic.Int64
	stages     atomic.Int64
	bindProbes atomic.Int64

	budgetSteps atomic.Int64
	budgetRows  atomic.Int64
	budgetBytes atomic.Int64

	mu        sync.Mutex
	children  []*Node
	nsBuckets map[uint64]*nsBucket
}

type nsBucket struct{ candidates, survivors int64 }

// NewNode returns a live profile root.  op names the node kind (the
// evaluators use the operator name: "query", "and", "ns", ...);
// detail is free-form context such as the triple pattern text.
func NewNode(op, detail string) *Node {
	return &Node{op: op, detail: detail}
}

// Child creates (and returns) a new child node.  On a nil receiver it
// returns nil, so an uninstrumented evaluation never allocates.
func (n *Node) Child(op, detail string) *Node {
	if n == nil {
		return nil
	}
	c := NewNode(op, detail)
	n.mu.Lock()
	n.children = append(n.children, c)
	n.mu.Unlock()
	return c
}

// AddWall accumulates wall-clock time attributed to this node.
func (n *Node) AddWall(d time.Duration) {
	if n == nil {
		return
	}
	n.wallNS.Add(int64(d))
}

// AddRowsIn accumulates operand rows fed into this operator.
func (n *Node) AddRowsIn(v int64) {
	if n == nil {
		return
	}
	n.rowsIn.Add(v)
}

// AddRowsOut accumulates rows this operator produced.
func (n *Node) AddRowsOut(v int64) {
	if n == nil {
		return
	}
	n.rowsOut.Add(v)
}

// AddDedupHits accumulates rows rejected by the output set's
// open-addressed deduplication (a candidate that was already present).
func (n *Node) AddDedupHits(v int64) {
	if n == nil {
		return
	}
	n.dedupHits.Add(v)
}

// AddNS accumulates an NS operator's candidate rows (input) and
// surviving rows (subsumption-maximal output).
func (n *Node) AddNS(candidates, survivors int64) {
	if n == nil {
		return
	}
	n.nsCandidates.Add(candidates)
	n.nsSurvivors.Add(survivors)
}

// AddNSBucket accumulates per-mask-bucket NS counts: of the candidate
// rows whose presence bitmask is mask, how many survived.
func (n *Node) AddNSBucket(mask uint64, candidates, survivors int64) {
	if n == nil {
		return
	}
	n.mu.Lock()
	if n.nsBuckets == nil {
		n.nsBuckets = make(map[uint64]*nsBucket)
	}
	b := n.nsBuckets[mask]
	if b == nil {
		b = &nsBucket{}
		n.nsBuckets[mask] = b
	}
	b.candidates += candidates
	b.survivors += survivors
	n.mu.Unlock()
}

// AddPartitions accumulates hash-join (or NS-shard) partitions this
// operator spawned.
func (n *Node) AddPartitions(v int64) {
	if n == nil {
		return
	}
	n.partitions.Add(v)
}

// AddPoolAcquired accumulates worker-pool tokens this operator
// acquired for concurrent sub-evaluation.
func (n *Node) AddPoolAcquired(v int64) {
	if n == nil {
		return
	}
	n.poolAcquired.Add(v)
}

// AddPoolInline accumulates the times this operator wanted a pool
// worker but none was free, so it did the work inline (pool
// saturation).
func (n *Node) AddPoolInline(v int64) {
	if n == nil {
		return
	}
	n.poolInline.Add(v)
}

// AddRangeScans accumulates index range scans this operator issued
// against the sorted permutation store (one per triple-pattern
// evaluation; the merge-join fast path issues one per side).
func (n *Node) AddRangeScans(v int64) {
	if n == nil {
		return
	}
	n.rangeScans.Add(v)
}

// AddMergeRuns accumulates key runs the sort-merge join fast path
// aligned while joining two index scans on their shared leading sort
// key.  Zero on an operator means the hash join handled it.
func (n *Node) AddMergeRuns(v int64) {
	if n == nil {
		return
	}
	n.mergeRuns.Add(v)
}

// AddReplans accumulates mid-query re-optimizations: the adaptive
// chain executor re-planned the remaining operands after observed
// cardinality drifted past the planner's estimate.
func (n *Node) AddReplans(v int64) {
	if n == nil {
		return
	}
	n.replans.Add(v)
}

// AddStages accumulates morsel-style execution stages: one parallel
// fan-out (a join or bind-join step dispatched across the worker pool)
// between two drift checkpoints of the staged chain executor.
func (n *Node) AddStages(v int64) {
	if n == nil {
		return
	}
	n.stages.Add(v)
}

// AddBindProbes accumulates bind-join index probes: one per
// accumulator row whose bindings were pinned as constants against the
// sorted indexes (serial or morsel-parallel).
func (n *Node) AddBindProbes(v int64) {
	if n == nil {
		return
	}
	n.bindProbes.Add(v)
}

// AddBudget accumulates governor consumption attributed to this node:
// search steps, result rows and estimated bytes.  The evaluators
// attribute by wall-clock window, so a node's numbers include its
// children, and sibling windows may overlap under parallel
// evaluation; the root's numbers are the query's exact totals.
func (n *Node) AddBudget(steps, rows, bytes int64) {
	if n == nil {
		return
	}
	n.budgetSteps.Add(steps)
	n.budgetRows.Add(rows)
	n.budgetBytes.Add(bytes)
}

// Snapshot copies the live tree into a plain, serializable Profile.
// On a nil receiver it returns nil.  It is safe to call while workers
// are still writing (counters are read atomically), though callers
// normally snapshot after the evaluation returns.
func (n *Node) Snapshot() *Profile {
	if n == nil {
		return nil
	}
	p := &Profile{
		Op:           n.op,
		Detail:       n.detail,
		WallNS:       n.wallNS.Load(),
		RowsIn:       n.rowsIn.Load(),
		RowsOut:      n.rowsOut.Load(),
		DedupHits:    n.dedupHits.Load(),
		NSCandidates: n.nsCandidates.Load(),
		NSSurvivors:  n.nsSurvivors.Load(),
		Partitions:   n.partitions.Load(),
		PoolAcquired: n.poolAcquired.Load(),
		PoolInline:   n.poolInline.Load(),
		RangeScans:   n.rangeScans.Load(),
		MergeRuns:    n.mergeRuns.Load(),
		Replans:      n.replans.Load(),
		Stages:       n.stages.Load(),
		BindProbes:   n.bindProbes.Load(),
		BudgetSteps:  n.budgetSteps.Load(),
		BudgetRows:   n.budgetRows.Load(),
		BudgetBytes:  n.budgetBytes.Load(),
	}
	n.mu.Lock()
	children := make([]*Node, len(n.children))
	copy(children, n.children)
	for mask, b := range n.nsBuckets {
		p.NSBuckets = append(p.NSBuckets, NSBucketCount{
			Mask: mask, Candidates: b.candidates, Survivors: b.survivors,
		})
	}
	n.mu.Unlock()
	sort.Slice(p.NSBuckets, func(i, j int) bool { return p.NSBuckets[i].Mask < p.NSBuckets[j].Mask })
	for _, c := range children {
		p.Children = append(p.Children, c.Snapshot())
	}
	return p
}

// Profile is one node of a serialized execution profile — the schema
// of the "profile" block in nsserve query responses and of `nsq
// -stats` output.  See DESIGN.md §9 for the field contract.
type Profile struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	WallNS int64  `json:"wall_ns"`

	RowsIn    int64 `json:"rows_in"`
	RowsOut   int64 `json:"rows_out"`
	DedupHits int64 `json:"dedup_hits,omitempty"`

	NSCandidates int64           `json:"ns_candidates,omitempty"`
	NSSurvivors  int64           `json:"ns_survivors,omitempty"`
	NSBuckets    []NSBucketCount `json:"ns_buckets,omitempty"`

	Partitions   int64 `json:"partitions,omitempty"`
	PoolAcquired int64 `json:"pool_acquired,omitempty"`
	PoolInline   int64 `json:"pool_inline,omitempty"`

	RangeScans int64 `json:"range_scans,omitempty"`
	MergeRuns  int64 `json:"merge_runs,omitempty"`
	Replans    int64 `json:"replans,omitempty"`
	Stages     int64 `json:"stages,omitempty"`
	BindProbes int64 `json:"bind_probes,omitempty"`

	BudgetSteps int64 `json:"budget_steps,omitempty"`
	BudgetRows  int64 `json:"budget_rows,omitempty"`
	BudgetBytes int64 `json:"budget_bytes,omitempty"`

	Children []*Profile `json:"children,omitempty"`
}

// NSBucketCount is the per-presence-mask breakdown of one NS node:
// candidates with that mask, and how many of them were maximal.
type NSBucketCount struct {
	Mask       uint64 `json:"mask"`
	Candidates int64  `json:"candidates"`
	Survivors  int64  `json:"survivors"`
}

// Walk visits p and every descendant in depth-first, child order.  A
// nil profile is an empty tree.
func (p *Profile) Walk(f func(*Profile)) {
	if p == nil {
		return
	}
	f(p)
	for _, c := range p.Children {
		c.Walk(f)
	}
}

// Sum folds f over the tree.
func (p *Profile) Sum(f func(*Profile) int64) int64 {
	var total int64
	p.Walk(func(n *Profile) { total += f(n) })
	return total
}

// Find returns the first node (depth-first) whose Op is op, or nil.
func (p *Profile) Find(op string) *Profile {
	var found *Profile
	p.Walk(func(n *Profile) {
		if found == nil && n.Op == op {
			found = n
		}
	})
	return found
}

// Tree renders the profile as an indented text tree, one operator per
// line — the `nsq -stats` output format.
func (p *Profile) Tree() string {
	var sb strings.Builder
	p.tree(&sb, 0)
	return sb.String()
}

func (p *Profile) tree(sb *strings.Builder, depth int) {
	if p == nil {
		return
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	fmt.Fprintf(sb, "%s", p.Op)
	if p.Detail != "" {
		fmt.Fprintf(sb, " %s", p.Detail)
	}
	fmt.Fprintf(sb, "  wall=%s rows_in=%d rows_out=%d", time.Duration(p.WallNS), p.RowsIn, p.RowsOut)
	if p.DedupHits > 0 {
		fmt.Fprintf(sb, " dedup_hits=%d", p.DedupHits)
	}
	if p.NSCandidates > 0 || p.NSSurvivors > 0 {
		fmt.Fprintf(sb, " ns=%d->%d (%d buckets)", p.NSCandidates, p.NSSurvivors, len(p.NSBuckets))
	}
	if p.Partitions > 0 {
		fmt.Fprintf(sb, " partitions=%d", p.Partitions)
	}
	if p.RangeScans > 0 {
		fmt.Fprintf(sb, " range_scans=%d", p.RangeScans)
	}
	if p.MergeRuns > 0 {
		fmt.Fprintf(sb, " merge_runs=%d", p.MergeRuns)
	}
	if p.Replans > 0 {
		fmt.Fprintf(sb, " replans=%d", p.Replans)
	}
	if p.Stages > 0 {
		fmt.Fprintf(sb, " stages=%d", p.Stages)
	}
	if p.BindProbes > 0 {
		fmt.Fprintf(sb, " bind_probes=%d", p.BindProbes)
	}
	if p.PoolAcquired > 0 || p.PoolInline > 0 {
		fmt.Fprintf(sb, " pool=%d acquired/%d inline", p.PoolAcquired, p.PoolInline)
	}
	if p.BudgetSteps > 0 {
		fmt.Fprintf(sb, " steps=%d", p.BudgetSteps)
	}
	sb.WriteByte('\n')
	for _, c := range p.Children {
		c.tree(sb, depth+1)
	}
}
