package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerAndSpanNoOps: the entire tracing API must be callable
// on nil receivers — that is how tracing is disabled.
func TestNilTracerAndSpanNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("query", "")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp = tr.StartRemoteTrace("abc", "def", "scan", "")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans for remote traces too")
	}
	child := sp.StartChild("plan", "")
	child.SetAttr("k", 1)
	child.SetStatus("error")
	child.MarkError()
	child.MarkPartial()
	child.AttachProfile(&Profile{Op: "scan"})
	child.End()
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if got := sp.ID(); got != "" {
		t.Fatalf("nil span ID = %q", got)
	}
	if _, ok := tr.Get("abc"); ok {
		t.Fatal("nil tracer Get must miss")
	}
	if tr.List(0) != nil {
		t.Fatal("nil tracer List must be empty")
	}
	if s := tr.Stats(); s != (TraceStats{}) {
		t.Fatalf("nil tracer Stats = %+v", s)
	}
	// A context carrying a nil span round-trips as nil.
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span should not be stored in context")
	}
}

// TestTailRetention: slow, errored and partial traces are always kept;
// unremarkable ones follow SampleRate.
func TestTailRetention(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: time.Nanosecond, Seed: 1})
	sp := tr.StartTrace("query", "")
	id := sp.TraceID()
	time.Sleep(time.Microsecond)
	sp.End() // slower than 1ns: always kept
	if _, ok := tr.Get(id); !ok {
		t.Fatal("slow trace was not kept")
	}

	tr = NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: -1, Seed: 1})
	sp = tr.StartTrace("query", "")
	fastID := sp.TraceID()
	sp.End() // not slow (threshold disabled), sample rate 0 → dropped
	if _, ok := tr.Get(fastID); ok {
		t.Fatal("unremarkable trace survived SampleRate 0")
	}

	sp = tr.StartTrace("query", "")
	errID := sp.TraceID()
	sp.MarkError()
	sp.End()
	snap, ok := tr.Get(errID)
	if !ok || !snap.Error {
		t.Fatalf("errored trace not kept/flagged: ok=%v snap=%+v", ok, snap)
	}

	sp = tr.StartTrace("query", "")
	partID := sp.TraceID()
	sp.MarkPartial()
	sp.End()
	snap, ok = tr.Get(partID)
	if !ok || !snap.Partial {
		t.Fatalf("partial trace not kept/flagged: ok=%v snap=%+v", ok, snap)
	}

	st := tr.Stats()
	if st.Started != 3 || st.Kept != 2 || st.SampledOut != 1 {
		t.Fatalf("stats = %+v, want started 3 kept 2 sampled_out 1", st)
	}

	// SampleRate 1 keeps everything.
	tr = NewTracer(TracerOptions{SampleRate: 1, SlowThreshold: -1, Seed: 1})
	sp = tr.StartTrace("query", "")
	id = sp.TraceID()
	sp.End()
	if _, ok := tr.Get(id); !ok {
		t.Fatal("SampleRate 1 dropped a trace")
	}
}

// TestRemoteAdoptedAlwaysKept: a shard must retain what its coordinator
// may come fetching, regardless of sampling.
func TestRemoteAdoptedAlwaysKept(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: -1, Seed: 1})
	sp := tr.StartRemoteTrace("cafe0000cafe0000", "parent01", "scan", "")
	if sp.TraceID() != "cafe0000cafe0000" {
		t.Fatalf("remote trace did not adopt the ID: %q", sp.TraceID())
	}
	sp.End()
	snap, ok := tr.Get("cafe0000cafe0000")
	if !ok || !snap.Remote {
		t.Fatalf("remote-adopted trace not kept: ok=%v snap=%+v", ok, snap)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Parent != "parent01" {
		t.Fatalf("remote parent not preserved: %+v", snap.Spans)
	}
	// Empty trace ID falls back to a fresh local trace.
	sp = tr.StartRemoteTrace("", "", "scan", "")
	if sp.TraceID() == "" {
		t.Fatal("empty remote ID should start a local trace")
	}
	sp.End()
}

// TestGetMergesSegments: one shard serves several requests of the same
// distributed trace (one /scan per pattern); Get folds them together.
func TestGetMergesSegments(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Seed: 1})
	for i := 0; i < 3; i++ {
		sp := tr.StartRemoteTrace("feed0000feed0000", "p", "scan", "")
		if i == 2 {
			sp.MarkPartial()
		}
		sp.End()
	}
	snap, ok := tr.Get("feed0000feed0000")
	if !ok {
		t.Fatal("merged trace not found")
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("merged %d spans, want 3", len(snap.Spans))
	}
	if !snap.Partial {
		t.Fatal("merge must OR the partial flag")
	}
}

// TestRingEviction: the ring is bounded; the oldest entries are
// overwritten and counted.
func TestRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 2, SampleRate: 1, Seed: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartTrace("query", "")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("trace %s missing after eviction", id)
		}
	}
	st := tr.Stats()
	if st.Evicted != 1 || st.Buffered != 2 {
		t.Fatalf("stats = %+v, want evicted 1 buffered 2", st)
	}
	if got := len(tr.List(0)); got != 2 {
		t.Fatalf("List returned %d traces, want 2", got)
	}
	if got := len(tr.List(1)); got != 1 {
		t.Fatalf("List(1) returned %d traces, want 1", got)
	}
}

// TestSpanTreeAndAttrs: children, status, attributes and the rendered
// tree.
func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Seed: 1})
	root := tr.StartTrace("query", "")
	id := root.TraceID()
	plan := root.StartChild("plan", "")
	plan.SetAttr("probes", 12)
	plan.End()
	ex := root.StartChild("exec", "")
	ex.SetStatus("error")
	ex.End()
	ex.End() // idempotent
	root.End()

	snap, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	tree := snap.Tree()
	for _, want := range []string{"trace " + id, "query", "plan", "probes=12", "exec", "status=error"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// Children indent under the root.
	if !strings.Contains(tree, "\n    plan") {
		t.Fatalf("plan not indented under query:\n%s", tree)
	}
}

// TestAttachProfile: the profile tree bridges into per-operator spans
// with counter attributes, even after the attaching span has ended.
func TestAttachProfile(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Seed: 1})
	root := tr.StartTrace("query", "")
	id := root.TraceID()
	ex := root.StartChild("exec", "")
	ex.End()
	ex.AttachProfile(&Profile{
		Op: "join", Detail: "hash", WallNS: 420, RowsIn: 10, RowsOut: 4,
		Children: []*Profile{{Op: "scan", WallNS: 100, RowsOut: 10, RangeScans: 2}},
	})
	root.End()

	snap, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace missing")
	}
	var join, scan *SpanSnapshot
	for i := range snap.Spans {
		switch snap.Spans[i].Name {
		case "op:join":
			join = &snap.Spans[i]
		case "op:scan":
			scan = &snap.Spans[i]
		}
	}
	if join == nil || scan == nil {
		t.Fatalf("profile spans missing: %+v", snap.Spans)
	}
	if join.DurationNS != 420 || join.Attrs["rows_out"] != int64(4) {
		t.Fatalf("join span = %+v", join)
	}
	if scan.Parent != join.ID {
		t.Fatal("profile children must nest under their parent operator")
	}
	if scan.Attrs["range_scans"] != int64(2) {
		t.Fatalf("scan attrs = %+v", scan.Attrs)
	}
	if _, ok := scan.Attrs["dedup_hits"]; ok {
		t.Fatal("zero counters must be omitted")
	}
}

// TestTracerConcurrent exercises the tracer under parallel traces for
// the race detector.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 8, SampleRate: 0.5, Seed: 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.StartTrace("query", "")
				c := sp.StartChild("exec", "")
				c.SetAttr("j", j)
				c.End()
				if j%5 == 0 {
					sp.MarkError()
				}
				sp.End()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.List(0)
				tr.Stats()
				tr.Get("nope")
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Started != 400 || st.Kept+st.SampledOut != 400 {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

// TestQueryIDContext round-trips the cross-process query ID.
func TestQueryIDContext(t *testing.T) {
	ctx := context.Background()
	if got := QueryIDFromContext(ctx); got != "" {
		t.Fatalf("empty context yielded qid %q", got)
	}
	ctx = ContextWithQueryID(ctx, "q000042")
	if got := QueryIDFromContext(ctx); got != "q000042" {
		t.Fatalf("qid = %q", got)
	}
	if ctx2 := ContextWithQueryID(ctx, ""); QueryIDFromContext(ctx2) != "q000042" {
		t.Fatal("empty qid must not overwrite")
	}
}

// TestTracesHandler drives the /debug/traces endpoint: listing,
// fetch-by-ID, stitching and the error paths.
func TestTracesHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Seed: 1})
	sp := tr.StartTrace("query", "")
	id := sp.TraceID()
	sp.End()

	stitched := TraceSnapshot{
		TraceID: id,
		Spans:   []SpanSnapshot{{ID: "remote01", Name: "scan"}},
	}
	h := TracesHandler(tr, func(r *http.Request, reqID string) []TraceSnapshot {
		if reqID == id {
			return []TraceSnapshot{stitched}
		}
		return nil
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Listing.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id || list.Traces[0].Root != "query" {
		t.Fatalf("listing = %+v", list)
	}

	// Fetch by ID merges the stitched shard segment.
	resp, err = http.Get(srv.URL + "?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	var snap TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Spans) != 2 {
		t.Fatalf("stitched snapshot has %d spans, want 2", len(snap.Spans))
	}

	// Unknown ID without a stitch hit is a 404.
	resp, err = http.Get(srv.URL + "?id=deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d", resp.StatusCode)
	}

	// Non-GET is a 405.
	resp, err = http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST returned %d", resp.StatusCode)
	}
}

// TestTracesHandlerStitchOnlyRemote: the coordinator can serve a trace
// it sampled out locally when a shard still holds its segment.
func TestTracesHandlerStitchOnlyRemote(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: -1, Seed: 1})
	h := TracesHandler(tr, func(r *http.Request, id string) []TraceSnapshot {
		return []TraceSnapshot{{TraceID: id, Spans: []SpanSnapshot{{ID: "s1", Name: "scan"}}}}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?id=0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote-only fetch returned %d", resp.StatusCode)
	}
	var snap TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.TraceID != "0123456789abcdef" || len(snap.Spans) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
