package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition-format content type served
// when /metrics negotiates the text view.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether a /metrics request negotiated the
// text exposition: an explicit format=prometheus parameter, or an
// Accept header naming text/plain (Prometheus scrapers send one; a
// browser's */* keeps the JSON default).
func WantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// WritePrometheus renders a MetricsSnapshot in the Prometheus text
// exposition format (version 0.0.4).  It is a pure function of the
// snapshot — the same value /metrics serves as JSON — so the two views
// can never disagree.  Histograms are converted from the snapshot's
// non-cumulative µs buckets to Prometheus's cumulative
// seconds-with-+Inf convention.
func WritePrometheus(w io.Writer, s MetricsSnapshot) {
	p := promWriter{w: w}

	p.header("ns_requests_total", "counter", "Completed HTTP requests by status code.")
	codes := make([]string, 0, len(s.Requests))
	for c := range s.Requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		p.val("ns_requests_total", lbl("code", c), float64(s.Requests[c]))
	}

	p.gauge("ns_in_flight", "Requests currently being served.", float64(s.InFlight))
	p.counter("ns_governor_trips_total", "Queries stopped by the governor (deadline or budget).", float64(s.GovernorTrips))
	p.counter("ns_pool_saturations_total", "Queries that found the parallel worker pool saturated.", float64(s.PoolSaturations))
	p.counter("ns_planner_replans_total", "Mid-query re-optimizations by the adaptive executor.", float64(s.PlannerReplans))
	p.counter("ns_panics_total", "Handler panics converted to 500s.", float64(s.Panics))

	p.header("ns_request_duration_seconds", "histogram", "Request latency by endpoint.")
	endpoints := make([]string, 0, len(s.Latency))
	for e := range s.Latency {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		p.histogram("ns_request_duration_seconds", lbl("endpoint", e), s.Latency[e])
	}

	if st := s.Store; st != nil {
		p.gauge("ns_store_triples", "Logical triples in the store.", float64(st.Triples))
		p.gauge("ns_store_base_triples", "Triples in the sorted base arrays.", float64(st.BaseTriples))
		p.gauge("ns_store_overlay_adds", "Pending overlay additions.", float64(st.OverlayAdds))
		p.gauge("ns_store_overlay_dels", "Pending overlay deletions.", float64(st.OverlayDels))
		p.counter("ns_store_compactions_total", "Overlay compactions into the base arrays.", float64(st.Compactions))
		p.gauge("ns_store_epoch", "Store mutation epoch (plan-cache key).", float64(st.Epoch))
	}

	if d := s.Durable; d != nil {
		p.gauge("ns_durable_generation", "Current snapshot generation.", float64(d.Generation))
		p.counter("ns_durable_wal_records_total", "Records appended to the WAL.", float64(d.WALRecords))
		p.counter("ns_durable_wal_bytes_total", "Bytes appended to the WAL.", float64(d.WALBytes))
		p.counter("ns_durable_wal_syncs_total", "WAL fsync calls.", float64(d.WALSyncs))
		p.counter("ns_durable_wal_errors_total", "WAL append/sync errors.", float64(d.WALErrors))
		p.counter("ns_durable_snapshots_total", "Durable snapshots rolled.", float64(d.Snapshots))
		p.gauge("ns_durable_last_snapshot_unix", "Unix time of the last snapshot.", float64(d.LastSnapshotUnix))
		p.header("ns_durable_fsync_duration_seconds", "histogram", "WAL fsync latency.")
		p.histogram("ns_durable_fsync_duration_seconds", "", d.FsyncLatency)
	}

	if pc := s.PlanCache; pc != nil {
		p.gauge("ns_plan_cache_size", "Cached plans.", float64(pc.Size))
		p.gauge("ns_plan_cache_capacity", "Plan cache capacity.", float64(pc.Capacity))
		p.counter("ns_plan_cache_hits_total", "Plan cache hits.", float64(pc.Hits))
		p.counter("ns_plan_cache_misses_total", "Plan cache misses.", float64(pc.Misses))
		p.counter("ns_plan_cache_evictions_total", "Plan cache evictions.", float64(pc.Evictions))
	}

	if c := s.Cluster; c != nil {
		p.counter("ns_cluster_queries_total", "Queries gathered by the coordinator.", float64(c.Queries))
		p.counter("ns_cluster_partial_responses_total", "Degraded (partial:true) responses.", float64(c.PartialResponses))
		p.counter("ns_cluster_failed_responses_total", "Queries failed on all shards.", float64(c.FailedResponses))
		p.header("ns_shard_state", "gauge", "Shard health as seen by the prober (1 healthy, 0 ejected).")
		for _, sh := range c.Shards {
			state := 0.0
			if sh.State == "healthy" {
				state = 1
			}
			p.val("ns_shard_state", shardLabels(sh), state)
		}
		shardCounter := func(name, help string, get func(ShardStats) int64) {
			p.header(name, "counter", help)
			for _, sh := range c.Shards {
				p.val(name, shardLabels(sh), float64(get(sh)))
			}
		}
		shardCounter("ns_shard_scans_total", "Scan RPCs attempted against the shard.", func(s ShardStats) int64 { return s.Scans })
		shardCounter("ns_shard_scan_errors_total", "Scan RPCs that failed.", func(s ShardStats) int64 { return s.ScanErrors })
		shardCounter("ns_shard_retries_total", "Scan retries after a retryable failure.", func(s ShardStats) int64 { return s.Retries })
		shardCounter("ns_shard_hedges_total", "Hedge requests launched.", func(s ShardStats) int64 { return s.Hedges })
		shardCounter("ns_shard_hedge_wins_total", "Hedges that beat the primary.", func(s ShardStats) int64 { return s.HedgeWins })
		shardCounter("ns_shard_hedges_wasted_total", "Hedges the primary beat.", func(s ShardStats) int64 { return s.HedgesWasted })
		shardCounter("ns_shard_ejections_total", "Health-prober ejections.", func(s ShardStats) int64 { return s.Ejections })
		shardCounter("ns_shard_readmissions_total", "Health-prober readmissions.", func(s ShardStats) int64 { return s.Readmissions })
		p.header("ns_shard_scan_duration_seconds", "histogram", "Shard scan latency as observed by the coordinator.")
		for _, sh := range c.Shards {
			p.histogram("ns_shard_scan_duration_seconds", shardLabels(sh), sh.ScanLatency)
		}
	}

	if t := s.Traces; t != nil {
		p.counter("ns_traces_started_total", "Traces started.", float64(t.Started))
		p.counter("ns_traces_kept_total", "Traces retained by the tail sampler.", float64(t.Kept))
		p.counter("ns_traces_sampled_out_total", "Unremarkable traces dropped by the sampler.", float64(t.SampledOut))
		p.counter("ns_traces_evicted_total", "Retained traces evicted by ring wraparound.", float64(t.Evicted))
		p.counter("ns_trace_spans_total", "Spans recorded across all traces.", float64(t.Spans))
		p.gauge("ns_traces_buffered", "Completed traces currently buffered.", float64(t.Buffered))
	}
}

type promWriter struct{ w io.Writer }

func (p *promWriter) header(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) val(name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, fnum(v))
		return
	}
	fmt.Fprintf(p.w, "%s %s\n", name, fnum(v))
}

func (p *promWriter) counter(name, help string, v float64) {
	p.header(name, "counter", help)
	p.val(name, "", v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, "gauge", help)
	p.val(name, "", v)
}

// histogram emits the cumulative bucket/sum/count triple for one
// HistogramSnapshot under the given (possibly empty) label set.
func (p *promWriter) histogram(name, labels string, h HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.LeUS >= 0 {
			le = fnum(float64(b.LeUS) / 1e6)
		}
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	if len(h.Buckets) == 0 {
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	}
	if labels != "" {
		fmt.Fprintf(p.w, "%s_sum{%s} %s\n", name, labels, fnum(float64(h.SumUS)/1e6))
		fmt.Fprintf(p.w, "%s_count{%s} %d\n", name, labels, h.Count)
		return
	}
	fmt.Fprintf(p.w, "%s_sum %s\n", name, fnum(float64(h.SumUS)/1e6))
	fmt.Fprintf(p.w, "%s_count %d\n", name, h.Count)
}

// fnum formats a sample value the way Prometheus expects (shortest
// round-trip decimal).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// lbl renders one escaped label pair.  strconv.Quote implements the
// exposition format's label escapes (backslash, quote, newline) for
// the printable-ASCII values we emit.
func lbl(key, value string) string {
	return key + "=" + strconv.Quote(value)
}

func shardLabels(sh ShardStats) string {
	return "shard=\"" + strconv.Itoa(sh.Shard) + "\"," + lbl("addr", sh.Addr)
}
