// Distributed tracing: the cross-process sibling of the per-query
// profile tree.  A Profile lives and dies with one HTTP reply; a trace
// survives the request in a bounded ring buffer so that a slow cluster
// query can be attributed after the fact — to a shard retry, a hedged
// scan, a WAL fsync stall, or a mid-query replan — by fetching
// /debug/traces?id=<trace-id> from the coordinator, which stitches the
// shard-side spans into one tree.
//
// The model follows the same discipline as Node:
//
//   - Every method on a nil *Tracer or nil *Span is a no-op, so the
//     instrumented paths thread spans unconditionally and tracing is
//     disabled simply by passing a nil tracer.
//   - Hot counters (started/kept/dropped spans) are atomics; a mutex
//     guards only span attribute maps and the completed-trace ring.
//   - Completed traces are plain serializable snapshots; the live
//     atomically-updated state never crosses the HTTP layer.
//
// Retention is tail-based: the keep/drop decision happens when the
// root span ends, when the trace's fate is known.  Slow, errored and
// partial traces are always kept, as are traces adopted from a remote
// parent (a shard must retain what its coordinator may come asking
// for); the unremarkable rest is sampled at SampleRate.
package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace-context propagation headers.  The coordinator sets the first
// two on every shard /scan call so shard-side traces join the
// coordinator's tree; NS-Query-Id carries the coordinator's query ID
// so shard logs correlate with coordinator logs.  Servers echo
// NS-Trace-Id on responses so clients (nsload, curl) can fetch the
// trace they just caused.
const (
	HeaderTraceID    = "NS-Trace-Id"
	HeaderParentSpan = "NS-Parent-Span"
	HeaderQueryID    = "NS-Query-Id"
)

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Capacity bounds the completed-trace ring buffer (default 256).
	Capacity int
	// SampleRate is the probability (0..1) of keeping a trace that is
	// neither slow, errored, partial nor remote-adopted.  1 keeps
	// everything; 0 keeps only the remarkable tail.
	SampleRate float64
	// SlowThreshold marks traces at least this slow as always-keep
	// (default 1s when zero; negative disables the slow criterion).
	SlowThreshold time.Duration
	// Seed fixes the sampler RNG for tests; 0 seeds from the clock.
	Seed int64
}

// TraceStats is the /metrics view of a Tracer: how many traces
// started, how the tail-based sampler decided, and ring occupancy.
type TraceStats struct {
	Started    int64 `json:"started"`
	Kept       int64 `json:"kept"`
	SampledOut int64 `json:"sampled_out"`
	Evicted    int64 `json:"evicted"`
	Spans      int64 `json:"spans"`
	Buffered   int64 `json:"buffered"`
}

// Tracer owns trace-ID generation, the tail-based sampling decision
// and the bounded ring of completed traces.  All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Tracer struct {
	opts TracerOptions

	started    atomic.Int64
	kept       atomic.Int64
	sampledOut atomic.Int64
	evicted    atomic.Int64
	spans      atomic.Int64

	mu   sync.Mutex
	rng  *rand.Rand
	ring []TraceSnapshot // insertion order; next wraps
	next int
}

// NewTracer returns a Tracer with opts defaulted as documented.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Tracer{
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
		ring: make([]TraceSnapshot, 0, opts.Capacity),
	}
}

// newID returns a fresh 64-bit hex ID.
func (t *Tracer) newID() string {
	t.mu.Lock()
	v := t.rng.Uint64()
	t.mu.Unlock()
	return fmt.Sprintf("%016x", v)
}

// StartTrace begins a new local trace and returns its root span.  On a
// nil receiver it returns nil (which is itself a valid no-op span).
func (t *Tracer) StartTrace(name, detail string) *Span {
	if t == nil {
		return nil
	}
	return t.start(t.newID(), "", false, name, detail)
}

// StartRemoteTrace begins a local segment of a trace owned by an
// upstream process (the trace ID arrived in an NS-Trace-Id header).
// Remote-adopted traces are always retained: the upstream coordinator
// decides sampling and may come fetching this segment by ID.
func (t *Tracer) StartRemoteTrace(traceID, parentSpan, name, detail string) *Span {
	if t == nil || traceID == "" {
		return t.StartTrace(name, detail)
	}
	return t.start(traceID, parentSpan, true, name, detail)
}

func (t *Tracer) start(traceID, parentSpan string, remote bool, name, detail string) *Span {
	t.started.Add(1)
	t.spans.Add(1)
	lt := &liveTrace{id: traceID, remote: remote}
	return &Span{
		tr:     t,
		trace:  lt,
		root:   true,
		id:     t.newID(),
		parent: parentSpan,
		name:   name,
		detail: detail,
		start:  time.Now(),
	}
}

// finish applies the tail-based retention decision to a completed
// trace and, if kept, inserts it into the ring.
func (t *Tracer) finish(lt *liveTrace, dur time.Duration) {
	slow := t.opts.SlowThreshold > 0 && dur >= t.opts.SlowThreshold
	keep := lt.remote || lt.errored || lt.partial || slow
	if !keep {
		t.mu.Lock()
		keep = t.rng.Float64() < t.opts.SampleRate
		t.mu.Unlock()
	}
	if !keep {
		t.sampledOut.Add(1)
		return
	}
	t.kept.Add(1)
	lt.mu.Lock()
	snap := TraceSnapshot{
		TraceID:       lt.id,
		Remote:        lt.remote,
		StartUnixNano: lt.startUnixNano,
		DurationNS:    int64(dur),
		Slow:          slow,
		Error:         lt.errored,
		Partial:       lt.partial,
		Spans:         lt.spans,
	}
	lt.mu.Unlock()
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % cap(t.ring)
		t.evicted.Add(1)
	}
	t.mu.Unlock()
}

// Get returns the completed trace with the given ID.  A process can
// hold several completed traces for one distributed trace ID (a shard
// serves one /scan per pattern per attempt); Get merges them into a
// single snapshot: spans concatenated, start = earliest, duration =
// longest, flags OR-ed.
func (t *Tracer) Get(id string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out TraceSnapshot
	found := false
	for i := range t.ring {
		ts := &t.ring[i]
		if ts.TraceID != id {
			continue
		}
		if !found {
			out = *ts
			out.Spans = append([]SpanSnapshot(nil), ts.Spans...)
			found = true
			continue
		}
		out.Merge(*ts)
	}
	return out, found
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	TraceID       string `json:"trace_id"`
	Root          string `json:"root"`
	Detail        string `json:"detail,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNS    int64  `json:"duration_ns"`
	Slow          bool   `json:"slow,omitempty"`
	Error         bool   `json:"error,omitempty"`
	Partial       bool   `json:"partial,omitempty"`
	Spans         int    `json:"spans"`
}

// List returns summaries of the buffered traces, newest first, at most
// limit (0 = all).
func (t *Tracer) List(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	snaps := make([]TraceSnapshot, len(t.ring))
	copy(snaps, t.ring)
	t.mu.Unlock()
	sort.SliceStable(snaps, func(i, j int) bool {
		return snaps[i].StartUnixNano > snaps[j].StartUnixNano
	})
	if limit > 0 && len(snaps) > limit {
		snaps = snaps[:limit]
	}
	out := make([]TraceSummary, 0, len(snaps))
	for _, ts := range snaps {
		sum := TraceSummary{
			TraceID:       ts.TraceID,
			StartUnixNano: ts.StartUnixNano,
			DurationNS:    ts.DurationNS,
			Slow:          ts.Slow,
			Error:         ts.Error,
			Partial:       ts.Partial,
			Spans:         len(ts.Spans),
		}
		if root := ts.root(); root != nil {
			sum.Root, sum.Detail = root.Name, root.Detail
		}
		out = append(out, sum)
	}
	return out
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() TraceStats {
	if t == nil {
		return TraceStats{}
	}
	t.mu.Lock()
	buffered := int64(len(t.ring))
	t.mu.Unlock()
	return TraceStats{
		Started:    t.started.Load(),
		Kept:       t.kept.Load(),
		SampledOut: t.sampledOut.Load(),
		Evicted:    t.evicted.Load(),
		Spans:      t.spans.Load(),
		Buffered:   buffered,
	}
}

// liveTrace accumulates finished spans of one in-flight trace.
type liveTrace struct {
	id     string
	remote bool

	mu            sync.Mutex
	startUnixNano int64
	errored       bool
	partial       bool
	spans         []SpanSnapshot
}

func (lt *liveTrace) add(s SpanSnapshot) {
	lt.mu.Lock()
	lt.spans = append(lt.spans, s)
	lt.mu.Unlock()
}

// Span is one live, mutable span of a trace.  A nil *Span is valid
// everywhere and records nothing.  Attribute writes take the span's
// mutex (they happen a handful of times per span, not per row).
type Span struct {
	tr     *Tracer
	trace  *liveTrace
	root   bool
	id     string
	parent string
	name   string
	detail string
	start  time.Time

	mu     sync.Mutex
	ended  bool
	status string
	attrs  map[string]any
}

// TraceID returns the distributed trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace.id
}

// ID returns the span's own ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartChild begins a child span.  On a nil receiver it returns nil.
func (s *Span) StartChild(name, detail string) *Span {
	if s == nil {
		return nil
	}
	s.tr.spans.Add(1)
	return &Span{
		tr:     s.tr,
		trace:  s.trace,
		id:     s.tr.newID(),
		parent: s.id,
		name:   name,
		detail: detail,
		start:  time.Now(),
	}
}

// SetAttr records one key/value attribute (values must be
// JSON-serializable; the instrumentation sticks to strings and
// numbers).  Last write per key wins.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// SetStatus sets the span status ("" means ok; the instrumentation
// uses "error" and "cancelled").
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// MarkError flags the whole trace as errored, which exempts it from
// sampling.
func (s *Span) MarkError() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.trace.errored = true
	s.trace.mu.Unlock()
}

// MarkPartial flags the whole trace as a partial (degraded) response,
// which exempts it from sampling.
func (s *Span) MarkPartial() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.trace.partial = true
	s.trace.mu.Unlock()
}

// End finishes the span, appending its snapshot to the trace.  Ending
// the root span completes the trace and triggers the retention
// decision.  End is idempotent; attribute writes after End are lost.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	snap := SpanSnapshot{
		ID:            s.id,
		Parent:        s.parent,
		Name:          s.name,
		Detail:        s.detail,
		StartUnixNano: s.start.UnixNano(),
		DurationNS:    int64(now.Sub(s.start)),
		Status:        s.status,
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	s.mu.Unlock()
	s.trace.add(snap)
	if s.root {
		s.trace.mu.Lock()
		s.trace.startUnixNano = snap.StartUnixNano
		s.trace.mu.Unlock()
		s.tr.finish(s.trace, now.Sub(s.start))
	}
}

// AttachProfile bridges a serialized execution profile into the trace
// as completed child spans of s, one per operator node, so the
// per-operator counters survive the request as span attributes.  Span
// start times are approximated to the parent's (operator wall windows
// overlap under parallel evaluation and the profile records only
// durations); DurationNS is the operator's exact wall counter.  Safe
// to call after s.End() — the trace is finalized only when the root
// span ends, and the servers attach the profile before that.
func (s *Span) AttachProfile(p *Profile) {
	if s == nil || p == nil {
		return
	}
	s.attachProfile(p, s.id, s.start.UnixNano())
}

func (s *Span) attachProfile(p *Profile, parent string, startNS int64) {
	s.tr.spans.Add(1)
	snap := SpanSnapshot{
		ID:            s.tr.newID(),
		Parent:        parent,
		Name:          "op:" + p.Op,
		Detail:        p.Detail,
		StartUnixNano: startNS,
		DurationNS:    p.WallNS,
		Attrs:         profileAttrs(p),
	}
	s.trace.add(snap)
	for _, c := range p.Children {
		s.attachProfile(c, snap.ID, startNS)
	}
}

// profileAttrs flattens one profile node's non-zero counters.
func profileAttrs(p *Profile) map[string]any {
	a := map[string]any{"rows_in": p.RowsIn, "rows_out": p.RowsOut}
	add := func(k string, v int64) {
		if v != 0 {
			a[k] = v
		}
	}
	add("dedup_hits", p.DedupHits)
	add("ns_candidates", p.NSCandidates)
	add("ns_survivors", p.NSSurvivors)
	add("partitions", p.Partitions)
	add("pool_acquired", p.PoolAcquired)
	add("pool_inline", p.PoolInline)
	add("range_scans", p.RangeScans)
	add("merge_runs", p.MergeRuns)
	add("replans", p.Replans)
	add("budget_steps", p.BudgetSteps)
	add("budget_rows", p.BudgetRows)
	add("budget_bytes", p.BudgetBytes)
	return a
}

// SpanSnapshot is one completed span — the /debug/traces wire schema.
// Spans are a flat list; the tree structure is recovered through
// Parent IDs so that spans collected on different processes stitch
// together without coordination.
type SpanSnapshot struct {
	ID            string         `json:"id"`
	Parent        string         `json:"parent,omitempty"`
	Name          string         `json:"name"`
	Detail        string         `json:"detail,omitempty"`
	StartUnixNano int64          `json:"start_unix_nano"`
	DurationNS    int64          `json:"duration_ns"`
	Status        string         `json:"status,omitempty"`
	Attrs         map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is one completed (possibly stitched) trace.
type TraceSnapshot struct {
	TraceID       string         `json:"trace_id"`
	Remote        bool           `json:"remote,omitempty"`
	StartUnixNano int64          `json:"start_unix_nano"`
	DurationNS    int64          `json:"duration_ns"`
	Slow          bool           `json:"slow,omitempty"`
	Error         bool           `json:"error,omitempty"`
	Partial       bool           `json:"partial,omitempty"`
	Spans         []SpanSnapshot `json:"spans"`
}

// Merge folds another snapshot of the same trace ID into t: spans are
// concatenated, the start is the earliest, the duration the longest
// local segment, and the remarkable flags OR together.
func (t *TraceSnapshot) Merge(other TraceSnapshot) {
	t.Spans = append(t.Spans, other.Spans...)
	if other.StartUnixNano > 0 && (t.StartUnixNano == 0 || other.StartUnixNano < t.StartUnixNano) {
		t.StartUnixNano = other.StartUnixNano
	}
	if other.DurationNS > t.DurationNS {
		t.DurationNS = other.DurationNS
	}
	t.Slow = t.Slow || other.Slow
	t.Error = t.Error || other.Error
	t.Partial = t.Partial || other.Partial
}

// root returns the span with no locally-resolvable parent that started
// earliest (the request root, once stitched), or nil.
func (t *TraceSnapshot) root() *SpanSnapshot {
	byID := make(map[string]bool, len(t.Spans))
	for i := range t.Spans {
		byID[t.Spans[i].ID] = true
	}
	var root *SpanSnapshot
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent != "" && byID[s.Parent] {
			continue
		}
		if root == nil || s.StartUnixNano < root.StartUnixNano {
			root = s
		}
	}
	return root
}

// Tree renders the stitched trace as an indented text tree, one span
// per line, children ordered by start time — the `nsq -trace` output
// format.  Spans whose parent is not in the snapshot (e.g. a shard
// segment fetched without the coordinator side) render at the root
// level.
func (t *TraceSnapshot) Tree() string {
	byID := make(map[string]bool, len(t.Spans))
	children := make(map[string][]*SpanSnapshot, len(t.Spans))
	for i := range t.Spans {
		byID[t.Spans[i].ID] = true
	}
	var roots []*SpanSnapshot
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent != "" && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(ss []*SpanSnapshot) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].StartUnixNano < ss[j].StartUnixNano })
	}
	byStart(roots)
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s  dur=%s", t.TraceID, time.Duration(t.DurationNS))
	if t.Slow {
		sb.WriteString(" slow")
	}
	if t.Error {
		sb.WriteString(" error")
	}
	if t.Partial {
		sb.WriteString(" partial")
	}
	sb.WriteByte('\n')
	var render func(s *SpanSnapshot, depth int)
	render = func(s *SpanSnapshot, depth int) {
		for i := 0; i < depth; i++ {
			sb.WriteString("  ")
		}
		sb.WriteString(s.Name)
		if s.Detail != "" {
			fmt.Fprintf(&sb, " %s", s.Detail)
		}
		fmt.Fprintf(&sb, "  dur=%s", time.Duration(s.DurationNS))
		if s.Status != "" {
			fmt.Fprintf(&sb, " status=%s", s.Status)
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%v", k, s.Attrs[k])
			}
		}
		sb.WriteByte('\n')
		kids := children[s.ID]
		byStart(kids)
		for _, c := range kids {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 1)
	}
	return sb.String()
}

// spanCtxKey carries the active span through context, so layers with
// stable signatures (the cluster coordinator's Gather) can pick it up
// without plumbing.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// qidCtxKey carries the request's query ID across processes: the
// coordinator stores it, the cluster client forwards it to shards in
// the NS-Query-Id header, and shard logs adopt it.
type qidCtxKey struct{}

// ContextWithQueryID returns ctx carrying the query ID.
func ContextWithQueryID(ctx context.Context, qid string) context.Context {
	if qid == "" {
		return ctx
	}
	return context.WithValue(ctx, qidCtxKey{}, qid)
}

// QueryIDFromContext returns the query ID carried by ctx, or "".
func QueryIDFromContext(ctx context.Context) string {
	qid, _ := ctx.Value(qidCtxKey{}).(string)
	return qid
}
