package obs

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileEmpty: no observations (or a nil receiver) must
// report false, never a zero duration that reads as "instant".
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if d, ok := h.Quantile(0.99); ok {
		t.Fatalf("empty histogram produced a quantile: %v", d)
	}
	var nilH *Histogram
	if _, ok := nilH.Quantile(0.5); ok {
		t.Fatal("nil histogram produced a quantile")
	}
	nilH.Observe(time.Second) // no-op, must not panic
	if s := nilH.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestHistogramQuantileSingle: with one observation every quantile
// resolves to that observation's bucket bound.
func TestHistogramQuantileSingle(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Microsecond) // bucket (250µs, 500µs]
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		d, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("q=%v not ok", q)
		}
		if d != 500*time.Microsecond {
			t.Fatalf("q=%v = %v, want 500µs (the bucket's upper bound)", q, d)
		}
	}
}

// TestHistogramOverflowBucket: observations beyond the last finite
// bound land in +Inf; quantiles there clamp to the last finite bound
// rather than inventing an infinite duration.
func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour)
	s := h.Snapshot()
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeUS != -1 || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v", last)
	}
	for _, b := range s.Buckets[:len(s.Buckets)-1] {
		if b.Count != 0 {
			t.Fatalf("finite bucket %d unexpectedly hit: %+v", b.LeUS, b)
		}
	}
	d, ok := h.Quantile(0.5)
	if !ok || d != 10*time.Second {
		t.Fatalf("overflow quantile = %v ok=%v, want last finite bound 10s", d, ok)
	}
}

// TestHistogramConcurrent hammers Observe against Snapshot/Quantile so
// the race detector can inspect the atomics, at both GOMAXPROCS 1 and
// 4 (single-P schedules interleave differently).
func TestHistogramConcurrent(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(map[int]string{1: "procs1", 4: "procs4"}[procs], func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			var h Histogram
			const writers, perWriter = 4, 2000
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						h.Observe(time.Duration(w*i%5000) * time.Microsecond)
					}
				}(w)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 200; i++ {
					s := h.Snapshot()
					var sum int64
					for _, b := range s.Buckets {
						sum += b.Count
					}
					// Torn reads may lag but never exceed the count of a
					// later snapshot; just require internal sanity.
					if sum < 0 || s.Count < 0 {
						t.Error("negative counters")
						return
					}
					h.Quantile(0.99)
				}
			}()
			wg.Wait()
			<-done
			s := h.Snapshot()
			if s.Count != writers*perWriter {
				t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
			}
			var sum int64
			for _, b := range s.Buckets {
				sum += b.Count
			}
			if sum != s.Count {
				t.Fatalf("bucket sum %d != count %d after quiescence", sum, s.Count)
			}
		})
	}
}
