package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilNodeNoOps checks the profiling-off contract: every method on
// a nil *Node records nothing and never panics, and a nil node
// snapshots to a nil profile.
func TestNilNodeNoOps(t *testing.T) {
	var n *Node
	if c := n.Child("and", ""); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	n.AddWall(time.Second)
	n.AddRowsIn(1)
	n.AddRowsOut(1)
	n.AddDedupHits(1)
	n.AddNS(1, 1)
	n.AddNSBucket(3, 1, 1)
	n.AddPartitions(1)
	n.AddPoolAcquired(1)
	n.AddPoolInline(1)
	n.AddBudget(1, 1, 1)
	if s := n.Snapshot(); s != nil {
		t.Fatalf("nil.Snapshot = %v, want nil", s)
	}
	// A nil *Profile walks as an empty tree.
	var p *Profile
	p.Walk(func(*Profile) { t.Fatal("visited a node of a nil profile") })
	if got := p.Sum(func(*Profile) int64 { return 1 }); got != 0 {
		t.Fatalf("nil.Sum = %d", got)
	}
	if p.Find("x") != nil {
		t.Fatal("nil.Find found something")
	}
	if p.Tree() != "" {
		t.Fatal("nil.Tree non-empty")
	}
}

// TestNodeConcurrentCounters hammers one node from many goroutines and
// checks no increment is lost.
func TestNodeConcurrentCounters(t *testing.T) {
	n := NewNode("query", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.AddRowsOut(1)
				n.AddDedupHits(2)
				n.AddBudget(1, 1, 1)
				n.AddNSBucket(uint64(i%4), 1, 1)
				n.Child("triple", "t")
			}
		}()
	}
	wg.Wait()
	p := n.Snapshot()
	if p.RowsOut != workers*per {
		t.Errorf("rows_out = %d, want %d", p.RowsOut, workers*per)
	}
	if p.DedupHits != 2*workers*per {
		t.Errorf("dedup_hits = %d, want %d", p.DedupHits, 2*workers*per)
	}
	if p.BudgetSteps != workers*per || p.BudgetRows != workers*per || p.BudgetBytes != workers*per {
		t.Errorf("budget = %d/%d/%d, want %d each", p.BudgetSteps, p.BudgetRows, p.BudgetBytes, workers*per)
	}
	if len(p.Children) != workers*per {
		t.Errorf("children = %d, want %d", len(p.Children), workers*per)
	}
	if len(p.NSBuckets) != 4 {
		t.Fatalf("ns buckets = %d, want 4", len(p.NSBuckets))
	}
	var bucketTotal int64
	for i, b := range p.NSBuckets {
		if i > 0 && p.NSBuckets[i-1].Mask >= b.Mask {
			t.Errorf("buckets unsorted at %d", i)
		}
		bucketTotal += b.Candidates
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket candidates = %d, want %d", bucketTotal, workers*per)
	}
}

// TestProfileTreeAndHelpers covers Snapshot structure, Walk order,
// Find, Sum and the text rendering.
func TestProfileTreeAndHelpers(t *testing.T) {
	root := NewNode("query", "q1")
	and := root.Child("and", "")
	l := and.Child("triple", "(?x p ?y)")
	r := and.Child("triple", "(?y q ?z)")
	l.AddRowsOut(3)
	r.AddRowsOut(4)
	and.AddRowsIn(7)
	and.AddRowsOut(5)
	and.AddWall(2 * time.Millisecond)
	ns := root.Child("ns", "")
	ns.AddNS(10, 6)
	ns.AddNSBucket(1, 4, 1)
	ns.AddNSBucket(3, 6, 5)

	p := root.Snapshot()
	var ops []string
	p.Walk(func(n *Profile) { ops = append(ops, n.Op) })
	want := []string{"query", "and", "triple", "triple", "ns"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order %v, want %v", ops, want)
	}
	if got := p.Sum(func(n *Profile) int64 { return n.RowsOut }); got != 12 {
		t.Errorf("Sum(rows_out) = %d, want 12", got)
	}
	if f := p.Find("ns"); f == nil || f.NSCandidates != 10 || f.NSSurvivors != 6 {
		t.Errorf("Find(ns) = %+v", f)
	}
	if p.Find("opt") != nil {
		t.Error("Find(opt) found a node that is not there")
	}
	tree := p.Tree()
	for _, frag := range []string{"query q1", "(?x p ?y)", "ns=10->6 (2 buckets)", "rows_out=5"} {
		if !strings.Contains(tree, frag) {
			t.Errorf("Tree() missing %q:\n%s", frag, tree)
		}
	}
	// The tree is JSON-serializable with stable field names.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"op":"query"`, `"rows_out"`, `"ns_candidates":10`, `"ns_buckets"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("JSON missing %s: %s", field, data)
		}
	}
}

// TestHistogramBuckets checks bucket assignment at and around the
// bounds, including the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	h.Observe(50 * time.Microsecond)  // <= 100µs
	h.Observe(100 * time.Microsecond) // boundary: still the 100µs bucket
	h.Observe(101 * time.Microsecond) // next bucket (<= 250µs)
	h.Observe(20 * time.Second)       // beyond the last bound: +Inf
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Buckets[0].Count; got != 2 {
		t.Errorf("bucket <=100µs = %d, want 2", got)
	}
	if got := s.Buckets[1].Count; got != 1 {
		t.Errorf("bucket <=250µs = %d, want 1", got)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeUS != -1 || last.Count != 1 {
		t.Errorf("+Inf bucket = %+v", last)
	}
	wantSum := int64(50 + 100 + 101 + 20_000_000)
	if s.SumUS != wantSum {
		t.Errorf("sum_us = %d, want %d", s.SumUS, wantSum)
	}
	// Nil histogram: no-op.
	var hn *Histogram
	hn.Observe(time.Second)
}

// TestMetricsConcurrent checks the registry under concurrent load:
// request counts by code, unknown codes, gauges and trip counters.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.IncInFlight()
				m.ObserveRequest("query", 200, time.Millisecond)
				m.ObserveRequest("insert", 413, 2*time.Millisecond)
				m.ObserveRequest("query", 418, 0) // unknown code
				m.GovernorTrip()
				m.PoolSaturation()
				m.Panic()
				m.DecInFlight()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	total := int64(workers * per)
	if s.Requests["200"] != total || s.Requests["413"] != total {
		t.Errorf("requests = %v", s.Requests)
	}
	if s.Requests["other"] != total {
		t.Errorf("other = %d, want %d", s.Requests["other"], total)
	}
	if s.Requests["503"] != 0 {
		t.Errorf("503 pre-seeded count = %d, want 0", s.Requests["503"])
	}
	if s.InFlight != 0 {
		t.Errorf("in_flight = %d, want 0", s.InFlight)
	}
	if s.GovernorTrips != total || s.PoolSaturations != total || s.Panics != total {
		t.Errorf("trips/saturations/panics = %d/%d/%d, want %d",
			s.GovernorTrips, s.PoolSaturations, s.Panics, total)
	}
	if s.Latency["query"].Count != 2*total || s.Latency["insert"].Count != total {
		t.Errorf("latency counts = %d/%d", s.Latency["query"].Count, s.Latency["insert"].Count)
	}
	// Nil registry: every method is a no-op.
	var mn *Metrics
	mn.ObserveRequest("query", 200, 0)
	mn.IncInFlight()
	mn.DecInFlight()
	mn.GovernorTrip()
	mn.PoolSaturation()
	mn.Panic()
}
