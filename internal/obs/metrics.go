package obs

import (
	"sync/atomic"
	"time"
)

// latencyBucketsUS are the upper bounds (µs, inclusive) of the latency
// histogram, log-spaced from 100µs to 10s; observations beyond the
// last bound land in the +Inf bucket.  Fixed at compile time so
// Observe is a lock-free scan over a small array.
var latencyBucketsUS = [...]int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
type Histogram struct {
	counts [len(latencyBucketsUS) + 1]atomic.Int64 // +1: the +Inf bucket
	count  atomic.Int64
	sumUS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUS.Add(us)
	for i, le := range latencyBucketsUS {
		if us <= le {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBucketsUS)].Add(1)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// durations from the bucket counts: it returns the upper bound of the
// first bucket whose cumulative count reaches q of the total, which
// over-estimates by at most one bucket width.  The +Inf bucket
// resolves to the last finite bound.  It reports false when the
// histogram has no observations (or the receiver is nil), so callers
// can fall back to a configured default — the cluster coordinator
// uses this for its hedging delay, where "no data yet" must not read
// as "hedge immediately".
func (h *Histogram) Quantile(q float64) (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			le := latencyBucketsUS[len(latencyBucketsUS)-1]
			if i < len(latencyBucketsUS) {
				le = latencyBucketsUS[i]
			}
			return time.Duration(le) * time.Microsecond, true
		}
	}
	return time.Duration(latencyBucketsUS[len(latencyBucketsUS)-1]) * time.Microsecond, true
}

// HistogramSnapshot is the serialized form of a Histogram.  Buckets
// are non-cumulative; the final bucket's LeUS is -1, meaning +Inf.
type HistogramSnapshot struct {
	Count   int64           `json:"count"`
	SumUS   int64           `json:"sum_us"`
	Buckets []LatencyBucket `json:"buckets"`
}

// LatencyBucket is one histogram bucket: observations in
// (previous bound, LeUS], with LeUS = -1 for the +Inf bucket.
type LatencyBucket struct {
	LeUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// Snapshot copies the histogram into a plain, serializable value.  It
// is safe to call concurrently with Observe (buckets may be slightly
// torn relative to each other, never corrupt) and on a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumUS: h.sumUS.Load()}
	s.Buckets = make([]LatencyBucket, 0, len(h.counts))
	for i := range h.counts {
		le := int64(-1)
		if i < len(latencyBucketsUS) {
			le = latencyBucketsUS[i]
		}
		s.Buckets = append(s.Buckets, LatencyBucket{LeUS: le, Count: h.counts[i].Load()})
	}
	return s
}

// metricsCodes are the response statuses nsserve can produce; every
// counter exists from construction so the increment path is lock-free
// map reads of a map that never mutates after NewMetrics.
var metricsCodes = [...]int{200, 400, 404, 405, 413, 500, 503, 504}

// metricsEndpoints are the instrumented endpoints, each with its own
// latency histogram.
var metricsEndpoints = [...]string{"query", "insert", "stats", "scan"}

// Metrics is the process-wide server metrics registry: request counts
// by status, per-endpoint latency histograms, an in-flight gauge, and
// counters for governor trips and pool saturation.  All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Metrics struct {
	codes      map[int]*atomic.Int64
	codesOther atomic.Int64
	latency    map[string]*Histogram

	inFlight        atomic.Int64
	governorTrips   atomic.Int64
	poolSaturations atomic.Int64
	plannerReplans  atomic.Int64
	panics          atomic.Int64
}

// NewMetrics returns an empty registry with every known status and
// endpoint pre-seeded.
func NewMetrics() *Metrics {
	m := &Metrics{
		codes:   make(map[int]*atomic.Int64, len(metricsCodes)),
		latency: make(map[string]*Histogram, len(metricsEndpoints)),
	}
	for _, c := range metricsCodes {
		m.codes[c] = new(atomic.Int64)
	}
	for _, e := range metricsEndpoints {
		m.latency[e] = new(Histogram)
	}
	return m
}

// ObserveRequest records one completed request: its status code and,
// for a known endpoint, its latency.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	if m == nil {
		return
	}
	if c, ok := m.codes[code]; ok {
		c.Add(1)
	} else {
		m.codesOther.Add(1)
	}
	if h, ok := m.latency[endpoint]; ok {
		h.Observe(d)
	}
}

// IncInFlight/DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() {
	if m != nil {
		m.inFlight.Add(1)
	}
}

// DecInFlight decrements the in-flight request gauge.
func (m *Metrics) DecInFlight() {
	if m != nil {
		m.inFlight.Add(-1)
	}
}

// GovernorTrip counts one query stopped by its governor (deadline or
// resource budget).
func (m *Metrics) GovernorTrip() {
	if m != nil {
		m.governorTrips.Add(1)
	}
}

// PoolSaturation counts one query that wanted a parallel worker but
// found the pool saturated at least once (it fell back to inline
// evaluation; correct, but a sign the host is out of spare cores).
func (m *Metrics) PoolSaturation() {
	if m != nil {
		m.poolSaturations.Add(1)
	}
}

// AddPlannerReplans counts mid-query re-optimizations: the adaptive
// chain executor re-planned the remaining join order after observed
// rows drifted past the planner's estimate.  n is the replan count of
// one query (from its profile), so the counter totals replans, not
// replanned queries.
func (m *Metrics) AddPlannerReplans(n int64) {
	if m != nil && n > 0 {
		m.plannerReplans.Add(n)
	}
}

// Panic counts one handler panic converted to a 500.
func (m *Metrics) Panic() {
	if m != nil {
		m.panics.Add(1)
	}
}

// StoreStats is the /metrics view of the triple store's index layout:
// logical size, base/overlay split, and compaction count.  nsserve
// maintains it as an atomic mirror refreshed after each insert, so
// /metrics stays lock-free.
type StoreStats struct {
	Triples     int64  `json:"triples"`
	BaseTriples int64  `json:"base_triples"`
	OverlayAdds int64  `json:"overlay_adds"`
	OverlayDels int64  `json:"overlay_dels"`
	Compactions int64  `json:"compactions"`
	Epoch       uint64 `json:"epoch"`
}

// DurableStats is the /metrics view of the durable storage backend
// (internal/rdf/durable): WAL volume, sync activity, snapshot cadence
// and what the last recovery found.  The Recovered* fields are set
// once at Open and never change; the rest are live counters.
type DurableStats struct {
	Generation               uint64            `json:"generation"`
	WALRecords               int64             `json:"wal_records"`
	WALBytes                 int64             `json:"wal_bytes"`
	WALSyncs                 int64             `json:"wal_syncs"`
	WALErrors                int64             `json:"wal_errors"`
	Snapshots                int64             `json:"snapshots"`
	LastSnapshotUnix         int64             `json:"last_snapshot_unix"`
	RecoveredSnapshotTriples int64             `json:"recovered_snapshot_triples"`
	RecoveredWALRecords      int64             `json:"recovered_wal_records"`
	RecoveredTruncatedBytes  int64             `json:"recovered_truncated_bytes"`
	FsyncLatency             HistogramSnapshot `json:"fsync_latency"`
}

// ShardStats is the /metrics view of one shard as seen by the cluster
// coordinator: its health-prober state, the retry/hedge activity of
// the scatter path, and the scan-latency histogram the hedging delay
// is derived from.
type ShardStats struct {
	Shard        int               `json:"shard"`
	Addr         string            `json:"addr"`
	State        string            `json:"state"` // "healthy" | "ejected"
	Scans        int64             `json:"scans"`
	ScanErrors   int64             `json:"scan_errors"`
	Retries      int64             `json:"retries"`
	Hedges       int64             `json:"hedges"`
	HedgeWins    int64             `json:"hedge_wins"`
	HedgesWasted int64             `json:"hedges_wasted"`
	Ejections    int64             `json:"ejections"`
	Readmissions int64             `json:"readmissions"`
	Probes       int64             `json:"probes"`
	ProbeFails   int64             `json:"probe_fails"`
	ScanLatency  HistogramSnapshot `json:"scan_latency"`
}

// ClusterStats is the /metrics view of the scatter-gather coordinator:
// per-shard counters plus the query-level degradation accounting.
// PartialResponses counts queries answered 200 with partial:true —
// exactly once per degraded query.
type ClusterStats struct {
	Shards           []ShardStats `json:"shards"`
	Queries          int64        `json:"queries"`
	PartialResponses int64        `json:"partial_responses"`
	FailedResponses  int64        `json:"failed_responses"`
}

// PlanCacheStats is the /metrics view of nsserve's parse/plan cache.
type PlanCacheStats struct {
	Size      int64 `json:"size"`
	Capacity  int64 `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// MetricsSnapshot is the serialized form of Metrics — the /metrics
// response body (expvar-style JSON).  Store and PlanCache are filled
// in by the server (they live outside this registry) and omitted when
// the feature is off.
type MetricsSnapshot struct {
	Requests        map[string]int64             `json:"requests"`
	InFlight        int64                        `json:"in_flight"`
	GovernorTrips   int64                        `json:"governor_trips"`
	PoolSaturations int64                        `json:"pool_saturations"`
	PlannerReplans  int64                        `json:"planner_replans"`
	Panics          int64                        `json:"panics"`
	Store           *StoreStats                  `json:"store,omitempty"`
	Durable         *DurableStats                `json:"durable,omitempty"`
	PlanCache       *PlanCacheStats              `json:"plan_cache,omitempty"`
	Cluster         *ClusterStats                `json:"cluster,omitempty"`
	Traces          *TraceStats                  `json:"traces,omitempty"`
	Latency         map[string]HistogramSnapshot `json:"latency"`
}

// Snapshot copies the registry into a plain, serializable value.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests: make(map[string]int64, len(m.codes)+1),
		Latency:  make(map[string]HistogramSnapshot, len(m.latency)),
	}
	for code, c := range m.codes {
		s.Requests[itoa(code)] = c.Load()
	}
	if other := m.codesOther.Load(); other > 0 {
		s.Requests["other"] = other
	}
	for e, h := range m.latency {
		s.Latency[e] = h.Snapshot()
	}
	s.InFlight = m.inFlight.Load()
	s.GovernorTrips = m.governorTrips.Load()
	s.PoolSaturations = m.poolSaturations.Load()
	s.PlannerReplans = m.plannerReplans.Load()
	s.Panics = m.panics.Load()
	return s
}

// itoa avoids strconv for the tiny fixed status-code set.
func itoa(code int) string {
	buf := [8]byte{}
	i := len(buf)
	for code > 0 {
		i--
		buf[i] = byte('0' + code%10)
		code /= 10
	}
	return string(buf[i:])
}
