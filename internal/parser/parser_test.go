package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestParseTriplePattern(t *testing.T) {
	p := MustParsePattern("(?x founder ?y)")
	want := sparql.TP(sparql.V("x"), sparql.I("founder"), sparql.V("y"))
	if !sparql.Equal(p, want) {
		t.Fatalf("got %s", p)
	}
	p = MustParsePattern("(<a b> <c> d)")
	want = sparql.TP(sparql.I("a b"), sparql.I("c"), sparql.I("d"))
	if !sparql.Equal(p, want) {
		t.Fatalf("got %s", p)
	}
}

func TestParseBinaryOperatorsAndPrecedence(t *testing.T) {
	// AND binds tighter than OPT, which binds tighter than UNION.
	p := MustParsePattern("(?a p ?b) AND (?b q ?c) OPT (?c r ?d) UNION (?e s ?f)")
	want := sparql.Union{
		L: sparql.Opt{
			L: sparql.And{
				L: sparql.TP(sparql.V("a"), sparql.I("p"), sparql.V("b")),
				R: sparql.TP(sparql.V("b"), sparql.I("q"), sparql.V("c")),
			},
			R: sparql.TP(sparql.V("c"), sparql.I("r"), sparql.V("d")),
		},
		R: sparql.TP(sparql.V("e"), sparql.I("s"), sparql.V("f")),
	}
	if !sparql.Equal(p, want) {
		t.Fatalf("got %s\nwant %s", p, want)
	}
	// Parentheses override precedence; OPTIONAL is a synonym for OPT.
	p = MustParsePattern("(?a p ?b) OPTIONAL ((?b q ?c) UNION (?c r ?d))")
	if _, ok := p.(sparql.Opt); !ok {
		t.Fatalf("got %T", p)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	p := MustParsePattern("(?a p ?b) AND (?b q ?c) AND (?c r ?d)")
	and, ok := p.(sparql.And)
	if !ok {
		t.Fatalf("got %T", p)
	}
	if _, ok := and.L.(sparql.And); !ok {
		t.Fatalf("AND is not left-associative: %s", p)
	}
}

func TestParseSelect(t *testing.T) {
	p := MustParsePattern("SELECT {?p} WHERE (?p founder ?o)")
	sel, ok := p.(sparql.Select)
	if !ok || len(sel.Vars) != 1 || sel.Vars[0] != "p" {
		t.Fatalf("got %s", p)
	}
	// Bare variable list, multiple variables, nested select.
	p = MustParsePattern("SELECT ?x ?y WHERE (SELECT {?x, ?y, ?z} WHERE (?x a ?y) AND (?y b ?z))")
	outer, ok := p.(sparql.Select)
	if !ok || len(outer.Vars) != 2 {
		t.Fatalf("got %s", p)
	}
	if _, ok := outer.P.(sparql.Select); !ok {
		t.Fatalf("inner select lost: %s", p)
	}
}

func TestParseNS(t *testing.T) {
	p := MustParsePattern("NS((?x a b) UNION ((?x a b) AND (?x c ?y)))")
	ns, ok := p.(sparql.NS)
	if !ok {
		t.Fatalf("got %T", p)
	}
	if !sparql.IsSimple(ns) {
		t.Fatalf("expected a simple pattern, got %s", p)
	}
}

func TestParseFilter(t *testing.T) {
	p := MustParsePattern("(?x works_at ?w) FILTER (?w = PUC_Chile && (bound(?x) || ?x != ?w))")
	f, ok := p.(sparql.Filter)
	if !ok {
		t.Fatalf("got %T", p)
	}
	and, ok := f.Cond.(sparql.AndCond)
	if !ok {
		t.Fatalf("cond = %s", f.Cond)
	}
	if _, ok := and.L.(sparql.EqConst); !ok {
		t.Fatalf("lhs = %T", and.L)
	}
	or, ok := and.R.(sparql.OrCond)
	if !ok {
		t.Fatalf("rhs = %T", and.R)
	}
	if _, ok := or.R.(sparql.Not); !ok {
		t.Fatalf("!= did not desugar to Not: %s", or.R)
	}
}

func TestParseFilterConstantFolding(t *testing.T) {
	p := MustParsePattern("(?x a ?y) FILTER (c = c && TRUE)")
	f := p.(sparql.Filter)
	and := f.Cond.(sparql.AndCond)
	if _, ok := and.L.(sparql.TrueCond); !ok {
		t.Fatalf("constant equality did not fold: %s", f.Cond)
	}
	p = MustParsePattern("(?x a ?y) FILTER (c = d)")
	if _, ok := p.(sparql.Filter).Cond.(sparql.FalseCond); !ok {
		t.Fatalf("unequal constants did not fold: %s", p)
	}
	// Reversed constant-variable equality normalizes to EqConst.
	p = MustParsePattern("(?x a ?y) FILTER (c = ?x)")
	if eq, ok := p.(sparql.Filter).Cond.(sparql.EqConst); !ok || eq.X != "x" || eq.C != "c" {
		t.Fatalf("got %s", p)
	}
}

func TestParseMinusSugar(t *testing.T) {
	p := MustParsePattern("(?x a ?y) MINUS (?x b ?z)")
	// MINUS desugars per Appendix D to (P1 OPT (P2 AND (?m ?m ?m))) FILTER !bound(?m).
	f, ok := p.(sparql.Filter)
	if !ok {
		t.Fatalf("got %T: %s", p, p)
	}
	if _, ok := f.Cond.(sparql.Not); !ok {
		t.Fatalf("cond = %s", f.Cond)
	}
	opt, ok := f.P.(sparql.Opt)
	if !ok {
		t.Fatalf("body = %s", f.P)
	}
	if _, ok := opt.R.(sparql.And); !ok {
		t.Fatalf("opt right = %s", opt.R)
	}
	// Semantics check: MINUS removes compatible mappings.
	g := rdf.FromTriples(rdf.T("1", "a", "2"), rdf.T("1", "b", "3"), rdf.T("4", "a", "5"))
	r := sparql.Eval(g, p)
	if r.Len() != 1 || !r.Contains(sparql.M("x", "4", "y", "5")) {
		t.Fatalf("MINUS eval = %v", r)
	}
}

func TestParseConstruct(t *testing.T) {
	q := MustParseConstruct(`CONSTRUCT {(?n affiliated_to ?u), (?n email ?e)}
		WHERE ((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	if len(q.Template) != 2 {
		t.Fatalf("template = %v", q.Template)
	}
	if _, ok := q.Where.(sparql.Opt); !ok {
		t.Fatalf("where = %s", q.Where)
	}
	// Empty template is allowed.
	q = MustParseConstruct("CONSTRUCT {} WHERE (?x a ?y)")
	if len(q.Template) != 0 {
		t.Fatalf("template = %v", q.Template)
	}
}

func TestParseQueryDispatch(t *testing.T) {
	q, err := ParseQuery("CONSTRUCT {(?x a ?y)} WHERE (?x b ?y)")
	if err != nil || q.Construct == nil || q.Pattern != nil {
		t.Fatalf("q = %+v, err = %v", q, err)
	}
	q, err = ParseQuery("(?x b ?y)")
	if err != nil || q.Pattern == nil || q.Construct != nil {
		t.Fatalf("q = %+v, err = %v", q, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(?x a)",
		"(?x a b c)",
		"(?x a ?y) AND",
		"SELECT WHERE (?x a ?y)",
		"SELECT {?x WHERE (?x a ?y)",
		"NS (?x a ?y",
		"(?x a ?y) FILTER (?x)",
		"(?x a ?y) FILTER (bound(x))",
		"(?x a ?y) FILTER (?x = )",
		"(?x a ?y) extra",
		"(?x a ?y) FILTER (?x & ?y)",
		"(?x a ?y) FILTER (?x | ?y)",
		"(? a b)",
		"(<unterminated a b)",
		"CONSTRUCT {(?x a ?y) WHERE (?x a ?y)",
		"CONSTRUCT {(?x a ?y)} (?x a ?y)",
	}
	for _, s := range bad {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", s)
		}
	}
}

func TestParseComments(t *testing.T) {
	p := MustParsePattern("(?x a ?y) # trailing comment\n AND (?y b ?z)")
	if _, ok := p.(sparql.And); !ok {
		t.Fatalf("got %s", p)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	queries := []string{
		"(?o stands_for sharing_rights) AND ((?p founder ?o) UNION (?p supporter ?o))",
		"SELECT {?p} WHERE ((?p founder ?o) OPT (?p email ?e))",
		"NS((?x was_born_in Chile) UNION ((?x was_born_in Chile) AND (?x email ?y)))",
		"((?x a b) FILTER (bound(?x) && !(?x = c))) UNION (SELECT {?x} WHERE (?x d ?y))",
		"(?x <iri with space> ?y) FILTER (?x = <AND>)",
	}
	for _, s := range queries {
		p1 := MustParsePattern(s)
		p2, err := ParsePattern(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p1.String(), err)
		}
		if !sparql.Equal(p1, p2) {
			t.Fatalf("round trip changed pattern:\n%s\nvs\n%s", p1, p2)
		}
	}
}

// randomPattern builds a random pattern for the round-trip property test.
func randomPattern(rng *rand.Rand, depth int) sparql.Pattern {
	if depth == 0 || rng.Intn(3) == 0 {
		vals := make([]sparql.Value, 3)
		for i := range vals {
			if rng.Intn(2) == 0 {
				vals[i] = sparql.V(sparql.Var(rune('A' + rng.Intn(4))))
			} else {
				vals[i] = sparql.I(rdf.IRI(rune('a' + rng.Intn(4))))
			}
		}
		return sparql.TP(vals[0], vals[1], vals[2])
	}
	switch rng.Intn(6) {
	case 0:
		return sparql.And{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 1:
		return sparql.Union{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 2:
		return sparql.Opt{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 3:
		return sparql.Filter{P: randomPattern(rng, depth-1), Cond: randomCond(rng, 2)}
	case 4:
		return sparql.NewSelect([]sparql.Var{sparql.Var(rune('A' + rng.Intn(4)))}, randomPattern(rng, depth-1))
	default:
		return sparql.NS{P: randomPattern(rng, depth-1)}
	}
}

func randomCond(rng *rand.Rand, depth int) sparql.Condition {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return sparql.Bound{X: sparql.Var(rune('A' + rng.Intn(4)))}
		case 1:
			return sparql.EqConst{X: sparql.Var(rune('A' + rng.Intn(4))), C: rdf.IRI(rune('a' + rng.Intn(4)))}
		default:
			return sparql.EqVars{X: sparql.Var(rune('A' + rng.Intn(4))), Y: sparql.Var(rune('A' + rng.Intn(4)))}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return sparql.Not{R: randomCond(rng, depth-1)}
	case 1:
		return sparql.AndCond{L: randomCond(rng, depth-1), R: randomCond(rng, depth-1)}
	default:
		return sparql.OrCond{L: randomCond(rng, depth-1), R: randomCond(rng, depth-1)}
	}
}

func TestPrintParseRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng, 3)
		q, err := ParsePattern(p.String())
		if err != nil {
			t.Logf("parse of %q failed: %v", p.String(), err)
			return false
		}
		return sparql.Equal(p, q)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstructPrintParseRoundTrip(t *testing.T) {
	q1 := MustParseConstruct("CONSTRUCT {(?n affiliated_to ?u)} WHERE (?p name ?n) AND (?p works_at ?u)")
	q2, err := ParseConstruct(q1.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v (text %q)", err, q1.String())
	}
	if !sparql.Equal(q1.Where, q2.Where) || len(q1.Template) != len(q2.Template) {
		t.Fatalf("round trip changed query: %s vs %s", q1, q2)
	}
}

func TestParseGroundTriple(t *testing.T) {
	tr, err := ParseGroundTriple("(a b c)")
	if err != nil || tr != rdf.T("a", "b", "c") {
		t.Fatalf("tr = %v, err = %v", tr, err)
	}
	if _, err := ParseGroundTriple("(?x b c)"); err == nil {
		t.Fatal("ground parse with variable succeeded")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	p := MustParsePattern("select {?x} where (?x a ?y) and (?y b ?z)")
	if _, ok := p.(sparql.Select); !ok {
		t.Fatalf("got %s", p)
	}
	if !strings.Contains(p.String(), "AND") {
		t.Fatalf("printer did not normalize keywords: %s", p)
	}
}
