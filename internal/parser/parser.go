package parser

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// Query is the result of ParseQuery: either a graph pattern or a
// CONSTRUCT query (exactly one field is set).
type Query struct {
	Pattern   sparql.Pattern
	Construct *sparql.ConstructQuery
}

// ParsePattern parses a graph pattern.
func ParsePattern(input string) (sparql.Pattern, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustParsePattern is ParsePattern but panics on error; intended for
// tests and examples with literal query text.
func MustParsePattern(input string) sparql.Pattern {
	pat, err := ParsePattern(input)
	if err != nil {
		panic(err)
	}
	return pat
}

// ParseConstruct parses a CONSTRUCT query.
func ParseConstruct(input string) (sparql.ConstructQuery, error) {
	p, err := newParser(input)
	if err != nil {
		return sparql.ConstructQuery{}, err
	}
	q, err := p.parseConstruct()
	if err != nil {
		return sparql.ConstructQuery{}, err
	}
	if err := p.expect(tokEOF); err != nil {
		return sparql.ConstructQuery{}, err
	}
	return q, nil
}

// MustParseConstruct is ParseConstruct but panics on error.
func MustParseConstruct(input string) sparql.ConstructQuery {
	q, err := ParseConstruct(input)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseQuery parses either a graph pattern or a CONSTRUCT query,
// depending on the leading keyword.
func ParseQuery(input string) (Query, error) {
	p, err := newParser(input)
	if err != nil {
		return Query{}, err
	}
	if p.peek().kind == tokKeyword && p.peek().val == "CONSTRUCT" {
		q, err := ParseConstruct(input)
		if err != nil {
			return Query{}, err
		}
		return Query{Construct: &q}, nil
	}
	pat, err := ParsePattern(input)
	if err != nil {
		return Query{}, err
	}
	return Query{Pattern: pat}, nil
}

// Parsed is the syntax-independent shape of a parsed query: the graph
// pattern to evaluate, the CONSTRUCT template if any, and whether the
// query is an ASK.  Exactly the inputs an executor needs, regardless
// of which surface syntax produced them.
type Parsed struct {
	// Pattern is the graph pattern to evaluate (the WHERE pattern for
	// CONSTRUCT queries).
	Pattern sparql.Pattern
	// Construct is non-nil for CONSTRUCT queries.
	Construct *sparql.ConstructQuery
	// Ask is set for ASK queries (W3C syntax only).
	Ask bool
}

// ParseAny parses input under the named surface syntax: "" or
// "sparql" for the W3C-style syntax, "paper" for the paper notation.
// nsserve and nscoord share it so both speak identical dialects.
func ParseAny(syntax, input string) (Parsed, error) {
	switch syntax {
	case "", "sparql":
		sq, err := ParseSPARQL(input)
		if err != nil {
			return Parsed{}, err
		}
		out := Parsed{Construct: sq.Construct, Ask: sq.Ask, Pattern: sq.Pattern}
		if sq.Construct != nil {
			out.Pattern = sq.Construct.Where
		}
		return out, nil
	case "paper":
		q, err := ParseQuery(input)
		if err != nil {
			return Parsed{}, err
		}
		out := Parsed{Construct: q.Construct, Pattern: q.Pattern}
		if q.Construct != nil {
			out.Pattern = q.Construct.Where
		}
		return out, nil
	default:
		return Parsed{}, fmt.Errorf("unknown syntax %q (want \"sparql\" or \"paper\")", syntax)
	}
}

type parser struct {
	toks []token
	pos  int
}

func newParser(input string) (*parser, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind) error {
	if p.peek().kind != kind {
		want := map[tokenKind]string{
			tokEOF: "end of input", tokLParen: "'('", tokRParen: "')'",
			tokLBrace: "'{'", tokRBrace: "'}'",
		}[kind]
		return p.errorf("expected %s, found %s", want, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.val != kw {
		return p.errorf("expected %s, found %s", kw, t)
	}
	p.next()
	return nil
}

// parsePattern := parseUnion
func (p *parser) parsePattern() (sparql.Pattern, error) { return p.parseUnion() }

func (p *parser) parseUnion() (sparql.Pattern, error) {
	left, err := p.parseOpt()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().val == "UNION" {
		p.next()
		right, err := p.parseOpt()
		if err != nil {
			return nil, err
		}
		left = sparql.Union{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseOpt() (sparql.Pattern, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && (p.peek().val == "OPT" || p.peek().val == "OPTIONAL" || p.peek().val == "MINUS") {
		op := p.next().val
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if op == "MINUS" {
			left = transform.Minus(left, right)
		} else {
			left = sparql.Opt{L: left, R: right}
		}
	}
	return left, nil
}

func (p *parser) parseAnd() (sparql.Pattern, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().val == "AND" {
		p.next()
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		left = sparql.And{L: left, R: right}
	}
	return left, nil
}

// parsePostfix := parsePrimary ("FILTER" "(" cond ")")*
func (p *parser) parsePostfix() (sparql.Pattern, error) {
	pat, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().val == "FILTER" {
		p.next()
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		pat = sparql.Filter{P: pat, Cond: cond}
	}
	return pat, nil
}

func (p *parser) parsePrimary() (sparql.Pattern, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		// A '(' followed by a term token is a triple pattern; anything
		// else is a parenthesized pattern.
		if k := p.peek().kind; k == tokVar || k == tokIRI {
			p.backup()
			return p.parseTriple()
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return pat, nil
	case t.kind == tokKeyword && t.val == "NS":
		p.next()
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return sparql.NS{P: pat}, nil
	case t.kind == tokKeyword && t.val == "SELECT":
		p.next()
		vars, err := p.parseVarList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		body, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		return sparql.NewSelect(vars, body), nil
	default:
		return nil, p.errorf("expected a graph pattern, found %s", t)
	}
}

// parseVarList := "{" [?v ("," ?v)*] "}" | ?v+
func (p *parser) parseVarList() ([]sparql.Var, error) {
	var vars []sparql.Var
	if p.peek().kind == tokLBrace {
		p.next()
		for p.peek().kind != tokRBrace {
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			if p.peek().kind != tokVar {
				return nil, p.errorf("expected a variable in SELECT list, found %s", p.peek())
			}
			vars = append(vars, sparql.Var(p.next().val))
		}
		p.next() // '}'
		return vars, nil
	}
	for p.peek().kind == tokVar {
		vars = append(vars, sparql.Var(p.next().val))
	}
	if len(vars) == 0 {
		return nil, p.errorf("expected a variable list after SELECT, found %s", p.peek())
	}
	return vars, nil
}

// parseTriple := "(" term term term ")"
func (p *parser) parseTriple() (sparql.Pattern, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	vals := make([]sparql.Value, 0, 3)
	for i := 0; i < 3; i++ {
		v, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return sparql.TP(vals[0], vals[1], vals[2]), nil
}

func (p *parser) parseTerm() (sparql.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return sparql.V(sparql.Var(t.val)), nil
	case tokIRI:
		p.next()
		return sparql.I(iriOf(t)), nil
	default:
		return sparql.Value{}, p.errorf("expected a variable or IRI, found %s", t)
	}
}

// parseConstruct := "CONSTRUCT" "{" [triple (","? triple)*] "}" "WHERE" pattern
func (p *parser) parseConstruct() (sparql.ConstructQuery, error) {
	if err := p.expectKeyword("CONSTRUCT"); err != nil {
		return sparql.ConstructQuery{}, err
	}
	if err := p.expect(tokLBrace); err != nil {
		return sparql.ConstructQuery{}, err
	}
	var tmpl []sparql.TriplePattern
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		tp, err := p.parseTriple()
		if err != nil {
			return sparql.ConstructQuery{}, err
		}
		tmpl = append(tmpl, tp.(sparql.TriplePattern))
	}
	p.next() // '}'
	if err := p.expectKeyword("WHERE"); err != nil {
		return sparql.ConstructQuery{}, err
	}
	where, err := p.parsePattern()
	if err != nil {
		return sparql.ConstructQuery{}, err
	}
	return sparql.ConstructQuery{Template: tmpl, Where: where}, nil
}

// parseCond := parseCondAnd ("||" parseCondAnd)*
func (p *parser) parseCond() (sparql.Condition, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOrOr {
		p.next()
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = sparql.OrCond{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCondAnd() (sparql.Condition, error) {
	left, err := p.parseCondNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAndAnd {
		p.next()
		right, err := p.parseCondNot()
		if err != nil {
			return nil, err
		}
		left = sparql.AndCond{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCondNot() (sparql.Condition, error) {
	if p.peek().kind == tokBang {
		p.next()
		inner, err := p.parseCondNot()
		if err != nil {
			return nil, err
		}
		return sparql.Not{R: inner}, nil
	}
	return p.parseCondAtom()
}

func (p *parser) parseCondAtom() (sparql.Condition, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return cond, nil
	case t.kind == tokKeyword && t.val == "BOUND":
		p.next()
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if p.peek().kind != tokVar {
			return nil, p.errorf("expected a variable in bound(), found %s", p.peek())
		}
		v := sparql.Var(p.next().val)
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return sparql.Bound{X: v}, nil
	case t.kind == tokKeyword && t.val == "TRUE":
		p.next()
		return sparql.TrueCond{}, nil
	case t.kind == tokKeyword && t.val == "FALSE":
		p.next()
		return sparql.FalseCond{}, nil
	case t.kind == tokVar || t.kind == tokIRI:
		return p.parseEquality()
	default:
		return nil, p.errorf("expected a filter condition, found %s", t)
	}
}

// parseEquality := term ("=" | "!=") term, normalized so that equalities
// between two constants fold to true/false.
func (p *parser) parseEquality() (sparql.Condition, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	negate := false
	switch p.peek().kind {
	case tokEq:
		p.next()
	case tokNeq:
		p.next()
		negate = true
	default:
		return nil, p.errorf("expected '=' or '!=' in filter condition, found %s", p.peek())
	}
	rhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	cond := makeEquality(lhs, rhs)
	if negate {
		cond = sparql.Not{R: cond}
	}
	return cond, nil
}

func makeEquality(lhs, rhs sparql.Value) sparql.Condition {
	switch {
	case lhs.IsVar() && rhs.IsVar():
		return sparql.EqVars{X: lhs.Var(), Y: rhs.Var()}
	case lhs.IsVar():
		return sparql.EqConst{X: lhs.Var(), C: rhs.IRI()}
	case rhs.IsVar():
		return sparql.EqConst{X: rhs.Var(), C: lhs.IRI()}
	default:
		if lhs.IRI() == rhs.IRI() {
			return sparql.TrueCond{}
		}
		return sparql.FalseCond{}
	}
}

// ParseTemplateTriple parses a single "(s p o)" template triple; used by
// command-line tools that accept a triple argument.
func ParseTemplateTriple(input string) (sparql.TriplePattern, error) {
	p, err := newParser(input)
	if err != nil {
		return sparql.TriplePattern{}, err
	}
	tp, err := p.parseTriple()
	if err != nil {
		return sparql.TriplePattern{}, err
	}
	if err := p.expect(tokEOF); err != nil {
		return sparql.TriplePattern{}, err
	}
	return tp.(sparql.TriplePattern), nil
}

// ParseGroundTriple parses "(s p o)" where all positions are IRIs.
func ParseGroundTriple(input string) (rdf.Triple, error) {
	tp, err := ParseTemplateTriple(input)
	if err != nil {
		return rdf.Triple{}, err
	}
	mu := sparql.Mapping{}
	tr, ok := mu.Apply(tp)
	if !ok {
		return rdf.Triple{}, fmt.Errorf("triple %q contains variables", input)
	}
	return tr, nil
}
