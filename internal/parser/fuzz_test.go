package parser

import (
	"testing"

	"repro/internal/sparql"
)

// FuzzParseQuery checks that the parser never panics on arbitrary
// input, and that whenever it accepts a pattern, the printed form
// re-parses to a structurally equal pattern.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"(?x a ?y)",
		"(?o stands_for sharing_rights) AND ((?p founder ?o) UNION (?p supporter ?o))",
		"SELECT {?p} WHERE (?p founder ?o)",
		"NS((?x a b) UNION ((?x a b) AND (?x c ?y)))",
		"(?x a ?y) FILTER (bound(?x) && !(?x = c) || ?x != ?y)",
		"(?x a ?y) MINUS (?x b ?z)",
		"CONSTRUCT {(?n aff ?u), (?n email ?e)} WHERE (?p name ?n) OPT (?p email ?e)",
		"(<iri with space> <AND> ?y)",
		"((((",
		"SELECT WHERE",
		"?x = ?y",
		"# only a comment",
		"NS(NS(NS((?x a b))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(input)
		if err != nil {
			return
		}
		switch {
		case q.Pattern != nil:
			printed := q.Pattern.String()
			p2, err := ParsePattern(printed)
			if err != nil {
				t.Fatalf("printed pattern does not re-parse: %q: %v", printed, err)
			}
			if !sparql.Equal(q.Pattern, p2) {
				t.Fatalf("round trip changed pattern: %q vs %q", printed, p2)
			}
		case q.Construct != nil:
			printed := q.Construct.String()
			if _, err := ParseConstruct(printed); err != nil {
				t.Fatalf("printed CONSTRUCT does not re-parse: %q: %v", printed, err)
			}
		}
	})
}

// FuzzLexer checks the tokenizer in isolation on arbitrary bytes.
func FuzzLexer(f *testing.F) {
	f.Add("(?x a ?y) && || ! != = <unterminated")
	f.Add("? # &")
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err == nil && (len(toks) == 0 || toks[len(toks)-1].kind != tokEOF) {
			t.Fatal("token stream does not end with EOF")
		}
	})
}

// FuzzParseSPARQL checks the W3C-style parser never panics.
func FuzzParseSPARQL(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE { ?x a ?y }",
		"PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT * WHERE { ?p foaf:name ?n ; foaf:mbox ?m , ?m2 . }",
		"ASK { { ?x a ?y } UNION { ?x b ?y } FILTER bound(?x) }",
		"CONSTRUCT { ?x out ?y } WHERE { ?x in ?y . OPTIONAL { ?x opt ?z } }",
		"SELECT * WHERE { NS { ?x a ?y } MINUS { ?x bad ?z } }",
		"SELECT ?x WHERE {{{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseSPARQL(input)
		if err != nil {
			return
		}
		if q.Pattern == nil && q.Construct == nil {
			t.Fatal("accepted query with no content")
		}
	})
}
