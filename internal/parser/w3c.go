package parser

// W3C-style surface syntax.  Besides the paper-style notation of
// ParsePattern, the package accepts queries in the shape users write
// for real SPARQL engines:
//
//	PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//	SELECT ?n ?m WHERE {
//	  ?p foaf:name ?n ; foaf:workplaceHomepage ?w .
//	  OPTIONAL { ?p foaf:mbox ?m }
//	  FILTER (?w != foaf:nowhere && bound(?n))
//	}
//
// Supported: PREFIX declarations, SELECT (with variable list or *),
// ASK, CONSTRUCT { ... } WHERE { ... }, group graph patterns with
// triple blocks ('.' separators, ';' predicate lists, ',' object
// lists, 'a' for rdf:type), OPTIONAL, UNION between groups, FILTER,
// nested groups — and, as the paper's extension, NS { ... } for the
// not-subsumed operator and MINUS { ... } (the Appendix D difference:
// removal on compatibility).
//
// Deliberate deviations, matching the data model of the paper: plain
// literals are admitted and stored as IRIs (the model is IRI-only),
// SELECT is always DISTINCT (set semantics), and blank nodes are not
// supported.

import (
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// SPARQLQuery is a parsed W3C-style query.
type SPARQLQuery struct {
	// Ask is set for ASK queries; Pattern holds the group pattern.
	Ask bool
	// Pattern is set for SELECT and ASK queries.
	Pattern sparql.Pattern
	// Construct is set for CONSTRUCT queries.
	Construct *sparql.ConstructQuery
}

// ParseSPARQL parses a query in the W3C-style surface syntax.
func ParseSPARQL(input string) (SPARQLQuery, error) {
	p, err := newParser(input)
	if err != nil {
		return SPARQLQuery{}, err
	}
	w := &w3cParser{parser: p, prefixes: make(map[string]string)}
	q, err := w.parseQuery()
	if err != nil {
		return SPARQLQuery{}, err
	}
	if err := p.expect(tokEOF); err != nil {
		return SPARQLQuery{}, err
	}
	return q, nil
}

// MustParseSPARQL is ParseSPARQL but panics on error.
func MustParseSPARQL(input string) SPARQLQuery {
	q, err := ParseSPARQL(input)
	if err != nil {
		panic(err)
	}
	return q
}

type w3cParser struct {
	*parser
	prefixes map[string]string
}

// word reports whether the current token is the given bare word or
// keyword, case-insensitively.
func (w *w3cParser) word(s string) bool {
	t := w.peek()
	return (t.kind == tokKeyword || t.kind == tokIRI) && strings.EqualFold(t.val, s)
}

func (w *w3cParser) expectWord(s string) error {
	if !w.word(s) {
		return w.errorf("expected %s, found %s", s, w.peek())
	}
	w.next()
	return nil
}

func (w *w3cParser) parseQuery() (SPARQLQuery, error) {
	for w.word("PREFIX") {
		w.next()
		name := w.peek()
		if name.kind != tokIRI || !strings.HasSuffix(name.val, ":") {
			return SPARQLQuery{}, w.errorf("expected a prefix name ending in ':', found %s", name)
		}
		w.next()
		iri := w.peek()
		if iri.kind != tokIRI {
			return SPARQLQuery{}, w.errorf("expected the prefix IRI, found %s", iri)
		}
		w.next()
		w.prefixes[strings.TrimSuffix(name.val, ":")] = iri.val
	}
	switch {
	case w.word("SELECT"):
		w.next()
		if w.word("DISTINCT") {
			w.next() // set semantics anyway
		}
		var vars []sparql.Var
		star := false
		if t := w.peek(); t.kind == tokIRI && t.val == "*" {
			star = true
			w.next()
		} else {
			for w.peek().kind == tokVar {
				vars = append(vars, sparql.Var(w.next().val))
			}
			if len(vars) == 0 {
				return SPARQLQuery{}, w.errorf("expected variables or * after SELECT, found %s", w.peek())
			}
		}
		if w.word("WHERE") {
			w.next()
		}
		body, err := w.parseGroup()
		if err != nil {
			return SPARQLQuery{}, err
		}
		if star {
			return SPARQLQuery{Pattern: body}, nil
		}
		return SPARQLQuery{Pattern: sparql.NewSelect(vars, body)}, nil
	case w.word("ASK"):
		w.next()
		body, err := w.parseGroup()
		if err != nil {
			return SPARQLQuery{}, err
		}
		return SPARQLQuery{Ask: true, Pattern: body}, nil
	case w.word("CONSTRUCT"):
		w.next()
		if err := w.expect(tokLBrace); err != nil {
			return SPARQLQuery{}, err
		}
		tmpl, err := w.parseTriplesBlock()
		if err != nil {
			return SPARQLQuery{}, err
		}
		if err := w.expect(tokRBrace); err != nil {
			return SPARQLQuery{}, err
		}
		if err := w.expectWord("WHERE"); err != nil {
			return SPARQLQuery{}, err
		}
		body, err := w.parseGroup()
		if err != nil {
			return SPARQLQuery{}, err
		}
		return SPARQLQuery{Construct: &sparql.ConstructQuery{Template: tmpl, Where: body}}, nil
	default:
		return SPARQLQuery{}, w.errorf("expected SELECT, ASK or CONSTRUCT, found %s", w.peek())
	}
}

// parseGroup parses { element* } and combines the elements with the
// standard semantics: triple blocks and groups join, OPTIONAL
// left-joins against the group so far, and FILTERs apply to the whole
// group.
func (w *w3cParser) parseGroup() (sparql.Pattern, error) {
	if err := w.expect(tokLBrace); err != nil {
		return nil, err
	}
	var cur sparql.Pattern
	var filters []sparql.Condition
	combine := func(p sparql.Pattern) {
		if cur == nil {
			cur = p
		} else {
			cur = sparql.And{L: cur, R: p}
		}
	}
	for w.peek().kind != tokRBrace {
		switch {
		case w.peek().kind == tokEOF:
			return nil, w.errorf("unterminated group (missing '}')")
		case w.word("OPTIONAL") || w.word("OPT"):
			w.next()
			inner, err := w.parseGroup()
			if err != nil {
				return nil, err
			}
			if cur == nil {
				return nil, w.errorf("OPTIONAL cannot be the first element of a group")
			}
			cur = sparql.Opt{L: cur, R: inner}
		case w.word("MINUS"):
			w.next()
			inner, err := w.parseGroup()
			if err != nil {
				return nil, err
			}
			if cur == nil {
				return nil, w.errorf("MINUS cannot be the first element of a group")
			}
			cur = transform.Minus(cur, inner)
		case w.word("NS"):
			w.next()
			inner, err := w.parseGroup()
			if err != nil {
				return nil, err
			}
			combine(sparql.NS{P: inner})
		case w.word("FILTER"):
			w.next()
			withParens := w.peek().kind == tokLParen
			if withParens {
				w.next()
			}
			cond, err := w.parseW3CCond()
			if err != nil {
				return nil, err
			}
			if withParens {
				if err := w.expect(tokRParen); err != nil {
					return nil, err
				}
			}
			filters = append(filters, cond)
		case w.peek().kind == tokLBrace:
			// Group, possibly a UNION chain.
			p, err := w.parseGroupUnionChain()
			if err != nil {
				return nil, err
			}
			combine(p)
		default:
			block, err := w.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			if len(block) == 0 {
				return nil, w.errorf("expected a graph-pattern element, found %s", w.peek())
			}
			ps := make([]sparql.Pattern, len(block))
			for i, t := range block {
				ps[i] = t
			}
			combine(sparql.AndOf(ps...))
		}
	}
	w.next() // '}'
	if cur == nil {
		return nil, w.errorf("empty group graph pattern is not supported (the algebra has no unit pattern)")
	}
	if len(filters) > 0 {
		cur = sparql.Filter{P: cur, Cond: sparql.ConjoinConds(filters...)}
	}
	return cur, nil
}

// parseGroupUnionChain parses group (UNION group)*.
func (w *w3cParser) parseGroupUnionChain() (sparql.Pattern, error) {
	left, err := w.parseGroup()
	if err != nil {
		return nil, err
	}
	for w.word("UNION") {
		w.next()
		right, err := w.parseGroup()
		if err != nil {
			return nil, err
		}
		left = sparql.Union{L: left, R: right}
	}
	return left, nil
}

// parseTriplesBlock parses triples with the '.', ';' and ','
// abbreviations, until a token that cannot continue the block.
func (w *w3cParser) parseTriplesBlock() ([]sparql.TriplePattern, error) {
	var out []sparql.TriplePattern
	for {
		if !w.startsTerm() {
			return out, nil
		}
		s, err := w.parseW3CTerm()
		if err != nil {
			return nil, err
		}
		for {
			p, err := w.parseW3CTerm()
			if err != nil {
				return nil, err
			}
			for {
				o, err := w.parseW3CTerm()
				if err != nil {
					return nil, err
				}
				out = append(out, sparql.TP(s, p, o))
				if w.isPunct(",") {
					w.next()
					continue
				}
				break
			}
			if w.isPunct(";") {
				w.next()
				// A dangling ';' before '.' or '}' is tolerated.
				if !w.startsTerm() {
					break
				}
				continue
			}
			break
		}
		if w.isPunct(".") {
			w.next()
		}
	}
}

// startsTerm reports whether the current token can begin a term.
func (w *w3cParser) startsTerm() bool {
	t := w.peek()
	switch t.kind {
	case tokVar:
		return true
	case tokIRI:
		return t.val != "." && t.val != ";" && t.val != "*"
	case tokKeyword:
		// Only 'a' (rdf:type) — every other keyword ends the block.
		return false
	}
	return false
}

func (w *w3cParser) isPunct(s string) bool {
	t := w.peek()
	if s == "," {
		return t.kind == tokComma
	}
	// '.' and ';' lex as bare words (they are legal IRI characters).
	return t.kind == tokIRI && t.val == s
}

func (w *w3cParser) parseW3CTerm() (sparql.Value, error) {
	t := w.peek()
	switch t.kind {
	case tokVar:
		w.next()
		return sparql.V(sparql.Var(t.val)), nil
	case tokIRI:
		w.next()
		if t.val == "a" {
			return sparql.I(rdf.IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")), nil
		}
		return sparql.I(w.expand(t.val)), nil
	default:
		return sparql.Value{}, w.errorf("expected a term, found %s", t)
	}
}

// expand resolves a prefixed name against the prologue; names without
// a declared prefix pass through unchanged (any string is an IRI in
// this data model).
func (w *w3cParser) expand(name string) rdf.IRI {
	if i := strings.Index(name, ":"); i >= 0 {
		if base, ok := w.prefixes[name[:i]]; ok {
			return rdf.IRI(base + name[i+1:])
		}
	}
	return rdf.IRI(name)
}

// parseW3CCond parses filter expressions with ||, &&, !, comparisons
// and BOUND, resolving prefixed names in constants.
func (w *w3cParser) parseW3CCond() (sparql.Condition, error) {
	left, err := w.parseW3CCondAnd()
	if err != nil {
		return nil, err
	}
	for w.peek().kind == tokOrOr {
		w.next()
		right, err := w.parseW3CCondAnd()
		if err != nil {
			return nil, err
		}
		left = sparql.OrCond{L: left, R: right}
	}
	return left, nil
}

func (w *w3cParser) parseW3CCondAnd() (sparql.Condition, error) {
	left, err := w.parseW3CCondNot()
	if err != nil {
		return nil, err
	}
	for w.peek().kind == tokAndAnd {
		w.next()
		right, err := w.parseW3CCondNot()
		if err != nil {
			return nil, err
		}
		left = sparql.AndCond{L: left, R: right}
	}
	return left, nil
}

func (w *w3cParser) parseW3CCondNot() (sparql.Condition, error) {
	if w.peek().kind == tokBang {
		w.next()
		inner, err := w.parseW3CCondNot()
		if err != nil {
			return nil, err
		}
		return sparql.Not{R: inner}, nil
	}
	t := w.peek()
	switch {
	case t.kind == tokLParen:
		w.next()
		cond, err := w.parseW3CCond()
		if err != nil {
			return nil, err
		}
		if err := w.expect(tokRParen); err != nil {
			return nil, err
		}
		return cond, nil
	case t.kind == tokKeyword && t.val == "BOUND":
		w.next()
		if err := w.expect(tokLParen); err != nil {
			return nil, err
		}
		if w.peek().kind != tokVar {
			return nil, w.errorf("expected a variable in bound(), found %s", w.peek())
		}
		v := sparql.Var(w.next().val)
		if err := w.expect(tokRParen); err != nil {
			return nil, err
		}
		return sparql.Bound{X: v}, nil
	case t.kind == tokKeyword && t.val == "TRUE":
		w.next()
		return sparql.TrueCond{}, nil
	case t.kind == tokKeyword && t.val == "FALSE":
		w.next()
		return sparql.FalseCond{}, nil
	case t.kind == tokVar || t.kind == tokIRI:
		lhs, err := w.parseW3CTerm()
		if err != nil {
			return nil, err
		}
		negate := false
		switch w.peek().kind {
		case tokEq:
			w.next()
		case tokNeq:
			w.next()
			negate = true
		default:
			return nil, w.errorf("expected '=' or '!=', found %s", w.peek())
		}
		rhs, err := w.parseW3CTerm()
		if err != nil {
			return nil, err
		}
		cond := makeEquality(lhs, rhs)
		if negate {
			cond = sparql.Not{R: cond}
		}
		return cond, nil
	default:
		return nil, w.errorf("expected a filter expression, found %s", t)
	}
}
