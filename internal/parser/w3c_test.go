package parser

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func TestParseSPARQLSelect(t *testing.T) {
	q := MustParseSPARQL(`
		PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT ?n ?m WHERE {
		  ?p foaf:name ?n ; foaf:workplace ?w .
		  OPTIONAL { ?p foaf:mbox ?m }
		  FILTER (?w != foaf:nowhere && bound(?n))
		}`)
	if q.Ask || q.Construct != nil {
		t.Fatal("wrong query kind")
	}
	sel, ok := q.Pattern.(sparql.Select)
	if !ok || len(sel.Vars) != 2 {
		t.Fatalf("got %s", q.Pattern)
	}
	// The prefix expanded.
	if !strings.Contains(q.Pattern.String(), "http://xmlns.com/foaf/0.1/name") {
		t.Fatalf("prefix not expanded: %s", q.Pattern)
	}
	// The filter applies to the whole group (outside the OPT).
	f, ok := sel.P.(sparql.Filter)
	if !ok {
		t.Fatalf("filter not at group level: %s", sel.P)
	}
	if _, ok := f.P.(sparql.Opt); !ok {
		t.Fatalf("OPTIONAL structure wrong: %s", f.P)
	}
}

func TestParseSPARQLSemantics(t *testing.T) {
	// The surface query and the paper-notation query mean the same.
	g := workload.Figure2G2()
	w3c := MustParseSPARQL(`SELECT * WHERE {
		?X was_born_in Chile .
		OPTIONAL { ?X email ?Y }
	}`)
	paper := MustParsePattern(`(?X was_born_in Chile) OPT (?X email ?Y)`)
	if !sparql.Eval(g, w3c.Pattern).Equal(sparql.Eval(g, paper)) {
		t.Fatalf("surface and paper syntax disagree:\n%s\nvs\n%s", w3c.Pattern, paper)
	}
}

func TestParseSPARQLAbbreviations(t *testing.T) {
	q := MustParseSPARQL(`ASK { ?p name ?n ; email ?e , ?e2 . ?p a Person }`)
	if !q.Ask {
		t.Fatal("not an ASK query")
	}
	// ; and , expand to 3 triples about ?p plus the rdf:type one.
	g := rdf.FromTriples(
		rdf.T("x", "name", "n1"),
		rdf.T("x", "email", "e1"), rdf.T("x", "email", "e2"),
		rdf.T("x", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "Person"),
	)
	res := sparql.Eval(g, q.Pattern)
	// ?e and ?e2 independently range over the two email triples.
	if res.Len() != 4 {
		t.Fatalf("answers = %v", res)
	}
}

func TestParseSPARQLUnionAndNested(t *testing.T) {
	q := MustParseSPARQL(`SELECT ?p WHERE {
		?o stands_for sharing_rights .
		{ ?p founder ?o } UNION { ?p supporter ?o }
	}`)
	got := sparql.Eval(workload.Figure1(), q.Pattern)
	if got.Len() != 4 {
		t.Fatalf("Example 2.2 via W3C syntax: %v", got)
	}
}

func TestParseSPARQLNSExtension(t *testing.T) {
	q := MustParseSPARQL(`SELECT * WHERE {
		NS { { ?x was_born_in Chile } UNION { ?x was_born_in Chile . ?x email ?y } }
	}`)
	if !sparql.Ops(q.Pattern)[sparql.OpNS] {
		t.Fatalf("NS extension lost: %s", q.Pattern)
	}
	g := workload.Figure2G2()
	want := sparql.NewMappingSet(sparql.M("x", "Juan", "y", "juan@puc.cl"))
	if !sparql.Eval(g, q.Pattern).Equal(want) {
		t.Fatalf("NS group eval = %v", sparql.Eval(g, q.Pattern))
	}
}

func TestParseSPARQLMinus(t *testing.T) {
	q := MustParseSPARQL(`SELECT * WHERE { ?x a Person . MINUS { ?x banned ?r } }`)
	g := rdf.FromTriples(
		rdf.T("ok", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "Person"),
		rdf.T("bad", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "Person"),
		rdf.T("bad", "banned", "spam"),
	)
	res := sparql.Eval(g, q.Pattern)
	if res.Len() != 1 || !res.Contains(sparql.M("x", "ok")) {
		t.Fatalf("MINUS eval = %v", res)
	}
}

func TestParseSPARQLConstruct(t *testing.T) {
	q := MustParseSPARQL(`CONSTRUCT { ?n affiliated_to ?u . ?n email ?e }
		WHERE { ?p name ?n ; works_at ?u . OPTIONAL { ?p email ?e } }`)
	if q.Construct == nil || len(q.Construct.Template) != 2 {
		t.Fatalf("construct = %+v", q)
	}
	out := sparql.EvalConstruct(workload.Figure3(), *q.Construct)
	want := rdf.FromTriples(
		rdf.T("Denis", "affiliated_to", "PUC_Chile"),
		rdf.T("Cristian", "affiliated_to", "U_Oxford"),
		rdf.T("Cristian", "affiliated_to", "PUC_Chile"),
		rdf.T("Cristian", "email", "cris@puc.cl"),
	)
	if !out.Equal(want) {
		t.Fatalf("Example 6.1 via W3C syntax:\n%s", out)
	}
}

func TestParseSPARQLErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT WHERE { ?x a ?y }",
		"SELECT ?x WHERE { }", // empty group
		"SELECT ?x WHERE { OPTIONAL { ?x a ?y } }",    // OPTIONAL first
		"SELECT ?x WHERE { ?x a ?y",                   // unterminated
		"ASK { FILTER bound(?x) }",                    // filter-only group
		"PREFIX foaf <x> SELECT ?x WHERE { ?x a ?y }", // prefix without colon
		"DESCRIBE ?x",
		"SELECT ?x WHERE { ?x a }",
	}
	for _, s := range bad {
		if _, err := ParseSPARQL(s); err == nil {
			t.Errorf("ParseSPARQL(%q) succeeded, want error", s)
		}
	}
	// Missing WHERE is accepted (it is optional in SPARQL).
	if _, err := ParseSPARQL("SELECT ?x { ?x a ?y }"); err != nil {
		t.Errorf("optional WHERE rejected: %v", err)
	}
}

func TestParseSPARQLFilterWithoutParens(t *testing.T) {
	q := MustParseSPARQL(`ASK { ?x a ?y . FILTER bound(?x) }`)
	if _, ok := q.Pattern.(sparql.Filter); !ok {
		t.Fatalf("got %s", q.Pattern)
	}
}

func TestParseSPARQLCondForms(t *testing.T) {
	q := MustParseSPARQL(`PREFIX ex: <http://example.org/>
		ASK { ?x p ?y . FILTER (true || (!(?x = ex:c) && ?y != ?x) || false) }`)
	f, ok := q.Pattern.(sparql.Filter)
	if !ok {
		t.Fatalf("got %s", q.Pattern)
	}
	// The prefixed constant expanded inside the condition.
	if !strings.Contains(f.Cond.String(), "http://example.org/c") {
		t.Fatalf("cond = %s", f.Cond)
	}
	// Evaluation smoke check.
	g := rdf.FromTriples(rdf.T("s", "p", "o"))
	if sparql.Eval(g, q.Pattern).Len() != 1 {
		t.Fatal("condition rejected everything")
	}
}

func TestParseSPARQLCondErrors(t *testing.T) {
	bad := []string{
		"ASK { ?x p ?y . FILTER (?x <) }",
		"ASK { ?x p ?y . FILTER (bound(x)) }",
		"ASK { ?x p ?y . FILTER (bound(?x) }",
		"ASK { ?x p ?y . FILTER (?x ?y) }",
		"ASK { ?x p ?y . FILTER (&& ?x = ?y) }",
	}
	for _, s := range bad {
		if _, err := ParseSPARQL(s); err == nil {
			t.Errorf("ParseSPARQL(%q) succeeded, want error", s)
		}
	}
}

func TestParseTemplateTripleErrors(t *testing.T) {
	for _, s := range []string{"(?x a)", "(?x a b) trailing", "not-a-triple"} {
		if _, err := ParseTemplateTriple(s); err == nil {
			t.Errorf("ParseTemplateTriple(%q) succeeded, want error", s)
		}
	}
	tp, err := ParseTemplateTriple("(?x a b)")
	if err != nil || !tp.S.IsVar() {
		t.Fatalf("tp = %v, err = %v", tp, err)
	}
}
