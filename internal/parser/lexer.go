// Package parser implements a concrete text syntax for NS-SPARQL graph
// patterns and CONSTRUCT queries, close to the notation of the paper:
//
//	(?o stands_for sharing_rights) AND
//	    ((?p founder ?o) UNION (?p supporter ?o))
//	SELECT {?p} WHERE (?p founder ?o)
//	NS((?x was_born_in Chile) UNION ((?x was_born_in Chile) AND (?x email ?y)))
//	(?x works_at ?w) FILTER (?w = PUC_Chile && bound(?x))
//	CONSTRUCT {(?n affiliated_to ?u), (?n email ?e)} WHERE ...
//
// Keywords (AND, UNION, OPT/OPTIONAL, FILTER, SELECT, WHERE, NS,
// CONSTRUCT, BOUND, TRUE, FALSE) are case-insensitive and reserved;
// IRIs are bare words or <angle-bracketed>.  Binary operators are
// left-associative with precedence AND > OPT > UNION; FILTER is a
// postfix that binds tighter than AND.  The printers in the sparql
// package emit fully parenthesized text, so precedence only matters for
// hand-written queries.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokEq
	tokNeq
	tokBang
	tokAndAnd
	tokOrOr
	tokVar     // ?name
	tokIRI     // bare word or <...>
	tokKeyword // reserved word, upper-cased in val
)

type token struct {
	kind tokenKind
	val  string
	pos  int // byte offset in input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokVar:
		return "?" + t.val
	default:
		return fmt.Sprintf("%q", t.val)
	}
}

var keywords = map[string]bool{
	"AND": true, "UNION": true, "OPT": true, "OPTIONAL": true,
	"FILTER": true, "SELECT": true, "WHERE": true, "NS": true,
	"CONSTRUCT": true, "BOUND": true, "TRUE": true, "FALSE": true,
	"MINUS": true,
}

func isBareRune(r rune) bool {
	switch r {
	case '(', ')', '{', '}', ',', '<', '>', '?', '=', '!', '&', '|', '#':
		return false
	}
	return !unicode.IsSpace(r)
}

// lex tokenizes the whole input.  '#' starts a comment to end of line.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		r := rune(input[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '#':
			for i < n && input[i] != '\n' {
				i++
			}
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case r == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case r == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case r == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokBang, "!", i})
				i++
			}
		case r == '&':
			if i+1 < n && input[i+1] == '&' {
				toks = append(toks, token{tokAndAnd, "&&", i})
				i += 2
			} else {
				return nil, fmt.Errorf("offset %d: single '&' (expected '&&')", i)
			}
		case r == '|':
			if i+1 < n && input[i+1] == '|' {
				toks = append(toks, token{tokOrOr, "||", i})
				i += 2
			} else {
				return nil, fmt.Errorf("offset %d: single '|' (expected '||')", i)
			}
		case r == '?':
			j := i + 1
			for j < n && isBareRune(rune(input[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("offset %d: '?' not followed by a variable name", i)
			}
			toks = append(toks, token{tokVar, input[i+1 : j], i})
			i = j
		case r == '<':
			j := strings.IndexByte(input[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("offset %d: unterminated <IRI>", i)
			}
			raw := input[i+1 : i+j]
			raw = strings.NewReplacer("%3E", ">", "%0A", "\n").Replace(raw)
			toks = append(toks, token{tokIRI, raw, i})
			i += j + 1
		default:
			if !isBareRune(r) {
				return nil, fmt.Errorf("offset %d: unexpected character %q", i, r)
			}
			j := i
			for j < n && isBareRune(rune(input[j])) {
				j++
			}
			word := input[i:j]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIRI, word, i})
			}
			i = j
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// iriOf converts a token value to an IRI.
func iriOf(t token) rdf.IRI { return rdf.IRI(t.val) }
