package fol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func structFor(g *rdf.Graph, p sparql.Pattern) *Structure {
	return NewStructure(g, sparql.IRIs(p))
}

func TestTranslateTriplePattern(t *testing.T) {
	g := rdf.FromTriples(rdf.T("a", "p", "b"), rdf.T("a", "p", "c"))
	tp := sparql.TP(sparql.V("X"), sparql.I("p"), sparql.V("Y"))
	st := structFor(g, tp)
	phi := Translate(tp)
	// Answers of the pattern satisfy the formula...
	for _, mu := range []sparql.Mapping{sparql.M("X", "a", "Y", "b"), sparql.M("X", "a", "Y", "c")} {
		if !phi.Sat(st, TupleOf(tp, mu)) {
			t.Errorf("φ rejects answer %s", mu)
		}
	}
	// ...and non-answers do not.
	for _, mu := range []sparql.Mapping{sparql.M("X", "b", "Y", "a"), sparql.M("X", "a"), sparql.M()} {
		if phi.Sat(st, TupleOf(tp, mu)) {
			t.Errorf("φ accepts non-answer %s", mu)
		}
	}
}

func TestTranslateDomainLemmaC1(t *testing.T) {
	// φ^P_X holds of t_µ exactly when µ is an answer with domain X.
	g := workload.Figure2G2()
	p := sparql.Opt{
		L: sparql.TP(sparql.V("X"), sparql.I("was_born_in"), sparql.I("Chile")),
		R: sparql.TP(sparql.V("X"), sparql.I("email"), sparql.V("Y")),
	}
	st := structFor(g, p)
	mu := sparql.M("X", "Juan", "Y", "juan@puc.cl")
	phiXY := TranslateDomain(p, []sparql.Var{"X", "Y"})
	if !phiXY.Sat(st, Assignment{"X": E("Juan"), "Y": E("juan@puc.cl")}) {
		t.Errorf("φ_{X,Y} rejects %s", mu)
	}
	// On G2 the domain-{X} answer [X → Juan] does not exist (the OPT
	// extends it), so φ_{X} must reject it.
	phiX := TranslateDomain(p, []sparql.Var{"X"})
	if phiX.Sat(st, Assignment{"X": E("Juan"), "Y": N}) {
		t.Error("φ_{X} accepts a mapping that the OPT extends")
	}
	// On G1 it does exist.
	st1 := structFor(workload.Figure2G1(), p)
	if !phiX.Sat(st1, Assignment{"X": E("Juan"), "Y": N}) {
		t.Error("φ_{X} rejects the G1 answer")
	}
}

// TestTranslateMatchesEvalQuick is experiment E6: the FO translation
// agrees with the SPARQL evaluator on random patterns and graphs.
func TestTranslateMatchesEvalQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 2,
			Vars:  []sparql.Var{"X", "Y", "Z"},
			IRIs:  []rdf.IRI{"a", "b", "p"},
		})
		g := workload.RandomGraph(rng, rng.Intn(8), []rdf.IRI{"a", "b", "p"})
		st := structFor(g, p)
		want := sparql.Eval(g, p)
		got := AnswersFromFormula(st, Translate(p), sparql.Vars(p))
		if !got.Equal(want) {
			t.Logf("pattern %s\ngraph\n%s\neval %v\nfol  %v", p, g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateNSPattern(t *testing.T) {
	// The NS extension of the translation agrees with the evaluator on
	// the running simple-pattern example.
	p1 := sparql.TP(sparql.V("X"), sparql.I("was_born_in"), sparql.I("Chile"))
	p2 := sparql.TP(sparql.V("X"), sparql.I("email"), sparql.V("Y"))
	ns := sparql.NS{P: sparql.Union{L: p1, R: sparql.And{L: p1, R: p2}}}
	for _, g := range []*rdf.Graph{workload.Figure2G1(), workload.Figure2G2()} {
		st := structFor(g, ns)
		want := sparql.Eval(g, ns)
		got := AnswersFromFormula(st, Translate(ns), sparql.Vars(ns))
		if !got.Equal(want) {
			t.Fatalf("NS translation mismatch: eval %v, fol %v", want, got)
		}
	}
}

func TestQuantifierSemantics(t *testing.T) {
	g := rdf.FromTriples(rdf.T("a", "p", "b"))
	st := NewStructure(g, nil)
	// ∃x Dom(x) is true; ∀x Dom(x) is false (N is in the universe).
	ex := ExistsF{Vars: []sparql.Var{"x"}, F: DomAtom{T: TVar("x")}}
	fa := ForallF{Vars: []sparql.Var{"x"}, F: DomAtom{T: TVar("x")}}
	if !ex.Sat(st, Assignment{}) {
		t.Error("∃x Dom(x) should hold")
	}
	if fa.Sat(st, Assignment{}) {
		t.Error("∀x Dom(x) should fail (N ∉ Dom)")
	}
	// ∀x (Dom(x) → ∃y,z T(x,y,z) ∨ T(y,x,z) ∨ T(y,z,x)) holds: every
	// domain element occurs in a triple.
	adom := OrF{Fs: []Formula{
		TAtom{S: TVar("x"), P: TVar("y"), O: TVar("z")},
		TAtom{S: TVar("y"), P: TVar("x"), O: TVar("z")},
		TAtom{S: TVar("y"), P: TVar("z"), O: TVar("x")},
	}}
	all := ForallF{Vars: []sparql.Var{"x"}, F: OrF{Fs: []Formula{
		NotF{F: DomAtom{T: TVar("x")}},
		ExistsF{Vars: []sparql.Var{"y", "z"}, F: adom},
	}}}
	if !all.Sat(st, Assignment{}) {
		t.Error("active-domain formula should hold")
	}
}

func TestStructureBasics(t *testing.T) {
	g := rdf.FromTriples(rdf.T("a", "p", "b"))
	st := NewStructure(g, []rdf.IRI{"extra", "a"})
	if !st.InDom(E("a")) || st.InDom(E("extra")) || st.InDom(N) {
		t.Fatal("Dom interpretation wrong")
	}
	if !st.HasTriple(E("a"), E("p"), E("b")) || st.HasTriple(E("a"), E("p"), N) {
		t.Fatal("T interpretation wrong")
	}
	// Universe: a, b, p, extra, N — no duplicates.
	if len(st.Universe()) != 5 {
		t.Fatalf("universe = %v", st.Universe())
	}
}

func TestFormulaStrings(t *testing.T) {
	f := ExistsF{Vars: []sparql.Var{"x"}, F: AndF{Fs: []Formula{
		TAtom{S: TVar("x"), P: TConst("p"), O: TNull()},
		NotF{F: EqAtom{L: TVar("x"), R: TNull()}},
	}}}
	s := f.String()
	for _, want := range []string{"∃?x", "T(?x, p, N)", "¬", "?x = N"} {
		if !containsStr(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if True.String() != "⊤" || False.String() != "⊥" {
		t.Errorf("True/False render as %q/%q", True, False)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// randomUCQ draws a range-restricted UCQ≠ for the Theorem C.8 test.
func randomUCQ(rng *rand.Rand) UCQ {
	free := []sparql.Var{"X", "Y"}
	iris := []rdf.IRI{"a", "b", "p"}
	nd := 1 + rng.Intn(3)
	u := UCQ{Free: free}
	for d := 0; d < nd; d++ {
		var cq CQ
		pool := append([]sparql.Var{}, free...)
		if rng.Intn(2) == 0 {
			cq.Exists = []sparql.Var{"E"}
			pool = append(pool, "E")
		}
		term := func() Term {
			if rng.Intn(2) == 0 {
				return TVar(pool[rng.Intn(len(pool))])
			}
			return TConst(iris[rng.Intn(len(iris))])
		}
		na := 1 + rng.Intn(2)
		for i := 0; i < na; i++ {
			cq.Atoms = append(cq.Atoms, CQAtom{S: term(), P: term(), O: term()})
		}
		// Random extra (in)equalities among variables and constants.
		if rng.Intn(2) == 0 {
			cq.Eqs = append(cq.Eqs, CQEquality{
				L:       TVar(pool[rng.Intn(len(pool))]),
				R:       term(),
				Negated: rng.Intn(2) == 0,
			})
		}
		// Range-restrict: any variable not in an atom is pinned to n.
		covered := map[sparql.Var]bool{}
		for _, a := range cq.Atoms {
			for _, tm := range []Term{a.S, a.P, a.O} {
				if tm.IsVar() {
					covered[tm.Var] = true
				}
			}
		}
		for _, v := range pool {
			if !covered[v] {
				cq.Eqs = append(cq.Eqs, CQEquality{L: TVar(v), R: TNull()})
			}
		}
		u.Disjuncts = append(u.Disjuncts, cq)
	}
	return u
}

// TestUCQToPatternQuick validates the Theorem C.8 translation: the
// SPARQL[AUFS] pattern agrees with the UCQ on G_FO.
func TestUCQToPatternQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUCQ(rng)
		p, err := u.ToPattern()
		if err != nil {
			t.Logf("ToPattern failed: %v", err)
			return false
		}
		if !sparql.InFragment(p, sparql.FragmentAUFS) {
			t.Logf("translation left AUFS: %s", p)
			return false
		}
		g := workload.RandomGraph(rng, rng.Intn(8), []rdf.IRI{"a", "b", "p"})
		st := NewStructure(g, nil)
		want := AnswersFromFormula(st, u.Formula(), u.Free)
		got := sparql.Eval(g, p)
		if !got.Equal(want) {
			t.Logf("ucq %s\npattern %s\ngraph\n%s\nfol  %v\neval %v", u.Formula(), p, g, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUCQToPatternErrors(t *testing.T) {
	// Not range-restricted: free variable only in an inequality.
	u := UCQ{Free: []sparql.Var{"X"}, Disjuncts: []CQ{{
		Atoms: []CQAtom{{S: TConst("a"), P: TConst("p"), O: TConst("b")}},
		Eqs:   []CQEquality{{L: TVar("X"), R: TNull(), Negated: true}},
	}}}
	if _, err := u.ToPattern(); err == nil {
		t.Error("non-range-restricted UCQ accepted")
	}
	// n in a T-atom.
	u = UCQ{Free: nil, Disjuncts: []CQ{{
		Atoms: []CQAtom{{S: TNull(), P: TConst("p"), O: TConst("b")}},
	}}}
	if _, err := u.ToPattern(); err == nil {
		t.Error("n in T-atom accepted")
	}
	// Equality between two constants.
	u = UCQ{Free: nil, Disjuncts: []CQ{{
		Atoms: []CQAtom{{S: TConst("a"), P: TConst("p"), O: TConst("b")}},
		Eqs:   []CQEquality{{L: TConst("a"), R: TConst("b")}},
	}}}
	if _, err := u.ToPattern(); err == nil {
		t.Error("variable-free equality accepted")
	}
	// Empty UCQ and empty CQ.
	if _, err := (UCQ{}).ToPattern(); err == nil {
		t.Error("empty UCQ accepted")
	}
	u = UCQ{Free: nil, Disjuncts: []CQ{{}}}
	if _, err := u.ToPattern(); err == nil {
		t.Error("atom-free CQ accepted")
	}
}

func TestElemAndTermHelpers(t *testing.T) {
	if N.String() != "N" || E("a").String() != "a" {
		t.Fatal("Elem String wrong")
	}
	if TVar("x").String() != "?x" || TConst("c").String() != "c" || TNull().String() != "N" {
		t.Fatal("Term String wrong")
	}
	if !TVar("x").IsVar() || TConst("c").IsVar() {
		t.Fatal("IsVar wrong")
	}
}

// TestTranslateDomRelativizedQuick: the Lemma C.1/C.2 translation only
// produces Dom-relativized formulas — the syntactic condition Otto's
// interpolation theorem needs (Section 4).
func TestTranslateDomRelativizedQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomPattern(rng, workload.PatternOpts{
			Depth: 2,
			Vars:  []sparql.Var{"X", "Y", "Z"},
		})
		if !DomRelativized(Translate(p)) {
			t.Logf("translation of %s is not Dom-relativized", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDomRelativizedNegative(t *testing.T) {
	// A bare unguarded quantifier fails the check.
	unguarded := ExistsF{Vars: []sparql.Var{"x"}, F: TAtom{S: TVar("x"), P: TConst("p"), O: TConst("o")}}
	if DomRelativized(unguarded) {
		t.Fatal("unguarded ∃ accepted")
	}
	guarded := ExistsF{Vars: []sparql.Var{"x"}, F: AndF{Fs: []Formula{
		DomAtom{T: TVar("x")},
		TAtom{S: TVar("x"), P: TConst("p"), O: TConst("o")},
	}}}
	if !DomRelativized(guarded) {
		t.Fatal("guarded ∃ rejected")
	}
	// Universal guard shape: ∀x (¬Dom(x) ∨ φ).
	univ := ForallF{Vars: []sparql.Var{"x"}, F: OrF{Fs: []Formula{
		NotF{F: DomAtom{T: TVar("x")}},
		TAtom{S: TVar("x"), P: TConst("p"), O: TConst("o")},
	}}}
	if !DomRelativized(univ) {
		t.Fatal("guarded ∀ rejected")
	}
	univBad := ForallF{Vars: []sparql.Var{"x"}, F: TAtom{S: TVar("x"), P: TConst("p"), O: TConst("o")}}
	if DomRelativized(univBad) {
		t.Fatal("unguarded ∀ accepted")
	}
}
