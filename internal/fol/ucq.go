package fol

import (
	"fmt"

	"repro/internal/sparql"
)

// CQAtom is a relational atom T(s, p, o) of a conjunctive query.
type CQAtom struct{ S, P, O Term }

// CQEquality is an (in)equality between two terms.
type CQEquality struct {
	L, R    Term
	Negated bool // true for ≠
}

// CQ is a conjunctive query with inequalities: an existentially
// quantified conjunction of T-atoms and (in)equalities.  Its free
// variables are those of the enclosing UCQ.
type CQ struct {
	Exists []sparql.Var
	Atoms  []CQAtom
	Eqs    []CQEquality
}

// UCQ is a union of conjunctive queries with inequalities (UCQ≠), the
// intermediate form of Lemma C.7: the predicate Dom does not occur,
// every equality and inequality mentions at least one variable, and
// every disjunct has the same free variables.
type UCQ struct {
	Free      []sparql.Var
	Disjuncts []CQ
}

// Formula converts the UCQ to a plain FO formula for evaluation.
func (u UCQ) Formula() Formula {
	var disjuncts []Formula
	for _, cq := range u.Disjuncts {
		var conj []Formula
		for _, a := range cq.Atoms {
			conj = append(conj, TAtom{S: a.S, P: a.P, O: a.O})
		}
		for _, e := range cq.Eqs {
			var f Formula = EqAtom{L: e.L, R: e.R}
			if e.Negated {
				f = NotF{F: f}
			}
			conj = append(conj, f)
		}
		disjuncts = append(disjuncts, ExistsF{Vars: cq.Exists, F: AndF{Fs: conj}})
	}
	return OrF{Fs: disjuncts}
}

// ToPattern implements the translation of Theorem C.8: from a UCQ≠ to
// a graph pattern in SPARQL[AUFS] such that for every graph G and
// mapping µ over the free variables,
//
//	µ ∈ ⟦P⟧_G  iff  G_FO ⊨ θ(t^P_µ).
//
// Each disjunct becomes (t1 AND ⋯ AND tn) FILTER (R1 ∧ ⋯ ∧ Rm ∧ S1 ∧ ⋯)
// wrapped in SELECT over the free variables, where an equality with the
// constant n becomes ¬bound and an inequality with n becomes bound.
//
// The UCQ must be range-restricted: every variable must occur in a
// T-atom or in a positive equality with n (otherwise the FO side can
// assign it arbitrary values that SPARQL cannot produce), and every
// T-atom must be n-free (Lemma C.7 removes such disjuncts).
func (u UCQ) ToPattern() (sparql.Pattern, error) {
	if len(u.Disjuncts) == 0 {
		return nil, fmt.Errorf("fol: empty UCQ has no SPARQL counterpart")
	}
	var parts []sparql.Pattern
	for i, cq := range u.Disjuncts {
		p, err := cq.toPattern(u.Free)
		if err != nil {
			return nil, fmt.Errorf("fol: disjunct %d: %w", i, err)
		}
		parts = append(parts, p)
	}
	return sparql.UnionOf(parts...), nil
}

func (cq CQ) toPattern(free []sparql.Var) (sparql.Pattern, error) {
	if len(cq.Atoms) == 0 {
		return nil, fmt.Errorf("conjunctive query without T-atoms")
	}
	// Range restriction check.
	covered := make(varSet)
	for _, a := range cq.Atoms {
		for _, t := range []Term{a.S, a.P, a.O} {
			if !t.IsVar() && t.Const.Null {
				return nil, fmt.Errorf("T-atom mentions the constant n")
			}
			if t.IsVar() {
				covered[t.Var] = struct{}{}
			}
		}
	}
	for _, e := range cq.Eqs {
		if !e.Negated {
			if e.L.IsVar() && !e.R.IsVar() && e.R.Const.Null {
				covered[e.L.Var] = struct{}{}
			}
			if e.R.IsVar() && !e.L.IsVar() && e.L.Const.Null {
				covered[e.R.Var] = struct{}{}
			}
		}
	}
	for _, v := range append(append([]sparql.Var{}, free...), cq.Exists...) {
		if _, ok := covered[v]; !ok {
			return nil, fmt.Errorf("variable ?%s is not range-restricted", v)
		}
	}

	var triples []sparql.Pattern
	for _, a := range cq.Atoms {
		s, err := termValue(a.S)
		if err != nil {
			return nil, err
		}
		p, err := termValue(a.P)
		if err != nil {
			return nil, err
		}
		o, err := termValue(a.O)
		if err != nil {
			return nil, err
		}
		triples = append(triples, sparql.TP(s, p, o))
	}
	var conds []sparql.Condition
	for _, e := range cq.Eqs {
		c, err := equalityCondition(e)
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
	}
	body := sparql.AndOf(triples...)
	if len(conds) > 0 {
		body = sparql.Filter{P: body, Cond: sparql.ConjoinConds(conds...)}
	}
	return sparql.NewSelect(free, body), nil
}

// equalityCondition translates an (in)equality to a filter condition:
// {?X, n} becomes ¬bound(?X) (or bound(?X) when negated), and ordinary
// (in)equalities become the corresponding SPARQL atoms.
func equalityCondition(e CQEquality) (sparql.Condition, error) {
	l, r := e.L, e.R
	// Normalize so that a variable comes first when present.
	if !l.IsVar() && r.IsVar() {
		l, r = r, l
	}
	var cond sparql.Condition
	switch {
	case l.IsVar() && r.IsVar():
		// Extended-value equality: in the FO setting both variables may
		// take the value N (unbound), and N = N holds.  SPARQL's
		// ?X = ?Y additionally requires both variables to be bound, so
		// the faithful translation is (?X = ?Y) ∨ (¬bound(?X) ∧ ¬bound(?Y)).
		cond = sparql.OrCond{
			L: sparql.EqVars{X: l.Var, Y: r.Var},
			R: sparql.AndCond{
				L: sparql.Not{R: sparql.Bound{X: l.Var}},
				R: sparql.Not{R: sparql.Bound{X: r.Var}},
			},
		}
	case l.IsVar() && r.Const.Null:
		cond = sparql.Not{R: sparql.Bound{X: l.Var}}
	case l.IsVar():
		cond = sparql.EqConst{X: l.Var, C: r.Const.IRI}
	default:
		return nil, fmt.Errorf("(in)equality %s/%s mentions no variable", e.L, e.R)
	}
	if e.Negated {
		cond = sparql.Not{R: cond}
	}
	return cond, nil
}

func termValue(t Term) (sparql.Value, error) {
	if t.IsVar() {
		return sparql.V(t.Var), nil
	}
	if t.Const.Null {
		return sparql.Value{}, fmt.Errorf("the constant n cannot occur in a triple pattern")
	}
	return sparql.I(t.Const.IRI), nil
}
