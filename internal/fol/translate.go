package fol

import (
	"fmt"

	"repro/internal/sparql"
)

// Translate builds the formula φ_P of Lemma C.2: a single L_RDF
// formula with free variables var(P) such that for every mapping µ and
// structure A corresponding to a graph G,
//
//	µ ∈ ⟦P⟧_G  iff  A ⊨ φ_P(t^P_µ),
//
// where t^P_µ assigns µ(?X) to bound variables and N to the rest (see
// TupleOf).  It is the disjunction over X ⊆ var(P) of φ^P_X together
// with z = n for the variables z outside X.
//
// Beyond the paper's Lemma C.1 (which covers plain SPARQL), the
// translation also supports the NS operator, using the same
// quantify-over-superdomains device as the OPT case.
func Translate(p sparql.Pattern) Formula {
	vars := sparql.Vars(p)
	var disjuncts []Formula
	forEachSubset(vars, func(x []sparql.Var) {
		inX := toSet(x)
		conj := []Formula{TranslateDomain(p, x)}
		for _, z := range vars {
			if _, ok := inX[z]; !ok {
				conj = append(conj, EqAtom{L: TVar(z), R: TNull()})
			}
		}
		disjuncts = append(disjuncts, AndF{Fs: conj})
	})
	return OrF{Fs: disjuncts}
}

// TranslateDomain builds φ^P_X of Lemma C.1: the formula with free
// variables X that holds of t_µ exactly when µ ∈ ⟦P⟧_G and dom(µ) = X.
func TranslateDomain(p sparql.Pattern, x []sparql.Var) Formula {
	return translateX(p, toSet(x))
}

type varSet map[sparql.Var]struct{}

func toSet(vs []sparql.Var) varSet {
	s := make(varSet, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

func (s varSet) sorted() []sparql.Var {
	out := make([]sparql.Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s varSet) subsetOf(t varSet) bool {
	for v := range s {
		if _, ok := t[v]; !ok {
			return false
		}
	}
	return true
}

func (s varSet) equal(t varSet) bool {
	return len(s) == len(t) && s.subsetOf(t)
}

// forEachSubset enumerates all subsets of vars (as sorted slices).
func forEachSubset(vars []sparql.Var, fn func([]sparql.Var)) {
	n := len(vars)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var x []sparql.Var
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, vars[i])
			}
		}
		fn(x)
	}
}

func translateX(p sparql.Pattern, x varSet) Formula {
	pv := toSet(sparql.Vars(p))
	if !x.subsetOf(pv) {
		return False
	}
	switch q := p.(type) {
	case sparql.TriplePattern:
		if !x.equal(toSet(sparql.Vars(q))) {
			return False
		}
		s, pr, o := valueTerm(q.S), valueTerm(q.P), valueTerm(q.O)
		return AndF{Fs: []Formula{
			TAtom{S: s, P: pr, O: o},
			DomAtom{T: s}, DomAtom{T: pr}, DomAtom{T: o},
		}}
	case sparql.Union:
		return OrF{Fs: []Formula{translateX(q.L, x), translateX(q.R, x)}}
	case sparql.And:
		return translateAnd(q.L, q.R, x)
	case sparql.Opt:
		// φ^{P1 AND P2}_X ∨ (φ^{P1}_X ∧ ¬ ∃ compatible answer of P2).
		andPart := translateAnd(q.L, q.R, x)
		minusPart := AndF{Fs: []Formula{
			translateX(q.L, x),
			NotF{F: someCompatibleAnswer(q.R, x, nil)},
		}}
		return OrF{Fs: []Formula{andPart, minusPart}}
	case sparql.Filter:
		return AndF{Fs: []Formula{translateX(q.P, x), translateCond(q.Cond, x)}}
	case sparql.Select:
		if !x.subsetOf(toSet(q.Vars)) {
			return False
		}
		sel := toSet(q.Vars)
		inner := sparql.Vars(q.P)
		var disjuncts []Formula
		forEachSubset(inner, func(y []sparql.Var) {
			ys := toSet(y)
			if !x.subsetOf(ys) {
				return
			}
			// The restriction of a domain-Y answer to the SELECT list
			// has domain Y ∩ V; only Y with Y ∩ V = X contribute.
			// (The appendix formula of Lemma C.1 leaves this side
			// condition implicit.)
			for v := range ys {
				if _, inSel := sel[v]; inSel {
					if _, inX := x[v]; !inX {
						return
					}
				}
			}
			var conj []Formula
			for _, v := range y {
				conj = append(conj, DomAtom{T: TVar(v)})
			}
			conj = append(conj, translateX(q.P, ys))
			var quant []sparql.Var
			for _, v := range y {
				if _, ok := x[v]; !ok {
					quant = append(quant, v)
				}
			}
			disjuncts = append(disjuncts, ExistsF{Vars: quant, F: AndF{Fs: conj}})
		})
		return OrF{Fs: disjuncts}
	case sparql.NS:
		// µ ∈ ⟦NS(Q)⟧ with dom(µ) = X iff µ ∈ ⟦Q⟧ with domain X and no
		// answer of Q with a strictly larger domain extends µ.
		return AndF{Fs: []Formula{
			translateX(q.P, x),
			NotF{F: someCompatibleAnswer(q.P, x, func(xp varSet) bool {
				return len(xp) > len(x) && x.subsetOf(xp)
			})},
		}}
	default:
		panic(fmt.Sprintf("fol: unknown pattern type %T", p))
	}
}

// translateAnd is the AND case of Lemma C.1: the disjunction over
// X1 ∪ X2 = X of φ^{P1}_X1 ∧ φ^{P2}_X2.
func translateAnd(l, r sparql.Pattern, x varSet) Formula {
	xs := x.sorted()
	lv, rv := toSet(sparql.Vars(l)), toSet(sparql.Vars(r))
	var disjuncts []Formula
	forEachSubset(xs, func(x1 []sparql.Var) {
		x1s := toSet(x1)
		if !x1s.subsetOf(lv) {
			return
		}
		forEachSubset(xs, func(x2 []sparql.Var) {
			x2s := toSet(x2)
			if !x2s.subsetOf(rv) {
				return
			}
			// X1 ∪ X2 must be exactly X.
			union := make(varSet, len(x1s)+len(x2s))
			for v := range x1s {
				union[v] = struct{}{}
			}
			for v := range x2s {
				union[v] = struct{}{}
			}
			if !union.equal(x) {
				return
			}
			disjuncts = append(disjuncts, AndF{Fs: []Formula{
				translateX(l, x1s), translateX(r, x2s),
			}})
		})
	})
	return OrF{Fs: disjuncts}
}

// someCompatibleAnswer builds the formula asserting the existence of an
// answer µ' of p (with some domain X' accepted by the filter, all
// subsets of var(p) when the filter is nil) that is compatible with the
// current assignment on X.  Variables in X' ∖ X are existentially
// quantified and asserted to be in Dom; variables in X' ∩ X stay free,
// which encodes compatibility.
func someCompatibleAnswer(p sparql.Pattern, x varSet, accept func(varSet) bool) Formula {
	var disjuncts []Formula
	forEachSubset(sparql.Vars(p), func(xp []sparql.Var) {
		xps := toSet(xp)
		if accept != nil && !accept(xps) {
			return
		}
		var conj []Formula
		for _, v := range xp {
			conj = append(conj, DomAtom{T: TVar(v)})
		}
		conj = append(conj, translateX(p, xps))
		var quant []sparql.Var
		for _, v := range xp {
			if _, ok := x[v]; !ok {
				quant = append(quant, v)
			}
		}
		disjuncts = append(disjuncts, ExistsF{Vars: quant, F: AndF{Fs: conj}})
	})
	return OrF{Fs: disjuncts}
}

// translateCond is the FILTER condition translation of Lemma C.1,
// relative to the binding domain X.
func translateCond(c sparql.Condition, x varSet) Formula {
	switch r := c.(type) {
	case sparql.Bound:
		if _, ok := x[r.X]; ok {
			return True
		}
		return False
	case sparql.EqConst:
		if _, ok := x[r.X]; !ok {
			return False
		}
		return EqAtom{L: TVar(r.X), R: TConst(r.C)}
	case sparql.EqVars:
		if _, okX := x[r.X]; !okX {
			return False
		}
		if _, okY := x[r.Y]; !okY {
			return False
		}
		return EqAtom{L: TVar(r.X), R: TVar(r.Y)}
	case sparql.Not:
		return NotF{F: translateCond(r.R, x)}
	case sparql.AndCond:
		return AndF{Fs: []Formula{translateCond(r.L, x), translateCond(r.R, x)}}
	case sparql.OrCond:
		return OrF{Fs: []Formula{translateCond(r.L, x), translateCond(r.R, x)}}
	case sparql.TrueCond:
		return True
	case sparql.FalseCond:
		return False
	default:
		panic(fmt.Sprintf("fol: unknown condition type %T", c))
	}
}

func valueTerm(v sparql.Value) Term {
	if v.IsVar() {
		return TVar(v.Var())
	}
	return TConst(v.IRI())
}

// TupleOf returns t^P_µ: the assignment over var(P) that extends µ with
// N on the unbound variables.
func TupleOf(p sparql.Pattern, mu sparql.Mapping) Assignment {
	a := make(Assignment)
	for _, v := range sparql.Vars(p) {
		if iri, ok := mu[v]; ok {
			a[v] = E(iri)
		} else {
			a[v] = N
		}
	}
	return a
}

// AnswersFromFormula enumerates all assignments of the structure's
// universe to vars, collects those satisfying φ, and converts them back
// to mappings (N ↦ unbound).  It is the FO-side counterpart of
// evaluating a pattern, used for differential testing.
func AnswersFromFormula(st *Structure, phi Formula, vars []sparql.Var) *sparql.MappingSet {
	out := sparql.NewMappingSet()
	a := make(Assignment)
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if phi.Sat(st, a) {
				mu := make(sparql.Mapping)
				for v, e := range a {
					if !e.Null {
						mu[v] = e.IRI
					}
				}
				out.Add(mu)
			}
			return
		}
		for _, e := range st.Universe() {
			a[vars[i]] = e
			rec(i + 1)
		}
		delete(a, vars[i])
	}
	rec(0)
	return out
}
