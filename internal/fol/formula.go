// Package fol implements the first-order machinery of Section 4 of the
// paper: the vocabulary L_RDF = {T, Dom, n, c_i}, structures that
// correspond to RDF graphs (Definition C.5), a finite-model evaluator,
// the translation from graph patterns to FO formulas (Lemmas C.1 and
// C.2), and the back-translation from unions of conjunctive queries
// with inequalities to SPARQL[AUFS] patterns (Theorem C.8).
//
// The interpolation step itself (the existence of the interpolant θ,
// via Lyndon's and Otto's theorems) is proof-theoretic and
// non-constructive; this package reproduces everything constructive
// around it and is used as a differential-testing oracle for the
// SPARQL evaluator (experiment E6).
package fol

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Elem is an element of an L_RDF structure: an IRI or the distinguished
// null element N (the interpretation of the constant n).
type Elem struct {
	IRI  rdf.IRI
	Null bool
}

// N is the null element.
var N = Elem{Null: true}

// E wraps an IRI as an element.
func E(iri rdf.IRI) Elem { return Elem{IRI: iri} }

// String renders the element.
func (e Elem) String() string {
	if e.Null {
		return "N"
	}
	return string(e.IRI)
}

// Term is a first-order term: a variable, an IRI constant c_i, or the
// constant n.
type Term struct {
	Var   sparql.Var // set iff kind == termVar
	Const Elem       // set otherwise (Null for the constant n)
	isVar bool
}

// TVar returns a variable term.  FO variables are identified with
// SPARQL variables, as in the paper's translation.
func TVar(v sparql.Var) Term { return Term{Var: v, isVar: true} }

// TConst returns an IRI constant term.
func TConst(iri rdf.IRI) Term { return Term{Const: E(iri)} }

// TNull returns the constant n.
func TNull() Term { return Term{Const: N} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.isVar }

// String renders the term.
func (t Term) String() string {
	if t.isVar {
		return "?" + string(t.Var)
	}
	return t.Const.String()
}

// Assignment maps variables to elements.
type Assignment map[sparql.Var]Elem

func (a Assignment) resolve(t Term) (Elem, bool) {
	if !t.isVar {
		return t.Const, true
	}
	e, ok := a[t.Var]
	return e, ok
}

// Formula is a first-order formula over the vocabulary {T, Dom, =}.
type Formula interface {
	// Sat reports A, a ⊨ φ.  Free variables must be covered by the
	// assignment; a missing variable panics (it indicates a translation
	// bug, not a data condition).
	Sat(st *Structure, a Assignment) bool
	String() string
	isFormula()
}

// TAtom is T(s, p, o).
type TAtom struct{ S, P, O Term }

// DomAtom is Dom(t).
type DomAtom struct{ T Term }

// EqAtom is t1 = t2.
type EqAtom struct{ L, R Term }

// NotF is ¬φ.
type NotF struct{ F Formula }

// AndF is the conjunction of its parts; the empty conjunction is true.
type AndF struct{ Fs []Formula }

// OrF is the disjunction of its parts; the empty disjunction is false.
type OrF struct{ Fs []Formula }

// ExistsF is ∃x̄ φ, with the variables ranging over the full domain of
// the structure.  Relativization to Dom is written explicitly in the
// translated formulas, as in the paper.
type ExistsF struct {
	Vars []sparql.Var
	F    Formula
}

// ForallF is ∀x̄ φ.
type ForallF struct {
	Vars []sparql.Var
	F    Formula
}

func (TAtom) isFormula()   {}
func (DomAtom) isFormula() {}
func (EqAtom) isFormula()  {}
func (NotF) isFormula()    {}
func (AndF) isFormula()    {}
func (OrF) isFormula()     {}
func (ExistsF) isFormula() {}
func (ForallF) isFormula() {}

// Structure is an L_RDF structure corresponding to an RDF graph
// (Definition C.5): the domain is I(G) ∪ I(P) ∪ {N}, Dom is interpreted
// as I(G), T as the triples of G, and n as N.  Extra constants from the
// pattern are included in the universe so that they denote; since every
// quantifier in a translated formula is Dom-relativized, this does not
// affect satisfaction.
type Structure struct {
	graph    *rdf.Graph
	universe []Elem
	dom      map[rdf.IRI]struct{}
}

// NewStructure builds G_FO for a graph, with extraIRIs (typically I(P))
// added to the universe.
func NewStructure(g *rdf.Graph, extraIRIs []rdf.IRI) *Structure {
	dom := make(map[rdf.IRI]struct{})
	var universe []Elem
	for _, i := range g.IRIs() {
		dom[i] = struct{}{}
		universe = append(universe, E(i))
	}
	for _, i := range extraIRIs {
		if _, ok := dom[i]; !ok {
			universe = append(universe, E(i))
		}
	}
	universe = append(universe, N)
	return &Structure{graph: g, universe: universe, dom: dom}
}

// Universe returns the domain elements of the structure.
func (st *Structure) Universe() []Elem { return st.universe }

// InDom reports Dom(e).
func (st *Structure) InDom(e Elem) bool {
	if e.Null {
		return false
	}
	_, ok := st.dom[e.IRI]
	return ok
}

// HasTriple reports T(s, p, o).
func (st *Structure) HasTriple(s, p, o Elem) bool {
	if s.Null || p.Null || o.Null {
		return false
	}
	return st.graph.Contains(s.IRI, p.IRI, o.IRI)
}

// Sat implements Formula.
func (f TAtom) Sat(st *Structure, a Assignment) bool {
	s := mustResolve(a, f.S)
	p := mustResolve(a, f.P)
	o := mustResolve(a, f.O)
	return st.HasTriple(s, p, o)
}

// Sat implements Formula.
func (f DomAtom) Sat(st *Structure, a Assignment) bool {
	return st.InDom(mustResolve(a, f.T))
}

// Sat implements Formula.
func (f EqAtom) Sat(st *Structure, a Assignment) bool {
	return mustResolve(a, f.L) == mustResolve(a, f.R)
}

// Sat implements Formula.
func (f NotF) Sat(st *Structure, a Assignment) bool { return !f.F.Sat(st, a) }

// Sat implements Formula.
func (f AndF) Sat(st *Structure, a Assignment) bool {
	for _, g := range f.Fs {
		if !g.Sat(st, a) {
			return false
		}
	}
	return true
}

// Sat implements Formula.
func (f OrF) Sat(st *Structure, a Assignment) bool {
	for _, g := range f.Fs {
		if g.Sat(st, a) {
			return true
		}
	}
	return false
}

// Sat implements Formula.
func (f ExistsF) Sat(st *Structure, a Assignment) bool {
	return satQuant(st, a, f.Vars, f.F, false)
}

// Sat implements Formula.
func (f ForallF) Sat(st *Structure, a Assignment) bool {
	return satQuant(st, a, f.Vars, f.F, true)
}

// satQuant enumerates assignments to the quantified variables.  For
// forall it checks that every extension satisfies the body; for exists
// that some extension does.
func satQuant(st *Structure, a Assignment, vars []sparql.Var, body Formula, forall bool) bool {
	if len(vars) == 0 {
		return body.Sat(st, a)
	}
	v, rest := vars[0], vars[1:]
	saved, had := a[v]
	defer func() {
		if had {
			a[v] = saved
		} else {
			delete(a, v)
		}
	}()
	for _, e := range st.universe {
		a[v] = e
		ok := satQuant(st, a, rest, body, forall)
		if forall && !ok {
			return false
		}
		if !forall && ok {
			return true
		}
	}
	return forall
}

func mustResolve(a Assignment, t Term) Elem {
	e, ok := a.resolve(t)
	if !ok {
		panic(fmt.Sprintf("fol: unassigned variable %s", t))
	}
	return e
}

func (f TAtom) String() string   { return fmt.Sprintf("T(%s, %s, %s)", f.S, f.P, f.O) }
func (f DomAtom) String() string { return fmt.Sprintf("Dom(%s)", f.T) }
func (f EqAtom) String() string  { return fmt.Sprintf("%s = %s", f.L, f.R) }
func (f NotF) String() string    { return fmt.Sprintf("¬(%s)", f.F) }

func (f AndF) String() string { return joinFormulas(f.Fs, " ∧ ", "⊤") }
func (f OrF) String() string  { return joinFormulas(f.Fs, " ∨ ", "⊥") }

func (f ExistsF) String() string { return quantString("∃", f.Vars, f.F) }
func (f ForallF) String() string { return quantString("∀", f.Vars, f.F) }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, g := range fs {
		parts[i] = g.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func quantString(q string, vars []sparql.Var, body Formula) string {
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = "?" + string(v)
	}
	return q + strings.Join(names, ",") + ".(" + body.String() + ")"
}

// True and False are the empty conjunction and disjunction.
var (
	True  Formula = AndF{}
	False Formula = OrF{}
)

// DomRelativized reports whether every quantifier in the formula is
// relativized to Dom in the syntactic sense of Otto's interpolation
// theorem (Section 4): each ∃x̄ φ has, for every quantified variable, a
// positive Dom(x) conjunct at the top level of its body (and dually
// ∀x̄ φ a ¬Dom(x) disjunct).  The pattern translation of Lemma C.1
// produces only formulas of this shape.
func DomRelativized(f Formula) bool {
	switch g := f.(type) {
	case TAtom, DomAtom, EqAtom:
		return true
	case NotF:
		return DomRelativized(g.F)
	case AndF:
		for _, h := range g.Fs {
			if !DomRelativized(h) {
				return false
			}
		}
		return true
	case OrF:
		for _, h := range g.Fs {
			if !DomRelativized(h) {
				return false
			}
		}
		return true
	case ExistsF:
		if !coversDom(g.Vars, conjuncts(g.F), false) {
			return false
		}
		return DomRelativized(g.F)
	case ForallF:
		if !coversDom(g.Vars, disjuncts(g.F), true) {
			return false
		}
		return DomRelativized(g.F)
	default:
		panic(fmt.Sprintf("fol: unknown formula type %T", f))
	}
}

func conjuncts(f Formula) []Formula {
	if a, ok := f.(AndF); ok {
		var out []Formula
		for _, g := range a.Fs {
			out = append(out, conjuncts(g)...)
		}
		return out
	}
	return []Formula{f}
}

func disjuncts(f Formula) []Formula {
	if o, ok := f.(OrF); ok {
		var out []Formula
		for _, g := range o.Fs {
			out = append(out, disjuncts(g)...)
		}
		return out
	}
	return []Formula{f}
}

// coversDom reports whether every variable has a Dom guard among the
// given parts: Dom(x) for existentials, ¬Dom(x) for universals.
func coversDom(vars []sparql.Var, parts []Formula, negated bool) bool {
	guarded := make(map[sparql.Var]bool)
	for _, p := range parts {
		if negated {
			if n, ok := p.(NotF); ok {
				if d, ok := n.F.(DomAtom); ok && d.T.IsVar() {
					guarded[d.T.Var] = true
				}
			}
		} else if d, ok := p.(DomAtom); ok && d.T.IsVar() {
			guarded[d.T.Var] = true
		}
	}
	for _, v := range vars {
		if !guarded[v] {
			return false
		}
	}
	return true
}
