package nssparql

// Root-level experiment tests: the E-numbered paper artifacts of
// DESIGN.md §4, asserted through the public facade so that
// `go test .` certifies every reproduced example and witness.

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/sparql"
	"repro/internal/transform"
	"repro/internal/workload"
)

func mustParse(t *testing.T, s string) Pattern {
	t.Helper()
	p, err := ParsePattern(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

func TestE1_Figure1Query(t *testing.T) {
	p := mustParse(t, `SELECT {?p} WHERE
		(?o stands_for sharing_rights) AND
		((?p founder ?o) UNION (?p supporter ?o))`)
	got := Eval(workload.Figure1(), p)
	want := sparql.NewMappingSet(
		sparql.M("p", "Gottfrid_Svartholm"), sparql.M("p", "Fredrik_Neij"),
		sparql.M("p", "Peter_Sunde"), sparql.M("p", "Carl_Lundström"))
	if !got.Equal(want) {
		t.Fatalf("Example 2.2 answer:\n%s", got.Table())
	}
}

func TestE2_Example31(t *testing.T) {
	p := mustParse(t, `(?X was_born_in Chile) OPT (?X email ?Y)`)
	r1 := Eval(workload.Figure2G1(), p)
	r2 := Eval(workload.Figure2G2(), p)
	if !r1.Contains(sparql.M("X", "Juan")) || r2.Contains(sparql.M("X", "Juan")) {
		t.Fatal("Example 3.1 behaviour wrong")
	}
	if !r1.SubsumedBy(r2) {
		t.Fatal("weak monotonicity violated on the Figure 2 pair")
	}
	if CheckMonotone(p, CheckOpts{Trials: 400}) == nil {
		t.Fatal("monotonicity counterexample not found")
	}
	if ce := CheckWeaklyMonotone(p, CheckOpts{Exhaustive: true}); ce != nil {
		t.Fatalf("false weak-monotonicity counterexample:\n%s", ce)
	}
}

func TestE3_Example33(t *testing.T) {
	p := mustParse(t, `(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))`)
	if Eval(workload.Figure2G2(), p).Len() != 0 {
		t.Fatal("Example 3.3: G2 answer should be empty")
	}
	if wd, _ := IsWellDesigned(p); wd {
		t.Fatal("Example 3.3 pattern misclassified as well designed")
	}
	if CheckWeaklyMonotone(p, CheckOpts{Exhaustive: true}) == nil {
		t.Fatal("weak-monotonicity violation not detected")
	}
}

func TestE4_Theorem35Witness(t *testing.T) {
	p := mustParse(t, `(((a b c) OPT (?X d e)) OPT (?Y f g)) FILTER (bound(?X) || bound(?Y))`)
	if wd, _ := IsWellDesigned(p); wd {
		t.Fatal("witness misclassified as well designed")
	}
	if ce := CheckWeaklyMonotone(p, CheckOpts{Exhaustive: true, Trials: 400}); ce != nil {
		t.Fatalf("false counterexample:\n%s", ce)
	}
	g1 := FromTriples(T("a", "b", "c"), T("l", "d", "e"))
	g2 := FromTriples(T("a", "b", "c"), T("l", "f", "g"))
	if !Eval(g1, p).Contains(sparql.M("X", "l")) || !Eval(g2, p).Contains(sparql.M("Y", "l")) {
		t.Fatal("appendix separation graphs evaluate wrongly")
	}
	if Eval(FromTriples(T("a", "b", "c")), p).Len() != 0 {
		t.Fatal("bare graph should yield no answer")
	}
}

func TestE5_Theorem36Witness(t *testing.T) {
	p := mustParse(t, `(?X a b) OPT ((?X c ?Y) UNION (?X d ?Z))`)
	g4 := FromTriples(T("1", "a", "b"), T("1", "c", "2"), T("1", "d", "3"))
	r := Eval(g4, p)
	want := sparql.NewMappingSet(sparql.M("X", "1", "Y", "2"), sparql.M("X", "1", "Z", "3"))
	if !r.Equal(want) {
		t.Fatalf("G4 answer = %v", r)
	}
	ms := r.Mappings()
	if !ms[0].CompatibleWith(ms[1]) {
		t.Fatal("the Proposition B.1 obstruction requires compatible answers")
	}
	if ok, _ := analysis.IsWellDesignedUnion(p); ok {
		t.Fatal("witness misclassified as a well-designed union")
	}
}

func TestE11_DPGadgetSmoke(t *testing.T) {
	satF := sat.NewCNF(2)
	satF.AddClause(1, 2)
	unsatF := sat.NewCNF(1)
	unsatF.AddClause(sat.Lit(1))
	unsatF.AddClause(sat.Lit(-1))
	if !reduction.NewDPGadget(satF, unsatF).Holds() {
		t.Fatal("SAT-UNSAT instance should hold")
	}
	if reduction.NewDPGadget(satF, satF).Holds() {
		t.Fatal("SAT-SAT instance should not hold")
	}
}

func TestE15_OptToNS(t *testing.T) {
	p := mustParse(t, `(?X was_born_in Chile) OPT (?X email ?Y)`)
	q := OptToNS(p)
	if !IsSimple(q) {
		t.Fatalf("OptToNS of a single OPT should be simple, got %s", q)
	}
	for _, g := range []*Graph{workload.Figure2G1(), workload.Figure2G2()} {
		if !Eval(g, p).Equal(Eval(g, q)) {
			t.Fatal("OptToNS changed the answers on the Figure 2 graphs")
		}
	}
}

func TestE18_Example61(t *testing.T) {
	q, err := ParseConstruct(`CONSTRUCT {(?n affiliated_to ?u), (?n email ?e)}
		WHERE ((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	if err != nil {
		t.Fatal(err)
	}
	out := EvalConstruct(workload.Figure3(), q)
	want := FromTriples(
		T("Denis", "affiliated_to", "PUC_Chile"),
		T("Cristian", "affiliated_to", "U_Oxford"),
		T("Cristian", "affiliated_to", "PUC_Chile"),
		T("Cristian", "email", "cris@puc.cl"),
	)
	if !out.Equal(want) {
		t.Fatalf("Figure 4 output:\n%s", out)
	}
}

func TestFacadeRewrites(t *testing.T) {
	p := mustParse(t, `NS((?x a b) UNION ((?x a b) AND (?x c ?y)))`)
	q := EliminateNS(p)
	if sparql.Ops(q)[sparql.OpNS] {
		t.Fatal("EliminateNS left NS behind")
	}
	g := FromTriples(T("1", "a", "b"), T("1", "c", "2"))
	if !Eval(g, p).Equal(Eval(g, q)) {
		t.Fatal("EliminateNS changed answers")
	}
	wd := mustParse(t, `(?x a b) OPT (?x c ?y)`)
	s, err := WellDesignedToSimple(wd)
	if err != nil || !IsSimple(s) {
		t.Fatalf("WellDesignedToSimple: %v, %v", s, err)
	}
	sf := SelectFree(mustParse(t, `SELECT {?x} WHERE (?x a ?y)`))
	if sparql.Ops(sf)[sparql.OpSelect] {
		t.Fatal("SelectFree left SELECT behind")
	}
	if !IsNSPattern(mustParse(t, `NS((?x a b)) UNION NS((?y c d))`)) {
		t.Fatal("IsNSPattern wrong")
	}
	if ce := CheckSubsumptionFree(p, CheckOpts{Trials: 100}); ce != nil {
		t.Fatalf("simple pattern reported subsumed answers:\n%s", ce)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g, err := ParseGraph("a b c .\nd e f .")
	if err != nil || g.Len() != 2 {
		t.Fatalf("ParseGraph: %v, %v", g, err)
	}
	q, err := ParseQuery(`CONSTRUCT {(?x b2 ?y)} WHERE (?x b ?y)`)
	if err != nil || q.Construct == nil {
		t.Fatalf("ParseQuery: %+v, %v", q, err)
	}
	out := EvalConstruct(g, *q.Construct)
	if !out.ContainsTriple(T("a", "b2", "c")) {
		t.Fatalf("construct output:\n%s", out)
	}
	// Lemma 6.3 through the facade, for completeness.
	nsq := transform.ConstructNS(*q.Construct)
	if !EvalConstruct(g, nsq).Equal(out) {
		t.Fatal("ConstructNS changed the view")
	}
}
