package nssparql_test

// Godoc examples for the facade; each runs as a test.

import (
	"fmt"

	nssparql "repro"
)

// The running example of the paper (Example 3.1): optional information
// via OPT, and the same query through the NS operator.
func Example() {
	g := nssparql.NewGraph()
	g.Add("Juan", "was_born_in", "Chile")
	g.Add("Juan", "email", "juan@puc.cl")
	g.Add("Marcela", "was_born_in", "Chile")

	p, _ := nssparql.ParsePattern(`(?X was_born_in Chile) OPT (?X email ?Y)`)
	for _, mu := range nssparql.Eval(g, p).Sorted() {
		fmt.Println(mu)
	}
	// Output:
	// [?X → Juan, ?Y → juan@puc.cl]
	// [?X → Marcela]
}

// NS keeps only the subsumption-maximal answers (Section 5.1).
func ExampleEval_ns() {
	g := nssparql.NewGraph()
	g.Add("Juan", "was_born_in", "Chile")
	g.Add("Juan", "email", "juan@puc.cl")

	p, _ := nssparql.ParsePattern(`NS(
		(?X was_born_in Chile) UNION
		((?X was_born_in Chile) AND (?X email ?Y)))`)
	for _, mu := range nssparql.Eval(g, p).Sorted() {
		fmt.Println(mu)
	}
	// Output:
	// [?X → Juan, ?Y → juan@puc.cl]
}

// EliminateNS rewrites NS-SPARQL into plain SPARQL (Theorem 5.1).
func ExampleEliminateNS() {
	p, _ := nssparql.ParsePattern(`NS((?x a b) UNION ((?x a b) AND (?x c ?y)))`)
	q := nssparql.EliminateNS(p)
	g, _ := nssparql.ParseGraph("1 a b .\n1 c 2 .")
	fmt.Println(nssparql.Eval(g, p).Equal(nssparql.Eval(g, q)))
	fmt.Println(nssparql.IsSimple(p))
	// Output:
	// true
	// true
}

// The weak-monotonicity tester catches the Example 3.3 pattern.
func ExampleCheckWeaklyMonotone() {
	p, _ := nssparql.ParsePattern(
		`(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))`)
	ce := nssparql.CheckWeaklyMonotone(p, nssparql.CheckOpts{Exhaustive: true})
	fmt.Println(ce != nil)
	// Output:
	// true
}

// CONSTRUCT queries build graphs, so results compose (Section 6).
func ExampleEvalConstruct() {
	g := nssparql.NewGraph()
	g.Add("prof_02", "name", "Denis")
	g.Add("prof_02", "works_at", "PUC_Chile")

	q, _ := nssparql.ParseConstruct(
		`CONSTRUCT {(?n affiliated_to ?u)} WHERE (?p name ?n) AND (?p works_at ?u)`)
	fmt.Print(nssparql.EvalConstruct(g, q))
	// Output:
	// <Denis> <affiliated_to> <PUC_Chile> .
}
