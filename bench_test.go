package nssparql

// One benchmark per experiment of EXPERIMENTS.md (the E-numbers match
// DESIGN.md §4).  Run with:
//
//	go test -bench=. -benchmem .
//
// The absolute numbers are machine-dependent; EXPERIMENTS.md records
// the *shapes* that reproduce the paper's claims (exponential growth
// for the Section 7 hard fragments, polynomial behaviour elsewhere).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/fol"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/sparql"
	"repro/internal/transform"
	"repro/internal/views"
	"repro/internal/wdpt"
	"repro/internal/workload"
)

func BenchmarkE1_Figure1Query(b *testing.B) {
	g := workload.Figure1()
	p := parser.MustParsePattern(`SELECT {?p} WHERE
		(?o stands_for sharing_rights) AND
		((?p founder ?o) UNION (?p supporter ?o))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sparql.Eval(g, p).Len() != 4 {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkE2_OptVsNS(b *testing.B) {
	opt := parser.MustParsePattern(`((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	ns := transform.OptToNS(opt)
	for _, size := range []int{100, 500, 2000} {
		g := workload.University(workload.UniversityOpts{People: size, OptionalPct: 50, Seed: 1})
		for _, c := range []struct {
			name string
			p    sparql.Pattern
		}{{"OPT", opt}, {"NS", ns}} {
			b.Run(fmt.Sprintf("%s/people=%d", c.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sparql.Eval(g, c.p)
				}
			})
		}
	}
}

func BenchmarkE4_Thm35Witness(b *testing.B) {
	p := parser.MustParsePattern(
		`(((a b c) OPT (?X d e)) OPT (?Y f g)) FILTER (bound(?X) || bound(?Y))`)
	g := rdf.FromTriples(rdf.T("a", "b", "c"), rdf.T("l", "d", "e"), rdf.T("m", "f", "g"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sparql.Eval(g, p)
	}
}

func BenchmarkE6_FOTranslation(b *testing.B) {
	p := parser.MustParsePattern(`(?X was_born_in Chile) OPT (?X email ?Y)`)
	g := workload.Figure2G2()
	st := fol.NewStructure(g, sparql.IRIs(p))
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fol.Translate(p)
		}
	})
	phi := fol.Translate(p)
	vars := sparql.Vars(p)
	b.Run("answers-from-formula", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fol.AnswersFromFormula(st, phi, vars)
		}
	})
}

func BenchmarkE7_NSElimination(b *testing.B) {
	for v := 1; v <= 4; v++ {
		var ds []sparql.Pattern
		for i := 0; i < v; i++ {
			ds = append(ds, sparql.TP(sparql.V(sparql.Var(fmt.Sprintf("X%d", i))), sparql.I("p"), sparql.I("o")))
		}
		p := sparql.NS{P: sparql.UnionOf(ds...)}
		b.Run(fmt.Sprintf("vars=%d", v), func(b *testing.B) {
			var out sparql.Pattern
			for i := 0; i < b.N; i++ {
				out = transform.EliminateNS(p)
			}
			b.ReportMetric(float64(sparql.Size(out)), "output-size")
		})
	}
}

func BenchmarkE8_WDToSimple(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	patterns := make([]sparql.Pattern, 16)
	for i := range patterns {
		patterns[i] = wdpt.GenerateWellDesigned(rng, wdpt.GenerateOpts{MaxNodes: 5})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wdpt.WellDesignedToSimple(patterns[i%len(patterns)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_SelectFree(b *testing.B) {
	p := parser.MustParsePattern(`SELECT {?n, ?u} WHERE
		((?p name ?n) AND (?p works_at ?u) AND
		 (SELECT {?p} WHERE (?p email ?e)))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		transform.SelectFree(p)
	}
}

func BenchmarkE11_DPGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 6, 8} {
		phi := sat.Random3CNF(rng, n, 2*n)
		psi := sat.Random3CNF(rng, n, 6*n)
		d := reduction.NewDPGadget(phi, psi)
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Holds()
			}
		})
	}
}

func BenchmarkE12_BHkGadget(b *testing.B) {
	cases := []struct {
		name string
		g    *sat.UGraph
		ms   []int
	}{
		{"C5-in-{3}", sat.Cycle(5), []int{3}},
		{"K4-in-{3,4}", sat.Complete(4), []int{3, 4}},
	}
	for _, c := range cases {
		inst := reduction.ExactSetChromaticInstance(c.g, c.ms)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst.Holds()
			}
		})
	}
}

func BenchmarkE13_MaxOddSat(b *testing.B) {
	f := sat.NewCNF(4)
	f.AddClause(sat.Lit(1))
	f.AddClause(sat.Lit(-2))
	inst := reduction.MaxOddSatInstance(f)
	for i := 0; i < b.N; i++ {
		if !inst.Holds() {
			b.Fatal("instance should hold")
		}
	}
}

func BenchmarkE14_ConstructGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{4, 8, 12} {
		f := sat.Random3CNF(rng, n, 3*n)
		c := reduction.NewConstructGadget(f)
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Holds()
			}
		})
	}
}

func BenchmarkE16_FragmentScaling(b *testing.B) {
	queries := []struct {
		name string
		text string
	}{
		{"AF", `(?p name ?n) AND (?p works_at ?u) AND (?u stands_for ?m)`},
		{"AUFS", `SELECT {?p} WHERE ((?p founder ?u) UNION (?p supporter ?u)) FILTER (bound(?p))`},
		{"AOF", `((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e) OPT (?p phone ?f)`},
		{"SP", `NS(((?p name ?n) AND (?p works_at ?u)) UNION ((?p name ?n) AND (?p works_at ?u) AND (?p email ?e)))`},
	}
	for _, size := range []int{200, 1000} {
		g := workload.University(workload.UniversityOpts{People: size, OptionalPct: 50, FoundersPct: 10, Seed: 1})
		for _, q := range queries {
			p := parser.MustParsePattern(q.text)
			b.Run(fmt.Sprintf("%s/people=%d", q.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sparql.Eval(g, p)
				}
			})
		}
	}
}

func BenchmarkE17_NSAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{200, 1000, 4000} {
		set := sparql.NewMappingSet()
		for i := 0; i < n; i++ {
			mu := make(sparql.Mapping)
			for v := 0; v < 4; v++ {
				if rng.Intn(2) == 0 {
					mu[sparql.Var(rune('A'+v))] = rdf.IRI(fmt.Sprintf("i%d", rng.Intn(20)))
				}
			}
			set.Add(mu)
		}
		b.Run(fmt.Sprintf("naive/n=%d", set.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set.MaximalNaive()
			}
		})
		b.Run(fmt.Sprintf("bucketed/n=%d", set.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set.MaximalBucketed()
			}
		})
		// Row variant: encode once outside the loop (a query engine works
		// on rows throughout; the boundary conversion is not part of NS).
		sc, ok := sparql.NewVarSchema([]sparql.Var{"A", "B", "C", "D"})
		if !ok {
			b.Fatal("schema rejected")
		}
		rs, ok := sparql.EncodeMappingSet(set, sparql.Codec{Schema: sc, Dict: rdf.NewDict()})
		if !ok {
			b.Fatal("encode failed")
		}
		b.Run(fmt.Sprintf("rows/n=%d", set.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs.Maximal()
			}
		})
	}
}

func BenchmarkE17_IndexAblation(b *testing.B) {
	g := workload.University(workload.UniversityOpts{People: 5000, OptionalPct: 50, Seed: 2})
	pred := rdf.IRI("email")
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Match(nil, &pred, nil, func(rdf.Triple) bool { return true })
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.MatchScan(nil, &pred, nil, func(rdf.Triple) bool { return true })
		}
	})
}

func BenchmarkE20_PlannerAblation(b *testing.B) {
	queries := []struct {
		name string
		text string
	}{
		{"join3", `(?p name ?n) AND (?p works_at ?u) AND (?u stands_for ?m)`},
		{"filtered", `((?p name ?n) AND (?p works_at ?u)) FILTER (?u = university_0)`},
		{"opt", `((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`},
	}
	g := workload.University(workload.UniversityOpts{People: 1000, OptionalPct: 50, FoundersPct: 10, Seed: 1})
	for _, q := range queries {
		p := parser.MustParsePattern(q.text)
		b.Run("reference/"+q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sparql.Eval(g, p)
			}
		})
		b.Run("planner-string/"+q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.EvalString(g, p)
			}
		})
		b.Run("planner-rows/"+q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Eval(g, p)
			}
		})
	}
}

func BenchmarkE21_Membership(b *testing.B) {
	g := workload.University(workload.UniversityOpts{People: 2000, OptionalPct: 50, Seed: 1})
	p := parser.MustParsePattern(`((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	mu := sparql.M("p", "person_3", "n", "Name_3", "u", "university_0")
	b.Run("full-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparql.Eval(g, p).Contains(mu)
		}
	})
	b.Run("constrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparql.Member(g, p, mu)
		}
	})
}

func BenchmarkE22_IncrementalView(b *testing.B) {
	q := parser.MustParseConstruct(`CONSTRUCT {(?p works_in ?m)}
		WHERE (?p works_at ?u) AND (?u stands_for ?m)`)
	base := workload.University(workload.UniversityOpts{People: 2000, OptionalPct: 50, Seed: 1})
	b.Run("incremental-insert", func(b *testing.B) {
		v, err := views.New(q, base)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Insert(rdf.T(rdf.IRI(fmt.Sprintf("hire_%d", i)), "works_at", "university_0"))
		}
	})
	b.Run("recompute", func(b *testing.B) {
		g := base.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Add(rdf.IRI(fmt.Sprintf("hire_%d", i)), "works_at", "university_0")
			sparql.EvalConstruct(g, q)
		}
	})
}

func BenchmarkE23_EarlyTermination(b *testing.B) {
	g := workload.University(workload.UniversityOpts{People: 2000, OptionalPct: 50, Seed: 1})
	p := parser.MustParsePattern(`(?p name ?n) AND (?p works_at ?u)`)
	b.Run("full-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparql.Eval(g, p)
		}
	})
	b.Run("ask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.Ask(g, p)
		}
	})
	b.Run("limit-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.Limit(g, p, 10)
		}
	})
}
