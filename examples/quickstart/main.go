// Quickstart: build a graph, run a plain SPARQL pattern, an OPT
// pattern, and the NS (not-subsumed) equivalent, and print the answer
// tables.
package main

import (
	"fmt"

	nssparql "repro"
)

func main() {
	// A tiny knowledge graph about people: everyone has a birthplace,
	// email addresses are only partially known — the open-world regime
	// the paper's operators are designed for.
	g := nssparql.NewGraph()
	g.Add("juan", "was_born_in", "chile")
	g.Add("marcela", "was_born_in", "chile")
	g.Add("marcela", "email", "marcela@example.org")
	g.Add("pierre", "was_born_in", "france")

	// Plain conjunctive query: people born in Chile *with* an email.
	p1, err := nssparql.ParsePattern(`(?p was_born_in chile) AND (?p email ?e)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("People born in Chile with a known email:")
	fmt.Println(nssparql.Eval(g, p1).Table())

	// OPT keeps people without an email, extending those who have one.
	p2, err := nssparql.ParsePattern(`(?p was_born_in chile) OPT (?p email ?e)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("The same with the email optional (OPT):")
	fmt.Println(nssparql.Eval(g, p2).Table())

	// The NS operator expresses the same query as "all the answers,
	// keeping only the maximal ones" — the paper's open-world
	// replacement for OPT (Section 5.1).
	p3, err := nssparql.ParsePattern(`NS(
		(?p was_born_in chile) UNION
		((?p was_born_in chile) AND (?p email ?e)))`)
	if err != nil {
		panic(err)
	}
	fmt.Println("The same as a simple pattern (NS over a union):")
	fmt.Println(nssparql.Eval(g, p3).Table())

	// A CONSTRUCT query produces a graph, so results compose.
	q, err := nssparql.ParseConstruct(`CONSTRUCT {(?p contact ?e)}
		WHERE (?p was_born_in chile) OPT (?p email ?e)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("A CONSTRUCT view of the contacts:")
	fmt.Print(nssparql.EvalConstruct(g, q))
}
