// Incremental demonstrates the practical payoff of Section 6 /
// Corollary 6.8: a CONSTRUCT view in the monotone fragment
// CONSTRUCT[AUF] can be maintained under insertions without ever
// recomputing or retracting — while a non-monotone view (OPT in the
// WHERE clause) would silently go stale.
package main

import (
	"fmt"

	nssparql "repro"
	"repro/internal/parser"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/views"
	"repro/internal/workload"
)

func main() {
	base := workload.University(workload.UniversityOpts{People: 50, OptionalPct: 40, Seed: 3})

	// A monotone view: who works in which mission area.
	q := parser.MustParseConstruct(`CONSTRUCT {(?p works_in ?m)}
		WHERE (?p works_at ?u) AND (?u stands_for ?m)`)
	v, err := views.New(q, base)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Materialized view over %d base triples: %d output triples.\n",
		v.Base().Len(), v.Graph().Len())

	// New facts arrive; the view absorbs them incrementally.
	added := v.Insert(
		rdf.T("new_hire", "works_at", "university_0"),
		rdf.T("new_hire", "name", "Zoe"),
	)
	fmt.Printf("After hiring Zoe: +%d output triple(s); view now has %d.\n",
		added, v.Graph().Len())

	// The incremental state is exactly the recomputed state.
	recomputed := sparql.EvalConstruct(v.Base(), q)
	fmt.Printf("Incremental == recomputed: %v\n\n", v.Graph().Equal(recomputed))

	// Why monotonicity matters: the same idea is UNSOUND for an OPT
	// view.  The views package refuses it...
	optQ := parser.MustParseConstruct(`CONSTRUCT {(?p contact ?e)}
		WHERE (?p works_at ?u) OPT (?p email ?e)`)
	if _, err := views.New(optQ, base); err != nil {
		fmt.Println("OPT view rejected:", err)
	}

	// ...and here is the stale triple that naive insert-only
	// maintenance would leave behind: "juan contact juan" style outputs
	// change retroactively when an email becomes known.
	g1 := nssparql.FromTriples(nssparql.T("juan", "works_at", "puc"))
	g2 := g1.Clone()
	g2.Add("juan", "email", "juan@puc.cl")
	out1 := nssparql.EvalConstruct(g1, optQ)
	out2 := nssparql.EvalConstruct(g2, optQ)
	fmt.Printf("\nOPT view over G:      %d triples\n", out1.Len())
	fmt.Printf("OPT view over G ∪ Δ:  %d triples — outputs changed shape, not just grew:\n", out2.Len())
	fmt.Print(out2)
	fmt.Println("(monotone growth holds for the *pattern answers* under subsumption —")
	fmt.Println(" weak monotonicity — but not for insert-only view deltas with OPT)")
}
