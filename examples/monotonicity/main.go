// Monotonicity walks through Section 3 of the paper end-to-end: the
// open-world/closed-world tension of OPT, the weak-monotonicity
// hierarchy, and the separation witnesses of Theorems 3.5 and 3.6,
// all executed against the graphs from the paper.
package main

import (
	"fmt"

	nssparql "repro"
	"repro/internal/analysis"
	"repro/internal/workload"
)

func verdicts(name string, p nssparql.Pattern) {
	opts := nssparql.CheckOpts{Trials: 300, Exhaustive: true}
	mono := nssparql.CheckMonotone(p, opts) == nil
	weak := nssparql.CheckWeaklyMonotone(p, opts) == nil
	wd := "n/a"
	if ok, err := nssparql.IsWellDesigned(p); err == nil {
		wd = fmt.Sprint(ok)
	} else if ok, err := analysis.IsWellDesignedUnion(p); err == nil {
		wd = fmt.Sprint(ok) + " (union)"
	}
	fmt.Printf("%-22s monotone=%-5v weakly-monotone=%-5v well-designed=%s\n", name+":", mono, weak, wd)
}

func main() {
	parse := func(s string) nssparql.Pattern {
		p, err := nssparql.ParsePattern(s)
		if err != nil {
			panic(err)
		}
		return p
	}

	// Example 3.1: OPT loses monotonicity but keeps weak monotonicity.
	p31 := parse(`(?X was_born_in Chile) OPT (?X email ?Y)`)
	g1, g2 := workload.Figure2G1(), workload.Figure2G2()
	fmt.Println("Example 3.1 over Figure 2 (G1 ⊆ G2):")
	fmt.Printf("  ⟦P⟧_G1 = %v\n  ⟦P⟧_G2 = %v\n", nssparql.Eval(g1, p31), nssparql.Eval(g2, p31))
	fmt.Println("  The G1 answer vanished — but its information survives inside the G2 answer.")

	// Example 3.3: the unnatural pattern that loses information.
	p33 := parse(`(?X was_born_in Chile) AND ((?Y was_born_in Chile) OPT (?Y email ?X))`)
	fmt.Println("\nExample 3.3 over the same pair:")
	fmt.Printf("  ⟦P⟧_G1 = %v\n  ⟦P⟧_G2 = %v   ← the answer is simply gone\n",
		nssparql.Eval(g1, p33), nssparql.Eval(g2, p33))
	if ce := nssparql.CheckWeaklyMonotone(p33, nssparql.CheckOpts{Exhaustive: true}); ce != nil {
		fmt.Printf("  tester found a violation: %s\n", ce.Detail)
	}

	// The hierarchy at a glance.
	fmt.Println("\nSemantic verdicts (tested exhaustively on small graphs):")
	verdicts("AUF pattern", parse(`(?X a b) UNION ((?X c ?Y) FILTER (?Y = d))`))
	verdicts("Example 3.1 (OPT)", p31)
	verdicts("Example 3.3", p33)
	verdicts("Theorem 3.5 witness",
		parse(`(((a b c) OPT (?X d e)) OPT (?Y f g)) FILTER (bound(?X) || bound(?Y))`))
	verdicts("Theorem 3.6 witness", parse(`(?X a b) OPT ((?X c ?Y) UNION (?X d ?Z))`))
	verdicts("simple pattern (NS)",
		parse(`NS((?X a b) UNION ((?X a b) AND (?X c ?Y)))`))

	fmt.Println("\nThe two witnesses are weakly monotone yet provably not expressible as")
	fmt.Println("(unions of) well-designed patterns — the gap the NS operator closes.")
}
