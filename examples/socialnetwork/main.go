// Socialnetwork replays the paper's running scenario (Figures 1–2) on a
// generated social graph: querying incomplete profiles with OPT versus
// NS, and watching what happens when new information arrives — the
// open-world behaviour that motivates weak monotonicity.
package main

import (
	"fmt"

	nssparql "repro"
	"repro/internal/workload"
)

func main() {
	// A university social graph: 30 people; emails/phones known for
	// roughly half of them.
	g := workload.University(workload.UniversityOpts{
		People:      30,
		OptionalPct: 50,
		FoundersPct: 20,
		Seed:        7,
	})
	fmt.Printf("Generated graph with %d triples.\n\n", g.Len())

	// Figure 1 style query: founders and supporters of organizations.
	orgs, err := nssparql.ParsePattern(`SELECT {?p, ?u} WHERE
		((?p founder ?u) UNION (?p supporter ?u))`)
	if err != nil {
		panic(err)
	}
	fmt.Println("Founders and supporters (Example 2.2 style):")
	fmt.Println(nssparql.Eval(g, orgs).Table())

	// Profile query with two optional attributes.
	profile, err := nssparql.ParsePattern(`((?p name ?n) AND (?p works_at ?u))
		OPT (?p email ?e) OPT (?p phone ?f)`)
	if err != nil {
		panic(err)
	}
	res := nssparql.Eval(g, profile)
	fmt.Printf("Profiles (nested OPT): %d answers; first rows:\n", res.Len())
	printFirst(res, 5)

	// The pattern is well designed, hence safe for the open world.
	if wd, err := nssparql.IsWellDesigned(profile); err == nil {
		fmt.Printf("well designed: %v\n", wd)
	}

	// Its SP–SPARQL form: one NS over a union of conjunctive queries
	// (Proposition 5.6) — same answers, closed-world operator gone.
	simple, err := nssparql.WellDesignedToSimple(profile)
	if err != nil {
		panic(err)
	}
	res2 := nssparql.Eval(g, simple)
	fmt.Printf("SP–SPARQL translation gives the same %d answers: %v\n\n",
		res2.Len(), res.Equal(res2))

	// Open-world evolution: learn a new email and re-ask.  Weak
	// monotonicity guarantees no answer loses information.
	before := nssparql.Eval(g, profile)
	g.Add("person_0", "email", "person0@new-domain.example")
	after := nssparql.Eval(g, profile)
	fmt.Printf("After learning one new email: %d answers (before %d).\n", after.Len(), before.Len())
	fmt.Printf("Every old answer is still subsumed by a new one: %v\n", before.SubsumedBy(after))
}

func printFirst(res *nssparql.MappingSet, n int) {
	for i, mu := range res.Sorted() {
		if i == n {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", mu)
	}
	fmt.Println()
}
