// Construct_views demonstrates Section 6 of the paper: CONSTRUCT
// queries as composable views over RDF graphs, the monotone fragment
// CONSTRUCT[AUF], and the Lemma 6.3 / Proposition 6.7 normalizations.
package main

import (
	"fmt"

	nssparql "repro"
	"repro/internal/analysis"
	"repro/internal/transform"
	"repro/internal/workload"
)

func main() {
	// Example 6.1: build the affiliation view over the Figure 3 graph.
	g := workload.Figure3()
	q, err := nssparql.ParseConstruct(`CONSTRUCT {(?n affiliated_to ?u), (?n email ?e)}
		WHERE ((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e)`)
	if err != nil {
		panic(err)
	}
	view := nssparql.EvalConstruct(g, q)
	fmt.Println("Affiliation view (Figure 4):")
	fmt.Print(view)

	// CONSTRUCT results are graphs, so queries compose: query the view.
	followup, err := nssparql.ParsePattern(`(?n affiliated_to PUC_Chile)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nPeople affiliated to PUC_Chile, asked against the view:")
	fmt.Println(nssparql.Eval(view, followup).Table())

	// Lemma 6.3: adding NS to the WHERE clause never changes the view.
	nsq := transform.ConstructNS(q)
	fmt.Printf("view == view-with-NS: %v\n", view.Equal(nssparql.EvalConstruct(g, nsq)))

	// A monotone view in CONSTRUCT[AUFS], made CONSTRUCT[AUF] by the
	// SELECT-free rewrite (Proposition 6.7).
	q2, err := nssparql.ParseConstruct(`CONSTRUCT {(?u has_member ?n)}
		WHERE SELECT {?n, ?u} WHERE ((?p name ?n) AND (?p works_at ?u))`)
	if err != nil {
		panic(err)
	}
	q2auf := transform.ConstructSelectFree(q2)
	fmt.Printf("\nSELECT-free WHERE clause: %s\n", q2auf.Where)
	fmt.Printf("same output: %v\n",
		nssparql.EvalConstruct(g, q2).Equal(nssparql.EvalConstruct(g, q2auf)))

	// Monotonicity in action (Definition 6.2): the view only grows as
	// the source graph grows — tested, and visible on Figure 2's pair.
	if ce := analysis.CheckConstructMonotone(q2auf, analysis.CheckOpts{Trials: 200, Exhaustive: true}); ce == nil {
		fmt.Println("CONSTRUCT[AUF] view: no monotonicity counterexample found (Corollary 6.8)")
	}
	g2 := g.Clone()
	g2.Add("prof_03", "name", "Aidan")
	g2.Add("prof_03", "works_at", "U_Oxford")
	v1, v2 := nssparql.EvalConstruct(g, q2auf), nssparql.EvalConstruct(g2, q2auf)
	fmt.Printf("view(G) ⊆ view(G ∪ ΔG): %v  (%d → %d triples)\n",
		v1.IsSubgraphOf(v2), v1.Len(), v2.Len())
}
