// Coloring makes the complexity results of Section 7 tangible: graph
// coloring — the engine of the Theorem 7.2 reduction — solved directly
// by NS-SPARQL query evaluation.  Each proper coloring of the Petersen
// graph is one answer to an AND/FILTER pattern, so the evaluator is
// doing the NP-hard work the paper proves it must.
package main

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sat"
	"repro/internal/sparql"
)

// petersen returns the Petersen graph (10 vertices, 15 edges, χ = 3).
func petersen() *sat.UGraph {
	g := &sat.UGraph{N: 10}
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// coloringQuery encodes "properly k-color h" as a graph pattern over a
// palette graph: one variable ?c_v per vertex ranging over the palette,
// one inequality filter per edge.
func coloringQuery(h *sat.UGraph, k int) (*rdf.Graph, sparql.Pattern) {
	g := rdf.NewGraph()
	for c := 0; c < k; c++ {
		g.Add("palette", "has", rdf.IRI(fmt.Sprintf("color_%d", c)))
	}
	colorVar := func(v int) sparql.Var { return sparql.Var(fmt.Sprintf("c%d", v)) }
	parts := make([]sparql.Pattern, h.N)
	for v := 0; v < h.N; v++ {
		parts[v] = sparql.TP(sparql.I("palette"), sparql.I("has"), sparql.V(colorVar(v)))
	}
	var conds []sparql.Condition
	for _, e := range h.Edges {
		conds = append(conds, sparql.Not{R: sparql.EqVars{X: colorVar(e[0]), Y: colorVar(e[1])}})
	}
	return g, sparql.Filter{P: sparql.AndOf(parts...), Cond: sparql.ConjoinConds(conds...)}
}

func main() {
	h := petersen()
	fmt.Printf("Petersen graph: %d vertices, %d edges, χ = %d.\n\n", h.N, len(h.Edges), sat.ChromaticNumber(h))

	// 2 colors: the query has no answer (χ = 3).
	g2, q2 := coloringQuery(h, 2)
	fmt.Printf("2-colorable (via ASK)? %v\n", exec.Ask(g2, q2))

	// 3 colors: find one coloring fast, then count them all.
	g3, q3 := coloringQuery(h, 3)
	start := time.Now()
	first := exec.Limit(g3, q3, 1)
	fmt.Printf("3-colorable? %v  (first coloring in %s)\n", first.Len() == 1, time.Since(start).Round(time.Microsecond))
	for _, mu := range first.Mappings() {
		fmt.Printf("  witness: %s\n", mu)
	}
	start = time.Now()
	all := sparql.Eval(g3, q3)
	fmt.Printf("number of proper 3-colorings: %d  (full evaluation in %s)\n",
		all.Len(), time.Since(start).Round(time.Microsecond))
	fmt.Println("\nEvery answer is one proper coloring — the query evaluator just")
	fmt.Println("solved an NP-complete problem, which is Theorem 7.4 in action.")
}
