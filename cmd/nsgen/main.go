// Command nsgen generates synthetic RDF workloads in the N-Triples
// style format accepted by nsq, for experimenting at scale.
//
// Usage:
//
//	nsgen -scenario university -people 5000 -optional 50 > data.nt
//	nsgen -scenario figure1 > orgs.nt
//	nsgen -scenario random -triples 1000 -iris 50 > random.nt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/rdf"
	"repro/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "university", "one of: university, figure1, figure2a, figure2b, figure3, random")
		people   = flag.Int("people", 1000, "university: number of people")
		optional = flag.Int("optional", 50, "university: probability (0-100) of each optional attribute")
		founders = flag.Int("founders", 10, "university: probability (0-100) of founder/supporter edges")
		triples  = flag.Int("triples", 1000, "random: number of triples drawn")
		iris     = flag.Int("iris", 50, "random: size of the IRI pool")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	g, err := generate(*scenario, *people, *optional, *founders, *triples, *iris, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsgen:", err)
		os.Exit(1)
	}
	if err := rdf.WriteGraph(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "nsgen:", err)
		os.Exit(1)
	}
}

func generate(scenario string, people, optional, founders, triples, iris int, seed int64) (*rdf.Graph, error) {
	switch scenario {
	case "university":
		return workload.University(workload.UniversityOpts{
			People: people, OptionalPct: optional, FoundersPct: founders, Seed: seed,
		}), nil
	case "figure1":
		return workload.Figure1(), nil
	case "figure2a":
		return workload.Figure2G1(), nil
	case "figure2b":
		return workload.Figure2G2(), nil
	case "figure3":
		return workload.Figure3(), nil
	case "random":
		rng := rand.New(rand.NewSource(seed))
		pool := make([]rdf.IRI, iris)
		for i := range pool {
			pool[i] = rdf.IRI(fmt.Sprintf("r%d", i))
		}
		return workload.RandomGraph(rng, triples, pool), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
}
