package main

import "testing"

func TestGenerateScenarios(t *testing.T) {
	for _, sc := range []string{"university", "figure1", "figure2a", "figure2b", "figure3", "random"} {
		g, err := generate(sc, 50, 50, 10, 100, 20, 1)
		if err != nil {
			t.Errorf("%s: %v", sc, err)
			continue
		}
		if g.Len() == 0 {
			t.Errorf("%s: empty graph", sc)
		}
	}
	if _, err := generate("nope", 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generate("university", 100, 50, 10, 0, 0, 7)
	b, _ := generate("university", 100, 50, 10, 0, 0, 7)
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}
